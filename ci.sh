#!/usr/bin/env bash
# ci.sh — the repo's verification gate. Run before every merge:
#
#   ./ci.sh            # vet + build + race tests + perf baseline
#   ./ci.sh --quick    # skip the race detector (slow on 1-CPU boxes)
#
# The perf step regenerates BENCH_baseline.json via cmd/stepbench so a
# reviewer can `git diff BENCH_baseline.json` and see exactly how a PR
# moved the substrate numbers (ns/op, allocs/op) on the kernels the
# ROADMAP's Performance section tracks. Noise on shared machines is
# real: treat <15% ns/op movement as neutral, but any allocs/op
# increase on a zero-alloc path as a regression.
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

if [[ "${1:-}" == "--quick" ]]; then
    echo "== go test (no race) =="
    go test ./...
else
    echo "== go test -race =="
    go test -race ./...
fi

echo "== perf baseline =="
go run ./cmd/stepbench -bench BENCH_baseline.json
