#!/usr/bin/env bash
# ci.sh — the repo's verification gate. Run before every merge:
#
#   ./ci.sh                      # vet + build + doc health + race tests (both
#                                # backends) + fuzz smoke + chaos + serve
#                                # smoke-run + perf gate
#   ./ci.sh --quick              # skip the race detector (slow on 1-CPU boxes)
#   ./ci.sh --update-baseline    # additionally refresh BENCH_baseline.json
#                                # after a passing gate (combinable with --quick)
#
# The test suite runs twice: once on the default GEMM backend (AVX2
# on capable amd64 hardware) and once with STEPPINGNET_NOSIMD=1
# forcing the scalar fallback, so the path non-AVX2 machines depend
# on cannot silently rot. A purego-tagged build additionally proves
# the no-assembly configuration still compiles.
#
# The perf step regenerates the benchmark numbers into a temp file
# and diffs them against the committed BENCH_baseline.json via
# `stepbench -compare`, which fails hard on allocs/op growth on any
# zero-alloc path and on ns/op regressions beyond the ±15% noise
# threshold (ns/op is not gated when the committed baseline came from
# a different GEMM backend than this machine selects). The committed
# baseline is only replaced under --update-baseline — and never
# cross-backend — so sub-threshold regressions cannot ratchet
# silently and a scalar box cannot clobber the avx2 reference; when a
# PR intentionally moves the numbers, refresh and commit the file so
# `git diff BENCH_baseline.json` shows the movement in review.
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
UPDATE_ARGS=()
for arg in "$@"; do
    case "$arg" in
    --quick) QUICK=1 ;;
    --update-baseline) UPDATE_ARGS=(-update) ;;
    *)
        echo "unknown flag: $arg" >&2
        exit 2
        ;;
    esac
done

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== doc health =="
# gofmt cleanliness repo-wide, an explicit vet of the serving packages
# (also covered by ./... above, but kept here so the doc-health step
# is self-contained), and the doc-comment gate: every exported
# identifier in internal/serve must carry a doc comment (enforced by
# an AST-walking test).
UNFORMATTED=$(gofmt -l .)
if [[ -n "$UNFORMATTED" ]]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi
go vet ./internal/serve ./cmd/stepserve
go test -count=1 -run TestExportedIdentifiersDocumented ./internal/serve

echo "== go build (purego fallback) =="
go build -tags purego ./...

# One pass per backend; the scalar pass additionally runs with
# -shuffle=on so test-order dependencies (leaked GOMAXPROCS tweaks,
# stale package-level thresholds, order-sensitive goroutine counts)
# surface in-repo instead of flaking on someone else's machine.
if [[ "$QUICK" == 1 ]]; then
    echo "== go test (no race) =="
    go test ./...
    echo "== go test, scalar backend, shuffled (no race) =="
    STEPPINGNET_NOSIMD=1 go test -count=1 -shuffle=on ./...
else
    echo "== go test -race =="
    go test -race ./...
    echo "== go test -race, scalar backend, shuffled =="
    STEPPINGNET_NOSIMD=1 go test -race -count=1 -shuffle=on ./...
fi

echo "== intra-layer sharding equivalence (both backends) =="
# The cross-worker-count bitwise gate, run explicitly on both GEMM
# backends: the sharded paths must produce bit-identical outputs at
# every worker count regardless of which kernels dispatch selects.
SHARD_TESTS='TestIntraLayerParallelMatchesSerial|TestRowShardBitwiseInvariance|TestColumnShardBitwiseInvariance|TestParallelIm2ColMatchesSerial|TestBatch1WorkerSetMatchesSerial'
go test -count=1 -run "$SHARD_TESTS" ./internal/tensor ./internal/infer ./internal/serve
STEPPINGNET_NOSIMD=1 go test -count=1 -run "$SHARD_TESTS" ./internal/tensor ./internal/infer ./internal/serve

echo "== resume equivalence (both backends) =="
# The semantic cache's bitwise contract: a walk resumed from exported
# ladder state must equal a cold walk exactly — at the engine layer
# (property grid over odd shapes × worker counts), at the serving
# layer (deadline-stopped walk resumed by a later request), and the
# early exit must never change the predicted class.
RESUME_TESTS='TestResumeMatchesColdWalk|TestExportRowFromBatchedWalk|TestCachedResumeBitwiseEqualsCold|TestCacheHitServesStoredLogits|TestEarlyExitNeverChangesArgmax'
go test -count=1 -run "$RESUME_TESTS" ./internal/infer ./internal/serve
STEPPINGNET_NOSIMD=1 go test -count=1 -run "$RESUME_TESTS" ./internal/infer ./internal/serve

echo "== fuzz smoke =="
# Ten seconds per fuzz target on top of the committed seed corpora:
# enough to shake out regressions in the hardened surfaces (the
# LatencyModel deadline math, the /infer handler chain and the
# semantic cache's key/churn/resume paths) without stalling the gate.
# A real campaign runs them longer by hand.
go test -run='^$' -fuzz=FuzzLatencyModel -fuzztime=10s ./internal/governor
go test -run='^$' -fuzz=FuzzInferHandler -fuzztime=10s ./cmd/stepserve
go test -run='^$' -fuzz=FuzzCacheResume -fuzztime=10s ./internal/serve/cache

echo "== chaos (default backend) =="
# The serving layer's randomized lifecycle storm always runs under the
# race detector (even with --quick) and under both GEMM backends:
# close/submit races are exactly where the backends' differing step
# timings shake out different interleavings. The cache-staleness storm
# rides along: concurrent TTL expiry, calibration-swap invalidation
# and speculative pre-climbs against a live submit stream.
go test -race -count=1 -run 'TestChaosRandomizedLifecycles|TestChaosCacheStaleness' ./internal/serve
echo "== chaos (scalar backend) =="
STEPPINGNET_NOSIMD=1 go test -race -count=1 -run 'TestChaosRandomizedLifecycles|TestChaosCacheStaleness' ./internal/serve

echo "== overload governor (default backend) =="
# The SLO-driven brownout loop always runs under the race detector on
# both GEMM backends: the deterministic controller unit tests, the
# serve-side drift scenario (calibration inflates 3× mid-run and the
# controller re-converges), the policy-swap/stats property test and
# the control-loop shutdown leak check.
GOV_TESTS='TestControl|TestPolicySwap'
go test -race -count=1 ./internal/governor
go test -race -count=1 -run "$GOV_TESTS" ./internal/serve
echo "== overload governor (scalar backend) =="
STEPPINGNET_NOSIMD=1 go test -race -count=1 ./internal/governor
STEPPINGNET_NOSIMD=1 go test -race -count=1 -run "$GOV_TESTS" ./internal/serve

echo "== cluster chaos (default backend) =="
# The distributed tier's fault storms always run under the race
# detector and under both GEMM backends: replica death, seeded random
# faults and router failover are exactly where backend-dependent step
# timings shake out different interleavings.
go test -race -count=1 -run 'TestClusterChaosKillOneReplica|TestExactlyOneAnswerUnderRandomFaults' ./internal/cluster
echo "== cluster chaos (scalar backend) =="
STEPPINGNET_NOSIMD=1 go test -race -count=1 -run 'TestClusterChaosKillOneReplica|TestExactlyOneAnswerUnderRandomFaults' ./internal/cluster

echo "== router e2e smoke =="
# Stand up three real replica processes (each with a TTL'd semantic
# cache and idle-window speculation armed) and an affinity-routing,
# cache-warming router over them, then drive three loadgen phases: a
# mixed multi-target spray (router plus one replica directly, with a
# couple of slow-loris connections against the router), a repeat-heavy
# phase whose hot keys must concentrate on the replicas their cache
# key hashes to — asserted from the loadgen's router view (affinity
# routed > 0, cluster-wide cache hits > 0) — and an overload phase
# whose generous deadlines let queues build on the hot HRW winners
# until the bounded-load spill engages and the router warms the
# spilled keys' entries onto the replicas that caught them (asserted
# via the router view's warming summary). Everything shuts down with
# SIGTERM so the graceful-drain path executes. The subshell keeps the
# process cleanup trap local.
(
    E2E_TMP=$(mktemp -d)
    trap 'kill $(jobs -p) 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$E2E_TMP"' EXIT
    go build -o "$E2E_TMP/stepserve" ./cmd/stepserve
    REPLICA_FLAGS='-workers 1 -queue 16 -batch 4 -refresh 0 -cache 64 -cache-ttl 1m -speculate'
    "$E2E_TMP/stepserve" -addr 127.0.0.1:18081 $REPLICA_FLAGS &
    "$E2E_TMP/stepserve" -addr 127.0.0.1:18082 $REPLICA_FLAGS &
    "$E2E_TMP/stepserve" -addr 127.0.0.1:18083 $REPLICA_FLAGS &
    "$E2E_TMP/stepserve" -addr 127.0.0.1:18080 \
        -route http://127.0.0.1:18081,http://127.0.0.1:18082,http://127.0.0.1:18083 -affinity -warm &
    # The load generator waits for a healthy target itself, so no sleep
    # is needed between replica startup and the drive.
    "$E2E_TMP/stepserve" -loadgen -targets http://127.0.0.1:18080,http://127.0.0.1:18081 \
        -rps 150 -duration 2s -deadlines 5ms:0.8,50ms:0.2:hi -slow 2
    # Phase 2: repeat-heavy traffic through the router alone. The
    # report's affinity summary line is the assertion surface.
    "$E2E_TMP/stepserve" -loadgen -targets http://127.0.0.1:18080 \
        -rps 200 -duration 2s -deadlines 20ms:1 -repeat 0.6 | tee "$E2E_TMP/affinity.out"
    grep -E 'affinity: [1-9][0-9]* routed to HRW choice' "$E2E_TMP/affinity.out" >/dev/null ||
        { echo "router e2e: no affinity-routed requests reported" >&2; exit 1; }
    grep -E '[1-9][0-9]* cache hits\+resumes cluster-wide' "$E2E_TMP/affinity.out" >/dev/null ||
        { echo "router e2e: repeat traffic produced no replica cache reuse" >&2; exit 1; }
    # Phase 3: sustained overload with generous deadlines — walks climb
    # the full ladder, queues build unevenly on the hot keys' HRW
    # winners, the spill demotes them and the warming loop transfers
    # the spilled entries to the replicas that caught them.
    "$E2E_TMP/stepserve" -loadgen -targets http://127.0.0.1:18080 \
        -rps 400 -duration 3s -deadlines 500ms:1 -repeat 0.8 | tee "$E2E_TMP/warming.out"
    grep -E 'warming: [1-9][0-9]* entries transferred' "$E2E_TMP/warming.out" >/dev/null ||
        { echo "router e2e: overload produced no cross-replica cache warming" >&2; exit 1; }
    kill -TERM $(jobs -p)
    wait
)

echo "== serve smoke-run (default backend) =="
# Drive the anytime serving layer briefly through the load generator
# with the burst scenario and an armed overload governor: calibration,
# admission, deadline scheduling, micro-batching, brownout control and
# graceful drain all execute, and the report exercises the SLO
# attainment columns. Run under both GEMM backends, like the test
# suite.
SMOKE_FLAGS='-loadgen -rps 300 -duration 1s -workers 1 -queue 16 -batch 4 -refresh 250ms
             -deadlines 500us:0.45,10ms:0.45,10ms:0.1:hi -scenario burst -slo 1:5ms:0.9 -control 20ms
             -cache 256 -exit-calibrate 32 -repeat 0.5'
go run ./cmd/stepserve $SMOKE_FLAGS
echo "== serve smoke-run (scalar backend) =="
STEPPINGNET_NOSIMD=1 go run ./cmd/stepserve $SMOKE_FLAGS

echo "== perf baseline =="
trap 'rm -f BENCH_new.json' EXIT # the gate's scratch file, never committed
go run ./cmd/stepbench -bench BENCH_new.json
# -strict: a NEW zero-alloc benchmark missing from the committed
# baseline fails the gate, so added zero-alloc paths must enter the
# baseline (and its alloc protection) in the same PR that adds them.
go run ./cmd/stepbench -compare -strict ${UPDATE_ARGS[@]+"${UPDATE_ARGS[@]}"} BENCH_baseline.json BENCH_new.json
