// Package steppingnet is a pure-Go reproduction of "SteppingNet: A
// Stepping Neural Network with Incremental Accuracy Enhancement"
// (Sun et al., DATE 2023). It builds a series of nested subnets out
// of one weight-shared network such that each subnet obeys a MAC
// budget and every larger subnet reuses the smaller subnets'
// intermediate results, enabling anytime inference on
// resource-constrained and resource-varying platforms.
//
// The implementation lives under internal/: the tensor and layer
// substrate (internal/tensor, internal/nn), subnet bookkeeping
// (internal/subnet), the construction and distillation algorithms
// (internal/core), the anytime engine (internal/infer), the slimmable
// and any-width baselines (internal/baselines/...), and the harness
// that regenerates the paper's tables and figures
// (internal/experiments). Entry points are cmd/steppingnet,
// cmd/stepbench and the programs under examples/.
//
// The benchmarks in bench_test.go regenerate each table/figure:
//
//	go test -bench=. -benchmem
package steppingnet
