// Package steppingnet is a pure-Go reproduction of "SteppingNet: A
// Stepping Neural Network with Incremental Accuracy Enhancement"
// (Sun et al., DATE 2023). It builds a series of nested subnets out
// of one weight-shared network such that each subnet obeys a MAC
// budget and every larger subnet reuses the smaller subnets'
// intermediate results, enabling anytime inference on
// resource-constrained and resource-varying platforms.
//
// The implementation lives under internal/: the tensor and layer
// substrate (internal/tensor, internal/nn), subnet bookkeeping
// (internal/subnet), the construction and distillation algorithms
// (internal/core), the anytime engine (internal/infer), the budget
// policy and deadline→MAC mapping (internal/governor), the concurrent
// serving layer (internal/serve), the slimmable and any-width
// baselines (internal/baselines/...), and the harness that
// regenerates the paper's tables and figures (internal/experiments).
// Entry points are cmd/steppingnet, cmd/stepbench, cmd/stepserve and
// the programs under examples/. README.md is the user-facing tour;
// ARCHITECTURE.md holds the package map, the pool-ownership and
// width-invariance contracts, and the serving request lifecycle.
//
// # Compute substrate
//
// All MACs funnel through three raw-slice kernels in internal/tensor
// (Gemm, GemmTransA, GemmTransB): register-tiled 2×4 micro-kernels
// that skip all-zero panels of masked weight matrices, fanned out
// over a persistent, allocation-free worker arena (internal/tensor/
// parallel.go) — rows for multi-row products, columns for the
// batch-1 dense shape, plus a sharded im2col gather — with splits
// aligned so parallel results stay bitwise identical to serial at
// any worker count (tiny shapes stay serial; see gemmMinParFlops and
// gemmMinParColFlops). A single GOMAXPROCS-1 helper budget is shared
// with the inference engine's intra-layer sharding, so stacked
// parallelism degrades to serial instead of oversubscribing.
// Convolution is im2col plus one compact matmul per image over a
// transposed gather of the subnet's active filters, so a small
// subnet pays only for its own width.
//
// The kernels come in two backends behind a dispatch layer
// (internal/tensor/gemm_dispatch.go). On amd64, AVX2+FMA assembly
// micro-kernels (gemm_amd64.s) are selected at startup when CPUID
// reports FMA+AVX+AVX2 and the OS saves YMM state; everything else —
// other architectures, builds with the purego tag, CPUs without the
// features, or any process started with STEPPINGNET_NOSIMD set —
// runs the portable scalar kernels. Both backends share the scalar
// edge handling and the zero-panel skip, and are cross-checked
// against each other and a naive reference to 1e-12 in CI (which
// runs the suite under both). BENCH_baseline.json records which
// backend produced it in its "backend" field.
//
// Hot paths are allocation-free in the steady state: a tensor.Pool
// (per goroutine, nil-safe) recycles every activation and temporary.
// nn.Context.Scratch threads the pool through Forward/Backward — see
// its comment for the ownership rules — and infer.Engine keeps one
// pool per batch-parallel worker plus persistent shard workers and
// reusable per-step bookkeeping, so the anytime walk performs zero
// allocations per Step on both its serial and sharded paths.
// BENCH_baseline.json records the substrate's reference numbers
// (regenerate with ./ci.sh or `go run ./cmd/stepbench -bench`;
// compare two baselines with `stepbench -compare old.json new.json`).
//
// # Serving
//
// internal/serve turns the anytime engine into a concurrent service:
// a pool of per-worker engines fed by a central batch former over a
// bounded, priority-ordered admission queue (low classes narrow and
// shed first; high-priority deadlines stay protected under
// overload). Per-subnet step latencies are calibrated at startup
// (infer.Engine.CalibrateSteps → governor.LatencyModel), refreshed
// against live step timings by a background loop (Engine.StepTimer →
// atomic governor.ModelRef swap), and a deadline-aware scheduler
// walks each request up the subnet ladder only as far as its
// deadline — and its class's load-shedding cap — allows, so overload
// degrades into narrower answers instead of unbounded queuing.
// cmd/stepserve exposes the service over HTTP (POST /infer with a
// priority field/header, GET /stats with per-class counters) and
// ships a load generator (stepserve -loadgen) for measuring latency
// percentiles and the per-subnet answer distribution under
// configurable RPS/deadline/priority mixes.
//
// The benchmarks in bench_test.go regenerate each table/figure:
//
//	go test -bench=. -benchmem
package steppingnet
