// Package steppingnet is a pure-Go reproduction of "SteppingNet: A
// Stepping Neural Network with Incremental Accuracy Enhancement"
// (Sun et al., DATE 2023). It builds a series of nested subnets out
// of one weight-shared network such that each subnet obeys a MAC
// budget and every larger subnet reuses the smaller subnets'
// intermediate results, enabling anytime inference on
// resource-constrained and resource-varying platforms.
//
// The implementation lives under internal/: the tensor and layer
// substrate (internal/tensor, internal/nn), subnet bookkeeping
// (internal/subnet), the construction and distillation algorithms
// (internal/core), the anytime engine (internal/infer), the slimmable
// and any-width baselines (internal/baselines/...), and the harness
// that regenerates the paper's tables and figures
// (internal/experiments). Entry points are cmd/steppingnet,
// cmd/stepbench and the programs under examples/.
//
// # Compute substrate
//
// All MACs funnel through three raw-slice kernels in internal/tensor
// (Gemm, GemmTransA, GemmTransB): register-tiled 2×4 micro-kernels
// that skip all-zero panels of masked weight matrices, with a
// work-stealing row scheduler that fans large products out across
// GOMAXPROCS goroutines (small shapes stay on the serial path; see
// gemmMinParFlops). Convolution is im2col plus one compact matmul per
// image over a transposed gather of the subnet's active filters, so a
// small subnet pays only for its own width.
//
// Hot paths are allocation-free in the steady state: a tensor.Pool
// (per goroutine, nil-safe) recycles every activation and temporary.
// nn.Context.Scratch threads the pool through Forward/Backward — see
// its comment for the ownership rules — and infer.Engine keeps one
// pool per batch-parallel worker while sharding a batch across
// goroutines without breaking the incremental-reuse audit.
// BENCH_baseline.json records the substrate's reference numbers
// (regenerate with ./ci.sh or `go run ./cmd/stepbench -bench`).
//
// The benchmarks in bench_test.go regenerate each table/figure:
//
//	go test -bench=. -benchmem
package steppingnet
