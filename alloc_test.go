package steppingnet

import (
	"testing"

	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

// TestPooledForwardSteadyStateAllocs pins the tentpole perf property:
// with a warm scratch pool, the full eval forward of the benchmark
// LeNet allocates nothing at all. If a layer starts allocating again
// (a dropped Put, an escaping shape slice) this fails before the
// benchmarks drift.
func TestPooledForwardSteadyStateAllocs(t *testing.T) {
	net, x := benchNet()
	ctx := nn.Eval(4)
	ctx.Scratch = tensor.NewPool()
	for i := 0; i < 3; i++ { // warm the pool
		ctx.Scratch.Put(net.Forward(x, ctx))
	}
	allocs := testing.AllocsPerRun(20, func() {
		ctx.Scratch.Put(net.Forward(x, ctx))
	})
	if allocs != 0 {
		t.Fatalf("steady-state pooled forward allocates %v times per op, want 0", allocs)
	}
	hitRate := float64(ctx.Scratch.Hits) / float64(ctx.Scratch.Gets)
	if hitRate < 0.9 {
		t.Fatalf("pool hit rate %.2f, want ≥0.90 in steady state", hitRate)
	}
}

// TestKernelEquivalenceThroughLayers cross-checks the whole rebuilt
// forward path (compact transposed gather + ikj kernel + pooling)
// against the same network run without any pool: identical outputs at
// every subnet.
func TestKernelEquivalenceThroughLayers(t *testing.T) {
	net, x := benchNet()
	for s := 1; s <= 4; s++ {
		plain := net.Forward(x, nn.Eval(s))
		ctx := nn.Eval(s)
		ctx.Scratch = tensor.NewPool()
		pooled := net.Forward(x, ctx)
		if !tensor.Equal(plain, pooled, 1e-12) {
			t.Fatalf("pooled forward diverges from plain forward at subnet %d", s)
		}
	}
}
