package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"steppingnet/internal/governor"
	"steppingnet/internal/serve"
)

// fuzzEnv lazily builds one small model + serving stack + production
// mux shared by every fuzz execution (standing a server up per input
// would make the fuzzer useless). The ladder calibration is injected
// so no execution depends on wall-clock measurement.
var fuzzEnv struct {
	once sync.Once
	mux  *http.ServeMux
	err  error
}

func fuzzMux(t testing.TB) *http.ServeMux {
	fuzzEnv.once.Do(func() {
		m, err := buildServeModel("lenet3c1l", 4, 8, 1.5, 3, 7, false)
		if err != nil {
			fuzzEnv.err = err
			return
		}
		cal := governor.LatencyModel{
			StepMACs: governor.StepCosts(m, 3),
			StepTime: []time.Duration{time.Nanosecond, time.Nanosecond, time.Nanosecond},
		}
		srv, err := serve.New(serve.Config{
			Model: m, Subnets: 3, Workers: 1, QueueDepth: 16,
			PriorityClasses: 2, Calibration: cal,
			DefaultDeadline: 50 * time.Millisecond,
		})
		if err != nil {
			fuzzEnv.err = err
			return
		}
		// The server (and its goroutines) lives for the whole fuzz
		// process; the OS reaps it — Close here would race the final
		// executions.
		a := newApp(7)
		a.setReady(srv, m)
		fuzzEnv.mux = newMux(a)
	})
	if fuzzEnv.err != nil {
		t.Fatal(fuzzEnv.err)
	}
	return fuzzEnv.mux
}

// FuzzInferHandler throws malformed bodies and priority headers at
// the production POST /infer handler chain: truncated and deeply
// nested JSON, wrong-shaped inputs, NaN/Inf/negative/huge deadlines,
// absurd priorities. The handler must never panic and must answer
// every request with one of its documented statuses — 200 with a
// well-formed JSON answer, 400 for bad input, 503 for overload. The
// committed seed corpus pins the interesting shapes.
func FuzzInferHandler(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"deadline_ms": 5}`,
		`{"deadline_ms": -3, "priority": 1}`,
		`{"deadline_ms": 1e308}`,
		`{"deadline_ms": -1e308}`,
		`{"input": []}`,
		`{"input": [1,2,3]}`,
		`{"input": [1e309]}`,
		`{"priority": -99}`,
		`{"priority": 99999999}`,
		`{"input": null, "deadline_ms": null}`,
		`{"input": "not an array"}`,
		`not json at all`,
		`{"input": [`,
		`[[[[[[[[[[`,
		``,
		`{"deadline_ms": 0.0000001}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s), "")
	}
	f.Add([]byte(`{}`), "1")
	f.Add([]byte(`{}`), "-7")
	f.Add([]byte(`{}`), "not-a-number")
	f.Add([]byte(`{}`), "999999999999999999999999")

	f.Fuzz(func(t *testing.T, body []byte, prio string) {
		mux := fuzzMux(t)
		req := httptest.NewRequest(http.MethodPost, "/infer", bytes.NewReader(body))
		if prio != "" {
			req.Header.Set(priorityHeader, prio)
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
			// A 200 must carry a JSON answer naming a real subnet.
			if !bytes.Contains(rec.Body.Bytes(), []byte(`"subnet"`)) {
				t.Fatalf("200 without an answer body: %q", rec.Body.String())
			}
		case http.StatusBadRequest, http.StatusServiceUnavailable:
			// Documented rejections.
		default:
			t.Fatalf("undocumented status %d for body %q header %q (response %q)",
				rec.Code, body, prio, rec.Body.String())
		}
	})
}
