// Command stepserve exposes the anytime-inference serving layer
// (internal/serve) over HTTP, scales it out as a fault-tolerant
// router over multiple replicas (internal/cluster), and doubles as a
// load generator for measuring how the service degrades under
// pressure.
//
// Server mode builds a stepping model (by default an untrained one
// with a seeded random unit→subnet spread — the serving data path is
// identical; pass -train to run the full construction pipeline
// first), calibrates per-subnet step latencies, and listens:
//
//	stepserve -addr :8080 -model lenet3c1l -subnets 4
//	curl -s localhost:8080/infer -d '{"deadline_ms": 5}'
//	curl -s localhost:8080/stats
//
// POST /infer accepts {"input": [...], "deadline_ms": 5, "priority":
// 1} (priority also via the X-Priority header; higher classes shed
// last and keep wider answers under overload — see -priorities). A
// missing input is replaced by a seeded random image (handy for smoke
// tests). The answer reports which subnet produced it, the MACs
// spent, and whether the deadline was met. GET /stats returns the
// serve.Snapshot counters including the per-priority breakdown. GET
// /healthz reports real readiness: 503 while the model is still
// building and calibrating at startup, 200 while serving, 503 again
// the moment a SIGTERM starts the drain — so a router (or any load
// balancer) stops sending work before in-flight requests are cut
// off. The listener itself is hardened: -hdr-timeout bounds how long
// a connection may dribble its headers (slow-loris), with read and
// idle timeouts alongside. The -refresh interval keeps the deadline
// calibration tracking live step timings (thermal or contention
// drift) instead of trusting startup numbers forever.
//
// Router mode (-route) serves the same /infer contract by spreading
// requests over N replica URLs, least predicted backlog first, with
// active health probing, per-replica circuit breakers, and
// deadline-aware retry/hedging (see internal/cluster):
//
//	stepserve -route http://host1:8081,http://host2:8082 -addr :8080
//
// With -affinity the router instead rendezvous-hashes each request's
// input cache key over the admitted replicas, so repeats of an input
// land on the replica whose semantic cache already holds the walk;
// -affinity-spill bounds the imbalance a hot key may cause (a pick
// whose backlog exceeds that factor × the cluster mean falls to the
// key's next replica in hash order). GET /stats in router mode
// returns the cluster.RouterStats breakdown, including per-replica
// affinity hit and spill counters; GET /healthz is 200 while at least
// one replica is admitted.
//
// Load-generator mode drives either an in-process service or — with
// -targets — remote replicas/routers over HTTP at a configurable
// request rate and class mix (deadline:weight, with an optional
// :hi/:lo/:N priority field), then prints per-class latency
// percentiles, the per-target outcome breakdown, the per-subnet
// answer distribution and each server's own protection summary:
//
//	stepserve -loadgen -rps 400 -duration 5s -deadlines 4ms:0.9,12ms:0.1:hi
//	stepserve -loadgen -targets http://host1:8081,http://host2:8082 -rps 400
//
// The -slow flag adds slow-loris connections to the first target,
// demonstrating the -hdr-timeout defense end to end. The -scenario
// flag shapes the offered load deterministically (diurnal sinusoid,
// calm-with-bursts, or a rate staircase) so SLO adherence is
// demonstrable against non-constant traffic, and with -slo set the
// report adds per-class SLO-attainment columns and verdicts.
//
// The -slo flag (server and in-process loadgen modes) arms the
// adaptive overload governor: "1:2ms:0.99" gives priority class 1 a
// 2ms p99 target and a 99% deadline-hit floor. Every -control
// interval the governor compares the live per-class percentiles
// against these targets and walks a brownout ladder — narrow the
// lowest class's answers first, then fast-fail it, then shed it —
// recovering additively once SLOs are met again (see
// internal/governor). /stats exposes the violation and transition
// counters plus the current policy.
//
// The -cache flag arms the semantic result cache: repeated inputs are
// answered straight from a previous walk's logits, or — when the new
// request's deadline affords a wider answer — the engine resumes from
// the cached ladder rung instead of walking from scratch, bitwise
// identical to a cold walk. -exit-margin (a scalar, or a per-class
// comma-separated vector; -exit-calibrate derives argmax-safe
// per-class thresholds from seeded calibration walks and overrides
// both) arms the confidence early exit: the walk stops as soon as the
// top-2 logit margin clears the threshold. The loadgen's -repeat flag
// sends that fraction of requests from a zipf-skewed hot key pool, so
// cache-on vs cache-off runs are directly comparable — in-process, or
// against remote replicas/routers with -targets, where the report
// adds each replica's cache concentration (the end-to-end measure of
// -affinity routing):
//
//	stepserve -loadgen -cache 256 -repeat 0.6 -rps 400 -duration 5s
//	stepserve -loadgen -targets http://router:8080 -repeat 0.6 -rps 400
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"steppingnet/internal/cluster"
	"steppingnet/internal/core"
	"steppingnet/internal/data"
	"steppingnet/internal/governor"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/serve"
	"steppingnet/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stepserve: ")

	modelName := flag.String("model", "lenet3c1l", "network: lenet3c1l, lenet5 or vgg16")
	subnets := flag.Int("subnets", 4, "ladder depth N")
	expansion := flag.Float64("expansion", 1.6, "width expansion ratio")
	classes := flag.Int("classes", 10, "number of classes")
	imgHW := flag.Int("img", 16, "input image height/width")
	seed := flag.Uint64("seed", 1, "master seed")
	train := flag.Bool("train", false, "run the full construction+distillation pipeline instead of a random subnet spread (slow)")

	addr := flag.String("addr", ":8080", "HTTP listen address (server and router modes)")
	workers := flag.Int("workers", 0, "engine-pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 64, "admission queue bound")
	maxBatch := flag.Int("batch", 4, "micro-batch size (1 disables batching)")
	deadline := flag.Duration("deadline", 20*time.Millisecond, "default per-request deadline")
	priorities := flag.Int("priorities", 2, "number of request priority classes (1 disables priorities)")
	refresh := flag.Duration("refresh", 2*time.Second, "calibration refresh interval (0 trusts startup calibration forever)")
	sloSpec := flag.String("slo", "", "per-class SLOs arming the adaptive overload governor, like 1:2ms:0.99 — class:p99target[:min-hit-rate[:min-subnet]] (empty disables the governor)")
	control := flag.Duration("control", 0, "overload governor tick interval (0 = 100ms when -slo is set)")
	cacheEntries := flag.Int("cache", 0, "semantic result cache capacity in entries (0 disables; repeated inputs are answered from — or resumed off — cached ladder state)")
	cacheBytes := flag.Int64("cache-bytes", 0, "semantic cache memory bound in bytes (0 = 64MiB default when -cache is set)")
	cacheTTL := flag.Duration("cache-ttl", 0, "semantic cache entry time-to-live (0 = no age bound; entries still invalidate on calibration refresh)")
	speculate := flag.Bool("speculate", false, "pre-climb the hottest sub-top cached walks during idle worker windows (requires -cache; speculative MACs are metered separately)")
	warmFile := flag.String("warm-file", "", "server: persist the hot input set here on drain and pre-climb it on startup (restart warming)")
	exitMarginSpec := flag.String("exit-margin", "", "confidence early-exit top-2 logit margin: a single threshold, or a comma-separated per-class vector indexed by predicted class (empty disables the exit)")
	exitCalibrate := flag.Int("exit-calibrate", 0, "derive argmax-safe per-class early-exit margins from this many seeded calibration inputs (overrides -exit-margin)")
	hdrTimeout := flag.Duration("hdr-timeout", 5*time.Second, "how long a connection may take to send its request headers before it is closed (slow-loris defense)")

	route := flag.String("route", "", "comma-separated replica base URLs: run as a fault-tolerant router over them instead of serving a model")
	hedge := flag.Bool("hedge", false, "router: race a second replica for requests exceeding their class's observed p99")
	affinity := flag.Bool("affinity", false, "router: rendezvous-hash requests onto replicas by input cache key, so repeats hit the replica whose semantic cache holds the walk")
	affinitySpill := flag.Float64("affinity-spill", 2, "router: spill an affinity pick to the next replica in hash order once its backlog exceeds this factor × the cluster mean (≥1)")
	warm := flag.Bool("warm", false, "router: transfer a spilled key's cache entry from its affinity winner to the replica that caught it (requires -affinity)")

	loadgen := flag.Bool("loadgen", false, "run the load generator instead of the HTTP server")
	targets := flag.String("targets", "", "loadgen: comma-separated replica/router base URLs to drive over HTTP instead of an in-process server")
	rps := flag.Float64("rps", 200, "loadgen: offered requests per second")
	duration := flag.Duration("duration", 5*time.Second, "loadgen: run length")
	deadlineMix := flag.String("deadlines", "", "loadgen: class mix like 4ms:0.5,12ms:0.5:hi — deadline:weight with an optional :hi marking the high-priority class (default: the -deadline flag at weight 1)")
	scenario := flag.String("scenario", "constant", "loadgen: deterministic load shape — constant, diurnal (sinusoid 0.25×–1.75×), burst (0.5× calm with 3× bursts) or step (0.5×/1×/2×/4× staircase)")
	repeat := flag.Float64("repeat", 0, "loadgen: fraction of requests re-sending a zipf-skewed hot-pool input (0..1; exercises the semantic cache, and with -targets the router's cache-affinity placement)")
	slowConns := flag.Int("slow", 0, "loadgen: also open this many slow-loris connections against the first target (demonstrates -hdr-timeout)")
	flag.Parse()

	if *route != "" && *loadgen {
		log.Fatal("-route and -loadgen are mutually exclusive")
	}

	if *route != "" {
		serveRouter(splitTargets(*route), *addr, *deadline, *hedge, *affinity, *affinitySpill, *warm, *hdrTimeout)
		return
	}

	slos, err := parseSLOs(*sloSpec)
	if err != nil {
		log.Fatal(err)
	}
	exitMargin, exitMargins, err := parseExitMargins(*exitMarginSpec)
	if err != nil {
		log.Fatal(err)
	}

	if *loadgen {
		mix, err := parseDeadlineMix(*deadlineMix, *deadline)
		if err != nil {
			log.Fatal(err)
		}
		shape, err := loadShape(*scenario)
		if err != nil {
			log.Fatal(err)
		}
		if *repeat < 0 || *repeat > 1 {
			log.Fatal("-repeat must be in 0..1")
		}
		if *targets != "" {
			// Remote repeats reuse the replicas' input geometry (the
			// server builds with InC=3), so repeated payloads are
			// bit-identical across requests and cache-key stable.
			runRemoteLoadgen(splitTargets(*targets), *rps, *duration, mix, *seed, *slowConns, *scenario, shape, slos,
				*repeat, 3*(*imgHW)*(*imgHW))
			return
		}
		m, srv := mustBuildServing(*modelName, *classes, *imgHW, *expansion, *subnets, *seed, *train,
			*workers, *queueDepth, *maxBatch, *deadline, *priorities, *refresh, slos, *control,
			*cacheEntries, *cacheBytes, *cacheTTL, *speculate, exitMargin, exitMargins, *exitCalibrate)
		runLoadgen(srv, m, *rps, *duration, mix, *seed, *scenario, shape, slos, *repeat)
		srv.Close()
		return
	}

	// Server mode: listen first, build and calibrate in the
	// background. /healthz answers 503 until the model is ready, so a
	// router's probes (and orchestrator readiness checks) see an
	// honest starting state instead of a connection-refused window.
	serveHTTP(*addr, *seed, *hdrTimeout, *warmFile, func() (*serve.Server, *models.Model, error) {
		m, err := buildServeModel(*modelName, *classes, *imgHW, *expansion, *subnets, *seed, *train)
		if err != nil {
			return nil, nil, err
		}
		margins, err := calibratedExitMargins(m, *subnets, *exitCalibrate, *seed)
		if err != nil {
			return nil, nil, err
		}
		if margins == nil {
			margins = exitMargins
		}
		cfg := serve.Config{
			Model: m, Subnets: *subnets,
			Workers: *workers, QueueDepth: *queueDepth, MaxBatch: *maxBatch,
			PriorityClasses: *priorities,
			DefaultDeadline: *deadline,
			RefreshInterval: *refresh,
			SLOs:            slos,
			ControlInterval: *control,
			CacheEntries:    *cacheEntries, CacheBytes: *cacheBytes,
			CacheTTL: *cacheTTL, Speculate: *speculate,
			ExitMargins: margins,
		}
		if margins == nil {
			cfg.ExitMargin = exitMargin
		}
		srv, err := serve.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		logCalibration(srv, m, *subnets)
		logCacheExit(cfg)
		// Restart warming: replay the predecessor process's persisted
		// hot set up the ladder before /healthz goes ready, so the
		// first repeats after a rolling restart hit a warm cache.
		if inputs := loadWarmFile(*warmFile); len(inputs) > 0 {
			n := srv.Prewarm(inputs, 0)
			log.Printf("warm file: pre-climbed %d/%d persisted hot inputs", n, len(inputs))
		}
		return srv, m, nil
	})
}

// mustBuildServing is the synchronous build path for in-process
// loadgen runs: model, serving layer and calibration log, or exit.
func mustBuildServing(modelName string, classes, imgHW int, expansion float64, subnets int, seed uint64, train bool,
	workers, queueDepth, maxBatch int, deadline time.Duration, priorities int, refresh time.Duration,
	slos []governor.SLO, control time.Duration,
	cacheEntries int, cacheBytes int64, cacheTTL time.Duration, speculate bool,
	exitMargin float64, exitMargins []float64, exitCalibrate int) (*models.Model, *serve.Server) {
	m, err := buildServeModel(modelName, classes, imgHW, expansion, subnets, seed, train)
	if err != nil {
		log.Fatal(err)
	}
	margins, err := calibratedExitMargins(m, subnets, exitCalibrate, seed)
	if err != nil {
		log.Fatal(err)
	}
	if margins == nil {
		margins = exitMargins
	}
	cfg := serve.Config{
		Model: m, Subnets: subnets,
		Workers: workers, QueueDepth: queueDepth, MaxBatch: maxBatch,
		PriorityClasses: priorities,
		DefaultDeadline: deadline,
		RefreshInterval: refresh,
		SLOs:            slos,
		ControlInterval: control,
		CacheEntries:    cacheEntries, CacheBytes: cacheBytes,
		CacheTTL: cacheTTL, Speculate: speculate,
		ExitMargins: margins,
	}
	if margins == nil {
		cfg.ExitMargin = exitMargin
	}
	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	logCalibration(srv, m, subnets)
	logCacheExit(cfg)
	return m, srv
}

// parseExitMargins resolves the -exit-margin spec: empty disables the
// exit, a single number is the scalar top-2 margin threshold, and a
// comma-separated vector supplies per-predicted-class thresholds. The
// vector's length is validated against the model's class count by
// serve.New — a mismatched slice is a construction error, never an
// out-of-range index on the serving path.
func parseExitMargins(spec string) (scalar float64, margins []float64, err error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return 0, nil, nil
	}
	parts := strings.Split(spec, ",")
	vals := make([]float64, len(parts))
	for i, p := range parts {
		vals[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return 0, nil, fmt.Errorf("bad -exit-margin entry %q (want a number or comma-separated numbers)", p)
		}
	}
	if len(vals) == 1 {
		return vals[0], nil, nil
	}
	return 0, vals, nil
}

// calibratedExitMargins resolves -exit-calibrate: nCal seeded
// standard-normal inputs (the synthetic datasets' distribution) are
// walked up the full ladder to derive argmax-safe per-class early-exit
// thresholds. nCal ≤ 0 returns nil — the scalar -exit-margin applies.
func calibratedExitMargins(m *models.Model, subnets, nCal int, seed uint64) ([]float64, error) {
	if nCal <= 0 {
		return nil, nil
	}
	imgLen := m.InC * m.InH * m.InW
	rng := tensor.NewRNG(seed ^ 0xEC17)
	inputs := make([][]float64, nCal)
	for i := range inputs {
		inputs[i] = randomInput(rng, imgLen)
	}
	return serve.CalibrateExitMargins(m, subnets, 1, inputs, 0.1, 0)
}

// logCacheExit prints the cache/early-exit arming so an operator can
// see at startup what the serving path will short-circuit.
func logCacheExit(cfg serve.Config) {
	if cfg.CacheEntries > 0 {
		line := fmt.Sprintf("semantic cache: %d entries", cfg.CacheEntries)
		if cfg.CacheTTL > 0 {
			line += fmt.Sprintf(", TTL %v", cfg.CacheTTL)
		}
		if cfg.Speculate {
			line += ", idle-window speculation on"
		}
		log.Print(line)
	}
	switch {
	case len(cfg.ExitMargins) > 0:
		log.Printf("early exit: calibrated per-class margins %v", cfg.ExitMargins)
	case cfg.ExitMargin > 0:
		log.Printf("early exit: margin threshold %g", cfg.ExitMargin)
	}
}

// logCalibration prints the calibrated ladder the scheduler plans
// with.
func logCalibration(srv *serve.Server, m *models.Model, subnets int) {
	lm := srv.Latency()
	log.Printf("model %s, %d subnets, backend %s", m.Name, subnets, tensor.Backend())
	for s := 1; s <= lm.Subnets(); s++ {
		log.Printf("  step %d: %8.3f ms  (+%d MACs, ladder so far %.3f ms)",
			s, ms(lm.StepTime[s-1]), lm.StepMACs[s-1], ms(lm.WalkTime(s)))
	}
	log.Printf("calibrated rate: %.1f MMAC/s", lm.MACRate()/1e6)
}

// parseSLOs parses the -slo spec — comma-separated entries like
// "1:2ms:0.99", each class:p99target[:min-hit-rate[:min-subnet]] —
// into the dense per-class slice serve.Config and the loadgen report
// expect. Classes the spec skips get a zero SLO, which exempts them
// from violation checks (they can still be browned out to protect
// listed classes above them). An empty spec returns nil: governor off.
func parseSLOs(spec string) ([]governor.SLO, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var slos []governor.SLO
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("bad SLO %q (want class:p99target[:min-hit-rate[:min-subnet]])", part)
		}
		class, err := strconv.Atoi(fields[0])
		if err != nil || class < 0 {
			return nil, fmt.Errorf("bad class in SLO %q", part)
		}
		target, err := time.ParseDuration(fields[1])
		if err != nil || target < 0 {
			return nil, fmt.Errorf("bad p99 target in SLO %q", part)
		}
		s := governor.SLO{P99Target: target}
		if len(fields) >= 3 {
			s.MinHitRate, err = strconv.ParseFloat(fields[2], 64)
			if err != nil || s.MinHitRate < 0 || s.MinHitRate > 1 {
				return nil, fmt.Errorf("bad min hit-rate in SLO %q (want 0..1)", part)
			}
		}
		if len(fields) == 4 {
			s.MinSubnet, err = strconv.Atoi(fields[3])
			if err != nil || s.MinSubnet < 0 {
				return nil, fmt.Errorf("bad min subnet in SLO %q", part)
			}
		}
		for class >= len(slos) {
			slos = append(slos, governor.SLO{})
		}
		slos[class] = s
	}
	return slos, nil
}

// splitTargets parses a comma-separated URL list, dropping empties.
func splitTargets(spec string) []string {
	var out []string
	for _, t := range strings.Split(spec, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		log.Fatal("empty target list")
	}
	return out
}

// buildServeModel constructs the model to serve. Without -train the
// units are spread over the ladder with a seeded RNG — MAC ladders
// and the serving data path are exactly those of a constructed model,
// only the weights are untrained (ideal for serving benchmarks and
// smoke tests). With -train the real pipeline runs first.
func buildServeModel(name string, classes, imgHW int, expansion float64, n int, seed uint64, train bool) (*models.Model, error) {
	build, err := models.ByName(name)
	if err != nil {
		return nil, err
	}
	if train {
		budgets := make([]float64, n)
		for i := range budgets {
			budgets[i] = 0.1 + 0.8*float64(i)/float64(max(n-1, 1))
		}
		res, err := core.Run(core.PipelineOptions{
			Build: build,
			Data: data.Config{
				Name: "serve", Classes: classes, C: 3, H: imgHW, W: imgHW,
				Train: 1024, Test: 256, Seed: seed + 10, LabelNoise: 0.04,
			},
			Expansion: expansion,
			Config: core.Config{
				Subnets: n, Budgets: budgets,
				Iterations: 20, TeacherEpochs: 4, DistillEpochs: 4, Seed: seed,
			},
		})
		if err != nil {
			return nil, err
		}
		return res.StudentNet, nil
	}

	m := build(models.Options{
		Classes: classes, InC: 3, InH: imgHW, InW: imgHW,
		Expansion: expansion, Subnets: n, Rule: nn.RuleIncremental, Seed: seed,
	})
	r := tensor.NewRNG(seed ^ 0x5EED5)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for u := 1; u < a.Units(); u++ {
			a.SetID(u, 1+r.Intn(n))
		}
	}
	return m, nil
}

// priorityHeader is the request header carrying the priority class
// when the JSON body doesn't (proxies and gateways set headers more
// easily than they rewrite bodies).
const priorityHeader = "X-Priority"

// Readiness states of a serving process. /healthz answers 200 only
// in appReady — a starting process (model still building,
// calibration still running) and a draining one (SIGTERM received,
// in-flight work finishing) both refuse new work with a 503, which
// is what pulls them out of a router's rotation.
const (
	appStarting int32 = iota
	appReady
	appDraining
)

// app is the serving process's readiness state machine plus the
// handles the HTTP handlers need. The server and model land via
// setReady once the background build finishes; until then every
// endpoint answers 503.
type app struct {
	state atomic.Int32
	srv   atomic.Pointer[serve.Server]
	m     atomic.Pointer[models.Model]

	// net/http runs each handler on its own goroutine and tensor.RNG
	// is not concurrency-safe; serialize the smoke-test input draws.
	rngMu sync.Mutex
	rng   *tensor.RNG
}

func newApp(seed uint64) *app {
	return &app{rng: tensor.NewRNG(seed ^ 0xD06F00D)}
}

// setReady publishes the built serving stack and flips starting →
// ready. If the process is already draining (a SIGTERM raced the
// build), the state stays draining — the server is still stored so
// teardown closes it.
func (a *app) setReady(srv *serve.Server, m *models.Model) {
	a.m.Store(m)
	a.srv.Store(srv)
	a.state.CompareAndSwap(appStarting, appReady)
}

// setDraining flips the process to its terminal state; /healthz goes
// 503 immediately, before the HTTP server stops accepting, so
// routers stop picking this replica while in-flight work finishes.
func (a *app) setDraining() { a.state.Store(appDraining) }

// notReady returns the 503 message for the current state, or "" when
// the app is serving.
func (a *app) notReady() string {
	switch a.state.Load() {
	case appStarting:
		return "starting: model build and calibration in progress"
	case appDraining:
		return "draining"
	}
	return ""
}

// newMux builds the HTTP surface over a serving app: POST /infer,
// GET /stats, GET /healthz, every endpoint gated on readiness.
// Factored out of serveHTTP so the fuzz harness and the readiness
// tests can drive the exact production handler chain through
// httptest without opening a socket.
func newMux(a *app) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if msg := a.notReady(); msg != "" {
			http.Error(w, msg, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		srv := a.srv.Load()
		if srv == nil {
			http.Error(w, a.notReady(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(srv.Stats()); err != nil {
			log.Printf("stats encode: %v", err)
		}
	})
	// The cache-warming wire surface (see cluster.CacheTransfer): GET
	// exports one semantic-cache entry by its hex key, POST installs a
	// transferred one under the local generation. Both answer on a
	// cache-less replica too — GET with an honest 404, POST as a no-op
	// accept — so a heterogeneous fleet never turns warming into
	// breaker evidence.
	mux.HandleFunc("/cache/entry", func(w http.ResponseWriter, r *http.Request) {
		if msg := a.notReady(); msg != "" {
			http.Error(w, msg, http.StatusServiceUnavailable)
			return
		}
		srv := a.srv.Load()
		switch r.Method {
		case http.MethodGet:
			key, err := cluster.ParseKey(r.URL.Query().Get("key"))
			if err != nil {
				http.Error(w, "bad key (want base-16)", http.StatusBadRequest)
				return
			}
			ent, ok := srv.CachePeek(key)
			if !ok {
				http.Error(w, "no cache entry", http.StatusNotFound)
				return
			}
			wire, err := cluster.WireCacheEntry(key, ent)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(wire); err != nil {
				log.Printf("cache entry encode: %v", err)
			}
		case http.MethodPost:
			var wire cluster.CacheEntryWire
			if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&wire); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			k, ent, err := wire.Entry()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			srv.WarmInstall(k, ent)
			fmt.Fprintln(w, "ok")
		default:
			http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if msg := a.notReady(); msg != "" {
			http.Error(w, msg, http.StatusServiceUnavailable)
			return
		}
		srv, m := a.srv.Load(), a.m.Load()
		imgLen := m.InC * m.InH * m.InW
		// Bound the POST /infer payload — unbounded bodies are a
		// trivial memory DoS. The cap scales with the served model's
		// input geometry (a float64 is ≤25 JSON characters plus
		// separator), so a full valid input always fits whatever
		// -img/-model selects; the floor keeps room for metadata on
		// tiny models.
		maxBody := int64(imgLen)*32 + 4096
		if maxBody < 1<<20 {
			maxBody = 1 << 20
		}
		var req cluster.InferRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxBody)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if h := r.Header.Get(priorityHeader); h != "" && req.Priority == 0 {
			p, err := strconv.Atoi(h)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad %s header %q", priorityHeader, h), http.StatusBadRequest)
				return
			}
			req.Priority = p
		}
		if req.Input == nil {
			a.rngMu.Lock()
			req.Input = randomInput(a.rng, imgLen) // smoke-test convenience
			a.rngMu.Unlock()
		}
		// NaN/±Inf deadlines convert to garbage durations; reject them
		// at the door rather than trusting float→int conversion.
		if math.IsNaN(req.DeadlineMs) || math.IsInf(req.DeadlineMs, 0) {
			http.Error(w, "deadline_ms must be finite", http.StatusBadRequest)
			return
		}
		res, err := srv.Submit(serve.Request{
			Input:    req.Input,
			Deadline: time.Duration(req.DeadlineMs * float64(time.Millisecond)),
			Priority: req.Priority,
		})
		switch {
		case errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(cluster.WireResponse(res)); err != nil {
			log.Printf("infer encode: %v", err)
		}
	})
	return mux
}

// newHTTPServer applies the hardening every listening mode shares:
// ReadHeaderTimeout closes slow-loris connections that dribble their
// headers, ReadTimeout bounds a whole request read, IdleTimeout reaps
// parked keep-alive connections. WriteTimeout stays 0 deliberately —
// an /infer response legitimately waits out queue time plus the
// anytime walk, and the serving layer already bounds that by the
// request deadline.
func newHTTPServer(addr string, h http.Handler, hdrTimeout time.Duration) *http.Server {
	return &http.Server{
		Addr: addr, Handler: h,
		ReadHeaderTimeout: hdrTimeout,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// serveHTTP runs the JSON endpoint until SIGINT/SIGTERM: the listener
// comes up immediately answering 503s, the serving stack builds in
// the background (build runs model construction plus calibration) and
// flips /healthz to 200 when done, and a signal drains in order —
// readiness down first, then the HTTP server, then the serving layer,
// so in-flight handlers never see ErrClosed.
func serveHTTP(addr string, seed uint64, hdrTimeout time.Duration, warmFile string, build func() (*serve.Server, *models.Model, error)) {
	a := newApp(seed)
	hs := newHTTPServer(addr, newMux(a), hdrTimeout)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	initErr := make(chan error, 1)
	go func() {
		srv, m, err := build()
		if err != nil {
			initErr <- err
			stop() // tear the listener down; a replica that cannot build must not sit at 503 forever
			return
		}
		a.setReady(srv, m)
		log.Printf("ready")
		initErr <- nil
	}()

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		a.setDraining()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()
	log.Printf("listening on %s", addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns the moment Shutdown starts; wait for
	// Shutdown itself (it blocks until active handlers finish), then
	// for the build (it may still be running), before closing the
	// serving layer.
	<-shutdownDone
	err := <-initErr
	if srv := a.srv.Load(); srv != nil {
		saveWarmFile(warmFile, srv.HotInputs())
		srv.Close()
		log.Printf("drained; final stats: %+v", srv.Stats())
	}
	if err != nil {
		log.Fatal(err)
	}
}

// saveWarmFile persists the draining server's hot input set (hottest
// first) as JSON, so the successor process can pre-climb the same keys
// before taking traffic. Best-effort: a failed write logs and moves
// on — a drain must never hang on a full disk.
func saveWarmFile(path string, inputs [][]float64) {
	if path == "" || len(inputs) == 0 {
		return
	}
	blob, err := json.Marshal(inputs)
	if err != nil {
		log.Printf("warm file: marshal: %v", err)
		return
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		log.Printf("warm file: %v", err)
		return
	}
	log.Printf("warm file: persisted %d hot inputs to %s", len(inputs), path)
}

// loadWarmFile reads a predecessor's persisted hot set. A missing or
// unreadable file returns nil — a fresh start is never an error.
func loadWarmFile(path string) [][]float64 {
	if path == "" {
		return nil
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			log.Printf("warm file: %v", err)
		}
		return nil
	}
	var inputs [][]float64
	if err := json.Unmarshal(blob, &inputs); err != nil {
		log.Printf("warm file: bad contents: %v", err)
		return nil
	}
	return inputs
}

// serveRouter runs the fault-tolerant router mode: the same /infer
// contract, served by spreading requests over the replica URLs with
// health probing, circuit breaking and deadline-aware retry/hedging
// (see internal/cluster.Router).
func serveRouter(targets []string, addr string, defaultDeadline time.Duration, hedge, affinity bool, affinitySpill float64, warm bool, hdrTimeout time.Duration) {
	backends := make([]cluster.Backend, 0, len(targets))
	for _, tgt := range targets {
		backends = append(backends, cluster.NewRemote(tgt))
	}
	ro, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:            backends,
		DefaultDeadline:     defaultDeadline,
		Hedge:               hedge,
		Affinity:            affinity,
		AffinitySpillFactor: affinitySpill,
		Warm:                warm,
	})
	if err != nil {
		log.Fatal(err)
	}

	var draining atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if n := ro.Available(); n > 0 {
			fmt.Fprintf(w, "ok (%d/%d replicas)\n", n, len(targets))
			return
		}
		http.Error(w, "no replica available", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(ro.Stats()); err != nil {
			log.Printf("stats encode: %v", err)
		}
	})
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		var req cluster.InferRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if h := r.Header.Get(priorityHeader); h != "" && req.Priority == 0 {
			p, err := strconv.Atoi(h)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad %s header %q", priorityHeader, h), http.StatusBadRequest)
				return
			}
			req.Priority = p
		}
		if math.IsNaN(req.DeadlineMs) || math.IsInf(req.DeadlineMs, 0) {
			http.Error(w, "deadline_ms must be finite", http.StatusBadRequest)
			return
		}
		// Input passes through untouched (nil lets the chosen replica
		// synthesize its seeded smoke-test image).
		res, err := ro.Submit(serve.Request{
			Input:    req.Input,
			Deadline: time.Duration(req.DeadlineMs * float64(time.Millisecond)),
			Priority: req.Priority,
		})
		switch {
		case err == nil:
		case errors.Is(err, serve.ErrBadInput):
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		case errors.Is(err, serve.ErrOverloaded), errors.Is(err, cluster.ErrNoReplicas),
			errors.Is(err, serve.ErrClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case errors.Is(err, cluster.ErrTransport):
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(cluster.WireResponse(res)); err != nil {
			log.Printf("infer encode: %v", err)
		}
	})

	hs := newHTTPServer(addr, mux, hdrTimeout)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		draining.Store(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()
	log.Printf("routing %d replicas on %s", len(targets), addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
	ro.Close()
	st := ro.Stats()
	log.Printf("drained; routed %d (served %d, failed %d, retries %d, hedges %d, affinity %d routed/%d spilled, warmed %d entries/%d B, %d warm failures)",
		st.Submitted, st.Served, st.Failed, st.Retries, st.Hedges, st.AffinityRouted, st.AffinitySpilled,
		st.WarmTransfers, st.WarmBytes, st.WarmFailures)
	for _, rs := range st.Replicas {
		log.Printf("  %s: up=%v breaker=%s success=%d rejected=%d transport=%d bad=%d retried=%d hedged=%d affinity=%d spills=%d",
			rs.Target, rs.Up, rs.Breaker, rs.Success, rs.Rejected, rs.TransportErrors, rs.BadInputs, rs.Retried, rs.Hedged, rs.AffinityHits, rs.AffinitySpills)
	}
}

// randomInput draws a standard-normal image, the same distribution
// the synthetic datasets use.
func randomInput(rng *tensor.RNG, n int) []float64 {
	x := tensor.New(n)
	x.FillNormal(rng, 0, 1)
	return x.Data()
}

// ms converts a duration to float milliseconds for JSON and logs.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
