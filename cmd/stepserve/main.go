// Command stepserve exposes the anytime-inference serving layer
// (internal/serve) over HTTP, and doubles as a load generator for
// measuring how the service degrades under pressure.
//
// Server mode builds a stepping model (by default an untrained one
// with a seeded random unit→subnet spread — the serving data path is
// identical; pass -train to run the full construction pipeline
// first), calibrates per-subnet step latencies, and listens:
//
//	stepserve -addr :8080 -model lenet3c1l -subnets 4
//	curl -s localhost:8080/infer -d '{"deadline_ms": 5}'
//	curl -s localhost:8080/stats
//
// POST /infer accepts {"input": [...], "deadline_ms": 5, "priority":
// 1} (priority also via the X-Priority header; higher classes shed
// last and keep wider answers under overload — see -priorities). A
// missing input is replaced by a seeded random image (handy for smoke
// tests). The answer reports which subnet produced it, the MACs
// spent, and whether the deadline was met. GET /stats returns the
// serve.Snapshot counters including the per-priority breakdown; GET
// /healthz returns 200 once serving. The -refresh interval keeps the
// deadline calibration tracking live step timings (thermal or
// contention drift) instead of trusting startup numbers forever.
//
// Load-generator mode drives the same in-process service at a
// configurable request rate and class mix (deadline:weight, with an
// optional :hi/:lo/:N priority field), then prints per-class latency
// percentiles, the per-subnet answer distribution and the server's
// per-priority protection summary:
//
//	stepserve -loadgen -rps 400 -duration 5s -deadlines 4ms:0.9,12ms:0.1:hi
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"steppingnet/internal/core"
	"steppingnet/internal/data"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/serve"
	"steppingnet/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stepserve: ")

	modelName := flag.String("model", "lenet3c1l", "network: lenet3c1l, lenet5 or vgg16")
	subnets := flag.Int("subnets", 4, "ladder depth N")
	expansion := flag.Float64("expansion", 1.6, "width expansion ratio")
	classes := flag.Int("classes", 10, "number of classes")
	imgHW := flag.Int("img", 16, "input image height/width")
	seed := flag.Uint64("seed", 1, "master seed")
	train := flag.Bool("train", false, "run the full construction+distillation pipeline instead of a random subnet spread (slow)")

	addr := flag.String("addr", ":8080", "HTTP listen address (server mode)")
	workers := flag.Int("workers", 0, "engine-pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue", 64, "admission queue bound")
	maxBatch := flag.Int("batch", 4, "micro-batch size (1 disables batching)")
	deadline := flag.Duration("deadline", 20*time.Millisecond, "default per-request deadline")
	priorities := flag.Int("priorities", 2, "number of request priority classes (1 disables priorities)")
	refresh := flag.Duration("refresh", 2*time.Second, "calibration refresh interval (0 trusts startup calibration forever)")

	loadgen := flag.Bool("loadgen", false, "run the in-process load generator instead of the HTTP server")
	rps := flag.Float64("rps", 200, "loadgen: offered requests per second")
	duration := flag.Duration("duration", 5*time.Second, "loadgen: run length")
	deadlineMix := flag.String("deadlines", "", "loadgen: class mix like 4ms:0.5,12ms:0.5:hi — deadline:weight with an optional :hi marking the high-priority class (default: the -deadline flag at weight 1)")
	flag.Parse()

	m, err := buildServeModel(*modelName, *classes, *imgHW, *expansion, *subnets, *seed, *train)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Model: m, Subnets: *subnets,
		Workers: *workers, QueueDepth: *queueDepth, MaxBatch: *maxBatch,
		PriorityClasses: *priorities,
		DefaultDeadline: *deadline,
		RefreshInterval: *refresh,
	})
	if err != nil {
		log.Fatal(err)
	}
	lm := srv.Latency()
	log.Printf("model %s, %d subnets, backend %s", m.Name, *subnets, tensor.Backend())
	for s := 1; s <= lm.Subnets(); s++ {
		log.Printf("  step %d: %8.3f ms  (+%d MACs, ladder so far %.3f ms)",
			s, ms(lm.StepTime[s-1]), lm.StepMACs[s-1], ms(lm.WalkTime(s)))
	}
	log.Printf("calibrated rate: %.1f MMAC/s", lm.MACRate()/1e6)

	if *loadgen {
		mix, err := parseDeadlineMix(*deadlineMix, *deadline)
		if err != nil {
			log.Fatal(err)
		}
		runLoadgen(srv, m, *rps, *duration, mix, *seed)
		srv.Close()
		return
	}
	serveHTTP(srv, m, *addr, *seed)
}

// buildServeModel constructs the model to serve. Without -train the
// units are spread over the ladder with a seeded RNG — MAC ladders
// and the serving data path are exactly those of a constructed model,
// only the weights are untrained (ideal for serving benchmarks and
// smoke tests). With -train the real pipeline runs first.
func buildServeModel(name string, classes, imgHW int, expansion float64, n int, seed uint64, train bool) (*models.Model, error) {
	build, err := models.ByName(name)
	if err != nil {
		return nil, err
	}
	if train {
		budgets := make([]float64, n)
		for i := range budgets {
			budgets[i] = 0.1 + 0.8*float64(i)/float64(max(n-1, 1))
		}
		res, err := core.Run(core.PipelineOptions{
			Build: build,
			Data: data.Config{
				Name: "serve", Classes: classes, C: 3, H: imgHW, W: imgHW,
				Train: 1024, Test: 256, Seed: seed + 10, LabelNoise: 0.04,
			},
			Expansion: expansion,
			Config: core.Config{
				Subnets: n, Budgets: budgets,
				Iterations: 20, TeacherEpochs: 4, DistillEpochs: 4, Seed: seed,
			},
		})
		if err != nil {
			return nil, err
		}
		return res.StudentNet, nil
	}

	m := build(models.Options{
		Classes: classes, InC: 3, InH: imgHW, InW: imgHW,
		Expansion: expansion, Subnets: n, Rule: nn.RuleIncremental, Seed: seed,
	})
	r := tensor.NewRNG(seed ^ 0x5EED5)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for u := 1; u < a.Units(); u++ {
			a.SetID(u, 1+r.Intn(n))
		}
	}
	return m, nil
}

// inferRequest is the POST /infer payload.
type inferRequest struct {
	Input      []float64 `json:"input,omitempty"`
	DeadlineMs float64   `json:"deadline_ms,omitempty"`
	Priority   int       `json:"priority,omitempty"`
}

// inferResponse is the POST /infer answer.
type inferResponse struct {
	Subnet      int       `json:"subnet"`
	Pred        int       `json:"pred"`
	Logits      []float64 `json:"logits"`
	MACs        int64     `json:"macs"`
	Priority    int       `json:"priority"`
	DeadlineMet bool      `json:"deadline_met"`
	QueueWaitMs float64   `json:"queue_wait_ms"`
	LatencyMs   float64   `json:"latency_ms"`
}

// priorityHeader is the request header carrying the priority class
// when the JSON body doesn't (proxies and gateways set headers more
// easily than they rewrite bodies).
const priorityHeader = "X-Priority"

// newMux builds the HTTP surface over a serving layer: POST /infer,
// GET /stats, GET /healthz. Factored out of serveHTTP so the fuzz
// harness can drive the exact production handler chain through
// httptest without opening a socket.
func newMux(srv *serve.Server, m *models.Model, seed uint64) *http.ServeMux {
	imgLen := m.InC * m.InH * m.InW
	// Bound the POST /infer payload — unbounded bodies are a trivial
	// memory DoS. The cap scales with the served model's input
	// geometry (a float64 is ≤25 JSON characters plus separator), so
	// a full valid input always fits whatever -img/-model selects;
	// the floor keeps room for metadata on tiny models.
	maxBody := int64(imgLen)*32 + 4096
	if maxBody < 1<<20 {
		maxBody = 1 << 20
	}
	// net/http runs each handler on its own goroutine and tensor.RNG
	// is not concurrency-safe; serialize the smoke-test input draws.
	var rngMu sync.Mutex
	rng := tensor.NewRNG(seed ^ 0xD06F00D)

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(srv.Stats()); err != nil {
			log.Printf("stats encode: %v", err)
		}
	})
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req inferRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxBody)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if h := r.Header.Get(priorityHeader); h != "" && req.Priority == 0 {
			p, err := strconv.Atoi(h)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad %s header %q", priorityHeader, h), http.StatusBadRequest)
				return
			}
			req.Priority = p
		}
		if req.Input == nil {
			rngMu.Lock()
			req.Input = randomInput(rng, imgLen) // smoke-test convenience
			rngMu.Unlock()
		}
		// NaN/±Inf deadlines convert to garbage durations; reject them
		// at the door rather than trusting float→int conversion.
		if math.IsNaN(req.DeadlineMs) || math.IsInf(req.DeadlineMs, 0) {
			http.Error(w, "deadline_ms must be finite", http.StatusBadRequest)
			return
		}
		res, err := srv.Submit(serve.Request{
			Input:    req.Input,
			Deadline: time.Duration(req.DeadlineMs * float64(time.Millisecond)),
			Priority: req.Priority,
		})
		switch {
		case errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(inferResponse{
			Subnet: res.Subnet, Pred: res.Pred, Logits: res.Logits, MACs: res.MACs,
			Priority:    res.Priority,
			DeadlineMet: res.DeadlineMet,
			QueueWaitMs: ms(res.QueueWait), LatencyMs: ms(res.Latency),
		}); err != nil {
			log.Printf("infer encode: %v", err)
		}
	})
	return mux
}

// serveHTTP runs the JSON endpoint until SIGINT/SIGTERM, then drains
// the HTTP server and the serving layer in order.
func serveHTTP(srv *serve.Server, m *models.Model, addr string, seed uint64) {
	hs := &http.Server{Addr: addr, Handler: newMux(srv, m, seed)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()
	log.Printf("listening on %s", addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns the moment Shutdown starts; wait for
	// Shutdown itself (it blocks until active handlers finish) before
	// closing the serving layer, so in-flight handlers never see
	// ErrClosed.
	<-shutdownDone
	srv.Close()
	log.Printf("drained; final stats: %+v", srv.Stats())
}

// randomInput draws a standard-normal image, the same distribution
// the synthetic datasets use.
func randomInput(rng *tensor.RNG, n int) []float64 {
	x := tensor.New(n)
	x.FillNormal(rng, 0, 1)
	return x.Data()
}

// ms converts a duration to float milliseconds for JSON and logs.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
