package main

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"steppingnet/internal/models"
	"steppingnet/internal/serve"
	"steppingnet/internal/tensor"
)

// deadlineClass is one entry of the loadgen's class mix.
type deadlineClass struct {
	d    time.Duration
	w    float64 // relative weight
	prio int     // serve priority class (0 = lowest)
}

// parseDeadlineMix parses "4ms:0.9,12ms:0.1:hi" into classes —
// deadline:weight with an optional third field naming the priority
// ("hi"/"lo" or a numeric class). An empty spec yields a single
// low-priority class at the server's default deadline.
func parseDeadlineMix(spec string, fallback time.Duration) ([]deadlineClass, error) {
	if strings.TrimSpace(spec) == "" {
		return []deadlineClass{{d: fallback, w: 1}}, nil
	}
	var mix []deadlineClass
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("bad class %q (want deadline:weight or deadline:weight:prio)", part)
		}
		d, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad deadline in %q: %v", part, err)
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight in %q", part)
		}
		prio := 0
		if len(fields) == 3 {
			switch fields[2] {
			case "lo":
				prio = 0
			case "hi":
				prio = 1
			default:
				prio, err = strconv.Atoi(fields[2])
				if err != nil || prio < 0 {
					return nil, fmt.Errorf("bad priority in %q (want lo, hi or a class number)", part)
				}
			}
		}
		mix = append(mix, deadlineClass{d: d, w: w, prio: prio})
	}
	return mix, nil
}

// pickClass draws a class index proportionally to the weights.
func pickClass(mix []deadlineClass, rng *tensor.RNG) int {
	var total float64
	for _, c := range mix {
		total += c.w
	}
	x := rng.Float64() * total
	for i, c := range mix {
		x -= c.w
		if x < 0 {
			return i
		}
	}
	return len(mix) - 1
}

// classStats accumulates per-deadline-class outcomes.
type classStats struct {
	sent, served, rejected, dropped, met int
	lats                                 []time.Duration
}

// maxInflight caps the load generator's concurrent requests. Ticks
// that fire beyond the cap are counted as client-side drops instead
// of spawning ever more goroutines — an unbounded spawn backlog would
// stretch the measurement window and fake better throughput than the
// service really has.
const maxInflight = 256

// runLoadgen offers an open-loop request stream at the given rate for
// the given duration, then prints the serving report: per-class
// latency percentiles and deadline hit rates, and the global
// per-subnet answer distribution — the observable form of the anytime
// property under load.
func runLoadgen(srv *serve.Server, m *models.Model, rps float64, duration time.Duration, mix []deadlineClass, seed uint64) {
	if rps <= 0 {
		log.Fatal("loadgen: -rps must be positive")
	}
	imgLen := m.InC * m.InH * m.InW
	// A fixed pool of seeded inputs: the generator must not spend its
	// tick budget on RNG work.
	const inputPool = 64
	inputs := make([][]float64, inputPool)
	rng := tensor.NewRNG(seed ^ 0x10ADF5)
	for i := range inputs {
		inputs[i] = randomInput(rng, imgLen)
	}

	n := srv.Latency().Subnets()
	log.Printf("loadgen: %.0f rps for %v, deadline mix %s", rps, duration, mixString(mix))

	var (
		mu       sync.Mutex
		perClass = make([]classStats, len(mix))
		bySubnet = make([]int64, n)
		wg       sync.WaitGroup
		inflight atomic.Int64
	)

	// Sub-millisecond tick intervals coalesce under load, silently
	// capping the offered rate; tick at ≥1ms and fire a burst per
	// tick instead.
	interval := time.Duration(float64(time.Second) / rps)
	burst := 1
	if interval < time.Millisecond {
		burst = int(rps*time.Millisecond.Seconds() + 0.5)
		interval = time.Duration(float64(burst) * float64(time.Second) / rps)
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(duration)
	offered := 0

	fire := func() {
		offered++
		ci := pickClass(mix, rng)
		st := &perClass[ci]
		st.sent++
		if inflight.Load() >= maxInflight {
			st.dropped++
			return
		}
		inflight.Add(1)
		in := inputs[offered%inputPool]
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			defer inflight.Add(-1)
			// Latencies below are service latency (admission→answer),
			// the serving layer's SLO; client-side time would mostly
			// measure this co-located generator's own goroutine
			// scheduling on a shared CPU.
			res, err := srv.Submit(serve.Request{Input: in, Deadline: mix[ci].d, Priority: mix[ci].prio})
			mu.Lock()
			defer mu.Unlock()
			st := &perClass[ci]
			switch {
			case errors.Is(err, serve.ErrOverloaded):
				st.rejected++
			case err != nil:
				log.Printf("loadgen: submit: %v", err)
			default:
				st.served++
				if res.DeadlineMet {
					st.met++
				}
				st.lats = append(st.lats, res.Latency)
				if res.Subnet >= 1 && res.Subnet <= n {
					bySubnet[res.Subnet-1]++
				}
			}
		}(ci)
	}

loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			for i := 0; i < burst; i++ {
				fire()
			}
		}
	}
	wg.Wait()

	fmt.Printf("\noffered %d requests (%.0f rps × %v)\n", offered, rps, duration)
	fmt.Printf("%-10s %4s %7s %7s %7s %7s %9s %9s %9s  %s\n",
		"deadline", "prio", "sent", "served", "reject", "drop", "p50", "p95", "p99", "hit-rate")
	for i, c := range mix {
		st := perClass[i]
		sort.Slice(st.lats, func(a, b int) bool { return st.lats[a] < st.lats[b] })
		hit := 0.0
		if st.served > 0 {
			hit = float64(st.met) / float64(st.served)
		}
		fmt.Printf("%-10v %4d %7d %7d %7d %7d %8.2fm %8.2fm %8.2fm  %6.1f%%\n",
			c.d, c.prio, st.sent, st.served, st.rejected, st.dropped,
			serve.PercentileMs(st.lats, 0.50), serve.PercentileMs(st.lats, 0.95), serve.PercentileMs(st.lats, 0.99),
			100*hit)
	}

	var served int64
	for _, c := range bySubnet {
		served += c
	}
	fmt.Printf("\nanswer distribution over the subnet ladder (%d served):\n", served)
	for s := 1; s <= n; s++ {
		frac := 0.0
		if served > 0 {
			frac = float64(bySubnet[s-1]) / float64(served)
		}
		fmt.Printf("  subnet %d %7d  %5.1f%%  %s\n", s, bySubnet[s-1], 100*frac, bar(frac, 40))
	}
	snap := srv.Stats()
	fmt.Printf("\nserver: served %d, rejected %d, deadline hit-rate %.1f%%, mean %.0f kMAC/answer, %d calibration refreshes\n",
		snap.Served, snap.Rejected, 100*snap.DeadlineHitRate, meanKMAC(snap), snap.Refreshes)
	if len(snap.Classes) > 1 {
		fmt.Printf("per-priority protection (server view):\n")
		for _, cs := range snap.Classes {
			if cs.Submitted == 0 {
				continue
			}
			fmt.Printf("  prio %d: served %5d  rejected %5d  hit-rate %5.1f%%  p99 %6.2fms  subnets %v\n",
				cs.Priority, cs.Served, cs.Rejected, 100*cs.DeadlineHitRate, cs.P99Ms, cs.BySubnet)
		}
	}
}

// mixString renders the class mix for the log line.
func mixString(mix []deadlineClass) string {
	parts := make([]string, len(mix))
	for i, c := range mix {
		parts[i] = fmt.Sprintf("%v:%g:%d", c.d, c.w, c.prio)
	}
	return strings.Join(parts, ",")
}

// bar renders a fraction as a fixed-width ASCII bar.
func bar(frac float64, width int) string {
	fill := int(frac*float64(width) + 0.5)
	if fill > width {
		fill = width
	}
	return strings.Repeat("█", fill) + strings.Repeat("·", width-fill)
}

// meanKMAC is the average per-answer MAC cost in thousands.
func meanKMAC(s serve.Snapshot) float64 {
	if s.Served == 0 {
		return 0
	}
	return float64(s.TotalMACs) / float64(s.Served) / 1e3
}
