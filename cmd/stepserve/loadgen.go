package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"steppingnet/internal/cluster"
	"steppingnet/internal/governor"
	"steppingnet/internal/models"
	"steppingnet/internal/serve"
	"steppingnet/internal/tensor"
)

// deadlineClass is one entry of the loadgen's class mix.
type deadlineClass struct {
	d    time.Duration
	w    float64 // relative weight
	prio int     // serve priority class (0 = lowest)
}

// parseDeadlineMix parses "4ms:0.9,12ms:0.1:hi" into classes —
// deadline:weight with an optional third field naming the priority
// ("hi"/"lo" or a numeric class). An empty spec yields a single
// low-priority class at the server's default deadline.
func parseDeadlineMix(spec string, fallback time.Duration) ([]deadlineClass, error) {
	if strings.TrimSpace(spec) == "" {
		return []deadlineClass{{d: fallback, w: 1}}, nil
	}
	var mix []deadlineClass
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("bad class %q (want deadline:weight or deadline:weight:prio)", part)
		}
		d, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad deadline in %q: %v", part, err)
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight in %q", part)
		}
		prio := 0
		if len(fields) == 3 {
			switch fields[2] {
			case "lo":
				prio = 0
			case "hi":
				prio = 1
			default:
				prio, err = strconv.Atoi(fields[2])
				if err != nil || prio < 0 {
					return nil, fmt.Errorf("bad priority in %q (want lo, hi or a class number)", part)
				}
			}
		}
		mix = append(mix, deadlineClass{d: d, w: w, prio: prio})
	}
	return mix, nil
}

// loadShape maps a -scenario name to its rate multiplier as a pure
// function of the elapsed run fraction ∈ [0,1). The shapes are
// deterministic by construction — no randomness, no wall-clock beyond
// the run's own elapsed time — so the same flags reproduce the same
// offered-load curve and the governor's response to it:
//
//	constant  1× throughout (the pre-scenario behavior)
//	diurnal   one sinusoidal "day": trough 0.25×, peak 1.75×, mean 1×
//	burst     calm 0.5× baseline with 3× bursts over the 15–25%,
//	          45–55% and 75–85% windows of the run
//	step      staircase 0.5× → 1× → 2× → 4× by quarter
func loadShape(name string) (func(frac float64) float64, error) {
	switch name {
	case "", "constant":
		return func(float64) float64 { return 1 }, nil
	case "diurnal":
		return func(f float64) float64 { return 1 + 0.75*math.Sin(2*math.Pi*f-math.Pi/2) }, nil
	case "burst":
		return func(f float64) float64 {
			if (f >= 0.15 && f < 0.25) || (f >= 0.45 && f < 0.55) || (f >= 0.75 && f < 0.85) {
				return 3
			}
			return 0.5
		}, nil
	case "step":
		return func(f float64) float64 {
			switch {
			case f < 0.25:
				return 0.5
			case f < 0.5:
				return 1
			case f < 0.75:
				return 2
			default:
				return 4
			}
		}, nil
	}
	return nil, fmt.Errorf("unknown scenario %q (want constant, diurnal, burst or step)", name)
}

// inputMixer draws request inputs with a configurable key-reuse mix:
// a `repeat` fraction of requests re-send one of hotPoolSize popular
// inputs with a harmonic (zipf-like) popularity skew — the traffic a
// semantic result cache exploits — while the rest walk a coldRingSize
// ring of mostly-unique inputs. repeat = 0 degenerates to the cold
// ring alone (the cache-off baseline sends the exact same byte
// streams, so comparisons isolate the cache).
type inputMixer struct {
	hot    [][]float64
	cold   [][]float64
	cum    []float64 // cumulative harmonic weights over hot
	repeat float64
	next   int // cold ring cursor
}

// Hot/cold pool sizes of the loadgen's key-reuse mix: the hot pool is
// small enough that any reasonable -cache setting holds all of it,
// the cold ring large enough that a small cache cannot.
const (
	hotPoolSize  = 16
	coldRingSize = 1024
)

// newInputMixer seeds both pools deterministically from rng.
func newInputMixer(rng *tensor.RNG, imgLen int, repeat float64) *inputMixer {
	mx := &inputMixer{repeat: repeat}
	mx.hot = make([][]float64, hotPoolSize)
	mx.cum = make([]float64, hotPoolSize)
	sum := 0.0
	for i := range mx.hot {
		mx.hot[i] = randomInput(rng, imgLen)
		// Zipf s=0.5: key k gets weight 1/√k. Skewed toward low keys,
		// but not so head-heavy that the top two keys carry half the
		// pool (as 1/k would) — the popularity tail is what stresses a
		// cache's eviction policy and a router's key placement.
		sum += 1 / math.Sqrt(float64(i+1))
		mx.cum[i] = sum
	}
	mx.cold = make([][]float64, coldRingSize)
	for i := range mx.cold {
		mx.cold[i] = randomInput(rng, imgLen)
	}
	return mx
}

// pick returns the next request's input; rng drives the hot/cold coin
// and the zipf draw, the cold cursor advances deterministically.
func (mx *inputMixer) pick(rng *tensor.RNG) []float64 {
	if mx.repeat > 0 && rng.Float64() < mx.repeat {
		x := rng.Float64() * mx.cum[len(mx.cum)-1]
		for i, c := range mx.cum {
			if x < c {
				return mx.hot[i]
			}
		}
		return mx.hot[len(mx.hot)-1]
	}
	in := mx.cold[mx.next%len(mx.cold)]
	mx.next++
	return in
}

// burstAt advances the carry-forward accumulator by one tick at the
// given shape multiplier, returning how many requests to fire now.
// Pure and deterministic — the golden scenario tests pin its output
// sequence for every -scenario shape.
func burstAt(carry *float64, burst int, mult float64) int {
	*carry += float64(burst) * mult
	n := int(*carry)
	*carry -= float64(n)
	return n
}

// pickClass draws a class index proportionally to the weights.
func pickClass(mix []deadlineClass, rng *tensor.RNG) int {
	var total float64
	for _, c := range mix {
		total += c.w
	}
	x := rng.Float64() * total
	for i, c := range mix {
		x -= c.w
		if x < 0 {
			return i
		}
	}
	return len(mix) - 1
}

// classStats accumulates per-deadline-class outcomes.
type classStats struct {
	sent, served, rejected, transport, dropped, met int
	lats                                            []time.Duration
}

// loadTarget is one destination the generator spreads requests over —
// the in-process server, a replica URL or a router URL — plus its
// client-side outcome counters (guarded by the run's mutex).
type loadTarget struct {
	name   string
	submit func(serve.Request) (serve.Result, error)

	sent, ok, rejected, transport int
}

// maxInflight caps the load generator's concurrent requests. Ticks
// that fire beyond the cap are counted as client-side drops instead
// of spawning ever more goroutines — an unbounded spawn backlog would
// stretch the measurement window and fake better throughput than the
// service really has.
const maxInflight = 256

// driveLoad offers an open-loop request stream at the given base rate
// for the given duration, spreading requests round-robin over the
// targets and classifying every outcome client-side: served (with
// latency), rejected (typed overload shed), transport error
// (unreachable, torn or draining target), or dropped before send
// (in-flight cap). The shape function (see loadShape) scales the
// instantaneous rate by the elapsed run fraction — fractional
// per-tick counts are carried forward so the offered total tracks the
// curve's integral rather than rounding it away. A nil pick function
// sends input-less requests — remote replicas synthesize their own
// seeded image, keeping the generator's CPU out of the measurement.
func driveLoad(tgs []*loadTarget, rps float64, duration time.Duration, mix []deadlineClass, pick func(*tensor.RNG) []float64, rng *tensor.RNG, shape func(float64) float64) ([]classStats, []int64, int) {
	var (
		mu       sync.Mutex
		perClass = make([]classStats, len(mix))
		bySubnet []int64
		wg       sync.WaitGroup
		inflight atomic.Int64
	)

	// Sub-millisecond tick intervals coalesce under load, silently
	// capping the offered rate; tick at ≥1ms and fire a burst per
	// tick instead.
	interval := time.Duration(float64(time.Second) / rps)
	burst := 1
	if interval < time.Millisecond {
		burst = int(rps*time.Millisecond.Seconds() + 0.5)
		interval = time.Duration(float64(burst) * float64(time.Second) / rps)
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(duration)
	offered := 0

	fire := func() {
		offered++
		ci := pickClass(mix, rng)
		tg := tgs[offered%len(tgs)]
		st := &perClass[ci]
		st.sent++
		tg.sent++
		if inflight.Load() >= maxInflight {
			st.dropped++
			return
		}
		inflight.Add(1)
		var in []float64
		if pick != nil {
			in = pick(rng)
		}
		wg.Add(1)
		go func(ci int, tg *loadTarget) {
			defer wg.Done()
			defer inflight.Add(-1)
			// Latencies below are service latency (admission→answer),
			// the serving layer's SLO; client-side time would mostly
			// measure this co-located generator's own goroutine
			// scheduling on a shared CPU.
			res, err := tg.submit(serve.Request{Input: in, Deadline: mix[ci].d, Priority: mix[ci].prio})
			mu.Lock()
			defer mu.Unlock()
			st := &perClass[ci]
			switch {
			case errors.Is(err, serve.ErrOverloaded), errors.Is(err, cluster.ErrNoReplicas):
				st.rejected++
				tg.rejected++
			case errors.Is(err, cluster.ErrTransport), errors.Is(err, serve.ErrClosed):
				st.transport++
				tg.transport++
			case err != nil:
				log.Printf("loadgen: submit: %v", err)
				st.transport++
				tg.transport++
			default:
				st.served++
				tg.ok++
				if res.DeadlineMet {
					st.met++
				}
				st.lats = append(st.lats, res.Latency)
				for res.Subnet > len(bySubnet) {
					bySubnet = append(bySubnet, 0)
				}
				if res.Subnet >= 1 {
					bySubnet[res.Subnet-1]++
				}
			}
		}(ci, tg)
	}

	start := time.Now()
	carry := 0.0
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			// Scale this tick's burst by the scenario's multiplier at
			// the current point of the run; the fractional remainder
			// rolls into the next tick.
			frac := float64(time.Since(start)) / float64(duration)
			for i, n := 0, burstAt(&carry, burst, shape(frac)); i < n; i++ {
				fire()
			}
		}
	}
	wg.Wait()
	return perClass, bySubnet, offered
}

// printClassReport renders the per-class table, the per-priority SLO
// attainment verdicts and the subnet-ladder answer distribution every
// loadgen mode shares. The slo column is each row's fraction of served
// answers within its priority's p99 target ("-" for exempt classes);
// the verdict lines aggregate mix rows sharing a priority class and
// judge the measured p99 and hit-rate against the configured SLO.
func printClassReport(mix []deadlineClass, perClass []classStats, bySubnet []int64, offered int, rps float64, duration time.Duration, scenario string, slos []governor.SLO) {
	if scenario == "" {
		scenario = "constant"
	}
	fmt.Printf("\noffered %d requests (%.0f rps base × %v, scenario %s)\n", offered, rps, duration, scenario)
	fmt.Printf("%-10s %4s %7s %7s %7s %7s %7s %9s %9s %9s  %8s %8s\n",
		"deadline", "prio", "sent", "served", "reject", "xport", "drop", "p50", "p95", "p99", "hit-rate", "slo")
	for i, c := range mix {
		st := perClass[i]
		sort.Slice(st.lats, func(a, b int) bool { return st.lats[a] < st.lats[b] })
		hit := 0.0
		if st.served > 0 {
			hit = float64(st.met) / float64(st.served)
		}
		sloCol := "-"
		if s, ok := sloFor(slos, c.prio); ok && s.P99Target > 0 && st.served > 0 {
			within := 0
			for _, l := range st.lats {
				if l <= s.P99Target {
					within++
				}
			}
			sloCol = fmt.Sprintf("%.1f%%", 100*float64(within)/float64(st.served))
		}
		fmt.Printf("%-10v %4d %7d %7d %7d %7d %7d %8.2fm %8.2fm %8.2fm  %7.1f%% %8s\n",
			c.d, c.prio, st.sent, st.served, st.rejected, st.transport, st.dropped,
			serve.PercentileMs(st.lats, 0.50), serve.PercentileMs(st.lats, 0.95), serve.PercentileMs(st.lats, 0.99),
			100*hit, sloCol)
	}
	printSLOVerdicts(mix, perClass, slos)

	var served int64
	for _, c := range bySubnet {
		served += c
	}
	fmt.Printf("\nanswer distribution over the subnet ladder (%d served):\n", served)
	for s := 1; s <= len(bySubnet); s++ {
		frac := 0.0
		if served > 0 {
			frac = float64(bySubnet[s-1]) / float64(served)
		}
		fmt.Printf("  subnet %d %7d  %5.1f%%  %s\n", s, bySubnet[s-1], 100*frac, bar(frac, 40))
	}
}

// sloFor returns the SLO governing a priority class, reporting false
// for classes outside the spec or with a zero (exempt) entry.
func sloFor(slos []governor.SLO, prio int) (governor.SLO, bool) {
	if prio < 0 || prio >= len(slos) {
		return governor.SLO{}, false
	}
	s := slos[prio]
	if s.P99Target == 0 && s.MinHitRate == 0 {
		return governor.SLO{}, false
	}
	return s, true
}

// printSLOVerdicts judges each configured SLO against the client-side
// measurements, aggregating mix rows that share a priority class.
func printSLOVerdicts(mix []deadlineClass, perClass []classStats, slos []governor.SLO) {
	printed := false
	for prio := 0; prio < len(slos); prio++ {
		s, ok := sloFor(slos, prio)
		if !ok {
			continue
		}
		var (
			lats        []time.Duration
			served, met int
		)
		for i, c := range mix {
			if c.prio != prio {
				continue
			}
			lats = append(lats, perClass[i].lats...)
			served += perClass[i].served
			met += perClass[i].met
		}
		if served == 0 {
			continue
		}
		if !printed {
			fmt.Printf("\nSLO attainment (client view):\n")
			printed = true
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		p99 := serve.PercentileMs(lats, 0.99)
		hit := float64(met) / float64(served)
		verdict := "MET"
		if (s.P99Target > 0 && p99 > ms(s.P99Target)) || hit < s.MinHitRate {
			verdict = "VIOLATED"
		}
		line := fmt.Sprintf("  prio %d: p99 %.2fms", prio, p99)
		if s.P99Target > 0 {
			line += fmt.Sprintf(" (target %.2fms)", ms(s.P99Target))
		}
		line += fmt.Sprintf(", hit-rate %.1f%%", 100*hit)
		if s.MinHitRate > 0 {
			line += fmt.Sprintf(" (target %.1f%%)", 100*s.MinHitRate)
		}
		fmt.Printf("%s  → %s\n", line, verdict)
	}
}

// printTargetReport renders the client-side per-target outcome
// breakdown.
func printTargetReport(tgs []*loadTarget) {
	fmt.Printf("\nper-target outcomes (client view):\n")
	fmt.Printf("  %-28s %7s %7s %7s %7s\n", "target", "sent", "ok", "reject", "xport")
	for _, tg := range tgs {
		fmt.Printf("  %-28s %7d %7d %7d %7d\n", tg.name, tg.sent, tg.ok, tg.rejected, tg.transport)
	}
}

// runLoadgen drives the in-process serving layer (the original mode:
// no HTTP between generator and server) and prints the serving
// report, including the server's own per-priority protection summary.
func runLoadgen(srv *serve.Server, m *models.Model, rps float64, duration time.Duration, mix []deadlineClass, seed uint64, scenario string, shape func(float64) float64, slos []governor.SLO, repeat float64) {
	if rps <= 0 {
		log.Fatal("loadgen: -rps must be positive")
	}
	// Pre-seeded input pools: the generator must not spend its tick
	// budget on RNG work. The mixer's hot/cold split realizes the
	// -repeat key-reuse fraction (repeat 0 = every request from the
	// cold ring).
	rng := tensor.NewRNG(seed ^ 0x10ADF5)
	mx := newInputMixer(rng, m.InC*m.InH*m.InW, repeat)

	log.Printf("loadgen: %.0f rps base for %v (scenario %s), deadline mix %s, key reuse %.0f%%",
		rps, duration, scenario, mixString(mix), 100*repeat)
	tg := &loadTarget{name: "in-process", submit: srv.Submit}
	perClass, bySubnet, offered := driveLoad([]*loadTarget{tg}, rps, duration, mix, mx.pick, rng, shape)
	printClassReport(mix, perClass, bySubnet, offered, rps, duration, scenario, slos)

	snap := srv.Stats()
	fmt.Printf("\nserver: served %d, rejected %d, deadline hit-rate %.1f%%, mean %.0f kMAC/answer, %d calibration refreshes\n",
		snap.Served, snap.Rejected, 100*snap.DeadlineHitRate, meanKMAC(snap), snap.Refreshes)
	printClassProtection(snap)
}

// runRemoteLoadgen drives one or more replica/router URLs over HTTP:
// requests round-robin across the targets, outcomes are classified
// per target, and after the run each target's own /stats view is
// fetched and summarized (a router target additionally reports its
// retry/hedge/affinity counters, its per-replica breakdown and — when
// the replicas run semantic caches — each replica's cache-hit share,
// the end-to-end measure of affinity placement). With repeat > 0 the
// generator sends that fraction of requests from the zipf hot pool
// (inputs of imgLen elements, matching the replicas' input geometry).
// With slowConns > 0, that many slow-loris connections run against
// the first target for the whole window, demonstrating the
// -hdr-timeout defense.
func runRemoteLoadgen(targets []string, rps float64, duration time.Duration, mix []deadlineClass, seed uint64, slowConns int, scenario string, shape func(float64) float64, slos []governor.SLO, repeat float64, imgLen int) {
	if rps <= 0 {
		log.Fatal("loadgen: -rps must be positive")
	}
	rng := tensor.NewRNG(seed ^ 0x10ADF5)
	var (
		tgs      []*loadTarget
		backends []*cluster.Remote
	)
	for _, u := range targets {
		b := cluster.NewRemote(u)
		backends = append(backends, b)
		tgs = append(tgs, &loadTarget{name: b.Target(), submit: func(req serve.Request) (serve.Result, error) {
			// Transport budget: the request deadline plus slack for
			// queue-jump scheduling and the hop itself. The serving
			// layer answers within the deadline by construction; the
			// slack only catches wedged connections.
			ctx, cancel := context.WithTimeout(context.Background(), req.Deadline+2*time.Second)
			defer cancel()
			return b.Submit(ctx, req)
		}})
	}
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()

	// Refuse to measure a dead cluster: wait (briefly) until at least
	// one target probes healthy.
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		healthy := 0
		for _, b := range backends {
			if b.Health(waitCtx) == nil {
				healthy++
			}
		}
		if healthy > 0 {
			log.Printf("loadgen: %d/%d targets healthy", healthy, len(targets))
			break
		}
		if waitCtx.Err() != nil {
			log.Fatalf("loadgen: no healthy target among %v", targets)
		}
		time.Sleep(100 * time.Millisecond)
	}

	stopSlow := startSlowLoris(targets[0], slowConns)

	log.Printf("loadgen: %.0f rps base for %v (scenario %s) over %d targets, deadline mix %s, key reuse %.0f%%",
		rps, duration, scenario, len(targets), mixString(mix), 100*repeat)
	// Without -repeat the pick function stays nil: replicas synthesize
	// their own seeded images, keeping the generator's CPU out of the
	// measurement. With -repeat the hot/cold mixer sends bit-identical
	// repeated payloads — the traffic affinity routing concentrates.
	var pick func(*tensor.RNG) []float64
	if repeat > 0 {
		pick = newInputMixer(rng, imgLen, repeat).pick
	}
	perClass, bySubnet, offered := driveLoad(tgs, rps, duration, mix, pick, rng, shape)
	printClassReport(mix, perClass, bySubnet, offered, rps, duration, scenario, slos)
	printTargetReport(tgs)

	if opened, closed := stopSlow(); opened > 0 {
		fmt.Printf("\nslow-loris: %d connections opened, %d closed by the server during the run\n", opened, closed)
	}
	for _, u := range targets {
		printRemoteView(u)
	}
}

// printRemoteView fetches one target's /stats and prints its own view
// of the run — a replica's serving counters, or a router's routing
// breakdown (retries, hedges, per-replica outcomes).
func printRemoteView(target string) {
	resp, err := http.Get(strings.TrimRight(target, "/") + "/stats")
	if err != nil {
		fmt.Printf("\n%s: stats unavailable (%v)\n", target, err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		fmt.Printf("\n%s: stats unavailable (status %d)\n", target, resp.StatusCode)
		return
	}

	// A router's payload is recognizable by its replica breakdown.
	var rst cluster.RouterStats
	if json.Unmarshal(body, &rst) == nil && len(rst.Replicas) > 0 {
		fmt.Printf("\n%s (router view): submitted %d, served %d, failed %d, retries %d, hedges %d, %d/%d available\n",
			target, rst.Submitted, rst.Served, rst.Failed, rst.Retries, rst.Hedges, rst.Available, len(rst.Replicas))
		affinityOn := rst.AffinityRouted > 0 || rst.AffinitySpilled > 0
		var hitTotal, hitTop int64
		for _, rs := range rst.Replicas {
			line := fmt.Sprintf("  %-28s up=%-5v breaker=%-9s ok=%-6d reject=%-6d xport=%-5d bad=%-4d retried=%-5d hedged=%d",
				rs.Target, rs.Up, rs.Breaker, rs.Success, rs.Rejected, rs.TransportErrors, rs.BadInputs, rs.Retried, rs.Hedged)
			if affinityOn {
				line += fmt.Sprintf(" affinity=%-5d spills=%d", rs.AffinityHits, rs.AffinitySpills)
			}
			// Each replica's own /stats reveals where cache reuse
			// actually landed — the concentration affinity buys — and
			// what the lifecycle did to it (entries warmed in by the
			// router, entries aged out by the TTL).
			if snap, ok := replicaCacheSnap(rs.Target); ok {
				line += fmt.Sprintf(" cache-hits=%-5d warmed=%-4d expired=%d",
					snap.CacheHits+snap.CacheResumes, snap.CacheWarmed, snap.CacheExpired)
				hits := snap.CacheHits + snap.CacheResumes
				hitTotal += hits
				if hits > hitTop {
					hitTop = hits
				}
			}
			fmt.Println(line)
		}
		if affinityOn {
			line := fmt.Sprintf("  affinity: %d routed to HRW choice, %d spilled", rst.AffinityRouted, rst.AffinitySpilled)
			if hitTotal > 0 {
				line += fmt.Sprintf("; %d cache hits+resumes cluster-wide (top replica %.0f%%)",
					hitTotal, 100*float64(hitTop)/float64(hitTotal))
			}
			fmt.Println(line)
		}
		if rst.WarmTransfers > 0 || rst.WarmFailures > 0 {
			fmt.Printf("  warming: %d entries transferred (%d KiB) onto spill targets, %d failures\n",
				rst.WarmTransfers, rst.WarmBytes>>10, rst.WarmFailures)
		}
		return
	}
	var snap serve.Snapshot
	if json.Unmarshal(body, &snap) != nil {
		fmt.Printf("\n%s: unrecognized stats payload\n", target)
		return
	}
	fmt.Printf("\n%s (server view): served %d, rejected %d, deadline hit-rate %.1f%%, mean %.0f kMAC/answer\n",
		target, snap.Served, snap.Rejected, 100*snap.DeadlineHitRate, meanKMAC(snap))
	printClassProtection(snap)
}

// replicaCacheSnap fetches one replica's own /stats snapshot for the
// cache columns of the router view, reporting false when the replica
// is unreachable or runs no cache.
func replicaCacheSnap(target string) (serve.Snapshot, bool) {
	var snap serve.Snapshot
	resp, err := http.Get(strings.TrimRight(target, "/") + "/stats")
	if err != nil {
		return snap, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return snap, false
	}
	if json.Unmarshal(body, &snap) != nil || !snap.CacheEnabled {
		return snap, false
	}
	return snap, true
}

// printClassProtection renders a server snapshot's per-priority
// summary when priorities are configured, plus the overload governor's
// own accounting when the server runs one.
func printClassProtection(snap serve.Snapshot) {
	if len(snap.Classes) > 1 {
		fmt.Printf("per-priority protection (server view):\n")
		for _, cs := range snap.Classes {
			if cs.Submitted == 0 {
				continue
			}
			line := fmt.Sprintf("  prio %d: served %5d  rejected %5d  hit-rate %5.1f%%  p99 %6.2fms  subnets %v  slo-viol %d  brownouts %d",
				cs.Priority, cs.Served, cs.Rejected, 100*cs.DeadlineHitRate, cs.P99Ms, cs.BySubnet,
				cs.SLOViolations, cs.BrownoutTransitions)
			if snap.CacheEnabled || cs.EarlyExits > 0 {
				line += fmt.Sprintf("  cache-hit %d  resumed %d  early-exit %d", cs.CacheHits, cs.CacheResumes, cs.EarlyExits)
			}
			fmt.Println(line)
		}
	}
	if snap.CacheEnabled {
		reuse := 0.0
		if snap.Served > 0 {
			reuse = float64(snap.CacheHits+snap.CacheResumes) / float64(snap.Served)
		}
		fmt.Printf("semantic cache: %d hits, %d resumes (%.1f%% of answers), %d early exits; %d entries / %d KiB live, %d evictions (%d expired, %d invalidated), gen %d\n",
			snap.CacheHits, snap.CacheResumes, 100*reuse, snap.EarlyExits,
			snap.CacheEntries, snap.CacheBytes>>10, snap.CacheEvictions,
			snap.CacheExpired, snap.CacheInvalidated, snap.CacheGeneration)
		if snap.Speculated > 0 || snap.CacheWarmed > 0 {
			fmt.Printf("cache lifecycle: %d speculative pre-climbs (%d kMAC idle-window work), %d entries warmed in from peers\n",
				snap.Speculated, snap.SpeculativeMACs/1e3, snap.CacheWarmed)
		}
	} else if snap.EarlyExits > 0 {
		fmt.Printf("early exit: %d answers stopped below their affordable rung\n", snap.EarlyExits)
	}
	if snap.Policy != nil {
		fmt.Printf("governor: %d SLO violations, %d brownout transitions, final levels %v (deepest %d), lookahead %.2f\n",
			snap.SLOViolations, snap.BrownoutTransitions, snap.Policy.Level, snap.Policy.MaxLevel, snap.Policy.Lookahead)
	}
}

// startSlowLoris opens n connections to the target that send request
// headers one byte per second — the classic attack a missing
// ReadHeaderTimeout leaves open forever. Returns a report function
// yielding (opened, closed-by-server) counts; a hardened server
// closes every connection within its -hdr-timeout while an unhardened
// one holds them all.
func startSlowLoris(target string, n int) func() (opened, closed int) {
	if n <= 0 {
		return func() (int, int) { return 0, 0 }
	}
	u, err := url.Parse(target)
	if err != nil {
		log.Fatalf("slow-loris: bad target %q: %v", target, err)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Host, "80")
	}

	var opened, closed atomic.Int64
	for i := 0; i < n; i++ {
		go func() {
			conn, err := net.DialTimeout("tcp", host, 5*time.Second)
			if err != nil {
				return
			}
			defer conn.Close()
			opened.Add(1)
			if _, err := fmt.Fprintf(conn, "POST /infer HTTP/1.1\r\nHost: %s\r\nX-Drip", u.Host); err != nil {
				closed.Add(1)
				return
			}
			for {
				time.Sleep(time.Second)
				// The write only surfaces the server-side close once the
				// kernel buffer drains/resets, so also watch for EOF with
				// a short read.
				conn.SetReadDeadline(time.Now().Add(10 * time.Millisecond)) //nolint:errcheck — best-effort probe
				var b [1]byte
				if _, err := conn.Read(b[:]); err != nil && !errors.Is(err, os.ErrDeadlineExceeded) {
					closed.Add(1)
					return
				}
				if _, err := conn.Write([]byte("p")); err != nil {
					closed.Add(1)
					return
				}
			}
		}()
	}
	return func() (int, int) { return int(opened.Load()), int(closed.Load()) }
}

// mixString renders the class mix for the log line.
func mixString(mix []deadlineClass) string {
	parts := make([]string, len(mix))
	for i, c := range mix {
		parts[i] = fmt.Sprintf("%v:%g:%d", c.d, c.w, c.prio)
	}
	return strings.Join(parts, ",")
}

// bar renders a fraction as a fixed-width ASCII bar.
func bar(frac float64, width int) string {
	fill := int(frac*float64(width) + 0.5)
	if fill > width {
		fill = width
	}
	return strings.Repeat("█", fill) + strings.Repeat("·", width-fill)
}

// meanKMAC is the average per-answer MAC cost in thousands.
func meanKMAC(s serve.Snapshot) float64 {
	if s.Served == 0 {
		return 0
	}
	return float64(s.TotalMACs) / float64(s.Served) / 1e3
}
