package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"steppingnet/internal/governor"
	"steppingnet/internal/serve"
)

// TestReadinessGating pins the /healthz lifecycle satellite: the
// process answers 503 while the model is still building (starting),
// 200 once calibration is injected and the server is live, and 503
// again the moment draining begins — so a router or load balancer
// stops sending work before the listener actually goes away.
func TestReadinessGating(t *testing.T) {
	a := newApp(7)
	mux := newMux(a)

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code, rec.Body.String()
	}
	post := func(path, body string) int {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		mux.ServeHTTP(rec, req)
		return rec.Code
	}

	// Starting: every endpoint refuses, with a reason a human can read.
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("starting /healthz: got %d %q, want 503 mentioning starting", code, body)
	}
	if code := post("/infer", `{"deadline_ms":5}`); code != http.StatusServiceUnavailable {
		t.Fatalf("starting /infer: got %d, want 503", code)
	}
	if code, _ := get("/stats"); code != http.StatusServiceUnavailable {
		t.Fatalf("starting /stats: got %d, want 503", code)
	}

	// Ready: build a tiny server with injected calibration and flip.
	m, err := buildServeModel("lenet3c1l", 4, 8, 1.5, 3, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	cal := governor.LatencyModel{
		StepMACs: governor.StepCosts(m, 3),
		StepTime: []time.Duration{time.Nanosecond, time.Nanosecond, time.Nanosecond},
	}
	srv, err := serve.New(serve.Config{
		Model: m, Subnets: 3, Workers: 1, QueueDepth: 16,
		PriorityClasses: 2, Calibration: cal,
		DefaultDeadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	a.setReady(srv, m)

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("ready /healthz: got %d, want 200", code)
	}
	if code := post("/infer", `{"deadline_ms":50,"priority":1}`); code != http.StatusOK {
		t.Fatalf("ready /infer: got %d, want 200", code)
	}
	if code, _ := get("/stats"); code != http.StatusOK {
		t.Fatalf("ready /stats: got %d, want 200", code)
	}

	// Draining: health flips before the server is torn down, and stays
	// down even if a late setReady races the shutdown.
	a.setDraining()
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining /healthz: got %d %q, want 503 mentioning draining", code, body)
	}
	if code := post("/infer", `{"deadline_ms":5}`); code != http.StatusServiceUnavailable {
		t.Fatalf("draining /infer: got %d, want 503", code)
	}
	a.setReady(srv, m) // CAS must not resurrect a draining process
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatal("setReady after setDraining must not flip the process back to ready")
	}
}
