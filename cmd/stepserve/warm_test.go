package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"steppingnet/internal/cluster"
	"steppingnet/internal/governor"
	"steppingnet/internal/serve"
	"steppingnet/internal/serve/cache"
	"steppingnet/internal/tensor"
)

// newWarmTestApp builds a ready app over a tiny cache-armed server,
// the fixture the /cache/entry handler tests drive.
func newWarmTestApp(t *testing.T) (*app, *serve.Server, int) {
	t.Helper()
	m, err := buildServeModel("lenet3c1l", 4, 8, 1.5, 3, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	cal := governor.LatencyModel{
		StepMACs: governor.StepCosts(m, 3),
		StepTime: []time.Duration{time.Nanosecond, time.Nanosecond, time.Nanosecond},
	}
	srv, err := serve.New(serve.Config{
		Model: m, Subnets: 3, Workers: 1, QueueDepth: 16,
		Calibration: cal, DefaultDeadline: time.Hour,
		CacheEntries: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	a := newApp(7)
	a.setReady(srv, m)
	return a, srv, m.InC * m.InH * m.InW
}

// TestCacheEntryEndpoint pins the replica side of the warming wire
// contract: GET /cache/entry serves a cached walk by hex key (404 when
// the key is cold, 400 on a malformed key), POST installs a
// transferred entry that then answers an /infer repeat as a zero-MAC
// hit, and the CacheWarmed counter surfaces through /stats.
func TestCacheEntryEndpoint(t *testing.T) {
	a, srv, imgLen := newWarmTestApp(t)
	mux := newMux(a)
	in := randomInput(tensor.NewRNG(99), imgLen)
	key := cache.KeyOf(in)

	get := func(path string) (int, []byte) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code, rec.Body.Bytes()
	}

	if code, _ := get("/cache/entry?key=zzz"); code != http.StatusBadRequest {
		t.Fatalf("malformed key: got %d, want 400", code)
	}
	if code, _ := get("/cache/entry?key=" + cluster.FormatKey(key)); code != http.StatusNotFound {
		t.Fatalf("cold key: got %d, want 404", code)
	}

	// Populate via the real serving path, then export.
	res1, err := srv.Submit(serve.Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	code, body := get("/cache/entry?key=" + cluster.FormatKey(key))
	if code != http.StatusOK {
		t.Fatalf("warm key: got %d (%s), want 200", code, body)
	}
	var wire cluster.CacheEntryWire
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Key != cluster.FormatKey(key) || wire.Subnet != res1.Subnet || wire.State == nil {
		t.Fatalf("exported entry mismatch: key %s subnet %d state %v", wire.Key, wire.Subnet, wire.State != nil)
	}

	// Install the exported entry into a second, cold replica and serve
	// the same input there: the answer must be a cache hit, bitwise
	// equal to the original walk.
	b, srvB, _ := newWarmTestApp(t)
	muxB := newMux(b)
	rec := httptest.NewRecorder()
	muxB.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/cache/entry", strings.NewReader(string(body))))
	if rec.Code != http.StatusOK {
		t.Fatalf("install: got %d (%s), want 200", rec.Code, rec.Body.String())
	}
	if snap := srvB.Stats(); snap.CacheWarmed != 1 {
		t.Fatalf("CacheWarmed after install = %d, want 1", snap.CacheWarmed)
	}
	inJSON, _ := json.Marshal(in)
	rec = httptest.NewRecorder()
	muxB.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/infer",
		strings.NewReader(fmt.Sprintf(`{"input":%s,"deadline_ms":3600000}`, inJSON))))
	if rec.Code != http.StatusOK {
		t.Fatalf("infer after install: got %d (%s)", rec.Code, rec.Body.String())
	}
	var res2 cluster.InferResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res2); err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit || res2.MACs != 0 {
		t.Fatalf("repeat on installed entry: hit=%v macs=%d, want a zero-MAC hit", res2.CacheHit, res2.MACs)
	}
	for i := range res1.Logits {
		if res1.Logits[i] != res2.Logits[i] {
			t.Fatalf("installed-entry logit[%d] = %v, original walk = %v", i, res2.Logits[i], res1.Logits[i])
		}
	}

	// Malformed install bodies are the sender's fault, not a 500.
	rec = httptest.NewRecorder()
	muxB.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/cache/entry", strings.NewReader(`{"key":"nope"}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad install key: got %d, want 400", rec.Code)
	}
}

// TestWarmFileRoundTrip pins restart warming's persistence: a hot set
// saved on drain loads back bit-identically, Prewarm replays it into
// the cache, and the missing-file fresh start is silent.
func TestWarmFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.json")
	if got := loadWarmFile(path); got != nil {
		t.Fatalf("missing warm file loaded %d inputs, want none", len(got))
	}
	if got := loadWarmFile(""); got != nil {
		t.Fatal("empty path must load nothing")
	}

	_, srv, imgLen := newWarmTestApp(t)
	rng := tensor.NewRNG(5)
	inputs := [][]float64{randomInput(rng, imgLen), randomInput(rng, imgLen)}
	saveWarmFile(path, inputs)
	back := loadWarmFile(path)
	if len(back) != len(inputs) {
		t.Fatalf("loaded %d inputs, want %d", len(back), len(inputs))
	}
	for i := range inputs {
		for j := range inputs[i] {
			if back[i][j] != inputs[i][j] {
				t.Fatalf("input[%d][%d] changed across the file round trip", i, j)
			}
		}
	}

	if served := srv.Prewarm(back, 0); served != len(back) {
		t.Fatalf("Prewarm served %d/%d persisted inputs", served, len(back))
	}
	for _, in := range back {
		res, err := srv.Submit(serve.Request{Input: in, Deadline: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		if !res.CacheHit || res.MACs != 0 {
			t.Fatalf("post-prewarm repeat: hit=%v macs=%d, want a zero-MAC hit", res.CacheHit, res.MACs)
		}
	}

	// Corrupt contents degrade to a fresh start, never a crash.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := loadWarmFile(path); got != nil {
		t.Fatal("corrupt warm file must load nothing")
	}
}
