package main

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"steppingnet/internal/tensor"
)

// TestScenarioTickSequencesGolden pins the exact per-tick request
// counts each -scenario shape produces through the carry-forward
// accumulator (burstAt) — the deterministic core of driveLoad's offer
// loop. Sampling 20 ticks at burst 3 exercises every regime of every
// shape (trough, peak, burst windows, each staircase quarter); any
// change to a shape or to the carry arithmetic shows up here as an
// exact diff.
func TestScenarioTickSequencesGolden(t *testing.T) {
	const ticks, burst = 20, 3
	golden := map[string][]int{
		"constant": {3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3},
		"diurnal":  {0, 1, 1, 2, 2, 3, 4, 4, 5, 5, 6, 5, 4, 5, 3, 3, 3, 1, 2, 1},
		"burst":    {1, 2, 1, 9, 9, 2, 1, 2, 1, 9, 9, 2, 1, 2, 1, 9, 9, 2, 1, 2},
		"step":     {1, 2, 1, 2, 1, 3, 3, 3, 3, 3, 6, 6, 6, 6, 6, 12, 12, 12, 12, 12},
	}
	for name, want := range golden {
		shape, err := loadShape(name)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int, ticks)
		carry := 0.0
		for i := range got {
			got[i] = burstAt(&carry, burst, shape(float64(i)/ticks))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("scenario %s tick sequence %v, want %v", name, got, want)
		}
		// The carry must conserve the offered integral: totals may
		// round down by at most one request.
		sum, integral := 0, 0.0
		for i := range got {
			sum += got[i]
			integral += float64(burst) * shape(float64(i)/ticks)
		}
		if float64(sum) > integral || integral-float64(sum) >= 1 {
			t.Errorf("scenario %s offered %d over an integral of %.3f", name, sum, integral)
		}
	}
}

// TestLoadShapeRejectsUnknown pins the -scenario flag's error path.
func TestLoadShapeRejectsUnknown(t *testing.T) {
	if _, err := loadShape("lunar"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := loadShape(""); err != nil {
		t.Fatalf("empty scenario (constant default) rejected: %v", err)
	}
}

// TestInputMixerKeyReuse pins the -repeat key-reuse mix: the mixer is
// deterministic for a seed, honors the repeat fraction within
// tolerance, skews hot-pool draws toward low keys (zipf-like), and at
// repeat 0 degenerates to the pure cold ring in ring order.
func TestInputMixerKeyReuse(t *testing.T) {
	const imgLen = 8
	const draws = 4000

	// Determinism: same seed, same sequence of pointers-to-pools.
	seq := func() []string {
		rng := tensor.NewRNG(7)
		mx := newInputMixer(rng, imgLen, 0.5)
		out := make([]string, 64)
		for i := range out {
			out[i] = fmt.Sprintf("%x", mx.pick(rng)[0])
		}
		return out
	}
	if !reflect.DeepEqual(seq(), seq()) {
		t.Fatal("same seed produced different input sequences")
	}

	// Repeat fraction + zipf skew: index hot inputs by first element.
	rng := tensor.NewRNG(7)
	mx := newInputMixer(rng, imgLen, 0.5)
	hotIdx := make(map[float64]int, len(mx.hot))
	for i, in := range mx.hot {
		hotIdx[in[0]] = i
	}
	hotDraws := 0
	hotCount := make([]int, len(mx.hot))
	for i := 0; i < draws; i++ {
		if idx, ok := hotIdx[mx.pick(rng)[0]]; ok {
			hotDraws++
			hotCount[idx]++
		}
	}
	if frac := float64(hotDraws) / draws; frac < 0.45 || frac > 0.55 {
		t.Fatalf("repeat 0.5 produced hot fraction %.3f", frac)
	}
	if hotCount[0] <= hotCount[len(hotCount)-1]*2 {
		t.Fatalf("hot pool not zipf-skewed: key 0 drawn %d times, last key %d",
			hotCount[0], hotCount[len(hotCount)-1])
	}

	// repeat 0: pure cold ring, in order, wrapping.
	rng0 := tensor.NewRNG(9)
	mx0 := newInputMixer(rng0, imgLen, 0)
	for i := 0; i < coldRingSize+5; i++ {
		want := mx0.cold[i%coldRingSize]
		if got := mx0.pick(rng0); &got[0] != &want[0] {
			t.Fatalf("repeat 0 draw %d left the cold ring order", i)
		}
	}
}

// TestParseDeadlineMixAndSLOs covers the flag parsers the loadgen and
// server modes share.
func TestParseDeadlineMixAndSLOs(t *testing.T) {
	mix, err := parseDeadlineMix("4ms:0.9,12ms:0.1:hi", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].prio != 0 || mix[1].prio != 1 || mix[1].d != 12*time.Millisecond {
		t.Fatalf("mix = %+v", mix)
	}
	if _, err := parseDeadlineMix("4ms", time.Second); err == nil {
		t.Fatal("weightless class accepted")
	}
	slos, err := parseSLOs("1:2ms:0.99")
	if err != nil || len(slos) != 2 || slos[1].P99Target != 2*time.Millisecond || slos[1].MinHitRate != 0.99 {
		t.Fatalf("slos = %+v, %v", slos, err)
	}
	if _, err := parseSLOs("x:2ms"); err == nil {
		t.Fatal("bad class accepted")
	}
}
