// Command steppingnet runs the SteppingNet pipeline end to end on a
// chosen network and synthetic workload: train the original network,
// construct N nested subnets under MAC budgets, retrain them with
// knowledge distillation, evaluate, and optionally demonstrate
// anytime inference.
//
// Usage:
//
//	steppingnet -model lenet3c1l -budgets 0.1,0.3,0.5,0.85 -expansion 1.8
//	steppingnet -model vgg16 -classes 20 -train 1024 -walk
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"steppingnet/internal/core"
	"steppingnet/internal/data"
	"steppingnet/internal/infer"
	"steppingnet/internal/models"
	"steppingnet/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("steppingnet: ")

	model := flag.String("model", "lenet3c1l", "network: lenet3c1l, lenet5 or vgg16")
	budgetsFlag := flag.String("budgets", "0.1,0.3,0.5,0.85", "ascending MAC budgets as fractions of the original network")
	expansion := flag.Float64("expansion", 1.8, "width expansion ratio before construction")
	classes := flag.Int("classes", 10, "number of classes in the synthetic dataset")
	trainN := flag.Int("train", 1024, "training samples")
	testN := flag.Int("test", 512, "test samples")
	imgHW := flag.Int("img", 16, "image height/width")
	iters := flag.Int("iters", 30, "construction iterations N_t")
	teacherEpochs := flag.Int("teacher-epochs", 6, "epochs for the original network")
	distillEpochs := flag.Int("distill-epochs", 6, "knowledge-distillation epochs")
	seed := flag.Uint64("seed", 1, "master seed")
	walk := flag.Bool("walk", false, "after training, demonstrate an anytime-inference walk")
	flag.Parse()

	build, err := models.ByName(*model)
	if err != nil {
		log.Fatal(err)
	}
	budgets, err := parseBudgets(*budgetsFlag)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Run(core.PipelineOptions{
		Build: build,
		Data: data.Config{
			Name: "synthetic", Classes: *classes, C: 3, H: *imgHW, W: *imgHW,
			Train: *trainN, Test: *testN, Seed: *seed + 10, LabelNoise: 0.04,
		},
		Expansion: *expansion,
		Config: core.Config{
			Subnets: len(budgets), Budgets: budgets,
			Iterations: *iters, TeacherEpochs: *teacherEpochs,
			DistillEpochs: *distillEpochs, Seed: *seed,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %d-class synthetic data (expansion ×%.1f)\n", res.Model, *classes, res.Expansion)
	fmt.Printf("original network: %.2f%% accuracy, %d MACs (M_t)\n", 100*res.OrigAccuracy, res.RefMACs)
	fmt.Printf("construction: %d iterations, %d units moved, %d weights pruned, budgets met: %v\n",
		res.Construction.Iterations, res.Construction.UnitsMoved,
		res.Construction.WeightsPruned, res.Construction.BudgetsMet)
	for _, s := range res.Stats {
		fmt.Printf("  subnet %d: accuracy %6.2f%%  MACs %9d  (%5.2f%% of M_t)\n",
			s.Subnet, 100*s.Accuracy, s.MACs, 100*s.MACFrac)
	}

	if *walk {
		runWalk(res, *imgHW, *seed)
	}
}

func runWalk(res *core.Result, imgHW int, seed uint64) {
	fmt.Println("\nanytime-inference walk (one input, stepping up as resources arrive):")
	x := tensor.New(1, 3, imgHW, imgHW)
	x.FillNormal(tensor.NewRNG(seed^0xA11), 0, 1)
	e := infer.NewEngine(res.StudentNet.Net)
	defer e.Close()
	e.Reset(x)
	for s := 1; s <= len(res.Stats); s++ {
		out, macs := e.MustStep(s)
		fmt.Printf("  step to subnet %d: +%d MACs, prediction class %d\n", s, macs, out.ArgMax())
	}
	fmt.Printf("  total incremental MACs: %d (full subnet-%d forward alone: %d)\n",
		e.TotalMACs(), len(res.Stats), res.Stats[len(res.Stats)-1].MACs)
}

func parseBudgets(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad budget %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
