// Command stepinfo inspects a serialized SteppingNet snapshot: it
// rebuilds the model from the given topology options, loads the
// snapshot and prints the per-layer, per-subnet MAC profile plus the
// incremental deltas an anytime deployment would pay.
//
// Usage:
//
//	stepinfo -model lenet3c1l -subnets 4 -expansion 1.8 -classes 10 -img 16 model.snet
package main

import (
	"flag"
	"fmt"
	"log"

	"steppingnet/internal/macs"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/serialize"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stepinfo: ")

	model := flag.String("model", "lenet3c1l", "network: lenet3c1l, lenet5 or vgg16")
	subnets := flag.Int("subnets", 4, "number of subnets the snapshot was built with")
	expansion := flag.Float64("expansion", 1.8, "expansion ratio the snapshot was built with")
	classes := flag.Int("classes", 10, "class count")
	img := flag.Int("img", 16, "input height/width")
	channels := flag.Int("channels", 3, "input channels")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("usage: stepinfo [flags] <snapshot-file>")
	}
	build, err := models.ByName(*model)
	if err != nil {
		log.Fatal(err)
	}
	m := build(models.Options{
		Classes: *classes, InC: *channels, InH: *img, InW: *img,
		Expansion: *expansion, Subnets: *subnets, Rule: nn.RuleIncremental,
	})
	if err := serialize.LoadFile(flag.Arg(0), m); err != nil {
		log.Fatal(err)
	}
	if err := m.Net.Validate(); err != nil {
		log.Fatalf("snapshot violates the incremental property: %v", err)
	}

	fmt.Printf("%s snapshot %s\n", m.Name, flag.Arg(0))
	fmt.Printf("parameters: %d scalars in one shared copy\n\n", m.Net.ParamCount())
	p := macs.New(m.Net, *subnets)
	if err := p.CheckMonotone(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Render())
}
