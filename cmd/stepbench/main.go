// Command stepbench regenerates the paper's tables and figures on
// the synthetic workloads and prints them as text tables — the
// harness behind EXPERIMENTS.md.
//
// Usage:
//
//	stepbench -exp all -scale quick
//	stepbench -exp table1 -scale full
//	stepbench -exp fig6,reuse -scale tiny
//	stepbench -bench BENCH_baseline.json
//	stepbench -compare BENCH_baseline.json BENCH_new.json
//	stepbench -compare -strict BENCH_baseline.json BENCH_new.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"steppingnet/internal/experiments"
	"steppingnet/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stepbench: ")
	exp := flag.String("exp", "all", "comma-separated experiments: table1,fig6,fig7,fig8,reuse or all")
	scale := flag.String("scale", "quick", "problem scale: tiny, quick or full")
	csvDir := flag.String("csv", "", "also write machine-readable CSV files into this directory")
	benchOut := flag.String("bench", "", "run the substrate perf benchmarks, write the JSON baseline to this file and exit")
	compare := flag.Bool("compare", false, "compare two baseline JSON files (old new), exit non-zero on regressions")
	update := flag.Bool("update", false, "with -compare: replace the old baseline with the new one after a passing, same-backend comparison")
	strict := flag.Bool("strict", false, "with -compare: also fail on new zero-alloc benchmarks missing from the old baseline (otherwise warn), so added paths cannot dodge the alloc gate")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatalf("-compare needs exactly two baseline files, got %d args", flag.NArg())
		}
		if err := compareBaselines(flag.Arg(0), flag.Arg(1), *update, *strict); err != nil {
			log.Fatalf("compare: %v", err)
		}
		return
	}

	if *benchOut != "" {
		if err := writeBenchBaseline(*benchOut); err != nil {
			log.Fatalf("bench baseline: %v", err)
		}
		log.Printf("wrote %s", *benchOut)
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "tiny":
		sc = experiments.Tiny()
	case "quick":
		sc = experiments.Quick()
	case "full":
		sc = experiments.Full()
	default:
		log.Fatalf("unknown scale %q (want tiny, quick or full)", *scale)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0

	run := func(name string, fn func() (renderer, error)) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		r, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(r.Render())
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, name, r); err != nil {
				log.Fatalf("%s: csv: %v", name, err)
			}
		}
	}

	run("table1", func() (renderer, error) { return experiments.TableI(sc) })
	run("fig6", func() (renderer, error) { return experiments.Fig6(sc) })
	run("fig7", func() (renderer, error) { return experiments.Fig7(sc) })
	run("fig8", func() (renderer, error) { return experiments.Fig8(sc) })
	run("reuse", func() (renderer, error) { return experiments.Reuse(sc) })

	if ran == 0 {
		log.Printf("nothing to run for -exp=%q", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// renderer is what every experiment result implements.
type renderer interface{ Render() string }

// writeCSV exports one experiment result into dir, picking the
// exporter by concrete type; experiments without a CSV shape fall
// back to JSON.
func writeCSV(dir, name string, r renderer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch v := r.(type) {
	case *experiments.TableIResult:
		err = report.TableICSV(f, v)
	case *experiments.Fig6Result:
		err = report.Fig6CSV(f, v)
	case *experiments.Fig7Result:
		err = report.Fig7CSV(f, v)
	case *experiments.Fig8Result:
		err = report.Fig8CSV(f, v)
	default:
		// e.g. the reuse audit: structured JSON is the useful form.
		err = report.WriteJSON(f, v)
	}
	if err != nil {
		return err
	}
	return f.Close()
}
