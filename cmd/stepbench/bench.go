package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"steppingnet/internal/infer"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/serve"
	"steppingnet/internal/serve/cache"
	"steppingnet/internal/tensor"
)

// benchResult is one line of the perf baseline: enough to diff ns/op
// and allocation behaviour across PRs without the full testing output.
type benchResult struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	MFlops      float64 `json:"mflops,omitempty"`
}

type benchBaseline struct {
	GoVersion string                 `json:"go_version"`
	GOARCH    string                 `json:"goarch"`
	NumCPU    int                    `json:"num_cpu"`
	Backend   string                 `json:"backend"` // tensor.Backend(): "avx2" or "scalar"
	Results   map[string]benchResult `json:"results"`
}

// writeBenchBaseline runs the substrate benchmarks the repo's perf
// targets are stated against (the blocked matmul kernel and the
// zero-allocation forward/step paths) via testing.Benchmark and
// writes them as JSON, so ci.sh can record a BENCH_baseline.json that
// future PRs diff. Each benchmark runs three times and the fastest
// run is recorded: min ns/op is the noise-robust statistic on a
// shared box, and keeps the compare gate's ±15% threshold meaningful
// for the sub-100µs benchmarks whose single runs wobble more.
func writeBenchBaseline(path string) error {
	record := func(m map[string]benchResult, name string, flops int64, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		for i := 0; i < 2; i++ {
			if rr := testing.Benchmark(fn); rr.NsPerOp() < r.NsPerOp() {
				r = rr
			}
		}
		res := benchResult{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		if flops > 0 && r.NsPerOp() > 0 {
			res.MFlops = float64(flops) / float64(r.NsPerOp()) * 1e3
		}
		m[name] = res
		fmt.Printf("%-28s %10d ns/op %8d B/op %5d allocs/op\n",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	newMats := func(n int) (a, b, c *tensor.Tensor) {
		r := tensor.NewRNG(1)
		a, b, c = tensor.New(n, n), tensor.New(n, n), tensor.New(n, n)
		a.FillNormal(r, 0, 1)
		b.FillNormal(r, 0, 1)
		return
	}
	newNet := func() (*nn.Network, *tensor.Tensor) {
		r := tensor.NewRNG(2)
		m := models.LeNet3C1L(models.Options{
			Classes: 10, InC: 3, InH: 16, InW: 16, Expansion: 1.8,
			Subnets: 4, Rule: nn.RuleIncremental, Seed: 3,
		})
		x := tensor.New(8, 3, 16, 16)
		x.FillNormal(r, 0, 1)
		return m.Net, x
	}

	results := make(map[string]benchResult)

	record(results, "matmul64", 2*64*64*64, func(b *testing.B) {
		x, y, _ := newMats(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.MatMul(x, y)
		}
	})
	record(results, "matmul64_into", 2*64*64*64, func(b *testing.B) {
		x, y, c := newMats(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(c, x, y, false)
		}
	})
	record(results, "matmul128_into", 2*128*128*128, func(b *testing.B) {
		x, y, c := newMats(128)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(c, x, y, false)
		}
	})
	record(results, "forward_lenet3c1l", 0, func(b *testing.B) {
		net, x := newNet()
		ctx := nn.Eval(4)
		ctx.Scratch = tensor.NewPool()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Scratch.Put(net.Forward(x, ctx))
		}
	})
	// Batch-1 latency: the single-image forward a latency-sensitive
	// deployment pays per decision. The batch-parallel engine cannot
	// shard it, so this is the number the ROADMAP's intra-layer
	// parallelism item targets.
	record(results, "forward_lenet3c1l_b1", 0, func(b *testing.B) {
		net, _ := newNet()
		r := tensor.NewRNG(4)
		x := tensor.New(1, 3, 16, 16)
		x.FillNormal(r, 0, 1)
		ctx := nn.Eval(4)
		ctx.Scratch = tensor.NewPool()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Scratch.Put(net.Forward(x, ctx))
		}
	})
	record(results, "anytime_walk_lenet3c1l", 0, func(b *testing.B) {
		net, x := newNet()
		e := infer.NewEngine(net)
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Reset(x)
			for s := 1; s <= 4; s++ {
				e.MustStep(s)
			}
		}
	})
	// The batch-1 ladder walk — the engine-level twin of
	// forward_lenet3c1l_b1: a lone request climbing all four rungs.
	// With spare cores this is the cooperative intra-layer sharding
	// path; on a single-CPU box it degrades to the serial walk. Either
	// way it must stay at 0 allocs/op.
	record(results, "anytime_walk_lenet3c1l_b1", 0, func(b *testing.B) {
		net, _ := newNet()
		r := tensor.NewRNG(4)
		x := tensor.New(1, 3, 16, 16)
		x.FillNormal(r, 0, 1)
		e := infer.NewEngine(net)
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Reset(x)
			for s := 1; s <= 4; s++ {
				e.MustStep(s)
			}
		}
	})
	// Single-request serving latency through the full internal/serve
	// path — admission, scheduling, the 4-step ladder walk and the
	// answer channel — with a deadline generous enough to always reach
	// the widest subnet. The delta over anytime_walk_lenet3c1l (at
	// batch 8 there vs batch 1 here) is the serving layer's overhead
	// budget.
	record(results, "serve_b1_deadline", 0, func(b *testing.B) {
		m := models.LeNet3C1L(models.Options{
			Classes: 10, InC: 3, InH: 16, InW: 16, Expansion: 1.8,
			Subnets: 4, Rule: nn.RuleIncremental, Seed: 3,
		})
		r := tensor.NewRNG(9)
		for _, mv := range m.Movable {
			a := mv.OutAssignment()
			for u := 1; u < a.Units(); u++ {
				a.SetID(u, 1+r.Intn(4))
			}
		}
		srv, err := serve.New(serve.Config{
			Model: m, Subnets: 4, Workers: 1,
			DefaultDeadline: time.Second, CalibrationReps: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		in := tensor.New(3 * 16 * 16)
		in.FillNormal(tensor.NewRNG(4), 0, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := srv.Submit(serve.Request{Input: in.Data()})
			if err != nil {
				b.Fatal(err)
			}
			if res.Subnet != 4 {
				b.Fatalf("generous deadline answered from subnet %d", res.Subnet)
			}
		}
	})

	// Cached-resume serving latency: the same request repeated through
	// a cache-armed server. After the first walk populates the cache,
	// every iteration is a full hit — admission, hash, lookup and the
	// answer channel with zero engine work. The delta under
	// serve_b1_deadline is what the semantic cache saves per repeated
	// key; a regression here means the hit path grew real work.
	record(results, "serve_b1_cached_resume", 0, func(b *testing.B) {
		m := models.LeNet3C1L(models.Options{
			Classes: 10, InC: 3, InH: 16, InW: 16, Expansion: 1.8,
			Subnets: 4, Rule: nn.RuleIncremental, Seed: 3,
		})
		r := tensor.NewRNG(9)
		for _, mv := range m.Movable {
			a := mv.OutAssignment()
			for u := 1; u < a.Units(); u++ {
				a.SetID(u, 1+r.Intn(4))
			}
		}
		srv, err := serve.New(serve.Config{
			Model: m, Subnets: 4, Workers: 1, CacheEntries: 16,
			DefaultDeadline: time.Second, CalibrationReps: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		in := tensor.New(3 * 16 * 16)
		in.FillNormal(tensor.NewRNG(4), 0, 1)
		if _, err := srv.Submit(serve.Request{Input: in.Data()}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := srv.Submit(serve.Request{Input: in.Data()})
			if err != nil {
				b.Fatal(err)
			}
			if !res.CacheHit {
				b.Fatalf("repeat submit missed the cache (subnet %d)", res.Subnet)
			}
		}
	})

	// Speculated-hit serving latency: steady state after the
	// idle-window pre-climber finished a hot key's climb. Setup walks
	// the key to rung 1 under an expired deadline, lets a repeat feed
	// the speculation ring, then waits for the speculator to climb the
	// entry to the top rung. Every timed iteration is then a full
	// cache hit with speculation armed — this pins that the
	// speculative machinery (ring feed, idle-pop gating) adds nothing
	// to the hit path versus serve_b1_cached_resume.
	record(results, "serve_b1_speculated_hit", 0, func(b *testing.B) {
		m := models.LeNet3C1L(models.Options{
			Classes: 10, InC: 3, InH: 16, InW: 16, Expansion: 1.8,
			Subnets: 4, Rule: nn.RuleIncremental, Seed: 3,
		})
		r := tensor.NewRNG(9)
		for _, mv := range m.Movable {
			a := mv.OutAssignment()
			for u := 1; u < a.Units(); u++ {
				a.SetID(u, 1+r.Intn(4))
			}
		}
		srv, err := serve.New(serve.Config{
			Model: m, Subnets: 4, Workers: 1, CacheEntries: 16,
			Speculate:       true,
			DefaultDeadline: time.Second, CalibrationReps: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		in := tensor.New(3 * 16 * 16)
		in.FillNormal(tensor.NewRNG(4), 0, 1)
		// Two expired-deadline submits: the first walks to the narrow
		// floor and stores the rung-1 entry, the second hits it while
		// still sub-top, feeding the speculation candidate ring.
		for i := 0; i < 2; i++ {
			if _, err := srv.Submit(serve.Request{Input: in.Data(), Deadline: time.Nanosecond}); err != nil {
				b.Fatal(err)
			}
		}
		key := cache.KeyOf(in.Data())
		for deadline := time.Now().Add(5 * time.Second); ; {
			if ent, ok := srv.CachePeek(key); ok && ent.Subnet == 4 {
				break
			}
			if time.Now().After(deadline) {
				b.Fatal("speculator did not finish the climb within 5s")
			}
			time.Sleep(time.Millisecond)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := srv.Submit(serve.Request{Input: in.Data()})
			if err != nil {
				b.Fatal(err)
			}
			if !res.CacheHit || res.Subnet != 4 {
				b.Fatalf("repeat after speculation: hit=%v subnet=%d, want a top-rung hit", res.CacheHit, res.Subnet)
			}
		}
	})

	out := benchBaseline{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Backend:   tensor.Backend(),
		Results:   results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
