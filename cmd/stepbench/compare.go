package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// compareNoiseThreshold is the ns/op movement treated as shared-box
// noise, per the ROADMAP Performance contract (±15%).
const compareNoiseThreshold = 0.15

// compareBaselines diffs two benchmark baseline JSON files (old vs
// new) and enforces the regression gate ci.sh relies on:
//
//   - ns/op movement within ±15% is reported as noise;
//   - ns/op regressions beyond the threshold fail — unless the two
//     baselines were produced by different GEMM backends (a scalar-only
//     machine comparing against a committed avx2 baseline, or an old
//     file predating the backend tag), in which case wall-clock is
//     incomparable by construction and only reported;
//   - ANY allocs/op growth on a path that was zero-alloc in the old
//     baseline fails — allocation creep is deterministic, backend- and
//     machine-independent, never noise;
//   - benchmarks missing from the new file fail (a silently dropped
//     benchmark is how perf contracts rot).
//
// New benchmarks absent from the old baseline are reported and, when
// allocating, never fail, so adding coverage stays cheap. New
// ZERO-ALLOC benchmarks, however, are warned about — and fail under
// strict — because a zero-alloc path that never enters the committed
// baseline is a path the alloc gate silently does not protect: the
// next PR could regress it to an allocating one without tripping
// anything. Strict mode (ci.sh) forces the author of a new zero-alloc
// benchmark to refresh the committed baseline in the same PR.
//
// With update set, a passing comparison replaces the old baseline
// file with the new one — but only when both were produced by the
// same backend, so a scalar-only machine can never clobber the
// committed avx2 reference numbers. Replacement is deliberately not
// the default: gating every run against the previous run would let
// sub-threshold regressions ratchet — each PR 14% slower than the
// last, none ever failing — whereas gating against a pinned
// committed reference makes the drift visible in review when the
// baseline is intentionally refreshed.
func compareBaselines(oldPath, newPath string, update, strict bool) error {
	oldBase, err := readBaseline(oldPath)
	if err != nil {
		return err
	}
	newBase, err := readBaseline(newPath)
	if err != nil {
		return err
	}
	sameBackend := oldBase.Backend == newBase.Backend
	// A backend mismatch must be impossible to miss in CI logs: it
	// means every ns/op verdict below is ungated, and a reader skimming
	// for "no regressions" would otherwise take the run as a clean
	// wall-clock pass. Shout it up front, tag every skipped verdict
	// with the backend pair, and repeat it next to the final verdict.
	backendPair := ""
	if !sameBackend {
		backendPair = fmt.Sprintf("%s -> %s", orUnknown(oldBase.Backend), orUnknown(newBase.Backend))
		fmt.Printf("WARNING: baseline backends differ (%s): ns/op is incomparable and NOT GATED this run\n", backendPair)
		fmt.Printf("WARNING: only the allocs/op gate applies; rerun with matching backends to gate wall-clock\n")
	}

	names := make([]string, 0, len(oldBase.Results)+len(newBase.Results))
	for name := range oldBase.Results {
		names = append(names, name)
	}
	for name := range newBase.Results {
		if _, ok := oldBase.Results[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var failures []string
	fmt.Printf("%-28s %12s %12s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "Δ", "verdict")
	for _, name := range names {
		o, haveOld := oldBase.Results[name]
		n, haveNew := newBase.Results[name]
		switch {
		case !haveNew:
			fmt.Printf("%-28s %12d %12s %8s  MISSING from new baseline\n", name, o.NsPerOp, "-", "-")
			failures = append(failures, fmt.Sprintf("%s: missing from %s", name, newPath))
			continue
		case !haveOld:
			if n.AllocsPerOp == 0 {
				fmt.Printf("%-28s %12s %12d %8s  new ZERO-ALLOC benchmark missing from baseline\n", name, "-", n.NsPerOp, "-")
				msg := fmt.Sprintf("%s: new zero-alloc benchmark not in %s — refresh the baseline or its alloc contract is ungated", name, oldPath)
				if strict {
					failures = append(failures, msg)
				} else {
					fmt.Printf("WARNING: %s\n", msg)
				}
			} else {
				fmt.Printf("%-28s %12s %12d %8s  new benchmark\n", name, "-", n.NsPerOp, "-")
			}
			continue
		}

		delta := math.Inf(1)
		if o.NsPerOp > 0 {
			delta = float64(n.NsPerOp-o.NsPerOp) / float64(o.NsPerOp)
		}
		verdict := "ok (noise)"
		switch {
		case delta < -compareNoiseThreshold:
			verdict = "faster"
		case delta > compareNoiseThreshold && sameBackend:
			verdict = "SLOWER beyond noise"
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %+.0f%% (%d -> %d)",
				name, delta*100, o.NsPerOp, n.NsPerOp))
		case delta > compareNoiseThreshold:
			verdict = fmt.Sprintf("slower (backend %s, not gated)", backendPair)
		}
		if o.AllocsPerOp == 0 && n.AllocsPerOp > 0 {
			verdict = "ALLOCS on zero-alloc path"
			failures = append(failures, fmt.Sprintf("%s: allocs/op grew 0 -> %d on a zero-alloc path",
				name, n.AllocsPerOp))
		} else if n.AllocsPerOp > o.AllocsPerOp {
			// Growth on an already-allocating path: report loudly but
			// let the ns/op gate decide.
			verdict += fmt.Sprintf(" [allocs %d -> %d]", o.AllocsPerOp, n.AllocsPerOp)
		}
		fmt.Printf("%-28s %12d %12d %+7.0f%%  %s\n", name, o.NsPerOp, n.NsPerOp, delta*100, verdict)
	}

	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Printf("REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d benchmark regression(s)", len(failures))
	}
	if !sameBackend {
		fmt.Printf("\nno regressions — but WARNING: ns/op was NOT GATED (backends differ: %s)\n", backendPair)
	} else {
		fmt.Println("\nno regressions")
	}

	if update {
		if !sameBackend {
			fmt.Printf("baseline NOT updated: %s was produced by backend %q, this machine produced %q\n",
				oldPath, oldBase.Backend, newBase.Backend)
			return nil
		}
		data, err := os.ReadFile(newPath)
		if err != nil {
			return err
		}
		if err := os.WriteFile(oldPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("baseline updated: %s <- %s\n", oldPath, newPath)
	}
	return nil
}

// orUnknown names an empty backend tag (baselines predating the tag)
// so the mismatch warning never prints a blank.
func orUnknown(backend string) string {
	if backend == "" {
		return "(untagged)"
	}
	return backend
}

func readBaseline(path string) (*benchBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &b, nil
}
