package steppingnet

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"steppingnet/internal/baselines"
	"steppingnet/internal/baselines/anywidth"
	"steppingnet/internal/baselines/slimmable"
	"steppingnet/internal/core"
	"steppingnet/internal/data"
	"steppingnet/internal/experiments"
	"steppingnet/internal/infer"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/serve"
	"steppingnet/internal/tensor"
)

// The per-table/figure benchmarks run the same harness as cmd/
// stepbench at the Tiny scale, so `go test -bench=.` regenerates
// every experiment quickly; use `stepbench -scale full` for the
// numbers recorded in EXPERIMENTS.md.

// BenchmarkTableI regenerates Table I (per-subnet accuracy and MAC
// share for LeNet-3C1L, LeNet-5 and VGG-16).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatal("incomplete Table I")
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6 (SteppingNet vs the slimmable and
// any-width baselines at matched MAC levels).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		if _, comparisons := res.WinsAtMatchedMACs(); comparisons == 0 {
			b.Fatal("no comparisons made")
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7 (expansion-ratio sweep).
func BenchmarkFig7(b *testing.B) {
	sc := experiments.Tiny()
	sc.Expansions = []float64{1.0, 1.5, 2.0}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Nets) != 2 {
			b.Fatal("incomplete Fig. 7")
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8 (ablation of learning-rate
// suppression and knowledge distillation).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Nets) != 2 {
			b.Fatal("incomplete Fig. 8")
		}
	}
}

// BenchmarkReuse regenerates the computational-reuse audit backing
// the §II/§III claims (incremental expansion costs only the MAC
// delta, outputs bit-identical).
func BenchmarkReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Reuse(experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verified() {
			b.Fatal("reuse audit failed")
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkConstructionLoop isolates the cost of the Fig. 3
// construction work flow (no teacher, no distillation).
func BenchmarkConstructionLoop(b *testing.B) {
	train, _, err := data.Generate(data.Config{
		Name: "bench", Classes: 4, C: 1, H: 8, W: 8, Train: 128, Test: 32, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Subnets: 3, Budgets: []float64{0.15, 0.45, 0.85},
		Iterations: 8, BatchesPerIter: 1, BatchSize: 16, Seed: 5,
	}
	mo := models.Options{Classes: 4, InC: 1, InH: 8, InW: 8, Subnets: 3, Rule: nn.RuleIncremental, Seed: 7}
	refOpts := mo
	refOpts.Subnets = 1
	ref := models.ReferenceMACs(models.LeNet3C1L, refOpts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mo2 := mo
		mo2.Expansion = 1.5
		m := models.LeNet3C1L(mo2)
		if _, err := core.Construct(m, train, cfg, ref); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineSlimmable and BenchmarkBaselineAnyWidth time one
// baseline train+evaluate cycle each.
func BenchmarkBaselineSlimmable(b *testing.B) {
	dcfg := data.Config{Name: "bench", Classes: 4, C: 1, H: 8, W: 8, Train: 96, Test: 48, Seed: 3}
	cfg := baselines.Config{Subnets: 3, Budgets: []float64{0.2, 0.5, 0.9}, Epochs: 1, BatchSize: 16, Seed: 4}
	for i := 0; i < b.N; i++ {
		if _, err := slimmable.Run(models.LeNet3C1L, dcfg, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineAnyWidth(b *testing.B) {
	dcfg := data.Config{Name: "bench", Classes: 4, C: 1, H: 8, W: 8, Train: 96, Test: 48, Seed: 3}
	cfg := baselines.Config{Subnets: 3, Budgets: []float64{0.2, 0.5, 0.9}, Epochs: 1, BatchSize: 16, Seed: 4}
	for i := 0; i < b.N; i++ {
		if _, err := anywidth.Run(models.LeNet3C1L, dcfg, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate microbenchmarks (hot paths) ---

func BenchmarkMatMul64(b *testing.B) {
	r := tensor.NewRNG(1)
	x := tensor.New(64, 64)
	y := tensor.New(64, 64)
	x.FillNormal(r, 0, 1)
	y.FillNormal(r, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

// BenchmarkMatMul64Into is the allocation-free kernel on its own,
// without the output-tensor allocation MatMul performs.
func BenchmarkMatMul64Into(b *testing.B) {
	r := tensor.NewRNG(1)
	x := tensor.New(64, 64)
	y := tensor.New(64, 64)
	c := tensor.New(64, 64)
	x.FillNormal(r, 0, 1)
	y.FillNormal(r, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(c, x, y, false)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	g := tensor.ConvGeom{InC: 16, InH: 16, InW: 16, OutC: 16, K: 3, Stride: 1, Pad: 1}
	img := make([]float64, g.InC*g.InH*g.InW)
	col := make([]float64, g.ColRows()*g.ColCols())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Im2Col(img, col)
	}
}

func benchNet() (*nn.Network, *tensor.Tensor) {
	r := tensor.NewRNG(2)
	m := models.LeNet3C1L(models.Options{
		Classes: 10, InC: 3, InH: 16, InW: 16, Expansion: 1.8,
		Subnets: 4, Rule: nn.RuleIncremental, Seed: 3,
	})
	x := tensor.New(8, 3, 16, 16)
	x.FillNormal(r, 0, 1)
	return m.Net, x
}

func BenchmarkForwardLeNet3C1L(b *testing.B) {
	net, x := benchNet()
	// Steady-state inference: a per-goroutine scratch pool recycles
	// every activation, so after warm-up the forward path allocates
	// nothing (asserted by TestPooledForwardSteadyStateAllocs).
	ctx := nn.Eval(4)
	ctx.Scratch = tensor.NewPool()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := net.Forward(x, ctx)
		ctx.Scratch.Put(out)
	}
}

// BenchmarkForwardLeNet3C1LNoPool is the same forward without a
// scratch pool — the allocation overhead the pool removes.
func BenchmarkForwardLeNet3C1LNoPool(b *testing.B) {
	net, x := benchNet()
	ctx := nn.Eval(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, ctx)
	}
}

// BenchmarkForwardLeNetB1 is the batch-1 forward — the latency a
// single request pays per decision — reported per worker count: the
// sub-benchmarks vary GOMAXPROCS, which bounds the tensor arena's
// intra-op fan-out (im2col row sharding, sub-threshold GEMM row
// splits, the batch-1 dense column split). On a single-CPU box every
// worker count degrades to the same serial path; with real cores the
// spread shows the intra-layer scaling the ROADMAP's batch-1 item
// targets.
func BenchmarkForwardLeNetB1(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(w))
			net, _ := benchNet()
			x := tensor.New(1, 3, 16, 16)
			x.FillNormal(tensor.NewRNG(4), 0, 1)
			ctx := nn.Eval(4)
			ctx.Scratch = tensor.NewPool()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx.Scratch.Put(net.Forward(x, ctx))
			}
		})
	}
}

// BenchmarkAnytimeWalkB1 is the engine-level twin: a batch-1 ladder
// walk per worker count, exercising the cooperative layer-sharding
// mode (engine workers splitting conv rows, dense units and pooling
// planes inside each step) when cores allow.
func BenchmarkAnytimeWalkB1(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(w))
			net, _ := benchNet()
			x := tensor.New(1, 3, 16, 16)
			x.FillNormal(tensor.NewRNG(4), 0, 1)
			e := infer.NewEngine(net)
			e.Workers = w
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Reset(x)
				for s := 1; s <= 4; s++ {
					e.MustStep(s)
				}
			}
		})
	}
}

func BenchmarkForwardBackwardLeNet3C1L(b *testing.B) {
	net, x := benchNet()
	ctx := &nn.Context{Subnet: 4, Train: true, Scratch: tensor.NewPool()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := net.Forward(x, ctx)
		grad := ctx.Scratch.GetUninit(out.Shape()...)
		grad.Fill(0.01)
		ctx.Scratch.Put(net.Backward(grad, ctx))
		ctx.Scratch.Put(grad)
		net.ZeroGrad()
	}
}

// BenchmarkServeB1Deadline measures single-request serving latency
// through the full internal/serve path (admission, deadline
// scheduling, ladder walk, answer channel) — the test-suite twin of
// the serve_b1_deadline entry in BENCH_baseline.json.
func BenchmarkServeB1Deadline(b *testing.B) {
	m := models.LeNet3C1L(models.Options{
		Classes: 10, InC: 3, InH: 16, InW: 16, Expansion: 1.8,
		Subnets: 4, Rule: nn.RuleIncremental, Seed: 3,
	})
	r := tensor.NewRNG(9)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for u := 1; u < a.Units(); u++ {
			a.SetID(u, 1+r.Intn(4))
		}
	}
	srv, err := serve.New(serve.Config{
		Model: m, Subnets: 4, Workers: 1,
		DefaultDeadline: time.Second, CalibrationReps: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	in := tensor.New(3 * 16 * 16)
	in.FillNormal(tensor.NewRNG(4), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Submit(serve.Request{Input: in.Data()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalStep measures the anytime engine's per-step
// cost relative to the full forward above.
func BenchmarkIncrementalStep(b *testing.B) {
	net, x := benchNet()
	// Spread units over 4 subnets.
	r := tensor.NewRNG(9)
	for _, l := range net.Layers() {
		if m, ok := l.(nn.Masked); ok && m.Rule() == nn.RuleIncremental {
			a := m.OutAssignment()
			for u := 0; u < a.Units(); u++ {
				a.SetID(u, 1+r.Intn(4))
			}
			a.SetID(0, 1)
		}
	}
	e := infer.NewEngine(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset(x)
		for s := 1; s <= 4; s++ {
			e.MustStep(s)
		}
	}
}
