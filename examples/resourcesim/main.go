// Resource-varying platform simulation: the mobile-phone scenario
// from the paper's introduction. The platform oscillates between
// power modes (normal / balanced / power-save); the stepping network
// follows the available compute by expanding and shrinking its
// active subnet. Because SteppingNet obeys the incremental property,
// expanding costs only the MAC delta and shrinking is free — the
// example tallies exactly how many MACs that saves versus a
// slimmable-style network that must recompute from scratch on every
// switch (paper §II).
//
// Run it with:
//
//	go run ./examples/resourcesim
package main

import (
	"fmt"
	"log"

	"steppingnet/internal/core"
	"steppingnet/internal/data"
	"steppingnet/internal/governor"
	"steppingnet/internal/models"
	"steppingnet/internal/tensor"
)

func main() {
	log.SetFlags(0)

	res, err := core.Run(core.PipelineOptions{
		Build: models.LeNet3C1L,
		Data: data.Config{
			Name: "phone", Classes: 6, C: 3, H: 12, W: 12,
			Train: 512, Test: 256, Seed: 21, LabelNoise: 0.04,
		},
		Expansion: 1.6,
		Config: core.Config{
			Subnets: 3, Budgets: []float64{0.15, 0.45, 0.85},
			Iterations: 12, TeacherEpochs: 5, DistillEpochs: 5, Seed: 21,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A power-mode trace (think DVFS states or background-task
	// pressure), mapped to per-tick MAC budgets. The governor picks
	// the largest subnet whose *incremental* cost fits each budget.
	full := res.Stats[len(res.Stats)-1].MACs
	budget := governor.ModeBudget{
		Modes: map[string]int64{
			"power-save": res.Stats[0].MACs + full/20,
			"balanced":   res.Stats[1].MACs + full/20,
			"normal":     2 * full,
		},
		Trace: []string{
			"power-save", "balanced", "normal", "normal", "balanced", "power-save",
			"balanced", "normal", "power-save", "normal", "balanced", "balanced",
			"normal", "power-save", "power-save", "normal",
		},
	}

	// A new input (frame) arrives every few ticks; within a frame,
	// staying on — or stepping up from — an already-computed subnet
	// reuses the cache, which is where the savings come from.
	const ticksPerFrame = 4
	rng := tensor.NewRNG(5)
	gov := governor.New(res.StudentNet, 3)
	defer gov.Close()
	gov.Hysteresis = 2 // hold a larger subnet for 2 low ticks before shrinking

	var log2 []governor.Decision
	fmt.Println("tick  mode        budget-MACs  subnet  stepping-MACs")
	for t := 0; t < len(budget.Trace); t++ {
		if t%ticksPerFrame == 0 {
			x := tensor.New(1, 3, 12, 12)
			x.FillNormal(rng, 0, 1)
			gov.Reset(x)
			fmt.Printf("      --- new frame ---\n")
		}
		d, err := gov.Tick(t, budget)
		if err != nil {
			log.Fatal(err)
		}
		log2 = append(log2, d)
		fmt.Printf("%4d  %-10s  %11d  %6d  %13d\n",
			d.Tick+1, budget.Trace[t], d.Budget, d.Subnet, d.SpentMACs)
	}
	stepTotal := governor.TotalSpent(log2)
	scratchTotal := gov.RecomputeCost(log2)
	fmt.Printf("\ntotals over %d ticks (%d frames):\n", len(log2), (len(log2)+ticksPerFrame-1)/ticksPerFrame)
	fmt.Printf("  SteppingNet (reuse):      %10d MACs\n", stepTotal)
	fmt.Printf("  recompute-per-switch:     %10d MACs\n", scratchTotal)
	fmt.Printf("  saved by reuse:           %9.1f%%\n", 100*(1-float64(stepTotal)/float64(scratchTotal)))
	fmt.Println("\n(The recompute column is what a slimmable network pays: its larger")
	fmt.Println("subnets invalidate smaller subnets' intermediate results, Fig. 1a.)")
}
