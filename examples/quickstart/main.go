// Quickstart: build a SteppingNet in ~30 seconds on CPU.
//
// This example runs the whole public pipeline on a small synthetic
// workload — train an original LeNet-3C1L, construct three nested
// subnets under MAC budgets of 15%/45%/85%, retrain them with
// knowledge distillation — and prints the accuracy/MAC staircase
// that is SteppingNet's reason to exist.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"steppingnet/internal/core"
	"steppingnet/internal/data"
	"steppingnet/internal/models"
)

func main() {
	log.SetFlags(0)

	res, err := core.Run(core.PipelineOptions{
		Build: models.LeNet3C1L,
		Data: data.Config{
			Name: "quickstart", Classes: 6, C: 3, H: 12, W: 12,
			Train: 512, Test: 256, Seed: 42, LabelNoise: 0.04,
		},
		Expansion: 1.6,
		Config: core.Config{
			Subnets: 3, Budgets: []float64{0.15, 0.45, 0.85},
			Iterations: 12, TeacherEpochs: 5, DistillEpochs: 5, Seed: 42,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SteppingNet quickstart — LeNet-3C1L on 6-class synthetic images")
	fmt.Printf("original network accuracy: %.1f%% at %d MACs\n\n", 100*res.OrigAccuracy, res.RefMACs)
	fmt.Println("subnet  MACs      pct-of-orig  accuracy")
	for _, s := range res.Stats {
		fmt.Printf("%4d    %8d  %6.1f%%   %6.1f%%\n", s.Subnet, s.MACs, 100*s.MACFrac, 100*s.Accuracy)
	}
	fmt.Println("\nEach subnet reuses the previous one's computation: upgrading from")
	fmt.Println("subnet s to s+1 at inference time costs only the MAC difference.")
	fmt.Println("See examples/anytime for that part of the story.")
}
