// Anytime inference: the autonomous-vehicle scenario from the
// paper's introduction. A frame arrives; the platform runs the
// smallest subnet for a fast preliminary decision; whenever spare
// compute appears before the deadline it *continues* the same
// inference — executing only the MACs the next subnet adds — and
// refines the decision, never recomputing what it already knows.
//
// Run it with:
//
//	go run ./examples/anytime
package main

import (
	"fmt"
	"log"

	"steppingnet/internal/core"
	"steppingnet/internal/data"
	"steppingnet/internal/infer"
	"steppingnet/internal/loss"
	"steppingnet/internal/models"
	"steppingnet/internal/tensor"
)

func main() {
	log.SetFlags(0)

	// Build a stepping LeNet-5 with four subnets (10/30/60/85% MACs).
	dcfg := data.Config{
		Name: "road", Classes: 5, C: 3, H: 12, W: 12,
		Train: 512, Test: 256, Seed: 7, LabelNoise: 0.03,
	}
	res, err := core.Run(core.PipelineOptions{
		Build:     models.LeNet5,
		Data:      dcfg,
		Expansion: 1.6,
		Config: core.Config{
			Subnets: 4, Budgets: []float64{0.10, 0.30, 0.60, 0.85},
			Iterations: 12, TeacherEpochs: 5, DistillEpochs: 5, Seed: 7,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	classes := []string{"clear-road", "pedestrian", "vehicle", "cyclist", "obstacle"}

	// Simulate frames with varying compute budgets per frame: how
	// far can the engine step before the deadline?
	_, test, err := data.Generate(dcfg)
	if err != nil {
		log.Fatal(err)
	}
	engine := infer.NewEngine(res.StudentNet.Net)
	defer engine.Close()

	fmt.Println("anytime inference on 6 frames (budget = MACs available before deadline)")
	fmt.Println()
	budgets := []int64{ // per-frame compute budgets, in MACs
		res.Stats[0].MACs + 10,
		res.Stats[1].MACs + 10,
		res.Stats[3].MACs + 10,
		res.Stats[2].MACs + 10,
		res.Stats[0].MACs + 10,
		res.Stats[3].MACs * 2,
	}
	rng := tensor.NewRNG(99)
	for frame, budget := range budgets {
		idx := rng.Intn(test.Len())
		x, y := test.Batch([]int{idx})
		engine.Reset(x)
		fmt.Printf("frame %d (budget %7d MACs, truth %s):\n", frame+1, budget, classes[y[0]])
		var spent int64
		for s := 1; s <= 4; s++ {
			// Peek at the cost of the next step; stop at the deadline.
			next := stepCost(res, s)
			if spent+next > budget {
				break
			}
			out, macs := engine.MustStep(s)
			spent += macs
			probs := loss.Softmax(out)
			pred := out.ArgMax()
			kind := "preliminary"
			if s == 4 {
				kind = "final"
			}
			fmt.Printf("  subnet %d (+%7d MACs): %s decision %-11s p=%.2f\n",
				s, macs, kind, classes[pred], probs.Data()[pred])
		}
		fmt.Printf("  spent %d of %d MACs\n\n", spent, budget)
	}
	fmt.Println("Note how upgrading a decision costs only the MAC delta — the")
	fmt.Println("defining property SteppingNet's construction preserves (paper §III-A).")
}

// stepCost estimates the incremental cost of stepping up to subnet s:
// the backbone MAC delta plus the recomputed classifier head.
func stepCost(res *core.Result, s int) int64 {
	var prev int64
	if s > 1 {
		prev = backboneMACs(res, s-1)
	}
	return backboneMACs(res, s) - prev + res.StudentNet.Head.MACs(s)
}

func backboneMACs(res *core.Result, s int) int64 {
	var total int64
	for _, m := range res.StudentNet.Movable {
		total += m.MACs(s)
	}
	return total
}
