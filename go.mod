module steppingnet

go 1.24
