package loss

import (
	"math"
	"testing"
	"testing/quick"

	"steppingnet/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		b, c := 1+r.Intn(5), 2+r.Intn(6)
		logits := tensor.New(b, c)
		logits.FillNormal(r, 0, 5)
		p := Softmax(logits)
		for i := 0; i < b; i++ {
			sum := 0.0
			for j := 0; j < c; j++ {
				v := p.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableWithLargeLogits(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, 1001, 999}, 1, 3)
	p := Softmax(logits)
	for _, v := range p.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflow: %v", p.Data())
		}
	}
	if p.At(0, 1) < p.At(0, 0) || p.At(0, 0) < p.At(0, 2) {
		t.Fatal("softmax ordering broken")
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: CE = log(4).
	logits := tensor.New(2, 4)
	l, _ := CrossEntropy(logits, []int{0, 3})
	if math.Abs(l-math.Log(4)) > 1e-12 {
		t.Fatalf("CE=%g want log4=%g", l, math.Log(4))
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	r := tensor.NewRNG(3)
	logits := tensor.New(3, 5)
	logits.FillNormal(r, 0, 1)
	labels := []int{1, 4, 0}
	_, grad := CrossEntropy(logits, labels)
	const h = 1e-6
	for k := 0; k < 10; k++ {
		idx := r.Intn(logits.Len())
		old := logits.Data()[idx]
		logits.Data()[idx] = old + h
		up, _ := CrossEntropy(logits, labels)
		logits.Data()[idx] = old - h
		down, _ := CrossEntropy(logits, labels)
		logits.Data()[idx] = old
		num := (up - down) / (2 * h)
		if math.Abs(num-grad.Data()[idx]) > 1e-5 {
			t.Fatalf("CE grad[%d]: analytic %g numeric %g", idx, grad.Data()[idx], num)
		}
	}
}

func TestCrossEntropyLabelRangePanic(t *testing.T) {
	logits := tensor.New(1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for bad label")
		}
	}()
	CrossEntropy(logits, []int{3})
}

func TestKLZeroWhenEqual(t *testing.T) {
	r := tensor.NewRNG(5)
	logits := tensor.New(4, 6)
	logits.FillNormal(r, 0, 2)
	probs := Softmax(logits)
	kl, grad := KLDivergence(logits, probs)
	if math.Abs(kl) > 1e-12 {
		t.Fatalf("KL(p‖p)=%g", kl)
	}
	if grad.AbsMax() > 1e-12 {
		t.Fatalf("grad should vanish, max %g", grad.AbsMax())
	}
}

func TestKLNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		s := tensor.New(2, 4)
		tt := tensor.New(2, 4)
		s.FillNormal(r, 0, 3)
		tt.FillNormal(r, 0, 3)
		kl, _ := KLDivergence(s, Softmax(tt))
		return kl >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKLGradientNumeric(t *testing.T) {
	r := tensor.NewRNG(6)
	sl := tensor.New(2, 4)
	sl.FillNormal(r, 0, 1)
	tl := tensor.New(2, 4)
	tl.FillNormal(r, 0, 1)
	tp := Softmax(tl)
	_, grad := KLDivergence(sl, tp)
	const h = 1e-6
	for k := 0; k < 8; k++ {
		idx := r.Intn(sl.Len())
		old := sl.Data()[idx]
		sl.Data()[idx] = old + h
		up, _ := KLDivergence(sl, tp)
		sl.Data()[idx] = old - h
		down, _ := KLDivergence(sl, tp)
		sl.Data()[idx] = old
		num := (up - down) / (2 * h)
		if math.Abs(num-grad.Data()[idx]) > 1e-5 {
			t.Fatalf("KL grad[%d]: analytic %g numeric %g", idx, grad.Data()[idx], num)
		}
	}
}

func TestDistillInterpolates(t *testing.T) {
	r := tensor.NewRNG(7)
	sl := tensor.New(3, 4)
	sl.FillNormal(r, 0, 1)
	tl := tensor.New(3, 4)
	tl.FillNormal(r, 0, 1)
	tp := Softmax(tl)
	labels := []int{0, 1, 2}

	ce, _ := CrossEntropy(sl, labels)
	kl, _ := KLDivergence(sl, tp)
	for _, gamma := range []float64{0, 0.4, 1} {
		got, _ := Distill(sl, labels, tp, gamma)
		want := gamma*ce + (1-gamma)*kl
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("gamma=%g: %g want %g", gamma, got, want)
		}
	}
}

func TestDistillGradientNumeric(t *testing.T) {
	r := tensor.NewRNG(8)
	sl := tensor.New(2, 3)
	sl.FillNormal(r, 0, 1)
	tl := tensor.New(2, 3)
	tl.FillNormal(r, 0, 1)
	tp := Softmax(tl)
	labels := []int{2, 0}
	_, grad := Distill(sl, labels, tp, 0.4)
	const h = 1e-6
	for idx := 0; idx < sl.Len(); idx++ {
		old := sl.Data()[idx]
		sl.Data()[idx] = old + h
		up, _ := Distill(sl, labels, tp, 0.4)
		sl.Data()[idx] = old - h
		down, _ := Distill(sl, labels, tp, 0.4)
		sl.Data()[idx] = old
		num := (up - down) / (2 * h)
		if math.Abs(num-grad.Data()[idx]) > 1e-5 {
			t.Fatalf("Distill grad[%d]: analytic %g numeric %g", idx, grad.Data()[idx], num)
		}
	}
}

func TestDistillGammaRangePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for gamma out of range")
		}
	}()
	Distill(tensor.New(1, 2), []int{0}, tensor.New(1, 2), 1.5)
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 2, 0, // pred 1
		5, 0, 0, // pred 0
		0, 0, 3, // pred 2
	}, 3, 3)
	if a := Accuracy(logits, []int{1, 0, 0}); math.Abs(a-2.0/3) > 1e-12 {
		t.Fatalf("accuracy %g", a)
	}
	if Accuracy(tensor.New(0, 3), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}
