// Package loss implements the objectives used by SteppingNet:
// softmax cross-entropy for plain training, Kullback–Leibler
// divergence against a teacher's soft predictions, and the combined
// distillation objective of Eq. 4, L' = γ·L_CE + (1−γ)·KL.
package loss

import (
	"fmt"
	"math"

	"steppingnet/internal/tensor"
)

// Softmax converts logits [B, C] into probabilities row by row, with
// the usual max-subtraction for numerical stability.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("loss: Softmax wants [B C], got %v", logits.Shape()))
	}
	b, c := logits.Dim(0), logits.Dim(1)
	out := tensor.New(b, c)
	ld, od := logits.Data(), out.Data()
	for i := 0; i < b; i++ {
		row := ld[i*c : (i+1)*c]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		orow := od[i*c : (i+1)*c]
		for j, v := range row {
			e := math.Exp(v - m)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// CrossEntropy returns the mean softmax cross-entropy of logits
// against integer labels and the gradient with respect to the
// logits, (p − y)/B.
func CrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	b, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != b {
		panic(fmt.Sprintf("loss: %d labels for batch %d", len(labels), b))
	}
	probs := Softmax(logits)
	grad := probs.Clone()
	gd := grad.Data()
	total := 0.0
	for i := 0; i < b; i++ {
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("loss: label %d outside [0,%d)", y, c))
		}
		p := probs.At(i, y)
		if p < 1e-300 {
			p = 1e-300
		}
		total += -math.Log(p)
		gd[i*c+y] -= 1
	}
	grad.Scale(1 / float64(b))
	return total / float64(b), grad
}

// KLDivergence returns the mean KL(teacher‖student) over the batch
// and its gradient with respect to the student logits, which is
// (p_student − p_teacher)/B — the same convenient form as
// cross-entropy with soft targets. teacherProbs must already be a
// probability distribution per row (e.g. from Softmax).
//
// Note on the paper: Eq. 4 writes Σ Y_k log(Y_pre_k / Y_k) with Y the
// subnet output and Y_pre the teacher; taken literally that is
// −KL(student‖teacher) and would be maximized, so we follow the
// standard knowledge-distillation reading (Hinton et al.; reference
// [15] of the paper) of matching the student to the teacher's soft
// distribution, which is what "the smaller the difference between
// Y_pre and Y, the more similar results the subnets generate"
// describes.
func KLDivergence(studentLogits, teacherProbs *tensor.Tensor) (float64, *tensor.Tensor) {
	if !studentLogits.SameShape(teacherProbs) {
		panic(fmt.Sprintf("loss: KL shape mismatch %v vs %v", studentLogits.Shape(), teacherProbs.Shape()))
	}
	b, c := studentLogits.Dim(0), studentLogits.Dim(1)
	sp := Softmax(studentLogits)
	grad := sp.Clone()
	grad.Sub(teacherProbs)
	grad.Scale(1 / float64(b))
	total := 0.0
	for i := 0; i < b; i++ {
		for j := 0; j < c; j++ {
			pt := teacherProbs.At(i, j)
			if pt <= 0 {
				continue
			}
			ps := sp.At(i, j)
			if ps < 1e-300 {
				ps = 1e-300
			}
			total += pt * math.Log(pt/ps)
		}
	}
	return total / float64(b), grad
}

// Distill combines hard-label cross-entropy with teacher KL per
// Eq. 4: L' = γ·CE + (1−γ)·KL. It returns the combined loss and the
// combined gradient with respect to the student logits.
func Distill(studentLogits *tensor.Tensor, labels []int, teacherProbs *tensor.Tensor, gamma float64) (float64, *tensor.Tensor) {
	if gamma < 0 || gamma > 1 {
		panic(fmt.Sprintf("loss: gamma %g outside [0,1]", gamma))
	}
	ce, gce := CrossEntropy(studentLogits, labels)
	kl, gkl := KLDivergence(studentLogits, teacherProbs)
	gce.Scale(gamma)
	gkl.Scale(1 - gamma)
	gce.Add(gkl)
	return gamma*ce + (1-gamma)*kl, gce
}

// Accuracy returns the fraction of rows whose arg-max logit matches
// the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	b, c := logits.Dim(0), logits.Dim(1)
	if b == 0 {
		return 0
	}
	correct := 0
	ld := logits.Data()
	for i := 0; i < b; i++ {
		row := ld[i*c : (i+1)*c]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(b)
}
