// Package serialize persists a constructed SteppingNet — the single
// shared weight store, the unit→subnet assignments and the prune
// masks — so a deployed platform keeps exactly one copy of the
// network for all N subnets (the storage advantage over
// width-multiplier model zoos that motivates weight sharing in §I).
// The format is encoding/gob with a magic header and version.
package serialize

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"steppingnet/internal/models"
)

const (
	magic   = "STEPPINGNET"
	version = 1
)

// snapshot is the on-disk structure.
type snapshot struct {
	Magic   string
	Version int
	Model   string
	Params  [][]float64 // every parameter tensor, in layer order
	Assigns [][]int     // per movable layer: unit assignments
	HeadIDs []int       // classifier head assignment
	Prune   [][]bool    // per masked layer (movable + head): prune masks
}

// Save writes the model's weights, assignments and prune masks.
func Save(w io.Writer, m *models.Model) error {
	snap := snapshot{Magic: magic, Version: version, Model: m.Name}
	for _, p := range m.Net.Params() {
		snap.Params = append(snap.Params, append([]float64(nil), p.Value.Data()...))
	}
	for _, mv := range m.Movable {
		snap.Assigns = append(snap.Assigns, append([]int(nil), mv.OutAssignment().IDs()...))
		snap.Prune = append(snap.Prune, mv.PruneMask())
	}
	snap.HeadIDs = append([]int(nil), m.Head.OutAssignment().IDs()...)
	snap.Prune = append(snap.Prune, m.Head.PruneMask())
	return gob.NewEncoder(w).Encode(&snap)
}

// Load restores a snapshot into m, which must have been built with
// the same topology options (name, widths, subnet count) as the
// saved model.
func Load(r io.Reader, m *models.Model) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("serialize: decode: %w", err)
	}
	if snap.Magic != magic {
		return fmt.Errorf("serialize: not a SteppingNet snapshot (magic %q)", snap.Magic)
	}
	if snap.Version != version {
		return fmt.Errorf("serialize: unsupported version %d (want %d)", snap.Version, version)
	}
	if snap.Model != m.Name {
		return fmt.Errorf("serialize: snapshot is for model %q, target is %q", snap.Model, m.Name)
	}
	params := m.Net.Params()
	if len(snap.Params) != len(params) {
		return fmt.Errorf("serialize: snapshot has %d parameter tensors, model has %d", len(snap.Params), len(params))
	}
	for i, p := range params {
		if len(snap.Params[i]) != p.Value.Len() {
			return fmt.Errorf("serialize: parameter %q has %d values in snapshot, %d in model",
				p.Name, len(snap.Params[i]), p.Value.Len())
		}
	}
	if len(snap.Assigns) != len(m.Movable) {
		return fmt.Errorf("serialize: snapshot has %d movable layers, model has %d", len(snap.Assigns), len(m.Movable))
	}
	if len(snap.Prune) != len(m.Movable)+1 {
		return fmt.Errorf("serialize: snapshot has %d prune masks, want %d", len(snap.Prune), len(m.Movable)+1)
	}
	// Validate sizes fully before mutating anything.
	for i, mv := range m.Movable {
		if len(snap.Assigns[i]) != mv.OutAssignment().Units() {
			return fmt.Errorf("serialize: layer %q has %d units in snapshot, %d in model",
				mv.Name(), len(snap.Assigns[i]), mv.OutAssignment().Units())
		}
	}
	if len(snap.HeadIDs) != m.Head.OutAssignment().Units() {
		return fmt.Errorf("serialize: head has %d units in snapshot, %d in model",
			len(snap.HeadIDs), m.Head.OutAssignment().Units())
	}

	for i, p := range params {
		copy(p.Value.Data(), snap.Params[i])
	}
	for i, mv := range m.Movable {
		a := mv.OutAssignment()
		for u, id := range snap.Assigns[i] {
			a.SetID(u, id)
		}
		if err := mv.SetPruneMask(snap.Prune[i]); err != nil {
			return err
		}
	}
	ha := m.Head.OutAssignment()
	for u, id := range snap.HeadIDs {
		ha.SetID(u, id)
	}
	if err := m.Head.SetPruneMask(snap.Prune[len(m.Movable)]); err != nil {
		return err
	}
	return m.Net.Validate()
}

// SaveFile writes the snapshot to path.
func SaveFile(path string, m *models.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(f, m); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile restores a snapshot from path.
func LoadFile(path string, m *models.Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Load(f, m)
}
