package serialize

import (
	"bytes"
	"path/filepath"
	"testing"

	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

func buildModel(seed uint64) *models.Model {
	m := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: seed,
	})
	r := tensor.NewRNG(seed ^ 0xC0DE)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for u := 1; u < a.Units(); u++ {
			a.SetID(u, 1+r.Intn(3))
		}
		mv.PruneBelow(0.02) // create a non-trivial prune mask
	}
	return m
}

func TestRoundTripPreservesOutputs(t *testing.T) {
	src := buildModel(1)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: 99, // different init
	})
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(7), 0, 1)
	for s := 1; s <= 3; s++ {
		a := src.Net.Forward(x, nn.Eval(s))
		b := dst.Net.Forward(x, nn.Eval(s))
		if !tensor.Equal(a, b, 1e-12) {
			t.Fatalf("subnet %d outputs differ after round trip", s)
		}
		if src.Net.MACs(s) != dst.Net.MACs(s) {
			t.Fatalf("subnet %d MACs differ: %d vs %d", s, src.Net.MACs(s), dst.Net.MACs(s))
		}
	}
}

func TestLoadRejectsWrongModel(t *testing.T) {
	src := buildModel(1)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := models.LeNet5(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5, Subnets: 3, Seed: 2,
	})
	if err := Load(&buf, dst); err == nil {
		t.Fatal("want model-name mismatch error")
	}
}

func TestLoadRejectsWrongWidths(t *testing.T) {
	src := buildModel(1)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 2.0, // different widths
		Subnets: 3, Seed: 2,
	})
	if err := Load(&buf, dst); err == nil {
		t.Fatal("want size mismatch error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dst := buildModel(2)
	if err := Load(bytes.NewReader([]byte("not a snapshot")), dst); err == nil {
		t.Fatal("want decode error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.snet")
	src := buildModel(3)
	if err := SaveFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: 55,
	})
	if err := LoadFile(path, dst); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(4), 0, 1)
	a := src.Net.Forward(x, nn.Eval(3))
	b := dst.Net.Forward(x, nn.Eval(3))
	if !tensor.Equal(a, b, 1e-12) {
		t.Fatal("file round trip broke outputs")
	}
}

func TestLoadedModelStillValidates(t *testing.T) {
	src := buildModel(5)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: 6,
	})
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if err := dst.Net.Validate(); err != nil {
		t.Fatal(err)
	}
}
