package nn

import (
	"math"
	"testing"

	"steppingnet/internal/subnet"
	"steppingnet/internal/tensor"
)

// numericGrad estimates d(loss)/d(param[idx]) by central differences,
// where loss = Σ out ⊙ weights for a fixed random weighting (a scalar
// functional of the network output).
func numericGrad(f func() float64, v []float64, idx int) float64 {
	const h = 1e-6
	old := v[idx]
	v[idx] = old + h
	up := f()
	v[idx] = old - h
	down := f()
	v[idx] = old
	return (up - down) / (2 * h)
}

// scalarLoss runs net.Forward and contracts the output against lossW.
func scalarLoss(net *Network, x *tensor.Tensor, ctx *Context, lossW []float64) float64 {
	out := net.Forward(x, &Context{Subnet: ctx.Subnet, Mode: ctx.Mode})
	s := 0.0
	for i, v := range out.Data() {
		s += v * lossW[i]
	}
	return s
}

// backprop runs a full forward/backward with the same scalar loss and
// returns the network (with gradients accumulated).
func backprop(net *Network, x *tensor.Tensor, ctx *Context, lossW []float64) *tensor.Tensor {
	net.ZeroGrad()
	tctx := &Context{Subnet: ctx.Subnet, Mode: ctx.Mode, Train: true, Beta: ctx.Beta}
	out := net.Forward(x, tctx)
	grad := tensor.New(out.Shape()...)
	copy(grad.Data(), lossW)
	return net.Backward(grad, tctx)
}

func checkParamGrads(t *testing.T, net *Network, x *tensor.Tensor, ctx *Context, samples int, seed uint64) {
	t.Helper()
	r := tensor.NewRNG(seed)
	out := net.Forward(x, &Context{Subnet: ctx.Subnet, Mode: ctx.Mode})
	lossW := make([]float64, out.Len())
	for i := range lossW {
		lossW[i] = r.NormFloat64()
	}
	backprop(net, x, ctx, lossW)
	for _, p := range net.Params() {
		v := p.Value.Data()
		g := p.Grad.Data()
		n := len(v)
		for k := 0; k < samples && k < n; k++ {
			idx := r.Intn(n)
			num := numericGrad(func() float64 { return scalarLoss(net, x, ctx, lossW) }, v, idx)
			if math.Abs(num-g[idx]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %s[%d]: analytic %.8g numeric %.8g", p.Name, idx, g[idx], num)
			}
		}
	}
}

func checkInputGrads(t *testing.T, net *Network, x *tensor.Tensor, ctx *Context, samples int, seed uint64) {
	t.Helper()
	r := tensor.NewRNG(seed)
	out := net.Forward(x, &Context{Subnet: ctx.Subnet, Mode: ctx.Mode})
	lossW := make([]float64, out.Len())
	for i := range lossW {
		lossW[i] = r.NormFloat64()
	}
	gx := backprop(net, x, ctx, lossW)
	xd := x.Data()
	for k := 0; k < samples && k < len(xd); k++ {
		idx := r.Intn(len(xd))
		num := numericGrad(func() float64 { return scalarLoss(net, x, ctx, lossW) }, xd, idx)
		if math.Abs(num-gx.Data()[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("input[%d]: analytic %.8g numeric %.8g", idx, gx.Data()[idx], num)
		}
	}
}

func denseNet(rule MaskRule, inIDs, outIDs []int, n int, seed uint64) (*Network, *Dense) {
	r := tensor.NewRNG(seed)
	d := NewDense(DenseConfig{
		Name: "fc", In: len(inIDs), Out: len(outIDs), Rule: rule,
		AssignIn: subnet.Fixed(inIDs, n), Assign: subnet.Fixed(outIDs, n), Init: r,
	})
	d.Bias().Value.FillNormal(r, 0, 0.5)
	return NewNetwork("t", d), d
}

func TestDenseGradientsFullSubnet(t *testing.T) {
	net, _ := denseNet(RuleIncremental, []int{1, 1, 2, 2, 3}, []int{1, 2, 3, 3}, 3, 1)
	r := tensor.NewRNG(2)
	x := tensor.New(3, 5)
	x.FillNormal(r, 0, 1)
	ctx := &Context{Subnet: 3}
	checkParamGrads(t, net, x, ctx, 20, 3)
	checkInputGrads(t, net, x, ctx, 10, 4)
}

func TestDenseGradientsPartialSubnet(t *testing.T) {
	net, _ := denseNet(RuleIncremental, []int{1, 1, 2, 2, 3}, []int{1, 2, 3, 3}, 3, 5)
	r := tensor.NewRNG(6)
	x := tensor.New(2, 5)
	x.FillNormal(r, 0, 1)
	for _, s := range []int{1, 2} {
		ctx := &Context{Subnet: s}
		checkParamGrads(t, net, x, ctx, 20, uint64(10+s))
		checkInputGrads(t, net, x, ctx, 10, uint64(20+s))
	}
}

func TestDenseGradientsSharedRule(t *testing.T) {
	net, _ := denseNet(RuleShared, []int{1, 2, 2}, []int{1, 1, 2}, 2, 7)
	r := tensor.NewRNG(8)
	x := tensor.New(2, 3)
	x.FillNormal(r, 0, 1)
	for _, s := range []int{1, 2} {
		checkParamGrads(t, net, x, &Context{Subnet: s}, 9, uint64(30+s))
	}
}

func TestDenseGradientsWithPruning(t *testing.T) {
	net, d := denseNet(RuleIncremental, []int{1, 1, 1}, []int{1, 1}, 1, 9)
	// Prune one weight by force.
	d.pruned[0*3+1] = true
	r := tensor.NewRNG(10)
	x := tensor.New(2, 3)
	x.FillNormal(r, 0, 1)
	checkParamGrads(t, net, x, &Context{Subnet: 1}, 6, 11)
	// A pruned weight must receive zero gradient.
	lossW := make([]float64, 4)
	for i := range lossW {
		lossW[i] = 1
	}
	backprop(net, x, &Context{Subnet: 1}, lossW)
	if d.Weights().Grad.Data()[1] != 0 {
		t.Fatal("pruned weight received gradient")
	}
}

func convNet(rule MaskRule, inIDs, outIDs []int, n int, h, w, k, pad int, seed uint64) (*Network, *Conv2D) {
	r := tensor.NewRNG(seed)
	g := tensor.ConvGeom{InC: len(inIDs), InH: h, InW: w, OutC: len(outIDs), K: k, Stride: 1, Pad: pad}
	c := NewConv2D(Conv2DConfig{
		Name: "conv", Geom: g, Rule: rule,
		AssignIn: subnet.Fixed(inIDs, n), Assign: subnet.Fixed(outIDs, n), Init: r,
	})
	c.Bias().Value.FillNormal(r, 0, 0.5)
	return NewNetwork("t", c), c
}

func TestConvGradientsFullSubnet(t *testing.T) {
	net, _ := convNet(RuleIncremental, []int{1, 2}, []int{1, 2, 2}, 2, 5, 5, 3, 1, 20)
	r := tensor.NewRNG(21)
	x := tensor.New(2, 2, 5, 5)
	x.FillNormal(r, 0, 1)
	ctx := &Context{Subnet: 2}
	checkParamGrads(t, net, x, ctx, 15, 22)
	checkInputGrads(t, net, x, ctx, 10, 23)
}

func TestConvGradientsPartialSubnet(t *testing.T) {
	net, _ := convNet(RuleIncremental, []int{1, 2}, []int{1, 2, 2}, 2, 4, 4, 3, 1, 24)
	r := tensor.NewRNG(25)
	x := tensor.New(2, 2, 4, 4)
	x.FillNormal(r, 0, 1)
	ctx := &Context{Subnet: 1}
	checkParamGrads(t, net, x, ctx, 15, 26)
	checkInputGrads(t, net, x, ctx, 8, 27)
}

func TestConvGradientsStride2NoPad(t *testing.T) {
	net, _ := convNet(RuleIncremental, []int{1}, []int{1, 1}, 1, 5, 5, 3, 0, 28)
	r := tensor.NewRNG(29)
	x := tensor.New(1, 1, 5, 5)
	x.FillNormal(r, 0, 1)
	ctx := &Context{Subnet: 1}
	checkParamGrads(t, net, x, ctx, 12, 30)
	checkInputGrads(t, net, x, ctx, 8, 31)
}

func TestStackGradientsConvReluPoolDense(t *testing.T) {
	r := tensor.NewRNG(40)
	n := 2
	inA := subnet.Fixed([]int{1}, n)
	convA := subnet.Fixed([]int{1, 2}, n)
	outA := subnet.Fixed([]int{1, 2, 2}, n)
	g := tensor.ConvGeom{InC: 1, InH: 6, InW: 6, OutC: 2, K: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(Conv2DConfig{Name: "c1", Geom: g, Rule: RuleIncremental, AssignIn: inA, Assign: convA, Init: r})
	conv.Bias().Value.FillNormal(r, 0, 0.3)
	pool := NewMaxPool2D("p1", 2, 6, 6, 2)
	fc := NewDense(DenseConfig{
		Name: "fc1", In: 2 * 3 * 3, Out: 3, Rule: RuleIncremental,
		AssignIn: convA, InRepeat: 9, Assign: outA, Init: r,
	})
	fc.Bias().Value.FillNormal(r, 0, 0.3)
	net := NewNetwork("stack", conv, NewReLU("r1"), pool, NewFlatten("fl"), fc)

	x := tensor.New(2, 1, 6, 6)
	x.FillNormal(r, 0, 1)
	for _, s := range []int{1, 2} {
		ctx := &Context{Subnet: s}
		checkParamGrads(t, net, x, ctx, 10, uint64(41+s))
		checkInputGrads(t, net, x, ctx, 8, uint64(44+s))
	}
}

func TestBatchNormGradients(t *testing.T) {
	r := tensor.NewRNG(50)
	bn := NewSwitchableBatchNorm2D("bn", 2, 2)
	bn.gamma[0].Value.FillNormal(r, 1, 0.2)
	bn.beta[0].Value.FillNormal(r, 0, 0.2)
	net := NewNetwork("t", bn)
	x := tensor.New(3, 2, 2, 2)
	x.FillNormal(r, 0, 1)

	// BatchNorm uses batch statistics in Train mode, so numeric
	// differentiation must also run in Train mode.
	lossW := make([]float64, x.Len())
	for i := range lossW {
		lossW[i] = r.NormFloat64()
	}
	loss := func() float64 {
		out := net.Forward(x, &Context{Train: true, Mode: 1, Subnet: 1})
		s := 0.0
		for i, v := range out.Data() {
			s += v * lossW[i]
		}
		return s
	}
	net.ZeroGrad()
	tctx := &Context{Train: true, Mode: 1, Subnet: 1}
	out := net.Forward(x, tctx)
	grad := tensor.New(out.Shape()...)
	copy(grad.Data(), lossW)
	gx := net.Backward(grad, tctx)

	for _, p := range []*Param{bn.gamma[0], bn.beta[0]} {
		for idx := 0; idx < p.Value.Len(); idx++ {
			num := numericGrad(loss, p.Value.Data(), idx)
			if math.Abs(num-p.Grad.Data()[idx]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %.8g numeric %.8g", p.Name, idx, p.Grad.Data()[idx], num)
			}
		}
	}
	for k := 0; k < 10; k++ {
		idx := tensor.NewRNG(uint64(60 + k)).Intn(x.Len())
		num := numericGrad(loss, x.Data(), idx)
		if math.Abs(num-gx.Data()[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("bn input[%d]: analytic %.8g numeric %.8g", idx, gx.Data()[idx], num)
		}
	}
}

// Importance gradient check: ∂L/∂r_o must equal the numeric
// derivative of the loss when the unit's pre-activation (minus bias)
// is scaled by r around r=1.
func TestImportanceMatchesNumericRGradient(t *testing.T) {
	r := tensor.NewRNG(70)
	net, d := denseNet(RuleIncremental, []int{1, 1, 1, 1}, []int{1, 1, 1}, 1, 71)
	d.EnableImportance(1)
	x := tensor.New(4, 4)
	x.FillNormal(r, 0, 1)
	lossW := make([]float64, 12)
	for i := range lossW {
		lossW[i] = r.NormFloat64()
	}
	net.ZeroGrad()
	tctx := &Context{Subnet: 1, Train: true, AccumulateImportance: true}
	out := net.Forward(x, tctx)
	grad := tensor.New(out.Shape()...)
	copy(grad.Data(), lossW)
	net.Backward(grad, tctx)

	// Numeric: scale unit o's weight row by (1±h) — equivalent to
	// perturbing r in Eq. 1 — and difference the loss.
	for o := 0; o < 3; o++ {
		const h = 1e-6
		scaleRow := func(f float64) {
			for i := 0; i < 4; i++ {
				d.Weights().Value.Data()[o*4+i] *= f
			}
		}
		scaleRow(1 + h)
		up := scalarLoss(net, x, &Context{Subnet: 1}, lossW)
		scaleRow((1 - h) / (1 + h))
		down := scalarLoss(net, x, &Context{Subnet: 1}, lossW)
		scaleRow(1 / (1 - h))
		num := math.Abs((up - down) / (2 * h))
		got := d.Importance()[0][o]
		if math.Abs(num-got) > 1e-3*(1+math.Abs(num)) {
			t.Fatalf("unit %d importance: analytic %.8g numeric %.8g", o, got, num)
		}
	}
}
