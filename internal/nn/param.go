// Package nn implements the neural-network substrate of the
// SteppingNet reproduction: layers with hand-derived backward passes,
// a sequential network container, and — central to the paper — masked
// dense/conv layers whose connectivity is governed by unit→subnet
// assignments, per-synapse prune masks and the incremental property.
package nn

import (
	"fmt"

	"steppingnet/internal/tensor"
)

// Param is one learnable tensor with its gradient accumulator.
// Optimizers read Value/Grad; layers accumulate into Grad during
// Backward.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// String describes the parameter for diagnostics.
func (p *Param) String() string {
	return fmt.Sprintf("%s%v", p.Name, p.Value.Shape())
}

// MaskRule selects how subnet assignments translate into active
// synapses. The rule is the essential structural difference between
// SteppingNet / any-width networks and the slimmable baseline.
type MaskRule int

const (
	// RuleIncremental activates synapse i→o iff assign(i) ≤ assign(o)
	// ≤ s. Units added by larger subnets never feed smaller-subnet
	// units, so smaller-subnet results are reusable (SteppingNet and
	// the any-width network).
	RuleIncremental MaskRule = iota
	// RuleShared activates synapse i→o iff assign(i) ≤ s and
	// assign(o) ≤ s. Larger subnets change the inputs of existing
	// units, so switching subnets invalidates intermediate results
	// (the slimmable network, paper Fig. 1a).
	RuleShared
)

func (r MaskRule) String() string {
	switch r {
	case RuleIncremental:
		return "incremental"
	case RuleShared:
		return "shared"
	default:
		return fmt.Sprintf("MaskRule(%d)", int(r))
	}
}
