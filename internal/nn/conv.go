package nn

import (
	"fmt"
	"math"

	"steppingnet/internal/subnet"
	"steppingnet/internal/tensor"
)

// Conv2D is a masked 2-D convolution. Units are filters (output
// channels), exactly as the paper treats CNNs: "r is assigned to the
// jth filter of the ith subnet" (§III-A2). Masking is at channel
// granularity for the structural rule and at weight granularity for
// unstructured pruning. Input and output are rank-4 [B, C, H, W].
type Conv2D struct {
	name     string
	geom     tensor.ConvGeom
	w, b     *Param // w: outC × (inC·K·K)
	rule     MaskRule
	assignIn *subnet.Assignment // per input channel
	assign   *subnet.Assignment // per filter
	pruned   []bool             // outC × inC·K·K

	importance [][]float64

	// training caches
	x    *tensor.Tensor   // input batch
	z    *tensor.Tensor   // pre-activation batch [B, outC, outH, outW]
	cols []*tensor.Tensor // per-image im2col matrices (R×C)
}

// Conv2DConfig assembles a Conv2D layer.
type Conv2DConfig struct {
	Name     string
	Geom     tensor.ConvGeom
	Rule     MaskRule
	AssignIn *subnet.Assignment
	Assign   *subnet.Assignment
	Init     *tensor.RNG
}

// NewConv2D constructs the layer and validates geometry and
// assignment sizes.
func NewConv2D(cfg Conv2DConfig) *Conv2D {
	if err := cfg.Geom.Validate(); err != nil {
		panic(fmt.Sprintf("nn: Conv2D %q: %v", cfg.Name, err))
	}
	if cfg.AssignIn == nil || cfg.Assign == nil {
		panic(fmt.Sprintf("nn: Conv2D %q needs both assignments", cfg.Name))
	}
	if cfg.AssignIn.Units() != cfg.Geom.InC {
		panic(fmt.Sprintf("nn: Conv2D %q: input assignment has %d channels, geometry %d",
			cfg.Name, cfg.AssignIn.Units(), cfg.Geom.InC))
	}
	if cfg.Assign.Units() != cfg.Geom.OutC {
		panic(fmt.Sprintf("nn: Conv2D %q: output assignment has %d filters, geometry %d",
			cfg.Name, cfg.Assign.Units(), cfg.Geom.OutC))
	}
	cc := cfg.Geom.ColCols()
	c := &Conv2D{
		name:     cfg.Name,
		geom:     cfg.Geom,
		w:        NewParam(cfg.Name+".W", cfg.Geom.OutC, cc),
		b:        NewParam(cfg.Name+".b", cfg.Geom.OutC),
		rule:     cfg.Rule,
		assignIn: cfg.AssignIn,
		assign:   cfg.Assign,
		pruned:   make([]bool, cfg.Geom.OutC*cc),
	}
	if cfg.Init != nil {
		c.w.Value.FillKaiming(cfg.Init, cc)
	}
	return c
}

func (c *Conv2D) Name() string     { return c.name }
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Geom returns the convolution geometry.
func (c *Conv2D) Geom() tensor.ConvGeom { return c.geom }

// Weights exposes the filter parameter.
func (c *Conv2D) Weights() *Param { return c.w }

// Bias exposes the bias parameter.
func (c *Conv2D) Bias() *Param { return c.b }

// Rule reports the layer's masking rule.
func (c *Conv2D) Rule() MaskRule { return c.rule }

func (c *Conv2D) OutAssignment() *subnet.Assignment { return c.assign }
func (c *Conv2D) InAssignment() (*subnet.Assignment, int) {
	return c.assignIn, 1
}

// weightChannel maps a flat weight column index to its input channel.
func (c *Conv2D) weightChannel(col int) int { return col / (c.geom.K * c.geom.K) }

// weightActive applies the mask rule for filter o, weight column col,
// subnet s.
func (c *Conv2D) weightActive(o, col, s int) bool {
	outID := c.assign.ID(o)
	if outID > s {
		return false
	}
	inID := c.assignIn.ID(c.weightChannel(col))
	switch c.rule {
	case RuleIncremental:
		if inID > outID {
			return false
		}
	case RuleShared:
		if inID > s {
			return false
		}
	}
	return !c.pruned[o*c.geom.ColCols()+col]
}

// effectiveWeights materializes the masked filter matrix for subnet s.
func (c *Conv2D) effectiveWeights(s int) *tensor.Tensor {
	cc := c.geom.ColCols()
	weff := tensor.New(c.geom.OutC, cc)
	wd, ed := c.w.Value.Data(), weff.Data()
	for o := 0; o < c.geom.OutC; o++ {
		if c.assign.ID(o) > s {
			continue
		}
		row := o * cc
		for col := 0; col < cc; col++ {
			if c.weightActive(o, col, s) {
				ed[row+col] = wd[row+col]
			}
		}
	}
	return weff
}

// Forward computes the masked convolution.
func (c *Conv2D) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	g := c.geom
	if x.Rank() != 4 || x.Dim(1) != g.InC || x.Dim(2) != g.InH || x.Dim(3) != g.InW {
		panic(fmt.Sprintf("nn: Conv2D %q forward input %v, want [B %d %d %d]",
			c.name, x.Shape(), g.InC, g.InH, g.InW))
	}
	batch := x.Dim(0)
	r, cc := g.ColRows(), g.ColCols()
	outH, outW := g.OutH(), g.OutW()
	weff := c.effectiveWeights(ctx.Subnet)
	z := tensor.New(batch, g.OutC, outH, outW)
	zd := z.Data()
	imgLen := g.InC * g.InH * g.InW

	var cols []*tensor.Tensor
	if ctx.Train {
		cols = make([]*tensor.Tensor, batch)
	}
	colBuf := tensor.New(r, cc)
	for b := 0; b < batch; b++ {
		col := colBuf
		if ctx.Train {
			col = tensor.New(r, cc)
			cols[b] = col
		}
		g.Im2Col(x.Data()[b*imgLen:(b+1)*imgLen], col.Data())
		// z[b,o,p] = Σ_col weff[o,col]·col[p,col] + bias[o]
		for o := 0; o < g.OutC; o++ {
			if c.assign.ID(o) > ctx.Subnet {
				continue
			}
			wrow := weff.Data()[o*cc : (o+1)*cc]
			bias := c.b.Value.Data()[o]
			base := b*g.OutC*r + o*r
			for p := 0; p < r; p++ {
				crow := col.Data()[p*cc : (p+1)*cc]
				sum := bias
				for k, wv := range wrow {
					if wv != 0 {
						sum += wv * crow[k]
					}
				}
				zd[base+p] = sum
			}
		}
	}
	if ctx.Train {
		c.x, c.z, c.cols = x, z, cols
	}
	return z
}

// Backward propagates gradients through the convolution; see Dense
// for the masking, suppression and importance conventions.
func (c *Conv2D) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if c.x == nil {
		panic(fmt.Sprintf("nn: Conv2D %q Backward without cached Forward", c.name))
	}
	g := c.geom
	batch := grad.Dim(0)
	s := ctx.Subnet
	r, cc := g.ColRows(), g.ColCols()
	gd := grad.Data()

	// Zero gradients of inactive filters.
	for b := 0; b < batch; b++ {
		for o := 0; o < g.OutC; o++ {
			if c.assign.ID(o) > s {
				base := b*g.OutC*r + o*r
				for p := 0; p < r; p++ {
					gd[base+p] = 0
				}
			}
		}
	}

	if ctx.AccumulateImportance && c.importance != nil && s >= 1 && s <= len(c.importance) {
		c.accumulateImportance(grad, s)
	}

	weff := c.effectiveWeights(s)
	imgLen := g.InC * g.InH * g.InW
	gradX := tensor.New(batch, g.InC, g.InH, g.InW)
	tmpW := tensor.New(g.OutC, cc) // unscaled, unmasked dW accumulator
	gb := c.b.Grad.Data()
	gradColBuf := tensor.New(r, cc)

	for b := 0; b < batch; b++ {
		col := c.cols[b]
		// dW += δ_img (outC×R) × col (R×C), accumulated over batch.
		for o := 0; o < g.OutC; o++ {
			if c.assign.ID(o) > s {
				continue
			}
			dbase := b*g.OutC*r + o*r
			trow := tmpW.Data()[o*cc : (o+1)*cc]
			var gbo float64
			for p := 0; p < r; p++ {
				delta := gd[dbase+p]
				if delta == 0 {
					continue
				}
				gbo += delta
				crow := col.Data()[p*cc : (p+1)*cc]
				for k, cv := range crow {
					trow[k] += delta * cv
				}
			}
			scale := c.suppression(ctx, o, s)
			gb[o] += scale * gbo
		}
		// dCol = δ_imgᵀ (R×outC) × W_eff (outC×C), then Col2Im.
		gcd := gradColBuf.Data()
		for i := range gcd {
			gcd[i] = 0
		}
		for o := 0; o < g.OutC; o++ {
			if c.assign.ID(o) > s {
				continue
			}
			dbase := b*g.OutC*r + o*r
			wrow := weff.Data()[o*cc : (o+1)*cc]
			for p := 0; p < r; p++ {
				delta := gd[dbase+p]
				if delta == 0 {
					continue
				}
				grow := gcd[p*cc : (p+1)*cc]
				for k, wv := range wrow {
					if wv != 0 {
						grow[k] += delta * wv
					}
				}
			}
		}
		g.Col2Im(gcd, gradX.Data()[b*imgLen:(b+1)*imgLen])
	}

	// Apply mask and suppression to the accumulated weight gradient.
	gw := c.w.Grad.Data()
	td := tmpW.Data()
	for o := 0; o < g.OutC; o++ {
		if c.assign.ID(o) > s {
			continue
		}
		scale := c.suppression(ctx, o, s)
		row := o * cc
		for col := 0; col < cc; col++ {
			if c.weightActive(o, col, s) {
				gw[row+col] += scale * td[row+col]
			}
		}
	}
	return gradX
}

func (c *Conv2D) suppression(ctx *Context, o, s int) float64 {
	outID := c.assign.ID(o)
	if ctx.Beta > 0 && ctx.Beta < 1 && outID < s {
		return math.Pow(ctx.Beta, float64(s-outID))
	}
	return 1
}

func (c *Conv2D) accumulateImportance(grad *tensor.Tensor, s int) {
	g := c.geom
	batch := grad.Dim(0)
	r := g.ColRows()
	gd, zd, bd := grad.Data(), c.z.Data(), c.b.Value.Data()
	acc := c.importance[s-1]
	for o := 0; o < g.OutC; o++ {
		if c.assign.ID(o) > s {
			continue
		}
		sum := 0.0
		for b := 0; b < batch; b++ {
			base := b*g.OutC*r + o*r
			for p := 0; p < r; p++ {
				sum += gd[base+p] * (zd[base+p] - bd[o])
			}
		}
		acc[o] += math.Abs(sum)
	}
}

// MACs counts active multiply-accumulates for subnet s: each active
// weight fires once per output position.
func (c *Conv2D) MACs(s int) int64 {
	var active int64
	cc := c.geom.ColCols()
	for o := 0; o < c.geom.OutC; o++ {
		for col := 0; col < cc; col++ {
			if c.weightActive(o, col, s) {
				active++
			}
		}
	}
	return active * int64(c.geom.ColRows())
}

// UnitMACs counts the incoming MACs of filter o in subnet s.
func (c *Conv2D) UnitMACs(o, s int) int64 {
	var active int64
	cc := c.geom.ColCols()
	for col := 0; col < cc; col++ {
		if c.weightActive(o, col, s) {
			active++
		}
	}
	return active * int64(c.geom.ColRows())
}

// PruneBelow prunes small-magnitude filter weights.
func (c *Conv2D) PruneBelow(threshold float64) int {
	wd := c.w.Value.Data()
	n := 0
	for idx, v := range wd {
		if !c.pruned[idx] && math.Abs(v) < threshold {
			c.pruned[idx] = true
			n++
		}
	}
	return n
}

// ActiveAt reports whether weight column col of filter o is active in
// subnet s (structural rule ∩ prune mask).
func (c *Conv2D) ActiveAt(o, col, s int) bool { return c.weightActive(o, col, s) }

// PruneAt marks one filter weight as pruned.
func (c *Conv2D) PruneAt(o, col int) { c.pruned[o*c.geom.ColCols()+col] = true }

// ReviveUnit clears the prune mask on filter o.
func (c *Conv2D) ReviveUnit(o int) {
	cc := c.geom.ColCols()
	for col := 0; col < cc; col++ {
		c.pruned[o*cc+col] = false
	}
}

// PrunedCount reports the current number of pruned weights.
func (c *Conv2D) PrunedCount() int {
	n := 0
	for _, p := range c.pruned {
		if p {
			n++
		}
	}
	return n
}

// PruneMask returns a copy of the prune mask (outC×(inC·K·K)).
func (c *Conv2D) PruneMask() []bool { return append([]bool(nil), c.pruned...) }

// SetPruneMask replaces the prune mask.
func (c *Conv2D) SetPruneMask(mask []bool) error {
	if len(mask) != len(c.pruned) {
		return fmt.Errorf("nn: Conv2D %q prune mask length %d, want %d", c.name, len(mask), len(c.pruned))
	}
	copy(c.pruned, mask)
	return nil
}

func (c *Conv2D) EnableImportance(n int) {
	c.importance = make([][]float64, n)
	for i := range c.importance {
		c.importance[i] = make([]float64, c.geom.OutC)
	}
}

func (c *Conv2D) ResetImportance() {
	for _, row := range c.importance {
		for i := range row {
			row[i] = 0
		}
	}
}

func (c *Conv2D) Importance() [][]float64 { return c.importance }

// Edge exposes channel-level connectivity for validation: input
// channel i feeds filter o iff at least one of the K·K weights
// between them is unpruned.
func (c *Conv2D) Edge() *subnet.Edge {
	kk := c.geom.K * c.geom.K
	cc := c.geom.ColCols()
	mask := make([]bool, c.geom.OutC*c.geom.InC)
	for o := 0; o < c.geom.OutC; o++ {
		outID := c.assign.ID(o)
		for ch := 0; ch < c.geom.InC; ch++ {
			if c.rule == RuleIncremental && c.assignIn.ID(ch) > outID {
				continue
			}
			any := false
			for k := 0; k < kk; k++ {
				if !c.pruned[o*cc+ch*kk+k] {
					any = true
					break
				}
			}
			mask[o*c.geom.InC+ch] = any
		}
	}
	return &subnet.Edge{Name: c.name, In: c.assignIn, Out: c.assign, Mask: mask}
}

// ForwardIncremental implements anytime inference for convolutions:
// filters with assignment ≤ sPrev are copied from the cached output,
// only newly activated filters are convolved.
func (c *Conv2D) ForwardIncremental(x, cached *tensor.Tensor, sPrev, s int) (*tensor.Tensor, int64) {
	g := c.geom
	batch := x.Dim(0)
	r, cc := g.ColRows(), g.ColCols()
	out := tensor.New(batch, g.OutC, g.OutH(), g.OutW())
	od := out.Data()
	imgLen := g.InC * g.InH * g.InW
	colBuf := tensor.New(r, cc)
	wd := c.w.Value.Data()
	var macs int64

	// Per-image MACs are identical across the batch; count once.
	for o := 0; o < g.OutC; o++ {
		outID := c.assign.ID(o)
		if outID > s || (outID <= sPrev && cached != nil) {
			continue
		}
		for col := 0; col < cc; col++ {
			if c.weightActive(o, col, s) {
				macs++
			}
		}
	}
	macs *= int64(r)

	for b := 0; b < batch; b++ {
		needCol := false
		for o := 0; o < g.OutC; o++ {
			outID := c.assign.ID(o)
			if outID <= s && (outID > sPrev || cached == nil) {
				needCol = true
				break
			}
		}
		if needCol {
			g.Im2Col(x.Data()[b*imgLen:(b+1)*imgLen], colBuf.Data())
		}
		for o := 0; o < g.OutC; o++ {
			outID := c.assign.ID(o)
			if outID > s {
				continue
			}
			base := b*g.OutC*r + o*r
			if outID <= sPrev && cached != nil {
				copy(od[base:base+r], cached.Data()[base:base+r])
				continue
			}
			bias := c.b.Value.Data()[o]
			wrow := wd[o*cc : (o+1)*cc]
			for p := 0; p < r; p++ {
				crow := colBuf.Data()[p*cc : (p+1)*cc]
				sum := bias
				for col := 0; col < cc; col++ {
					if c.weightActive(o, col, s) {
						sum += wrow[col] * crow[col]
					}
				}
				od[base+p] = sum
			}
		}
	}
	return out, macs
}

var (
	_ Masked      = (*Conv2D)(nil)
	_ Incremental = (*Conv2D)(nil)
)
