package nn

import (
	"fmt"
	"math"

	"steppingnet/internal/subnet"
	"steppingnet/internal/tensor"
)

// Conv2D is a masked 2-D convolution. Units are filters (output
// channels), exactly as the paper treats CNNs: "r is assigned to the
// jth filter of the ith subnet" (§III-A2). Masking is at channel
// granularity for the structural rule and at weight granularity for
// unstructured pruning. Input and output are rank-4 [B, C, H, W].
type Conv2D struct {
	name     string
	geom     tensor.ConvGeom
	w, b     *Param // w: outC × (inC·K·K)
	rule     MaskRule
	assignIn *subnet.Assignment // per input channel
	assign   *subnet.Assignment // per filter
	pruned   []bool             // outC × inC·K·K

	importance [][]float64

	// training caches
	x    *tensor.Tensor   // input batch
	z    *tensor.Tensor   // pre-activation batch [B, outC, outH, outW]
	cols []*tensor.Tensor // per-image im2col matrices (R×C)
}

// Conv2DConfig assembles a Conv2D layer.
type Conv2DConfig struct {
	Name     string
	Geom     tensor.ConvGeom
	Rule     MaskRule
	AssignIn *subnet.Assignment
	Assign   *subnet.Assignment
	Init     *tensor.RNG
}

// NewConv2D constructs the layer and validates geometry and
// assignment sizes.
func NewConv2D(cfg Conv2DConfig) *Conv2D {
	if err := cfg.Geom.Validate(); err != nil {
		panic(fmt.Sprintf("nn: Conv2D %q: %v", cfg.Name, err))
	}
	if cfg.AssignIn == nil || cfg.Assign == nil {
		panic(fmt.Sprintf("nn: Conv2D %q needs both assignments", cfg.Name))
	}
	if cfg.AssignIn.Units() != cfg.Geom.InC {
		panic(fmt.Sprintf("nn: Conv2D %q: input assignment has %d channels, geometry %d",
			cfg.Name, cfg.AssignIn.Units(), cfg.Geom.InC))
	}
	if cfg.Assign.Units() != cfg.Geom.OutC {
		panic(fmt.Sprintf("nn: Conv2D %q: output assignment has %d filters, geometry %d",
			cfg.Name, cfg.Assign.Units(), cfg.Geom.OutC))
	}
	cc := cfg.Geom.ColCols()
	c := &Conv2D{
		name:     cfg.Name,
		geom:     cfg.Geom,
		w:        NewParam(cfg.Name+".W", cfg.Geom.OutC, cc),
		b:        NewParam(cfg.Name+".b", cfg.Geom.OutC),
		rule:     cfg.Rule,
		assignIn: cfg.AssignIn,
		assign:   cfg.Assign,
		pruned:   make([]bool, cfg.Geom.OutC*cc),
	}
	if cfg.Init != nil {
		c.w.Value.FillKaiming(cfg.Init, cc)
	}
	return c
}

func (c *Conv2D) Name() string     { return c.name }
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Geom returns the convolution geometry.
func (c *Conv2D) Geom() tensor.ConvGeom { return c.geom }

// Weights exposes the filter parameter.
func (c *Conv2D) Weights() *Param { return c.w }

// Bias exposes the bias parameter.
func (c *Conv2D) Bias() *Param { return c.b }

// Rule reports the layer's masking rule.
func (c *Conv2D) Rule() MaskRule { return c.rule }

func (c *Conv2D) OutAssignment() *subnet.Assignment { return c.assign }
func (c *Conv2D) InAssignment() (*subnet.Assignment, int) {
	return c.assignIn, 1
}

// weightChannel maps a flat weight column index to its input channel.
func (c *Conv2D) weightChannel(col int) int { return col / (c.geom.K * c.geom.K) }

// weightActive applies the mask rule for filter o, weight column col,
// subnet s.
func (c *Conv2D) weightActive(o, col, s int) bool {
	outID := c.assign.ID(o)
	if outID > s {
		return false
	}
	inID := c.assignIn.ID(c.weightChannel(col))
	switch c.rule {
	case RuleIncremental:
		if inID > outID {
			return false
		}
	case RuleShared:
		if inID > s {
			return false
		}
	}
	return !c.pruned[o*c.geom.ColCols()+col]
}

// effectiveWeightsInto materializes the masked filter matrix for
// subnet s into weff, which must be outC×ColCols and is fully
// overwritten (inactive entries become zero). The structural rule is
// resolved once per input channel, not per weight.
func (c *Conv2D) effectiveWeightsInto(weff *tensor.Tensor, s int) {
	g := c.geom
	cc, kk := g.ColCols(), g.K*g.K
	wd, ed := c.w.Value.Data(), weff.Data()
	for o := 0; o < g.OutC; o++ {
		row := o * cc
		outID := c.assign.ID(o)
		if outID > s {
			clear(ed[row : row+cc])
			continue
		}
		erow := ed[row : row+cc]
		wrow := wd[row : row+cc]
		prow := c.pruned[row : row+cc]
		for ch := 0; ch < g.InC; ch++ {
			base := ch * kk
			if !c.channelActive(ch, outID, s) {
				clear(erow[base : base+kk])
				continue
			}
			for k := base; k < base+kk; k++ {
				if prow[k] {
					erow[k] = 0
				} else {
					erow[k] = wrow[k]
				}
			}
		}
	}
}

// channelActive resolves the structural mask rule for one input
// channel feeding a filter with the given assignment.
func (c *Conv2D) channelActive(ch, outID, s int) bool {
	inID := c.assignIn.ID(ch)
	switch c.rule {
	case RuleIncremental:
		return inID <= outID
	case RuleShared:
		return inID <= s
	}
	return true
}

// countFilters reports how many filters have lo < assignment ≤ s —
// the column count of the matrix gatherFiltersT(lo, s) fills.
func (c *Conv2D) countFilters(lo, s int) int {
	n := 0
	for o := 0; o < c.geom.OutC; o++ {
		if id := c.assign.ID(o); id > lo && id <= s {
			n++
		}
	}
	return n
}

// gatherFiltersT writes the masked weight rows of the filters with
// lo < assignment ≤ s (in ascending filter order) into wt in
// transposed ColCols×countFilters(lo, s) layout — the right operand
// shape for the ikj Gemm kernel — and reports the number of active
// weights gathered. wt is fully overwritten.
func (c *Conv2D) gatherFiltersT(wt *tensor.Tensor, lo, s int) int64 {
	g := c.geom
	cc, kk := g.ColCols(), g.K*g.K
	n := wt.Dim(1)
	wd, ed := c.w.Value.Data(), wt.Data()
	var active int64
	j := 0
	for o := 0; o < g.OutC; o++ {
		outID := c.assign.ID(o)
		if outID <= lo || outID > s {
			continue
		}
		wrow := wd[o*cc : (o+1)*cc]
		prow := c.pruned[o*cc : (o+1)*cc]
		for ch := 0; ch < g.InC; ch++ {
			base := ch * kk
			if !c.channelActive(ch, outID, s) {
				for k := base; k < base+kk; k++ {
					ed[k*n+j] = 0
				}
				continue
			}
			for k := base; k < base+kk; k++ {
				if prow[k] {
					ed[k*n+j] = 0
				} else {
					ed[k*n+j] = wrow[k]
					active++
				}
			}
		}
		j++
	}
	return active
}

// Forward computes the masked convolution as an im2col expansion
// followed by one weff·colᵀ matmul per image; rows of weff belonging
// to inactive filters are zero and skipped inside the kernel.
func (c *Conv2D) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	g := c.geom
	if x.Rank() != 4 || x.Dim(1) != g.InC || x.Dim(2) != g.InH || x.Dim(3) != g.InW {
		panic(fmt.Sprintf("nn: Conv2D %q forward input %v, want [B %d %d %d]",
			c.name, x.Shape(), g.InC, g.InH, g.InW))
	}
	batch := x.Dim(0)
	r, cc := g.ColRows(), g.ColCols()
	outH, outW := g.OutH(), g.OutW()
	if ctx.Train {
		// The previous step's caches are dead once a new training
		// forward begins; recycle them before drawing new buffers.
		ctx.Scratch.Put(c.z)
		for _, col := range c.cols {
			ctx.Scratch.Put(col)
		}
		c.x, c.z, c.cols = nil, nil, c.cols[:0]
	}
	// Gather the active filters' masked weights into a compact
	// transposed matrix: the per-image product becomes the fast ikj
	// kernel, and inactive filters cost nothing at small subnets.
	nAct := c.countFilters(0, ctx.Subnet)
	wt := ctx.Scratch.GetUninit(cc, nAct)
	c.gatherFiltersT(wt, 0, ctx.Subnet)
	z := ctx.Scratch.GetUninit(batch, g.OutC, outH, outW)
	zd := z.Data()
	bd := c.b.Value.Data()
	imgLen := g.InC * g.InH * g.InW

	var colBuf *tensor.Tensor
	if !ctx.Train {
		colBuf = ctx.Scratch.GetUninit(r, cc)
	}
	zT := ctx.Scratch.GetUninit(r, nAct)
	ztd := zT.Data()
	for b := 0; b < batch; b++ {
		col := colBuf
		if ctx.Train {
			col = ctx.Scratch.GetUninit(r, cc)
			c.cols = append(c.cols, col)
		}
		if ctx.Train || nAct > 0 {
			// The gather fans out over the tensor worker arena when the
			// matrix is big enough — the batch-1 eval forward has no
			// other axis to parallelize.
			tensor.ParallelIm2Col(g, x.Data()[b*imgLen:(b+1)*imgLen], col.Data())
		}
		// zT (r×nAct) = col (r×cc) · wt (cc×nAct), then scatter back
		// channel-major with bias; inactive filter rows stay zero.
		if nAct > 0 {
			tensor.Gemm(ztd, col.Data(), wt.Data(), r, cc, nAct, false)
		}
		zimg := zd[b*g.OutC*r : (b+1)*g.OutC*r]
		j := 0
		for o := 0; o < g.OutC; o++ {
			zrow := zimg[o*r : (o+1)*r]
			if c.assign.ID(o) <= ctx.Subnet {
				bias := bd[o]
				for p := range zrow {
					zrow[p] = ztd[p*nAct+j] + bias
				}
				j++
			} else {
				clear(zrow)
			}
		}
	}
	if ctx.Train {
		c.x, c.z = x, z
	} else {
		ctx.Scratch.Put(colBuf)
	}
	ctx.Scratch.Put(zT)
	ctx.Scratch.Put(wt)
	return z
}

// Backward propagates gradients through the convolution; see Dense
// for the masking, suppression and importance conventions.
func (c *Conv2D) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if c.x == nil {
		panic(fmt.Sprintf("nn: Conv2D %q Backward without cached Forward", c.name))
	}
	g := c.geom
	batch := grad.Dim(0)
	s := ctx.Subnet
	r, cc := g.ColRows(), g.ColCols()
	gd := grad.Data()

	// Zero gradients of inactive filters.
	for b := 0; b < batch; b++ {
		for o := 0; o < g.OutC; o++ {
			if c.assign.ID(o) > s {
				base := b*g.OutC*r + o*r
				for p := 0; p < r; p++ {
					gd[base+p] = 0
				}
			}
		}
	}

	if ctx.AccumulateImportance && c.importance != nil && s >= 1 && s <= len(c.importance) {
		c.accumulateImportance(grad, s)
	}

	weff := ctx.Scratch.GetUninit(g.OutC, cc)
	c.effectiveWeightsInto(weff, s)
	imgLen := g.InC * g.InH * g.InW
	gradX := ctx.Scratch.Get(batch, g.InC, g.InH, g.InW)
	tmpW := ctx.Scratch.Get(g.OutC, cc) // unscaled, unmasked dW accumulator
	gb := c.b.Grad.Data()
	gradColBuf := ctx.Scratch.GetUninit(r, cc)

	for b := 0; b < batch; b++ {
		col := c.cols[b]
		dimg := gd[b*g.OutC*r : (b+1)*g.OutC*r]
		// dW += δ_img (outC×R) × col (R×C), accumulated over batch;
		// inactive filters have zeroed δ rows, which the kernel skips.
		tensor.Gemm(tmpW.Data(), dimg, col.Data(), g.OutC, r, cc, true)
		for o := 0; o < g.OutC; o++ {
			if c.assign.ID(o) > s {
				continue
			}
			var gbo float64
			for _, delta := range dimg[o*r : (o+1)*r] {
				gbo += delta
			}
			gb[o] += c.suppression(ctx, o, s) * gbo
		}
		// dCol = δ_imgᵀ (R×outC) × W_eff (outC×C), then Col2Im.
		tensor.GemmTransA(gradColBuf.Data(), dimg, weff.Data(), g.OutC, r, cc, false)
		g.Col2Im(gradColBuf.Data(), gradX.Data()[b*imgLen:(b+1)*imgLen])
	}

	// Apply mask and suppression to the accumulated weight gradient.
	gw := c.w.Grad.Data()
	td := tmpW.Data()
	for o := 0; o < g.OutC; o++ {
		if c.assign.ID(o) > s {
			continue
		}
		scale := c.suppression(ctx, o, s)
		row := o * cc
		for col := 0; col < cc; col++ {
			if c.weightActive(o, col, s) {
				gw[row+col] += scale * td[row+col]
			}
		}
	}
	ctx.Scratch.Put(weff)
	ctx.Scratch.Put(tmpW)
	ctx.Scratch.Put(gradColBuf)
	return gradX
}

func (c *Conv2D) suppression(ctx *Context, o, s int) float64 {
	outID := c.assign.ID(o)
	if ctx.Beta > 0 && ctx.Beta < 1 && outID < s {
		return math.Pow(ctx.Beta, float64(s-outID))
	}
	return 1
}

func (c *Conv2D) accumulateImportance(grad *tensor.Tensor, s int) {
	g := c.geom
	batch := grad.Dim(0)
	r := g.ColRows()
	gd, zd, bd := grad.Data(), c.z.Data(), c.b.Value.Data()
	acc := c.importance[s-1]
	for o := 0; o < g.OutC; o++ {
		if c.assign.ID(o) > s {
			continue
		}
		sum := 0.0
		for b := 0; b < batch; b++ {
			base := b*g.OutC*r + o*r
			for p := 0; p < r; p++ {
				sum += gd[base+p] * (zd[base+p] - bd[o])
			}
		}
		acc[o] += math.Abs(sum)
	}
}

// MACs counts active multiply-accumulates for subnet s: each active
// weight fires once per output position.
func (c *Conv2D) MACs(s int) int64 {
	var active int64
	cc := c.geom.ColCols()
	for o := 0; o < c.geom.OutC; o++ {
		for col := 0; col < cc; col++ {
			if c.weightActive(o, col, s) {
				active++
			}
		}
	}
	return active * int64(c.geom.ColRows())
}

// UnitMACs counts the incoming MACs of filter o in subnet s.
func (c *Conv2D) UnitMACs(o, s int) int64 {
	var active int64
	cc := c.geom.ColCols()
	for col := 0; col < cc; col++ {
		if c.weightActive(o, col, s) {
			active++
		}
	}
	return active * int64(c.geom.ColRows())
}

// PruneBelow prunes small-magnitude filter weights.
func (c *Conv2D) PruneBelow(threshold float64) int {
	wd := c.w.Value.Data()
	n := 0
	for idx, v := range wd {
		if !c.pruned[idx] && math.Abs(v) < threshold {
			c.pruned[idx] = true
			n++
		}
	}
	return n
}

// ActiveAt reports whether weight column col of filter o is active in
// subnet s (structural rule ∩ prune mask).
func (c *Conv2D) ActiveAt(o, col, s int) bool { return c.weightActive(o, col, s) }

// PruneAt marks one filter weight as pruned.
func (c *Conv2D) PruneAt(o, col int) { c.pruned[o*c.geom.ColCols()+col] = true }

// ReviveUnit clears the prune mask on filter o.
func (c *Conv2D) ReviveUnit(o int) {
	cc := c.geom.ColCols()
	for col := 0; col < cc; col++ {
		c.pruned[o*cc+col] = false
	}
}

// PrunedCount reports the current number of pruned weights.
func (c *Conv2D) PrunedCount() int {
	n := 0
	for _, p := range c.pruned {
		if p {
			n++
		}
	}
	return n
}

// PruneMask returns a copy of the prune mask (outC×(inC·K·K)).
func (c *Conv2D) PruneMask() []bool { return append([]bool(nil), c.pruned...) }

// SetPruneMask replaces the prune mask.
func (c *Conv2D) SetPruneMask(mask []bool) error {
	if len(mask) != len(c.pruned) {
		return fmt.Errorf("nn: Conv2D %q prune mask length %d, want %d", c.name, len(mask), len(c.pruned))
	}
	copy(c.pruned, mask)
	return nil
}

func (c *Conv2D) EnableImportance(n int) {
	c.importance = make([][]float64, n)
	for i := range c.importance {
		c.importance[i] = make([]float64, c.geom.OutC)
	}
}

func (c *Conv2D) ResetImportance() {
	for _, row := range c.importance {
		for i := range row {
			row[i] = 0
		}
	}
}

func (c *Conv2D) Importance() [][]float64 { return c.importance }

// Edge exposes channel-level connectivity for validation: input
// channel i feeds filter o iff at least one of the K·K weights
// between them is unpruned.
func (c *Conv2D) Edge() *subnet.Edge {
	kk := c.geom.K * c.geom.K
	cc := c.geom.ColCols()
	mask := make([]bool, c.geom.OutC*c.geom.InC)
	for o := 0; o < c.geom.OutC; o++ {
		outID := c.assign.ID(o)
		for ch := 0; ch < c.geom.InC; ch++ {
			if c.rule == RuleIncremental && c.assignIn.ID(ch) > outID {
				continue
			}
			any := false
			for k := 0; k < kk; k++ {
				if !c.pruned[o*cc+ch*kk+k] {
					any = true
					break
				}
			}
			mask[o*c.geom.InC+ch] = any
		}
	}
	return &subnet.Edge{Name: c.name, In: c.assignIn, Out: c.assign, Mask: mask}
}

// ForwardIncremental implements anytime inference for convolutions:
// filters with assignment ≤ sPrev are copied from the cached output,
// only newly activated filters are convolved. The new filters' masked
// rows are gathered into a compact matrix so the per-image work is
// one nNew×r matmul instead of a full-width sweep. It touches no
// layer state, so it is safe to call concurrently on disjoint batch
// shards (each caller passing its own pool).
func (c *Conv2D) ForwardIncremental(x, cached *tensor.Tensor, sPrev, s int, pool *tensor.Pool) (*tensor.Tensor, int64) {
	g := c.geom
	batch := x.Dim(0)
	r, cc := g.ColRows(), g.ColCols()
	out := pool.Get(batch, g.OutC, g.OutH(), g.OutW())
	od := out.Data()
	imgLen := g.InC * g.InH * g.InW
	bd := c.b.Value.Data()

	// Filters to compute fresh: active in s, not reusable from the
	// cache, i.e. lo < assignment ≤ s.
	lo := 0
	if cached != nil {
		lo = sPrev
	}

	// Gather the new filters' masked weights transposed (the fast
	// kernel's layout); per-image MACs are identical across the
	// batch, so count while gathering. With no new filters (re-step or
	// step-down) no buffers are drawn at all — a pool Get of a
	// zero-width tensor would allocate a header the pool can never
	// recycle, breaking the walk's zero-alloc steady state.
	nNew := c.countFilters(lo, s)
	var macs int64
	var wt, colBuf, zNew *tensor.Tensor
	if nNew > 0 {
		wt = pool.GetUninit(cc, nNew)
		macs = c.gatherFiltersT(wt, lo, s) * int64(r)
		colBuf = pool.GetUninit(r, cc)
		zNew = pool.GetUninit(r, nNew)
	}
	for b := 0; b < batch; b++ {
		base := b * g.OutC * r
		if nNew > 0 {
			tensor.ParallelIm2Col(g, x.Data()[b*imgLen:(b+1)*imgLen], colBuf.Data())
			tensor.Gemm(zNew.Data(), colBuf.Data(), wt.Data(), r, cc, nNew, false)
			znd := zNew.Data()
			j := 0
			for o := 0; o < g.OutC; o++ {
				if id := c.assign.ID(o); id <= lo || id > s {
					continue
				}
				orow := od[base+o*r : base+(o+1)*r]
				bias := bd[o]
				for p := range orow {
					orow[p] = znd[p*nNew+j] + bias
				}
				j++
			}
		}
		if cached != nil {
			cd := cached.Data()
			for o := 0; o < g.OutC; o++ {
				if outID := c.assign.ID(o); outID <= sPrev && outID <= s {
					copy(od[base+o*r:base+(o+1)*r], cd[base+o*r:base+(o+1)*r])
				}
			}
		}
	}
	pool.Put(wt)
	pool.Put(colBuf)
	pool.Put(zNew)
	return out, macs
}

// IncrementalSpan implements IncrementalSharded: the span is the
// layer's output spatial positions (im2col rows), the one axis every
// piece of the transition — gather, matmul, bias scatter, cache copy
// — decomposes over for a single image. The grain is a row pair, the
// ikj kernel's processing unit, so any grain-aligned partition pairs
// exactly the rows a serial run pairs (bitwise equality). Copy-only
// transitions (step-down, re-step) and transitions below ShardMinOps
// report an empty span.
func (c *Conv2D) IncrementalSpan(x *tensor.Tensor, sPrev, s int) (span, grain int) {
	lo := 0
	if sPrev > 0 {
		lo = sPrev
	}
	nNew := c.countFilters(lo, s)
	if nNew == 0 {
		return 0, 1
	}
	g := c.geom
	r, cc := g.ColRows(), g.ColCols()
	work := int64(x.Dim(0)) * int64(r) * int64(cc) * int64(1+nNew)
	if work < ShardMinOps {
		return 0, 1
	}
	return r, 2
}

// NewIncrementalOut implements IncrementalSharded. The tensor is
// zero-filled, so filters inactive in s need no touch from any span.
func (c *Conv2D) NewIncrementalOut(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	g := c.geom
	return pool.Get(x.Dim(0), g.OutC, g.OutH(), g.OutW())
}

// ForwardIncrementalSpan implements IncrementalSharded: it is
// ForwardIncremental restricted to output positions [p0,p1) — the
// worker gathers its own copy of the new filters' weights, im2cols
// only its rows, multiplies, and scatters bias-added results and
// cache copies into its disjoint slice of every filter's plane.
// The IncrementalSpan caller guarantees sPrev/lo semantics match
// ForwardIncremental's (span methods are only used when the engine
// holds a cache exactly when sPrev > 0).
func (c *Conv2D) ForwardIncrementalSpan(x, cached, out *tensor.Tensor, sPrev, s, p0, p1 int, pool *tensor.Pool) int64 {
	if p0 >= p1 {
		return 0
	}
	g := c.geom
	batch := x.Dim(0)
	r, cc := g.ColRows(), g.ColCols()
	rows := p1 - p0
	od := out.Data()
	imgLen := g.InC * g.InH * g.InW
	bd := c.b.Value.Data()

	lo := 0
	if cached != nil {
		lo = sPrev
	}
	nNew := c.countFilters(lo, s)
	var macs int64
	var wt, colBuf, zNew *tensor.Tensor
	if nNew > 0 {
		wt = pool.GetUninit(cc, nNew)
		macs = c.gatherFiltersT(wt, lo, s) * int64(rows)
		colBuf = pool.GetUninit(rows, cc)
		zNew = pool.GetUninit(rows, nNew)
	}
	for b := 0; b < batch; b++ {
		base := b * g.OutC * r
		if nNew > 0 {
			g.Im2ColRange(x.Data()[b*imgLen:(b+1)*imgLen], colBuf.Data(), p0, p1)
			tensor.Gemm(zNew.Data(), colBuf.Data(), wt.Data(), rows, cc, nNew, false)
			znd := zNew.Data()
			j := 0
			for o := 0; o < g.OutC; o++ {
				if id := c.assign.ID(o); id <= lo || id > s {
					continue
				}
				orow := od[base+o*r+p0 : base+o*r+p1]
				bias := bd[o]
				for p := range orow {
					orow[p] = znd[p*nNew+j] + bias
				}
				j++
			}
		}
		if cached != nil {
			cd := cached.Data()
			for o := 0; o < g.OutC; o++ {
				if outID := c.assign.ID(o); outID <= sPrev && outID <= s {
					copy(od[base+o*r+p0:base+o*r+p1], cd[base+o*r+p0:base+o*r+p1])
				}
			}
		}
	}
	pool.Put(wt)
	pool.Put(colBuf)
	pool.Put(zNew)
	return macs
}

var (
	_ Masked             = (*Conv2D)(nil)
	_ Incremental        = (*Conv2D)(nil)
	_ IncrementalSharded = (*Conv2D)(nil)
)
