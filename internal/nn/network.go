package nn

import (
	"fmt"

	"steppingnet/internal/subnet"
	"steppingnet/internal/tensor"
)

// Network is a sequential container of layers, the unit the paper
// calls "a given neural network" and from which subnets are carved.
type Network struct {
	name   string
	layers []Layer
}

// NewNetwork creates a named sequential network.
func NewNetwork(name string, layers ...Layer) *Network {
	return &Network{name: name, layers: layers}
}

// Name returns the network's name.
func (n *Network) Name() string { return n.name }

// Layers returns the layer list (read-only by convention).
func (n *Network) Layers() []Layer { return n.layers }

// Append adds layers to the end of the network.
func (n *Network) Append(layers ...Layer) { n.layers = append(n.layers, layers...) }

// Forward runs the batch through every layer. With a pooled eval
// context every intermediate activation is recycled as soon as the
// next layer has consumed it, so the steady-state forward path is
// allocation-free; the caller owns the returned tensor (and may Put
// it back). Training forwards are not recycled here because layers
// cache their activations for Backward.
func (n *Network) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	in := x
	for _, l := range n.layers {
		out := l.Forward(in, ctx)
		if ctx.Scratch != nil && !ctx.Train && in != x && !out.Aliases(in) {
			ctx.Scratch.Put(in)
		}
		in = out
	}
	return in
}

// Backward runs the gradient back through every layer, accumulating
// parameter gradients. With a pooled context each layer's incoming
// gradient is recycled once the layer has produced the next one; the
// caller keeps ownership of the loss gradient it passed in and of the
// input gradient returned.
func (n *Network) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	top := grad
	for i := len(n.layers) - 1; i >= 0; i-- {
		next := n.layers[i].Backward(grad, ctx)
		if ctx.Scratch != nil && grad != top && !next.Aliases(grad) {
			ctx.Scratch.Put(grad)
		}
		grad = next
	}
	return grad
}

// Params returns every learnable parameter in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every gradient accumulator.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// MaskedLayers returns the width-bearing layers in order.
func (n *Network) MaskedLayers() []Masked {
	var ms []Masked
	for _, l := range n.layers {
		if m, ok := l.(Masked); ok {
			ms = append(ms, m)
		}
	}
	return ms
}

// MACs sums the MAC count of subnet s over all masked layers.
func (n *Network) MACs(s int) int64 {
	var total int64
	for _, m := range n.MaskedLayers() {
		total += m.MACs(s)
	}
	return total
}

// Validate checks the incremental property across the whole network.
// RuleShared layers (the slimmable baseline's layers and the small
// recomputed classifier head) are skipped — they intentionally do not
// satisfy the property.
func (n *Network) Validate() error {
	var edges []*subnet.Edge
	for _, m := range n.MaskedLayers() {
		if m.Rule() != RuleIncremental {
			continue
		}
		edges = append(edges, m.Edge())
	}
	return subnet.Validate(edges)
}

// EnableImportance switches on importance accumulation for nSubnets
// in every masked layer.
func (n *Network) EnableImportance(nSubnets int) {
	for _, m := range n.MaskedLayers() {
		m.EnableImportance(nSubnets)
	}
}

// ResetImportance zeroes all importance accumulators.
func (n *Network) ResetImportance() {
	for _, m := range n.MaskedLayers() {
		m.ResetImportance()
	}
}

// ParamCount returns the total number of scalar parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Len()
	}
	return total
}

// String summarizes the architecture.
func (n *Network) String() string {
	s := fmt.Sprintf("Network(%s,", n.name)
	for _, l := range n.layers {
		s += " " + l.Name()
	}
	return s + ")"
}

// CopyWeightsTo copies every parameter value from n into dst, which
// must have an identical parameter structure. Used to initialize
// subnets from a pretrained teacher.
func (n *Network) CopyWeightsTo(dst *Network) error {
	src, dp := n.Params(), dst.Params()
	if len(src) != len(dp) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(src), len(dp))
	}
	for i, p := range src {
		if p.Value.Len() != dp[i].Value.Len() {
			return fmt.Errorf("nn: parameter %q size mismatch %d vs %d", p.Name, p.Value.Len(), dp[i].Value.Len())
		}
		dp[i].Value.CopyFrom(p.Value)
	}
	return nil
}
