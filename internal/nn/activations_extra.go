package nn

import (
	"math"

	"steppingnet/internal/tensor"
)

// Sigmoid is the logistic activation, provided for historically
// faithful LeNet variants. Note that σ(0) = 0.5 ≠ 0: a network using
// Sigmoid after masked layers does NOT preserve the exact
// incremental property for inactive units (their zero pre-activation
// maps to 0.5), so SteppingNet models default to ReLU; Sigmoid is
// for teacher networks and experimentation.
type Sigmoid struct {
	name string
	out  *tensor.Tensor // cached output for backward
}

// NewSigmoid constructs the activation.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

func (s *Sigmoid) Name() string     { return s.name }
func (s *Sigmoid) Params() []*Param { return nil }

func (s *Sigmoid) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if ctx.Train {
		ctx.Scratch.Put(s.out) // previous step's cache is dead
		s.out = nil
	}
	out := ctx.Scratch.GetUninit(x.Shape()...)
	od, xd := out.Data(), x.Data()
	for i, v := range xd {
		od[i] = 1 / (1 + math.Exp(-v))
	}
	if ctx.Train {
		s.out = out
	}
	return out
}

func (s *Sigmoid) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	out := ctx.Scratch.GetUninit(grad.Shape()...)
	od, gd, yd := out.Data(), grad.Data(), s.out.Data()
	for i, g := range gd {
		od[i] = g * yd[i] * (1 - yd[i])
	}
	return out
}

// Tanh is the hyperbolic-tangent activation. tanh(0) = 0, so unlike
// Sigmoid it does preserve the incremental property (inactive units
// stay exactly zero through the nonlinearity).
type Tanh struct {
	name string
	out  *tensor.Tensor
}

// NewTanh constructs the activation.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

func (t *Tanh) Name() string     { return t.name }
func (t *Tanh) Params() []*Param { return nil }

func (t *Tanh) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if ctx.Train {
		ctx.Scratch.Put(t.out) // previous step's cache is dead
		t.out = nil
	}
	out := ctx.Scratch.GetUninit(x.Shape()...)
	od, xd := out.Data(), x.Data()
	for i, v := range xd {
		od[i] = math.Tanh(v)
	}
	if ctx.Train {
		t.out = out
	}
	return out
}

func (t *Tanh) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	out := ctx.Scratch.GetUninit(grad.Shape()...)
	od, gd, yd := out.Data(), grad.Data(), t.out.Data()
	for i, g := range gd {
		od[i] = g * (1 - yd[i]*yd[i])
	}
	return out
}

// ForwardIncremental recomputes tanh; zero MACs, zero-preserving.
func (t *Tanh) ForwardIncremental(x, _ *tensor.Tensor, _, _ int, pool *tensor.Pool) (*tensor.Tensor, int64) {
	out := pool.GetUninit(x.Shape()...)
	od, xd := out.Data(), x.Data()
	for i, v := range xd {
		od[i] = math.Tanh(v)
	}
	return out, 0
}

var _ Incremental = (*Tanh)(nil)
