package nn

import (
	"fmt"
	"math"

	"steppingnet/internal/tensor"
)

// SwitchableBatchNorm2D is per-channel batch normalization with one
// independent parameter/statistics set per mode, as required by the
// slimmable-network baseline: "different batch normalization layers
// need to be stored for the subnets during the inference phase"
// (paper §II, citing Yu et al.). SteppingNet and the any-width
// network deliberately avoid BN so that intermediate results stay
// reusable; this layer therefore appears only in slimmable models.
type SwitchableBatchNorm2D struct {
	name     string
	c        int
	modes    int
	eps      float64
	momentum float64

	gamma, beta []*Param // per mode
	runMean     [][]float64
	runVar      [][]float64

	// caches for backward
	x      *tensor.Tensor
	out    *tensor.Tensor // previous train-mode output, self-recycled
	xhat   []float64
	mean   []float64
	invStd []float64
	mode   int
}

// NewSwitchableBatchNorm2D creates a BN layer over c channels with
// the given number of modes.
func NewSwitchableBatchNorm2D(name string, c, modes int) *SwitchableBatchNorm2D {
	if c <= 0 || modes <= 0 {
		panic(fmt.Sprintf("nn: BatchNorm %q invalid c=%d modes=%d", name, c, modes))
	}
	bn := &SwitchableBatchNorm2D{
		name: name, c: c, modes: modes, eps: 1e-5, momentum: 0.1,
	}
	for m := 0; m < modes; m++ {
		g := NewParam(fmt.Sprintf("%s.gamma%d", name, m+1), c)
		g.Value.Fill(1)
		bn.gamma = append(bn.gamma, g)
		bn.beta = append(bn.beta, NewParam(fmt.Sprintf("%s.beta%d", name, m+1), c))
		bn.runMean = append(bn.runMean, make([]float64, c))
		rv := make([]float64, c)
		for i := range rv {
			rv[i] = 1
		}
		bn.runVar = append(bn.runVar, rv)
	}
	return bn
}

func (bn *SwitchableBatchNorm2D) Name() string { return bn.name }

func (bn *SwitchableBatchNorm2D) Params() []*Param {
	var ps []*Param
	for m := 0; m < bn.modes; m++ {
		ps = append(ps, bn.gamma[m], bn.beta[m])
	}
	return ps
}

func (bn *SwitchableBatchNorm2D) modeIndex(ctx *Context) int {
	m := ctx.Mode
	if m < 1 {
		m = 1
	}
	if m > bn.modes {
		m = bn.modes
	}
	return m - 1
}

// Forward normalizes each channel with the statistics of the active
// mode. Channels inactive in the current subnet carry zeros; they
// are skipped to avoid polluting running statistics.
func (bn *SwitchableBatchNorm2D) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != bn.c {
		panic(fmt.Sprintf("nn: BatchNorm %q input %v, want [B %d H W]", bn.name, x.Shape(), bn.c))
	}
	mode := bn.modeIndex(ctx)
	batch, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	n := batch * h * w
	if ctx.Train {
		ctx.Scratch.Put(bn.out) // previous step's output is dead
		bn.out = nil
	}
	out := ctx.Scratch.GetUninit(x.Shape()...)
	xd, od := x.Data(), out.Data()
	gd, bd := bn.gamma[mode].Value.Data(), bn.beta[mode].Value.Data()

	if ctx.Train {
		bn.x = x
		bn.out = out
		bn.mode = mode
		if cap(bn.xhat) < x.Len() {
			bn.xhat = make([]float64, x.Len())
		}
		bn.xhat = bn.xhat[:x.Len()]
		if cap(bn.mean) < bn.c {
			bn.mean = make([]float64, bn.c)
			bn.invStd = make([]float64, bn.c)
		}
		bn.mean = bn.mean[:bn.c]
		bn.invStd = bn.invStd[:bn.c]
	}

	for ch := 0; ch < bn.c; ch++ {
		var mean, variance float64
		if ctx.Train {
			for b := 0; b < batch; b++ {
				base := (b*bn.c + ch) * h * w
				for p := 0; p < h*w; p++ {
					mean += xd[base+p]
				}
			}
			mean /= float64(n)
			for b := 0; b < batch; b++ {
				base := (b*bn.c + ch) * h * w
				for p := 0; p < h*w; p++ {
					d := xd[base+p] - mean
					variance += d * d
				}
			}
			variance /= float64(n)
			bn.runMean[mode][ch] = (1-bn.momentum)*bn.runMean[mode][ch] + bn.momentum*mean
			bn.runVar[mode][ch] = (1-bn.momentum)*bn.runVar[mode][ch] + bn.momentum*variance
			bn.mean[ch] = mean
			bn.invStd[ch] = 1 / math.Sqrt(variance+bn.eps)
		} else {
			mean = bn.runMean[mode][ch]
			variance = bn.runVar[mode][ch]
		}
		invStd := 1 / math.Sqrt(variance+bn.eps)
		for b := 0; b < batch; b++ {
			base := (b*bn.c + ch) * h * w
			for p := 0; p < h*w; p++ {
				xhat := (xd[base+p] - mean) * invStd
				if ctx.Train {
					bn.xhat[base+p] = xhat
				}
				od[base+p] = gd[ch]*xhat + bd[ch]
			}
		}
	}
	return out
}

// Backward implements the standard batch-norm gradient with respect
// to input, gamma and beta for the active mode.
func (bn *SwitchableBatchNorm2D) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if bn.x == nil {
		panic(fmt.Sprintf("nn: BatchNorm %q Backward without cached Forward", bn.name))
	}
	mode := bn.mode
	batch, h, w := grad.Dim(0), grad.Dim(2), grad.Dim(3)
	n := float64(batch * h * w)
	out := ctx.Scratch.GetUninit(grad.Shape()...)
	gd, od := grad.Data(), out.Data()
	gamma := bn.gamma[mode].Value.Data()
	gGamma := bn.gamma[mode].Grad.Data()
	gBeta := bn.beta[mode].Grad.Data()

	for ch := 0; ch < bn.c; ch++ {
		var sumDy, sumDyXhat float64
		for b := 0; b < batch; b++ {
			base := (b*bn.c + ch) * h * w
			for p := 0; p < h*w; p++ {
				dy := gd[base+p]
				sumDy += dy
				sumDyXhat += dy * bn.xhat[base+p]
			}
		}
		gGamma[ch] += sumDyXhat
		gBeta[ch] += sumDy
		k := gamma[ch] * bn.invStd[ch]
		for b := 0; b < batch; b++ {
			base := (b*bn.c + ch) * h * w
			for p := 0; p < h*w; p++ {
				dy := gd[base+p]
				od[base+p] = k * (dy - sumDy/n - bn.xhat[base+p]*sumDyXhat/n)
			}
		}
	}
	return out
}
