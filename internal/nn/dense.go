package nn

import (
	"fmt"
	"math"

	"steppingnet/internal/subnet"
	"steppingnet/internal/tensor"
)

// Dense is a fully-connected layer with subnet masking. The single
// weight tensor W (out×in) is shared by all subnets; which synapses
// are active in subnet s follows from the unit assignments, the mask
// rule and the prune mask. Its output is the pre-activation z = W_eff
// x + b restricted to active units (inactive units emit 0); pair it
// with a ReLU layer for the paper's topologies.
type Dense struct {
	name     string
	in, out  int
	w, b     *Param
	rule     MaskRule
	assignIn *subnet.Assignment
	inRepeat int // flattened feature maps: input i belongs to group i/inRepeat
	assign   *subnet.Assignment
	pruned   []bool // out×in, true = pruned (revivable)

	importance [][]float64 // [subnet-1][unit] accumulated |∂L_s/∂r|

	// training caches (valid after Forward with Train=true)
	x *tensor.Tensor // input batch
	z *tensor.Tensor // pre-activation batch
}

// DenseConfig assembles a Dense layer.
type DenseConfig struct {
	Name     string
	In, Out  int
	Rule     MaskRule
	AssignIn *subnet.Assignment // group assignment of the input elements
	InRepeat int                // elements per input group (≥1; H*W after Flatten)
	Assign   *subnet.Assignment // assignment of this layer's units
	Init     *tensor.RNG        // weight init source; nil leaves weights zero
}

// NewDense constructs the layer, validating that the assignments
// cover the declared sizes.
func NewDense(cfg DenseConfig) *Dense {
	if cfg.InRepeat <= 0 {
		cfg.InRepeat = 1
	}
	if cfg.AssignIn == nil || cfg.Assign == nil {
		panic(fmt.Sprintf("nn: Dense %q needs both assignments", cfg.Name))
	}
	if cfg.AssignIn.Units()*cfg.InRepeat != cfg.In {
		panic(fmt.Sprintf("nn: Dense %q: input assignment covers %d×%d elements, layer has %d",
			cfg.Name, cfg.AssignIn.Units(), cfg.InRepeat, cfg.In))
	}
	if cfg.Assign.Units() != cfg.Out {
		panic(fmt.Sprintf("nn: Dense %q: output assignment has %d units, layer has %d",
			cfg.Name, cfg.Assign.Units(), cfg.Out))
	}
	d := &Dense{
		name:     cfg.Name,
		in:       cfg.In,
		out:      cfg.Out,
		w:        NewParam(cfg.Name+".W", cfg.Out, cfg.In),
		b:        NewParam(cfg.Name+".b", cfg.Out),
		rule:     cfg.Rule,
		assignIn: cfg.AssignIn,
		inRepeat: cfg.InRepeat,
		assign:   cfg.Assign,
		pruned:   make([]bool, cfg.Out*cfg.In),
	}
	if cfg.Init != nil {
		d.w.Value.FillKaiming(cfg.Init, cfg.In)
	}
	return d
}

func (d *Dense) Name() string     { return d.name }
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// In and Out report the layer's fan-in and fan-out.
func (d *Dense) In() int  { return d.in }
func (d *Dense) Out() int { return d.out }

// Weights exposes the weight parameter (for serialization and tests).
func (d *Dense) Weights() *Param { return d.w }

// Bias exposes the bias parameter.
func (d *Dense) Bias() *Param { return d.b }

// Rule reports the layer's masking rule.
func (d *Dense) Rule() MaskRule { return d.rule }

func (d *Dense) OutAssignment() *subnet.Assignment { return d.assign }
func (d *Dense) InAssignment() (*subnet.Assignment, int) {
	return d.assignIn, d.inRepeat
}

// synapseActive applies the mask rule for subnet s.
func (d *Dense) synapseActive(o, i, s int) bool {
	outID := d.assign.ID(o)
	if outID > s {
		return false
	}
	inID := maskedEffectiveID(d.assignIn, d.inRepeat, i)
	switch d.rule {
	case RuleIncremental:
		if inID > outID {
			return false
		}
	case RuleShared:
		if inID > s {
			return false
		}
	}
	return !d.pruned[o*d.in+i]
}

// effectiveWeightsInto materializes W masked for subnet s into weff,
// which must be out×in and is fully overwritten (inactive entries
// become zero).
func (d *Dense) effectiveWeightsInto(weff *tensor.Tensor, s int) {
	wd, ed := d.w.Value.Data(), weff.Data()
	for o := 0; o < d.out; o++ {
		outID := d.assign.ID(o)
		row := o * d.in
		if outID > s {
			clear(ed[row : row+d.in])
			continue
		}
		for i := 0; i < d.in; i++ {
			v := wd[row+i]
			if d.pruned[row+i] {
				v = 0
			} else if inID := maskedEffectiveID(d.assignIn, d.inRepeat, i); (d.rule == RuleIncremental && inID > outID) ||
				(d.rule == RuleShared && inID > s) {
				v = 0
			}
			ed[row+i] = v
		}
	}
}

// Forward computes z = x·W_effᵀ + b for active units.
func (d *Dense) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.in {
		panic(fmt.Sprintf("nn: Dense %q forward input %v, want [B %d]", d.name, x.Shape(), d.in))
	}
	batch := x.Dim(0)
	if ctx.Train {
		// Recycle the previous step's pre-activation cache (d.x is a
		// reference to the upstream layer's buffer, not owned here).
		ctx.Scratch.Put(d.z)
		d.x, d.z = nil, nil
	}
	weff := ctx.Scratch.GetUninit(d.out, d.in)
	d.effectiveWeightsInto(weff, ctx.Subnet)
	z := ctx.Scratch.GetUninit(batch, d.out)
	tensor.GemmTransB(z.Data(), x.Data(), weff.Data(), batch, d.in, d.out, false)
	bd := d.b.Value.Data()
	zd := z.Data()
	for b := 0; b < batch; b++ {
		row := b * d.out
		for o := 0; o < d.out; o++ {
			if d.assign.ID(o) <= ctx.Subnet {
				zd[row+o] += bd[o]
			}
		}
	}
	ctx.Scratch.Put(weff)
	if ctx.Train {
		d.x, d.z = x, z
	}
	return z
}

// Backward propagates gradients, accumulates parameter gradients
// (masked identically to the forward pass, with optional β
// suppression) and, when requested, the per-unit importance signal
// ∂L_s/∂r_o = Σ_batch δ_o·(z_o − b_o) of Eq. 2.
func (d *Dense) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if d.x == nil {
		panic(fmt.Sprintf("nn: Dense %q Backward without cached Forward", d.name))
	}
	batch := grad.Dim(0)
	s := ctx.Subnet
	// Zero gradient rows of inactive units; downstream layers may
	// not know about assignments.
	gd := grad.Data()
	for b := 0; b < batch; b++ {
		row := b * d.out
		for o := 0; o < d.out; o++ {
			if d.assign.ID(o) > s {
				gd[row+o] = 0
			}
		}
	}

	if ctx.AccumulateImportance && d.importance != nil && s >= 1 && s <= len(d.importance) {
		d.accumulateImportance(grad, s)
	}

	weff := ctx.Scratch.GetUninit(d.out, d.in)
	d.effectiveWeightsInto(weff, s)
	gradX := ctx.Scratch.GetUninit(batch, d.in)
	tensor.Gemm(gradX.Data(), gd, weff.Data(), batch, d.out, d.in, false)

	// Parameter gradients: accumulate the unmasked dW = gradᵀ·x in one
	// matmul, then apply the forward's mask and the suppression factor
	// β^(s−assign(o)) for units of smaller subnets while adding into
	// the gradient accumulator.
	tmpW := ctx.Scratch.GetUninit(d.out, d.in)
	tensor.GemmTransA(tmpW.Data(), gd, d.x.Data(), batch, d.out, d.in, false)
	gw := d.w.Grad.Data()
	gb := d.b.Grad.Data()
	td := tmpW.Data()
	for o := 0; o < d.out; o++ {
		outID := d.assign.ID(o)
		if outID > s {
			continue
		}
		scale := 1.0
		if ctx.Beta > 0 && ctx.Beta < 1 && outID < s {
			scale = math.Pow(ctx.Beta, float64(s-outID))
		}
		row := o * d.in
		var gbo float64
		for b := 0; b < batch; b++ {
			gbo += gd[b*d.out+o]
		}
		for i := 0; i < d.in; i++ {
			if d.synapseActive(o, i, s) {
				gw[row+i] += scale * td[row+i]
			}
		}
		gb[o] += scale * gbo
	}
	ctx.Scratch.Put(weff)
	ctx.Scratch.Put(tmpW)
	return gradX
}

// accumulateImportance adds |Σ_b δ_o·(z_o − b_o)| into the subnet-s
// accumulator of every active unit.
func (d *Dense) accumulateImportance(grad *tensor.Tensor, s int) {
	batch := grad.Dim(0)
	gd, zd, bd := grad.Data(), d.z.Data(), d.b.Value.Data()
	acc := d.importance[s-1]
	for o := 0; o < d.out; o++ {
		if d.assign.ID(o) > s {
			continue
		}
		sum := 0.0
		for b := 0; b < batch; b++ {
			sum += gd[b*d.out+o] * (zd[b*d.out+o] - bd[o])
		}
		acc[o] += math.Abs(sum)
	}
}

// MACs counts active multiply-accumulates in subnet s: one per
// active, unpruned synapse.
func (d *Dense) MACs(s int) int64 {
	var n int64
	for o := 0; o < d.out; o++ {
		for i := 0; i < d.in; i++ {
			if d.synapseActive(o, i, s) {
				n++
			}
		}
	}
	return n
}

// UnitMACs counts the incoming MACs of unit o in subnet s.
func (d *Dense) UnitMACs(o, s int) int64 {
	var n int64
	for i := 0; i < d.in; i++ {
		if d.synapseActive(o, i, s) {
			n++
		}
	}
	return n
}

// PruneBelow prunes small-magnitude weights and reports how many
// weights it newly pruned. Already-pruned weights are unaffected.
func (d *Dense) PruneBelow(threshold float64) int {
	wd := d.w.Value.Data()
	n := 0
	for idx, v := range wd {
		if !d.pruned[idx] && math.Abs(v) < threshold {
			d.pruned[idx] = true
			n++
		}
	}
	return n
}

// ActiveAt reports whether the synapse from input element i to unit o
// is active in subnet s (structural rule ∩ prune mask).
func (d *Dense) ActiveAt(o, i, s int) bool { return d.synapseActive(o, i, s) }

// PruneAt marks the single synapse i→o as pruned.
func (d *Dense) PruneAt(o, i int) { d.pruned[o*d.in+i] = true }

// ReviveUnit clears the prune mask on the incoming row of unit o.
func (d *Dense) ReviveUnit(o int) {
	row := o * d.in
	for i := 0; i < d.in; i++ {
		d.pruned[row+i] = false
	}
}

// PrunedCount reports the current number of pruned weights.
func (d *Dense) PrunedCount() int {
	n := 0
	for _, p := range d.pruned {
		if p {
			n++
		}
	}
	return n
}

// PruneMask returns a copy of the prune mask (out×in, row-major).
func (d *Dense) PruneMask() []bool { return append([]bool(nil), d.pruned...) }

// SetPruneMask replaces the prune mask.
func (d *Dense) SetPruneMask(mask []bool) error {
	if len(mask) != len(d.pruned) {
		return fmt.Errorf("nn: Dense %q prune mask length %d, want %d", d.name, len(mask), len(d.pruned))
	}
	copy(d.pruned, mask)
	return nil
}

func (d *Dense) EnableImportance(n int) {
	d.importance = make([][]float64, n)
	for i := range d.importance {
		d.importance[i] = make([]float64, d.out)
	}
}

func (d *Dense) ResetImportance() {
	for _, row := range d.importance {
		for i := range row {
			row[i] = 0
		}
	}
}

func (d *Dense) Importance() [][]float64 { return d.importance }

// Edge exposes the layer's connectivity (prune ∩ structural mask at
// full width) for subnet.Validate. Only meaningful for
// RuleIncremental layers; RuleShared layers intentionally violate the
// property.
func (d *Dense) Edge() *subnet.Edge {
	expanded := d.assignIn
	if d.inRepeat > 1 {
		expanded = d.assignIn.Expand(d.inRepeat)
	}
	mask := make([]bool, d.out*d.in)
	for o := 0; o < d.out; o++ {
		outID := d.assign.ID(o)
		for i := 0; i < d.in; i++ {
			inID := maskedEffectiveID(d.assignIn, d.inRepeat, i)
			mask[o*d.in+i] = !d.pruned[o*d.in+i] && (d.rule != RuleIncremental || inID <= outID)
		}
	}
	return &subnet.Edge{Name: d.name, In: expanded, Out: d.assign, Mask: mask}
}

// ForwardIncremental implements anytime inference (see Incremental).
// Units reusable from the cache are copied; the remaining active
// units' masked weight rows are gathered into a compact matrix and
// computed in a single matmul. It touches no layer state, so it is
// safe to call concurrently on disjoint batch shards (each caller
// passing its own pool).
func (d *Dense) ForwardIncremental(x, cached *tensor.Tensor, sPrev, s int, pool *tensor.Pool) (*tensor.Tensor, int64) {
	batch := x.Dim(0)
	out := pool.Get(batch, d.out)
	od := out.Data()
	wd := d.w.Value.Data()
	bd := d.b.Value.Data()

	// A unit is reused when the cache holds its sPrev value (the
	// incremental property guarantees its active inputs are unchanged
	// between sPrev and s) and computed fresh when newly active. The
	// fresh set is re-derived from the assignment wherever it is
	// needed instead of being materialized as an index slice, so the
	// steady-state anytime walk stays allocation-free.
	fresh := func(o int) bool {
		outID := d.assign.ID(o)
		return outID <= s && (outID > sPrev || cached == nil)
	}
	nNew := 0
	for o := 0; o < d.out; o++ {
		if outID := d.assign.ID(o); outID > s {
			continue
		} else if fresh(o) {
			nNew++
		} else {
			cd := cached.Data()
			for b := 0; b < batch; b++ {
				od[b*d.out+o] = cd[b*d.out+o]
			}
		}
	}

	var macs int64
	if nNew > 0 {
		weffNew := pool.Get(nNew, d.in)
		ed := weffNew.Data()
		j := 0
		for o := 0; o < d.out; o++ {
			if !fresh(o) {
				continue
			}
			row := o * d.in
			erow := ed[j*d.in : (j+1)*d.in]
			for i := 0; i < d.in; i++ {
				if d.synapseActive(o, i, s) {
					erow[i] = wd[row+i]
					macs++ // per-image MAC count
				}
			}
			j++
		}
		zNew := pool.GetUninit(batch, nNew)
		tensor.GemmTransB(zNew.Data(), x.Data(), ed, batch, d.in, nNew, false)
		zd := zNew.Data()
		j = 0
		for o := 0; o < d.out; o++ {
			if !fresh(o) {
				continue
			}
			for b := 0; b < batch; b++ {
				od[b*d.out+o] = zd[b*nNew+j] + bd[o]
			}
			j++
		}
		pool.Put(weffNew)
		pool.Put(zNew)
	}
	return out, macs
}

// incrementalCounts reports how many output units the transition
// sPrev→s computes fresh and how many it copies from the cache (the
// latter zero without a cache).
func (d *Dense) incrementalCounts(haveCache bool, sPrev, s int) (nNew, nReused int) {
	for o := 0; o < d.out; o++ {
		outID := d.assign.ID(o)
		if outID > s {
			continue
		}
		if !haveCache || outID > sPrev {
			nNew++
		} else {
			nReused++
		}
	}
	return nNew, nReused
}

// IncrementalSpan implements IncrementalSharded: the span enumerates
// the transition's fresh units first (indices [0,nNew)) and then its
// cache-reused units ([nNew, nNew+nReused)) — sharding over the unit
// axis, the only one a batch-1 dense product has. The grain is the
// A·Bᵀ kernel's four-column dot tile: a grain-aligned range of fresh
// units starts on the same tile boundary a serial run would use, so
// every element takes the identical tile-vs-tail code path and the
// result is bitwise equal to ForwardIncremental at any worker count.
func (d *Dense) IncrementalSpan(x *tensor.Tensor, sPrev, s int) (span, grain int) {
	nNew, nReused := d.incrementalCounts(sPrev > 0, sPrev, s)
	if nNew == 0 {
		return 0, 1 // copy-only transition: not worth a barrier
	}
	if int64(x.Dim(0))*int64(nNew)*int64(d.in) < ShardMinOps {
		return 0, 1
	}
	return nNew + nReused, 4
}

// NewIncrementalOut implements IncrementalSharded; zero-filled so
// units inactive in s need no touch from any span.
func (d *Dense) NewIncrementalOut(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	return pool.Get(x.Dim(0), d.out)
}

// ForwardIncrementalSpan implements IncrementalSharded: span indices
// [i0,i1) below nNew select fresh units (gathered into a compact
// worker-local weight matrix and computed in one matmul, exactly like
// ForwardIncremental but over a tile-aligned sub-range of the fresh
// sequence); indices at or above nNew select reused units, copied
// from the cache.
func (d *Dense) ForwardIncrementalSpan(x, cached, out *tensor.Tensor, sPrev, s, i0, i1 int, pool *tensor.Pool) int64 {
	if i0 >= i1 {
		return 0
	}
	batch := x.Dim(0)
	od := out.Data()
	wd := d.w.Value.Data()
	bd := d.b.Value.Data()
	fresh := func(o int) bool {
		outID := d.assign.ID(o)
		return outID <= s && (outID > sPrev || cached == nil)
	}
	nNew, _ := d.incrementalCounts(cached != nil, sPrev, s)

	var macs int64
	f0, f1 := i0, i1
	if f1 > nNew {
		f1 = nNew
	}
	if f0 < f1 {
		nLocal := f1 - f0
		weffNew := pool.Get(nLocal, d.in)
		ed := weffNew.Data()
		j := 0
		for o := 0; o < d.out; o++ {
			if !fresh(o) {
				continue
			}
			if j >= f1 {
				break
			}
			if j >= f0 {
				row := o * d.in
				erow := ed[(j-f0)*d.in : (j-f0+1)*d.in]
				for i := 0; i < d.in; i++ {
					if d.synapseActive(o, i, s) {
						erow[i] = wd[row+i]
						macs++ // per-image MAC count
					}
				}
			}
			j++
		}
		zNew := pool.GetUninit(batch, nLocal)
		tensor.GemmTransB(zNew.Data(), x.Data(), ed, batch, d.in, nLocal, false)
		zd := zNew.Data()
		j = 0
		for o := 0; o < d.out; o++ {
			if !fresh(o) {
				continue
			}
			if j >= f1 {
				break
			}
			if j >= f0 {
				for b := 0; b < batch; b++ {
					od[b*d.out+o] = zd[b*nLocal+(j-f0)] + bd[o]
				}
			}
			j++
		}
		pool.Put(weffNew)
		pool.Put(zNew)
	}

	// Reused units r0..r1 in the reused-index subsequence.
	r0, r1 := i0-nNew, i1-nNew
	if r0 < 0 {
		r0 = 0
	}
	if cached != nil && r0 < r1 {
		cd := cached.Data()
		j := 0
		for o := 0; o < d.out; o++ {
			outID := d.assign.ID(o)
			if outID > s || fresh(o) {
				continue
			}
			if j >= r1 {
				break
			}
			if j >= r0 {
				for b := 0; b < batch; b++ {
					od[b*d.out+o] = cd[b*d.out+o]
				}
			}
			j++
		}
	}
	return macs
}

var (
	_ Masked             = (*Dense)(nil)
	_ Incremental        = (*Dense)(nil)
	_ IncrementalSharded = (*Dense)(nil)
)
