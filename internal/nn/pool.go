package nn

import (
	"fmt"
	"math"

	"steppingnet/internal/tensor"
)

// MaxPool2D performs non-overlapping K×K max pooling per channel.
// Pooling is per-channel, so it preserves the incremental property:
// a channel's pooled output depends only on that channel.
type MaxPool2D struct {
	name       string
	c, h, w, k int
	argmax     []int          // flat input index chosen per output element
	out        *tensor.Tensor // previous train-mode output, self-recycled
}

// NewMaxPool2D constructs the layer for inputs of shape [B, c, h, w].
// h and w must be divisible by k.
func NewMaxPool2D(name string, c, h, w, k int) *MaxPool2D {
	if c <= 0 || h <= 0 || w <= 0 || k <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2D %q invalid dims c=%d h=%d w=%d k=%d", name, c, h, w, k))
	}
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D %q: %dx%d not divisible by %d", name, h, w, k))
	}
	return &MaxPool2D{name: name, c: c, h: h, w: w, k: k}
}

func (m *MaxPool2D) Name() string     { return m.name }
func (m *MaxPool2D) Params() []*Param { return nil }

// OutH returns the pooled height.
func (m *MaxPool2D) OutH() int { return m.h / m.k }

// OutW returns the pooled width.
func (m *MaxPool2D) OutW() int { return m.w / m.k }

func (m *MaxPool2D) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != m.c || x.Dim(2) != m.h || x.Dim(3) != m.w {
		panic(fmt.Sprintf("nn: MaxPool2D %q input %v, want [B %d %d %d]", m.name, x.Shape(), m.c, m.h, m.w))
	}
	batch := x.Dim(0)
	oh, ow := m.OutH(), m.OutW()
	if ctx.Train {
		ctx.Scratch.Put(m.out) // previous step's output is dead
		m.out = nil
	}
	out := ctx.Scratch.GetUninit(batch, m.c, oh, ow)
	if ctx.Train {
		m.out = out
		if cap(m.argmax) < out.Len() {
			m.argmax = make([]int, out.Len())
		}
		m.argmax = m.argmax[:out.Len()]
	}
	m.poolInto(x, out, ctx.Train)
	return out
}

// poolInto runs the pooling loop from x into out, recording argmax
// indices when recordArgmax is set (training backward needs them).
func (m *MaxPool2D) poolInto(x, out *tensor.Tensor, recordArgmax bool) {
	m.poolRange(x, out, recordArgmax, 0, x.Dim(0)*m.c)
}

// poolRange pools channel planes [bc0,bc1) of the flattened
// (batch·channel) plane sequence — the shardable core of poolInto;
// disjoint plane ranges write disjoint slices of out (and argmax).
func (m *MaxPool2D) poolRange(x, out *tensor.Tensor, recordArgmax bool, bc0, bc1 int) {
	oh, ow := m.OutH(), m.OutW()
	xd, od := x.Data(), out.Data()
	for bc := bc0; bc < bc1; bc++ {
		inBase := bc * m.h * m.w
		outBase := bc * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				bestIdx := -1
				for ky := 0; ky < m.k; ky++ {
					for kx := 0; kx < m.k; kx++ {
						idx := inBase + (oy*m.k+ky)*m.w + ox*m.k + kx
						if xd[idx] > best {
							best, bestIdx = xd[idx], idx
						}
					}
				}
				oidx := outBase + oy*ow + ox
				od[oidx] = best
				if recordArgmax {
					m.argmax[oidx] = bestIdx
				}
			}
		}
	}
}

func (m *MaxPool2D) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	batch := grad.Dim(0)
	out := ctx.Scratch.Get(batch, m.c, m.h, m.w)
	od, gd := out.Data(), grad.Data()
	for i, g := range gd {
		od[m.argmax[i]] += g
	}
	return out
}

// ForwardIncremental recomputes pooling (zero MACs; per-channel, so
// reuse-safe). It bypasses Forward's Context plumbing so the anytime
// walk allocates nothing in steady state.
func (m *MaxPool2D) ForwardIncremental(x, _ *tensor.Tensor, _, _ int, pool *tensor.Pool) (*tensor.Tensor, int64) {
	out := pool.GetUninit(x.Dim(0), m.c, m.OutH(), m.OutW())
	m.poolInto(x, out, false)
	return out, 0
}

// IncrementalSpan implements IncrementalSharded: like AvgPool2D, the
// span is the flattened (batch·channel) plane sequence — per-channel
// pooling makes any partition bitwise-identical to the serial loop.
func (m *MaxPool2D) IncrementalSpan(x *tensor.Tensor, _, _ int) (span, grain int) {
	planes := x.Dim(0) * m.c
	if int64(planes)*int64(m.h)*int64(m.w) < ShardMinOps {
		return 0, 1
	}
	return planes, 1
}

// NewIncrementalOut implements IncrementalSharded (uninitialized: the
// spans jointly write every element).
func (m *MaxPool2D) NewIncrementalOut(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	return pool.GetUninit(x.Dim(0), m.c, m.OutH(), m.OutW())
}

// ForwardIncrementalSpan implements IncrementalSharded.
func (m *MaxPool2D) ForwardIncrementalSpan(x, _, out *tensor.Tensor, _, _, i0, i1 int, _ *tensor.Pool) int64 {
	m.poolRange(x, out, false, i0, i1)
	return 0
}

var (
	_ Incremental        = (*MaxPool2D)(nil)
	_ IncrementalSharded = (*MaxPool2D)(nil)
)

// Flatten reshapes [B, C, H, W] to [B, C·H·W]. It exists as a layer
// so the network container can run conv stacks and dense heads in one
// sequence; the per-channel assignment is expanded by the dense layer
// that follows (see DenseConfig.InRepeat).
type Flatten struct {
	name    string
	inShape []int // cached feature shape (without batch) for backward
}

// NewFlatten constructs the layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

func (f *Flatten) Name() string     { return f.name }
func (f *Flatten) Params() []*Param { return nil }

func (f *Flatten) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if x.Rank() < 2 {
		panic(fmt.Sprintf("nn: Flatten %q input %v needs rank ≥ 2", f.name, x.Shape()))
	}
	batch := x.Dim(0)
	features := x.Len() / batch
	if ctx.Train {
		f.inShape = append(f.inShape[:0], x.Shape()[1:]...)
	}
	// In pooled eval mode the output must not alias the input — the
	// recycling loop in Network.Forward would otherwise hand one
	// backing array out twice — so copy instead of returning a view;
	// the copy is trivial next to any matmul. Training forwards are
	// never recycled, so they keep the zero-cost view.
	if ctx.Scratch != nil && !ctx.Train {
		out := ctx.Scratch.GetUninit(batch, features)
		out.CopyFrom(x)
		return out
	}
	return x.Reshape(batch, features)
}

func (f *Flatten) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	shape := append([]int{grad.Dim(0)}, f.inShape...)
	if ctx.Scratch != nil {
		out := ctx.Scratch.GetUninit(shape...)
		out.CopyFrom(grad)
		return out
	}
	return grad.Reshape(shape...)
}

// ForwardIncremental reshapes (copying under a pool, where views are
// forbidden); zero MACs.
func (f *Flatten) ForwardIncremental(x, _ *tensor.Tensor, _, _ int, pool *tensor.Pool) (*tensor.Tensor, int64) {
	batch := x.Dim(0)
	if pool != nil {
		out := pool.GetUninit(batch, x.Len()/batch)
		out.CopyFrom(x)
		return out, 0
	}
	return x.Reshape(batch, x.Len()/batch), 0
}

var _ Incremental = (*Flatten)(nil)
