package nn

import (
	"steppingnet/internal/subnet"
	"steppingnet/internal/tensor"
)

// Layer is the building block of a Network. Forward consumes a batch
// (first dimension is the batch) and returns the layer output;
// Backward consumes the gradient of the loss with respect to the
// layer output and returns the gradient with respect to the layer
// input, accumulating parameter gradients along the way. Backward may
// rely on caches written by the immediately preceding Forward with
// Train=true.
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor
	Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor
	Params() []*Param
}

// Masked is implemented by width-bearing layers (dense, conv) whose
// units participate in subnet construction.
type Masked interface {
	Layer

	// Rule reports the layer's masking rule.
	Rule() MaskRule
	// OutAssignment returns the unit→subnet assignment of this
	// layer's output units (neurons / filters).
	OutAssignment() *subnet.Assignment
	// InAssignment returns the assignment governing the layer's
	// input elements together with the repeat factor: input element
	// i belongs to group unit i/repeat (repeat > 1 after a Flatten).
	InAssignment() (a *subnet.Assignment, repeat int)

	// MACs returns the multiply-accumulate count of the layer when
	// running subnet s (active, unpruned synapses only).
	MACs(s int) int64
	// UnitMACs returns the incoming MACs of output unit o in subnet
	// s — the cost freed from subnet s if o were moved out of it.
	UnitMACs(o, s int) int64

	// PruneBelow marks every active weight with |w| < threshold as
	// pruned. Pruned weights stay in the parameter tensor and keep
	// training (the paper keeps them updatable so importance stays
	// meaningful); they contribute neither MACs nor forward signal.
	PruneBelow(threshold float64) int
	// ReviveUnit clears the prune mask on the incoming synapses of
	// output unit o. Called when o moves to another subnet, because
	// "these synapses may be essential to the new subnet" (§III-A1).
	ReviveUnit(o int)
	// PrunedCount reports how many weights are currently pruned.
	PrunedCount() int
	// PruneMask returns a copy of the per-weight prune mask
	// (row-major, out×in for dense, outC×(inC·K·K) for conv).
	PruneMask() []bool
	// SetPruneMask replaces the prune mask; the length must match.
	SetPruneMask(mask []bool) error

	// EnableImportance allocates accumulators for |∂L_s/∂r_o| for
	// subnets 1..n; ResetImportance zeroes them; Importance returns
	// the accumulated values indexed [subnet-1][unit].
	EnableImportance(n int)
	ResetImportance()
	Importance() [][]float64

	// Edge exposes the layer's connectivity for structural
	// validation via subnet.Validate.
	Edge() *subnet.Edge
}

// Incremental is implemented by layers that support anytime
// inference: ForwardIncremental reuses previously computed outputs of
// units with assignment ≤ sPrev (cached) and computes only units with
// sPrev < assignment ≤ s, returning the complete subnet-s output and
// the number of MACs actually executed. For sPrev = 0 it computes
// everything active in s. The incremental property guarantees the
// result equals a from-scratch Forward at subnet s; infer.Engine
// checks this invariant when auditing is enabled.
//
// pool supplies the output and temporary buffers (nil falls back to
// plain allocation); the caller owns the returned tensor and may Put
// it back once done. Implementations must not touch layer state, so
// the engine can fan a batch out across goroutines — each worker
// passing its own pool.
type Incremental interface {
	ForwardIncremental(x, cached *tensor.Tensor, sPrev, s int, pool *tensor.Pool) (out *tensor.Tensor, macs int64)
}

// ShardMinOps is the approximate scalar-operation count below which
// an IncrementalSharded layer reports an empty span and runs its
// plain serial ForwardIncremental instead: below it the per-layer
// fan-out barrier costs more than the work it spreads. It is a
// variable so the cross-worker-count equivalence and allocation tests
// can force the sharded paths on arbitrarily small models.
var ShardMinOps int64 = 1 << 14

// IncrementalSharded is an Incremental layer whose single-batch
// transition can additionally be computed cooperatively by several
// workers — the batch-1 intra-layer parallelism the serving path
// needs, where image sharding has nothing to split. The span is a
// layer-specific index space (conv: im2col rows, i.e. output spatial
// positions; dense: fresh then reused output units; pooling: channel
// planes); disjoint index ranges read shared immutable state and
// write disjoint regions of one shared output tensor.
//
// Contract: for any partition of [0,span) into ranges aligned to the
// reported grain, the union of ForwardIncrementalSpan calls produces
// an output BITWISE identical to ForwardIncremental, and the span MAC
// counts sum to its MAC count. The grain encodes the kernels'
// alignment needs (row pairs for the ikj kernels, four-column dot
// tiles for A·Bᵀ), which is what makes the bitwise guarantee hold on
// both GEMM backends at every worker count. Span methods must touch
// no layer state, so any number of workers may run them concurrently,
// each with its own pool.
type IncrementalSharded interface {
	Incremental

	// IncrementalSpan reports the shardable span length and the
	// alignment grain for the transition sPrev→s on input x. A zero
	// span means the transition is too small to shard profitably (see
	// ShardMinOps) and the caller should use ForwardIncremental.
	IncrementalSpan(x *tensor.Tensor, sPrev, s int) (span, grain int)

	// NewIncrementalOut draws the shared output tensor for one
	// sharded transition from pool (the coordinating caller's pool —
	// the caller owns the tensor; span workers only write into it).
	NewIncrementalOut(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor

	// ForwardIncrementalSpan computes span indices [i0,i1) of the
	// transition into out, drawing temporaries from pool, and returns
	// the per-image MACs this range executed.
	ForwardIncrementalSpan(x, cached, out *tensor.Tensor, sPrev, s, i0, i1 int, pool *tensor.Pool) int64
}

// maskedEffectiveID returns the effective group id of flattened input
// element i under a repeat factor.
func maskedEffectiveID(a *subnet.Assignment, repeat, i int) int {
	return a.ID(i / repeat)
}
