package nn

import (
	"steppingnet/internal/subnet"
	"steppingnet/internal/tensor"
)

// Context carries per-pass state through Forward/Backward. A fresh
// Context per training step keeps layers stateless across subnets.
type Context struct {
	// Subnet is the active subnet index (1..N). Units with a larger
	// assignment are inactive: they output zero and receive no
	// gradient.
	Subnet int
	// Train enables training-time behaviour (batch statistics,
	// activation caching for backward).
	Train bool
	// Beta, when in (0,1), enables the paper's learning-rate
	// suppression (§III-A2): while training subnet j, gradients of a
	// unit assigned to subnet i<j are scaled by Beta^(j−i), giving
	// smaller subnets stability.
	Beta float64
	// AccumulateImportance asks masked layers to accumulate
	// |∂L_s/∂r_j| (Eq. 2) for the active subnet during Backward.
	AccumulateImportance bool
	// Mode selects the BatchNorm parameter set in switchable
	// BatchNorm layers (slimmable baseline). Modes are indexed like
	// subnets, 1..N; 0 means "use set 1".
	Mode int
	// Scratch, when non-nil, is a per-goroutine buffer arena the
	// layers draw their outputs and temporaries from, making the
	// steady-state forward/backward path allocation-free. All Pool
	// methods are nil-safe, so layers use ctx.Scratch unconditionally
	// and a nil pool degrades to plain allocation.
	//
	// Ownership: in eval mode Network.Forward recycles every
	// intermediate activation and the CALLER owns the final output
	// (Put it back when done). In train mode layers keep their cached
	// activations (x, z, im2col matrices) alive until their next
	// Train forward, where they self-recycle; the caller owns the
	// loss gradient it feeds Backward and the input gradient Backward
	// returns. Never share one Pool between goroutines.
	Scratch *tensor.Pool
}

// FullContext returns an inference context that activates every unit:
// subnet N of an assignment-bearing network, or simply a very large
// subnet index for plain evaluation of the original network.
func FullContext() *Context { return &Context{Subnet: subnet.MaxSubnets} }

// Eval returns an inference context for subnet s.
func Eval(s int) *Context { return &Context{Subnet: s} }

// TrainCtx returns a training context for subnet s.
func TrainCtx(s int) *Context { return &Context{Subnet: s, Train: true} }
