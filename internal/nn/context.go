package nn

import "steppingnet/internal/subnet"

// Context carries per-pass state through Forward/Backward. A fresh
// Context per training step keeps layers stateless across subnets.
type Context struct {
	// Subnet is the active subnet index (1..N). Units with a larger
	// assignment are inactive: they output zero and receive no
	// gradient.
	Subnet int
	// Train enables training-time behaviour (batch statistics,
	// activation caching for backward).
	Train bool
	// Beta, when in (0,1), enables the paper's learning-rate
	// suppression (§III-A2): while training subnet j, gradients of a
	// unit assigned to subnet i<j are scaled by Beta^(j−i), giving
	// smaller subnets stability.
	Beta float64
	// AccumulateImportance asks masked layers to accumulate
	// |∂L_s/∂r_j| (Eq. 2) for the active subnet during Backward.
	AccumulateImportance bool
	// Mode selects the BatchNorm parameter set in switchable
	// BatchNorm layers (slimmable baseline). Modes are indexed like
	// subnets, 1..N; 0 means "use set 1".
	Mode int
}

// FullContext returns an inference context that activates every unit:
// subnet N of an assignment-bearing network, or simply a very large
// subnet index for plain evaluation of the original network.
func FullContext() *Context { return &Context{Subnet: subnet.MaxSubnets} }

// Eval returns an inference context for subnet s.
func Eval(s int) *Context { return &Context{Subnet: s} }

// TrainCtx returns a training context for subnet s.
func TrainCtx(s int) *Context { return &Context{Subnet: s, Train: true} }
