package nn

import (
	"math"
	"testing"

	"steppingnet/internal/tensor"
)

func TestAvgPoolForward(t *testing.T) {
	p := NewAvgPool2D("ap", 1, 2, 2, 2)
	x := tensor.FromSlice([]float64{1, 2, 3, 6}, 1, 1, 2, 2)
	out := p.Forward(x, &Context{})
	if out.At(0, 0, 0, 0) != 3 {
		t.Fatalf("avg=%g want 3", out.At(0, 0, 0, 0))
	}
}

func TestAvgPoolBackwardDistributesEvenly(t *testing.T) {
	p := NewAvgPool2D("ap", 1, 2, 2, 2)
	x := tensor.New(1, 1, 2, 2)
	p.Forward(x, &Context{Train: true})
	g := tensor.FromSlice([]float64{4}, 1, 1, 1, 1)
	gx := p.Backward(g, &Context{})
	for _, v := range gx.Data() {
		if v != 1 {
			t.Fatalf("avg backward %v", gx.Data())
		}
	}
}

func TestAvgPoolGradientNumeric(t *testing.T) {
	r := tensor.NewRNG(1)
	p := NewAvgPool2D("ap", 2, 4, 4, 2)
	net := NewNetwork("t", p)
	x := tensor.New(2, 2, 4, 4)
	x.FillNormal(r, 0, 1)
	ctx := &Context{Subnet: 1}
	checkInputGrads(t, net, x, ctx, 10, 2)
}

func TestAvgPoolPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewAvgPool2D("a", 0, 2, 2, 2) },
		func() { NewAvgPool2D("a", 1, 3, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}

func TestSigmoidForwardValues(t *testing.T) {
	s := NewSigmoid("s")
	x := tensor.FromSlice([]float64{0, 100, -100}, 1, 3)
	out := s.Forward(x, &Context{})
	if math.Abs(out.At(0, 0)-0.5) > 1e-12 {
		t.Fatalf("σ(0)=%g", out.At(0, 0))
	}
	if out.At(0, 1) < 0.999 || out.At(0, 2) > 0.001 {
		t.Fatalf("saturation: %v", out.Data())
	}
}

func TestSigmoidGradientNumeric(t *testing.T) {
	r := tensor.NewRNG(3)
	net := NewNetwork("t", NewSigmoid("s"))
	x := tensor.New(2, 4)
	x.FillNormal(r, 0, 1)
	checkInputGrads(t, net, x, &Context{Subnet: 1}, 8, 4)
}

func TestTanhGradientNumeric(t *testing.T) {
	r := tensor.NewRNG(5)
	net := NewNetwork("t", NewTanh("th"))
	x := tensor.New(2, 4)
	x.FillNormal(r, 0, 1)
	checkInputGrads(t, net, x, &Context{Subnet: 1}, 8, 6)
}

func TestTanhPreservesZero(t *testing.T) {
	th := NewTanh("th")
	x := tensor.New(1, 3)
	out := th.Forward(x, &Context{})
	for _, v := range out.Data() {
		if v != 0 {
			t.Fatal("tanh(0) must be 0 — required for the incremental property")
		}
	}
	inc, macs := th.ForwardIncremental(x, nil, 0, 1, nil)
	if macs != 0 || inc.AbsMax() != 0 {
		t.Fatal("incremental tanh")
	}
}

func TestAvgPoolIncrementalMatches(t *testing.T) {
	r := tensor.NewRNG(7)
	p := NewAvgPool2D("ap", 2, 4, 4, 2)
	x := tensor.New(1, 2, 4, 4)
	x.FillNormal(r, 0, 1)
	full := p.Forward(x, &Context{})
	inc, macs := p.ForwardIncremental(x, nil, 0, 1, nil)
	if macs != 0 || !tensor.Equal(full, inc, 0) {
		t.Fatal("avg pool incremental mismatch")
	}
}
