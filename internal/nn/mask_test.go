package nn

import (
	"math"
	"testing"
	"testing/quick"

	"steppingnet/internal/subnet"
	"steppingnet/internal/tensor"
)

func TestDenseInactiveUnitsOutputZero(t *testing.T) {
	net, _ := denseNet(RuleIncremental, []int{1, 1}, []int{1, 2, 3}, 3, 1)
	x := tensor.FromSlice([]float64{1, 2}, 1, 2)
	out := net.Forward(x, &Context{Subnet: 1})
	if out.At(0, 1) != 0 || out.At(0, 2) != 0 {
		t.Fatalf("inactive units must emit 0, got %v", out.Data())
	}
	if out.At(0, 0) == 0 {
		t.Fatal("active unit should usually be nonzero")
	}
}

func TestDenseIncrementalRuleBlocksLargeToSmall(t *testing.T) {
	// Input unit in subnet 2 must not contribute to output unit in
	// subnet 1, even when running subnet 2.
	r := tensor.NewRNG(3)
	d := NewDense(DenseConfig{
		Name: "fc", In: 2, Out: 1, Rule: RuleIncremental,
		AssignIn: subnet.Fixed([]int{1, 2}, 2), Assign: subnet.Fixed([]int{1}, 2), Init: r,
	})
	net := NewNetwork("t", d)
	x1 := tensor.FromSlice([]float64{1, 0}, 1, 2)
	x2 := tensor.FromSlice([]float64{1, 99}, 1, 2)
	o1 := net.Forward(x1, &Context{Subnet: 2})
	o2 := net.Forward(x2, &Context{Subnet: 2})
	if o1.At(0, 0) != o2.At(0, 0) {
		t.Fatal("subnet-2 input leaked into subnet-1 unit")
	}
}

func TestDenseSharedRuleAllowsLargeToSmall(t *testing.T) {
	r := tensor.NewRNG(4)
	d := NewDense(DenseConfig{
		Name: "fc", In: 2, Out: 1, Rule: RuleShared,
		AssignIn: subnet.Fixed([]int{1, 2}, 2), Assign: subnet.Fixed([]int{1}, 2), Init: r,
	})
	net := NewNetwork("t", d)
	x1 := tensor.FromSlice([]float64{1, 0}, 1, 2)
	x2 := tensor.FromSlice([]float64{1, 99}, 1, 2)
	o1 := net.Forward(x1, &Context{Subnet: 2})
	o2 := net.Forward(x2, &Context{Subnet: 2})
	if o1.At(0, 0) == o2.At(0, 0) {
		t.Fatal("shared rule should let subnet-2 input reach subnet-1 unit in subnet 2")
	}
	// But in subnet 1 the extra input is inactive.
	p1 := net.Forward(x1, &Context{Subnet: 1})
	p2 := net.Forward(x2, &Context{Subnet: 1})
	if p1.At(0, 0) != p2.At(0, 0) {
		t.Fatal("inactive input leaked in subnet 1")
	}
}

// The defining behavioural difference (paper Fig. 1): under the
// incremental rule, an active unit's output never changes when the
// subnet grows; under the shared rule it generally does.
func TestIncrementalOutputsStableAcrossSubnets(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 3
		inIDs := make([]int, 4)
		outIDs := make([]int, 5)
		for i := range inIDs {
			inIDs[i] = 1 + r.Intn(n)
		}
		for i := range outIDs {
			outIDs[i] = 1 + r.Intn(n)
		}
		d := NewDense(DenseConfig{
			Name: "fc", In: 4, Out: 5, Rule: RuleIncremental,
			AssignIn: subnet.Fixed(inIDs, n), Assign: subnet.Fixed(outIDs, n), Init: r,
		})
		d.Bias().Value.FillNormal(r, 0, 1)
		net := NewNetwork("t", d)
		x := tensor.New(2, 4)
		x.FillNormal(r, 0, 1)
		prev := net.Forward(x, &Context{Subnet: 1})
		for s := 2; s <= n; s++ {
			cur := net.Forward(x, &Context{Subnet: s})
			for b := 0; b < 2; b++ {
				for o := 0; o < 5; o++ {
					if outIDs[o] < s && math.Abs(cur.At(b, o)-prev.At(b, o)) > 1e-12 {
						return false
					}
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseMACsCounting(t *testing.T) {
	d := NewDense(DenseConfig{
		Name: "fc", In: 3, Out: 2, Rule: RuleIncremental,
		AssignIn: subnet.Fixed([]int{1, 1, 2}, 2), Assign: subnet.Fixed([]int{1, 2}, 2),
	})
	// Subnet 1: only out0 active; inputs with id≤1: 2 → 2 MACs.
	if got := d.MACs(1); got != 2 {
		t.Fatalf("MACs(1)=%d want 2", got)
	}
	// Subnet 2: out0 (2 inputs, id≤1) + out1 (all 3) = 5.
	if got := d.MACs(2); got != 5 {
		t.Fatalf("MACs(2)=%d want 5", got)
	}
	if got := d.UnitMACs(1, 2); got != 3 {
		t.Fatalf("UnitMACs(1,2)=%d want 3", got)
	}
	// Pruning reduces MACs.
	d.pruned[0] = true // weight out0←in0
	if got := d.MACs(1); got != 1 {
		t.Fatalf("MACs(1) after prune=%d want 1", got)
	}
	d.ReviveUnit(0)
	if got := d.MACs(1); got != 2 {
		t.Fatalf("MACs(1) after revive=%d want 2", got)
	}
}

func TestConvMACsCounting(t *testing.T) {
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, OutC: 2, K: 3, Stride: 1, Pad: 1}
	c := NewConv2D(Conv2DConfig{
		Name: "c", Geom: g, Rule: RuleIncremental,
		AssignIn: subnet.Fixed([]int{1, 2}, 2), Assign: subnet.Fixed([]int{1, 2}, 2),
	})
	// Subnet 1: filter0 sees channel0 only: 9 weights × 16 positions.
	if got := c.MACs(1); got != 9*16 {
		t.Fatalf("MACs(1)=%d want %d", got, 9*16)
	}
	// Subnet 2: filter0 9w + filter1 18w = 27 × 16.
	if got := c.MACs(2); got != 27*16 {
		t.Fatalf("MACs(2)=%d want %d", got, 27*16)
	}
	if got := c.UnitMACs(1, 2); got != 18*16 {
		t.Fatalf("UnitMACs=%d want %d", got, 18*16)
	}
}

func TestPruneBelowAndCount(t *testing.T) {
	d := NewDense(DenseConfig{
		Name: "fc", In: 2, Out: 2, Rule: RuleIncremental,
		AssignIn: subnet.NewAssignment(2, 1), Assign: subnet.NewAssignment(2, 1),
	})
	copy(d.Weights().Value.Data(), []float64{1e-9, 0.5, -1e-8, -0.7})
	if n := d.PruneBelow(1e-5); n != 2 {
		t.Fatalf("pruned %d want 2", n)
	}
	if d.PrunedCount() != 2 {
		t.Fatal("PrunedCount")
	}
	// Idempotent: re-pruning prunes nothing new.
	if n := d.PruneBelow(1e-5); n != 0 {
		t.Fatalf("re-prune %d want 0", n)
	}
	d.ReviveUnit(0)
	if d.PrunedCount() != 1 {
		t.Fatal("ReviveUnit should clear row 0 only")
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D("p", 1, 2, 2, 2)
	x := tensor.FromSlice([]float64{1, 5, 3, 2}, 1, 1, 2, 2)
	out := p.Forward(x, &Context{Train: true})
	if out.Len() != 1 || out.At(0, 0, 0, 0) != 5 {
		t.Fatalf("maxpool got %v", out.Data())
	}
	grad := tensor.FromSlice([]float64{2}, 1, 1, 1, 1)
	gx := p.Backward(grad, &Context{})
	want := []float64{0, 2, 0, 0}
	for i, w := range want {
		if gx.Data()[i] != w {
			t.Fatalf("maxpool backward %v", gx.Data())
		}
	}
}

func TestMaxPoolConstructionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-divisible pooling")
		}
	}()
	NewMaxPool2D("p", 1, 5, 4, 2)
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("fl")
	x := tensor.New(2, 3, 4, 4)
	r := tensor.NewRNG(1)
	x.FillNormal(r, 0, 1)
	out := f.Forward(x, &Context{Train: true})
	if out.Rank() != 2 || out.Dim(0) != 2 || out.Dim(1) != 48 {
		t.Fatalf("flatten shape %v", out.Shape())
	}
	g := tensor.New(2, 48)
	g.FillNormal(r, 0, 1)
	gx := f.Backward(g, &Context{})
	if gx.Rank() != 4 || gx.Dim(1) != 3 || gx.Dim(2) != 4 {
		t.Fatalf("flatten backward shape %v", gx.Shape())
	}
}

func TestNetworkValidateCatchesViolation(t *testing.T) {
	// Construct an illegal configuration by hand: a unit in subnet 2
	// feeding a unit in subnet 1 without pruning under
	// RuleIncremental never happens via the mask (the mask forbids
	// it structurally), so Validate passes for any assignment...
	net, _ := denseNet(RuleIncremental, []int{2, 1}, []int{1, 2}, 2, 1)
	if err := net.Validate(); err != nil {
		t.Fatalf("incremental nets are legal by construction: %v", err)
	}
}

func TestBetaSuppressionScalesGradients(t *testing.T) {
	// Two output units in subnets 1 and 2 with identical weights and
	// inputs: training subnet 2 with β must scale unit-1's gradient
	// by β while unit-2's stays full.
	d := NewDense(DenseConfig{
		Name: "fc", In: 1, Out: 2, Rule: RuleIncremental,
		AssignIn: subnet.Fixed([]int{1}, 2), Assign: subnet.Fixed([]int{1, 2}, 2),
	})
	d.Weights().Value.Fill(1)
	net := NewNetwork("t", d)
	x := tensor.FromSlice([]float64{2}, 1, 1)
	ctx := &Context{Subnet: 2, Train: true, Beta: 0.5}
	net.ZeroGrad()
	net.Forward(x, ctx)
	g := tensor.FromSlice([]float64{1, 1}, 1, 2)
	net.Backward(g, ctx)
	gw := d.Weights().Grad.Data()
	if math.Abs(gw[0]-0.5*2) > 1e-12 || math.Abs(gw[1]-2) > 1e-12 {
		t.Fatalf("suppressed grads %v, want [1 2]", gw)
	}
	gb := d.Bias().Grad.Data()
	if math.Abs(gb[0]-0.5) > 1e-12 || math.Abs(gb[1]-1) > 1e-12 {
		t.Fatalf("suppressed bias grads %v", gb)
	}
}

func TestDenseForwardIncrementalMatchesForward(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 3
		inIDs := make([]int, 5)
		outIDs := make([]int, 4)
		for i := range inIDs {
			inIDs[i] = 1 + r.Intn(n)
		}
		for i := range outIDs {
			outIDs[i] = 1 + r.Intn(n)
		}
		d := NewDense(DenseConfig{
			Name: "fc", In: 5, Out: 4, Rule: RuleIncremental,
			AssignIn: subnet.Fixed(inIDs, n), Assign: subnet.Fixed(outIDs, n), Init: r,
		})
		d.Bias().Value.FillNormal(r, 0, 1)
		x := tensor.New(2, 5)
		x.FillNormal(r, 0, 1)
		var cached *tensor.Tensor
		for s := 1; s <= n; s++ {
			inc, _ := d.ForwardIncremental(x, cached, s-1, s, nil)
			full := d.Forward(x, &Context{Subnet: s})
			if !tensor.Equal(inc, full, 1e-12) {
				return false
			}
			cached = inc
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConvForwardIncrementalMatchesForward(t *testing.T) {
	r := tensor.NewRNG(99)
	n := 3
	g := tensor.ConvGeom{InC: 3, InH: 5, InW: 5, OutC: 4, K: 3, Stride: 1, Pad: 1}
	c := NewConv2D(Conv2DConfig{
		Name: "c", Geom: g, Rule: RuleIncremental,
		AssignIn: subnet.Fixed([]int{1, 2, 3}, n), Assign: subnet.Fixed([]int{1, 2, 3, 3}, n), Init: r,
	})
	c.Bias().Value.FillNormal(r, 0, 0.5)
	x := tensor.New(2, 3, 5, 5)
	x.FillNormal(r, 0, 1)
	var cached *tensor.Tensor
	for s := 1; s <= n; s++ {
		inc, macs := c.ForwardIncremental(x, cached, s-1, s, nil)
		full := c.Forward(x, &Context{Subnet: s})
		if !tensor.Equal(inc, full, 1e-12) {
			t.Fatalf("incremental conv mismatch at subnet %d", s)
		}
		// Step MACs must equal the MAC delta between subnets.
		wantDelta := c.MACs(s)
		if s > 1 {
			wantDelta -= c.MACs(s - 1)
		}
		if macs != wantDelta {
			t.Fatalf("subnet %d: step MACs %d, delta %d", s, macs, wantDelta)
		}
		cached = inc
	}
}

func TestDenseIncrementalMACDelta(t *testing.T) {
	r := tensor.NewRNG(101)
	d := NewDense(DenseConfig{
		Name: "fc", In: 6, Out: 6, Rule: RuleIncremental,
		AssignIn: subnet.Fixed([]int{1, 1, 2, 2, 3, 3}, 3),
		Assign:   subnet.Fixed([]int{1, 1, 2, 2, 3, 3}, 3), Init: r,
	})
	x := tensor.New(1, 6)
	x.FillNormal(r, 0, 1)
	var cached *tensor.Tensor
	var total int64
	for s := 1; s <= 3; s++ {
		out, macs := d.ForwardIncremental(x, cached, s-1, s, nil)
		total += macs
		wantDelta := d.MACs(s)
		if s > 1 {
			wantDelta -= d.MACs(s - 1)
		}
		if macs != wantDelta {
			t.Fatalf("subnet %d step MACs %d want %d", s, macs, wantDelta)
		}
		cached = out
	}
	if total != d.MACs(3) {
		t.Fatalf("total incremental MACs %d != MACs(3)=%d", total, d.MACs(3))
	}
}

func TestSwitchableBatchNormModesIndependent(t *testing.T) {
	r := tensor.NewRNG(7)
	bn := NewSwitchableBatchNorm2D("bn", 1, 2)
	x := tensor.New(4, 1, 2, 2)
	x.FillNormal(r, 3, 2)
	// Train mode 1 only.
	bn.Forward(x, &Context{Train: true, Mode: 1})
	if bn.runMean[0][0] == 0 {
		t.Fatal("mode-1 running mean should update")
	}
	if bn.runMean[1][0] != 0 {
		t.Fatal("mode-2 running mean must be untouched")
	}
	// Eval uses running stats: different modes give different outputs.
	e1 := bn.Forward(x, &Context{Mode: 1})
	e2 := bn.Forward(x, &Context{Mode: 2})
	if tensor.Equal(e1, e2, 1e-9) {
		t.Fatal("modes should differ after training only mode 1")
	}
}

func TestBatchNormTrainNormalizes(t *testing.T) {
	r := tensor.NewRNG(8)
	bn := NewSwitchableBatchNorm2D("bn", 1, 1)
	x := tensor.New(8, 1, 3, 3)
	x.FillNormal(r, 5, 3)
	out := bn.Forward(x, &Context{Train: true, Mode: 1})
	mean := out.Sum() / float64(out.Len())
	va := 0.0
	for _, v := range out.Data() {
		va += (v - mean) * (v - mean)
	}
	va /= float64(out.Len())
	if math.Abs(mean) > 1e-9 || math.Abs(va-1) > 1e-2 {
		t.Fatalf("normalized stats mean=%g var=%g", mean, va)
	}
}

func TestNetworkCopyWeightsTo(t *testing.T) {
	a, _ := denseNet(RuleIncremental, []int{1, 1}, []int{1, 1}, 1, 1)
	b, _ := denseNet(RuleIncremental, []int{1, 1}, []int{1, 1}, 1, 2)
	if err := a.CopyWeightsTo(b); err != nil {
		t.Fatal(err)
	}
	for i, p := range a.Params() {
		if !tensor.Equal(p.Value, b.Params()[i].Value, 0) {
			t.Fatal("weights not copied")
		}
	}
}

func TestNetworkParamCountAndMACs(t *testing.T) {
	net, d := denseNet(RuleIncremental, []int{1, 1, 1}, []int{1, 1}, 1, 1)
	if net.ParamCount() != 3*2+2 {
		t.Fatalf("ParamCount=%d", net.ParamCount())
	}
	if net.MACs(1) != d.MACs(1) {
		t.Fatal("network MACs should sum masked layers")
	}
}
