package nn

import "steppingnet/internal/tensor"

// ReLU is the rectified linear activation, applied element-wise. It
// has no parameters and no MACs; the paper's φ in Eq. 1.
type ReLU struct {
	name string
	mask []bool         // true where input > 0, cached for backward
	out  *tensor.Tensor // previous train-mode output, self-recycled
}

// NewReLU constructs the activation.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

func (r *ReLU) Name() string     { return r.name }
func (r *ReLU) Params() []*Param { return nil }

func (r *ReLU) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if ctx.Train {
		// The previous step's output (held downstream only as a stale
		// cache by now) is dead; recycle it.
		ctx.Scratch.Put(r.out)
		r.out = nil
	}
	out := ctx.Scratch.GetUninit(x.Shape()...)
	od, xd := out.Data(), x.Data()
	if !ctx.Train {
		for i, v := range xd {
			if v > 0 {
				od[i] = v
			} else {
				od[i] = 0
			}
		}
		return out
	}
	if cap(r.mask) < len(xd) {
		r.mask = make([]bool, len(xd))
	}
	r.mask = r.mask[:len(xd)]
	for i, v := range xd {
		if v > 0 {
			od[i] = v
			r.mask[i] = true
		} else {
			od[i] = 0
			r.mask[i] = false
		}
	}
	r.out = out
	return out
}

func (r *ReLU) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	out := ctx.Scratch.Get(grad.Shape()...)
	od, gd := out.Data(), grad.Data()
	for i, g := range gd {
		if r.mask[i] {
			od[i] = g
		}
	}
	return out
}

// ForwardIncremental recomputes the activation; it costs no MACs and
// element-wise ops preserve the reuse property trivially.
func (r *ReLU) ForwardIncremental(x, _ *tensor.Tensor, _, _ int, pool *tensor.Pool) (*tensor.Tensor, int64) {
	out := pool.GetUninit(x.Shape()...)
	od, xd := out.Data(), x.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
		} else {
			od[i] = 0
		}
	}
	return out, 0
}

var _ Incremental = (*ReLU)(nil)
