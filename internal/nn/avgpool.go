package nn

import (
	"fmt"

	"steppingnet/internal/tensor"
)

// AvgPool2D performs non-overlapping K×K average pooling per channel
// — the pooling the original LeNet used. Like MaxPool2D it is
// per-channel and therefore preserves the incremental property.
type AvgPool2D struct {
	name       string
	c, h, w, k int
	out        *tensor.Tensor // previous train-mode output, self-recycled
}

// NewAvgPool2D constructs the layer for inputs of shape [B, c, h, w].
// h and w must be divisible by k.
func NewAvgPool2D(name string, c, h, w, k int) *AvgPool2D {
	if c <= 0 || h <= 0 || w <= 0 || k <= 0 {
		panic(fmt.Sprintf("nn: AvgPool2D %q invalid dims c=%d h=%d w=%d k=%d", name, c, h, w, k))
	}
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: AvgPool2D %q: %dx%d not divisible by %d", name, h, w, k))
	}
	return &AvgPool2D{name: name, c: c, h: h, w: w, k: k}
}

func (m *AvgPool2D) Name() string     { return m.name }
func (m *AvgPool2D) Params() []*Param { return nil }

// OutH returns the pooled height.
func (m *AvgPool2D) OutH() int { return m.h / m.k }

// OutW returns the pooled width.
func (m *AvgPool2D) OutW() int { return m.w / m.k }

func (m *AvgPool2D) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != m.c || x.Dim(2) != m.h || x.Dim(3) != m.w {
		panic(fmt.Sprintf("nn: AvgPool2D %q input %v, want [B %d %d %d]", m.name, x.Shape(), m.c, m.h, m.w))
	}
	batch := x.Dim(0)
	oh, ow := m.OutH(), m.OutW()
	if ctx.Train {
		ctx.Scratch.Put(m.out) // previous step's output is dead
		m.out = nil
	}
	out := ctx.Scratch.GetUninit(batch, m.c, oh, ow)
	if ctx.Train {
		m.out = out
	}
	m.poolInto(x, out)
	return out
}

// poolInto runs the averaging loop from x into out.
func (m *AvgPool2D) poolInto(x, out *tensor.Tensor) {
	m.poolRange(x, out, 0, x.Dim(0)*m.c)
}

// poolRange averages channel planes [bc0,bc1) of the flattened
// (batch·channel) plane sequence — the shardable core of poolInto;
// disjoint plane ranges write disjoint slices of out.
func (m *AvgPool2D) poolRange(x, out *tensor.Tensor, bc0, bc1 int) {
	oh, ow := m.OutH(), m.OutW()
	xd, od := x.Data(), out.Data()
	inv := 1 / float64(m.k*m.k)
	for bc := bc0; bc < bc1; bc++ {
		inBase := bc * m.h * m.w
		outBase := bc * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := 0.0
				for ky := 0; ky < m.k; ky++ {
					for kx := 0; kx < m.k; kx++ {
						sum += xd[inBase+(oy*m.k+ky)*m.w+ox*m.k+kx]
					}
				}
				od[outBase+oy*ow+ox] = sum * inv
			}
		}
	}
}

func (m *AvgPool2D) Backward(grad *tensor.Tensor, ctx *Context) *tensor.Tensor {
	batch := grad.Dim(0)
	oh, ow := m.OutH(), m.OutW()
	out := ctx.Scratch.Get(batch, m.c, m.h, m.w)
	od, gd := out.Data(), grad.Data()
	inv := 1 / float64(m.k*m.k)
	for b := 0; b < batch; b++ {
		for ch := 0; ch < m.c; ch++ {
			inBase := (b*m.c + ch) * m.h * m.w
			outBase := (b*m.c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gd[outBase+oy*ow+ox] * inv
					for ky := 0; ky < m.k; ky++ {
						for kx := 0; kx < m.k; kx++ {
							od[inBase+(oy*m.k+ky)*m.w+ox*m.k+kx] += g
						}
					}
				}
			}
		}
	}
	return out
}

// ForwardIncremental recomputes pooling (zero MACs; per-channel, so
// reuse-safe). It bypasses Forward's Context plumbing so the anytime
// walk allocates nothing in steady state.
func (m *AvgPool2D) ForwardIncremental(x, _ *tensor.Tensor, _, _ int, pool *tensor.Pool) (*tensor.Tensor, int64) {
	out := pool.GetUninit(x.Dim(0), m.c, m.OutH(), m.OutW())
	m.poolInto(x, out)
	return out, 0
}

// IncrementalSpan implements IncrementalSharded: pooling is
// per-channel, so the span is the flattened (batch·channel) plane
// sequence with no alignment constraint — every output element is
// computed whole by exactly one worker, making any partition
// trivially bitwise-identical to the serial loop.
func (m *AvgPool2D) IncrementalSpan(x *tensor.Tensor, _, _ int) (span, grain int) {
	planes := x.Dim(0) * m.c
	if int64(planes)*int64(m.h)*int64(m.w) < ShardMinOps {
		return 0, 1
	}
	return planes, 1
}

// NewIncrementalOut implements IncrementalSharded (uninitialized: the
// spans jointly write every element).
func (m *AvgPool2D) NewIncrementalOut(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	return pool.GetUninit(x.Dim(0), m.c, m.OutH(), m.OutW())
}

// ForwardIncrementalSpan implements IncrementalSharded.
func (m *AvgPool2D) ForwardIncrementalSpan(x, _, out *tensor.Tensor, _, _, i0, i1 int, _ *tensor.Pool) int64 {
	m.poolRange(x, out, i0, i1)
	return 0
}

var (
	_ Incremental        = (*AvgPool2D)(nil)
	_ IncrementalSharded = (*AvgPool2D)(nil)
)
