package core

import (
	"fmt"

	"steppingnet/internal/data"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

// SubnetStat reports one subnet's operating point, matching one
// column group of Table I.
type SubnetStat struct {
	Subnet   int
	MACs     int64
	MACFrac  float64 // M_i / M_t
	Accuracy float64 // A_i on the test set
}

// Result is the outcome of the full SteppingNet pipeline on one
// network/dataset pair: one row of Table I plus construction
// diagnostics.
type Result struct {
	Model        string
	RefMACs      int64   // M_t of the original (un-expanded) network
	OrigAccuracy float64 // accuracy of the trained original network
	Expansion    float64
	Stats        []SubnetStat
	Construction *ConstructionStats
	// StudentNet is the constructed, retrained masked model (useful
	// for incremental-inference demos on top of a pipeline run).
	StudentNet *models.Model
}

// PipelineOptions bundles the workload for Run.
type PipelineOptions struct {
	Build     models.Builder
	Data      data.Config
	Expansion float64
	Config    Config
	// DisableDistill skips KD retraining (Fig. 8 ablation).
	DisableDistill bool
	// DisableSuppression sets β suppression off during construction
	// and retraining (Fig. 8 ablation).
	DisableSuppression bool
}

// Run executes the end-to-end SteppingNet pipeline:
//
//  1. train the original (un-expanded) network — the teacher and the
//     accuracy upper bound,
//  2. build the expanded masked network and construct N nested
//     subnets under the MAC budgets (Fig. 3),
//  3. retrain the subnets with knowledge distillation (Eq. 4),
//  4. evaluate every subnet.
func Run(opt PipelineOptions) (*Result, error) {
	cfg := opt.Config.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Expansion <= 0 {
		opt.Expansion = 1.8
	}
	if opt.DisableSuppression {
		cfg.Beta = 1 // β=1 means no suppression (scale factor 1)
	}
	train, test, err := data.Generate(opt.Data)
	if err != nil {
		return nil, err
	}

	mo := models.Options{
		Classes: opt.Data.Classes, InC: opt.Data.C, InH: opt.Data.H, InW: opt.Data.W,
		Rule: nn.RuleIncremental, Seed: cfg.Seed,
	}

	// 1. Teacher / original network.
	teacherModel := opt.Build(withExpansion(mo, 1, 1))
	refMACs := teacherModel.Net.MACs(1)
	rng := tensor.NewRNG(cfg.Seed ^ 0x7EAC)
	TrainPlain(teacherModel.Net, train, cfg.TeacherEpochs, cfg.BatchSize, cfg.LR, cfg.Momentum, rng)
	origAcc := Evaluate(teacherModel.Net, test, 1, cfg.BatchSize)

	// 2. Expanded student + construction.
	student := opt.Build(withExpansion(mo, opt.Expansion, cfg.Subnets))
	cons, err := Construct(student, train, cfg, refMACs)
	if err != nil {
		return nil, fmt.Errorf("core: construction failed: %w", err)
	}

	// 3. KD retraining.
	teacher := teacherModel.Net
	if opt.DisableDistill {
		teacher = nil
	}
	Distill(student.Net, teacher, train, cfg)

	// 4. Evaluation.
	res := &Result{
		Model:        student.Name,
		RefMACs:      refMACs,
		OrigAccuracy: origAcc,
		Expansion:    opt.Expansion,
		Construction: cons,
	}
	for s := 1; s <= cfg.Subnets; s++ {
		macs := student.Net.MACs(s)
		res.Stats = append(res.Stats, SubnetStat{
			Subnet:   s,
			MACs:     macs,
			MACFrac:  float64(macs) / float64(refMACs),
			Accuracy: Evaluate(student.Net, test, s, cfg.BatchSize),
		})
	}
	res.StudentNet = student
	return res, nil
}

func withExpansion(o models.Options, expansion float64, subnets int) models.Options {
	o.Expansion = expansion
	o.Subnets = subnets
	return o
}
