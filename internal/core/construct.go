package core

import (
	"fmt"
	"math"
	"sort"

	"steppingnet/internal/data"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/optim"
	"steppingnet/internal/tensor"
)

// ConstructionStats records what happened during construction, for
// reporting and tests.
type ConstructionStats struct {
	Iterations    int
	UnitsMoved    int
	WeightsPruned int
	// FinalMACs[i] is the MAC count of subnet i+1 after construction.
	FinalMACs []int64
	// BudgetsMet reports whether every subnet ended at or under its
	// MAC budget.
	BudgetsMet bool
}

// Construct runs the Fig. 3 work flow on the model: repeatedly train
// all subnets for m batches (accumulating Eq. 2 importance), move the
// least-important units of over-budget subnets to the next subnet,
// and prune. refMACs is M_t, the MAC count of the original
// un-expanded network that budgets are fractions of.
func Construct(model *models.Model, train *data.Dataset, cfg Config, refMACs int64) (*ConstructionStats, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Subnets
	rng := cfg.rng()
	net := model.Net
	net.EnableImportance(n)
	opt := optim.NewSGD(cfg.LR, cfg.Momentum, 1e-4)
	pool := tensor.NewPool()

	// Absolute budgets P_i and the per-iteration movement quota
	// (P_t − P_1)/N_t, where P_t is the full expanded network's MACs
	// (what subnet 1 is initialized with, §III-A1).
	budgets := make([]int64, n)
	for i, frac := range cfg.Budgets {
		budgets[i] = int64(frac * float64(refMACs))
	}
	fullMACs := net.MACs(n)
	quota := (fullMACs - budgets[0]) / int64(cfg.Iterations)
	if quota < 1 {
		quota = 1
	}

	stats := &ConstructionStats{}
	for iter := 0; iter < cfg.Iterations; iter++ {
		stats.Iterations++
		net.ResetImportance()
		// Train all subnets on m batches, smaller to larger per
		// batch, with β suppression and importance accumulation.
		trained := 0
		for trained < cfg.BatchesPerIter {
			train.Batches(rng, cfg.BatchSize, func(x *tensor.Tensor, y []int) {
				if trained >= cfg.BatchesPerIter {
					return
				}
				for s := 1; s <= n; s++ {
					trainStep(net, opt, x, y, s, cfg.Beta, true, pool)
				}
				trained++
			})
		}

		done := true
		for s := 1; s <= n; s++ {
			over := net.MACs(s) - budgets[s-1]
			if over <= 0 {
				continue
			}
			done = false
			if s < n && flowGateOpen(net, budgets, s) {
				// Move until the subnet's real MAC count reaches the
				// iteration floor: at most quota MACs per iteration
				// and never below the subnet's own budget. Movement
				// is measured on the live network because moving a
				// unit also deactivates its outgoing synapses in the
				// next layer — a delta the unit's own row does not
				// capture.
				floor := budgets[s-1]
				if cur := net.MACs(s); cur-quota > floor {
					floor = cur - quota
				}
				stats.UnitsMoved += moveUnits(model, cfg, s, floor)
			}
			// Threshold pruning of the subnet's own weights (Fig. 3
			// "unstructured pruning of subnet_i").
			for _, m := range model.Movable {
				stats.WeightsPruned += m.PruneBelow(cfg.PruneThreshold)
			}
			// Budget-driven magnitude pruning, rate-limited by the
			// quota, shrinks subnets that movement alone cannot
			// shrink (above all subnet N, which has no larger subnet
			// to move units into).
			excess := net.MACs(s) - budgets[s-1]
			if excess > 0 {
				cap := quota
				if s == n {
					// The largest subnet can only prune; let it shed
					// its share faster so N_t iterations suffice.
					cap = quota * 2
				}
				if excess < cap {
					cap = excess
				}
				stats.WeightsPruned += budgetPrune(model, s, cap)
			}
		}
		if err := net.Validate(); err != nil {
			return stats, fmt.Errorf("core: invariant violated at iteration %d: %w", iter, err)
		}
		if done {
			break // all budgets met; KD retraining continues training
		}
	}

	stats.FinalMACs = make([]int64, n)
	stats.BudgetsMet = true
	for s := 1; s <= n; s++ {
		stats.FinalMACs[s-1] = net.MACs(s)
		if stats.FinalMACs[s-1] > budgets[s-1] {
			stats.BudgetsMet = false
		}
	}
	return stats, nil
}

// flowGateOpen implements the paper's flow condition: neurons start
// to flow out of subnet s (s ≥ 2) only once the MAC difference to
// the previous subnet exceeds the budget difference, "otherwise
// subnet s cannot maintain a sufficient number of neurons".
func flowGateOpen(net *nn.Network, budgets []int64, s int) bool {
	if s == 1 {
		return true
	}
	return net.MACs(s)-net.MACs(s-1) > budgets[s-1]-budgets[s-2]
}

// moveUnits moves the least-important units assigned to subnet s into
// subnet s+1 until the subnet's MAC count (measured on the live
// network, including downstream synapse deactivation) drops to the
// floor or candidates run out. Moving a unit revives its pruned
// incoming synapses (§III-A1: "these synapses may be essential to the
// new subnet").
func moveUnits(model *models.Model, cfg Config, s int, floor int64) int {
	refs := rankedUnits(model.Movable, s, cfg.Subnets, cfg.AlphaGrowth)
	count := 0
	for _, ref := range refs {
		if model.Net.MACs(s) <= floor {
			break
		}
		layer := model.Movable[ref.layer]
		a := layer.OutAssignment()
		if a.CountIn(s) <= cfg.MinUnitsPerSubnet {
			continue // keep the layer alive in this subnet
		}
		a.SetID(ref.unit, s+1)
		layer.ReviveUnit(ref.unit)
		count++
	}
	return count
}

// budgetPrune removes up to maxMACs multiply-accumulates from subnet
// s by pruning the smallest-magnitude active weights of units
// assigned exactly to subnet s. Units of smaller subnets are never
// touched: pruning their weights would shrink the smaller subnets
// below the budgets they already satisfy (a global prune mask keeps
// subnet outputs consistent across nesting levels, so any such prune
// propagates downward).
func budgetPrune(model *models.Model, s int, maxMACs int64) int {
	type cand struct {
		layer    int
		unit     int
		weight   float64 // mean |w| of the unit's incoming synapses
		unitMACs int64
	}
	var cands []cand
	for li, m := range model.Movable {
		a := m.OutAssignment()
		for u := 0; u < a.Units(); u++ {
			if a.ID(u) != s {
				continue
			}
			cands = append(cands, cand{
				layer: li, unit: u,
				weight:   unitMeanAbsWeight(m, u),
				unitMACs: m.UnitMACs(u, s),
			})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].weight < cands[j].weight })

	var freed int64
	pruned := 0
	for _, c := range cands {
		if freed >= maxMACs {
			break
		}
		m := model.Movable[c.layer]
		before := m.UnitMACs(c.unit, s)
		n := pruneUnitSmallest(m, c.unit, s, maxMACs-freed)
		pruned += n
		freed += before - m.UnitMACs(c.unit, s)
	}
	return pruned
}

// unitMeanAbsWeight returns the mean |w| over a unit's incoming
// weights, used to pick pruning victims.
func unitMeanAbsWeight(m nn.Masked, unit int) float64 {
	switch l := m.(type) {
	case *nn.Dense:
		w := l.Weights().Value
		in := l.In()
		sum := 0.0
		for i := 0; i < in; i++ {
			sum += math.Abs(w.Data()[unit*in+i])
		}
		return sum / float64(in)
	case *nn.Conv2D:
		w := l.Weights().Value
		cc := l.Geom().ColCols()
		sum := 0.0
		for i := 0; i < cc; i++ {
			sum += math.Abs(w.Data()[unit*cc+i])
		}
		return sum / float64(cc)
	}
	return 0
}

// pruneUnitSmallest prunes the smallest-magnitude active incoming
// weights of the unit until the unit's subnet-s MACs have dropped by
// budget (or one weight remains — units keep at least one synapse so
// they stay functional). Returns the number of weights pruned.
func pruneUnitSmallest(m nn.Masked, unit, s int, budget int64) int {
	type wref struct {
		idx int
		mag float64
	}
	var weights []float64
	var rowBase, rowLen int
	var macPerWeight int64
	var activeAt func(col int) bool
	var pruneAt func(col int)
	switch l := m.(type) {
	case *nn.Dense:
		weights = l.Weights().Value.Data()
		rowLen = l.In()
		rowBase = unit * rowLen
		macPerWeight = 1
		activeAt = func(col int) bool { return l.ActiveAt(unit, col, s) }
		pruneAt = func(col int) { l.PruneAt(unit, col) }
	case *nn.Conv2D:
		weights = l.Weights().Value.Data()
		rowLen = l.Geom().ColCols()
		rowBase = unit * rowLen
		macPerWeight = int64(l.Geom().ColRows())
		activeAt = func(col int) bool { return l.ActiveAt(unit, col, s) }
		pruneAt = func(col int) { l.PruneAt(unit, col) }
	default:
		return 0
	}
	remaining := m.UnitMACs(unit, s) / macPerWeight
	if remaining <= 1 { // keep at least one synapse
		return 0
	}
	active := make([]wref, 0, rowLen)
	for i := 0; i < rowLen; i++ {
		if activeAt(i) {
			active = append(active, wref{idx: i, mag: math.Abs(weights[rowBase+i])})
		}
	}
	sort.Slice(active, func(i, j int) bool { return active[i].mag < active[j].mag })
	pruned := 0
	var freed int64
	for _, w := range active {
		if freed >= budget || remaining <= 1 {
			break
		}
		pruneAt(w.idx)
		freed += macPerWeight
		remaining--
		pruned++
	}
	return pruned
}
