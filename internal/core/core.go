package core
