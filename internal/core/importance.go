package core

import (
	"math"
	"sort"

	"steppingnet/internal/nn"
)

// unitRef identifies one movable unit: layer index (into the Movable
// slice) and output-unit index within the layer.
type unitRef struct {
	layer int
	unit  int
}

// combinedImportance computes the selection criterion of Eq. 3 for
// unit j of a layer currently assigned to subnet i:
//
//	M_i_j = Σ_{k=i..N} α_k · |∂L_k/∂r_j|
//
// where the per-subnet |∂L_k/∂r_j| have been accumulated by the
// layers during the m training batches and α_k = α_1·growth^(k−1)
// with α_1 = 1 (the paper grows α by 1.5× per larger subnet so units
// kept in a subnet "also make good contribution to the inference
// accuracy of the larger subnets").
func combinedImportance(layer nn.Masked, unit, fromSubnet, nSubnets int, alphaGrowth float64) float64 {
	imp := layer.Importance()
	if imp == nil {
		return 0
	}
	total := 0.0
	alpha := 1.0
	for k := 1; k <= nSubnets; k++ {
		if k >= fromSubnet {
			total += alpha * math.Abs(imp[k-1][unit])
		}
		alpha *= alphaGrowth
	}
	return total
}

// rankedUnits lists every unit currently assigned exactly to subnet s
// across all movable layers, ordered by ascending combined importance
// (least important first — the movement candidates).
func rankedUnits(movable []nn.Masked, s, nSubnets int, alphaGrowth float64) []unitRef {
	type scored struct {
		ref   unitRef
		score float64
	}
	var all []scored
	for li, m := range movable {
		a := m.OutAssignment()
		for _, u := range a.UnitsAt(s) {
			all = append(all, scored{
				ref:   unitRef{layer: li, unit: u},
				score: combinedImportance(m, u, s, nSubnets, alphaGrowth),
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].score < all[j].score })
	refs := make([]unitRef, len(all))
	for i, sc := range all {
		refs[i] = sc.ref
	}
	return refs
}
