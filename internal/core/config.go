// Package core implements the SteppingNet design framework itself:
// the iterative subnet-construction work flow of Fig. 3 (train →
// evaluate neuron importance → move neurons between subnets → prune),
// the importance metric of Eq. 2–3, the learning-rate suppression of
// §III-A2, and the knowledge-distillation retraining of §III-B /
// Eq. 4. The substrate (layers, losses, optimizers, data) lives in
// sibling packages.
package core

import (
	"fmt"

	"steppingnet/internal/tensor"
)

// Config collects every hyperparameter of the construction and
// retraining pipeline. Zero values select the paper's settings where
// the paper names one (§IV), otherwise sensible defaults for the
// scaled-down synthetic workloads.
type Config struct {
	// Subnets is N, the number of nested subnets (paper: 4).
	Subnets int
	// Budgets are the allowed MAC fractions P_i/M_t of the original
	// (un-expanded) network, ascending, one per subnet (paper
	// Table I: e.g. 0.10/0.30/0.50/0.85 for LeNet-3C1L).
	Budgets []float64

	// Iterations is N_t, the number of construction iterations
	// (paper: 300; scaled default 40).
	Iterations int
	// BatchesPerIter is m, the batches trained at the start of each
	// iteration (paper: 100–250; scaled default 2).
	BatchesPerIter int
	BatchSize      int

	LR       float64
	Momentum float64

	// AlphaGrowth is the factor between consecutive α_k in Eq. 3
	// (paper: 1.5, with α_1 = 1).
	AlphaGrowth float64
	// Beta is the learning-rate suppression base β (paper: 0.9).
	Beta float64
	// Gamma is the CE/KL mixing constant γ in Eq. 4 (paper: 0.4).
	Gamma float64
	// PruneThreshold is the unstructured-pruning magnitude threshold
	// (paper: 1e-5).
	PruneThreshold float64

	// DistillEpochs is the length of the KD retraining phase.
	DistillEpochs int
	// TeacherEpochs trains the original network that serves as the
	// distillation teacher and accuracy reference.
	TeacherEpochs int

	// MinUnitsPerSubnet guards against a layer losing every unit of
	// a small subnet, which would zero that layer's features in that
	// subnet. Default 1.
	MinUnitsPerSubnet int

	Seed uint64
}

// WithDefaults returns a copy with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.Subnets <= 0 {
		c.Subnets = 4
	}
	if len(c.Budgets) == 0 {
		c.Budgets = []float64{0.10, 0.30, 0.50, 0.85}
	}
	if c.Iterations <= 0 {
		c.Iterations = 40
	}
	if c.BatchesPerIter <= 0 {
		c.BatchesPerIter = 2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.Momentum <= 0 {
		c.Momentum = 0.9
	}
	if c.AlphaGrowth <= 0 {
		c.AlphaGrowth = 1.5
	}
	if c.Beta <= 0 {
		c.Beta = 0.9
	}
	if c.Gamma <= 0 {
		c.Gamma = 0.4
	}
	if c.PruneThreshold <= 0 {
		c.PruneThreshold = 1e-5
	}
	if c.DistillEpochs <= 0 {
		c.DistillEpochs = 5
	}
	if c.TeacherEpochs <= 0 {
		c.TeacherEpochs = 5
	}
	if c.MinUnitsPerSubnet <= 0 {
		c.MinUnitsPerSubnet = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	if len(c.Budgets) != c.Subnets {
		return fmt.Errorf("core: %d budgets for %d subnets", len(c.Budgets), c.Subnets)
	}
	prev := 0.0
	for i, b := range c.Budgets {
		if b <= prev {
			return fmt.Errorf("core: budgets must be positive and strictly ascending; budget[%d]=%g after %g", i, b, prev)
		}
		prev = b
	}
	if c.Beta > 1 {
		return fmt.Errorf("core: beta %g must be ≤ 1 (1 disables suppression)", c.Beta)
	}
	if c.Gamma > 1 {
		return fmt.Errorf("core: gamma %g must be ≤ 1", c.Gamma)
	}
	return nil
}

// rng derives the construction RNG.
func (c Config) rng() *tensor.RNG { return tensor.NewRNG(c.Seed ^ 0x57E9) }
