package core

import (
	"testing"

	"steppingnet/internal/data"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

func tinyData() data.Config {
	return data.Config{
		Name: "tiny", Classes: 4, C: 1, H: 8, W: 8,
		Train: 128, Test: 64, Seed: 7, LabelNoise: 0.02,
	}
}

func tinyConfig() Config {
	return Config{
		Subnets:        3,
		Budgets:        []float64{0.15, 0.45, 0.85},
		Iterations:     12,
		BatchesPerIter: 2,
		BatchSize:      16,
		LR:             0.05,
		TeacherEpochs:  3,
		DistillEpochs:  3,
		Seed:           11,
	}
}

func buildTiny(t *testing.T, cfg Config, expansion float64) (*models.Model, *data.Dataset, int64) {
	t.Helper()
	train, _, err := data.Generate(tinyData())
	if err != nil {
		t.Fatal(err)
	}
	mo := models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8,
		Expansion: expansion, Subnets: cfg.Subnets, Rule: nn.RuleIncremental, Seed: 3,
	}
	m := models.LeNet3C1L(mo)
	mo.Expansion, mo.Subnets = 1, 1
	ref := models.LeNet3C1L(mo).Net.MACs(1)
	return m, train, ref
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Subnets != 4 || len(c.Budgets) != 4 || c.Beta != 0.9 || c.Gamma != 0.4 {
		t.Fatalf("defaults: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	bad := []Config{
		{Subnets: 2, Budgets: []float64{0.5}},
		{Subnets: 2, Budgets: []float64{0.5, 0.3}},
		{Subnets: 2, Budgets: []float64{0, 0.5}},
	}
	for i, c := range bad {
		c = c.WithDefaults()
		c.Subnets = 2
		if i == 0 {
			c.Budgets = []float64{0.5}
		} else if i == 1 {
			c.Budgets = []float64{0.5, 0.3}
		} else {
			c.Budgets = []float64{0, 0.5}
		}
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestConstructMeetsBudgetsAndStaysValid(t *testing.T) {
	cfg := tinyConfig()
	m, train, ref := buildTiny(t, cfg, 1.5)
	stats, err := Construct(m, train, cfg, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.BudgetsMet {
		t.Fatalf("budgets not met: MACs %v of ref %d (budgets %v)", stats.FinalMACs, ref, cfg.Budgets)
	}
	if err := m.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	// MACs strictly monotone across subnets (each adds something).
	for i := 1; i < len(stats.FinalMACs); i++ {
		if stats.FinalMACs[i] < stats.FinalMACs[i-1] {
			t.Fatalf("subnet MACs must be monotone: %v", stats.FinalMACs)
		}
	}
	if stats.UnitsMoved == 0 {
		t.Fatal("construction should move units for these budgets")
	}
}

func TestConstructRespectsMinUnits(t *testing.T) {
	cfg := tinyConfig()
	cfg.Budgets = []float64{0.01, 0.02, 0.85} // brutal small budgets
	cfg.MinUnitsPerSubnet = 1
	m, train, ref := buildTiny(t, cfg, 1.5)
	if _, err := Construct(m, train, cfg, ref); err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= cfg.Subnets; s++ {
		for _, mv := range m.Movable {
			if mv.OutAssignment().CountIn(s) < 1 {
				t.Fatalf("layer %s lost all units of subnet %d", mv.Name(), s)
			}
		}
	}
}

func TestConstructSubnetOutputsRemainAllClasses(t *testing.T) {
	cfg := tinyConfig()
	m, train, ref := buildTiny(t, cfg, 1.5)
	if _, err := Construct(m, train, cfg, ref); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(5), 0, 1)
	for s := 1; s <= cfg.Subnets; s++ {
		out := m.Net.Forward(x, nn.Eval(s))
		if out.Dim(1) != 4 {
			t.Fatalf("subnet %d output %v", s, out.Shape())
		}
	}
}

func TestConstructIncrementalReuseHoldsAfterConstruction(t *testing.T) {
	cfg := tinyConfig()
	m, train, ref := buildTiny(t, cfg, 1.5)
	if _, err := Construct(m, train, cfg, ref); err != nil {
		t.Fatal(err)
	}
	// Backbone activations of subnet s must be a superset of subnet
	// s−1's: run each conv/dense output and compare active units.
	x := tensor.New(1, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(9), 0, 1)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		_ = a
	}
	// End-to-end check via layer-by-layer forward at two subnets.
	for s := 2; s <= cfg.Subnets; s++ {
		outPrev := forwardCollect(m.Net, x, s-1)
		outCur := forwardCollect(m.Net, x, s)
		for li := range outPrev {
			lp, lc := outPrev[li], outCur[li]
			mv, ok := m.Net.Layers()[li].(nn.Masked)
			if !ok || mv.Rule() != nn.RuleIncremental {
				continue
			}
			checkSupersetActivations(t, mv, lp, lc, s-1)
		}
	}
}

// forwardCollect runs the network at subnet s and returns every
// layer's output.
func forwardCollect(net *nn.Network, x *tensor.Tensor, s int) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(net.Layers()))
	cur := x
	ctx := nn.Eval(s)
	for i, l := range net.Layers() {
		cur = l.Forward(cur, ctx)
		outs[i] = cur
	}
	return outs
}

// checkSupersetActivations asserts that units active in subnet sPrev
// have identical outputs in the larger subnet's pass.
func checkSupersetActivations(t *testing.T, m nn.Masked, prev, cur *tensor.Tensor, sPrev int) {
	t.Helper()
	a := m.OutAssignment()
	units := a.Units()
	per := prev.Len() / prev.Dim(0) / units // spatial elements per unit
	for u := 0; u < units; u++ {
		if a.ID(u) > sPrev {
			continue
		}
		for b := 0; b < prev.Dim(0); b++ {
			base := b*units*per + u*per
			for p := 0; p < per; p++ {
				if prev.Data()[base+p] != cur.Data()[base+p] {
					t.Fatalf("layer %s unit %d: activation changed between subnets (%g → %g) — reuse broken",
						m.Name(), u, prev.Data()[base+p], cur.Data()[base+p])
				}
			}
		}
	}
}

func TestEvaluateOnPerfectlySeparableTask(t *testing.T) {
	// A dataset labelled by the network itself must evaluate at 100%.
	cfg := tinyConfig()
	m, _, _ := buildTiny(t, cfg, 1.0)
	train, _, _ := data.Generate(tinyData())
	ctx := nn.Eval(cfg.Subnets)
	bx, _ := train.Batch(seq(train.Len()))
	logits := m.Net.Forward(bx, ctx)
	labels := make([]int, train.Len())
	for i := range labels {
		row := logits.Data()[i*4 : (i+1)*4]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		labels[i] = bi
	}
	ds := &data.Dataset{X: train.X, Y: labels, Classes: 4}
	if acc := Evaluate(m.Net, ds, cfg.Subnets, 16); acc != 1.0 {
		t.Fatalf("self-labelled accuracy %g", acc)
	}
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestTrainPlainReducesLoss(t *testing.T) {
	cfg := tinyConfig()
	m, train, _ := buildTiny(t, cfg, 1.0)
	rng := tensor.NewRNG(13)
	first := TrainPlain(m.Net, train, 1, 16, 0.05, 0.9, rng)
	last := TrainPlain(m.Net, train, 5, 16, 0.05, 0.9, rng)
	if last >= first {
		t.Fatalf("loss did not decrease: %g → %g", first, last)
	}
}

func TestDistillRunsWithAndWithoutTeacher(t *testing.T) {
	cfg := tinyConfig()
	cfg.DistillEpochs = 1
	m, train, ref := buildTiny(t, cfg, 1.2)
	if _, err := Construct(m, train, cfg, ref); err != nil {
		t.Fatal(err)
	}
	teacherModel := models.LeNet3C1L(models.Options{Classes: 4, InC: 1, InH: 8, InW: 8, Seed: 5})
	Distill(m.Net, teacherModel.Net, train, cfg) // with teacher
	Distill(m.Net, nil, train, cfg)              // ablation path
	if err := m.Net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(PipelineOptions{
		Build:     models.LeNet3C1L,
		Data:      tinyData(),
		Expansion: 1.4,
		Config:    tinyConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 3 {
		t.Fatalf("stats %v", res.Stats)
	}
	prevMAC := int64(0)
	for i, st := range res.Stats {
		if st.MACs < prevMAC {
			t.Fatalf("MACs not monotone: %+v", res.Stats)
		}
		prevMAC = st.MACs
		if st.MACFrac > tinyConfig().Budgets[i]+1e-9 {
			t.Fatalf("subnet %d over budget: %g > %g", st.Subnet, st.MACFrac, tinyConfig().Budgets[i])
		}
		if st.Accuracy < 0 || st.Accuracy > 1 {
			t.Fatalf("accuracy out of range: %+v", st)
		}
	}
	if !res.Construction.BudgetsMet {
		t.Fatal("budgets not met")
	}
	// The largest subnet should beat chance (4 classes → 0.25) after
	// this little training; allow generous slack but require signal.
	if res.Stats[2].Accuracy < 0.3 {
		t.Fatalf("largest subnet barely above chance: %g", res.Stats[2].Accuracy)
	}
}

func TestRunAblationFlags(t *testing.T) {
	res, err := Run(PipelineOptions{
		Build:              models.LeNet3C1L,
		Data:               tinyData(),
		Expansion:          1.2,
		Config:             tinyConfig(),
		DisableDistill:     true,
		DisableSuppression: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Construction.BudgetsMet {
		t.Fatal("ablation run must still meet budgets")
	}
}

func TestRankedUnitsOrdering(t *testing.T) {
	cfg := tinyConfig()
	m, _, _ := buildTiny(t, cfg, 1.0)
	m.Net.EnableImportance(cfg.Subnets)
	// Manually poke importance values: make unit 0 of layer 0 most
	// important, unit 1 least.
	imp := m.Movable[0].Importance()
	for k := range imp {
		imp[k][0] = 100
		imp[k][1] = 0.001
	}
	refs := rankedUnits(m.Movable, 1, cfg.Subnets, 1.5)
	if len(refs) == 0 {
		t.Fatal("no units ranked")
	}
	// Unit (0,1) must come before (0,0).
	pos := map[unitRef]int{}
	for i, r := range refs {
		pos[r] = i
	}
	if pos[unitRef{0, 1}] > pos[unitRef{0, 0}] {
		t.Fatal("least-important unit must rank first")
	}
}

func TestCombinedImportanceAlphaGrowth(t *testing.T) {
	cfg := tinyConfig()
	m, _, _ := buildTiny(t, cfg, 1.0)
	m.Net.EnableImportance(3)
	imp := m.Movable[0].Importance()
	imp[0][0], imp[1][0], imp[2][0] = 1, 1, 1
	// From subnet 1 with growth 2: α = 1,2,4 → total 7.
	got := combinedImportance(m.Movable[0], 0, 1, 3, 2)
	if got != 7 {
		t.Fatalf("combined importance %g want 7", got)
	}
	// From subnet 2: only k≥2 → 2+4=6.
	if got := combinedImportance(m.Movable[0], 0, 2, 3, 2); got != 6 {
		t.Fatalf("from subnet 2: %g want 6", got)
	}
}
