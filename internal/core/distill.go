package core

import (
	"steppingnet/internal/data"
	"steppingnet/internal/loss"
	"steppingnet/internal/nn"
	"steppingnet/internal/optim"
	"steppingnet/internal/tensor"
)

// Distill retrains the constructed subnets with knowledge
// distillation (§III-B): each epoch trains subnets in ascending order
// on the modified cost L' = γ·CE + (1−γ)·KL(teacher) of Eq. 4, with
// the same learning-rate suppression as construction. teacher is the
// pretrained original network; pass nil to retrain with plain
// cross-entropy (the Fig. 8 "w/o knowledge distillation" ablation).
func Distill(student *nn.Network, teacher *nn.Network, train *data.Dataset, cfg Config) {
	cfg = cfg.WithDefaults()
	rng := tensor.NewRNG(cfg.Seed ^ 0xD157)
	opt := optim.NewSGD(cfg.LR*0.5, cfg.Momentum, 1e-4)
	n := cfg.Subnets
	pool := tensor.NewPool()

	for e := 0; e < cfg.DistillEpochs; e++ {
		train.Batches(rng, cfg.BatchSize, func(x *tensor.Tensor, y []int) {
			var teacherProbs *tensor.Tensor
			if teacher != nil {
				tctx := &nn.Context{Subnet: 1, Scratch: pool}
				logits := teacher.Forward(x, tctx)
				teacherProbs = loss.Softmax(logits)
				pool.Put(logits)
			}
			for s := 1; s <= n; s++ {
				ctx := &nn.Context{Subnet: s, Mode: s, Train: true, Beta: cfg.Beta, Scratch: pool}
				logits := student.Forward(x, ctx)
				var grad *tensor.Tensor
				if teacherProbs != nil {
					_, grad = loss.Distill(logits, y, teacherProbs, cfg.Gamma)
				} else {
					_, grad = loss.CrossEntropy(logits, y)
				}
				pool.Put(student.Backward(grad, ctx))
				pool.Put(grad)
				opt.Step(student.Params())
			}
			pool.Put(teacherProbs)
		})
	}
}
