package core

import (
	"steppingnet/internal/data"
	"steppingnet/internal/loss"
	"steppingnet/internal/nn"
	"steppingnet/internal/optim"
	"steppingnet/internal/tensor"
)

// TrainPlain trains a network with softmax cross-entropy for the
// given number of epochs (used for the teacher / original network).
// It returns the final training loss.
func TrainPlain(net *nn.Network, ds *data.Dataset, epochs, batchSize int, lr, momentum float64, rng *tensor.RNG) float64 {
	opt := optim.NewSGD(lr, momentum, 1e-4)
	pool := tensor.NewPool()
	ctx := &nn.Context{Subnet: 1, Train: true, Scratch: pool}
	last := 0.0
	for e := 0; e < epochs; e++ {
		ds.Batches(rng, batchSize, func(x *tensor.Tensor, y []int) {
			logits := net.Forward(x, ctx)
			l, grad := loss.CrossEntropy(logits, y)
			last = l
			pool.Put(net.Backward(grad, ctx))
			pool.Put(grad)
			opt.Step(net.Params())
		})
	}
	return last
}

// Evaluate returns classification accuracy of the network running
// subnet s over the dataset.
func Evaluate(net *nn.Network, ds *data.Dataset, s, batchSize int) float64 {
	pool := tensor.NewPool()
	ctx := &nn.Context{Subnet: s, Mode: s, Scratch: pool}
	correct, total := 0, 0
	for start := 0; start < ds.Len(); start += batchSize {
		end := start + batchSize
		if end > ds.Len() {
			end = ds.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, y := ds.Batch(idx)
		logits := net.Forward(x, ctx)
		correct += int(loss.Accuracy(logits, y)*float64(len(y)) + 0.5)
		total += len(y)
		pool.Put(logits)
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// trainStep runs one forward/backward/update of the student at
// subnet s on a batch with cross-entropy, optional importance
// accumulation and β suppression. pool supplies (and receives back)
// the step's scratch buffers; nil is allowed.
func trainStep(net *nn.Network, opt *optim.SGD, x *tensor.Tensor, y []int, s int, beta float64, accumulate bool, pool *tensor.Pool) float64 {
	ctx := &nn.Context{Subnet: s, Mode: s, Train: true, Beta: beta, AccumulateImportance: accumulate, Scratch: pool}
	logits := net.Forward(x, ctx)
	l, grad := loss.CrossEntropy(logits, y)
	pool.Put(net.Backward(grad, ctx))
	pool.Put(grad)
	opt.Step(net.Params())
	return l
}
