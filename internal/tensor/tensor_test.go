package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 || x.Len() != 24 {
		t.Fatalf("rank=%d len=%d, want 3/24", x.Rank(), x.Len())
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("dims %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on negative dimension")
		}
	}()
	New(2, -1)
}

func TestScalarTensor(t *testing.T) {
	x := New()
	if x.Len() != 1 || x.Rank() != 0 {
		t.Fatalf("scalar tensor len=%d rank=%d", x.Len(), x.Rank())
	}
	x.Set(3.5)
	if x.At() != 3.5 {
		t.Fatal("scalar At/Set")
	}
}

func TestFromSliceAndAt(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(0, 0) != 1 || x.At(0, 2) != 3 || x.At(1, 0) != 4 || x.At(1, 2) != 6 {
		t.Fatalf("row-major layout broken: %v", x.Data())
	}
	x.Set(9, 1, 1)
	if x.At(1, 1) != 9 {
		t.Fatal("Set did not store")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestOffsetBounds(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on out-of-range index")
		}
	}()
	x.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Set(10, 0)
	if x.At(0, 0) != 10 {
		t.Fatal("Reshape must be a view")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on volume mismatch")
		}
	}()
	x.Reshape(3)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	a.Add(b)
	want := []float64{5, 7, 9}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Fatalf("Add: got %v", a.Data())
		}
	}
	a.Sub(b)
	for i, v := range a.Data() {
		if v != []float64{1, 2, 3}[i] {
			t.Fatalf("Sub: got %v", a.Data())
		}
	}
	a.Mul(b)
	for i, v := range a.Data() {
		if v != []float64{4, 10, 18}[i] {
			t.Fatalf("Mul: got %v", a.Data())
		}
	}
	a.Scale(0.5)
	if a.At(0) != 2 {
		t.Fatalf("Scale: got %v", a.Data())
	}
	a.AXPY(2, b)
	if a.At(2) != 9+12 {
		t.Fatalf("AXPY: got %v", a.Data())
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-3, 1, 2}, 3)
	if x.Sum() != 0 {
		t.Fatalf("Sum=%g", x.Sum())
	}
	if x.Max() != 2 {
		t.Fatalf("Max=%g", x.Max())
	}
	if x.AbsMax() != 3 {
		t.Fatalf("AbsMax=%g", x.AbsMax())
	}
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax=%d", x.ArgMax())
	}
	if math.Abs(x.Norm2()-math.Sqrt(14)) > 1e-12 {
		t.Fatalf("Norm2=%g", x.Norm2())
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2.0000001}, 2)
	if !Equal(a, b, 1e-3) {
		t.Fatal("want equal within tol")
	}
	if Equal(a, b, 1e-12) {
		t.Fatal("want unequal at tight tol")
	}
	c := FromSlice([]float64{1, 2}, 1, 2)
	if Equal(a, c, 1) {
		t.Fatal("different shapes must not be equal")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul got %v want %v", c.Data(), want)
		}
	}
}

func TestMatMulIntoAccumulate(t *testing.T) {
	a := FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	c := Ones(2, 2)
	MatMulInto(c, a, b, true)
	want := []float64{2, 3, 4, 5}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("accumulate got %v", c.Data())
		}
	}
	MatMulInto(c, a, b, false)
	for i, v := range c.Data() {
		if v != b.Data()[i] {
			t.Fatalf("overwrite got %v", c.Data())
		}
	}
}

// Property: MatMulTransA(A,B) equals MatMul(Aᵀ,B) computed naively.
func TestMatMulTransposedVariantsAgree(t *testing.T) {
	r := NewRNG(7)
	for trial := 0; trial < 25; trial++ {
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := New(k, m)
		b := New(k, n)
		a.FillNormal(r, 0, 1)
		b.FillNormal(r, 0, 1)
		got := MatMulTransA(a, b)
		at := New(m, k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				at.Set(a.At(i, j), j, i)
			}
		}
		want := MatMul(at, b)
		if !Equal(got, want, 1e-9) {
			t.Fatalf("TransA mismatch at trial %d", trial)
		}

		a2 := New(m, k)
		b2 := New(n, k)
		a2.FillNormal(r, 0, 1)
		b2.FillNormal(r, 0, 1)
		got2 := MatMulTransB(a2, b2)
		bt := New(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				bt.Set(b2.At(i, j), j, i)
			}
		}
		want2 := MatMul(a2, bt)
		if !Equal(got2, want2, 1e-9) {
			t.Fatalf("TransB mismatch at trial %d", trial)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on inner-dim mismatch")
		}
	}()
	MatMul(a, b)
}

// quick-check property: matmul distributes over addition,
// A·(B+C) == A·B + A·C.
func TestMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b, c := New(m, k), New(k, n), New(k, n)
		a.FillNormal(r, 0, 1)
		b.FillNormal(r, 0, 1)
		c.FillNormal(r, 0, 1)
		bc := b.Clone()
		bc.Add(c)
		left := MatMul(a, bc)
		right := MatMul(a, b)
		right.Add(MatMul(a, c))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConvGeomDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 8, InW: 8, OutC: 4, K: 3, Stride: 1, Pad: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.OutH() != 8 || g.OutW() != 8 {
		t.Fatalf("same-pad conv dims %dx%d", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 5, InW: 5, OutC: 1, K: 3, Stride: 2, Pad: 0}
	if g2.OutH() != 2 || g2.OutW() != 2 {
		t.Fatalf("strided dims %dx%d", g2.OutH(), g2.OutW())
	}
}

func TestConvGeomValidateErrors(t *testing.T) {
	bad := []ConvGeom{
		{InC: 0, InH: 4, InW: 4, OutC: 1, K: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, OutC: 0, K: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, OutC: 1, K: 0, Stride: 1},
		{InC: 1, InH: 4, InW: 4, OutC: 1, K: 3, Stride: 0},
		{InC: 1, InH: 4, InW: 4, OutC: 1, K: 3, Stride: 1, Pad: -1},
		{InC: 1, InH: 2, InW: 2, OutC: 1, K: 5, Stride: 1},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Fatalf("case %d: want error for %+v", i, g)
		}
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1×1 kernel, stride 1, no pad: im2col is the identity layout.
	g := ConvGeom{InC: 2, InH: 3, InW: 3, OutC: 1, K: 1, Stride: 1}
	img := make([]float64, 18)
	for i := range img {
		img[i] = float64(i)
	}
	col := make([]float64, g.ColRows()*g.ColCols())
	g.Im2Col(img, col)
	// Row p of col holds pixel p of each channel.
	for p := 0; p < 9; p++ {
		if col[p*2] != float64(p) || col[p*2+1] != float64(9+p) {
			t.Fatalf("pixel %d: got (%g,%g)", p, col[p*2], col[p*2+1])
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, OutC: 1, K: 3, Stride: 1, Pad: 1}
	img := []float64{1, 2, 3, 4}
	col := make([]float64, g.ColRows()*g.ColCols())
	g.Im2Col(img, col)
	// Output position (0,0): the 3×3 patch centred at (0,0) has the
	// image occupying the bottom-right 2×2.
	row := col[:9]
	want := []float64{0, 0, 0, 0, 1, 2, 0, 3, 4}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("padded patch got %v want %v", row, want)
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col — for all x,y:
// <Im2Col(x), y> == <x, Col2Im(y)>. This is exactly the condition for
// the conv backward pass to produce correct input gradients.
func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	r := NewRNG(42)
	for trial := 0; trial < 30; trial++ {
		g := ConvGeom{
			InC:    1 + r.Intn(3),
			InH:    3 + r.Intn(5),
			InW:    3 + r.Intn(5),
			OutC:   1,
			K:      1 + r.Intn(3),
			Stride: 1 + r.Intn(2),
			Pad:    r.Intn(2),
		}
		if g.Validate() != nil {
			continue
		}
		x := make([]float64, g.InC*g.InH*g.InW)
		y := make([]float64, g.ColRows()*g.ColCols())
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range y {
			y[i] = r.NormFloat64()
		}
		cx := make([]float64, len(y))
		g.Im2Col(x, cx)
		lhs := 0.0
		for i := range y {
			lhs += cx[i] * y[i]
		}
		xy := make([]float64, len(x))
		g.Col2Im(y, xy)
		rhs := 0.0
		for i := range x {
			rhs += x[i] * xy[i]
		}
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("trial %d geom %+v: <Ax,y>=%g <x,Aᵀy>=%g", trial, g, lhs, rhs)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds should differ")
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must be remapped")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	n := 20000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal moments off: mean=%g var=%g", mean, variance)
	}
}

func TestKaimingInitScale(t *testing.T) {
	r := NewRNG(3)
	w := New(200, 50)
	w.FillKaiming(r, 50)
	variance := 0.0
	for _, v := range w.Data() {
		variance += v * v
	}
	variance /= float64(w.Len())
	if math.Abs(variance-2.0/50) > 0.01 {
		t.Fatalf("Kaiming variance %g, want ~%g", variance, 2.0/50)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(77)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("splits should differ")
	}
}
