package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// gemmMinParFlops is the multiply-add count (m·k·n) below which the
// matmul kernels stay on the current goroutine: for small shapes the
// cost of waking workers exceeds the multiply itself. The default
// corresponds to roughly a 64×64×64 product. It is a variable so the
// equivalence tests can force both paths.
var gemmMinParFlops = 1 << 18

// rowsPerTask is the granularity of the work queue: each task is a
// block of output rows. Small enough to balance ragged workloads,
// large enough that the atomic counter is not contended.
const rowsPerTask = 8

// helperCount tracks matmul helper goroutines across ALL concurrent
// kernel calls, capping them at GOMAXPROCS-1 globally. Without the
// cap, a kernel call made from inside an already-parallel caller
// (e.g. the batch-parallel inference engine's workers) would fan out
// again and oversubscribe the cores; with it, nested calls find the
// budget spent and simply run serially on their own goroutine.
var helperCount atomic.Int64

// parallelRows runs fn over [0,m) split into rowsPerTask-sized
// blocks, with up to GOMAXPROCS workers (the calling goroutine
// included) stealing blocks off a shared atomic counter. fn must be
// safe for concurrent invocation on disjoint ranges.
func parallelRows(m int, fn func(i0, i1 int)) {
	nTasks := (m + rowsPerTask - 1) / rowsPerTask
	workers := runtime.GOMAXPROCS(0)
	if workers > nTasks {
		workers = nTasks
	}
	if workers <= 1 {
		fn(0, m)
		return
	}
	budget := int64(runtime.GOMAXPROCS(0) - 1)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers-1; w++ {
		if helperCount.Add(1) > budget {
			helperCount.Add(-1)
			break // cores already busy (possibly a nested call): stay serial
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer helperCount.Add(-1)
			stealRows(m, &next, fn)
		}()
	}
	stealRows(m, &next, fn) // the caller is always worker 0
	wg.Wait()
}

// stealRows claims row blocks until the queue is drained.
func stealRows(m int, next *atomic.Int64, fn func(i0, i1 int)) {
	for {
		i0 := (int(next.Add(1)) - 1) * rowsPerTask
		if i0 >= m {
			return
		}
		i1 := i0 + rowsPerTask
		if i1 > m {
			i1 = m
		}
		fn(i0, i1)
	}
}
