package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file holds the intra-op parallelism substrate: a persistent,
// allocation-free worker arena that the GEMM kernels and the im2col
// gather fan out over, plus the global helper budget that keeps every
// layer of parallelism in the repo (kernel fan-out, the inference
// engine's shard workers) from oversubscribing the cores together.
//
// Two split axes exist, each with its own engagement threshold:
//
//   - row split: output rows are divided into blocks that workers
//     steal off a shared atomic counter. Blocks are always aligned to
//     an even row boundary, so the kernels' two-rows-per-pass
//     structure pairs exactly the same rows as a serial run — which
//     makes the parallel result BITWISE identical to the serial one
//     at every worker count, on both GEMM backends.
//   - column split (A·Bᵀ with a single output row, the batch-1 dense
//     shape): output columns are divided into blocks aligned to the
//     kernels' four-column dot-product tiles, so every element goes
//     through the same tile-vs-tail code path as a serial run —
//     again bitwise identical at every worker count.
//
// The bitwise contract is pinned by TestRowShardBitwiseInvariance /
// TestColumnShardBitwiseInvariance here and by
// TestIntraLayerParallelMatchesSerial at the engine level.

// gemmMinParFlops is the multiply-add count (m·k·n) below which a
// row-splittable matmul stays on the current goroutine. The persistent
// arena makes fan-out much cheaper than the old spawn-per-call
// scheduler, so the threshold sits well below the historical 64³: the
// serve-critical LeNet conv shapes (≈70–250 kflop) now fan out. It is
// a variable so the equivalence tests can force both paths.
var gemmMinParFlops = 1 << 16

// gemmMinParColFlops is the column-split threshold (k·n for the
// single-row A·Bᵀ product). Column blocks carry no redundant work at
// all — each worker computes whole dot products — so the bar is lower
// than the row threshold. A variable for the same testing reason.
var gemmMinParColFlops = 1 << 13

// im2colMinParCells is the col-matrix volume (rows × cols) below
// which the im2col gather stays serial: the gather is a pure copy, so
// it only pays for fan-out once the matrix is a few pages big.
var im2colMinParCells = 1 << 12

// rowsPerTask is the row-split granularity for matrices with plenty
// of rows: small enough to balance ragged workloads, large enough
// that the steal counter is not contended. Matrices with few rows
// fall back to two-row blocks — the smallest unit that preserves the
// kernels' row pairing (and therefore bitwise equality with serial).
const rowsPerTask = 8

// colsPerTask is the column-split granularity: one four-wide
// dot-product tile per block, the kernels' natural unit.
const colsPerTask = 4

// im2colRowsPerTask is the gather granularity (no alignment
// requirement — the gather is elementwise — but kept a multiple of
// two for symmetry with the row split that consumes the matrix).
const im2colRowsPerTask = 8

// helperCount tracks busy parallel helpers across ALL concurrent
// users — kernel fan-outs here and the inference engine's intra-layer
// shard workers (via ClaimParallelHelpers). Capping the total at
// GOMAXPROCS-1 means a kernel call made from inside an
// already-parallel caller finds the budget spent and simply runs
// serially on its own goroutine instead of oversubscribing the cores.
var helperCount atomic.Int64

// ClaimParallelHelpers claims up to max helper slots from the global
// GOMAXPROCS-1 parallelism budget and returns how many were granted
// (possibly zero). Callers that fan work out across their own worker
// goroutines — the inference engine's cooperative layer sharding —
// claim before dispatching and release when the fan-in completes, so
// kernel-level and engine-level parallelism share one budget instead
// of multiplying.
func ClaimParallelHelpers(max int) int {
	if max <= 0 {
		return 0
	}
	budget := int64(runtime.GOMAXPROCS(0) - 1)
	claimed := 0
	for claimed < max {
		if helperCount.Add(1) > budget {
			helperCount.Add(-1)
			break
		}
		claimed++
	}
	return claimed
}

// ReleaseParallelHelpers returns n slots claimed with
// ClaimParallelHelpers to the budget.
func ReleaseParallelHelpers(n int) {
	if n > 0 {
		helperCount.Add(int64(-n))
	}
}

// arenaKind selects the operation a stolen block executes. The arena
// deliberately runs a closed set of operations described by plain
// struct fields instead of accepting closures: a closure capturing
// kernel operands would escape to the heap on every call and break
// the zero-allocation contract of the forward and step paths.
type arenaKind int8

const (
	arenaGemmRows arenaKind = iota
	arenaGemmTransARows
	arenaGemmTransBRows
	arenaGemmTransBCols
	arenaIm2Col
)

// arenaJob describes one fanned-out operation. span is the stealable
// index space (output rows, output columns, or im2col rows) and grain
// the block size; all other fields are operands for the kind.
type arenaJob struct {
	kind    arenaKind
	c, a, b []float64
	m, k, n int
	acc     bool
	geom    ConvGeom
	img     []float64
	span    int
	grain   int
}

// arena is the persistent worker set. Workers are spawned lazily (up
// to GOMAXPROCS-1) and then parked on the wake channel forever; one
// fanned-out operation runs at a time (mu), concurrent attempts
// simply run serially on their caller. All state is package-global so
// a fan-out performs no allocation whatsoever.
var arena struct {
	mu      sync.Mutex // held by the caller for the whole operation
	job     arenaJob
	next    atomic.Int64 // block steal cursor
	wake    chan struct{}
	done    chan struct{}
	started int // guarded by mu (spawning happens mid-operation)
}

func init() {
	// Deep buffers so wake/done sends never block regardless of
	// GOMAXPROCS changes mid-process.
	arena.wake = make(chan struct{}, 1024)
	arena.done = make(chan struct{}, 1024)
}

// ensureArenaWorkers spawns missing persistent workers up to n.
// Called with arena.mu held, which serializes all spawning.
func ensureArenaWorkers(n int) {
	for arena.started < n {
		arena.started++
		go arenaWorker()
	}
}

// arenaWorker parks until woken, helps drain the current job's
// blocks, reports done, and parks again. It reads arena.job only
// between a wake receive and its done send, which the caller's
// mu-guarded protocol orders strictly before the next job write.
func arenaWorker() {
	for range arena.wake {
		arenaSteal(&arena.job)
		arena.done <- struct{}{}
	}
}

// arenaSteal claims blocks off the job's cursor until drained.
func arenaSteal(j *arenaJob) {
	blocks := (j.span + j.grain - 1) / j.grain
	for {
		t := int(arena.next.Add(1)) - 1
		if t >= blocks {
			return
		}
		i0 := t * j.grain
		i1 := i0 + j.grain
		if i1 > j.span {
			i1 = j.span
		}
		runArenaSpan(j, i0, i1)
	}
}

// runArenaSpan executes one block of the job. Every kind computes
// each output element exactly as the serial kernel would — same
// pairing, same tiling, same accumulation order — so results do not
// depend on how blocks land on workers.
func runArenaSpan(j *arenaJob, i0, i1 int) {
	switch j.kind {
	case arenaGemmRows:
		gemmRowsImpl(j.c, j.a, j.b, i0, i1, j.k, j.n, j.acc)
	case arenaGemmTransARows:
		gemmTransARowsImpl(j.c, j.a, j.b, i0, i1, j.m, j.k, j.n, j.acc)
	case arenaGemmTransBRows:
		gemmTransBRowsImpl(j.c, j.a, j.b, i0, i1, j.k, j.n, j.acc)
	case arenaGemmTransBCols:
		// One output row: columns [i0,i1) of C are rows [i0,i1) of B,
		// and the sub-product is contiguous in both — the whole reason
		// the column split restricts itself to m == 1.
		gemmTransBRowsImpl(j.c[i0:i1], j.a, j.b[i0*j.k:i1*j.k], 0, 1, j.k, i1-i0, j.acc)
	case arenaIm2Col:
		j.geom.Im2ColRange(j.img, j.c[i0*j.geom.ColCols():i1*j.geom.ColCols()], i0, i1)
	}
}

// tryArena attempts to fan job out over the worker arena. It returns
// false — and has done no work — when the job is too small to split,
// the machine has no spare cores, the helper budget is spent, or
// another fan-out is already in flight; the caller then runs the
// serial path. On success the job is complete when it returns.
func tryArena(job arenaJob) bool {
	blocks := (job.span + job.grain - 1) / job.grain
	if blocks < 2 || runtime.GOMAXPROCS(0) <= 1 {
		return false
	}
	want := blocks - 1
	if max := runtime.GOMAXPROCS(0) - 1; want > max {
		want = max
	}
	claimed := ClaimParallelHelpers(want)
	if claimed == 0 {
		return false
	}
	if !arena.mu.TryLock() {
		ReleaseParallelHelpers(claimed)
		return false
	}
	ensureArenaWorkers(claimed)
	arena.job = job
	arena.next.Store(0)
	for i := 0; i < claimed; i++ {
		arena.wake <- struct{}{}
	}
	arenaSteal(&arena.job) // the caller always participates
	for i := 0; i < claimed; i++ {
		<-arena.done
	}
	// Drop the operand references before unlocking: the global job
	// slot would otherwise pin the caller's buffers until the next
	// fan-out happens to overwrite it.
	arena.job = arenaJob{}
	arena.mu.Unlock()
	ReleaseParallelHelpers(claimed)
	return true
}

// rowSplitGrain picks the row-block size: rowsPerTask when there are
// plenty of rows, otherwise the minimal pair-preserving block so that
// short matrices (a 16-row conv3 product) can still split 4+ ways.
func rowSplitGrain(m int) int {
	if m >= 4*rowsPerTask {
		return rowsPerTask
	}
	return 2
}

// gemmRowsParallel fans rows of one of the three row kernels out over
// the arena; false means the caller must run serially.
func gemmRowsParallel(kind arenaKind, c, a, b []float64, m, k, n int, accumulate bool) bool {
	return tryArena(arenaJob{
		kind: kind, c: c, a: a, b: b, m: m, k: k, n: n, acc: accumulate,
		span: m, grain: rowSplitGrain(m),
	})
}

// gemmColsParallel fans the columns of a single-row A·Bᵀ product out
// over the arena; false means the caller must run serially.
func gemmColsParallel(c, a, b []float64, k, n int, accumulate bool) bool {
	return tryArena(arenaJob{
		kind: arenaGemmTransBCols, c: c, a: a, b: b, m: 1, k: k, n: n, acc: accumulate,
		span: n, grain: colsPerTask,
	})
}

// ParallelIm2Col is Im2Col with the output rows fanned out over the
// worker arena when the matrix is big enough to pay for it. The
// gather is elementwise, so the result is identical to the serial
// Im2Col at any worker count. Safe and allocation-free to call from
// hot paths; degrades to the serial gather on small shapes, single
// cores and exhausted budgets.
func ParallelIm2Col(g ConvGeom, img, col []float64) {
	r := g.ColRows()
	g.checkIm2Col(img, col, 0, r)
	if r*g.ColCols() >= im2colMinParCells &&
		tryArena(arenaJob{kind: arenaIm2Col, geom: g, img: img, c: col, span: r, grain: im2colRowsPerTask}) {
		return
	}
	g.Im2ColRange(img, col, 0, r)
}
