package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution. All layers in
// this library use square kernels and symmetric padding, matching the
// LeNet/VGG topologies in the paper.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	OutC          int // output channels (filters)
	K             int // kernel size (K×K)
	Stride        int
	Pad           int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.K)/g.Stride + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.K)/g.Stride + 1 }

// ColRows returns the number of rows of the im2col matrix for one
// image: OutH*OutW.
func (g ConvGeom) ColRows() int { return g.OutH() * g.OutW() }

// ColCols returns the number of columns: InC*K*K.
func (g ConvGeom) ColCols() int { return g.InC * g.K * g.K }

// Validate reports a descriptive error for ill-formed geometry.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	case g.OutC <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive output channels %+v", g)
	case g.K <= 0 || g.Stride <= 0 || g.Pad < 0:
		return fmt.Errorf("tensor: conv geometry has invalid kernel/stride/pad %+v", g)
	case g.OutH() <= 0 || g.OutW() <= 0:
		return fmt.Errorf("tensor: conv geometry yields empty output %+v", g)
	}
	return nil
}

// Im2Col expands one image (InC×InH×InW, flattened) into a
// (OutH*OutW)×(InC*K*K) matrix written into col, so convolution
// becomes a matmul against the (OutC)×(InC*K*K) filter matrix.
// col must have length ColRows()*ColCols().
func (g ConvGeom) Im2Col(img, col []float64) {
	g.checkIm2Col(img, col, 0, g.ColRows())
	g.Im2ColRange(img, col, 0, g.ColRows())
}

// checkIm2Col validates an im2col gather of rows [r0,r1) into col.
func (g ConvGeom) checkIm2Col(img, col []float64, r0, r1 int) {
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	if len(col) != (r1-r0)*g.ColCols() {
		panic(fmt.Sprintf("tensor: Im2Col buffer length %d, want %d", len(col), (r1-r0)*g.ColCols()))
	}
}

// Im2ColRange gathers output positions [r0,r1) — row p of the full
// im2col matrix is output pixel (p/OutW, p%OutW) — into col, whose
// first row corresponds to position r0 (len (r1-r0)·ColCols()). It is
// the shardable core of Im2Col: disjoint ranges touch disjoint parts
// of col, so cooperating workers (the arena's ParallelIm2Col, the
// engine's intra-layer shards) gather one image concurrently. No
// bounds validation; exported callers go through Im2Col or
// ParallelIm2Col, and the engine shard path validates once per layer.
func (g ConvGeom) Im2ColRange(img, col []float64, r0, r1 int) {
	outW, k := g.OutW(), g.K
	cols := g.ColCols()
	oy, ox := r0/outW, r0%outW
	for p := r0; p < r1; p++ {
		row := col[(p-r0)*cols : (p-r0+1)*cols]
		idx := 0
		for c := 0; c < g.InC; c++ {
			base := c * g.InH * g.InW
			for ky := 0; ky < k; ky++ {
				iy := oy*g.Stride + ky - g.Pad
				if iy < 0 || iy >= g.InH {
					for kx := 0; kx < k; kx++ {
						row[idx] = 0
						idx++
					}
					continue
				}
				rowBase := base + iy*g.InW
				for kx := 0; kx < k; kx++ {
					ix := ox*g.Stride + kx - g.Pad
					if ix < 0 || ix >= g.InW {
						row[idx] = 0
					} else {
						row[idx] = img[rowBase+ix]
					}
					idx++
				}
			}
		}
		if ox++; ox == outW {
			ox, oy = 0, oy+1
		}
	}
}

// Col2Im scatters a column matrix produced by Im2Col back into an
// image, accumulating where patches overlap. It is the adjoint of
// Im2Col and implements the input-gradient path of convolution.
// img must be zeroed by the caller if a fresh gradient is wanted.
func (g ConvGeom) Col2Im(col, img []float64) {
	outH, outW, k := g.OutH(), g.OutW(), g.K
	cols := g.ColCols()
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	if len(col) != g.ColRows()*cols {
		panic(fmt.Sprintf("tensor: Col2Im buffer length %d, want %d", len(col), g.ColRows()*cols))
	}
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			row := col[(oy*outW+ox)*cols : (oy*outW+ox+1)*cols]
			idx := 0
			for c := 0; c < g.InC; c++ {
				base := c * g.InH * g.InW
				for ky := 0; ky < k; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						idx += k
						continue
					}
					rowBase := base + iy*g.InW
					for kx := 0; kx < k; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix >= 0 && ix < g.InW {
							img[rowBase+ix] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
}
