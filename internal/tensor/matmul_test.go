package tensor

import (
	"math"
	"runtime"
	"testing"
)

// naiveMatMul is the reference kernel every optimized path is checked
// against: a plain triple loop with no blocking, unrolling or
// zero-skipping.
func naiveMatMul(a, b *Tensor, transA, transB bool) *Tensor {
	var m, k, n int
	at := func(i, p int) float64 {
		if transA {
			return a.At(p, i)
		}
		return a.At(i, p)
	}
	bt := func(p, j int) float64 {
		if transB {
			return b.At(j, p)
		}
		return b.At(p, j)
	}
	if transA {
		m, k = a.Dim(1), a.Dim(0)
	} else {
		m, k = a.Dim(0), a.Dim(1)
	}
	if transB {
		n = b.Dim(0)
	} else {
		n = b.Dim(1)
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += at(i, p) * bt(p, j)
			}
			c.Set(s, i, j)
		}
	}
	return c
}

// randMat returns an m×n matrix with a mix of normal values and exact
// zeros, so the kernels' zero-skip paths are exercised.
func randMat(r *RNG, m, n int) *Tensor {
	t := New(m, n)
	d := t.Data()
	for i := range d {
		if r.Intn(4) == 0 {
			continue // leave exact zero
		}
		d[i] = r.NormFloat64()
	}
	return t
}

func maxAbsDiff(a, b *Tensor) float64 {
	worst := 0.0
	for i, v := range a.Data() {
		if d := math.Abs(v - b.Data()[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// forceParallel routes every Gemm through the work-stealing path
// regardless of size, with several workers even on a 1-CPU machine,
// then restores the defaults.
func forceParallel(t *testing.T) {
	t.Helper()
	oldFlops := gemmMinParFlops
	oldProcs := runtime.GOMAXPROCS(4)
	gemmMinParFlops = 0
	t.Cleanup(func() {
		gemmMinParFlops = oldFlops
		runtime.GOMAXPROCS(oldProcs)
	})
}

var kernelShapes = []int{1, 3, 17, 64, 130}

// checkAllShapes runs fn over the full (m,k,n) cross product of
// kernelShapes.
func checkAllShapes(t *testing.T, fn func(t *testing.T, m, k, n int)) {
	t.Helper()
	for _, m := range kernelShapes {
		for _, k := range kernelShapes {
			for _, n := range kernelShapes {
				fn(t, m, k, n)
			}
		}
	}
}

// TestBlockedKernelMatchesNaive asserts the optimized serial kernels
// agree with the naive reference within 1e-12 across odd and even
// shapes (both unroll remainders and full blocks).
func TestBlockedKernelMatchesNaive(t *testing.T) {
	r := NewRNG(11)
	checkAllShapes(t, func(t *testing.T, m, k, n int) {
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		if d := maxAbsDiff(MatMul(a, b), naiveMatMul(a, b, false, false)); d > 1e-12 {
			t.Fatalf("MatMul %dx%dx%d diverges from naive by %g", m, k, n, d)
		}
		at := randMat(r, k, m)
		if d := maxAbsDiff(MatMulTransA(at, b), naiveMatMul(at, b, true, false)); d > 1e-12 {
			t.Fatalf("MatMulTransA %dx%dx%d diverges from naive by %g", m, k, n, d)
		}
		bt := randMat(r, n, k)
		if d := maxAbsDiff(MatMulTransB(a, bt), naiveMatMul(a, bt, false, true)); d > 1e-12 {
			t.Fatalf("MatMulTransB %dx%dx%d diverges from naive by %g", m, k, n, d)
		}
	})
}

// TestParallelKernelMatchesNaive repeats the sweep with the
// work-stealing parallel path forced on, so row-block boundaries and
// concurrent writes are covered (run with -race to check the
// scheduler).
func TestParallelKernelMatchesNaive(t *testing.T) {
	forceParallel(t)
	r := NewRNG(13)
	checkAllShapes(t, func(t *testing.T, m, k, n int) {
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		if d := maxAbsDiff(MatMul(a, b), naiveMatMul(a, b, false, false)); d > 1e-12 {
			t.Fatalf("parallel MatMul %dx%dx%d diverges by %g", m, k, n, d)
		}
		at := randMat(r, k, m)
		if d := maxAbsDiff(MatMulTransA(at, b), naiveMatMul(at, b, true, false)); d > 1e-12 {
			t.Fatalf("parallel MatMulTransA %dx%dx%d diverges by %g", m, k, n, d)
		}
		bt := randMat(r, n, k)
		if d := maxAbsDiff(MatMulTransB(a, bt), naiveMatMul(a, bt, false, true)); d > 1e-12 {
			t.Fatalf("parallel MatMulTransB %dx%dx%d diverges by %g", m, k, n, d)
		}
	})
}

// TestIntoVariantsAccumulate checks the (+)= contract of all three
// Into variants against explicit addition.
func TestIntoVariantsAccumulate(t *testing.T) {
	r := NewRNG(17)
	m, k, n := 17, 9, 13
	base := randMat(r, m, n)

	a, b := randMat(r, m, k), randMat(r, k, n)
	c := base.Clone()
	MatMulInto(c, a, b, true)
	want := base.Clone()
	want.Add(naiveMatMul(a, b, false, false))
	if d := maxAbsDiff(c, want); d > 1e-12 {
		t.Fatalf("MatMulInto accumulate off by %g", d)
	}

	at := randMat(r, k, m)
	c = base.Clone()
	MatMulTransAInto(c, at, b, true)
	want = base.Clone()
	want.Add(naiveMatMul(at, b, true, false))
	if d := maxAbsDiff(c, want); d > 1e-12 {
		t.Fatalf("MatMulTransAInto accumulate off by %g", d)
	}

	bt := randMat(r, n, k)
	c = base.Clone()
	MatMulTransBInto(c, a, bt, true)
	want = base.Clone()
	want.Add(naiveMatMul(a, bt, false, true))
	if d := maxAbsDiff(c, want); d > 1e-12 {
		t.Fatalf("MatMulTransBInto accumulate off by %g", d)
	}

	// Overwrite mode must clear prior contents.
	c = base.Clone()
	MatMulInto(c, a, b, false)
	if d := maxAbsDiff(c, naiveMatMul(a, b, false, false)); d > 1e-12 {
		t.Fatalf("MatMulInto overwrite off by %g", d)
	}
}

// TestPoolRecycles pins the pool contract: same-volume buffers are
// recycled (and zeroed), different volumes are not confused, and a
// nil pool degrades to plain allocation.
func TestPoolRecycles(t *testing.T) {
	p := NewPool()
	a := p.Get(4, 8)
	a.Fill(3)
	p.Put(a)
	b := p.Get(8, 4) // same volume, different shape
	if b != a {
		t.Fatal("pool did not recycle same-volume tensor")
	}
	if b.Dim(0) != 8 || b.Dim(1) != 4 {
		t.Fatalf("recycled shape %v, want [8 4]", b.Shape())
	}
	for _, v := range b.Data() {
		if v != 0 {
			t.Fatal("recycled tensor not zeroed")
		}
	}
	c := p.Get(4, 8) // pool drained → fresh allocation
	if c == a {
		t.Fatal("pool handed out a live tensor twice")
	}
	if p.Hits != 1 || p.Gets != 3 {
		t.Fatalf("stats hits=%d gets=%d, want 1/3", p.Hits, p.Gets)
	}

	var nilPool *Pool
	d := nilPool.Get(2, 2)
	if d == nil || d.Len() != 4 {
		t.Fatal("nil pool Get must allocate")
	}
	nilPool.Put(d) // must not panic
}
