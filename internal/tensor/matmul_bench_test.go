package tensor

import "testing"

// Kernel microbenchmarks at the shapes the conv/dense layers actually
// hit, for tuning the register tiling without running full models.

func benchMats(m, k, n int) (c, a, b []float64) {
	r := NewRNG(5)
	a = make([]float64, m*k)
	b = make([]float64, k*n)
	c = make([]float64, m*n)
	for i := range a {
		a[i] = r.NormFloat64()
	}
	for i := range b {
		b[i] = r.NormFloat64()
	}
	return c, a, b
}

func BenchmarkGemm64(bm *testing.B) {
	c, a, b := benchMats(64, 64, 64)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		Gemm(c, a, b, 64, 64, 64, false)
	}
}

func BenchmarkGemmTransA64(bm *testing.B) {
	c, a, b := benchMats(64, 64, 64)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		GemmTransA(c, a, b, 64, 64, 64, false)
	}
}

func BenchmarkGemmTransB64(bm *testing.B) {
	c, a, b := benchMats(64, 64, 64)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		GemmTransB(c, a, b, 64, 64, 64, false)
	}
}

// BenchmarkGemmTransBConvShape mirrors the second conv layer of the
// benchmark LeNet: weff (84×423) times an im2col matrix (64×423).
func BenchmarkGemmTransBConvShape(bm *testing.B) {
	c, a, b := benchMats(84, 423, 64)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		GemmTransB(c, a, b, 84, 423, 64, false)
	}
}

// BenchmarkGemmConvShape is the same product as
// BenchmarkGemmTransBConvShape computed via the ikj kernel on a
// pre-transposed weight matrix (the conv forward's layout).
func BenchmarkGemmConvShape(bm *testing.B) {
	c, a, b := benchMats(64, 423, 84)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		Gemm(c, a, b, 64, 423, 84, false)
	}
}
