package tensor

// GEMM backend dispatch. The three row-range kernels behind Gemm,
// GemmTransA and GemmTransB are selected once at startup through the
// function variables below: the portable scalar kernels (matmul.go)
// are the default everywhere, and on amd64 builds without the purego
// tag an init in gemm_amd64.go swaps in AVX2+FMA assembly kernels
// when the CPU supports them (see detectAVX2FMA) and the
// STEPPINGNET_NOSIMD environment variable is unset. Call sites —
// internal/nn, internal/infer, the Tensor wrappers — are oblivious to
// the choice, and the work-stealing row parallelism in parallel.go
// composes identically on top of either backend because dispatch
// happens per row range, below the fan-out.

// NoSIMDEnv, when set to any non-empty value in the environment at
// process start, forces the scalar GEMM backend even on CPUs whose
// SIMD features were detected. It is the runtime escape hatch the
// purego build tag provides at compile time.
const NoSIMDEnv = "STEPPINGNET_NOSIMD"

// The active row-range kernels. They all compute rows [i0,i1) of the
// respective product and must be safe for concurrent invocation on
// disjoint row ranges (parallelRows fans them out).
var (
	gemmRowsImpl       func(c, a, b []float64, i0, i1, k, n int, accumulate bool)    = gemmRows
	gemmTransARowsImpl func(c, a, b []float64, i0, i1, m, k, n int, accumulate bool) = gemmTransARows
	gemmTransBRowsImpl func(c, a, b []float64, i0, i1, k, n int, accumulate bool)    = gemmTransBRows
)

// backendName names the backend the impl variables currently point
// at, for diagnostics and the benchmark baseline.
var backendName = "scalar"

// Backend reports the active GEMM backend: "avx2" when the assembly
// kernels are selected, "scalar" otherwise (non-amd64 builds, the
// purego build tag, missing CPU features, or the STEPPINGNET_NOSIMD
// override).
func Backend() string { return backendName }

// useScalarBackend (re)selects the portable scalar kernels. It is the
// fallback arm of the amd64 init and a test hook for cross-checking
// backends; it is not safe to call concurrently with running kernels.
func useScalarBackend() {
	backendName = "scalar"
	gemmRowsImpl = gemmRows
	gemmTransARowsImpl = gemmTransARows
	gemmTransBRowsImpl = gemmTransBRows
}
