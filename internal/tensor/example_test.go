package tensor_test

import (
	"fmt"

	"steppingnet/internal/tensor"
)

// ExamplePool shows the ownership discipline that makes hot paths
// allocation-free: Get hands out a tensor the caller owns, Put
// returns it, and a later Get of the same volume recycles the backing
// array — even under a different shape. A nil *Pool degrades to plain
// allocation, so library code can thread an optional pool without
// branching.
func ExamplePool() {
	p := tensor.NewPool()

	a := p.Get(8, 32, 8, 8) // owned by us until Put
	p.Put(a)

	b := p.Get(8, 2048) // same element count: the buffer is reborn reshaped
	fmt.Println("recycled:", &a.Data()[0] == &b.Data()[0])
	fmt.Println("shape:", b.Shape())
	fmt.Println("hits/gets:", p.Hits, "/", p.Gets)
	p.Put(b)

	var nilPool *tensor.Pool
	c := nilPool.Get(4, 4) // nil-safe: plain allocation
	nilPool.Put(c)         // no-op
	fmt.Println("nil pool works:", c.Len() == 16)
	// Output:
	// recycled: true
	// shape: [8 2048]
	// hits/gets: 1 / 2
	// nil pool works: true
}
