// Package tensor provides the dense numerical arrays underlying the
// SteppingNet reproduction: shapes, element access, BLAS-free linear
// algebra, im2col-based convolution support and deterministic random
// initialization. It is deliberately small — float64, row-major,
// CPU-only — because the paper's claims concern accuracy versus MAC
// counts, not wall-clock throughput on accelerators.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major float64 array with an explicit shape.
// The zero value is an empty tensor; use New, Zeros or FromSlice to
// construct usable values.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. It panics if
// any dimension is negative.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// Zeros is an alias for New, reading better at call sites that
// emphasize the initial contents.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// FromSlice wraps data in a tensor of the given shape. The slice is
// used directly (not copied); it panics if the length does not match
// the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panicNegativeDim(shape)
		}
		n *= d
	}
	return n
}

// panicNegativeDim lives outside checkShape so the error formatting
// does not make every caller's variadic shape argument escape to the
// heap: keeping checkShape allocation-free is what lets Pool.Get and
// New be called in hot loops with stack-allocated shapes.
//
//go:noinline
func panicNegativeDim(shape []int) {
	panic(fmt.Sprintf("tensor: negative dimension in shape %v", append([]int(nil), shape...)))
}

// Shape returns the tensor's shape. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice in row-major order. Mutations are
// visible to the tensor; this is the intended fast path for layer
// kernels.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view over the same data with a new shape. It
// panics if the volumes differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// ViewRows repoints t at rows [b0,b1) of the batch-major tensor src
// (no copy) and returns t. Reusing one header tensor this way keeps
// hot paths that re-view every call — the batch-parallel inference
// engine's shards — allocation-free; the caller must ensure t is not
// aliased elsewhere and must never Put a view into a Pool (it shares
// src's backing array).
func (t *Tensor) ViewRows(src *Tensor, b0, b1 int) *Tensor {
	rowLen := len(src.data) / src.shape[0]
	t.data = src.data[b0*rowLen : b1*rowLen]
	t.shape = append(t.shape[:0], src.shape...)
	t.shape[0] = b1 - b0
	return t
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.Offset(idx...)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.Offset(idx...)] = v }

// Offset converts a multi-dimensional index to a flat offset.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// CopyFrom copies src's contents into t. Shapes must have equal
// volume; the shapes themselves may differ (a deliberate convenience
// for flattening layers).
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom volume mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Add accumulates o into t element-wise in place.
func (t *Tensor) Add(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic("tensor: Add volume mismatch")
	}
	for i, v := range o.data {
		t.data[i] += v
	}
}

// Sub subtracts o from t element-wise in place.
func (t *Tensor) Sub(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic("tensor: Sub volume mismatch")
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
}

// Mul multiplies t by o element-wise in place.
func (t *Tensor) Mul(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic("tensor: Mul volume mismatch")
	}
	for i, v := range o.data {
		t.data[i] *= v
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AXPY computes t += a*o in place.
func (t *Tensor) AXPY(a float64, o *Tensor) {
	if len(t.data) != len(o.data) {
		panic("tensor: AXPY volume mismatch")
	}
	for i, v := range o.data {
		t.data[i] += a * v
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// AbsMax returns the maximum absolute element, or 0 for an empty
// tensor.
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// String renders a compact description, useful in test failures.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g … %g]", t.data[0], t.data[1], t.data[len(t.data)-1])
	}
	return b.String()
}

// Equal reports whether two tensors have the same shape and all
// elements within tol of each other.
func Equal(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}
