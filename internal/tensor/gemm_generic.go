//go:build !amd64 || purego

package tensor

// Scalar-only builds: non-amd64 architectures, or any architecture
// with the purego build tag (the compile-time counterpart of the
// STEPPINGNET_NOSIMD environment override). The portable kernels in
// matmul.go are already installed by the dispatch defaults, so there
// is nothing to initialize here.

// simdAvailable reports whether this build could select a SIMD
// backend on this machine; never, by construction.
func simdAvailable() bool { return false }

// simdWanted mirrors the amd64 helper for tests.
func simdWanted() bool { return false }

// restoreSIMDBackend exists for the backend-forcing tests; without a
// SIMD backend it reinstalls the scalar kernels.
func restoreSIMDBackend() { useScalarBackend() }
