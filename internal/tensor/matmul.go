package tensor

import "fmt"

// This file holds the matrix-multiply substrate: three raw-slice
// kernels (Gemm, GemmTransA, GemmTransB) and the Tensor-level
// wrappers built on them. The kernels are register-tiled — the inner
// loops carry four independent multiply-add chains so the compiler
// can keep partial products in registers and the CPU can overlap the
// FMA latency — and row-blocked: output rows are processed in small
// blocks that a work-stealing scheduler (parallel.go) distributes
// across GOMAXPROCS goroutines once the product is large enough to
// amortize the fan-out (see gemmMinParFlops). Fully-zero panels of A
// are skipped, which is the common case for the masked weight
// matrices this reproduction multiplies by.
//
// The row kernels defined here are the portable scalar backend; on
// amd64 hardware with AVX2+FMA a dispatch layer swaps in assembly
// variants at startup (gemm_dispatch.go, gemm_amd64.go) and this
// code doubles as their edge-case fallback and test reference.

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n),
// returning a fresh m×n tensor.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := matDims(a, b)
	c := New(m, n)
	Gemm(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulInto computes C = A·B (or C += A·B when accumulate is true)
// into a preallocated C, avoiding allocation in hot training loops.
func MatMulInto(c, a, b *Tensor, accumulate bool) {
	m, k, n := matDims(a, b)
	if c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto output shape %v, want [%d %d]", c.shape, m, n))
	}
	Gemm(c.data, a.data, b.data, m, k, n, accumulate)
}

func matDims(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v × %v", a.shape, b.shape))
	}
	if a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	return a.Dim(0), a.Dim(1), b.Dim(1)
}

// MatMulTransA computes C = Aᵀ·B where A is k×m and B is k×n,
// producing m×n. Used for weight-gradient accumulation.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m, n := transADims(a, b)
	c := New(m, n)
	GemmTransA(c.data, a.data, b.data, k, m, n, false)
	return c
}

// MatMulTransAInto computes C = Aᵀ·B (or C += Aᵀ·B) into a
// preallocated C.
func MatMulTransAInto(c, a, b *Tensor, accumulate bool) {
	k, m, n := transADims(a, b)
	if c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto output shape %v, want [%d %d]", c.shape, m, n))
	}
	GemmTransA(c.data, a.data, b.data, k, m, n, accumulate)
}

func transADims(a, b *Tensor) (k, m, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(0) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch %v × %v", a.shape, b.shape))
	}
	return a.Dim(0), a.Dim(1), b.Dim(1)
}

// MatMulTransB computes C = A·Bᵀ where A is m×k and B is n×k,
// producing m×n. Used for input-gradient propagation and the im2col
// convolution forward.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := transBDims(a, b)
	c := New(m, n)
	GemmTransB(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulTransBInto computes C = A·Bᵀ (or C += A·Bᵀ) into a
// preallocated C.
func MatMulTransBInto(c, a, b *Tensor, accumulate bool) {
	m, k, n := transBDims(a, b)
	if c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto output shape %v, want [%d %d]", c.shape, m, n))
	}
	GemmTransB(c.data, a.data, b.data, m, k, n, accumulate)
}

func transBDims(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(1) != b.Dim(1) {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %v × %v", a.shape, b.shape))
	}
	return a.Dim(0), a.Dim(1), b.Dim(0)
}

// Gemm computes C (+)= A·B on raw row-major slices: A is m×k, B is
// k×n, C is m×n. When accumulate is false C is overwritten. Layers
// call this directly on sub-slices (e.g. one image of a batch) to
// stay allocation-free; the Tensor wrappers above add shape checks.
// Products past gemmMinParFlops fan their rows out over the worker
// arena (parallel.go); the split preserves bitwise equality with the
// serial kernel at every worker count.
func Gemm(c, a, b []float64, m, k, n int, accumulate bool) {
	if m == 0 || n == 0 {
		return // empty product; nothing to write
	}
	if m*k*n >= gemmMinParFlops && gemmRowsParallel(arenaGemmRows, c, a, b, m, k, n, accumulate) {
		return
	}
	gemmRowsImpl(c, a, b, 0, m, k, n, accumulate)
}

// GemmTransA computes C (+)= Aᵀ·B on raw slices: A is k×m, B is k×n,
// C is m×n.
func GemmTransA(c, a, b []float64, k, m, n int, accumulate bool) {
	if m == 0 || n == 0 {
		return // empty product; nothing to write
	}
	if m*k*n >= gemmMinParFlops && gemmRowsParallel(arenaGemmTransARows, c, a, b, m, k, n, accumulate) {
		return
	}
	gemmTransARowsImpl(c, a, b, 0, m, m, k, n, accumulate)
}

// GemmTransB computes C (+)= A·Bᵀ on raw slices: A is m×k, B is n×k,
// C is m×n. Multi-row products past gemmMinParFlops split by output
// rows; the single-row shape (a batch-1 dense layer, where row
// splitting can never help) splits by output columns instead, at the
// lower gemmMinParColFlops threshold — each worker computes whole
// four-column dot-product tiles, so this split too is bitwise
// identical to the serial kernel at every worker count.
func GemmTransB(c, a, b []float64, m, k, n int, accumulate bool) {
	if m == 0 || n == 0 {
		return // empty product; nothing to write
	}
	if m > 1 {
		if m*k*n >= gemmMinParFlops && gemmRowsParallel(arenaGemmTransBRows, c, a, b, m, k, n, accumulate) {
			return
		}
	} else if k*n >= gemmMinParColFlops && gemmColsParallel(c, a, b, k, n, accumulate) {
		return
	}
	gemmTransBRowsImpl(c, a, b, 0, m, k, n, accumulate)
}

// gemmRows is the serial ikj kernel over output rows [i0,i1). Rows
// are processed two at a time (each loaded panel of B feeds two C
// rows, halving B traffic) and the k loop is unrolled 4-wide so each
// pass over a C row performs four fused chains per element,
// quartering C-row traffic; all-zero 4-groups of A (pruned/masked
// weights) are skipped.
func gemmRows(c, a, b []float64, i0, i1, k, n int, accumulate bool) {
	i := i0
	for ; i+2 <= i1; i += 2 {
		arow0 := a[i*k : (i+1)*k]
		arow1 := a[(i+1)*k : (i+2)*k]
		crow0 := c[i*n : (i+1)*n : (i+1)*n]
		crow1 := c[(i+1)*n : (i+2)*n : (i+2)*n]
		if !accumulate {
			clear(crow0)
			clear(crow1)
		}
		p := 0
		for ; p+4 <= k; p += 4 {
			a00, a01, a02, a03 := arow0[p], arow0[p+1], arow0[p+2], arow0[p+3]
			a10, a11, a12, a13 := arow1[p], arow1[p+1], arow1[p+2], arow1[p+3]
			z0 := a00 == 0 && a01 == 0 && a02 == 0 && a03 == 0
			z1 := a10 == 0 && a11 == 0 && a12 == 0 && a13 == 0
			if z0 && z1 {
				continue
			}
			b0 := b[p*n : p*n+n : p*n+n]
			b1 := b[(p+1)*n : (p+1)*n+n : (p+1)*n+n]
			b2 := b[(p+2)*n : (p+2)*n+n : (p+2)*n+n]
			b3 := b[(p+3)*n : (p+3)*n+n : (p+3)*n+n]
			_ = b0[len(crow0)-1]
			_ = b1[len(crow0)-1]
			_ = b2[len(crow0)-1]
			_ = b3[len(crow0)-1]
			switch {
			case z1:
				for j := range crow0 {
					crow0[j] += a00*b0[j] + a01*b1[j] + a02*b2[j] + a03*b3[j]
				}
			case z0:
				for j := range crow1 {
					crow1[j] += a10*b0[j] + a11*b1[j] + a12*b2[j] + a13*b3[j]
				}
			default:
				_ = crow1[len(crow0)-1]
				for j := range crow0 {
					v0, v1, v2, v3 := b0[j], b1[j], b2[j], b3[j]
					crow0[j] += a00*v0 + a01*v1 + a02*v2 + a03*v3
					crow1[j] += a10*v0 + a11*v1 + a12*v2 + a13*v3
				}
			}
		}
		for ; p < k; p++ {
			a0, a1 := arow0[p], arow1[p]
			if a0 == 0 && a1 == 0 {
				continue
			}
			brow := b[p*n : p*n+n : p*n+n]
			_ = brow[len(crow0)-1]
			_ = crow1[len(crow0)-1]
			for j := range crow0 {
				v := brow[j]
				crow0[j] += a0 * v
				crow1[j] += a1 * v
			}
		}
	}
	for ; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n : (i+1)*n]
		if !accumulate {
			clear(crow)
		}
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := b[p*n : p*n+n : p*n+n]
			b1 := b[(p+1)*n : (p+1)*n+n : (p+1)*n+n]
			b2 := b[(p+2)*n : (p+2)*n+n : (p+2)*n+n]
			b3 := b[(p+3)*n : (p+3)*n+n : (p+3)*n+n]
			_ = b0[len(crow)-1]
			_ = b1[len(crow)-1]
			_ = b2[len(crow)-1]
			_ = b3[len(crow)-1]
			for j := range crow {
				crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n : p*n+n]
			_ = brow[len(crow)-1]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// gemmTransARows computes rows [i0,i1) of C = Aᵀ·B. Row i of C reads
// column i of A (stride m, A's declared column count); the k loop is
// unrolled 4-wide like gemmRows.
func gemmTransARows(c, a, b []float64, i0, i1, m, k, n int, accumulate bool) {
	for i := i0; i < i1; i++ {
		crow := c[i*n : (i+1)*n : (i+1)*n]
		if !accumulate {
			clear(crow)
		}
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := a[p*m+i], a[(p+1)*m+i], a[(p+2)*m+i], a[(p+3)*m+i]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := b[p*n : p*n+n : p*n+n]
			b1 := b[(p+1)*n : (p+1)*n+n : (p+1)*n+n]
			b2 := b[(p+2)*n : (p+2)*n+n : (p+2)*n+n]
			b3 := b[(p+3)*n : (p+3)*n+n : (p+3)*n+n]
			_ = b0[len(crow)-1]
			_ = b1[len(crow)-1]
			_ = b2[len(crow)-1]
			_ = b3[len(crow)-1]
			for j := range crow {
				crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; p < k; p++ {
			av := a[p*m+i]
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n : p*n+n]
			_ = brow[len(crow)-1]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// gemmTransBRows computes rows [i0,i1) of C = A·Bᵀ as dot products of
// contiguous rows. Rows are processed two at a time and columns four
// at a time, so each loaded panel of B feeds eight accumulator
// chains; rows of A that are entirely zero (inactive filters in a
// masked weight matrix) short-circuit to a zero C row.
func gemmTransBRows(c, a, b []float64, i0, i1, k, n int, accumulate bool) {
	i := i0
	for ; i+2 <= i1; i += 2 {
		arow0 := a[i*k : (i+1)*k : (i+1)*k]
		arow1 := a[(i+1)*k : (i+2)*k : (i+2)*k]
		crow0 := c[i*n : (i+1)*n : (i+1)*n]
		crow1 := c[(i+1)*n : (i+2)*n : (i+2)*n]
		z0, z1 := allZero(arow0), allZero(arow1)
		if z0 || z1 {
			// At most one live row in this pair: fall back to the
			// single-row kernel for it, zero the dead one(s).
			if !accumulate {
				if z0 {
					clear(crow0)
				}
				if z1 {
					clear(crow1)
				}
			}
			if !z0 {
				transBRow(crow0, arow0, b, k, n, accumulate)
			}
			if !z1 {
				transBRow(crow1, arow1, b, k, n, accumulate)
			}
			continue
		}
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : j*k+k : j*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k : (j+3)*k+k]
			var s00, s01, s02, s03, s10, s11, s12, s13 float64
			for p, a0 := range arow0 {
				a1 := arow1[p]
				v0, v1, v2, v3 := b0[p], b1[p], b2[p], b3[p]
				s00 += a0 * v0
				s01 += a0 * v1
				s02 += a0 * v2
				s03 += a0 * v3
				s10 += a1 * v0
				s11 += a1 * v1
				s12 += a1 * v2
				s13 += a1 * v3
			}
			if accumulate {
				crow0[j] += s00
				crow0[j+1] += s01
				crow0[j+2] += s02
				crow0[j+3] += s03
				crow1[j] += s10
				crow1[j+1] += s11
				crow1[j+2] += s12
				crow1[j+3] += s13
			} else {
				crow0[j], crow0[j+1], crow0[j+2], crow0[j+3] = s00, s01, s02, s03
				crow1[j], crow1[j+1], crow1[j+2], crow1[j+3] = s10, s11, s12, s13
			}
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k : j*k+k]
			var s0, s1 float64
			for p, a0 := range arow0 {
				s0 += a0 * brow[p]
				s1 += arow1[p] * brow[p]
			}
			if accumulate {
				crow0[j] += s0
				crow1[j] += s1
			} else {
				crow0[j] = s0
				crow1[j] = s1
			}
		}
	}
	for ; i < i1; i++ {
		arow := a[i*k : (i+1)*k : (i+1)*k]
		crow := c[i*n : (i+1)*n : (i+1)*n]
		if allZero(arow) {
			if !accumulate {
				clear(crow)
			}
			continue
		}
		transBRow(crow, arow, b, k, n, accumulate)
	}
}

// transBRow computes one C row of A·Bᵀ, four dot products at a time.
func transBRow(crow, arow, b []float64, k, n int, accumulate bool) {
	j := 0
	for ; j+4 <= n; j += 4 {
		b0 := b[j*k : j*k+k : j*k+k]
		b1 := b[(j+1)*k : (j+1)*k+k : (j+1)*k+k]
		b2 := b[(j+2)*k : (j+2)*k+k : (j+2)*k+k]
		b3 := b[(j+3)*k : (j+3)*k+k : (j+3)*k+k]
		var s0, s1, s2, s3 float64
		for p, av := range arow {
			s0 += av * b0[p]
			s1 += av * b1[p]
			s2 += av * b2[p]
			s3 += av * b3[p]
		}
		if accumulate {
			crow[j] += s0
			crow[j+1] += s1
			crow[j+2] += s2
			crow[j+3] += s3
		} else {
			crow[j] = s0
			crow[j+1] = s1
			crow[j+2] = s2
			crow[j+3] = s3
		}
	}
	for ; j < n; j++ {
		brow := b[j*k : j*k+k : j*k+k]
		var s float64
		for p, av := range arow {
			s += av * brow[p]
		}
		if accumulate {
			crow[j] += s
		} else {
			crow[j] = s
		}
	}
}

// allZero reports whether every element of s is zero.
func allZero(s []float64) bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}
