package tensor

import "fmt"

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n),
// returning a fresh m×n tensor. The kernel is a cache-friendly ikj
// loop; with the small models used in this reproduction it is within a
// small factor of a tuned BLAS on the same data.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := matDims(a, b)
	c := New(m, n)
	matMulInto(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulInto computes C = A·B (or C += A·B when accumulate is true)
// into a preallocated C, avoiding allocation in hot training loops.
func MatMulInto(c, a, b *Tensor, accumulate bool) {
	m, k, n := matDims(a, b)
	if c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto output shape %v, want [%d %d]", c.shape, m, n))
	}
	matMulInto(c.data, a.data, b.data, m, k, n, accumulate)
}

func matDims(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v × %v", a.shape, b.shape))
	}
	if a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	return a.Dim(0), a.Dim(1), b.Dim(1)
}

func matMulInto(c, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue // sparsity from masked weights is common
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ·B where A is k×m and B is k×n,
// producing m×n. Used for weight-gradient accumulation.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(0) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch %v × %v", a.shape, b.shape))
	}
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MatMulTransB computes C = A·Bᵀ where A is m×k and B is n×k,
// producing m×n. Used for input-gradient propagation.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(1) != b.Dim(1) {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %v × %v", a.shape, b.shape))
	}
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		crow := c.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
	return c
}
