//go:build amd64 && !purego

package tensor

import (
	"os"
	"testing"
)

// skipNoAVX2 skips tests that need the assembly kernels on machines
// without them.
func skipNoAVX2(t *testing.T) {
	t.Helper()
	if !hasAVX2FMA {
		t.Skip("CPU lacks AVX2+FMA")
	}
}

// TestSIMDRowKernelsMatchScalar drives the three AVX2 row kernels
// directly against their scalar references over the full shape grid,
// in both overwrite and accumulate modes, on inputs salted with exact
// zeros so the zero-panel skips fire. 1e-12 is the repo-wide kernel
// equivalence budget.
func TestSIMDRowKernelsMatchScalar(t *testing.T) {
	skipNoAVX2(t)
	r := NewRNG(71)
	checkAllShapes(t, func(t *testing.T, m, k, n int) {
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		at := randMat(r, k, m)
		bt := randMat(r, n, k)
		seed := randMat(r, m, n)
		for _, acc := range []bool{false, true} {
			want, got := seed.Clone(), seed.Clone()
			gemmRows(want.Data(), a.Data(), b.Data(), 0, m, k, n, acc)
			gemmRowsAVX2(got.Data(), a.Data(), b.Data(), 0, m, k, n, acc)
			if d := maxAbsDiff(got, want); d > 1e-12 {
				t.Fatalf("gemmRowsAVX2 %dx%dx%d acc=%v diverges by %g", m, k, n, acc, d)
			}
			want, got = seed.Clone(), seed.Clone()
			gemmTransARows(want.Data(), at.Data(), b.Data(), 0, m, m, k, n, acc)
			gemmTransARowsAVX2(got.Data(), at.Data(), b.Data(), 0, m, m, k, n, acc)
			if d := maxAbsDiff(got, want); d > 1e-12 {
				t.Fatalf("gemmTransARowsAVX2 %dx%dx%d acc=%v diverges by %g", m, k, n, acc, d)
			}
			want, got = seed.Clone(), seed.Clone()
			gemmTransBRows(want.Data(), a.Data(), bt.Data(), 0, m, k, n, acc)
			gemmTransBRowsAVX2(got.Data(), a.Data(), bt.Data(), 0, m, k, n, acc)
			if d := maxAbsDiff(got, want); d > 1e-12 {
				t.Fatalf("gemmTransBRowsAVX2 %dx%dx%d acc=%v diverges by %g", m, k, n, acc, d)
			}
		}
	})
}

// TestSIMDZeroPanelInputs pins the masked-weight fast paths: fully
// zero A matrices, zero row pairs and zero 4-panels must produce
// exactly the scalar kernels' outputs (including clearing previously
// dirty C in overwrite mode).
func TestSIMDZeroPanelInputs(t *testing.T) {
	skipNoAVX2(t)
	r := NewRNG(73)
	m, k, n := 6, 17, 9
	cases := map[string]func(*Tensor){
		"all_zero":   func(a *Tensor) { a.Zero() },
		"zero_row0":  func(a *Tensor) { clear(a.Data()[:k]) },
		"zero_row1":  func(a *Tensor) { clear(a.Data()[k : 2*k]) },
		"zero_panel": func(a *Tensor) { clear(a.Data()[2*k : 2*k+4]) },
	}
	for name, mutate := range cases {
		a := randMat(r, m, k)
		mutate(a)
		b := randMat(r, k, n)
		bt := randMat(r, n, k)
		dirty := Full(3.5, m, n)
		want, got := dirty.Clone(), dirty.Clone()
		gemmRows(want.Data(), a.Data(), b.Data(), 0, m, k, n, false)
		gemmRowsAVX2(got.Data(), a.Data(), b.Data(), 0, m, k, n, false)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Fatalf("%s: gemmRowsAVX2 diverges by %g", name, d)
		}
		want, got = dirty.Clone(), dirty.Clone()
		gemmTransBRows(want.Data(), a.Data(), bt.Data(), 0, m, k, n, false)
		gemmTransBRowsAVX2(got.Data(), a.Data(), bt.Data(), 0, m, k, n, false)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Fatalf("%s: gemmTransBRowsAVX2 diverges by %g", name, d)
		}
	}
}

// TestSIMDWidthInvariance pins the bitwise property the anytime
// reproduction builds on: a given output element of C = A·B must
// round IDENTICALLY no matter how many further columns B has. The
// conv forward multiplies by a compact gather whose column count is
// the subnet's active-filter count, and a reused unit's activation
// must not change when the subnet grows (the construction tests
// compare across widths with exact equality) — so the vector body
// and the scalar column tail of the assembly must apply the same
// fused-FMA chain, and narrow products must not fall back to the
// unfused scalar kernel.
func TestSIMDWidthInvariance(t *testing.T) {
	skipNoAVX2(t)
	r := NewRNG(79)
	m, k := 7, 21
	a := randMat(r, m, k)
	wide := randMat(r, k, 16)
	for _, n1 := range []int{1, 2, 3, 5, 8, 13} {
		for _, n2 := range []int{n1 + 1, n1 + 3} {
			narrow := New(k, n1)
			for p := 0; p < k; p++ {
				copy(narrow.Data()[p*n1:(p+1)*n1], wide.Data()[p*16:p*16+n1])
			}
			prefix := New(k, n2)
			for p := 0; p < k; p++ {
				copy(prefix.Data()[p*n2:(p+1)*n2], wide.Data()[p*16:p*16+n2])
			}
			c1 := New(m, n1)
			c2 := New(m, n2)
			gemmRowsAVX2(c1.Data(), a.Data(), narrow.Data(), 0, m, k, n1, false)
			gemmRowsAVX2(c2.Data(), a.Data(), prefix.Data(), 0, m, k, n2, false)
			for i := 0; i < m; i++ {
				for j := 0; j < n1; j++ {
					if c1.At(i, j) != c2.At(i, j) {
						t.Fatalf("n=%d vs n=%d: C[%d,%d] rounds differently: %v vs %v",
							n1, n2, i, j, c1.At(i, j), c2.At(i, j))
					}
				}
			}
		}
	}
}

// TestBackendCrossCheck forces each backend in turn through the
// public API on identical inputs — including the forced-parallel
// work-stealing path — and cross-checks the outputs. This is the test
// that keeps both backends green forever regardless of which one CI's
// hardware selects.
func TestBackendCrossCheck(t *testing.T) {
	skipNoAVX2(t)
	restoreBackend(t)
	for _, parallel := range []bool{false, true} {
		if parallel {
			forceParallel(t)
		}
		r := NewRNG(77)
		checkAllShapes(t, func(t *testing.T, m, k, n int) {
			a := randMat(r, m, k)
			b := randMat(r, k, n)
			at := randMat(r, k, m)
			bt := randMat(r, n, k)

			useScalarBackend()
			s1 := MatMul(a, b)
			s2 := MatMulTransA(at, b)
			s3 := MatMulTransB(a, bt)
			useAVX2Backend()
			v1 := MatMul(a, b)
			v2 := MatMulTransA(at, b)
			v3 := MatMulTransB(a, bt)

			if d := maxAbsDiff(v1, s1); d > 1e-12 {
				t.Fatalf("parallel=%v MatMul %dx%dx%d: backends diverge by %g", parallel, m, k, n, d)
			}
			if d := maxAbsDiff(v2, s2); d > 1e-12 {
				t.Fatalf("parallel=%v MatMulTransA %dx%dx%d: backends diverge by %g", parallel, m, k, n, d)
			}
			if d := maxAbsDiff(v3, s3); d > 1e-12 {
				t.Fatalf("parallel=%v MatMulTransB %dx%dx%d: backends diverge by %g", parallel, m, k, n, d)
			}
		})
	}
}

// TestNoSIMDEnvOverride checks the runtime escape hatch: with
// STEPPINGNET_NOSIMD set, backend selection must refuse SIMD even on
// capable hardware.
func TestNoSIMDEnvOverride(t *testing.T) {
	t.Setenv(NoSIMDEnv, "1")
	if simdWanted() {
		t.Fatal("simdWanted() true despite STEPPINGNET_NOSIMD")
	}
	os.Unsetenv(NoSIMDEnv)
	if hasAVX2FMA && !simdWanted() {
		t.Fatal("simdWanted() false on AVX2 hardware without the override")
	}
}
