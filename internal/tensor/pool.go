package tensor

// Pool is a size-keyed free list of tensors used to make hot paths
// (inference forwards, training steps) allocation-free in the steady
// state. It is deliberately simple: Get hands out a zero-filled
// tensor, Put takes one back, and recycling is keyed on element count
// so a buffer released as [8 32 8 8] can be reborn as [8 2048].
//
// Ownership rules:
//
//   - A tensor obtained from Get is owned by the caller until it is
//     passed to Put; after Put the pool may hand the same backing
//     array to any later Get, so the caller must drop all references.
//   - Never Put two tensors that share a backing array (e.g. a tensor
//     and a Reshape view of it): the pool would hand the same memory
//     out twice. Layers that produce views under a pool therefore
//     copy instead (see nn.Flatten).
//   - Tensors allocated elsewhere (New, FromSlice) may be Put; the
//     pool does not care where memory came from.
//
// A Pool is NOT safe for concurrent use. Use one Pool per goroutine;
// infer.Engine keeps one per batch-parallel worker.
//
// All methods are nil-receiver safe: a nil *Pool degrades to plain
// allocation (Get == New, Put == no-op), so code can be written
// against an optional pool without branching.
type Pool struct {
	free map[int][]*Tensor

	// Gets and Hits count lookups and successful recycles, for tests
	// and benchmarks that assert steady-state behaviour.
	Gets, Hits int64
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{free: make(map[int][]*Tensor)}
}

// Get returns a zero-filled tensor of the given shape, recycling a
// previously Put tensor of the same volume when one is available.
func (p *Pool) Get(shape ...int) *Tensor {
	return p.get(shape, true)
}

// GetUninit is Get without the zero fill: the contents of a recycled
// tensor are whatever its previous owner left there. Use it only when
// every element is about to be overwritten (an im2col target, a
// non-accumulating matmul output); anything relying on "fresh tensors
// are zero" must use Get.
func (p *Pool) GetUninit(shape ...int) *Tensor {
	return p.get(shape, false)
}

// get is the single recycling path behind Get and GetUninit; a fresh
// New allocation is zero by construction, so zeroFill only matters on
// the recycled branch.
func (p *Pool) get(shape []int, zeroFill bool) *Tensor {
	if p == nil {
		return New(shape...)
	}
	n := checkShape(shape)
	p.Gets++
	if l := p.free[n]; len(l) > 0 {
		t := l[len(l)-1]
		l[len(l)-1] = nil
		p.free[n] = l[:len(l)-1]
		p.Hits++
		t.shape = append(t.shape[:0], shape...)
		if zeroFill {
			clear(t.data)
		}
		return t
	}
	return New(shape...)
}

// Put returns a tensor to the pool. Putting nil is a no-op.
func (p *Pool) Put(t *Tensor) {
	if p == nil || t == nil || len(t.data) == 0 {
		return
	}
	p.free[len(t.data)] = append(p.free[len(t.data)], t)
}

// Aliases reports whether t and o share the same backing array. Used
// by callers that must not release a buffer still visible through a
// Reshape view.
func (t *Tensor) Aliases(o *Tensor) bool {
	if t == nil || o == nil || len(t.data) == 0 || len(o.data) == 0 {
		return false
	}
	return &t.data[0] == &o.data[0]
}
