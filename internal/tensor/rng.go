package tensor

import "math"

// RNG is a small, deterministic xorshift64* generator. Every piece of
// randomness in the library flows through an explicit *RNG so that
// experiments are reproducible bit-for-bit across runs and platforms;
// math/rand's global state is never used.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped
// to a fixed non-zero constant because xorshift has an all-zero fixed
// point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Split derives an independent generator; the i-th split of a given
// RNG is deterministic. Use it to give each layer / worker its own
// stream without coupling their consumption order.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// Uint64 advances the generator and returns 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate via Box–Muller.
func (r *RNG) NormFloat64() float64 {
	// Rejection-free Box–Muller transform; u1 is kept away from 0 so
	// the log is finite.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillUniform fills t with uniform values in [lo,hi).
func (t *Tensor) FillUniform(r *RNG, lo, hi float64) {
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*r.Float64()
	}
}

// FillNormal fills t with normal deviates of the given mean and
// standard deviation.
func (t *Tensor) FillNormal(r *RNG, mean, std float64) {
	for i := range t.data {
		t.data[i] = mean + std*r.NormFloat64()
	}
}

// FillKaiming applies Kaiming-He initialization for ReLU networks:
// normal with std sqrt(2/fanIn). fanIn must be positive.
func (t *Tensor) FillKaiming(r *RNG, fanIn int) {
	if fanIn <= 0 {
		panic("tensor: FillKaiming requires positive fanIn")
	}
	t.FillNormal(r, 0, math.Sqrt(2/float64(fanIn)))
}

// FillXavier applies Glorot/Xavier uniform initialization with the
// given fan-in and fan-out.
func (t *Tensor) FillXavier(r *RNG, fanIn, fanOut int) {
	if fanIn <= 0 || fanOut <= 0 {
		panic("tensor: FillXavier requires positive fans")
	}
	bound := math.Sqrt(6 / float64(fanIn+fanOut))
	t.FillUniform(r, -bound, bound)
}
