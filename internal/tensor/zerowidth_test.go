package tensor

import "testing"

// TestZeroWidthProducts pins the empty-operand contract: a zero-width
// or zero-height product returns an empty (or untouched) C instead of
// panicking, matching the pre-optimization kernel.
func TestZeroWidthProducts(t *testing.T) {
	if got := MatMul(New(2, 4), New(4, 0)); got.Dim(0) != 2 || got.Dim(1) != 0 {
		t.Fatalf("MatMul zero-width shape %v", got.Shape())
	}
	if got := MatMul(New(0, 4), New(4, 3)); got.Dim(0) != 0 {
		t.Fatalf("MatMul zero-height shape %v", got.Shape())
	}
	if got := MatMulTransA(New(4, 0), New(4, 3)); got.Dim(0) != 0 {
		t.Fatalf("MatMulTransA zero-m shape %v", got.Shape())
	}
	if got := MatMulTransB(New(2, 4), New(0, 4)); got.Dim(1) != 0 {
		t.Fatalf("MatMulTransB zero-n shape %v", got.Shape())
	}
	// Zero inner dimension is a valid (all-zero) product.
	c := Full(7, 2, 3)
	MatMulInto(c, New(2, 0), New(0, 3), false)
	for _, v := range c.Data() {
		if v != 0 {
			t.Fatal("zero-k product must zero C when not accumulating")
		}
	}
}
