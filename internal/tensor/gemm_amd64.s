// AVX2+FMA micro-kernels for the GEMM backends in gemm_amd64.go, plus
// the CPUID/XGETBV feature probes that gate them. All float64, all
// ABI0 (stack arguments), all NOSPLIT leaf functions.
//
// Kernel shapes (see gemm_amd64.go for how they compose into the
// three GEMM row kernels):
//
//   avx2QuadAxpy2  c0,c1 += a·B panel   2 C rows × 4 B rows, the ikj
//                                       inner strip: 8 FMA chains per
//                                       4-wide column block
//   avx2QuadAxpy1  c += a·B panel       1 C row × 4 B rows
//   avx2Dot2x4     8 dot products       2 A rows × 4 B rows (A·Bᵀ)
//   avx2Dot1x4     4 dot products       1 A row × 4 B rows
//
// Operand-order note: the Go assembler reverses Intel order, so
// VFMADD231PD Y8, Y0, Y12 computes Y12 += Y0*Y8.
//
// The scalar tails at the bottom of each kernel use VFMADD231SD,
// which zeroes bits 128..255 of its destination register — safe in
// the axpy kernels (destinations are freshly loaded C values) and in
// the dot kernels only because the wide accumulators are horizontally
// reduced to scalars *before* the tail runs.

//go:build !purego

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
// Caller must have verified CPUID.1:ECX.OSXSAVE first.
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func avx2QuadAxpy2(c0, c1, b0, b1, b2, b3 *float64, a *[8]float64, n int)
//
// c0[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j]
// c1[j] += a[4]*b0[j] + a[5]*b1[j] + a[6]*b2[j] + a[7]*b3[j]
// for j in [0,n): the two-output-row ikj strip. Each loaded B block
// feeds both C rows, so the 8 FMAs per 4-wide block are bound by FMA
// throughput, not loads.
TEXT ·avx2QuadAxpy2(SB), NOSPLIT, $0-64
	MOVQ c0+0(FP), DI
	MOVQ c1+8(FP), SI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ a+48(FP), AX
	MOVQ n+56(FP), CX
	VBROADCASTSD (AX), Y0
	VBROADCASTSD 8(AX), Y1
	VBROADCASTSD 16(AX), Y2
	VBROADCASTSD 24(AX), Y3
	VBROADCASTSD 32(AX), Y4
	VBROADCASTSD 40(AX), Y5
	VBROADCASTSD 48(AX), Y6
	VBROADCASTSD 56(AX), Y7
	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-8, BX

qa2_block8:
	CMPQ DX, BX
	JGE  qa2_tail4
	VMOVUPD (R8)(DX*8), Y8
	VMOVUPD (R9)(DX*8), Y9
	VMOVUPD (R10)(DX*8), Y10
	VMOVUPD (R11)(DX*8), Y11
	VMOVUPD (DI)(DX*8), Y12
	VMOVUPD (SI)(DX*8), Y13
	VFMADD231PD Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VFMADD231PD Y8, Y4, Y13
	VFMADD231PD Y9, Y5, Y13
	VFMADD231PD Y10, Y6, Y13
	VFMADD231PD Y11, Y7, Y13
	VMOVUPD Y12, (DI)(DX*8)
	VMOVUPD Y13, (SI)(DX*8)
	VMOVUPD 32(R8)(DX*8), Y8
	VMOVUPD 32(R9)(DX*8), Y9
	VMOVUPD 32(R10)(DX*8), Y10
	VMOVUPD 32(R11)(DX*8), Y11
	VMOVUPD 32(DI)(DX*8), Y12
	VMOVUPD 32(SI)(DX*8), Y13
	VFMADD231PD Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VFMADD231PD Y8, Y4, Y13
	VFMADD231PD Y9, Y5, Y13
	VFMADD231PD Y10, Y6, Y13
	VFMADD231PD Y11, Y7, Y13
	VMOVUPD Y12, 32(DI)(DX*8)
	VMOVUPD Y13, 32(SI)(DX*8)
	ADDQ $8, DX
	JMP  qa2_block8

qa2_tail4:
	MOVQ CX, BX
	ANDQ $-4, BX
	CMPQ DX, BX
	JGE  qa2_tail1
	VMOVUPD (R8)(DX*8), Y8
	VMOVUPD (R9)(DX*8), Y9
	VMOVUPD (R10)(DX*8), Y10
	VMOVUPD (R11)(DX*8), Y11
	VMOVUPD (DI)(DX*8), Y12
	VMOVUPD (SI)(DX*8), Y13
	VFMADD231PD Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VFMADD231PD Y8, Y4, Y13
	VFMADD231PD Y9, Y5, Y13
	VFMADD231PD Y10, Y6, Y13
	VFMADD231PD Y11, Y7, Y13
	VMOVUPD Y12, (DI)(DX*8)
	VMOVUPD Y13, (SI)(DX*8)
	ADDQ $4, DX

qa2_tail1:
	CMPQ DX, CX
	JGE  qa2_done
	VMOVSD (R8)(DX*8), X8
	VMOVSD (R9)(DX*8), X9
	VMOVSD (R10)(DX*8), X10
	VMOVSD (R11)(DX*8), X11
	VMOVSD (DI)(DX*8), X12
	VMOVSD (SI)(DX*8), X13
	VFMADD231SD X8, X0, X12
	VFMADD231SD X9, X1, X12
	VFMADD231SD X10, X2, X12
	VFMADD231SD X11, X3, X12
	VFMADD231SD X8, X4, X13
	VFMADD231SD X9, X5, X13
	VFMADD231SD X10, X6, X13
	VFMADD231SD X11, X7, X13
	VMOVSD X12, (DI)(DX*8)
	VMOVSD X13, (SI)(DX*8)
	INCQ DX
	JMP  qa2_tail1

qa2_done:
	VZEROUPPER
	RET

// func avx2QuadAxpy1(c, b0, b1, b2, b3 *float64, a *[4]float64, n int)
//
// c[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j] for j in
// [0,n): the single-row strip, used for GemmTransA rows and for row
// pairs where the zero-panel skip killed one side.
TEXT ·avx2QuadAxpy1(SB), NOSPLIT, $0-56
	MOVQ c+0(FP), DI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ a+40(FP), AX
	MOVQ n+48(FP), CX
	VBROADCASTSD (AX), Y0
	VBROADCASTSD 8(AX), Y1
	VBROADCASTSD 16(AX), Y2
	VBROADCASTSD 24(AX), Y3
	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-8, BX

qa1_block8:
	CMPQ DX, BX
	JGE  qa1_tail4
	VMOVUPD (R8)(DX*8), Y8
	VMOVUPD (R9)(DX*8), Y9
	VMOVUPD (R10)(DX*8), Y10
	VMOVUPD (R11)(DX*8), Y11
	VMOVUPD (DI)(DX*8), Y12
	VFMADD231PD Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD Y12, (DI)(DX*8)
	VMOVUPD 32(R8)(DX*8), Y8
	VMOVUPD 32(R9)(DX*8), Y9
	VMOVUPD 32(R10)(DX*8), Y10
	VMOVUPD 32(R11)(DX*8), Y11
	VMOVUPD 32(DI)(DX*8), Y12
	VFMADD231PD Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD Y12, 32(DI)(DX*8)
	ADDQ $8, DX
	JMP  qa1_block8

qa1_tail4:
	MOVQ CX, BX
	ANDQ $-4, BX
	CMPQ DX, BX
	JGE  qa1_tail1
	VMOVUPD (R8)(DX*8), Y8
	VMOVUPD (R9)(DX*8), Y9
	VMOVUPD (R10)(DX*8), Y10
	VMOVUPD (R11)(DX*8), Y11
	VMOVUPD (DI)(DX*8), Y12
	VFMADD231PD Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD Y12, (DI)(DX*8)
	ADDQ $4, DX

qa1_tail1:
	CMPQ DX, CX
	JGE  qa1_done
	VMOVSD (R8)(DX*8), X8
	VMOVSD (R9)(DX*8), X9
	VMOVSD (R10)(DX*8), X10
	VMOVSD (R11)(DX*8), X11
	VMOVSD (DI)(DX*8), X12
	VFMADD231SD X8, X0, X12
	VFMADD231SD X9, X1, X12
	VFMADD231SD X10, X2, X12
	VFMADD231SD X11, X3, X12
	VMOVSD X12, (DI)(DX*8)
	INCQ DX
	JMP  qa1_tail1

qa1_done:
	VZEROUPPER
	RET

// func avx2Dot2x4(a0, a1, b0, b1, b2, b3 *float64, k int, out *[8]float64)
//
// out[4r+c] = Σ_p ar[p]·bc[p] over p in [0,k) — the eight dot
// products of a 2-row × 4-column A·Bᵀ tile. Wide partial sums are
// reduced to scalars before the k%4 tail so the tail's VFMADD231SD
// (which zeroes the destination's upper lanes) is safe.
TEXT ·avx2Dot2x4(SB), NOSPLIT, $0-64
	MOVQ a0+0(FP), DI
	MOVQ a1+8(FP), SI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ k+48(FP), CX
	MOVQ out+56(FP), AX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-4, BX

d24_block4:
	CMPQ DX, BX
	JGE  d24_reduce
	VMOVUPD (DI)(DX*8), Y8
	VMOVUPD (SI)(DX*8), Y9
	VMOVUPD (R8)(DX*8), Y10
	VMOVUPD (R9)(DX*8), Y11
	VMOVUPD (R10)(DX*8), Y12
	VMOVUPD (R11)(DX*8), Y13
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y11, Y8, Y1
	VFMADD231PD Y12, Y8, Y2
	VFMADD231PD Y13, Y8, Y3
	VFMADD231PD Y10, Y9, Y4
	VFMADD231PD Y11, Y9, Y5
	VFMADD231PD Y12, Y9, Y6
	VFMADD231PD Y13, Y9, Y7
	ADDQ $4, DX
	JMP  d24_block4

d24_reduce:
	VEXTRACTF128 $1, Y0, X8
	VADDPD  X8, X0, X0
	VHADDPD X0, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPD  X8, X1, X1
	VHADDPD X1, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPD  X8, X2, X2
	VHADDPD X2, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPD  X8, X3, X3
	VHADDPD X3, X3, X3
	VEXTRACTF128 $1, Y4, X8
	VADDPD  X8, X4, X4
	VHADDPD X4, X4, X4
	VEXTRACTF128 $1, Y5, X8
	VADDPD  X8, X5, X5
	VHADDPD X5, X5, X5
	VEXTRACTF128 $1, Y6, X8
	VADDPD  X8, X6, X6
	VHADDPD X6, X6, X6
	VEXTRACTF128 $1, Y7, X8
	VADDPD  X8, X7, X7
	VHADDPD X7, X7, X7

d24_tail:
	CMPQ DX, CX
	JGE  d24_store
	VMOVSD (DI)(DX*8), X8
	VMOVSD (SI)(DX*8), X9
	VMOVSD (R8)(DX*8), X10
	VMOVSD (R9)(DX*8), X11
	VMOVSD (R10)(DX*8), X12
	VMOVSD (R11)(DX*8), X13
	VFMADD231SD X10, X8, X0
	VFMADD231SD X11, X8, X1
	VFMADD231SD X12, X8, X2
	VFMADD231SD X13, X8, X3
	VFMADD231SD X10, X9, X4
	VFMADD231SD X11, X9, X5
	VFMADD231SD X12, X9, X6
	VFMADD231SD X13, X9, X7
	INCQ DX
	JMP  d24_tail

d24_store:
	VMOVSD X0, (AX)
	VMOVSD X1, 8(AX)
	VMOVSD X2, 16(AX)
	VMOVSD X3, 24(AX)
	VMOVSD X4, 32(AX)
	VMOVSD X5, 40(AX)
	VMOVSD X6, 48(AX)
	VMOVSD X7, 56(AX)
	VZEROUPPER
	RET

// func avx2Dot1x4(a0, b0, b1, b2, b3 *float64, k int, out *[4]float64)
//
// out[c] = Σ_p a0[p]·bc[p] over p in [0,k): the single-A-row variant
// of avx2Dot2x4 for odd trailing rows and batch-1 dense layers.
TEXT ·avx2Dot1x4(SB), NOSPLIT, $0-56
	MOVQ a0+0(FP), DI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ k+40(FP), CX
	MOVQ out+48(FP), AX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-4, BX

d14_block4:
	CMPQ DX, BX
	JGE  d14_reduce
	VMOVUPD (DI)(DX*8), Y8
	VMOVUPD (R8)(DX*8), Y10
	VMOVUPD (R9)(DX*8), Y11
	VMOVUPD (R10)(DX*8), Y12
	VMOVUPD (R11)(DX*8), Y13
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y11, Y8, Y1
	VFMADD231PD Y12, Y8, Y2
	VFMADD231PD Y13, Y8, Y3
	ADDQ $4, DX
	JMP  d14_block4

d14_reduce:
	VEXTRACTF128 $1, Y0, X8
	VADDPD  X8, X0, X0
	VHADDPD X0, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPD  X8, X1, X1
	VHADDPD X1, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPD  X8, X2, X2
	VHADDPD X2, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPD  X8, X3, X3
	VHADDPD X3, X3, X3

d14_tail:
	CMPQ DX, CX
	JGE  d14_store
	VMOVSD (DI)(DX*8), X8
	VMOVSD (R8)(DX*8), X10
	VMOVSD (R9)(DX*8), X11
	VMOVSD (R10)(DX*8), X12
	VMOVSD (R11)(DX*8), X13
	VFMADD231SD X10, X8, X0
	VFMADD231SD X11, X8, X1
	VFMADD231SD X12, X8, X2
	VFMADD231SD X13, X8, X3
	INCQ DX
	JMP  d14_tail

d14_store:
	VMOVSD X0, (AX)
	VMOVSD X1, 8(AX)
	VMOVSD X2, 16(AX)
	VMOVSD X3, 24(AX)
	VZEROUPPER
	RET
