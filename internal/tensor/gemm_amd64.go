//go:build amd64 && !purego

package tensor

import "os"

// AVX2+FMA GEMM backend: runtime feature detection and the three
// row-range kernels built from the assembly micro-kernels in
// gemm_amd64.s. The kernels keep the scalar implementations' exact
// structure — two C rows per pass, k unrolled 4-wide, all-zero
// 4-panels of A skipped — and delegate only the vectorizable inner
// strips to assembly, so edge handling (k%4, n<4, odd rows) reuses
// the scalar code paths and the zero-panel skip for masked weights is
// preserved bit-for-bit.

// Feature probes implemented in gemm_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// Assembly micro-kernels (gemm_amd64.s). The noescape promise is what
// lets callers pass stack-allocated coefficient arrays.

//go:noescape
func avx2QuadAxpy2(c0, c1, b0, b1, b2, b3 *float64, a *[8]float64, n int)

//go:noescape
func avx2QuadAxpy1(c, b0, b1, b2, b3 *float64, a *[4]float64, n int)

//go:noescape
func avx2Dot2x4(a0, a1, b0, b1, b2, b3 *float64, k int, out *[8]float64)

//go:noescape
func avx2Dot1x4(a0, b0, b1, b2, b3 *float64, k int, out *[4]float64)

// hasAVX2FMA records the CPUID verdict for this process.
var hasAVX2FMA = detectAVX2FMA()

// detectAVX2FMA reports whether the CPU and OS support the AVX2+FMA
// kernels: FMA, AVX and OSXSAVE in CPUID.1:ECX, YMM state enabled in
// XCR0, and AVX2 in CPUID.7.0:EBX.
func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	// The OS must context-switch XMM and YMM state (XCR0 bits 1+2).
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// simdAvailable reports whether this build could select the SIMD
// backend on this machine (ignoring the environment override).
func simdAvailable() bool { return hasAVX2FMA }

// simdWanted folds in the STEPPINGNET_NOSIMD escape hatch.
func simdWanted() bool { return hasAVX2FMA && os.Getenv(NoSIMDEnv) == "" }

func init() {
	if simdWanted() {
		useAVX2Backend()
	}
}

// restoreSIMDBackend reinstalls the backend simdWanted selects, for
// tests that temporarily forced the scalar kernels.
func restoreSIMDBackend() { useAVX2Backend() }

// useAVX2Backend selects the assembly kernels. Callers must have
// checked hasAVX2FMA; like useScalarBackend it must not race with
// running kernels (it is an init/test hook, not a runtime switch).
func useAVX2Backend() {
	backendName = "avx2"
	gemmRowsImpl = gemmRowsAVX2
	gemmTransARowsImpl = gemmTransARowsAVX2
	gemmTransBRowsImpl = gemmTransBRowsAVX2
}

// gemmRowsAVX2 computes rows [i0,i1) of C (+)= A·B, vectorizing the
// two-row × four-k inner strips of the scalar gemmRows.
//
// Width invariance: a given (row, column) element must round
// identically no matter how many columns the product has — the
// reproduction compares activations across subnet widths
// bit-for-bit (a reused unit's value may not change when the width
// grows). The assembly's scalar column tail applies the same fused
// FMA chain per element as its vector body, so narrow products go
// through the assembly too; falling back to the unfused scalar
// kernel for n<4 would make the same logical dot product round
// differently at different widths.
func gemmRowsAVX2(c, a, b []float64, i0, i1, k, n int, accumulate bool) {
	var quad2 [8]float64
	var quad1 [4]float64
	i := i0
	for ; i+2 <= i1; i += 2 {
		arow0 := a[i*k : (i+1)*k]
		arow1 := a[(i+1)*k : (i+2)*k]
		crow0 := c[i*n : (i+1)*n : (i+1)*n]
		crow1 := c[(i+1)*n : (i+2)*n : (i+2)*n]
		if !accumulate {
			clear(crow0)
			clear(crow1)
		}
		p := 0
		for ; p+4 <= k; p += 4 {
			a00, a01, a02, a03 := arow0[p], arow0[p+1], arow0[p+2], arow0[p+3]
			a10, a11, a12, a13 := arow1[p], arow1[p+1], arow1[p+2], arow1[p+3]
			z0 := a00 == 0 && a01 == 0 && a02 == 0 && a03 == 0
			z1 := a10 == 0 && a11 == 0 && a12 == 0 && a13 == 0
			switch {
			case z0 && z1:
				// Fully masked 4-panel: skip, same as the scalar kernel.
			case z1:
				quad1[0], quad1[1], quad1[2], quad1[3] = a00, a01, a02, a03
				avx2QuadAxpy1(&crow0[0], &b[p*n], &b[(p+1)*n], &b[(p+2)*n], &b[(p+3)*n], &quad1, n)
			case z0:
				quad1[0], quad1[1], quad1[2], quad1[3] = a10, a11, a12, a13
				avx2QuadAxpy1(&crow1[0], &b[p*n], &b[(p+1)*n], &b[(p+2)*n], &b[(p+3)*n], &quad1, n)
			default:
				quad2[0], quad2[1], quad2[2], quad2[3] = a00, a01, a02, a03
				quad2[4], quad2[5], quad2[6], quad2[7] = a10, a11, a12, a13
				avx2QuadAxpy2(&crow0[0], &crow1[0], &b[p*n], &b[(p+1)*n], &b[(p+2)*n], &b[(p+3)*n], &quad2, n)
			}
		}
		for ; p < k; p++ {
			a0, a1 := arow0[p], arow1[p]
			if a0 == 0 && a1 == 0 {
				continue
			}
			brow := b[p*n : p*n+n : p*n+n]
			_ = brow[len(crow0)-1]
			_ = crow1[len(crow0)-1]
			for j := range crow0 {
				v := brow[j]
				crow0[j] += a0 * v
				crow1[j] += a1 * v
			}
		}
	}
	for ; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n : (i+1)*n]
		if !accumulate {
			clear(crow)
		}
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			quad1[0], quad1[1], quad1[2], quad1[3] = a0, a1, a2, a3
			avx2QuadAxpy1(&crow[0], &b[p*n], &b[(p+1)*n], &b[(p+2)*n], &b[(p+3)*n], &quad1, n)
		}
		for ; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n : p*n+n]
			_ = brow[len(crow)-1]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// gemmTransARowsAVX2 computes rows [i0,i1) of C (+)= Aᵀ·B. Row i
// reads column i of A (stride m); each non-zero 4-group feeds one
// vectorized quad-axpy over the B panel. Narrow products stay on the
// assembly path for the same width-invariance reason as
// gemmRowsAVX2.
func gemmTransARowsAVX2(c, a, b []float64, i0, i1, m, k, n int, accumulate bool) {
	var quad1 [4]float64
	for i := i0; i < i1; i++ {
		crow := c[i*n : (i+1)*n : (i+1)*n]
		if !accumulate {
			clear(crow)
		}
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := a[p*m+i], a[(p+1)*m+i], a[(p+2)*m+i], a[(p+3)*m+i]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			quad1[0], quad1[1], quad1[2], quad1[3] = a0, a1, a2, a3
			avx2QuadAxpy1(&crow[0], &b[p*n], &b[(p+1)*n], &b[(p+2)*n], &b[(p+3)*n], &quad1, n)
		}
		for ; p < k; p++ {
			av := a[p*m+i]
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n : p*n+n]
			_ = brow[len(crow)-1]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// gemmTransBRowsAVX2 computes rows [i0,i1) of C (+)= A·Bᵀ as 2×4
// tiles of dot products; all-zero rows of A (inactive filters)
// short-circuit exactly like the scalar kernel.
func gemmTransBRowsAVX2(c, a, b []float64, i0, i1, k, n int, accumulate bool) {
	if k < 4 {
		gemmTransBRows(c, a, b, i0, i1, k, n, accumulate)
		return
	}
	var sums [8]float64
	i := i0
	for ; i+2 <= i1; i += 2 {
		arow0 := a[i*k : (i+1)*k : (i+1)*k]
		arow1 := a[(i+1)*k : (i+2)*k : (i+2)*k]
		crow0 := c[i*n : (i+1)*n : (i+1)*n]
		crow1 := c[(i+1)*n : (i+2)*n : (i+2)*n]
		z0, z1 := allZero(arow0), allZero(arow1)
		if z0 || z1 {
			if !accumulate {
				if z0 {
					clear(crow0)
				}
				if z1 {
					clear(crow1)
				}
			}
			if !z0 {
				transBRowAVX2(crow0, arow0, b, k, n, accumulate)
			}
			if !z1 {
				transBRowAVX2(crow1, arow1, b, k, n, accumulate)
			}
			continue
		}
		j := 0
		for ; j+4 <= n; j += 4 {
			avx2Dot2x4(&arow0[0], &arow1[0], &b[j*k], &b[(j+1)*k], &b[(j+2)*k], &b[(j+3)*k], k, &sums)
			if accumulate {
				crow0[j] += sums[0]
				crow0[j+1] += sums[1]
				crow0[j+2] += sums[2]
				crow0[j+3] += sums[3]
				crow1[j] += sums[4]
				crow1[j+1] += sums[5]
				crow1[j+2] += sums[6]
				crow1[j+3] += sums[7]
			} else {
				crow0[j], crow0[j+1], crow0[j+2], crow0[j+3] = sums[0], sums[1], sums[2], sums[3]
				crow1[j], crow1[j+1], crow1[j+2], crow1[j+3] = sums[4], sums[5], sums[6], sums[7]
			}
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k : j*k+k]
			var s0, s1 float64
			for p, a0 := range arow0 {
				s0 += a0 * brow[p]
				s1 += arow1[p] * brow[p]
			}
			if accumulate {
				crow0[j] += s0
				crow1[j] += s1
			} else {
				crow0[j] = s0
				crow1[j] = s1
			}
		}
	}
	for ; i < i1; i++ {
		arow := a[i*k : (i+1)*k : (i+1)*k]
		crow := c[i*n : (i+1)*n : (i+1)*n]
		if allZero(arow) {
			if !accumulate {
				clear(crow)
			}
			continue
		}
		transBRowAVX2(crow, arow, b, k, n, accumulate)
	}
}

// transBRowAVX2 computes one C row of A·Bᵀ, four dot products per
// assembly call.
func transBRowAVX2(crow, arow, b []float64, k, n int, accumulate bool) {
	var sums [4]float64
	j := 0
	for ; j+4 <= n; j += 4 {
		avx2Dot1x4(&arow[0], &b[j*k], &b[(j+1)*k], &b[(j+2)*k], &b[(j+3)*k], k, &sums)
		if accumulate {
			crow[j] += sums[0]
			crow[j+1] += sums[1]
			crow[j+2] += sums[2]
			crow[j+3] += sums[3]
		} else {
			crow[j], crow[j+1], crow[j+2], crow[j+3] = sums[0], sums[1], sums[2], sums[3]
		}
	}
	for ; j < n; j++ {
		brow := b[j*k : j*k+k : j*k+k]
		var s float64
		for p, av := range arow {
			s += av * brow[p]
		}
		if accumulate {
			crow[j] += s
		} else {
			crow[j] = s
		}
	}
}
