package tensor

import (
	"runtime"
	"testing"
)

// forceShardThresholds drops every fan-out threshold to zero and
// raises GOMAXPROCS so the worker arena engages on arbitrarily small
// shapes even on a single-CPU box, restoring everything afterwards.
func forceShardThresholds(t *testing.T, procs int) {
	t.Helper()
	oldRow, oldCol, oldIm := gemmMinParFlops, gemmMinParColFlops, im2colMinParCells
	oldProcs := runtime.GOMAXPROCS(procs)
	gemmMinParFlops, gemmMinParColFlops, im2colMinParCells = 0, 0, 0
	t.Cleanup(func() {
		gemmMinParFlops, gemmMinParColFlops, im2colMinParCells = oldRow, oldCol, oldIm
		runtime.GOMAXPROCS(oldProcs)
	})
}

// requireBitwise fails unless got and want are element-for-element
// IDENTICAL — the sharding contract is bitwise, not within-epsilon:
// a reused activation must not change when the worker count does.
func requireBitwise(t *testing.T, op string, m, k, n int, got, want *Tensor) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	for i := range gd {
		if gd[i] != wd[i] {
			t.Fatalf("%s %dx%dx%d: element %d rounds differently sharded: %v vs serial %v",
				op, m, k, n, i, gd[i], wd[i])
		}
	}
}

// TestRowShardBitwiseInvariance extends the width-invariance contract
// to the row-split axis: with the arena forced on, every public
// matmul entry point must produce output BITWISE identical to the
// serial row kernel — at several worker counts, over the property
// grid of odd shapes, on whichever GEMM backend is active (ci.sh runs
// the suite under both). Row blocks are even-aligned, so the kernels
// pair exactly the rows a serial run pairs; this test is what keeps
// that alignment from regressing.
func TestRowShardBitwiseInvariance(t *testing.T) {
	for _, procs := range []int{2, 4} {
		forceShardThresholds(t, procs)
		r := NewRNG(uint64(101 + procs))
		checkAllShapes(t, func(t *testing.T, m, k, n int) {
			a := randMat(r, m, k)
			b := randMat(r, k, n)
			at := randMat(r, k, m)
			bt := randMat(r, n, k)
			seed := randMat(r, m, n)
			for _, acc := range []bool{false, true} {
				want, got := seed.Clone(), seed.Clone()
				gemmRowsImpl(want.Data(), a.Data(), b.Data(), 0, m, k, n, acc)
				Gemm(got.Data(), a.Data(), b.Data(), m, k, n, acc)
				requireBitwise(t, "Gemm", m, k, n, got, want)

				want, got = seed.Clone(), seed.Clone()
				gemmTransARowsImpl(want.Data(), at.Data(), b.Data(), 0, m, m, k, n, acc)
				GemmTransA(got.Data(), at.Data(), b.Data(), k, m, n, acc)
				requireBitwise(t, "GemmTransA", m, k, n, got, want)

				want, got = seed.Clone(), seed.Clone()
				gemmTransBRowsImpl(want.Data(), a.Data(), bt.Data(), 0, m, k, n, acc)
				GemmTransB(got.Data(), a.Data(), bt.Data(), m, k, n, acc)
				requireBitwise(t, "GemmTransB", m, k, n, got, want)
			}
		})
	}
}

// TestColumnShardBitwiseInvariance pins the new split axis: the
// single-row A·Bᵀ product (the batch-1 dense shape) splits by output
// columns in four-wide dot-tile blocks, and every element must round
// exactly as the serial kernel rounds it — including the scalar
// column tail, whose global position must not move when the split
// engages. Covers k<4 (the AVX2 kernel's whole-call scalar fallback),
// odd widths, and widths around tile boundaries.
func TestColumnShardBitwiseInvariance(t *testing.T) {
	for _, procs := range []int{2, 4} {
		forceShardThresholds(t, procs)
		r := NewRNG(uint64(211 + procs))
		for _, k := range []int{1, 3, 4, 17, 64, 231} {
			for _, n := range []int{2, 3, 4, 5, 7, 8, 13, 16, 33, 64, 129} {
				a := randMat(r, 1, k)
				bt := randMat(r, n, k)
				seed := randMat(r, 1, n)
				for _, acc := range []bool{false, true} {
					want, got := seed.Clone(), seed.Clone()
					gemmTransBRowsImpl(want.Data(), a.Data(), bt.Data(), 0, 1, k, n, acc)
					GemmTransB(got.Data(), a.Data(), bt.Data(), 1, k, n, acc)
					requireBitwise(t, "GemmTransB[m=1]", 1, k, n, got, want)
				}
			}
		}
	}
}

// TestParallelIm2ColMatchesSerial checks the sharded gather against
// the serial one over a geometry grid (padding rows, stride, row
// counts that do not divide the block grain). The gather is
// elementwise, so equality is exact by construction — this test
// guards the row-range bookkeeping.
func TestParallelIm2ColMatchesSerial(t *testing.T) {
	forceShardThresholds(t, 4)
	r := NewRNG(307)
	geoms := []ConvGeom{
		{InC: 1, InH: 5, InW: 5, OutC: 1, K: 3, Stride: 1, Pad: 1},
		{InC: 3, InH: 9, InW: 7, OutC: 1, K: 3, Stride: 1, Pad: 1},
		{InC: 2, InH: 8, InW: 8, OutC: 1, K: 5, Stride: 2, Pad: 2},
		{InC: 4, InH: 16, InW: 16, OutC: 1, K: 3, Stride: 1, Pad: 0},
	}
	for _, g := range geoms {
		img := make([]float64, g.InC*g.InH*g.InW)
		for i := range img {
			img[i] = r.NormFloat64()
		}
		want := make([]float64, g.ColRows()*g.ColCols())
		got := make([]float64, len(want))
		g.Im2ColRange(img, want, 0, g.ColRows())
		ParallelIm2Col(g, img, got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("geom %+v: col[%d] = %v sharded, %v serial", g, i, got[i], want[i])
			}
		}
	}
}

// TestClaimParallelHelpersBudget pins the cooperative budget: claims
// are capped at GOMAXPROCS-1 across all claimants, nested claims see
// what is left, and releases restore the full allowance.
func TestClaimParallelHelpersBudget(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	got := ClaimParallelHelpers(8)
	if got != 3 {
		t.Fatalf("first claim granted %d helpers, want GOMAXPROCS-1 = 3", got)
	}
	if n := ClaimParallelHelpers(2); n != 0 {
		ReleaseParallelHelpers(n)
		t.Fatalf("nested claim granted %d helpers from an exhausted budget", n)
	}
	ReleaseParallelHelpers(1)
	if n := ClaimParallelHelpers(5); n != 1 {
		t.Fatalf("post-release claim granted %d helpers, want 1", n)
	}
	ReleaseParallelHelpers(1)
	ReleaseParallelHelpers(got - 1)
	if n := ClaimParallelHelpers(99); n != 3 {
		t.Fatalf("full-budget claim granted %d helpers, want 3", n)
	}
	ReleaseParallelHelpers(3)
	if n := ClaimParallelHelpers(0); n != 0 {
		t.Fatalf("zero-max claim granted %d helpers", n)
	}
}

// TestArenaFanOutAllocationFree pins that a forced fan-out allocates
// nothing once the workers exist: the job is published through global
// state and jobs travel by value, so the kernels stay usable inside
// the repo's zero-allocation forward and step paths at any shape.
func TestArenaFanOutAllocationFree(t *testing.T) {
	forceShardThresholds(t, 4)
	r := NewRNG(401)
	a := randMat(r, 32, 17)
	b := randMat(r, 17, 9)
	c := New(32, 9)
	a1 := randMat(r, 1, 64)
	bt := randMat(r, 24, 64)
	c1 := New(1, 24)
	run := func() {
		Gemm(c.Data(), a.Data(), b.Data(), 32, 17, 9, false)
		GemmTransB(c1.Data(), a1.Data(), bt.Data(), 1, 64, 24, false)
	}
	for i := 0; i < 3; i++ {
		run() // spawn arena workers
	}
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("forced arena fan-out allocates %v times per run, want 0", allocs)
	}
}
