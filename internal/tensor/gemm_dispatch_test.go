package tensor

import "testing"

// restoreBackend reinstalls whatever backend the process selected at
// startup once a backend-forcing test finishes.
func restoreBackend(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		if simdWanted() {
			restoreSIMDBackend()
		} else {
			useScalarBackend()
		}
	})
}

// TestBackendName pins the dispatch contract: the reported backend is
// one of the two known names, and builds that cannot ever select SIMD
// (purego, non-amd64) report scalar.
func TestBackendName(t *testing.T) {
	switch b := Backend(); b {
	case "scalar", "avx2":
	default:
		t.Fatalf("unknown backend %q", b)
	}
	if !simdAvailable() && Backend() != "scalar" {
		t.Fatalf("SIMD-incapable build reports backend %q, want scalar", Backend())
	}
}

// TestForcedScalarBackend checks the runtime fallback arm: with the
// scalar kernels forced, the full property grid still holds against
// the naive reference, serial and forced-parallel.
func TestForcedScalarBackend(t *testing.T) {
	restoreBackend(t)
	useScalarBackend()
	if Backend() != "scalar" {
		t.Fatalf("backend %q after useScalarBackend", Backend())
	}
	r := NewRNG(99)
	checkAllShapes(t, func(t *testing.T, m, k, n int) {
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		if d := maxAbsDiff(MatMul(a, b), naiveMatMul(a, b, false, false)); d > 1e-12 {
			t.Fatalf("scalar MatMul %dx%dx%d diverges by %g", m, k, n, d)
		}
	})
}
