package subnet

import "fmt"

// Edge describes one weight-bearing connection group between two unit
// groups: a dense layer or a conv layer. Mask[o*In+i] reports whether
// the synapse from input unit i to output unit o is present (not
// pruned). A nil Mask means fully connected.
type Edge struct {
	Name    string
	In, Out *Assignment
	Mask    []bool
}

// Validate checks the incremental property over a chain of edges:
// every present synapse must satisfy assign(in) ≤ assign(out), and
// consecutive edges must agree on group sizes. It returns a
// descriptive error naming the first violation, or nil.
//
// This is the library's core structural invariant; the construction
// loop re-validates after every neuron move, and property-based tests
// drive random construction schedules through it.
func Validate(edges []*Edge) error {
	for ei, e := range edges {
		if e.In == nil || e.Out == nil {
			return fmt.Errorf("subnet: edge %d (%s) has nil assignment", ei, e.Name)
		}
		in, out := e.In.Units(), e.Out.Units()
		if e.Mask != nil && len(e.Mask) != in*out {
			return fmt.Errorf("subnet: edge %d (%s) mask length %d, want %d×%d=%d",
				ei, e.Name, len(e.Mask), out, in, in*out)
		}
		if e.In.Subnets() != e.Out.Subnets() {
			return fmt.Errorf("subnet: edge %d (%s) subnet count mismatch %d vs %d",
				ei, e.Name, e.In.Subnets(), e.Out.Subnets())
		}
		for o := 0; o < out; o++ {
			outID := e.Out.ID(o)
			for i := 0; i < in; i++ {
				if e.Mask != nil && !e.Mask[o*in+i] {
					continue
				}
				if !SynapseAllowed(e.In.ID(i), outID) {
					return fmt.Errorf("subnet: edge %d (%s) synapse %d→%d violates incremental property (in subnet %d > out subnet %d)",
						ei, e.Name, i, o, e.In.ID(i), outID)
				}
			}
		}
	}
	return nil
}

// StructuralMask returns the subnet-legality mask for a pair of
// assignments: element o*in+i is true iff a synapse i→o is allowed.
// Layers intersect this with their prune masks to obtain the effective
// connectivity.
func StructuralMask(in, out *Assignment) []bool {
	ni, no := in.Units(), out.Units()
	m := make([]bool, ni*no)
	for o := 0; o < no; o++ {
		outID := out.ID(o)
		for i := 0; i < ni; i++ {
			m[o*ni+i] = in.ID(i) <= outID
		}
	}
	return m
}
