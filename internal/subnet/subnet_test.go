package subnet

import (
	"testing"
	"testing/quick"

	"steppingnet/internal/tensor"
)

func TestNewAssignmentDefaults(t *testing.T) {
	a := NewAssignment(5, 3)
	if a.Units() != 5 || a.Subnets() != 3 {
		t.Fatalf("units=%d subnets=%d", a.Units(), a.Subnets())
	}
	for i := 0; i < 5; i++ {
		if a.ID(i) != 1 {
			t.Fatal("all units must start in subnet 1")
		}
	}
	if a.CountIn(1) != 5 || a.CountIn(3) != 5 {
		t.Fatal("CountIn with all-1 assignment")
	}
}

func TestNewAssignmentPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewAssignment(-1, 2) },
		func() { NewAssignment(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}

func TestSetIDAndCounts(t *testing.T) {
	a := NewAssignment(4, 3)
	a.SetID(0, 2)
	a.SetID(1, 3)
	if a.CountIn(1) != 2 || a.CountIn(2) != 3 || a.CountIn(3) != 4 {
		t.Fatalf("CountIn: %d %d %d", a.CountIn(1), a.CountIn(2), a.CountIn(3))
	}
	if a.CountAt(2) != 1 || a.CountAt(3) != 1 || a.CountAt(1) != 2 {
		t.Fatal("CountAt")
	}
	if !a.ActiveIn(0, 2) || a.ActiveIn(1, 2) {
		t.Fatal("ActiveIn")
	}
	got := a.UnitsAt(1)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("UnitsAt(1)=%v", got)
	}
}

func TestSetIDRangePanic(t *testing.T) {
	a := NewAssignment(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for id out of range")
		}
	}()
	a.SetID(0, 3)
}

func TestFixedValidation(t *testing.T) {
	a := Fixed([]int{1, 2, 2}, 2)
	if a.ID(1) != 2 {
		t.Fatal("Fixed ids")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range id")
		}
	}()
	Fixed([]int{0}, 2)
}

func TestCloneIndependent(t *testing.T) {
	a := NewAssignment(3, 2)
	b := a.Clone()
	b.SetID(0, 2)
	if a.ID(0) != 1 {
		t.Fatal("Clone must not share ids")
	}
}

func TestExpand(t *testing.T) {
	a := Fixed([]int{1, 3, 2}, 3)
	e := a.Expand(2)
	want := []int{1, 1, 3, 3, 2, 2}
	if e.Units() != 6 {
		t.Fatalf("expanded units %d", e.Units())
	}
	for i, w := range want {
		if e.ID(i) != w {
			t.Fatalf("Expand ids %v", e.IDs())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for repeat<=0")
		}
	}()
	a.Expand(0)
}

func TestPrefix(t *testing.T) {
	a := Prefix(6, []int{2, 2, 1})
	want := []int{1, 1, 2, 2, 3, 3} // leftover unit goes to subnet N
	for i, w := range want {
		if a.ID(i) != w {
			t.Fatalf("Prefix ids %v, want %v", a.IDs(), want)
		}
	}
	if a.Subnets() != 3 {
		t.Fatal("Prefix subnet count")
	}
}

func TestSynapseAllowed(t *testing.T) {
	if !SynapseAllowed(1, 1) || !SynapseAllowed(1, 3) {
		t.Fatal("small→large must be allowed")
	}
	if SynapseAllowed(3, 1) {
		t.Fatal("large→small must be forbidden")
	}
}

func TestStructuralMask(t *testing.T) {
	in := Fixed([]int{1, 2}, 2)
	out := Fixed([]int{1, 2}, 2)
	m := StructuralMask(in, out)
	// out 0 (subnet1): in0 allowed, in1 (subnet2) forbidden.
	// out 1 (subnet2): both allowed.
	want := []bool{true, false, true, true}
	for i, w := range want {
		if m[i] != w {
			t.Fatalf("mask %v want %v", m, want)
		}
	}
}

func TestValidateAcceptsLegalChain(t *testing.T) {
	a := Fixed([]int{1, 2}, 2)
	b := Fixed([]int{1, 2, 2}, 2)
	e := &Edge{Name: "fc1", In: a, Out: b, Mask: StructuralMask(a, b)}
	if err := Validate([]*Edge{e}); err != nil {
		t.Fatal(err)
	}
	// nil mask with an all-ones assignment is also legal.
	c := Fixed([]int{2, 2}, 2)
	e2 := &Edge{Name: "fc2", In: b, Out: c}
	if err := Validate([]*Edge{e, e2}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsViolation(t *testing.T) {
	in := Fixed([]int{2}, 2)
	out := Fixed([]int{1}, 2)
	e := &Edge{Name: "bad", In: in, Out: out} // nil mask = fully connected
	if err := Validate([]*Edge{e}); err == nil {
		t.Fatal("want violation error")
	}
	// Masking out the illegal synapse makes it legal.
	e.Mask = []bool{false}
	if err := Validate([]*Edge{e}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadMaskLength(t *testing.T) {
	in := Fixed([]int{1}, 2)
	out := Fixed([]int{1, 1}, 2)
	e := &Edge{Name: "fc", In: in, Out: out, Mask: make([]bool, 3)}
	if err := Validate([]*Edge{e}); err == nil {
		t.Fatal("want mask-length error")
	}
}

func TestValidateRejectsSubnetCountMismatch(t *testing.T) {
	in := Fixed([]int{1}, 2)
	out := Fixed([]int{1}, 3)
	if err := Validate([]*Edge{{Name: "fc", In: in, Out: out}}); err == nil {
		t.Fatal("want subnet-count error")
	}
}

// Property: StructuralMask always passes Validate, for random
// assignments — legality masks are legal by construction.
func TestStructuralMaskAlwaysLegal(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 1 + r.Intn(4)
		ni, no := 1+r.Intn(8), 1+r.Intn(8)
		in := NewAssignment(ni, n)
		out := NewAssignment(no, n)
		for i := 0; i < ni; i++ {
			in.SetID(i, 1+r.Intn(n))
		}
		for o := 0; o < no; o++ {
			out.SetID(o, 1+r.Intn(n))
		}
		e := &Edge{Name: "rand", In: in, Out: out, Mask: StructuralMask(in, out)}
		return Validate([]*Edge{e}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: moving a unit to a LARGER subnet can never create a
// violation on its incoming edge (its inputs' ids stay ≤ its new id
// whenever they were ≤ the old one is not guaranteed — but the
// structural mask recomputed after the move must always be legal and
// must only ever REMOVE outgoing synapses).
func TestMoveMonotonicity(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 2 + r.Intn(3)
		units := 2 + r.Intn(6)
		in := NewAssignment(units, n)
		out := NewAssignment(units, n)
		for i := 0; i < units; i++ {
			in.SetID(i, 1+r.Intn(n))
			out.SetID(i, 1+r.Intn(n))
		}
		before := StructuralMask(in, out)
		// Move one input unit up.
		u := r.Intn(units)
		id := in.ID(u)
		if id < n {
			in.SetID(u, id+1)
		}
		after := StructuralMask(in, out)
		for o := 0; o < units; o++ {
			for i := 0; i < units; i++ {
				if i == u && after[o*units+i] && !before[o*units+i] {
					return false // moving up must not ADD outgoing synapses
				}
				if i != u && after[o*units+i] != before[o*units+i] {
					return false // other units unaffected
				}
			}
		}
		return Validate([]*Edge{{Name: "m", In: in, Out: out, Mask: after}}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
