// Package subnet maintains the unit→subnet assignment bookkeeping at
// the heart of SteppingNet. Every width-bearing layer output (a neuron
// in a fully-connected layer, a filter in a convolutional layer — the
// paper calls both "neurons") is assigned to exactly one subnet index
// in 1..N, meaning "the smallest subnet that contains this unit".
// Subnet s then consists of every unit with assignment ≤ s, and a
// synapse u→v may exist only if assign(u) ≤ assign(v): units added by
// a larger subnet never feed units of a smaller subnet, which is the
// incremental property that makes results of smaller subnets reusable
// by larger ones (paper §II, §III-A).
package subnet

import "fmt"

// MaxSubnets is a subnet index larger than any real assignment; using
// it as the active subnet in an inference context activates every
// unit (i.e. runs the full network).
const MaxSubnets = 1 << 30

// Assignment maps each unit of one layer-output group to the index
// (1-based) of the smallest subnet containing it. N is the total
// number of subnets.
type Assignment struct {
	ids []int
	n   int
}

// NewAssignment creates an assignment for units unit count, all
// initially in subnet 1 (the paper initializes the smallest subnet
// with the whole original network, Fig. 5a). n is the number of
// subnets and must be ≥ 1.
func NewAssignment(units, n int) *Assignment {
	if units < 0 {
		panic(fmt.Sprintf("subnet: negative unit count %d", units))
	}
	if n < 1 {
		panic(fmt.Sprintf("subnet: need at least one subnet, got %d", n))
	}
	ids := make([]int, units)
	for i := range ids {
		ids[i] = 1
	}
	return &Assignment{ids: ids, n: n}
}

// Fixed creates an assignment with explicit per-unit ids; used by the
// any-width baseline and by tests. It panics if any id is outside
// 1..n.
func Fixed(ids []int, n int) *Assignment {
	a := &Assignment{ids: append([]int(nil), ids...), n: n}
	for i, id := range a.ids {
		if id < 1 || id > n {
			panic(fmt.Sprintf("subnet: unit %d has id %d outside 1..%d", i, id, n))
		}
	}
	return a
}

// Units returns the number of units in the group.
func (a *Assignment) Units() int { return len(a.ids) }

// Subnets returns N, the number of subnets.
func (a *Assignment) Subnets() int { return a.n }

// ID returns the subnet id of unit i.
func (a *Assignment) ID(i int) int { return a.ids[i] }

// SetID reassigns unit i to subnet id. It panics when id is outside
// 1..N. Moving a unit to a larger subnet is how neurons "flow" during
// construction.
func (a *Assignment) SetID(i, id int) {
	if id < 1 || id > a.n {
		panic(fmt.Sprintf("subnet: id %d outside 1..%d", id, a.n))
	}
	a.ids[i] = id
}

// IDs returns the underlying id slice. Callers must treat it as
// read-only; use SetID to mutate.
func (a *Assignment) IDs() []int { return a.ids }

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	return &Assignment{ids: append([]int(nil), a.ids...), n: a.n}
}

// CountIn returns how many units belong to subnet s (assignment ≤ s).
func (a *Assignment) CountIn(s int) int {
	c := 0
	for _, id := range a.ids {
		if id <= s {
			c++
		}
	}
	return c
}

// CountAt returns how many units have assignment exactly s.
func (a *Assignment) CountAt(s int) int {
	c := 0
	for _, id := range a.ids {
		if id == s {
			c++
		}
	}
	return c
}

// ActiveIn reports whether unit i participates in subnet s.
func (a *Assignment) ActiveIn(i, s int) bool { return a.ids[i] <= s }

// UnitsAt returns the indices of units assigned exactly to subnet s.
func (a *Assignment) UnitsAt(s int) []int {
	var out []int
	for i, id := range a.ids {
		if id == s {
			out = append(out, i)
		}
	}
	return out
}

// Expand replicates each unit's id `repeat` times, producing the
// per-element assignment of a flattened feature map: a conv layer
// assigns ids per filter (channel), and the dense layer that follows a
// Flatten sees H*W input elements per channel.
func (a *Assignment) Expand(repeat int) *Assignment {
	if repeat <= 0 {
		panic(fmt.Sprintf("subnet: Expand repeat must be positive, got %d", repeat))
	}
	ids := make([]int, 0, len(a.ids)*repeat)
	for _, id := range a.ids {
		for k := 0; k < repeat; k++ {
			ids = append(ids, id)
		}
	}
	return &Assignment{ids: ids, n: a.n}
}

// SynapseAllowed reports whether a synapse from an input unit with id
// inID to an output unit with id outID respects the incremental
// property (paper §III-A: "the extra neurons in the larger subnet
// should not have synapses to the neurons in the smaller subnet").
func SynapseAllowed(inID, outID int) bool { return inID <= outID }

// Prefix builds the regular, any-width-style assignment: the first
// counts[0] units belong to subnet 1, the next counts[1] to subnet 2,
// and so on. The sum of counts may be less than units; leftover units
// are assigned to subnet N (they exist only in the largest subnet).
func Prefix(units int, counts []int) *Assignment {
	n := len(counts)
	if n < 1 {
		panic("subnet: Prefix needs at least one count")
	}
	a := NewAssignment(units, n)
	idx := 0
	for s, c := range counts {
		for k := 0; k < c && idx < units; k++ {
			a.ids[idx] = s + 1
			idx++
		}
	}
	for ; idx < units; idx++ {
		a.ids[idx] = n
	}
	return a
}
