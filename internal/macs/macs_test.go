package macs

import (
	"strings"
	"testing"

	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

func model(t *testing.T) *models.Model {
	t.Helper()
	m := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: 1,
	})
	r := tensor.NewRNG(2)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for u := 1; u < a.Units(); u++ {
			a.SetID(u, 1+r.Intn(3))
		}
	}
	return m
}

func TestProfileTotalsMatchNetwork(t *testing.T) {
	m := model(t)
	p := New(m.Net, 3)
	for s := 1; s <= 3; s++ {
		if p.Total(s) != m.Net.MACs(s) {
			t.Fatalf("subnet %d: profile %d vs network %d", s, p.Total(s), m.Net.MACs(s))
		}
	}
}

func TestDeltasSumToTotal(t *testing.T) {
	m := model(t)
	p := New(m.Net, 3)
	var sum int64
	for s := 1; s <= 3; s++ {
		sum += p.Delta(s)
	}
	if sum != p.Total(3) {
		t.Fatalf("deltas sum %d != total %d", sum, p.Total(3))
	}
}

func TestCheckMonotonePasses(t *testing.T) {
	m := model(t)
	p := New(m.Net, 3)
	if err := p.CheckMonotone(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckMonotoneDetectsViolation(t *testing.T) {
	m := model(t)
	p := New(m.Net, 3)
	// Corrupt the profile by hand.
	p.Layers[0].PerSubnet[2] = p.Layers[0].PerSubnet[1] - 1
	if err := p.CheckMonotone(); err == nil {
		t.Fatal("want violation")
	}
}

func TestRenderContainsLayersAndTotals(t *testing.T) {
	m := model(t)
	p := New(m.Net, 3)
	out := p.Render()
	for _, want := range []string{"conv1", "conv3", "TOTAL", "DELTA", "S3 MACs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNewPanicsOnZeroSubnets(t *testing.T) {
	m := model(t)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(m.Net, 0)
}

func TestUnitsInCounts(t *testing.T) {
	m := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Subnets: 2, Rule: nn.RuleIncremental, Seed: 3,
	})
	// Everything starts in subnet 1.
	p := New(m.Net, 2)
	for _, l := range p.Layers {
		if l.UnitsIn[0] != l.Units || l.UnitsIn[1] != l.Units {
			t.Fatalf("layer %s: UnitsIn %v of %d", l.Name, l.UnitsIn, l.Units)
		}
	}
}
