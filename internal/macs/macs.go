// Package macs profiles multiply-accumulate counts — the resource
// axis of the whole paper. It breaks a masked network's cost down
// per layer and per subnet, computes the incremental deltas that
// anytime execution pays, and renders the tables operators use to
// pick budgets.
package macs

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"steppingnet/internal/nn"
)

// LayerProfile is one layer's per-subnet MAC breakdown.
type LayerProfile struct {
	Name string
	// PerSubnet[s-1] is the layer's MAC count when running subnet s.
	PerSubnet []int64
	// Units is the layer's output-unit count; UnitsIn[s-1] how many
	// participate in subnet s.
	Units   int
	UnitsIn []int
}

// Profile is a full network breakdown over subnets 1..N.
type Profile struct {
	Network string
	Subnets int
	Layers  []LayerProfile
}

// New profiles every masked layer of the network for subnets 1..n.
func New(net *nn.Network, n int) *Profile {
	if n < 1 {
		panic(fmt.Sprintf("macs: need at least one subnet, got %d", n))
	}
	p := &Profile{Network: net.Name(), Subnets: n}
	for _, m := range net.MaskedLayers() {
		lp := LayerProfile{Name: m.Name(), Units: m.OutAssignment().Units()}
		for s := 1; s <= n; s++ {
			lp.PerSubnet = append(lp.PerSubnet, m.MACs(s))
			lp.UnitsIn = append(lp.UnitsIn, m.OutAssignment().CountIn(s))
		}
		p.Layers = append(p.Layers, lp)
	}
	return p
}

// Total returns the network MACs of subnet s.
func (p *Profile) Total(s int) int64 {
	var t int64
	for _, l := range p.Layers {
		t += l.PerSubnet[s-1]
	}
	return t
}

// Delta returns the incremental MACs of expanding subnet s-1 to s
// (for s=1, the cost of subnet 1 itself). This is what the anytime
// engine pays on the backbone.
func (p *Profile) Delta(s int) int64 {
	if s == 1 {
		return p.Total(1)
	}
	return p.Total(s) - p.Total(s-1)
}

// Render prints the per-layer table: one row per layer, one column
// pair (MACs, units) per subnet.
func (p *Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MAC profile of %s (%d subnets)\n", p.Network, p.Subnets)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "layer")
	for s := 1; s <= p.Subnets; s++ {
		fmt.Fprintf(tw, "\tS%d MACs\tS%d units", s, s)
	}
	fmt.Fprintln(tw)
	for _, l := range p.Layers {
		fmt.Fprint(tw, l.Name)
		for s := 1; s <= p.Subnets; s++ {
			fmt.Fprintf(tw, "\t%d\t%d/%d", l.PerSubnet[s-1], l.UnitsIn[s-1], l.Units)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "TOTAL")
	for s := 1; s <= p.Subnets; s++ {
		fmt.Fprintf(tw, "\t%d\t", p.Total(s))
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "DELTA")
	for s := 1; s <= p.Subnets; s++ {
		fmt.Fprintf(tw, "\t+%d\t", p.Delta(s))
	}
	fmt.Fprintln(tw)
	tw.Flush()
	return b.String()
}

// CheckMonotone verifies MACs never shrink as the subnet index grows
// — an invariant of nested subnets — and names the first violating
// layer.
func (p *Profile) CheckMonotone() error {
	for _, l := range p.Layers {
		for s := 1; s < p.Subnets; s++ {
			if l.PerSubnet[s] < l.PerSubnet[s-1] {
				return fmt.Errorf("macs: layer %s shrinks from subnet %d (%d) to %d (%d)",
					l.Name, s, l.PerSubnet[s-1], s+1, l.PerSubnet[s])
			}
		}
	}
	return nil
}
