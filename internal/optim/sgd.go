// Package optim provides the stochastic-gradient-descent machinery
// for the reproduction: SGD with momentum and weight decay, plus
// simple learning-rate schedules. The paper's learning-rate
// suppression β^(j−i) is applied inside the masked layers (it is
// per-unit, not per-parameter), so the optimizer stays generic.
package optim

import (
	"fmt"

	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

// SGD updates parameters with classical momentum:
// v ← μ·v − lr·(g + wd·w); w ← w + v.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*nn.Param]*tensor.Tensor
}

// NewSGD constructs the optimizer. lr must be positive; momentum and
// weight decay must be non-negative.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("optim: non-positive learning rate %g", lr))
	}
	if momentum < 0 || momentum >= 1 {
		panic(fmt.Sprintf("optim: momentum %g outside [0,1)", momentum))
	}
	if weightDecay < 0 {
		panic(fmt.Sprintf("optim: negative weight decay %g", weightDecay))
	}
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*nn.Param]*tensor.Tensor)}
}

// Step applies one update to every parameter and zeroes the
// gradients.
func (o *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		v := o.velocity[p]
		if v == nil {
			v = tensor.New(p.Value.Shape()...)
			o.velocity[p] = v
		}
		pv, pg, vd := p.Value.Data(), p.Grad.Data(), v.Data()
		for i := range pv {
			g := pg[i] + o.WeightDecay*pv[i]
			vd[i] = o.Momentum*vd[i] - o.LR*g
			pv[i] += vd[i]
		}
		p.ZeroGrad()
	}
}

// Schedule maps a 0-based epoch to a learning rate.
type Schedule interface {
	LR(epoch int) float64
}

// ConstSchedule always returns the same rate.
type ConstSchedule float64

// LR implements Schedule.
func (c ConstSchedule) LR(int) float64 { return float64(c) }

// StepSchedule decays Base by Gamma every Every epochs.
type StepSchedule struct {
	Base  float64
	Gamma float64
	Every int
}

// LR implements Schedule.
func (s StepSchedule) LR(epoch int) float64 {
	lr := s.Base
	if s.Every <= 0 {
		return lr
	}
	for e := s.Every; e <= epoch; e += s.Every {
		lr *= s.Gamma
	}
	return lr
}
