package optim

import (
	"math"
	"testing"

	"steppingnet/internal/nn"
)

func TestSGDPlainStep(t *testing.T) {
	p := nn.NewParam("w", 2)
	p.Value.Data()[0] = 1
	p.Value.Data()[1] = -1
	p.Grad.Data()[0] = 0.5
	p.Grad.Data()[1] = -0.5
	o := NewSGD(0.1, 0, 0)
	o.Step([]*nn.Param{p})
	if math.Abs(p.Value.Data()[0]-0.95) > 1e-12 || math.Abs(p.Value.Data()[1]+0.95) > 1e-12 {
		t.Fatalf("after step: %v", p.Value.Data())
	}
	if p.Grad.Data()[0] != 0 {
		t.Fatal("Step must zero gradients")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := nn.NewParam("w", 1)
	o := NewSGD(1, 0.9, 0)
	// Constant gradient 1: velocities -1, -1.9, -2.71, ...
	wantV := []float64{-1, -1.9, -2.71}
	x := 0.0
	for i := 0; i < 3; i++ {
		p.Grad.Data()[0] = 1
		o.Step([]*nn.Param{p})
		x += wantV[i]
		if math.Abs(p.Value.Data()[0]-x) > 1e-12 {
			t.Fatalf("step %d: value %g want %g", i, p.Value.Data()[0], x)
		}
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := nn.NewParam("w", 1)
	p.Value.Data()[0] = 2
	o := NewSGD(0.5, 0, 0.1)
	o.Step([]*nn.Param{p}) // grad 0, decay pulls toward 0
	want := 2 - 0.5*0.1*2
	if math.Abs(p.Value.Data()[0]-want) > 1e-12 {
		t.Fatalf("decay: %g want %g", p.Value.Data()[0], want)
	}
}

func TestSGDMinimizesQuadratic(t *testing.T) {
	// f(w) = (w-3)², grad = 2(w-3); SGD must converge to 3.
	p := nn.NewParam("w", 1)
	o := NewSGD(0.1, 0.5, 0)
	for i := 0; i < 200; i++ {
		p.Grad.Data()[0] = 2 * (p.Value.Data()[0] - 3)
		o.Step([]*nn.Param{p})
	}
	if math.Abs(p.Value.Data()[0]-3) > 1e-6 {
		t.Fatalf("converged to %g", p.Value.Data()[0])
	}
}

func TestNewSGDValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSGD(0, 0, 0) },
		func() { NewSGD(0.1, -0.1, 0) },
		func() { NewSGD(0.1, 1.0, 0) },
		func() { NewSGD(0.1, 0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}

func TestStepSchedule(t *testing.T) {
	s := StepSchedule{Base: 1, Gamma: 0.1, Every: 10}
	cases := map[int]float64{0: 1, 9: 1, 10: 0.1, 19: 0.1, 20: 0.01}
	for e, want := range cases {
		if got := s.LR(e); math.Abs(got-want) > 1e-12 {
			t.Fatalf("epoch %d: %g want %g", e, got, want)
		}
	}
	if ConstSchedule(0.3).LR(99) != 0.3 {
		t.Fatal("const schedule")
	}
	if (StepSchedule{Base: 2, Gamma: 0.5, Every: 0}).LR(100) != 2 {
		t.Fatal("Every<=0 must not decay")
	}
}
