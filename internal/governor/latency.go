package governor

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// LatencyModel maps wall-clock deadlines to MAC budgets and subnet
// depths. It pairs the model's per-step MAC ladder (StepCosts) with
// per-step wall-clock latencies calibrated at startup
// (infer.Engine.CalibrateSteps), turning the paper's MAC-denominated
// anytime property into the time-denominated one a serving deadline
// actually constrains. Both slices are indexed by s-1 and must have
// equal length n ≥ 1.
type LatencyModel struct {
	// StepMACs[s-1] is the incremental MAC cost of stepping from
	// subnet s-1 to s (backbone delta + head at s), from StepCosts.
	StepMACs []int64
	// StepTime[s-1] is the calibrated wall-clock cost of the same
	// step at batch 1.
	StepTime []time.Duration
}

// Validate reports structural errors: mismatched or empty ladders,
// non-positive step times that would break rate estimates, negative
// step MAC costs, and ladders whose cumulative sums overflow int64
// (which would silently corrupt WalkTime and MACRate). A model that
// passes Validate has well-defined, monotone WalkTime, BudgetFor and
// MaxSubnetWithin (pinned by the property and fuzz tests).
func (m LatencyModel) Validate() error {
	switch {
	case len(m.StepMACs) == 0:
		return fmt.Errorf("governor: latency model has no steps")
	case len(m.StepMACs) != len(m.StepTime):
		return fmt.Errorf("governor: latency model has %d MAC steps but %d time steps",
			len(m.StepMACs), len(m.StepTime))
	}
	var macSum int64
	for s, c := range m.StepMACs {
		if c < 0 {
			return fmt.Errorf("governor: step %d has negative MAC cost %d", s+1, c)
		}
		if macSum+c < macSum {
			return fmt.Errorf("governor: cumulative MAC cost overflows at step %d", s+1)
		}
		macSum += c
	}
	var timeSum time.Duration
	for s, d := range m.StepTime {
		if d <= 0 {
			return fmt.Errorf("governor: step %d has non-positive calibrated time %v", s+1, d)
		}
		if timeSum+d < timeSum {
			return fmt.Errorf("governor: cumulative step time overflows at step %d", s+1)
		}
		timeSum += d
	}
	return nil
}

// Subnets returns n, the depth of the ladder.
func (m LatencyModel) Subnets() int { return len(m.StepMACs) }

// WalkTime returns the calibrated wall-clock cost of walking from a
// cold engine up to subnet s (the sum of the first s step times).
func (m LatencyModel) WalkTime(s int) time.Duration {
	var total time.Duration
	for i := 0; i < s && i < len(m.StepTime); i++ {
		total += m.StepTime[i]
	}
	return total
}

// MACRate returns the measured MAC throughput over the full ladder
// walk, in MACs per second — the machine-specific constant that
// converts time budgets into the paper's MAC budgets. Degenerate
// ladders (overflowing or non-positive sums, possible on models that
// fail Validate) report 0 rather than a negative rate.
func (m LatencyModel) MACRate() float64 {
	var macs int64
	for _, c := range m.StepMACs {
		macs += c
	}
	total := m.WalkTime(m.Subnets())
	if total <= 0 || macs <= 0 {
		return 0
	}
	return float64(macs) / total.Seconds()
}

// BudgetFor converts a wall-clock budget into a MAC budget at the
// calibrated rate. Non-positive durations map to a zero budget, and
// the result is clamped to [0, MaxInt64] — a fast machine times a
// long deadline must saturate, not overflow into a negative budget.
func (m LatencyModel) BudgetFor(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	b := m.MACRate() * d.Seconds()
	switch {
	case b <= 0 || math.IsNaN(b):
		return 0
	case b >= math.MaxInt64:
		return math.MaxInt64
	}
	return int64(b)
}

// MaxSubnetWithin returns the deepest subnet whose full cold walk
// (steps 1..s) fits within d, or 0 when not even subnet 1 does. Like
// WalkTime it never reads past a short StepTime slice, so it is total
// even on models Validate rejects (a fuzz-found hardening: a
// length-mismatched model used to panic here).
func (m LatencyModel) MaxSubnetWithin(d time.Duration) int {
	best := 0
	var total time.Duration
	for s := 1; s <= m.Subnets() && s <= len(m.StepTime); s++ {
		total += m.StepTime[s-1]
		if total > d {
			break
		}
		best = s
	}
	return best
}

// ModelRef is an atomically swappable reference to a LatencyModel —
// the handoff point between a calibration refresh loop (which builds
// a new model from live timing observations) and schedulers planning
// against the current one. Readers Load a consistent snapshot;
// writers Store a complete replacement. A stored model must be
// treated as immutable: refresh loops build a fresh StepTime slice
// per swap instead of mutating the published one. The zero ModelRef
// holds no model (Load returns the zero LatencyModel).
type ModelRef struct {
	p atomic.Pointer[LatencyModel]
}

// Store publishes m as the current model. The caller must not mutate
// m's slices afterwards.
func (r *ModelRef) Store(m LatencyModel) {
	r.p.Store(&m)
}

// Load returns the most recently stored model (the zero LatencyModel
// when nothing has been stored). The returned slices are shared with
// every other Load of the same snapshot and must not be mutated.
func (r *ModelRef) Load() LatencyModel {
	if m := r.p.Load(); m != nil {
		return *m
	}
	return LatencyModel{}
}

// DeadlineBudget adapts a LatencyModel plus a per-tick deadline trace
// into a Budgeter, so a Governor can be driven by time deadlines
// instead of raw MAC numbers: each tick's budget is the MACs the
// calibrated machine can execute within that tick's deadline. The
// trace repeats cyclically, like TraceBudget.
type DeadlineBudget struct {
	Model     LatencyModel
	Deadlines []time.Duration
}

// Budget implements Budgeter.
func (db DeadlineBudget) Budget(t int) int64 {
	if len(db.Deadlines) == 0 {
		return 0
	}
	return db.Model.BudgetFor(db.Deadlines[t%len(db.Deadlines)])
}
