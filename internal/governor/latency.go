package governor

import (
	"fmt"
	"time"
)

// LatencyModel maps wall-clock deadlines to MAC budgets and subnet
// depths. It pairs the model's per-step MAC ladder (StepCosts) with
// per-step wall-clock latencies calibrated at startup
// (infer.Engine.CalibrateSteps), turning the paper's MAC-denominated
// anytime property into the time-denominated one a serving deadline
// actually constrains. Both slices are indexed by s-1 and must have
// equal length n ≥ 1.
type LatencyModel struct {
	// StepMACs[s-1] is the incremental MAC cost of stepping from
	// subnet s-1 to s (backbone delta + head at s), from StepCosts.
	StepMACs []int64
	// StepTime[s-1] is the calibrated wall-clock cost of the same
	// step at batch 1.
	StepTime []time.Duration
}

// Validate reports structural errors (mismatched or empty ladders,
// non-positive step times that would break rate estimates).
func (m LatencyModel) Validate() error {
	switch {
	case len(m.StepMACs) == 0:
		return fmt.Errorf("governor: latency model has no steps")
	case len(m.StepMACs) != len(m.StepTime):
		return fmt.Errorf("governor: latency model has %d MAC steps but %d time steps",
			len(m.StepMACs), len(m.StepTime))
	}
	for s, d := range m.StepTime {
		if d <= 0 {
			return fmt.Errorf("governor: step %d has non-positive calibrated time %v", s+1, d)
		}
	}
	return nil
}

// Subnets returns n, the depth of the ladder.
func (m LatencyModel) Subnets() int { return len(m.StepMACs) }

// WalkTime returns the calibrated wall-clock cost of walking from a
// cold engine up to subnet s (the sum of the first s step times).
func (m LatencyModel) WalkTime(s int) time.Duration {
	var total time.Duration
	for i := 0; i < s && i < len(m.StepTime); i++ {
		total += m.StepTime[i]
	}
	return total
}

// MACRate returns the measured MAC throughput over the full ladder
// walk, in MACs per second — the machine-specific constant that
// converts time budgets into the paper's MAC budgets.
func (m LatencyModel) MACRate() float64 {
	var macs int64
	for _, c := range m.StepMACs {
		macs += c
	}
	total := m.WalkTime(m.Subnets())
	if total <= 0 {
		return 0
	}
	return float64(macs) / total.Seconds()
}

// BudgetFor converts a wall-clock budget into a MAC budget at the
// calibrated rate. Non-positive durations map to a zero budget.
func (m LatencyModel) BudgetFor(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return int64(m.MACRate() * d.Seconds())
}

// MaxSubnetWithin returns the deepest subnet whose full cold walk
// (steps 1..s) fits within d, or 0 when not even subnet 1 does.
func (m LatencyModel) MaxSubnetWithin(d time.Duration) int {
	best := 0
	var total time.Duration
	for s := 1; s <= m.Subnets(); s++ {
		total += m.StepTime[s-1]
		if total > d {
			break
		}
		best = s
	}
	return best
}

// DeadlineBudget adapts a LatencyModel plus a per-tick deadline trace
// into a Budgeter, so a Governor can be driven by time deadlines
// instead of raw MAC numbers: each tick's budget is the MACs the
// calibrated machine can execute within that tick's deadline. The
// trace repeats cyclically, like TraceBudget.
type DeadlineBudget struct {
	Model     LatencyModel
	Deadlines []time.Duration
}

// Budget implements Budgeter.
func (db DeadlineBudget) Budget(t int) int64 {
	if len(db.Deadlines) == 0 {
		return 0
	}
	return db.Model.BudgetFor(db.Deadlines[t%len(db.Deadlines)])
}
