package governor

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// mustController builds a controller or fails the test.
func mustController(t *testing.T, cfg ControllerConfig) *Controller {
	t.Helper()
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	return ctl
}

// violatingObs returns observations where class c is loudly violating
// a 1ms p99 target and every other class is healthy.
func violatingObs(classes, c int) []ClassObs {
	obs := make([]ClassObs, classes)
	for i := range obs {
		obs[i] = ClassObs{P99: 100 * time.Microsecond, HitRate: 1, Served: 100}
	}
	obs[c] = ClassObs{P99: 50 * time.Millisecond, HitRate: 0.5, Served: 100}
	return obs
}

// healthyObs returns observations where every class is comfortably
// inside any 1ms-scale SLO.
func healthyObs(classes int) []ClassObs {
	obs := make([]ClassObs, classes)
	for i := range obs {
		obs[i] = ClassObs{P99: 100 * time.Microsecond, HitRate: 1, Served: 100}
	}
	return obs
}

// TestControllerEscalatesLowestClassFirst pins the brownout ladder's
// core ordering contract: a violating high class browns out class 0
// level by level (narrow → fast-fail → shed) until class 0 is fully
// shed, and only then touches class 1, and only after that the
// violating class itself.
func TestControllerEscalatesLowestClassFirst(t *testing.T) {
	ctl := mustController(t, ControllerConfig{
		Classes: 3, Subnets: 4,
		SLOs: []SLO{2: {P99Target: time.Millisecond}},
	})
	obs := violatingObs(3, 2)

	// Class 0 ladder with n=4, floor=1: narrow 4→2→1 (2 levels),
	// fast-fail ×2 ×4 ×8 (3 levels), shed (1 level) = 6 levels.
	wantMax := 6
	if got := ctl.MaxLevel(0); got != wantMax {
		t.Fatalf("MaxLevel(0) = %d, want %d", got, wantMax)
	}

	type knobs struct {
		cap   int
		scale float64
		share int
	}
	wantLadder := []knobs{
		{cap: 2, scale: 1, share: 0}, // narrow: 4→2
		{cap: 1, scale: 1, share: 0}, // narrow: 2→1 (floor)
		{cap: 1, scale: 2, share: 0}, // fast-fail ×2
		{cap: 1, scale: 4, share: 0}, // fast-fail ×4
		{cap: 1, scale: 8, share: 0}, // fast-fail ×8
		{cap: 1, scale: 8, share: 1}, // shed
	}
	for i, want := range wantLadder {
		res := ctl.Tick(obs)
		if len(res.Violations) != 1 || res.Violations[0] != 2 {
			t.Fatalf("tick %d: violations = %v, want [2]", i, res.Violations)
		}
		if len(res.Transitions) != 1 || res.Transitions[0].Class != 0 ||
			res.Transitions[0].To != i+1 {
			t.Fatalf("tick %d: transitions = %+v, want class 0 → level %d", i, res.Transitions, i+1)
		}
		pol := res.Policy
		got := knobs{pol.ClassShedCap(0), pol.ClassAdmitScale(0), pol.ClassQueueShare(0)}
		if got != want {
			t.Fatalf("tick %d: class 0 knobs = %+v, want %+v", i, got, want)
		}
		if pol.ClassShedCap(1) != 0 || pol.ClassShedCap(2) != 0 {
			t.Fatalf("tick %d: classes 1/2 browned before class 0 exhausted: %+v", i, pol)
		}
		if pol.Lookahead <= 0 {
			t.Fatalf("tick %d: Lookahead not engaged while browned out", i)
		}
	}

	// Class 0 exhausted: the next escalations move to class 1.
	res := ctl.Tick(obs)
	if len(res.Transitions) != 1 || res.Transitions[0].Class != 1 || res.Transitions[0].To != 1 {
		t.Fatalf("after class 0 exhausted: transitions = %+v, want class 1 → level 1", res.Transitions)
	}
	// Exhaust class 1 too; then the violating class 2 is browned last.
	for ctl.Levels()[1] < ctl.MaxLevel(1) {
		res = ctl.Tick(obs)
	}
	res = ctl.Tick(obs)
	if len(res.Transitions) != 1 || res.Transitions[0].Class != 2 {
		t.Fatalf("after classes 0,1 exhausted: transitions = %+v, want class 2", res.Transitions)
	}
}

// TestControllerRecoversAdditivelyLIFO pins the recovery half of AIMD:
// one level released per RecoverAfter consecutive healthy ticks, the
// highest browned class first, and the healthy streak restarting after
// every release.
func TestControllerRecoversAdditivelyLIFO(t *testing.T) {
	ctl := mustController(t, ControllerConfig{
		Classes: 2, Subnets: 4, RecoverAfter: 2,
		SLOs: []SLO{1: {MinHitRate: 0.99}},
	})
	bad := violatingObs(2, 1)
	good := healthyObs(2)

	// Escalate class 0 to max (6) plus two levels on class 1.
	for i := 0; i < ctl.MaxLevel(0)+2; i++ {
		ctl.Tick(bad)
	}
	if got := ctl.Levels(); got[0] != ctl.MaxLevel(0) || got[1] != 2 {
		t.Fatalf("levels after escalation = %v", got)
	}

	// Recovery: every 2nd healthy tick releases one level, class 1
	// (the most recently browned) first.
	wantLevels := [][]int{
		{6, 2}, {6, 1}, // tick 1: streak=1; tick 2: release class 1
		{6, 1}, {6, 0}, // class 1 again
		{6, 0}, {5, 0}, // class 1 clear → class 0
	}
	for i, want := range wantLevels {
		res := ctl.Tick(good)
		if got := ctl.Levels(); !reflect.DeepEqual(got, want) {
			t.Fatalf("healthy tick %d: levels = %v, want %v", i, got, want)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("healthy tick %d: spurious violations %v", i, res.Violations)
		}
	}

	// Drain fully: policy returns to neutral.
	for i := 0; i < 2*ctl.MaxLevel(0); i++ {
		ctl.Tick(good)
	}
	res := ctl.Tick(good)
	if res.Policy.Active() {
		t.Fatalf("policy still active after full recovery: %+v", res.Policy)
	}
	if res.Policy.Lookahead != 0 {
		t.Fatalf("Lookahead still engaged after recovery: %v", res.Policy.Lookahead)
	}
}

// TestControllerIgnoresQuietClasses pins the MinServed guard: a class
// serving almost nothing cannot be judged violating, no matter how bad
// its percentile looks.
func TestControllerIgnoresQuietClasses(t *testing.T) {
	ctl := mustController(t, ControllerConfig{
		Classes: 2, Subnets: 4, MinServed: 8,
		SLOs: []SLO{0: {P99Target: time.Millisecond}},
	})
	obs := []ClassObs{
		{P99: time.Second, HitRate: 0, Served: 7}, // violating numbers, quiet
		{P99: 0, HitRate: 1, Served: 0},
	}
	for i := 0; i < 5; i++ {
		res := ctl.Tick(obs)
		if len(res.Violations) != 0 || len(res.Transitions) != 0 {
			t.Fatalf("quiet class judged violating: %+v", res)
		}
		if res.Policy.Active() {
			t.Fatalf("policy active on quiet traffic: %+v", res.Policy)
		}
	}
}

// TestControllerHonorsSLOMinSubnetFloor pins that a class with an SLO
// narrowing floor is never capped below it, even fully browned out.
func TestControllerHonorsSLOMinSubnetFloor(t *testing.T) {
	ctl := mustController(t, ControllerConfig{
		Classes: 2, Subnets: 4,
		SLOs: []SLO{
			0: {MinSubnet: 3},
			1: {P99Target: time.Millisecond},
		},
	})
	obs := violatingObs(2, 1)
	for i := 0; i < 20; i++ {
		res := ctl.Tick(obs)
		if cap := res.Policy.ClassShedCap(0); cap != 0 && cap < 3 {
			t.Fatalf("tick %d: class 0 capped at %d below its SLO floor 3", i, cap)
		}
	}
}

// TestControllerDeterministic replays one observation sequence through
// two controllers and requires identical policies and transitions —
// the step-clocked determinism the serve-level tests lean on.
func TestControllerDeterministic(t *testing.T) {
	cfg := ControllerConfig{
		Classes: 3, Subnets: 4, RecoverAfter: 3,
		SLOs: []SLO{1: {P99Target: 2 * time.Millisecond}, 2: {MinHitRate: 0.95}},
	}
	a := mustController(t, cfg)
	b := mustController(t, cfg)
	seq := [][]ClassObs{
		violatingObs(3, 1), violatingObs(3, 2), healthyObs(3),
		violatingObs(3, 1), healthyObs(3), healthyObs(3), healthyObs(3),
		violatingObs(3, 2), healthyObs(3), healthyObs(3),
	}
	for round := 0; round < 4; round++ {
		for i, obs := range seq {
			ra, rb := a.Tick(obs), b.Tick(obs)
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("round %d tick %d diverged:\n a: %+v\n b: %+v", round, i, ra, rb)
			}
		}
	}
}

// TestPolicyRefSwapConsistentSnapshot mirrors the ModelRef swap
// property test: concurrent readers racing Store must each see one
// internally consistent policy — never a torn mix of two stores. Every
// stored policy is stamped so any cross-field mixing is detectable.
func TestPolicyRefSwapConsistentSnapshot(t *testing.T) {
	const classes = 3
	mk := func(k int) Policy {
		pol := Policy{
			ShedCap:    make([]int, classes),
			AdmitScale: make([]float64, classes),
			QueueShare: make([]int, classes),
			Level:      make([]int, classes),
		}
		for c := 0; c < classes; c++ {
			pol.ShedCap[c] = k + c
			pol.AdmitScale[c] = float64(2 + k + c)
			pol.QueueShare[c] = k + c + 1
			pol.Level[c] = k
		}
		pol.Lookahead = float64(k)
		return pol
	}
	var ref PolicyRef
	ref.Store(mk(0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for k := 1; ; k++ {
			select {
			case <-stop:
				return
			default:
				ref.Store(mk(k))
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // readers
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				pol := ref.Load()
				k := pol.Level[0]
				for c := 0; c < classes; c++ {
					if pol.ShedCap[c] != k+c || pol.AdmitScale[c] != float64(2+k+c) ||
						pol.QueueShare[c] != k+c+1 || pol.Level[c] != k {
						t.Errorf("torn policy snapshot at stamp %d: %+v", k, pol)
						return
					}
				}
				if pol.Lookahead != float64(k) {
					t.Errorf("torn Lookahead: stamp %d, got %v", k, pol.Lookahead)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	var zero PolicyRef
	if pol := zero.Load(); pol.Active() || pol.ClassAdmitScale(0) != 1 ||
		pol.ClassShedCap(0) != 0 || pol.ClassQueueShare(0) != 0 || pol.ClassLevel(5) != 0 {
		t.Fatalf("zero PolicyRef not neutral: %+v", pol)
	}
}

// TestControllerRelaxExitStage pins the new stage 0 of the brownout
// ladder: with ExitRelaxSteps set, the first escalation levels double
// the early-exit margin relaxation (ExitScale 2, 4, …) WITHOUT
// narrowing anyone's shed cap, the narrow/fast-fail/shed stages follow
// unchanged after it, recovery unwinds stage 0 last, and — the
// compatibility half — ExitRelaxSteps 0 leaves the ladder exactly as
// long as before with ClassExitScale pinned neutral at every level.
func TestControllerRelaxExitStage(t *testing.T) {
	ctl := mustController(t, ControllerConfig{
		Classes: 2, Subnets: 4, ExitRelaxSteps: 2,
		SLOs: []SLO{1: {P99Target: time.Millisecond}},
	})
	obs := violatingObs(2, 1)

	// Class 0 ladder with n=4, floor=1: relax-exit ×2 ×4 (2 levels),
	// narrow 4→2→1 (2), fast-fail ×2 ×4 ×8 (3), shed (1) = 8 levels.
	if got := ctl.MaxLevel(0); got != 8 {
		t.Fatalf("MaxLevel(0) = %d, want 8", got)
	}
	type knobs struct {
		exit  float64
		cap   int
		scale float64
		share int
	}
	wantLadder := []knobs{
		{exit: 2, cap: 0, scale: 1, share: 0}, // relax-exit ×2: caps untouched
		{exit: 4, cap: 0, scale: 1, share: 0}, // relax-exit ×4
		{exit: 4, cap: 2, scale: 1, share: 0}, // narrow: 4→2
		{exit: 4, cap: 1, scale: 1, share: 0}, // narrow: 2→1 (floor)
		{exit: 4, cap: 1, scale: 2, share: 0}, // fast-fail ×2
		{exit: 4, cap: 1, scale: 4, share: 0}, // fast-fail ×4
		{exit: 4, cap: 1, scale: 8, share: 0}, // fast-fail ×8
		{exit: 4, cap: 1, scale: 8, share: 1}, // shed
	}
	for i, want := range wantLadder {
		pol := ctl.Tick(obs).Policy
		got := knobs{pol.ClassExitScale(0), pol.ClassShedCap(0), pol.ClassAdmitScale(0), pol.ClassQueueShare(0)}
		if got != want {
			t.Fatalf("tick %d: class 0 knobs = %+v, want %+v", i, got, want)
		}
		if pol.ClassExitScale(1) != 1 {
			t.Fatalf("tick %d: class 1 exit scale %v, want neutral 1", i, pol.ClassExitScale(1))
		}
	}

	// Recovery: the knob order unwinds in reverse, so stage 0's
	// relaxation is the LAST thing restored (it is the cheapest to
	// hold). Drive the controller healthy until neutral.
	healthy := healthyObs(2)
	sawExitOnly := false
	for i := 0; i < 100 && ctl.Levels()[0] > 0; i++ {
		pol := ctl.Tick(healthy).Policy
		if pol.ClassExitScale(0) > 1 && pol.ClassShedCap(0) == 0 && pol.ClassAdmitScale(0) == 1 {
			sawExitOnly = true
		}
	}
	if ctl.Levels()[0] != 0 {
		t.Fatal("controller did not recover to neutral")
	}
	if !sawExitOnly {
		t.Fatal("recovery never passed through a relax-exit-only policy")
	}

	// Compatibility: ExitRelaxSteps 0 keeps the original ladder length
	// and a neutral exit scale at every level.
	ctl0 := mustController(t, ControllerConfig{
		Classes: 2, Subnets: 4,
		SLOs: []SLO{1: {P99Target: time.Millisecond}},
	})
	if got := ctl0.MaxLevel(0); got != 6 {
		t.Fatalf("ExitRelaxSteps=0 MaxLevel(0) = %d, want 6 (unchanged)", got)
	}
	for i := 0; i < 6; i++ {
		if pol := ctl0.Tick(obs).Policy; pol.ClassExitScale(0) != 1 {
			t.Fatalf("tick %d: ExitRelaxSteps=0 published exit scale %v", i, pol.ClassExitScale(0))
		}
	}

	// Negative steps are a config error.
	if _, err := NewController(ControllerConfig{Classes: 1, Subnets: 2, ExitRelaxSteps: -1}); err == nil {
		t.Fatal("negative ExitRelaxSteps should be rejected")
	}
}
