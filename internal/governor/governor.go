// Package governor models the resource-varying platform of the
// paper's introduction (mobile phones switching power modes,
// autonomous vehicles sharing compute with concurrent tasks) and the
// policy that picks which subnet to run as the available MAC budget
// fluctuates. Combined with infer.Engine it turns SteppingNet's
// incremental property into a deployable control loop: expand while
// budget allows, shrink for free when it does not.
package governor

import (
	"fmt"

	"steppingnet/internal/infer"
	"steppingnet/internal/models"
	"steppingnet/internal/tensor"
)

// Budgeter supplies the MAC budget available at each tick. A tick is
// whatever cadence the platform re-evaluates resources at (a DVFS
// interval, a frame, a scheduler quantum).
type Budgeter interface {
	// Budget returns the MACs the inference task may spend at tick t.
	Budget(t int) int64
}

// TraceBudget replays a fixed budget trace, repeating it cyclically.
type TraceBudget []int64

// Budget implements Budgeter.
func (tb TraceBudget) Budget(t int) int64 {
	if len(tb) == 0 {
		return 0
	}
	return tb[t%len(tb)]
}

// ModeBudget maps platform modes (power-save / balanced / normal …)
// to budgets and replays a mode trace.
type ModeBudget struct {
	Modes map[string]int64
	Trace []string
}

// Budget implements Budgeter.
func (mb ModeBudget) Budget(t int) int64 {
	if len(mb.Trace) == 0 {
		return 0
	}
	return mb.Modes[mb.Trace[t%len(mb.Trace)]]
}

// RandomWalkBudget draws budgets uniformly between Lo and Hi with a
// deterministic generator — a crude model of background-task
// pressure.
type RandomWalkBudget struct {
	Lo, Hi int64
	RNG    *tensor.RNG
}

// Budget implements Budgeter.
func (rw *RandomWalkBudget) Budget(int) int64 {
	if rw.Hi <= rw.Lo {
		return rw.Lo
	}
	return rw.Lo + int64(rw.RNG.Uint64()%uint64(rw.Hi-rw.Lo))
}

// Decision records what the governor did at one tick.
type Decision struct {
	Tick      int
	Budget    int64
	Subnet    int   // subnet selected (0 = even subnet 1 did not fit)
	SpentMACs int64 // MACs actually executed (incremental)
	Reused    bool  // true when a cache from a previous tick was reused
}

// Governor drives an anytime engine under a budget policy for a
// fixed input (e.g. tracking one camera frame across resource
// changes) or per-tick inputs.
type Governor struct {
	model  *models.Model
	engine *infer.Engine
	n      int
	// stepCost[s-1] caches the worst-case incremental cost of
	// stepping from s-1 to s (backbone delta + head at s).
	stepCost []int64
	// Hysteresis keeps the governor from downgrading until the
	// budget has been below the current subnet's retention cost for
	// this many consecutive ticks. Zero disables.
	Hysteresis int

	lowTicks int
}

// New builds a governor over a constructed model with n subnets.
func New(model *models.Model, n int) *Governor {
	if n < 1 {
		panic(fmt.Sprintf("governor: need ≥1 subnets, got %d", n))
	}
	return &Governor{model: model, engine: infer.NewEngine(model.Net), n: n, stepCost: StepCosts(model, n)}
}

// StepCosts returns the worst-case incremental MAC cost of stepping an
// anytime engine from subnet s-1 to s, for s = 1..n (index s-1): the
// backbone MAC delta plus the recomputed classifier head at s. This is
// the cost ladder both the governor's budget policy and the serving
// layer's deadline scheduler plan against.
func StepCosts(model *models.Model, n int) []int64 {
	costs := make([]int64, 0, n)
	var prevBackbone int64
	for s := 1; s <= n; s++ {
		var backbone int64
		for _, m := range model.Movable {
			backbone += m.MACs(s)
		}
		costs = append(costs, backbone-prevBackbone+model.Head.MACs(s))
		prevBackbone = backbone
	}
	return costs
}

// Engine exposes the underlying anytime engine (for Reset).
func (g *Governor) Engine() *infer.Engine { return g.engine }

// Close releases the engine's batch-parallel workers (a no-op for
// governors that only ever saw batch-1 inputs). The governor remains
// usable afterwards.
func (g *Governor) Close() { g.engine.Close() }

// Reset installs a new input.
func (g *Governor) Reset(x *tensor.Tensor) {
	g.engine.Reset(x)
	g.lowTicks = 0
}

// Tick evaluates the budget at tick t and moves the engine to the
// largest subnet whose incremental cost fits. The returned Decision
// records what was paid. The engine's caches make expansion
// incremental: only steps actually taken cost MACs.
func (g *Governor) Tick(t int, b Budgeter) (Decision, error) {
	budget := b.Budget(t)
	cur := g.engine.Current()
	target := g.selectSubnet(cur, budget)
	d := Decision{Tick: t, Budget: budget, Subnet: target}
	if target == 0 {
		return d, nil // cannot afford anything; skip inference this tick
	}
	if target < cur && g.Hysteresis > 0 {
		g.lowTicks++
		if g.lowTicks < g.Hysteresis {
			target = cur // hold the larger subnet a little longer
			d.Subnet = target
		}
	} else {
		g.lowTicks = 0
	}
	_, macs, err := g.engine.Step(target)
	if err != nil {
		return d, err
	}
	d.SpentMACs = macs
	d.Reused = cur > 0
	return d, nil
}

// selectSubnet returns the largest subnet reachable within budget
// from the current one: the sum of remaining step costs up to s must
// fit (stepping down is free on the backbone but still pays the
// head, which stepCost of the target covers conservatively).
func (g *Governor) selectSubnet(cur int, budget int64) int {
	best := 0
	// Cost to stand still or shrink ≈ head recompute of the target.
	for s := 1; s <= g.n; s++ {
		var cost int64
		if s <= cur {
			cost = g.model.Head.MACs(s)
		} else {
			for k := cur + 1; k <= s; k++ {
				cost += g.stepCost[k-1]
			}
			// Intermediate heads are skipped when jumping multiple
			// subnets in one tick; subtract them, keeping only the
			// final head.
			for k := cur + 1; k < s; k++ {
				cost -= g.model.Head.MACs(k)
			}
		}
		if cost <= budget {
			best = s
		}
	}
	return best
}

// Run drives ticks 0..n-1 against the budgeter and returns the
// decision log.
func (g *Governor) Run(ticks int, b Budgeter) ([]Decision, error) {
	log := make([]Decision, 0, ticks)
	for t := 0; t < ticks; t++ {
		d, err := g.Tick(t, b)
		if err != nil {
			return log, err
		}
		log = append(log, d)
	}
	return log, nil
}

// TotalSpent sums the MACs of a decision log.
func TotalSpent(log []Decision) int64 {
	var total int64
	for _, d := range log {
		total += d.SpentMACs
	}
	return total
}

// RecomputeCost returns what the same subnet sequence would cost a
// network without computational reuse (recompute from scratch each
// tick), the comparison the resourcesim example prints.
func (g *Governor) RecomputeCost(log []Decision) int64 {
	var total int64
	for _, d := range log {
		if d.Subnet > 0 {
			total += g.model.Net.MACs(d.Subnet)
		}
	}
	return total
}
