package governor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// randomValidModel draws a Validate-passing latency model: 1..8 steps
// with positive step times and non-negative MAC costs spanning many
// orders of magnitude.
func randomValidModel(rng *rand.Rand) LatencyModel {
	n := 1 + rng.Intn(8)
	m := LatencyModel{StepMACs: make([]int64, n), StepTime: make([]time.Duration, n)}
	for i := 0; i < n; i++ {
		m.StepMACs[i] = rng.Int63n(1 << uint(10+rng.Intn(30)))
		m.StepTime[i] = time.Duration(1 + rng.Int63n(int64(time.Second)<<uint(rng.Intn(8))))
	}
	return m
}

// TestLatencyModelProperties is the property layer over the
// deadline→budget mapping: for any valid model,
//
//   - MaxSubnetWithin is monotone non-decreasing in the deadline and
//     bounded by [0, Subnets];
//   - WalkTime is monotone non-decreasing in the subnet (the MAC
//     budget of a deeper walk can only grow);
//   - BudgetFor is monotone non-decreasing in the deadline and never
//     negative;
//   - the two directions agree: a deadline exactly equal to
//     WalkTime(s) always affords subnet s, and MaxSubnetWithin never
//     claims a subnet whose walk exceeds the deadline.
func TestLatencyModelProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9A0BE57))
	for trial := 0; trial < 300; trial++ {
		m := randomValidModel(rng)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid model: %v", trial, err)
		}
		n := m.Subnets()

		// WalkTime monotone in subnet.
		for s := 1; s <= n; s++ {
			if m.WalkTime(s) < m.WalkTime(s-1) {
				t.Fatalf("trial %d: WalkTime(%d)=%v < WalkTime(%d)=%v",
					trial, s, m.WalkTime(s), s-1, m.WalkTime(s-1))
			}
		}

		// Probe deadlines around every step boundary plus random ones.
		probes := []time.Duration{0, 1, time.Hour * 24 * 365}
		for s := 1; s <= n; s++ {
			w := m.WalkTime(s)
			probes = append(probes, w-1, w, w+1)
		}
		for i := 0; i < 16; i++ {
			probes = append(probes, time.Duration(rng.Int63n(int64(m.WalkTime(n))+2)))
		}

		prevD := time.Duration(math.MinInt64)
		prevSub, prevBudget := -1, int64(-1)
		// Sort-free monotonicity: walk probes in ascending order.
		for _, d := range sortedDurations(probes) {
			sub := m.MaxSubnetWithin(d)
			budget := m.BudgetFor(d)
			if sub < 0 || sub > n {
				t.Fatalf("trial %d: MaxSubnetWithin(%v) = %d out of [0,%d]", trial, d, sub, n)
			}
			if budget < 0 {
				t.Fatalf("trial %d: BudgetFor(%v) = %d negative", trial, d, budget)
			}
			if d >= prevD {
				if sub < prevSub {
					t.Fatalf("trial %d: MaxSubnetWithin not monotone: (%v)→%d after %d", trial, d, sub, prevSub)
				}
				if budget < prevBudget {
					t.Fatalf("trial %d: BudgetFor not monotone: (%v)→%d after %d", trial, d, budget, prevBudget)
				}
			}
			if sub > 0 && m.WalkTime(sub) > d {
				t.Fatalf("trial %d: MaxSubnetWithin(%v)=%d but WalkTime(%d)=%v exceeds it",
					trial, d, sub, sub, m.WalkTime(sub))
			}
			prevD, prevSub, prevBudget = d, sub, budget
		}
		for s := 1; s <= n; s++ {
			if got := m.MaxSubnetWithin(m.WalkTime(s)); got < s {
				t.Fatalf("trial %d: deadline == WalkTime(%d) affords only subnet %d", trial, s, got)
			}
		}
	}
}

// sortedDurations returns a sorted copy (insertion sort; probe lists
// are tiny).
func sortedDurations(ds []time.Duration) []time.Duration {
	out := append([]time.Duration(nil), ds...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestModelRefSwapPreservesInvariantsMidFlight is the refresh-loop
// contract: while one goroutine keeps swapping valid models into a
// ModelRef (as the serving layer's calibration refresh does), every
// concurrent reader must observe a consistent snapshot — a model that
// passes Validate and keeps the monotonicity properties — never a
// torn mix of two models. Run under -race in CI.
func TestModelRefSwapPreservesInvariantsMidFlight(t *testing.T) {
	var ref ModelRef
	rng := rand.New(rand.NewSource(0x5AFE))
	ref.Store(randomValidModel(rng))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the refresher
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ref.Store(randomValidModel(rng))
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		seed := int64(100 + r)
		go func() { // schedulers
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				m := ref.Load()
				if err := m.Validate(); err != nil {
					t.Errorf("loaded torn/invalid model: %v", err)
					return
				}
				n := m.Subnets()
				d1 := time.Duration(rr.Int63n(int64(time.Second)))
				d2 := d1 + time.Duration(rr.Int63n(int64(time.Second)))
				if m.MaxSubnetWithin(d1) > m.MaxSubnetWithin(d2) {
					t.Errorf("monotonicity broken on a swapped model")
					return
				}
				if m.BudgetFor(d1) > m.BudgetFor(d2) || m.BudgetFor(d1) < 0 {
					t.Errorf("budget monotonicity broken on a swapped model")
					return
				}
				if got := m.MaxSubnetWithin(m.WalkTime(n)); got != n {
					t.Errorf("full-walk deadline affords %d of %d on a swapped model", got, n)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The zero ModelRef is a defined (empty) model, not a nil deref.
	var empty ModelRef
	if got := empty.Load().Subnets(); got != 0 {
		t.Fatalf("zero ModelRef loads %d subnets, want 0", got)
	}
}
