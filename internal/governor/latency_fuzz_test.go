package governor

import (
	"encoding/binary"
	"testing"
	"time"
)

// decodeLadder carves a fuzz payload into a LatencyModel: the first
// byte picks the step count (0..15, deliberately allowing empty and
// MAC/time length mismatches via truncation), then alternating int64
// MAC costs and step times — arbitrary, including negative, zero and
// overflow-adjacent values.
func decodeLadder(data []byte) LatencyModel {
	if len(data) == 0 {
		return LatencyModel{}
	}
	n := int(data[0] % 16)
	data = data[1:]
	m := LatencyModel{}
	for i := 0; i < n && len(data) >= 8; i++ {
		m.StepMACs = append(m.StepMACs, int64(binary.LittleEndian.Uint64(data[:8])))
		data = data[8:]
		if len(data) >= 8 {
			m.StepTime = append(m.StepTime, time.Duration(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}
	}
	return m
}

// FuzzLatencyModel throws arbitrary step-cost vectors at the whole
// LatencyModel surface: nothing may panic, budgets must never go
// negative, MaxSubnetWithin must stay inside the ladder, and models
// that pass Validate must additionally keep the monotonicity
// properties the deadline scheduler relies on. The committed seed
// corpus pins the historical trouble spots (overflowing MAC sums,
// huge rates × huge deadlines, zero and negative step times).
func FuzzLatencyModel(f *testing.F) {
	seed := func(macsAndTimes ...int64) []byte {
		b := []byte{byte(len(macsAndTimes) / 2)}
		for _, v := range macsAndTimes {
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
		return b
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(seed(1000, int64(time.Millisecond), 2000, int64(2*time.Millisecond)))
	f.Add(seed(-5, int64(time.Millisecond)))                             // negative MAC cost
	f.Add(seed(1000, 0))                                                 // zero step time
	f.Add(seed(1000, -int64(time.Hour)))                                 // negative step time
	f.Add(seed(int64(1)<<62, 1, int64(1)<<62, 1, int64(1)<<62, 1))       // MAC sum overflow
	f.Add(seed(int64(1)<<60, int64(1)<<62, int64(1)<<60, int64(1)<<62))  // time sum overflow
	f.Add(seed(int64(1)<<62, 1))                                         // extreme MACs/ns rate
	f.Add(append(seed(1000, int64(time.Millisecond)), 0xFF, 0xFF, 0xFF)) // trailing garbage
	f.Add([]byte{15, 1, 2, 3})                                           // truncated ladder

	f.Fuzz(func(t *testing.T, data []byte) {
		m := decodeLadder(data)
		err := m.Validate()
		n := m.Subnets()

		// The full read surface must be total: no panics on any input.
		probes := []time.Duration{-time.Hour, -1, 0, 1, time.Microsecond,
			time.Second, time.Hour, 1 << 62}
		for s := 0; s <= n+1; s++ {
			_ = m.WalkTime(s)
		}
		_ = m.MACRate()
		for _, d := range probes {
			if b := m.BudgetFor(d); b < 0 {
				t.Fatalf("BudgetFor(%v) = %d negative on %+v", d, b, m)
			}
			if s := m.MaxSubnetWithin(d); s < 0 || s > n {
				t.Fatalf("MaxSubnetWithin(%v) = %d outside [0,%d]", d, s, n)
			}
		}
		_ = (DeadlineBudget{Model: m, Deadlines: probes}).Budget(3)
		_ = (DeadlineBudget{Model: m}).Budget(0)

		if err != nil {
			return
		}
		// Valid models: the scheduler-facing monotonicity contract.
		for s := 1; s <= n; s++ {
			if m.WalkTime(s) < m.WalkTime(s-1) {
				t.Fatalf("WalkTime not monotone at step %d on valid %+v", s, m)
			}
			if got := m.MaxSubnetWithin(m.WalkTime(s)); got < s {
				t.Fatalf("deadline == WalkTime(%d) affords only %d on valid %+v", s, got, m)
			}
		}
		for i := 1; i < len(probes); i++ {
			lo, hi := probes[i-1], probes[i]
			if m.MaxSubnetWithin(lo) > m.MaxSubnetWithin(hi) {
				t.Fatalf("MaxSubnetWithin not monotone between %v and %v on valid %+v", lo, hi, m)
			}
			if m.BudgetFor(lo) > m.BudgetFor(hi) {
				t.Fatalf("BudgetFor not monotone between %v and %v on valid %+v", lo, hi, m)
			}
		}
	})
}
