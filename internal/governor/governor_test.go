package governor

import (
	"testing"

	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

func buildModel(seed uint64) *models.Model {
	m := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: seed,
	})
	r := tensor.NewRNG(seed ^ 0xFEED)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for u := 1; u < a.Units(); u++ {
			a.SetID(u, 1+r.Intn(3))
		}
	}
	return m
}

func input(seed uint64) *tensor.Tensor {
	x := tensor.New(1, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(seed), 0, 1)
	return x
}

// stepUpCost returns the governor's cached cost of going cur→s.
func stepUpCost(g *Governor, cur, s int) int64 {
	var cost int64
	for k := cur + 1; k <= s; k++ {
		cost += g.stepCost[k-1]
	}
	for k := cur + 1; k < s; k++ {
		cost -= g.model.Head.MACs(k)
	}
	return cost
}

func TestTraceBudgetCycles(t *testing.T) {
	tb := TraceBudget{10, 20}
	if tb.Budget(0) != 10 || tb.Budget(1) != 20 || tb.Budget(2) != 10 {
		t.Fatal("trace must cycle")
	}
	if (TraceBudget{}).Budget(5) != 0 {
		t.Fatal("empty trace → 0")
	}
}

func TestModeBudget(t *testing.T) {
	mb := ModeBudget{
		Modes: map[string]int64{"low": 5, "high": 50},
		Trace: []string{"low", "high"},
	}
	if mb.Budget(0) != 5 || mb.Budget(3) != 50 {
		t.Fatal("mode budget lookup")
	}
}

func TestGovernorPicksLargestAffordable(t *testing.T) {
	m := buildModel(1)
	g := New(m, 3)
	g.Reset(input(2))
	// Huge budget: should jump straight to subnet 3.
	d, err := g.Tick(0, TraceBudget{1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if d.Subnet != 3 {
		t.Fatalf("want subnet 3, got %d", d.Subnet)
	}
	// Jump cost = backbone(3) + head(3) on a cold cache.
	want := stepUpCost(g, 0, 3)
	if d.SpentMACs != want {
		t.Fatalf("cold jump cost %d want %d", d.SpentMACs, want)
	}
}

func TestGovernorSkipsWhenBudgetTooSmall(t *testing.T) {
	m := buildModel(3)
	g := New(m, 3)
	g.Reset(input(4))
	d, err := g.Tick(0, TraceBudget{1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Subnet != 0 || d.SpentMACs != 0 {
		t.Fatalf("tiny budget must skip: %+v", d)
	}
}

func TestGovernorExpandsIncrementally(t *testing.T) {
	m := buildModel(5)
	g := New(m, 3)
	g.Reset(input(6))
	c1 := stepUpCost(g, 0, 1)
	c12 := stepUpCost(g, 1, 2)
	d1, _ := g.Tick(0, TraceBudget{c1})
	if d1.Subnet != 1 || d1.SpentMACs != c1 {
		t.Fatalf("tick0: %+v want subnet 1 cost %d", d1, c1)
	}
	d2, _ := g.Tick(1, TraceBudget{c12})
	if d2.Subnet != 2 || d2.SpentMACs != c12 {
		t.Fatalf("tick1: %+v want subnet 2 cost %d", d2, c12)
	}
	if !d2.Reused {
		t.Fatal("second tick must reuse the cache")
	}
}

func TestGovernorShrinkCostsHeadOnly(t *testing.T) {
	m := buildModel(7)
	g := New(m, 3)
	g.Reset(input(8))
	if _, err := g.Tick(0, TraceBudget{1 << 40}); err != nil {
		t.Fatal(err)
	}
	head1 := m.Head.MACs(1)
	d, err := g.Tick(1, TraceBudget{head1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Subnet != 1 || d.SpentMACs != head1 {
		t.Fatalf("shrink: %+v want subnet 1 cost %d", d, head1)
	}
}

func TestHysteresisDelaysDowngrade(t *testing.T) {
	m := buildModel(9)
	g := New(m, 3)
	g.Hysteresis = 2
	g.Reset(input(10))
	if _, err := g.Tick(0, TraceBudget{1 << 40}); err != nil {
		t.Fatal(err)
	}
	// Budget shrinks so that only subnet 1 is affordable: the first
	// low tick still holds subnet 3 (hysteresis), the second drops.
	low := m.Head.MACs(1)
	d, _ := g.Tick(1, TraceBudget{low})
	if d.Subnet != 3 {
		t.Fatalf("hysteresis should hold subnet 3, got %d", d.Subnet)
	}
	// Second consecutive low tick downgrades.
	d, _ = g.Tick(2, TraceBudget{low})
	if d.Subnet == 3 {
		t.Fatal("hysteresis expired; should downgrade")
	}
}

func TestRunAndTotals(t *testing.T) {
	m := buildModel(11)
	g := New(m, 3)
	g.Reset(input(12))
	trace := TraceBudget{1 << 40, 1 << 40, 1 << 40}
	log, err := g.Run(3, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 3 {
		t.Fatalf("log %v", log)
	}
	spent := TotalSpent(log)
	scratch := g.RecomputeCost(log)
	if spent >= scratch {
		t.Fatalf("reuse must beat recompute: %d vs %d", spent, scratch)
	}
}

func TestRandomWalkBudgetBounds(t *testing.T) {
	rw := &RandomWalkBudget{Lo: 10, Hi: 20, RNG: tensor.NewRNG(1)}
	for i := 0; i < 100; i++ {
		b := rw.Budget(i)
		if b < 10 || b >= 20 {
			t.Fatalf("budget %d out of bounds", b)
		}
	}
	fixed := &RandomWalkBudget{Lo: 5, Hi: 5, RNG: tensor.NewRNG(2)}
	if fixed.Budget(0) != 5 {
		t.Fatal("degenerate range must return Lo")
	}
}

func TestGovernorOutputsStayCorrect(t *testing.T) {
	// Whatever the governor does, engine outputs must match full
	// forwards — run with audit on.
	m := buildModel(13)
	g := New(m, 3)
	g.Engine().Audit = true
	g.Reset(input(14))
	rw := &RandomWalkBudget{Lo: 0, Hi: 1 << 21, RNG: tensor.NewRNG(15)}
	if _, err := g.Run(12, rw); err != nil {
		t.Fatal(err)
	}
}
