package governor

import (
	"fmt"
	"sync/atomic"
	"time"
)

// SLO is one priority class's service-level objective — the target the
// adaptive overload controller steers toward. A zero SLO (no targets)
// exempts the class: it is never counted as violating and never
// triggers escalation on its own behalf, though it can still be
// browned out to protect higher classes.
type SLO struct {
	// P99Target, when positive, is the class's 99th-percentile
	// end-to-end latency objective over the recent served window.
	P99Target time.Duration
	// MinHitRate, when positive (0..1], is the minimum fraction of the
	// class's answers that must arrive within their deadlines per
	// controller tick.
	MinHitRate float64
	// MinSubnet, when positive, floors how narrow brownout may force
	// this class's answers: the controller never publishes a shed cap
	// below it. 0 defers to the server-wide minimum.
	MinSubnet int
}

// ClassObs is one controller tick's sensor reading for one priority
// class, distilled from the serving stats (percentile ring + hit-rate
// counters). P99 covers the class's recent served window (the
// percentile ring, so it smooths across ticks); Served and HitRate
// cover exactly the tick interval, so recovery is visible immediately.
type ClassObs struct {
	// P99 is the class's 99th-percentile end-to-end latency over its
	// recent served window (0 when nothing served yet).
	P99 time.Duration
	// HitRate is the fraction of the class's answers this tick that
	// met their deadlines (1 when nothing was served).
	HitRate float64
	// Served counts the class's answers this tick. Classes below the
	// controller's MinServed floor are too quiet to judge and never
	// count as violating.
	Served int64
}

// Policy is the overload controller's actuator set, published
// atomically through a PolicyRef so every serving-path read sees one
// consistent knob configuration. The zero Policy is neutral: every
// accessor reports "no constraint" on nil or short slices, so an
// unconfigured server behaves exactly as before the controller
// existed. A stored Policy must be treated as immutable.
type Policy struct {
	// ExitScale[c], when > 1, relaxes class c's confidence early-exit
	// margin by that factor (the serving layer divides its calibrated
	// margin threshold by the scale) — the brownout ladder's stage 0
	// (relax-exit): confident answers stop climbing sooner, returning
	// ladder headroom to the queue without narrowing anyone's answer
	// cap. Only meaningful on servers with early exit armed; ≤ 0 or 1
	// is neutral.
	ExitScale []float64
	// ShedCap[c], when positive, caps class c's ladder walk at that
	// subnet — the brownout ladder's narrow stage. 0 leaves the
	// class's queue-pressure shed cap alone.
	ShedCap []int
	// AdmitScale[c], when > 1, multiplies the predicted queue wait in
	// class c's admission fast-fail check — the second stage
	// (fast-fail): borderline deadlines are rejected earlier, before
	// they waste a walk. ≤ 0 or 1 is neutral.
	AdmitScale []float64
	// QueueShare[c], when positive, overrides class c's admission
	// queue share downward — the third stage (shed): at 1, any backlog
	// at all rejects the class. 0 keeps the configured nested share.
	QueueShare []int
	// Lookahead, when positive, makes the batch former group pops by
	// compatible deadline headroom: a candidate joins a batch only if
	// min(headroom)/max(headroom) ≥ Lookahead against the batch's
	// seed, so one tight-deadline request no longer inflates the
	// per-step cost of a whole generous batch. 0 disables grouping.
	Lookahead float64
	// Level[c] is class c's current brownout ladder depth (0 =
	// untouched) — observability, not an actuator.
	Level []int
}

// ClassExitScale returns the early-exit margin relaxation factor for
// class c, 1 (neutral) when unset.
func (p Policy) ClassExitScale(c int) float64 {
	if c >= 0 && c < len(p.ExitScale) && p.ExitScale[c] > 1 {
		return p.ExitScale[c]
	}
	return 1
}

// ClassShedCap returns class c's policy ladder cap, or 0 when the
// policy leaves the class unconstrained (including on the zero
// Policy).
func (p Policy) ClassShedCap(c int) int {
	if c >= 0 && c < len(p.ShedCap) {
		return p.ShedCap[c]
	}
	return 0
}

// ClassAdmitScale returns the admission-strictness multiplier for
// class c, 1 (neutral) when unset.
func (p Policy) ClassAdmitScale(c int) float64 {
	if c >= 0 && c < len(p.AdmitScale) && p.AdmitScale[c] > 1 {
		return p.AdmitScale[c]
	}
	return 1
}

// ClassQueueShare returns class c's overridden admission queue share,
// or 0 when the policy keeps the configured share.
func (p Policy) ClassQueueShare(c int) int {
	if c >= 0 && c < len(p.QueueShare) {
		return p.QueueShare[c]
	}
	return 0
}

// ClassLevel returns class c's brownout ladder depth (0 when
// untouched or out of range).
func (p Policy) ClassLevel(c int) int {
	if c >= 0 && c < len(p.Level) {
		return p.Level[c]
	}
	return 0
}

// Active reports whether any class is browned out (any non-zero
// level) — the cheap "is the governor doing anything" gauge.
func (p Policy) Active() bool {
	for _, l := range p.Level {
		if l > 0 {
			return true
		}
	}
	return false
}

// PolicyRef is an atomically swappable reference to a Policy — the
// handoff point between the overload controller (which publishes a new
// policy per tick) and the serving hot paths that actuate it
// (admission, shed cap, batch formation). Same contract as ModelRef:
// readers Load a consistent snapshot, writers Store a complete
// replacement, stored policies are immutable, and the zero PolicyRef
// holds the neutral zero Policy.
type PolicyRef struct {
	p atomic.Pointer[Policy]
}

// Store publishes pol as the current policy. The caller must not
// mutate pol's slices afterwards.
func (r *PolicyRef) Store(pol Policy) {
	r.p.Store(&pol)
}

// Load returns the most recently stored policy (the neutral zero
// Policy when nothing has been stored). The returned slices are shared
// with every other Load of the same snapshot and must not be mutated.
func (r *PolicyRef) Load() Policy {
	if p := r.p.Load(); p != nil {
		return *p
	}
	return Policy{}
}

// Transition records one brownout ladder move the controller made on
// a tick: class Class stepped from level From to level To.
type Transition struct {
	// Class is the priority class whose level moved.
	Class int
	// From is the class's level before the tick.
	From int
	// To is the class's level after the tick (From±1).
	To int
}

// TickResult is everything one controller tick decided: the policy to
// publish plus the observability deltas the stats layer counts.
type TickResult struct {
	// Policy is the complete actuator set to publish for the next
	// interval (freshly allocated; safe to Store).
	Policy Policy
	// Violations lists the classes observed violating their SLOs this
	// tick (ascending, possibly empty).
	Violations []int
	// Transitions lists the ladder moves applied this tick (at most
	// one — the controller moves one knob step per tick).
	Transitions []Transition
}

// ControllerConfig parameterizes a Controller.
type ControllerConfig struct {
	// Classes is the number of priority classes (≥ 1).
	Classes int
	// Subnets is the ladder depth n (≥ 1).
	Subnets int
	// MinSubnet is the server-wide narrowest answer; brownout never
	// caps below it (per-class SLO.MinSubnet may raise it further).
	// 0 means 1.
	MinSubnet int
	// SLOs[c] is class c's objective; missing or zero entries exempt
	// the class from violation checks.
	SLOs []SLO
	// RecoverAfter is how many consecutive healthy ticks earn one
	// de-escalation step — the additive half of AIMD. 0 means 2.
	RecoverAfter int
	// MinServed is the fewest answers a class must produce in a tick
	// for its observation to count as evidence of violation; quieter
	// classes are treated as healthy. 0 means 8.
	MinServed int64
	// Lookahead is the deadline-headroom compatibility ratio the
	// policy carries while any class is browned out (see
	// Policy.Lookahead). 0 means 0.25; negative disables the knob.
	Lookahead float64
	// MaxAdmitScale bounds the fast-fail stage's admission multiplier
	// (reached by doubling: 2, 4, … MaxAdmitScale). 0 means 8; values
	// are rounded up to the next power of two.
	MaxAdmitScale float64
	// ExitRelaxSteps, when positive, prepends that many relax-exit
	// levels to every class's brownout ladder (stage 0): each level
	// doubles the class's early-exit margin relaxation (ExitScale 2,
	// 4, …) before any answer is narrowed. Meant for servers with the
	// confidence early exit armed — relaxing the margin converts
	// already-confident walks into reclaimed headroom at zero accuracy
	// cost to everyone else. 0 (the default) omits the stage entirely,
	// preserving the pre-cache ladder shape.
	ExitRelaxSteps int
}

// Controller is the deterministic closed-loop overload governor: each
// Tick it compares per-class observations against the SLOs and walks a
// brownout ladder, publishing the resulting Policy.
//
// Control law — AIMD, chosen over PI for two reasons: (a) the actuators
// are discrete (subnet rungs, power-of-two admission scales), so an
// integrator's continuous output would be quantized away and wind up
// instead; (b) multiplicative decrease reacts within one tick to the
// saturation-style overloads a serving tier actually sees, while
// additive recovery probes capacity back cautiously — the same
// asymmetry TCP uses for the same reason. Escalation: on any violating
// tick, the LOWEST class not yet fully browned out steps one ladder
// level deeper (each level is multiplicative in knob space — the shed
// cap halves, then the admission multiplier doubles). Recovery: after
// RecoverAfter consecutive healthy ticks, the HIGHEST browned-out
// class steps one level back (LIFO — the most recently sacrificed
// class is restored first), and the streak restarts.
//
// The per-class brownout ladder, in escalation order:
//
//  0. relax-exit (only when ExitRelaxSteps > 0) — the class's
//     early-exit margin relaxation doubles per level (2, 4, …):
//     confident answers stop climbing sooner, reclaiming headroom
//     before anyone's answer is narrowed.
//  1. narrow — the class's shed cap halves per level (ceiling
//     division) until it reaches the class floor
//     (max(MinSubnet, SLO.MinSubnet)): answers get cheaper first.
//  2. fast-fail — the class's predicted-wait admission multiplier
//     doubles per level (2, 4, … MaxAdmitScale): borderline deadlines
//     are rejected at admission instead of served late.
//  3. shed — the class's queue share drops to a single slot: any
//     backlog rejects the class outright.
//
// A violating high class is never itself browned out until every class
// below it is fully shed — capacity is reclaimed bottom-up, exactly
// like the static nested-queue shares, but now closed-loop.
//
// The controller is step-clocked: Tick carries no wall-clock reads and
// no internal timers, so a tick sequence is a pure function of its
// observation sequence — tests replay scenarios deterministically and
// two replicas fed the same observations publish identical policies.
// Controller is not safe for concurrent use; serialize Tick calls.
type Controller struct {
	cfg      ControllerConfig
	floors   []int // per-class narrowest brownout cap
	maxLevel []int // per-class ladder depth (full shed)
	level    []int // per-class current depth
	healthy  int   // consecutive healthy ticks since the last move
}

// NewController validates cfg, fills defaults and returns a controller
// with every class at level 0 (neutral policy).
func NewController(cfg ControllerConfig) (*Controller, error) {
	if cfg.Classes < 1 {
		return nil, fmt.Errorf("governor: controller needs ≥1 classes, got %d", cfg.Classes)
	}
	if cfg.Subnets < 1 {
		return nil, fmt.Errorf("governor: controller needs ≥1 subnets, got %d", cfg.Subnets)
	}
	if cfg.MinSubnet <= 0 {
		cfg.MinSubnet = 1
	}
	if cfg.MinSubnet > cfg.Subnets {
		return nil, fmt.Errorf("governor: controller MinSubnet %d exceeds Subnets %d", cfg.MinSubnet, cfg.Subnets)
	}
	if len(cfg.SLOs) > cfg.Classes {
		return nil, fmt.Errorf("governor: %d SLOs for %d classes", len(cfg.SLOs), cfg.Classes)
	}
	for c, slo := range cfg.SLOs {
		if slo.MinHitRate < 0 || slo.MinHitRate > 1 {
			return nil, fmt.Errorf("governor: class %d MinHitRate %v outside [0,1]", c, slo.MinHitRate)
		}
		if slo.P99Target < 0 {
			return nil, fmt.Errorf("governor: class %d negative P99Target %v", c, slo.P99Target)
		}
		if slo.MinSubnet < 0 || slo.MinSubnet > cfg.Subnets {
			return nil, fmt.Errorf("governor: class %d MinSubnet %d outside ladder 1..%d", c, slo.MinSubnet, cfg.Subnets)
		}
	}
	if cfg.RecoverAfter <= 0 {
		cfg.RecoverAfter = 2
	}
	if cfg.MinServed <= 0 {
		cfg.MinServed = 8
	}
	if cfg.Lookahead == 0 {
		cfg.Lookahead = 0.25
	}
	if cfg.MaxAdmitScale <= 0 {
		cfg.MaxAdmitScale = 8
	}
	if cfg.ExitRelaxSteps < 0 {
		return nil, fmt.Errorf("governor: negative ExitRelaxSteps %d", cfg.ExitRelaxSteps)
	}
	ctl := &Controller{
		cfg:      cfg,
		floors:   make([]int, cfg.Classes),
		maxLevel: make([]int, cfg.Classes),
		level:    make([]int, cfg.Classes),
	}
	for c := 0; c < cfg.Classes; c++ {
		floor := cfg.MinSubnet
		if c < len(cfg.SLOs) && cfg.SLOs[c].MinSubnet > floor {
			floor = cfg.SLOs[c].MinSubnet
		}
		ctl.floors[c] = floor
		ctl.maxLevel[c] = cfg.ExitRelaxSteps + ctl.narrowSteps(c) + ctl.fastFailSteps() + 1
	}
	return ctl, nil
}

// narrowSteps counts the ceiling-halvings from the full ladder to
// class c's floor — the length of the class's narrow stage.
func (ctl *Controller) narrowSteps(c int) int {
	steps := 0
	for cap := ctl.cfg.Subnets; cap > ctl.floors[c]; {
		cap = (cap + 1) / 2
		if cap < ctl.floors[c] {
			cap = ctl.floors[c]
		}
		steps++
	}
	return steps
}

// fastFailSteps counts the doublings from 1 to MaxAdmitScale — the
// length of every class's fast-fail stage.
func (ctl *Controller) fastFailSteps() int {
	steps := 0
	for scale := 1.0; scale < ctl.cfg.MaxAdmitScale; scale *= 2 {
		steps++
	}
	return steps
}

// MaxLevel returns class c's full ladder depth: relax-exit steps +
// narrow steps + fast-fail steps + the final shed level. A class's cumulative
// escalations must reach this before the next class up is touched.
func (ctl *Controller) MaxLevel(c int) int {
	if c < 0 || c >= len(ctl.maxLevel) {
		return 0
	}
	return ctl.maxLevel[c]
}

// violates reports whether class c's observation breaches its SLO.
func (ctl *Controller) violates(c int, o ClassObs) bool {
	if c >= len(ctl.cfg.SLOs) {
		return false
	}
	slo := ctl.cfg.SLOs[c]
	if slo.P99Target <= 0 && slo.MinHitRate <= 0 {
		return false
	}
	if o.Served < ctl.cfg.MinServed {
		return false // too quiet to judge
	}
	if slo.P99Target > 0 && o.P99 > slo.P99Target {
		return true
	}
	if slo.MinHitRate > 0 && o.HitRate < slo.MinHitRate {
		return true
	}
	return false
}

// Tick advances the control loop by one step: it classifies obs
// (indexed by class; missing entries read as quiet/healthy) against
// the SLOs, applies at most one ladder move, and returns the policy to
// publish. Pure in its inputs — no clocks, no randomness.
func (ctl *Controller) Tick(obs []ClassObs) TickResult {
	res := TickResult{}
	for c := 0; c < ctl.cfg.Classes && c < len(obs); c++ {
		if ctl.violates(c, obs[c]) {
			res.Violations = append(res.Violations, c)
		}
	}
	if len(res.Violations) > 0 {
		ctl.healthy = 0
		// Multiplicative decrease: deepen the lowest class that still
		// has ladder left, one level per tick.
		for c := 0; c < ctl.cfg.Classes; c++ {
			if ctl.level[c] < ctl.maxLevel[c] {
				ctl.level[c]++
				res.Transitions = append(res.Transitions,
					Transition{Class: c, From: ctl.level[c] - 1, To: ctl.level[c]})
				break
			}
		}
	} else {
		ctl.healthy++
		if ctl.healthy >= ctl.cfg.RecoverAfter {
			// Additive recovery, LIFO: restore the highest browned
			// class one level, then re-earn the streak.
			for c := ctl.cfg.Classes - 1; c >= 0; c-- {
				if ctl.level[c] > 0 {
					ctl.level[c]--
					res.Transitions = append(res.Transitions,
						Transition{Class: c, From: ctl.level[c] + 1, To: ctl.level[c]})
					ctl.healthy = 0
					break
				}
			}
		}
	}
	res.Policy = ctl.policy()
	return res
}

// policy materializes the current per-class levels into a freshly
// allocated Policy (safe to publish through a PolicyRef).
func (ctl *Controller) policy() Policy {
	pol := Policy{
		ExitScale:  make([]float64, ctl.cfg.Classes),
		ShedCap:    make([]int, ctl.cfg.Classes),
		AdmitScale: make([]float64, ctl.cfg.Classes),
		QueueShare: make([]int, ctl.cfg.Classes),
		Level:      make([]int, ctl.cfg.Classes),
	}
	active := false
	for c := 0; c < ctl.cfg.Classes; c++ {
		l := ctl.level[c]
		pol.Level[c] = l
		if l == 0 {
			continue
		}
		active = true
		// Stage 0 — relax-exit: double the early-exit margin
		// relaxation once per level (no-op ladder prefix when
		// ExitRelaxSteps is 0).
		if exit := min(l, ctl.cfg.ExitRelaxSteps); exit > 0 {
			scale := 1.0
			for k := 0; k < exit; k++ {
				scale *= 2
			}
			pol.ExitScale[c] = scale
			l -= exit
		}
		// Stage 1 — narrow: halve the cap once per level.
		cap := ctl.cfg.Subnets
		narrow := ctl.narrowSteps(c)
		for k := 0; k < l && k < narrow; k++ {
			cap = (cap + 1) / 2
			if cap < ctl.floors[c] {
				cap = ctl.floors[c]
			}
		}
		if cap < ctl.cfg.Subnets {
			pol.ShedCap[c] = cap
		}
		// Stage 2 — fast-fail: double the admission multiplier per
		// remaining level.
		rest := l - narrow
		if rest > 0 {
			ff := ctl.fastFailSteps()
			scale := 1.0
			for k := 0; k < rest && k < ff; k++ {
				scale *= 2
			}
			if scale > ctl.cfg.MaxAdmitScale {
				scale = ctl.cfg.MaxAdmitScale
			}
			pol.AdmitScale[c] = scale
			// Stage 3 — shed: the final level cuts the class to a
			// single queue slot.
			if rest > ff {
				pol.QueueShare[c] = 1
			}
		}
	}
	if active && ctl.cfg.Lookahead > 0 {
		pol.Lookahead = ctl.cfg.Lookahead
	}
	return pol
}

// Levels returns a copy of the per-class brownout depths (for logging
// and tests; the published Policy carries the same data in Level).
func (ctl *Controller) Levels() []int {
	return append([]int(nil), ctl.level...)
}
