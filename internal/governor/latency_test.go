package governor

import (
	"testing"
	"time"
)

func TestStepCostsMatchLadderDeltas(t *testing.T) {
	m := buildModel(17)
	costs := StepCosts(m, 3)
	if len(costs) != 3 {
		t.Fatalf("want 3 step costs, got %d", len(costs))
	}
	backbone := func(s int) int64 {
		var total int64
		for _, mv := range m.Movable {
			total += mv.MACs(s)
		}
		return total
	}
	var prev int64
	for s := 1; s <= 3; s++ {
		want := backbone(s) - prev + m.Head.MACs(s)
		if costs[s-1] != want {
			t.Fatalf("step %d cost %d want %d", s, costs[s-1], want)
		}
		prev = backbone(s)
	}
	// The governor's internal ladder must be the exported one.
	g := New(m, 3)
	for s := range costs {
		if g.stepCost[s] != costs[s] {
			t.Fatalf("governor ladder diverges from StepCosts at step %d", s+1)
		}
	}
}

func testLatencyModel() LatencyModel {
	return LatencyModel{
		StepMACs: []int64{1000, 2000, 4000},
		StepTime: []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond},
	}
}

func TestLatencyModelValidate(t *testing.T) {
	if err := testLatencyModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LatencyModel{
		{},
		{StepMACs: []int64{1}, StepTime: nil},
		{StepMACs: []int64{1}, StepTime: []time.Duration{0}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
}

func TestLatencyModelWalkTimeAndRate(t *testing.T) {
	m := testLatencyModel()
	if got := m.WalkTime(2); got != 3*time.Millisecond {
		t.Fatalf("WalkTime(2) = %v", got)
	}
	if got := m.WalkTime(3); got != 7*time.Millisecond {
		t.Fatalf("WalkTime(3) = %v", got)
	}
	// 7000 MACs over 7ms = 1e6 MACs/s.
	if rate := m.MACRate(); rate < 0.99e6 || rate > 1.01e6 {
		t.Fatalf("MACRate = %g, want ~1e6", rate)
	}
}

func TestLatencyModelBudgetFor(t *testing.T) {
	m := testLatencyModel()
	if b := m.BudgetFor(7 * time.Millisecond); b < 6900 || b > 7100 {
		t.Fatalf("BudgetFor(7ms) = %d, want ~7000", b)
	}
	if b := m.BudgetFor(0); b != 0 {
		t.Fatalf("BudgetFor(0) = %d", b)
	}
	if b := m.BudgetFor(-time.Second); b != 0 {
		t.Fatalf("negative deadline budget = %d", b)
	}
}

func TestLatencyModelMaxSubnetWithin(t *testing.T) {
	m := testLatencyModel()
	cases := []struct {
		d    time.Duration
		want int
	}{
		{500 * time.Microsecond, 0}, // not even step 1 fits
		{time.Millisecond, 1},
		{3 * time.Millisecond, 2},
		{6 * time.Millisecond, 2}, // step 3 needs 7ms cumulative
		{7 * time.Millisecond, 3},
		{time.Hour, 3},
	}
	for _, tc := range cases {
		if got := m.MaxSubnetWithin(tc.d); got != tc.want {
			t.Fatalf("MaxSubnetWithin(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestDeadlineBudgetDrivesGovernor closes the loop: deadlines become
// MAC budgets become subnet choices, through the same Governor.Tick
// path a raw TraceBudget would use.
func TestDeadlineBudgetDrivesGovernor(t *testing.T) {
	m := buildModel(19)
	costs := StepCosts(m, 3)
	// Fabricate a machine that runs exactly 1 MAC per microsecond, so
	// deadlines translate to budgets 1:1.
	lat := LatencyModel{StepMACs: costs, StepTime: make([]time.Duration, len(costs))}
	for i, c := range costs {
		lat.StepTime[i] = time.Duration(c) * time.Microsecond
	}
	db := DeadlineBudget{Model: lat, Deadlines: []time.Duration{
		lat.WalkTime(3) * 2, // generous: full ladder
		1,                   // 1ns: nothing fits
	}}
	g := New(m, 3)
	g.Reset(input(20))
	d0, err := g.Tick(0, db)
	if err != nil {
		t.Fatal(err)
	}
	if d0.Subnet != 3 {
		t.Fatalf("generous deadline picked subnet %d, want 3", d0.Subnet)
	}
	d1, err := g.Tick(1, db)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Subnet != 0 || d1.SpentMACs != 0 {
		t.Fatalf("impossible deadline must skip: %+v", d1)
	}
	if (DeadlineBudget{Model: lat}).Budget(4) != 0 {
		t.Fatal("empty deadline trace → 0 budget")
	}
}
