package models

import (
	"testing"

	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

func opts() Options {
	return Options{Classes: 10, InC: 3, InH: 16, InW: 16, Subnets: 4, Rule: nn.RuleIncremental, Seed: 1}
}

func TestAllModelsForwardShapes(t *testing.T) {
	for _, build := range []Builder{LeNet3C1L, LeNet5, VGG16} {
		m := build(opts())
		x := tensor.New(2, 3, 16, 16)
		x.FillNormal(tensor.NewRNG(2), 0, 1)
		out := m.Net.Forward(x, nn.Eval(4))
		if out.Rank() != 2 || out.Dim(0) != 2 || out.Dim(1) != 10 {
			t.Fatalf("%s: output shape %v", m.Name, out.Shape())
		}
	}
}

func TestModelsValidateCleanly(t *testing.T) {
	for _, build := range []Builder{LeNet3C1L, LeNet5, VGG16} {
		m := build(opts())
		if err := m.Net.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestExpansionScalesWidthAndMACs(t *testing.T) {
	o1 := opts()
	o1.Expansion = 1.0
	o2 := opts()
	o2.Expansion = 2.0
	m1 := LeNet3C1L(o1)
	m2 := LeNet3C1L(o2)
	a1 := m1.Movable[0].OutAssignment().Units()
	a2 := m2.Movable[0].OutAssignment().Units()
	if a2 != 2*a1 {
		t.Fatalf("expansion 2.0: %d vs %d filters", a2, a1)
	}
	if m2.Net.MACs(4) <= m1.Net.MACs(4) {
		t.Fatal("expanded net must have more MACs")
	}
}

func TestHeadIsSharedAndCoversAllClasses(t *testing.T) {
	m := LeNet5(opts())
	if m.Head.Rule() != nn.RuleShared {
		t.Fatal("head must be RuleShared")
	}
	a := m.Head.OutAssignment()
	if a.Units() != 10 {
		t.Fatalf("head units %d", a.Units())
	}
	for i := 0; i < a.Units(); i++ {
		if a.ID(i) != 1 {
			t.Fatal("every class unit must live in subnet 1")
		}
	}
	// Head must not be in Movable.
	for _, mv := range m.Movable {
		if mv == m.Head {
			t.Fatal("head listed as movable")
		}
	}
}

func TestSubnetOneProducesAllLogitsAfterMoves(t *testing.T) {
	m := LeNet3C1L(opts())
	// Move half of every backbone layer's units to subnet 3.
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for i := 0; i < a.Units()/2; i++ {
			a.SetID(i, 3)
		}
	}
	if err := m.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 16, 16)
	x.FillNormal(tensor.NewRNG(3), 0, 1)
	out := m.Net.Forward(x, nn.Eval(1))
	if out.Dim(1) != 10 {
		t.Fatal("subnet 1 must emit all logits")
	}
}

func TestMACsMonotoneInSubnet(t *testing.T) {
	m := VGG16(opts())
	r := tensor.NewRNG(5)
	// Random legal assignment: random ids per unit.
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for i := 0; i < a.Units(); i++ {
			a.SetID(i, 1+r.Intn(4))
		}
	}
	prev := int64(-1)
	for s := 1; s <= 4; s++ {
		macs := m.Net.MACs(s)
		if macs < prev {
			t.Fatalf("MACs must be monotone in s: %d then %d", prev, macs)
		}
		prev = macs
	}
}

func TestReferenceMACsIndependentOfExpansion(t *testing.T) {
	o := opts()
	o.Expansion = 1.8
	ref1 := ReferenceMACs(LeNet5, o)
	o.Expansion = 1.0
	ref2 := ReferenceMACs(LeNet5, o)
	if ref1 != ref2 {
		t.Fatalf("reference MACs must ignore expansion: %d vs %d", ref1, ref2)
	}
	if ref1 <= 0 {
		t.Fatal("reference MACs must be positive")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"lenet3c1l", "lenet5", "vgg16", "LeNet-5"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("resnet"); err == nil {
		t.Fatal("want error for unknown model")
	}
}

func TestBatchNormVariant(t *testing.T) {
	o := opts()
	o.Rule = nn.RuleShared
	o.BatchNorm = true
	m := LeNet3C1L(o)
	hasBN := false
	for _, l := range m.Net.Layers() {
		if _, ok := l.(*nn.SwitchableBatchNorm2D); ok {
			hasBN = true
		}
	}
	if !hasBN {
		t.Fatal("BatchNorm option must insert BN layers")
	}
	x := tensor.New(2, 3, 16, 16)
	x.FillNormal(tensor.NewRNG(7), 0, 1)
	out := m.Net.Forward(x, &nn.Context{Subnet: 4, Mode: 2, Train: true})
	if out.Dim(1) != 10 {
		t.Fatalf("BN model output %v", out.Shape())
	}
}

func TestVGGDepth(t *testing.T) {
	m := VGG16(opts())
	convs := 0
	for _, l := range m.Net.Layers() {
		if _, ok := l.(*nn.Conv2D); ok {
			convs++
		}
	}
	if convs != 13 {
		t.Fatalf("VGG-16 must have 13 convolutions, got %d", convs)
	}
	if len(m.Movable) != 15 { // 13 convs + 2 hidden FCs
		t.Fatalf("movable layers %d", len(m.Movable))
	}
}

func TestDefaultOptionsNormalized(t *testing.T) {
	m := LeNet3C1L(Options{})
	x := tensor.New(1, 3, 16, 16)
	out := m.Net.Forward(x, nn.Eval(1))
	if out.Dim(1) != 10 {
		t.Fatalf("defaults broken: %v", out.Shape())
	}
}
