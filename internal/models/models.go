// Package models builds the three network topologies evaluated in
// the paper — LeNet-3C1L, LeNet-5 and VGG-16 — as masked networks
// ready for subnet construction. The topologies are depth-faithful;
// channel counts and input resolution are scaled down so that full
// construction + retraining runs on CPU in seconds to minutes (see
// DESIGN.md §2). The expansion-ratio hyperparameter of §IV ("we
// expanded the number of neurons/filters of each layer ... as in
// [13]") multiplies every hidden width.
package models

import (
	"fmt"
	"math"

	"steppingnet/internal/nn"
	"steppingnet/internal/subnet"
	"steppingnet/internal/tensor"
)

// Options selects topology-independent build parameters.
type Options struct {
	Classes       int
	InC, InH, InW int
	// Expansion multiplies every hidden width (≥ 1; the paper sweeps
	// 1.0–2.0 in Fig. 7). Zero means 1.0.
	Expansion float64
	// Subnets is N, the number of nested subnets the assignments
	// will distinguish. Zero means 1 (a plain network, e.g. the
	// teacher).
	Subnets int
	// Rule selects backbone masking: RuleIncremental for SteppingNet
	// and the any-width baseline, RuleShared for the slimmable
	// baseline.
	Rule nn.MaskRule
	// BatchNorm inserts switchable per-mode BatchNorm after every
	// convolution (slimmable baseline only).
	BatchNorm bool
	Seed      uint64
}

func (o *Options) normalize() {
	if o.Expansion <= 0 {
		o.Expansion = 1
	}
	if o.Subnets <= 0 {
		o.Subnets = 1
	}
	if o.Classes <= 0 {
		o.Classes = 10
	}
	if o.InC <= 0 {
		o.InC = 3
	}
	if o.InH <= 0 {
		o.InH = 16
	}
	if o.InW <= 0 {
		o.InW = o.InH
	}
}

// Model bundles a built network with the structures the construction
// algorithm manipulates.
type Model struct {
	Net *nn.Network
	// Movable lists the backbone layers whose output units may be
	// reassigned between subnets. The classifier head is excluded:
	// every subnet must emit all class logits, so the head is a
	// small RuleShared layer recomputed per subnet (standard
	// practice in anytime networks; its MACs are counted).
	Movable []nn.Masked
	// Head is the classifier layer.
	Head nn.Masked

	Name                   string
	InC, InH, InW, Classes int
}

// scaled applies the expansion ratio with round-to-nearest, minimum 1.
func scaled(base int, expansion float64) int {
	w := int(math.Round(float64(base) * expansion))
	if w < 1 {
		w = 1
	}
	return w
}

// builder accumulates a conv/FC stack with shared assignments.
type builder struct {
	o       Options
	rng     *tensor.RNG
	net     *nn.Network
	movable []nn.Masked

	// running feature shape
	c, h, w int
	assign  *subnet.Assignment // assignment of the current feature channels
	flat    bool               // true once flattened
	flatIn  int                // dense input size after flatten
	repeat  int                // elements per channel for the first dense layer
}

func newBuilder(name string, o Options) *builder {
	o.normalize()
	return &builder{
		o:      o,
		rng:    tensor.NewRNG(o.Seed ^ 0xABCD),
		net:    nn.NewNetwork(name),
		c:      o.InC,
		h:      o.InH,
		w:      o.InW,
		assign: subnet.NewAssignment(o.InC, o.Subnets),
		repeat: 1,
	}
}

func (b *builder) conv(name string, baseFilters, k, pad int) {
	if b.flat {
		panic(fmt.Sprintf("models: conv %q after flatten", name))
	}
	filters := scaled(baseFilters, b.o.Expansion)
	g := tensor.ConvGeom{InC: b.c, InH: b.h, InW: b.w, OutC: filters, K: k, Stride: 1, Pad: pad}
	out := subnet.NewAssignment(filters, b.o.Subnets)
	conv := nn.NewConv2D(nn.Conv2DConfig{
		Name: name, Geom: g, Rule: b.o.Rule,
		AssignIn: b.assign, Assign: out, Init: b.rng,
	})
	b.net.Append(conv)
	b.movable = append(b.movable, conv)
	if b.o.BatchNorm {
		b.net.Append(nn.NewSwitchableBatchNorm2D(name+".bn", filters, b.o.Subnets))
	}
	b.net.Append(nn.NewReLU(name + ".relu"))
	b.c, b.h, b.w = filters, g.OutH(), g.OutW()
	b.assign = out
}

// pool appends k×k max pooling. When the current feature map is not
// divisible by k (small synthetic inputs under deep topologies), the
// stage is skipped — pooling is resolution plumbing, not part of the
// algorithm under study.
func (b *builder) pool(name string, k int) {
	if b.h%k != 0 || b.w%k != 0 || b.h < k || b.w < k {
		return
	}
	b.net.Append(nn.NewMaxPool2D(name, b.c, b.h, b.w, k))
	b.h /= k
	b.w /= k
}

func (b *builder) flatten(name string) {
	b.net.Append(nn.NewFlatten(name))
	b.flat = true
	b.flatIn = b.c * b.h * b.w
	b.repeat = b.h * b.w
}

func (b *builder) dense(name string, baseUnits int, relu bool) {
	if !b.flat {
		b.flatten(name + ".flatten")
	}
	units := scaled(baseUnits, b.o.Expansion)
	out := subnet.NewAssignment(units, b.o.Subnets)
	fc := nn.NewDense(nn.DenseConfig{
		Name: name, In: b.flatIn, Out: units, Rule: b.o.Rule,
		AssignIn: b.assign, InRepeat: b.repeat, Assign: out, Init: b.rng,
	})
	b.net.Append(fc)
	b.movable = append(b.movable, fc)
	if relu {
		b.net.Append(nn.NewReLU(name + ".relu"))
	}
	b.assign = out
	b.flatIn = units
	b.repeat = 1
}

// head appends the classifier: a RuleShared dense layer with every
// class unit in subnet 1, so each subnet emits all logits. Being
// RuleShared, it is recomputed per subnet (its cost is tiny and is
// counted in the MAC totals).
func (b *builder) head(name string) nn.Masked {
	if !b.flat {
		b.flatten(name + ".flatten")
	}
	out := subnet.NewAssignment(b.o.Classes, b.o.Subnets)
	fc := nn.NewDense(nn.DenseConfig{
		Name: name, In: b.flatIn, Out: b.o.Classes, Rule: nn.RuleShared,
		AssignIn: b.assign, InRepeat: b.repeat, Assign: out, Init: b.rng,
	})
	b.net.Append(fc)
	return fc
}

func (b *builder) finish(name string) *Model {
	head := b.head(name + ".classifier")
	return &Model{
		Net: b.net, Movable: b.movable, Head: head,
		Name: name, InC: b.o.InC, InH: b.o.InH, InW: b.o.InW, Classes: b.o.Classes,
	}
}

// LeNet3C1L builds the three-conv one-linear LeNet variant of
// Table I: conv–pool ×3 followed by the classifier.
func LeNet3C1L(o Options) *Model {
	o.normalize()
	b := newBuilder("LeNet-3C1L", o)
	b.conv("conv1", 6, 3, 1)
	b.pool("pool1", 2)
	b.conv("conv2", 16, 3, 1)
	b.pool("pool2", 2)
	b.conv("conv3", 32, 3, 1)
	b.pool("pool3", 2)
	return b.finish("LeNet-3C1L")
}

// LeNet5 builds the classic LeNet-5 topology: two conv–pool stages
// and two hidden dense layers before the classifier. Widths are the
// classic 6/16/120/84 scaled to the synthetic input.
func LeNet5(o Options) *Model {
	o.normalize()
	b := newBuilder("LeNet-5", o)
	b.conv("conv1", 6, 5, 2)
	b.pool("pool1", 2)
	b.conv("conv2", 16, 5, 2)
	b.pool("pool2", 2)
	b.dense("fc1", 60, true)
	b.dense("fc2", 42, true)
	return b.finish("LeNet-5")
}

// VGG16 builds a depth-faithful VGG-16: thirteen 3×3 convolutions in
// the canonical 2-2-3-3-3 blocks with pooling after the first four
// blocks (the input resolution is 16×16 rather than 224×224, so the
// fifth pool is dropped to keep a non-empty feature map), then two
// hidden dense layers and the classifier. Channel counts are the
// canonical 64/128/256/512/512 divided by 8.
func VGG16(o Options) *Model {
	o.normalize()
	b := newBuilder("VGG-16", o)
	block := func(prefix string, n, ch int, pool bool) {
		for i := 1; i <= n; i++ {
			b.conv(fmt.Sprintf("%s_%d", prefix, i), ch, 3, 1)
		}
		if pool {
			b.pool(prefix+".pool", 2)
		}
	}
	block("conv1", 2, 8, true)
	block("conv2", 2, 16, true)
	block("conv3", 3, 32, true)
	block("conv4", 3, 64, true)
	block("conv5", 3, 64, false)
	b.dense("fc1", 64, true)
	b.dense("fc2", 64, true)
	return b.finish("VGG-16")
}

// Builder is a named model constructor.
type Builder func(Options) *Model

// ByName returns the constructor for the given Table-I network name.
func ByName(name string) (Builder, error) {
	switch name {
	case "lenet3c1l", "LeNet-3C1L":
		return LeNet3C1L, nil
	case "lenet5", "LeNet-5":
		return LeNet5, nil
	case "vgg16", "VGG-16":
		return VGG16, nil
	}
	return nil, fmt.Errorf("models: unknown model %q (want lenet3c1l, lenet5 or vgg16)", name)
}

// ReferenceMACs returns M_t: the MAC count of the original,
// un-expanded network (expansion 1.0, one subnet, everything active).
// Budgets P_i in the paper are percentages of this number.
func ReferenceMACs(build Builder, o Options) int64 {
	o.normalize()
	o.Expansion = 1
	o.Subnets = 1
	o.BatchNorm = false
	m := build(o)
	return m.Net.MACs(1)
}
