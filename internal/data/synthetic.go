// Package data generates the synthetic classification workloads that
// stand in for CIFAR-10/CIFAR-100 in this offline reproduction (see
// DESIGN.md §2). Images are low-pass-filtered Gaussian noise — the
// spectral signature of natural images — and labels come from a
// fixed, randomly initialized teacher CNN, so that (a) the task is
// genuinely nonlinear, (b) achievable accuracy grows with model
// capacity, exactly the axis SteppingNet trades against MACs, and
// (c) label noise caps the attainable accuracy in the same regime as
// the paper's numbers. Everything is deterministic in the seed.
package data

import (
	"fmt"
	"math"

	"steppingnet/internal/nn"
	"steppingnet/internal/subnet"
	"steppingnet/internal/tensor"
)

// Dataset is a labelled image set. X has shape [N, C, H, W]; Y holds
// integer class labels.
type Dataset struct {
	X       *tensor.Tensor
	Y       []int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Image returns sample i as a [1, C, H, W] view-copy.
func (d *Dataset) Image(i int) *tensor.Tensor {
	shape := d.X.Shape()
	imgLen := shape[1] * shape[2] * shape[3]
	out := tensor.New(1, shape[1], shape[2], shape[3])
	copy(out.Data(), d.X.Data()[i*imgLen:(i+1)*imgLen])
	return out
}

// Batch copies the samples at the given indices into a fresh batch
// tensor and label slice.
func (d *Dataset) Batch(indices []int) (*tensor.Tensor, []int) {
	shape := d.X.Shape()
	imgLen := shape[1] * shape[2] * shape[3]
	x := tensor.New(len(indices), shape[1], shape[2], shape[3])
	y := make([]int, len(indices))
	for bi, idx := range indices {
		if idx < 0 || idx >= d.Len() {
			panic(fmt.Sprintf("data: batch index %d outside [0,%d)", idx, d.Len()))
		}
		copy(x.Data()[bi*imgLen:(bi+1)*imgLen], d.X.Data()[idx*imgLen:(idx+1)*imgLen])
		y[bi] = d.Y[idx]
	}
	return x, y
}

// Batches cuts the dataset into shuffled mini-batches and calls fn
// for each. The shuffle order is drawn from rng.
func (d *Dataset) Batches(rng *tensor.RNG, batchSize int, fn func(x *tensor.Tensor, y []int)) {
	if batchSize <= 0 {
		panic(fmt.Sprintf("data: batch size %d", batchSize))
	}
	perm := rng.Perm(d.Len())
	for start := 0; start < len(perm); start += batchSize {
		end := start + batchSize
		if end > len(perm) {
			end = len(perm)
		}
		x, y := d.Batch(perm[start:end])
		fn(x, y)
	}
}

// Config describes a synthetic workload.
type Config struct {
	Name       string
	Classes    int
	C, H, W    int
	Train      int     // number of training samples
	Test       int     // number of test samples
	Seed       uint64  // master seed; same seed ⇒ identical dataset
	LabelNoise float64 // fraction of labels replaced uniformly at random
	// TeacherFilters sets the width of the label-generating teacher
	// CNN; wider teachers make harder, more capacity-hungry tasks.
	// Zero selects a default of 8.
	TeacherFilters int
	// Margin rejects ambiguous samples: an image is kept only when
	// the winning standardized logit beats the runner-up by at least
	// this much. Larger margins give cleaner, easier tasks (higher
	// attainable accuracy); zero selects a default of 1.5. Use a
	// small negative value to disable filtering entirely.
	Margin float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("data: need ≥2 classes, got %d", c.Classes)
	case c.C <= 0 || c.H <= 0 || c.W <= 0:
		return fmt.Errorf("data: bad image dims %dx%dx%d", c.C, c.H, c.W)
	case c.Train <= 0 || c.Test <= 0:
		return fmt.Errorf("data: bad sizes train=%d test=%d", c.Train, c.Test)
	case c.LabelNoise < 0 || c.LabelNoise >= 1:
		return fmt.Errorf("data: label noise %g outside [0,1)", c.LabelNoise)
	case c.H%2 != 0 || c.W%2 != 0:
		return fmt.Errorf("data: teacher pools by 2; H, W must be even (got %dx%d)", c.H, c.W)
	}
	return nil
}

// Generate builds the train and test splits.
func Generate(cfg Config) (train, test *Dataset, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	lab := newLabeler(cfg, rng.Split(), rng.Split())
	imgRNG := rng.Split()
	noiseRNG := rng.Split()
	train = synthesize(cfg, cfg.Train, lab, imgRNG, noiseRNG)
	test = synthesize(cfg, cfg.Test, lab, imgRNG, noiseRNG)
	return train, test, nil
}

// labeler assigns classes by the teacher CNN's logits, standardized
// per class against calibration statistics. Raw argmax of a randomly
// initialized network is heavily skewed toward whichever class won
// the initialization lottery; standardization makes the synthetic
// class distribution roughly balanced, like CIFAR's.
type labeler struct {
	teacher *nn.Network
	mu, sd  []float64
}

func newLabeler(cfg Config, teacherRNG, calibRNG *tensor.RNG) *labeler {
	l := &labeler{teacher: labelTeacher(cfg, teacherRNG)}
	const calib = 512
	x := tensor.New(calib, cfg.C, cfg.H, cfg.W)
	imgLen := cfg.C * cfg.H * cfg.W
	for i := 0; i < calib; i++ {
		fillNaturalImage(x.Data()[i*imgLen:(i+1)*imgLen], cfg, calibRNG)
	}
	logits := l.teacher.Forward(x, &nn.Context{Subnet: 1})
	c := logits.Dim(1)
	l.mu = make([]float64, c)
	l.sd = make([]float64, c)
	for j := 0; j < c; j++ {
		var sum, ss float64
		for i := 0; i < calib; i++ {
			sum += logits.At(i, j)
		}
		mean := sum / calib
		for i := 0; i < calib; i++ {
			d := logits.At(i, j) - mean
			ss += d * d
		}
		l.mu[j] = mean
		l.sd[j] = math.Sqrt(ss/calib) + 1e-9
	}
	return l
}

// label returns the standardized-argmax class for one logit row and
// the margin to the runner-up.
func (l *labeler) label(row []float64) (class int, margin float64) {
	best, second, bi := math.Inf(-1), math.Inf(-1), 0
	for j, v := range row {
		z := (v - l.mu[j]) / l.sd[j]
		if z > best {
			second = best
			best, bi = z, j
		} else if z > second {
			second = z
		}
	}
	return bi, best - second
}

// MustGenerate is Generate for known-good configurations (tests,
// examples); it panics on error.
func MustGenerate(cfg Config) (train, test *Dataset) {
	train, test, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return train, test
}

// labelTeacher builds the frozen CNN that defines the ground-truth
// concept.
func labelTeacher(cfg Config, rng *tensor.RNG) *nn.Network {
	filters := cfg.TeacherFilters
	if filters <= 0 {
		filters = 8
	}
	one := func(u int) *subnet.Assignment { return subnet.NewAssignment(u, 1) }
	g := tensor.ConvGeom{InC: cfg.C, InH: cfg.H, InW: cfg.W, OutC: filters, K: 3, Stride: 1, Pad: 1}
	conv := nn.NewConv2D(nn.Conv2DConfig{
		Name: "teacher.conv", Geom: g, Rule: nn.RuleIncremental,
		AssignIn: one(cfg.C), Assign: one(filters), Init: rng,
	})
	conv.Bias().Value.FillNormal(rng, 0, 0.1)
	pool := nn.NewMaxPool2D("teacher.pool", filters, cfg.H, cfg.W, 2)
	fcIn := filters * (cfg.H / 2) * (cfg.W / 2)
	fc := nn.NewDense(nn.DenseConfig{
		Name: "teacher.fc", In: fcIn, Out: cfg.Classes, Rule: nn.RuleIncremental,
		AssignIn: one(filters), InRepeat: (cfg.H / 2) * (cfg.W / 2), Assign: one(cfg.Classes), Init: rng,
	})
	return nn.NewNetwork("teacher", conv, nn.NewReLU("teacher.relu"), pool, nn.NewFlatten("teacher.fl"), fc)
}

// synthesize draws n samples by rejection: generate low-pass images
// in chunks, label them with the standardized teacher, keep those
// whose decision margin passes the threshold, then apply label noise.
func synthesize(cfg Config, n int, lab *labeler, imgRNG, noiseRNG *tensor.RNG) *Dataset {
	margin := cfg.Margin
	if margin == 0 {
		margin = 1.5
	}
	x := tensor.New(n, cfg.C, cfg.H, cfg.W)
	y := make([]int, n)
	imgLen := cfg.C * cfg.H * cfg.W
	const chunk = 256
	ctx := &nn.Context{Subnet: 1}
	bx := tensor.New(chunk, cfg.C, cfg.H, cfg.W)

	accepted := 0
	// The margin filter accepts a constant fraction of candidates;
	// the attempt cap only guards against absurd margins.
	for attempts := 0; accepted < n && attempts < 4000; attempts++ {
		for i := 0; i < chunk; i++ {
			fillNaturalImage(bx.Data()[i*imgLen:(i+1)*imgLen], cfg, imgRNG)
		}
		logits := lab.teacher.Forward(bx, ctx)
		c := logits.Dim(1)
		for i := 0; i < chunk && accepted < n; i++ {
			class, m := lab.label(logits.Data()[i*c : (i+1)*c])
			if m < margin {
				continue
			}
			copy(x.Data()[accepted*imgLen:(accepted+1)*imgLen], bx.Data()[i*imgLen:(i+1)*imgLen])
			y[accepted] = class
			accepted++
		}
	}
	if accepted < n {
		panic(fmt.Sprintf("data: margin %g rejects too many samples (%d of %d accepted)", margin, accepted, n))
	}
	for i := range y {
		if noiseRNG.Float64() < cfg.LabelNoise {
			y[i] = noiseRNG.Intn(cfg.Classes)
		}
	}
	return &Dataset{X: x, Y: y, Classes: cfg.Classes}
}

// fillNaturalImage writes a zero-mean, unit-ish-variance low-pass
// random field per channel: iid Gaussian blurred twice with a 3×3
// box filter.
func fillNaturalImage(img []float64, cfg Config, rng *tensor.RNG) {
	h, w := cfg.H, cfg.W
	buf := make([]float64, h*w)
	tmp := make([]float64, h*w)
	for c := 0; c < cfg.C; c++ {
		plane := img[c*h*w : (c+1)*h*w]
		for i := range buf {
			buf[i] = rng.NormFloat64()
		}
		boxBlur(buf, tmp, h, w)
		boxBlur(tmp, buf, h, w)
		// Renormalize to unit variance so the teacher operates in a
		// consistent regime.
		var mean, ss float64
		for _, v := range buf {
			mean += v
		}
		mean /= float64(len(buf))
		for _, v := range buf {
			ss += (v - mean) * (v - mean)
		}
		std := 1.0
		if ss > 0 {
			std = 1 / (1e-12 + math.Sqrt(ss/float64(len(buf))))
		}
		for i, v := range buf {
			plane[i] = (v - mean) * std
		}
	}
}

func boxBlur(src, dst []float64, h, w int) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum, cnt := 0.0, 0
			for dy := -1; dy <= 1; dy++ {
				yy := y + dy
				if yy < 0 || yy >= h {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					xx := x + dx
					if xx < 0 || xx >= w {
						continue
					}
					sum += src[yy*w+xx]
					cnt++
				}
			}
			dst[y*w+x] = sum / float64(cnt)
		}
	}
}
