package data

import (
	"testing"

	"steppingnet/internal/tensor"
)

func smallCfg() Config {
	return Config{
		Name: "test", Classes: 4, C: 1, H: 8, W: 8,
		Train: 64, Test: 32, Seed: 1, LabelNoise: 0.05,
	}
}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	tr1, te1, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Len() != 64 || te1.Len() != 32 {
		t.Fatalf("sizes %d/%d", tr1.Len(), te1.Len())
	}
	if tr1.X.Dim(1) != 1 || tr1.X.Dim(2) != 8 || tr1.X.Dim(3) != 8 {
		t.Fatalf("image shape %v", tr1.X.Shape())
	}
	tr2, te2, _ := Generate(smallCfg())
	if !tensor.Equal(tr1.X, tr2.X, 0) || !tensor.Equal(te1.X, te2.X, 0) {
		t.Fatal("same seed must reproduce images exactly")
	}
	for i := range tr1.Y {
		if tr1.Y[i] != tr2.Y[i] {
			t.Fatal("same seed must reproduce labels")
		}
	}
	cfg3 := smallCfg()
	cfg3.Seed = 2
	tr3, _, _ := Generate(cfg3)
	if tensor.Equal(tr1.X, tr3.X, 1e-9) {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateLabelRange(t *testing.T) {
	tr, te, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range append(append([]int(nil), tr.Y...), te.Y...) {
		if y < 0 || y >= 4 {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestGenerateAllClassesAppear(t *testing.T) {
	cfg := smallCfg()
	cfg.Train = 512
	tr, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, cfg.Classes)
	for _, y := range tr.Y {
		seen[y] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("class %d never generated; teacher degenerate", c)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Classes: 1, C: 1, H: 8, W: 8, Train: 1, Test: 1},
		{Classes: 2, C: 0, H: 8, W: 8, Train: 1, Test: 1},
		{Classes: 2, C: 1, H: 8, W: 8, Train: 0, Test: 1},
		{Classes: 2, C: 1, H: 8, W: 8, Train: 1, Test: 1, LabelNoise: 1},
		{Classes: 2, C: 1, H: 7, W: 8, Train: 1, Test: 1},
	}
	for i, cfg := range bad {
		if _, _, err := Generate(cfg); err == nil {
			t.Fatalf("case %d should fail: %+v", i, cfg)
		}
	}
}

func TestBatchCopiesData(t *testing.T) {
	tr, _, _ := Generate(smallCfg())
	x, y := tr.Batch([]int{0, 3})
	if x.Dim(0) != 2 || len(y) != 2 {
		t.Fatal("batch size")
	}
	if y[0] != tr.Y[0] || y[1] != tr.Y[3] {
		t.Fatal("batch labels")
	}
	// Mutating the batch must not touch the dataset.
	x.Data()[0] = 999
	if tr.X.Data()[0] == 999 {
		t.Fatal("Batch must copy")
	}
}

func TestBatchIndexPanic(t *testing.T) {
	tr, _, _ := Generate(smallCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	tr.Batch([]int{tr.Len()})
}

func TestBatchesCoverDatasetOnce(t *testing.T) {
	tr, _, _ := Generate(smallCfg())
	count := 0
	seenSizes := []int{}
	tr.Batches(tensor.NewRNG(3), 10, func(x *tensor.Tensor, y []int) {
		count += len(y)
		seenSizes = append(seenSizes, len(y))
	})
	if count != tr.Len() {
		t.Fatalf("covered %d of %d", count, tr.Len())
	}
	if seenSizes[len(seenSizes)-1] != 4 { // 64 = 6*10+4
		t.Fatalf("tail batch %v", seenSizes)
	}
}

func TestImageCopy(t *testing.T) {
	tr, _, _ := Generate(smallCfg())
	img := tr.Image(5)
	if img.Dim(0) != 1 || img.Dim(2) != 8 {
		t.Fatalf("image shape %v", img.Shape())
	}
	img.Data()[0] = 123
	if tr.X.Data()[5*64] == 123 {
		t.Fatal("Image must copy")
	}
}

func TestImagesAreNormalized(t *testing.T) {
	tr, _, _ := Generate(smallCfg())
	// Each channel plane should be ~zero-mean unit-variance.
	plane := tr.X.Data()[:64]
	var mean, ss float64
	for _, v := range plane {
		mean += v
	}
	mean /= 64
	for _, v := range plane {
		ss += (v - mean) * (v - mean)
	}
	ss /= 64
	if mean > 1e-9 || mean < -1e-9 {
		t.Fatalf("plane mean %g", mean)
	}
	if ss < 0.5 || ss > 1.5 {
		t.Fatalf("plane variance %g", ss)
	}
}

func TestLabelNoiseChangesLabels(t *testing.T) {
	clean := smallCfg()
	clean.LabelNoise = 0
	clean.Train = 1024
	noisy := clean
	noisy.LabelNoise = 0.5
	trc, _, _ := Generate(clean)
	trn, _, _ := Generate(noisy)
	diff := 0
	for i := range trc.Y {
		if trc.Y[i] != trn.Y[i] {
			diff++
		}
	}
	// 50% noise over 4 classes flips ~37.5% of labels.
	if diff < 200 || diff > 600 {
		t.Fatalf("noise flipped %d of 1024", diff)
	}
}
