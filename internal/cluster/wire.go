package cluster

import (
	"strconv"
	"time"

	"steppingnet/internal/infer"
	"steppingnet/internal/serve"
	"steppingnet/internal/serve/cache"
)

// InferRequest is the POST /infer wire payload — the JSON contract
// between stepserve replicas, the router's remote client, and any
// external caller. It lives here (not in cmd/stepserve) so the
// command's HTTP handler and the Remote backend marshal the exact
// same shape and cannot drift apart.
type InferRequest struct {
	// Input is the flattened image; a replica substitutes a seeded
	// random input when it is absent (smoke tests, load generators).
	Input []float64 `json:"input,omitempty"`
	// DeadlineMs is the request deadline in milliseconds measured
	// from arrival; 0 selects the replica's configured default.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// Priority is the request's class (0 = lowest; clamped
	// server-side).
	Priority int `json:"priority,omitempty"`
}

// InferResponse is the POST /infer wire answer, mirroring
// serve.Result field for field.
type InferResponse struct {
	// Subnet is the ladder rung that produced Logits.
	Subnet int `json:"subnet"`
	// Pred is the argmax class of Logits.
	Pred int `json:"pred"`
	// Logits is the served subnet's output row.
	Logits []float64 `json:"logits"`
	// MACs is the incremental walk cost actually spent.
	MACs int64 `json:"macs"`
	// Priority is the clamped class the request was scheduled under.
	Priority int `json:"priority"`
	// DeadlineMet reports whether the answer beat the deadline.
	DeadlineMet bool `json:"deadline_met"`
	// QueueWaitMs is the admission-queue wait in milliseconds.
	QueueWaitMs float64 `json:"queue_wait_ms"`
	// LatencyMs is submission→answer wall clock in milliseconds.
	LatencyMs float64 `json:"latency_ms"`
	// CacheHit reports the answer came straight from the replica's
	// semantic result cache (zero MACs walked).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Resumed reports the walk was seeded from a cached rung; MACs
	// meters only the climbed steps.
	Resumed bool `json:"resumed,omitempty"`
	// EarlyExit reports the confidence early exit answered below the
	// affordable ladder cap.
	EarlyExit bool `json:"early_exit,omitempty"`
}

// WireRequest converts a serve.Request into its wire form.
func WireRequest(req serve.Request) InferRequest {
	return InferRequest{
		Input:      req.Input,
		DeadlineMs: float64(req.Deadline) / float64(time.Millisecond),
		Priority:   req.Priority,
	}
}

// WireResponse converts a serve.Result into its wire form.
func WireResponse(res serve.Result) InferResponse {
	return InferResponse{
		Subnet: res.Subnet, Pred: res.Pred, Logits: res.Logits, MACs: res.MACs,
		Priority:    res.Priority,
		DeadlineMet: res.DeadlineMet,
		QueueWaitMs: float64(res.QueueWait) / float64(time.Millisecond),
		LatencyMs:   float64(res.Latency) / float64(time.Millisecond),
		CacheHit:    res.CacheHit,
		Resumed:     res.Resumed,
		EarlyExit:   res.EarlyExit,
	}
}

// CacheEntryWire is the GET/POST /cache/entry wire payload: one
// semantic-cache entry plus its resumable ladder state, serialized for
// affinity-aware cross-replica warming. The key travels as a base-16
// string, never a JSON number — cache keys are full-range 64-bit
// hashes and JSON numbers are float64, which silently corrupts values
// above 2^53.
type CacheEntryWire struct {
	// Key is the cache key in lowercase base-16 (FormatKey/ParseKey).
	Key string `json:"key"`
	// Subnet is the rung whose logits the entry stores.
	Subnet int `json:"subnet"`
	// Logits is the stored output row for Subnet.
	Logits []float64 `json:"logits"`
	// State is the resumable ladder state, when the entry has one.
	// Warming without state still converts exact repeats into
	// zero-MAC hits at the target replica.
	State *infer.WireState `json:"state,omitempty"`
}

// FormatKey renders a cache key in the wire form CacheEntryWire.Key
// carries (lowercase base-16, no prefix).
func FormatKey(k cache.Key) string {
	return strconv.FormatUint(uint64(k), 16)
}

// ParseKey inverts FormatKey.
func ParseKey(s string) (cache.Key, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	return cache.Key(v), err
}

// WireCacheEntry converts a live cache entry into its wire form. The
// logits and state are aliased, not copied: entries are immutable once
// published, and the wire form exists only to be marshaled.
func WireCacheEntry(k cache.Key, ent *cache.Entry) (CacheEntryWire, error) {
	w := CacheEntryWire{Key: FormatKey(k), Subnet: ent.Subnet, Logits: ent.Logits}
	if ent.State != nil {
		ws, err := ent.State.Wire()
		if err != nil {
			return CacheEntryWire{}, err
		}
		w.State = ws
	}
	return w, nil
}

// Entry converts a wire-form cache entry back into the key and entry
// to install, validating the state's structural invariants and making
// fresh private copies along the way.
func (w CacheEntryWire) Entry() (cache.Key, *cache.Entry, error) {
	k, err := ParseKey(w.Key)
	if err != nil {
		return 0, nil, err
	}
	ent := &cache.Entry{Subnet: w.Subnet, Logits: append([]float64(nil), w.Logits...)}
	if w.State != nil {
		st, err := w.State.State()
		if err != nil {
			return 0, nil, err
		}
		ent.State = st
	}
	return k, ent, nil
}

// Bytes estimates the transfer's payload footprint (float64 data plus
// a small fixed overhead per tensor) — the unit the router's
// per-replica warming byte budget meters.
func (w CacheEntryWire) Bytes() int64 {
	n := int64(len(w.Logits))
	if w.State != nil {
		for _, l := range w.State.Layers {
			n += int64(len(l.Data))
		}
	}
	return n*8 + 64
}

// Result converts a wire answer back into a serve.Result — the shape
// the router hands callers, so local and remote answers are
// indistinguishable above the Backend seam.
func (r InferResponse) Result() serve.Result {
	return serve.Result{
		Subnet: r.Subnet, Pred: r.Pred, Logits: r.Logits, MACs: r.MACs,
		Priority:    r.Priority,
		DeadlineMet: r.DeadlineMet,
		QueueWait:   time.Duration(r.QueueWaitMs * float64(time.Millisecond)),
		Latency:     time.Duration(r.LatencyMs * float64(time.Millisecond)),
		CacheHit:    r.CacheHit,
		Resumed:     r.Resumed,
		EarlyExit:   r.EarlyExit,
	}
}
