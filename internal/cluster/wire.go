package cluster

import (
	"time"

	"steppingnet/internal/serve"
)

// InferRequest is the POST /infer wire payload — the JSON contract
// between stepserve replicas, the router's remote client, and any
// external caller. It lives here (not in cmd/stepserve) so the
// command's HTTP handler and the Remote backend marshal the exact
// same shape and cannot drift apart.
type InferRequest struct {
	// Input is the flattened image; a replica substitutes a seeded
	// random input when it is absent (smoke tests, load generators).
	Input []float64 `json:"input,omitempty"`
	// DeadlineMs is the request deadline in milliseconds measured
	// from arrival; 0 selects the replica's configured default.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// Priority is the request's class (0 = lowest; clamped
	// server-side).
	Priority int `json:"priority,omitempty"`
}

// InferResponse is the POST /infer wire answer, mirroring
// serve.Result field for field.
type InferResponse struct {
	// Subnet is the ladder rung that produced Logits.
	Subnet int `json:"subnet"`
	// Pred is the argmax class of Logits.
	Pred int `json:"pred"`
	// Logits is the served subnet's output row.
	Logits []float64 `json:"logits"`
	// MACs is the incremental walk cost actually spent.
	MACs int64 `json:"macs"`
	// Priority is the clamped class the request was scheduled under.
	Priority int `json:"priority"`
	// DeadlineMet reports whether the answer beat the deadline.
	DeadlineMet bool `json:"deadline_met"`
	// QueueWaitMs is the admission-queue wait in milliseconds.
	QueueWaitMs float64 `json:"queue_wait_ms"`
	// LatencyMs is submission→answer wall clock in milliseconds.
	LatencyMs float64 `json:"latency_ms"`
	// CacheHit reports the answer came straight from the replica's
	// semantic result cache (zero MACs walked).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Resumed reports the walk was seeded from a cached rung; MACs
	// meters only the climbed steps.
	Resumed bool `json:"resumed,omitempty"`
	// EarlyExit reports the confidence early exit answered below the
	// affordable ladder cap.
	EarlyExit bool `json:"early_exit,omitempty"`
}

// WireRequest converts a serve.Request into its wire form.
func WireRequest(req serve.Request) InferRequest {
	return InferRequest{
		Input:      req.Input,
		DeadlineMs: float64(req.Deadline) / float64(time.Millisecond),
		Priority:   req.Priority,
	}
}

// WireResponse converts a serve.Result into its wire form.
func WireResponse(res serve.Result) InferResponse {
	return InferResponse{
		Subnet: res.Subnet, Pred: res.Pred, Logits: res.Logits, MACs: res.MACs,
		Priority:    res.Priority,
		DeadlineMet: res.DeadlineMet,
		QueueWaitMs: float64(res.QueueWait) / float64(time.Millisecond),
		LatencyMs:   float64(res.Latency) / float64(time.Millisecond),
		CacheHit:    res.CacheHit,
		Resumed:     res.Resumed,
		EarlyExit:   res.EarlyExit,
	}
}

// Result converts a wire answer back into a serve.Result — the shape
// the router hands callers, so local and remote answers are
// indistinguishable above the Backend seam.
func (r InferResponse) Result() serve.Result {
	return serve.Result{
		Subnet: r.Subnet, Pred: r.Pred, Logits: r.Logits, MACs: r.MACs,
		Priority:    r.Priority,
		DeadlineMet: r.DeadlineMet,
		QueueWait:   time.Duration(r.QueueWaitMs * float64(time.Millisecond)),
		Latency:     time.Duration(r.LatencyMs * float64(time.Millisecond)),
		CacheHit:    r.CacheHit,
		Resumed:     r.Resumed,
		EarlyExit:   r.EarlyExit,
	}
}
