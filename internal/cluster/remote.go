package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"steppingnet/internal/serve"
)

// remoteMaxResp bounds how much of a replica's response body the
// client will read — a corrupted or hostile replica must not be able
// to balloon the router's memory.
const remoteMaxResp = 8 << 20

// Remote is the HTTP implementation of Backend: one stepserve replica
// reached over its JSON surface (POST /infer, GET /stats, GET
// /healthz). Every request carries the caller's context deadline, and
// the underlying transport bounds connection reuse (a handful of
// warm connections per replica; idle ones expire) so a flapping
// replica cannot accumulate sockets. Create with NewRemote.
type Remote struct {
	target string
	client *http.Client
}

// NewRemote builds a Remote for a base URL like "http://host:8080"
// (a trailing slash is tolerated). The client enforces per-request
// context deadlines and keeps at most a few idle connections to the
// replica.
func NewRemote(target string) *Remote {
	return &Remote{
		target: strings.TrimRight(target, "/"),
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        8,
				MaxIdleConnsPerHost: 4,
				MaxConnsPerHost:     64,
				IdleConnTimeout:     30 * time.Second,
			},
		},
	}
}

// Submit implements Backend: POST /infer with the wire payload,
// mapping the replica's documented statuses back to the typed errors
// the in-process server returns — 503 to serve.ErrOverloaded (or
// serve.ErrClosed when the replica says it is draining), 400 to
// serve.ErrBadInput, anything transport-shaped to ErrTransport.
func (r *Remote) Submit(ctx context.Context, req serve.Request) (serve.Result, error) {
	body, err := json.Marshal(WireRequest(req))
	if err != nil {
		return serve.Result{}, fmt.Errorf("%w: marshal: %v", serve.ErrBadInput, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.target+"/infer", bytes.NewReader(body))
	if err != nil {
		return serve.Result{}, fmt.Errorf("%w: %v", ErrTransport, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(hreq)
	if err != nil {
		return serve.Result{}, fmt.Errorf("%w: %s: %v", ErrTransport, r.target, err)
	}
	defer drain(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		var wire InferResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, remoteMaxResp)).Decode(&wire); err != nil {
			return serve.Result{}, fmt.Errorf("%w: %s: bad answer body: %v", ErrTransport, r.target, err)
		}
		return wire.Result(), nil
	case http.StatusServiceUnavailable:
		msg := readErr(resp.Body)
		if strings.Contains(msg, serve.ErrClosed.Error()) || strings.Contains(msg, "draining") {
			return serve.Result{}, fmt.Errorf("%w: %s: %s", serve.ErrClosed, r.target, msg)
		}
		return serve.Result{}, fmt.Errorf("%w: %s: %s", serve.ErrOverloaded, r.target, msg)
	case http.StatusBadRequest:
		return serve.Result{}, fmt.Errorf("%w: %s: %s", serve.ErrBadInput, r.target, readErr(resp.Body))
	default:
		return serve.Result{}, fmt.Errorf("%w: %s: unexpected status %d: %s",
			ErrTransport, r.target, resp.StatusCode, readErr(resp.Body))
	}
}

// Stats implements Backend: GET /stats.
func (r *Remote) Stats(ctx context.Context) (serve.Snapshot, error) {
	var snap serve.Snapshot
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, r.target+"/stats", nil)
	if err != nil {
		return snap, fmt.Errorf("%w: %v", ErrTransport, err)
	}
	resp, err := r.client.Do(hreq)
	if err != nil {
		return snap, fmt.Errorf("%w: %s: %v", ErrTransport, r.target, err)
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%w: %s: /stats status %d", ErrTransport, r.target, resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, remoteMaxResp)).Decode(&snap); err != nil {
		return snap, fmt.Errorf("%w: %s: bad stats body: %v", ErrTransport, r.target, err)
	}
	return snap, nil
}

// Health implements Backend: GET /healthz, where anything but a 200
// — including a clean 503 from a draining or still-calibrating
// replica — means "send no work here".
func (r *Remote) Health(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, r.target+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrTransport, err)
	}
	resp, err := r.client.Do(hreq)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrTransport, r.target, err)
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: /healthz status %d: %s", r.target, resp.StatusCode, readErr(resp.Body))
	}
	return nil
}

// Target implements Backend.
func (r *Remote) Target() string { return r.target }

// Close implements Backend by dropping the warm connection pool.
func (r *Remote) Close() {
	if t, ok := r.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// drain consumes and closes a response body so the connection can be
// reused (an abandoned body forces a fresh TCP handshake per call).
func drain(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, remoteMaxResp)) //nolint:errcheck — best-effort reuse
	body.Close()
}

// readErr pulls a short error message out of a non-200 body.
func readErr(body io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(body, 512))
	return strings.TrimSpace(string(b))
}
