package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"steppingnet/internal/serve"
)

// fakeBackend is a fully scripted Backend: tests flip its health and
// submit behavior to drive the router's prober, breaker, retry and
// hedge paths deterministically, with no model, engine or clock
// dependence.
type fakeBackend struct {
	name string

	mu          sync.Mutex
	healthErr   error
	submitErr   error
	submitDelay time.Duration
	snap        serve.Snapshot

	submits atomic.Int64
	closed  atomic.Bool
}

func (f *fakeBackend) setHealth(err error)      { f.mu.Lock(); f.healthErr = err; f.mu.Unlock() }
func (f *fakeBackend) setSubmitErr(err error)   { f.mu.Lock(); f.submitErr = err; f.mu.Unlock() }
func (f *fakeBackend) setDelay(d time.Duration) { f.mu.Lock(); f.submitDelay = d; f.mu.Unlock() }

func (f *fakeBackend) Submit(_ context.Context, req serve.Request) (serve.Result, error) {
	f.submits.Add(1)
	f.mu.Lock()
	d, err := f.submitDelay, f.submitErr
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	if err != nil {
		return serve.Result{}, err
	}
	return serve.Result{
		Subnet: 1, Pred: 0, Logits: []float64{1, 0},
		Priority: req.Priority, DeadlineMet: true,
	}, nil
}

func (f *fakeBackend) Stats(context.Context) (serve.Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snap, nil
}

func (f *fakeBackend) Health(context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.healthErr
}

func (f *fakeBackend) Target() string { return f.name }
func (f *fakeBackend) Close()         { f.closed.Store(true) }

// snap fabricates a routing snapshot: queueLen orders the backlog
// scores (so tests pin which replica a first attempt picks) and
// stepMs fixes the calibrated walk floor the retry-affordability gate
// prices against.
func snap(queueLen int, stepMs ...float64) serve.Snapshot {
	return serve.Snapshot{
		QueueLen: queueLen, Workers: 1, ServiceEwmaMs: 1,
		MinSubnet: 1, StepTimeMs: stepMs,
	}
}

func TestWalkFloor(t *testing.T) {
	if got := walkFloor(serve.Snapshot{}); got != 0 {
		t.Fatalf("uncalibrated floor = %v, want 0", got)
	}
	// MinSubnet 2 over steps {1ms, 2ms, 3ms}: the cheapest answer
	// walks steps 1 and 2 → 3ms.
	s := serve.Snapshot{StepTimeMs: []float64{1, 2, 3}, MinSubnet: 2}
	if got := walkFloor(s); got != 3*time.Millisecond {
		t.Fatalf("floor = %v, want 3ms", got)
	}
	// Out-of-range MinSubnet clamps to the ladder.
	s.MinSubnet = 99
	if got := walkFloor(s); got != 6*time.Millisecond {
		t.Fatalf("clamped-high floor = %v, want 6ms", got)
	}
	s.MinSubnet = 0
	if got := walkFloor(s); got != time.Millisecond {
		t.Fatalf("clamped-low floor = %v, want 1ms", got)
	}
}

// newTestRouter builds a probe-less router over the given fakes with
// fast, deterministic settings; tests drive probeOnce by hand.
func newTestRouter(t *testing.T, cfg RouterConfig, fakes ...*fakeBackend) *Router {
	t.Helper()
	for _, f := range fakes {
		cfg.Backends = append(cfg.Backends, f)
	}
	cfg.ProbeInterval = -1 // no background probing: tests own the clock
	ro, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ro.Close)
	return ro
}

// TestRetryDeadlineAware pins the acceptance property "never retry a
// request whose remaining deadline cannot afford the target replica's
// minimum walk" with injected calibration: replica A always fails
// with a transport error; replica B succeeds. While B's calibrated
// floor is cheap, a failed attempt on A is retried on B and served;
// when B's cached calibration says even its narrowest answer costs
// 10 s, the same failure is NOT retried — the router returns A's
// transport error instead of wasting B's capacity on a guaranteed
// miss.
func TestRetryDeadlineAware(t *testing.T) {
	a := &fakeBackend{name: "a"}
	b := &fakeBackend{name: "b"}
	a.setSubmitErr(fmt.Errorf("%w: synthetic", ErrTransport))
	ro := newTestRouter(t, RouterConfig{}, a, b)

	// A scores 0 (empty queue) so every first attempt lands there; B's
	// fabricated backlog keeps it the retry target only.
	ro.replicas[0].storeSnap(snap(0, 0.001))
	ro.replicas[1].storeSnap(snap(10, 0.001))

	res, err := ro.Submit(serve.Request{Deadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("cheap-floor retry failed: %v", err)
	}
	if res.Subnet != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
	if got := ro.retries.Load(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	if got := b.submits.Load(); got != 1 {
		t.Fatalf("replica b submits = %d, want 1", got)
	}

	// Same failure, but B's calibration now prices its cheapest walk
	// at 10s — far past the 50ms deadline. No retry may fire.
	ro.replicas[1].storeSnap(snap(10, 10_000))
	_, err = ro.Submit(serve.Request{Deadline: 50 * time.Millisecond})
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("unaffordable retry: got %v, want the original transport error", err)
	}
	if got := ro.retries.Load(); got != 1 {
		t.Fatalf("retries = %d after unaffordable case, want still 1", got)
	}
	if got := b.submits.Load(); got != 1 {
		t.Fatalf("replica b submits = %d, want still 1 (no retry dispatched)", got)
	}

	st := ro.Stats()
	if st.Replicas[0].TransportErrors != 2 || st.Replicas[1].Success != 1 {
		t.Fatalf("stats mismatch: %+v", st.Replicas)
	}
}

// TestReadmitAfterConsecutiveProbes pins the prober's admission
// hysteresis: DownAfter consecutive failures eject a replica (with
// probe backoff growing exponentially), and re-admission requires
// ReadmitAfter consecutive successes — one lucky probe against a
// flapping replica is not enough, and any failure in between resets
// the run.
func TestReadmitAfterConsecutiveProbes(t *testing.T) {
	f := &fakeBackend{name: "flappy"}
	ro := newTestRouter(t, RouterConfig{
		DownAfter: 2, ReadmitAfter: 3,
		ProbeBackoffMax: 4 * 500 * time.Millisecond,
	}, f)
	r := ro.replicas[0]

	up := func() bool { r.mu.Lock(); defer r.mu.Unlock(); return r.up }
	backoff := func() time.Duration { r.mu.Lock(); defer r.mu.Unlock(); return r.backoff }

	f.setHealth(errors.New("probe refused"))
	ro.probeOnce(r)
	if !up() {
		t.Fatal("one probe failure must not eject (DownAfter=2)")
	}
	ro.probeOnce(r)
	if up() {
		t.Fatal("two consecutive probe failures must eject")
	}
	if ro.Available() != 0 {
		t.Fatalf("Available = %d with the only replica down", ro.Available())
	}
	// Backoff doubled per failure: base 500ms → 1s → 2s.
	if got := backoff(); got != 2*time.Second {
		t.Fatalf("probe backoff = %v after two failures, want 2s", got)
	}
	ro.probeOnce(r)
	ro.probeOnce(r)
	if got := backoff(); got != 4*500*time.Millisecond {
		t.Fatalf("probe backoff = %v, want capped at %v", got, 4*500*time.Millisecond)
	}

	// Two successes: not enough (ReadmitAfter=3), but backoff resets.
	f.setHealth(nil)
	ro.probeOnce(r)
	ro.probeOnce(r)
	if up() {
		t.Fatal("re-admitted after only 2 consecutive successful probes, want 3")
	}
	if got := backoff(); got != 0 {
		t.Fatalf("probe backoff = %v after success, want reset to 0", got)
	}

	// A failure in between resets the success run.
	f.setHealth(errors.New("flap"))
	ro.probeOnce(r)
	f.setHealth(nil)
	ro.probeOnce(r)
	ro.probeOnce(r)
	if up() {
		t.Fatal("success run must restart after an interleaved failure")
	}
	ro.probeOnce(r)
	if !up() {
		t.Fatal("three consecutive successful probes must re-admit")
	}
	if ro.Available() != 1 {
		t.Fatalf("Available = %d after re-admission, want 1", ro.Available())
	}
}

// TestBreakerStateMachine pins the per-replica circuit: consecutive
// submit failures open it, an open circuit rejects instantly without
// touching the replica, the cooldown admits exactly one half-open
// trial, and that trial's outcome closes or re-opens the circuit.
func TestBreakerStateMachine(t *testing.T) {
	f := &fakeBackend{name: "breaker"}
	f.setSubmitErr(fmt.Errorf("%w: down", ErrTransport))
	const cooldown = 40 * time.Millisecond
	ro := newTestRouter(t, RouterConfig{
		BreakerThreshold: 2, BreakerCooldown: cooldown,
	}, f)

	brState := func() string { return ro.Stats().Replicas[0].Breaker }

	for i := 0; i < 2; i++ {
		if _, err := ro.Submit(serve.Request{Deadline: 20 * time.Millisecond}); !errors.Is(err, ErrTransport) {
			t.Fatalf("submit %d: got %v, want transport error", i, err)
		}
	}
	if got := brState(); got != "open" {
		t.Fatalf("breaker = %q after %d consecutive failures, want open", got, 2)
	}

	// Open circuit: the replica is not even tried.
	before := f.submits.Load()
	if _, err := ro.Submit(serve.Request{Deadline: 20 * time.Millisecond}); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("open-circuit submit: got %v, want ErrNoReplicas", err)
	}
	if f.submits.Load() != before {
		t.Fatal("open circuit must not dispatch to the replica")
	}

	// Cooldown elapses; the half-open trial fails → straight back to
	// open, no threshold accumulation needed.
	time.Sleep(cooldown + 5*time.Millisecond)
	if _, err := ro.Submit(serve.Request{Deadline: 20 * time.Millisecond}); !errors.Is(err, ErrTransport) {
		t.Fatalf("half-open trial: got %v, want transport error", err)
	}
	if got := brState(); got != "open" {
		t.Fatalf("breaker = %q after failed half-open trial, want open", got)
	}

	// Next cooldown: the trial succeeds → closed, traffic flows.
	f.setSubmitErr(nil)
	time.Sleep(cooldown + 5*time.Millisecond)
	if _, err := ro.Submit(serve.Request{Deadline: 20 * time.Millisecond}); err != nil {
		t.Fatalf("recovering half-open trial failed: %v", err)
	}
	if got := brState(); got != "closed" {
		t.Fatalf("breaker = %q after successful trial, want closed", got)
	}
	if _, err := ro.Submit(serve.Request{Deadline: 20 * time.Millisecond}); err != nil {
		t.Fatalf("closed-circuit submit failed: %v", err)
	}
}

// TestOverloadIsNotBreakerEvidence pins the distinction between a
// dead replica and a busy one: typed ErrOverloaded refusals never
// open the circuit, however many arrive in a row — ejecting a replica
// for defending itself would dogpile its peers.
func TestOverloadIsNotBreakerEvidence(t *testing.T) {
	f := &fakeBackend{name: "busy"}
	f.setSubmitErr(fmt.Errorf("%w: queue full", serve.ErrOverloaded))
	ro := newTestRouter(t, RouterConfig{BreakerThreshold: 2}, f)

	for i := 0; i < 6; i++ {
		if _, err := ro.Submit(serve.Request{Deadline: 20 * time.Millisecond}); !errors.Is(err, serve.ErrOverloaded) {
			t.Fatalf("submit %d: got %v, want ErrOverloaded passed through", i, err)
		}
	}
	if got := ro.Stats().Replicas[0].Breaker; got != "closed" {
		t.Fatalf("breaker = %q after overload refusals, want closed", got)
	}
	if got := ro.Stats().Replicas[0].Rejected; got != 6 {
		t.Fatalf("rejected = %d, want 6", got)
	}
}

// TestHedgeRacesTailRequest pins the hedging path: once a class has a
// latency history, a first attempt that overstays the class p99 gets
// a second attempt raced on another replica, the faster answer wins,
// and exactly one result is returned.
func TestHedgeRacesTailRequest(t *testing.T) {
	slow := &fakeBackend{name: "slow"}
	fast := &fakeBackend{name: "fast"}
	slow.setDelay(60 * time.Millisecond)
	ro := newTestRouter(t, RouterConfig{
		Hedge: true, HedgeMinSamples: 4,
	}, slow, fast)

	// Pin first-attempt choice: slow scores 0, fast carries fabricated
	// backlog. Both floors are cheap, so the hedge is affordable.
	ro.replicas[0].storeSnap(snap(0, 0.001))
	ro.replicas[1].storeSnap(snap(10, 0.001))

	// Seed the class-1 latency history: p99 ≈ 1ms, far under the slow
	// replica's 60ms stall.
	for i := 0; i < 4; i++ {
		ro.observeLatency(1, time.Millisecond)
	}

	start := time.Now()
	res, err := ro.Submit(serve.Request{Priority: 1, Deadline: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("hedged submit failed: %v", err)
	}
	if res.Subnet != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
	// The hedge must beat the slow primary by a wide margin.
	if e := time.Since(start); e > 40*time.Millisecond {
		t.Fatalf("hedged answer took %v, want well under the slow replica's 60ms", e)
	}
	if got := ro.hedges.Load(); got != 1 {
		t.Fatalf("hedges = %d, want 1", got)
	}
	if got := fast.submits.Load(); got != 1 {
		t.Fatalf("fast replica submits = %d, want 1 (the hedge)", got)
	}
	// The abandoned primary still completes and its bookkeeping lands.
	deadline := time.Now().Add(2 * time.Second)
	for ro.replicas[0].inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned primary attempt never finished")
		}
		time.Sleep(time.Millisecond)
	}
	st := ro.Stats()
	if st.Served != 1 || st.Submitted != 1 {
		t.Fatalf("router stats %+v, want exactly one submit and one serve", st)
	}
	if st.Replicas[1].Hedged != 1 {
		t.Fatalf("replica stats %+v, want the hedge attributed to fast", st.Replicas)
	}
}

// TestBadInputNeverRetries pins the permanent-error classification: a
// request rejected for its own shape is returned immediately, with no
// second replica tried and no breaker movement.
func TestBadInputNeverRetries(t *testing.T) {
	a := &fakeBackend{name: "a"}
	b := &fakeBackend{name: "b"}
	a.setSubmitErr(fmt.Errorf("%w: wrong geometry", serve.ErrBadInput))
	ro := newTestRouter(t, RouterConfig{}, a, b)
	ro.replicas[0].storeSnap(snap(0))
	ro.replicas[1].storeSnap(snap(10))

	if _, err := ro.Submit(serve.Request{Deadline: 20 * time.Millisecond}); !errors.Is(err, serve.ErrBadInput) {
		t.Fatalf("got %v, want ErrBadInput", err)
	}
	if got := b.submits.Load(); got != 0 {
		t.Fatalf("replica b submits = %d, want 0 (bad input is not retriable)", got)
	}
	if got := ro.Stats().Replicas[0].Breaker; got != "closed" {
		t.Fatalf("breaker = %q, want closed (bad input says nothing about the replica)", got)
	}
}

// TestLeastBacklogPick pins the routing objective: with equal floors
// and health, traffic goes to the replica whose cached snapshot
// predicts the smallest backlog.
func TestLeastBacklogPick(t *testing.T) {
	a := &fakeBackend{name: "a"}
	b := &fakeBackend{name: "b"}
	ro := newTestRouter(t, RouterConfig{}, a, b)
	ro.replicas[0].storeSnap(snap(12))
	ro.replicas[1].storeSnap(snap(1))

	for i := 0; i < 5; i++ {
		if _, err := ro.Submit(serve.Request{Deadline: 20 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.submits.Load(); got != 5 {
		t.Fatalf("least-backlogged replica served %d of 5", got)
	}
	if got := a.submits.Load(); got != 0 {
		t.Fatalf("backlogged replica served %d, want 0", got)
	}
}

// TestRouterConfigValidation pins the constructor's contract.
func TestRouterConfigValidation(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Fatal("want error for empty backend list")
	}
	if _, err := NewRouter(RouterConfig{
		Backends: []Backend{&fakeBackend{name: "a"}}, ProbeInterval: -1,
		Affinity: true, AffinitySpillFactor: 0.5,
	}); err == nil {
		t.Fatal("want error for a spill factor < 1 (it would demote even the least-loaded replica)")
	}
}

// TestPickSurvivesWrappedRotationCounter is the regression test for
// the rotation-offset bug: the tie-break counter is a monotonically
// incremented int64, and converting it to int yields a NEGATIVE
// offset once it exceeds math.MaxInt (guaranteed within hours on a
// 32-bit int, eventually everywhere) — the unnormalized
// (offset+i)%n then indexed the replica slice at a negative
// position and panicked. Pre-wrap the counter to both danger zones
// and require picks to keep working.
func TestPickSurvivesWrappedRotationCounter(t *testing.T) {
	a := &fakeBackend{name: "a"}
	b := &fakeBackend{name: "b"}
	c := &fakeBackend{name: "c"}
	ro := newTestRouter(t, RouterConfig{}, a, b, c)

	for _, pre := range []int64{-8, math.MinInt64, math.MaxInt32 - 1, math.MaxInt64 - 1} {
		ro.rr.Store(pre)
		for i := 0; i < 4; i++ { // cross the wrap boundary itself, too
			if _, err := ro.Submit(serve.Request{Deadline: 20 * time.Millisecond}); err != nil {
				t.Fatalf("submit with rotation counter pre-set to %d: %v", pre, err)
			}
		}
	}
}

// TestProbeSnapshotOrdering is the regression test for the stale-
// probe overwrite: probe A starts, stalls mid-exchange, and finishes
// AFTER a later probe B has already published a fresher snapshot —
// A's stale snapshot (and the walk floor derived from it) must be
// dropped, not stored. The probes are driven by hand through the
// begin/finish seam probeOnce uses.
func TestProbeSnapshotOrdering(t *testing.T) {
	f := &fakeBackend{name: "slowprobe"}
	ro := newTestRouter(t, RouterConfig{}, f)
	r := ro.replicas[0]

	seqA := r.probeSeq.Add(1) // probe A begins its exchange first...
	seqB := r.probeSeq.Add(1) // ...then probe B begins
	fresh := snap(2, 5)       // B observes the replica later: fresher
	stale := snap(40, 500)    // A's view from before re-admission
	ro.finishProbe(r, seqB, nil, fresh, nil)
	ro.finishProbe(r, seqA, nil, stale, nil)

	got := r.snap.Load()
	if got == nil || got.QueueLen != fresh.QueueLen {
		t.Fatalf("slow probe overwrote the fresher snapshot: cached %+v, want queue %d", got, fresh.QueueLen)
	}
	if floor := time.Duration(r.floorNs.Load()); floor != 5*time.Millisecond {
		t.Fatalf("walk floor %v reflects the stale probe, want 5ms from the fresh one", floor)
	}
	// A later-started probe still updates normally.
	seqC := r.probeSeq.Add(1)
	ro.finishProbe(r, seqC, nil, snap(7, 5), nil)
	if got := r.snap.Load(); got.QueueLen != 7 {
		t.Fatalf("in-order probe failed to update the snapshot: %+v", got)
	}
}

// TestHedgeBothLegsFailReturnsFirstFailure pins the error surfaced
// when a hedged pair both fail: the FIRST leg to fail is the cause
// (the later one typically dies of the already-exhausted budget), so
// its error must be the one the caller sees — previously the last
// failure won and the root cause was discarded.
func TestHedgeBothLegsFailReturnsFirstFailure(t *testing.T) {
	slow := &fakeBackend{name: "slow"}
	fast := &fakeBackend{name: "fast"}
	slow.setDelay(60 * time.Millisecond)
	slow.setSubmitErr(fmt.Errorf("%w: slow-leg-failure", ErrTransport))
	fast.setSubmitErr(fmt.Errorf("%w: first-failure-cause", ErrTransport))
	ro := newTestRouter(t, RouterConfig{
		Hedge: true, HedgeMinSamples: 4, MaxAttempts: 2,
	}, slow, fast)
	ro.replicas[0].storeSnap(snap(0, 0.001))
	ro.replicas[1].storeSnap(snap(10, 0.001))
	for i := 0; i < 4; i++ {
		ro.observeLatency(0, time.Millisecond)
	}

	_, err := ro.Submit(serve.Request{Deadline: 500 * time.Millisecond})
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("got %v, want a transport error", err)
	}
	// The hedge (fast) fails ~immediately; the primary stalls 60ms
	// before failing. The fast leg's error is the first failure.
	if !strings.Contains(err.Error(), "first-failure-cause") {
		t.Fatalf("surfaced error %q, want the first failure's cause", err)
	}
}

// TestBadInputCountedInReplicaAccounting pins the accounting hole:
// an ErrBadInput dispatch consumed a replica attempt but moved no
// outcome counter, so per-replica outcomes did not sum to
// dispatches. Now they must, with the bad input on its own counter.
func TestBadInputCountedInReplicaAccounting(t *testing.T) {
	f := &fakeBackend{name: "picky"}
	f.setSubmitErr(fmt.Errorf("%w: wrong geometry", serve.ErrBadInput))
	ro := newTestRouter(t, RouterConfig{}, f)

	for i := 0; i < 3; i++ {
		if _, err := ro.Submit(serve.Request{Deadline: 20 * time.Millisecond}); !errors.Is(err, serve.ErrBadInput) {
			t.Fatalf("got %v, want ErrBadInput", err)
		}
	}
	f.setSubmitErr(nil)
	if _, err := ro.Submit(serve.Request{Deadline: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	rs := ro.Stats().Replicas[0]
	if rs.BadInputs != 3 {
		t.Fatalf("BadInputs = %d, want 3", rs.BadInputs)
	}
	if got := rs.Success + rs.Rejected + rs.TransportErrors + rs.BadInputs; got != rs.Dispatches || rs.Dispatches != 4 {
		t.Fatalf("outcomes %d != dispatches %d (want both 4)", got, rs.Dispatches)
	}
}
