package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"steppingnet/internal/serve"
	"steppingnet/internal/serve/cache"
)

// Breaker states: a replica's circuit starts closed (requests flow),
// opens after BreakerThreshold consecutive failures (requests stop),
// and half-opens after BreakerCooldown — one trial request probes the
// replica, closing the circuit on success and re-opening it on
// failure.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

// hedgeClassMax bounds how many priority classes get their own
// latency ring for the hedge trigger (higher classes share the top
// ring, mirroring serve's clamping).
const hedgeClassMax = 8

// hedgeRingSize is the per-class latency reservoir backing the p99
// hedge trigger.
const hedgeRingSize = 512

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Backends are the replicas to route over. Required, ≥ 1. The
	// router owns them: Router.Close closes each.
	Backends []Backend
	// DefaultDeadline applies to requests that carry none (the same
	// meaning as serve.Config.DefaultDeadline, but enforced router-
	// side so retry budgeting works even for defaulted requests).
	// 0 means 50ms.
	DefaultDeadline time.Duration
	// ProbeInterval is the base health-probe cadence per replica. A
	// failing replica's probes back off exponentially from here up to
	// ProbeBackoffMax. 0 means 500ms; negative disables the probe
	// loops entirely (deterministic tests drive probes by hand).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health+stats probe exchange. 0 means 1s.
	ProbeTimeout time.Duration
	// ProbeBackoffMax caps the exponential probe backoff on a failing
	// replica. 0 means 8× ProbeInterval.
	ProbeBackoffMax time.Duration
	// DownAfter is how many consecutive probe failures eject a
	// replica from the rotation. 0 means 2.
	DownAfter int
	// ReadmitAfter is how many consecutive probe successes a
	// previously-down replica needs before it is re-admitted — one
	// lucky probe against a still-flapping replica must not send real
	// traffic back. 0 means 3.
	ReadmitAfter int
	// BreakerThreshold is how many consecutive failed submits open a
	// replica's circuit breaker. 0 means 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit waits before
	// half-opening for a trial request. 0 means 2s.
	BreakerCooldown time.Duration
	// RetryMargin pads the affordability check: a retry (or hedge) is
	// dispatched to a replica only when the remaining deadline covers
	// that replica's calibrated MinSubnet walk plus this margin.
	// 0 means 1ms.
	RetryMargin time.Duration
	// MaxAttempts bounds the dispatches per request (first try +
	// retries + hedges). 0 means one attempt per replica.
	MaxAttempts int
	// Hedge enables tail hedging: when a first attempt has been in
	// flight longer than its class's observed p99, a second attempt
	// is raced on another replica (deadline-affordability gated, like
	// a retry) and the first answer wins.
	Hedge bool
	// HedgeMinSamples is how many latencies a class must have
	// observed before its p99 is trusted as a hedge trigger. 0 means
	// 64.
	HedgeMinSamples int
	// AttemptGrace extends each attempt's transport deadline beyond
	// the request deadline: an anytime replica legitimately finishes
	// its MinSubnet walk (and answers, marked late) slightly after
	// the deadline, and canceling that answer would turn it into a
	// spurious transport error. 0 means 100ms.
	AttemptGrace time.Duration
	// Affinity enables cache-affinity routing: requests that carry an
	// input are keyed with cache.KeyOf and routed by rendezvous
	// (highest-random-weight) hashing over the currently-admitted
	// replicas, so repeats of the same input land on the replica whose
	// semantic cache already holds the walk. Keyless requests fall
	// back to least-backlog spreading, and the bounded-load spill
	// (AffinitySpillFactor) keeps a hot key from drowning one replica
	// while its peers idle.
	Affinity bool
	// AffinitySpillFactor bounds the load a key may pin to its
	// affinity choice: when that replica's backlog score exceeds this
	// multiple of the mean backlog over the admitted candidates, the
	// request spills to the next replica in HRW order. Must be ≥ 1
	// (the least-loaded candidate is never above the bound, so a
	// qualifying replica always exists); 0 means 2.
	AffinitySpillFactor float64
	// Warm enables affinity-aware cache warming: every bounded-load
	// spill records the (key → HRW winner → spill target) triple, and
	// a background loop transfers the winner's cache entry to the
	// spill target so the overflow replica serves the hot key warm
	// instead of walking it cold. Requires Affinity (the spill signal
	// does not exist without it) and backends implementing
	// CacheTransfer (others are skipped).
	Warm bool
	// WarmInterval is the warming loop's cadence. 0 means 500ms;
	// negative disables the background loop (deterministic tests
	// drive warmOnce by hand).
	WarmInterval time.Duration
	// WarmBudgetBytes bounds how many payload bytes one warming pass
	// may install into any single replica — cache transfers ride the
	// same network and cache capacity real traffic uses, so a pass
	// must not flood a replica with state. 0 means 4 MiB.
	WarmBudgetBytes int64
}

// withDefaults fills zero fields and validates the rest.
func (c RouterConfig) withDefaults() (RouterConfig, error) {
	if len(c.Backends) == 0 {
		return c, fmt.Errorf("cluster: RouterConfig.Backends is required")
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 50 * time.Millisecond
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ProbeBackoffMax <= 0 {
		base := c.ProbeInterval
		if base < 0 {
			base = 500 * time.Millisecond
		}
		c.ProbeBackoffMax = 8 * base
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 3
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.RetryMargin <= 0 {
		c.RetryMargin = time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = len(c.Backends)
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = 64
	}
	if c.AttemptGrace <= 0 {
		c.AttemptGrace = 100 * time.Millisecond
	}
	if c.AffinitySpillFactor == 0 {
		c.AffinitySpillFactor = 2
	}
	if c.AffinitySpillFactor < 1 {
		return c, fmt.Errorf("cluster: AffinitySpillFactor %v < 1 would spill away even the least-loaded replica", c.AffinitySpillFactor)
	}
	if c.Warm && !c.Affinity {
		return c, fmt.Errorf("cluster: Warm requires Affinity (warming is fed by the bounded-load spill signal)")
	}
	if c.WarmInterval == 0 {
		c.WarmInterval = 500 * time.Millisecond
	}
	if c.WarmBudgetBytes <= 0 {
		c.WarmBudgetBytes = 4 << 20
	}
	return c, nil
}

// replica is one Backend plus the router-side state that decides
// whether and when it receives traffic.
type replica struct {
	b Backend
	// id is the stable rendezvous-hash identity (a hash of the
	// backend's target name), fixed at construction so every router
	// over the same replica set agrees on each key's HRW order.
	id uint64

	// mu guards the prober and breaker state below.
	mu           sync.Mutex
	up           bool
	probeFails   int           // consecutive probe failures
	probeOKs     int           // consecutive probe successes
	backoff      time.Duration // current probe backoff (0 = base cadence)
	lastProbeErr error
	snapSeq      int64 // sequence of the probe whose snapshot is cached

	// probeSeq numbers probe exchanges at their start, so a slow
	// probe's stale snapshot can be recognized and dropped when a
	// later probe has already published a fresher one.
	probeSeq atomic.Int64

	brState     int
	brFails     int // consecutive submit failures
	brOpenUntil time.Time
	brTrialBusy bool // a half-open trial request is in flight

	// Cached routing signals, refreshed by every successful probe.
	snap    atomic.Pointer[serve.Snapshot]
	floorNs atomic.Int64 // calibrated MinSubnet walk cost

	inflight atomic.Int64

	// Outcome counters for RouterStats.
	dispatches     atomic.Int64 // attempts dispatched to this replica
	success        atomic.Int64
	rejected       atomic.Int64
	transport      atomic.Int64
	badInput       atomic.Int64 // typed ErrBadInput refusals
	retried        atomic.Int64 // attempts on this replica that were retries
	hedged         atomic.Int64 // hedge attempts landed here
	affinityHits   atomic.Int64 // first attempts routed here as the key's HRW choice
	affinitySpills atomic.Int64 // first attempts spilled AWAY from here by the load bound
	probeFailTotal atomic.Int64
}

// storeSnap caches a fresh snapshot and the derived MinSubnet walk
// floor the retry policy prices against.
func (r *replica) storeSnap(snap serve.Snapshot) {
	r.snap.Store(&snap)
	r.floorNs.Store(int64(walkFloor(snap)))
}

// backlogScore estimates the wall-clock backlog a new request would
// queue behind on this replica: (queued + in flight from this router)
// × the replica's service-time EWMA, spread over its workers. Lower
// is better; replicas without a snapshot yet score on raw in-flight
// count so they still order sensibly.
func (r *replica) backlogScore() float64 {
	occ := float64(r.inflight.Load())
	ewma, workers := 0.05, 1.0 // pre-snapshot: order by in-flight alone
	if snap := r.snap.Load(); snap != nil {
		occ += float64(snap.QueueLen)
		if snap.ServiceEwmaMs > ewma {
			ewma = snap.ServiceEwmaMs
		}
		if snap.Workers > 1 {
			workers = float64(snap.Workers)
		}
	}
	return occ * ewma / workers
}

// affordable reports whether the remaining deadline still covers this
// replica's calibrated cheapest answer (its MinSubnet walk) plus the
// configured margin — the gate every retry and hedge must pass. A
// replica with no calibration cached yet is presumed affordable (the
// replica's own admission control is the backstop).
func (r *replica) affordable(remaining, margin time.Duration) bool {
	return remaining >= time.Duration(r.floorNs.Load())+margin
}

// brCanAllow reports (without mutating) whether the breaker would let
// a request through now. Callers hold mu.
func (r *replica) brCanAllowLocked(now time.Time) bool {
	switch r.brState {
	case brClosed:
		return true
	case brOpen:
		return !now.Before(r.brOpenUntil)
	default: // half-open: one trial at a time
		return !r.brTrialBusy
	}
}

// brAcquire claims the right to send one request through the breaker,
// transitioning open→half-open when the cooldown has elapsed. Returns
// false when the circuit is open or a half-open trial is already in
// flight.
func (r *replica) brAcquire(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.brState {
	case brClosed:
		return true
	case brOpen:
		if now.Before(r.brOpenUntil) {
			return false
		}
		r.brState = brHalfOpen
		r.brTrialBusy = true
		return true
	default:
		if r.brTrialBusy {
			return false
		}
		r.brTrialBusy = true
		return true
	}
}

// brReport folds one submit outcome into the breaker: success closes
// the circuit and clears the failure run; failure re-opens a
// half-open circuit immediately and opens a closed one once the
// consecutive-failure run reaches the threshold.
func (r *replica) brReport(ok bool, now time.Time, threshold int, cooldown time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.brTrialBusy = false
	if ok {
		r.brState = brClosed
		r.brFails = 0
		return
	}
	r.brFails++
	if r.brState == brHalfOpen || r.brFails >= threshold {
		r.brState = brOpen
		r.brOpenUntil = now.Add(cooldown)
	}
}

// latRing is a small mutex-guarded latency reservoir backing the
// per-class p99 hedge trigger.
type latRing struct {
	mu    sync.Mutex
	buf   [hedgeRingSize]time.Duration
	idx   int
	count int
}

func (lr *latRing) push(d time.Duration) {
	lr.mu.Lock()
	lr.buf[lr.idx] = d
	lr.idx = (lr.idx + 1) % len(lr.buf)
	if lr.count < len(lr.buf) {
		lr.count++
	}
	lr.mu.Unlock()
}

// p99 returns the 99th-percentile sample, or 0 while fewer than
// minSamples have been observed.
func (lr *latRing) p99(minSamples int) time.Duration {
	lr.mu.Lock()
	n := lr.count
	samples := append([]time.Duration(nil), lr.buf[:n]...)
	lr.mu.Unlock()
	if n < minSamples {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return time.Duration(serve.PercentileMs(samples, 0.99) * float64(time.Millisecond))
}

// Router spreads requests over a set of replicas — least backlog
// first, or rendezvous-hashed on the input's cache key when Affinity
// is on — keeping each replica behind a health prober and a circuit
// breaker, and re-dispatching failed or tail-slow attempts under a
// deadline-aware budget. Create with NewRouter, submit with Submit,
// stop with Close.
type Router struct {
	cfg      RouterConfig
	replicas []*replica

	// Router-level outcome counters.
	submitted       atomic.Int64
	served          atomic.Int64
	failed          atomic.Int64
	retries         atomic.Int64
	hedges          atomic.Int64
	affinityRouted  atomic.Int64 // first attempts that landed on their key's HRW choice
	affinitySpilled atomic.Int64 // first attempts diverted by the bounded-load spill

	// Warming state (RouterConfig.Warm): the spill-fed task queue and
	// the transfer outcome counters.
	warmMu        sync.Mutex
	warmQueue     []warmTask
	warmTransfers atomic.Int64 // entries installed into a spill target
	warmBytes     atomic.Int64 // payload bytes transferred
	warmFailures  atomic.Int64 // fetches or installs that errored

	rr atomic.Int64 // rotation offset for backlog ties

	classLats [hedgeClassMax]latRing

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewRouter builds a Router over the configured backends and starts
// one health-probe loop per replica (unless ProbeInterval is
// negative). Replicas start admitted — the first probe demotes dead
// ones within a probe interval, and Submit's retry path covers the
// window in between.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ro := &Router{cfg: cfg, stop: make(chan struct{})}
	for _, b := range cfg.Backends {
		ro.replicas = append(ro.replicas, &replica{b: b, id: replicaID(b.Target()), up: true})
	}
	if cfg.ProbeInterval > 0 {
		for _, r := range ro.replicas {
			ro.wg.Add(1)
			go ro.probeLoop(r)
		}
	}
	if cfg.Warm && cfg.WarmInterval > 0 {
		ro.wg.Add(1)
		go ro.warmLoop()
	}
	return ro, nil
}

// Close stops the probe loops and closes every backend. Idempotent.
func (ro *Router) Close() {
	ro.closeOnce.Do(func() {
		close(ro.stop)
	})
	ro.wg.Wait()
	for _, r := range ro.replicas {
		r.b.Close()
	}
}

// probeLoop drives one replica's health probes until Close: base
// cadence while healthy, exponential backoff while failing.
func (ro *Router) probeLoop(r *replica) {
	defer ro.wg.Done()
	t := time.NewTimer(0) // probe immediately at startup
	defer t.Stop()
	for {
		select {
		case <-ro.stop:
			return
		case <-t.C:
		}
		ro.probeOnce(r)
		r.mu.Lock()
		next := ro.cfg.ProbeInterval
		if r.backoff > 0 {
			next = r.backoff
		}
		r.mu.Unlock()
		t.Reset(next)
	}
}

// probeOnce runs one health+stats exchange against a replica and
// folds the outcome into its admission state: consecutive failures
// demote it (and stretch the probe backoff), and a demoted replica is
// re-admitted only after ReadmitAfter consecutive successes — with
// its breaker reset, since the health evidence is fresher than the
// failure run that opened it.
func (ro *Router) probeOnce(r *replica) {
	// The sequence number is drawn BEFORE the exchange: a probe that
	// started earlier carries older data no matter when it finishes,
	// so finishProbe can drop its snapshot if a later probe already
	// published.
	seq := r.probeSeq.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), ro.cfg.ProbeTimeout)
	err := r.b.Health(ctx)
	var snap serve.Snapshot
	var serr error
	if err == nil {
		snap, serr = r.b.Stats(ctx)
	}
	cancel()
	ro.finishProbe(r, seq, err, snap, serr)
}

// finishProbe folds one probe exchange's outcome into the replica's
// admission state and snapshot cache. The snapshot store happens under
// r.mu and only when no later-started probe has published yet —
// without the ordering, a slow probe finishing after a re-admission
// cycle would overwrite the fresher snapshot and walk floor with stale
// ones.
func (ro *Router) finishProbe(r *replica, seq int64, err error, snap serve.Snapshot, serr error) {
	r.mu.Lock()
	if err != nil {
		r.probeOKs = 0
		r.probeFails++
		r.probeFailTotal.Add(1)
		r.lastProbeErr = err
		if r.probeFails >= ro.cfg.DownAfter {
			r.up = false
		}
		if r.backoff == 0 {
			// Seed from the probe cadence; when background probing is
			// disabled (negative interval, tests driving probeOnce by
			// hand) fall back to the default cadence so the backoff
			// arithmetic still behaves.
			r.backoff = ro.cfg.ProbeInterval
			if r.backoff <= 0 {
				r.backoff = 500 * time.Millisecond
			}
		}
		r.backoff *= 2
		if r.backoff > ro.cfg.ProbeBackoffMax {
			r.backoff = ro.cfg.ProbeBackoffMax
		}
	} else {
		r.probeFails = 0
		r.probeOKs++
		r.lastProbeErr = nil
		r.backoff = 0
		if !r.up && r.probeOKs >= ro.cfg.ReadmitAfter {
			r.up = true
			r.brState = brClosed
			r.brFails = 0
			r.brTrialBusy = false
		}
	}
	if err == nil && serr == nil && seq > r.snapSeq {
		r.snapSeq = seq
		r.storeSnap(snap)
	}
	r.mu.Unlock()
}

// Available counts replicas currently admitted (up, breaker not
// open) — what a load generator waits on before starting, and what a
// router-mode /healthz reports.
func (ro *Router) Available() int {
	now := time.Now()
	n := 0
	for _, r := range ro.replicas {
		r.mu.Lock()
		if r.up && r.brCanAllowLocked(now) {
			n++
		}
		r.mu.Unlock()
	}
	return n
}

// pick selects an admitted, untried replica and claims its breaker
// slot. Keyless requests (and routers without Affinity) take the
// least predicted backlog, breaking ties with a rotating offset so
// equal replicas share first-attempt load; keyed requests under
// Affinity take rendezvous-hash order with the bounded-load spill
// (see orderByAffinity). Retries additionally require the remaining
// deadline to afford the candidate's calibrated MinSubnet walk.
// Returns nil when no replica qualifies.
func (ro *Router) pick(tried []*replica, isRetry bool, absDeadline time.Time, key uint64, hasKey bool) *replica {
	now := time.Now()
	remaining := absDeadline.Sub(now)
	var cands []candidate
	n := len(ro.replicas)
	// The rotation counter wraps: reduce it in uint64 space before
	// converting, because int(raw) goes negative past math.MaxInt (on
	// every wrap for 32-bit int) and a negative offset would turn
	// (offset+i)%n into a negative index.
	offset := int(uint64(ro.rr.Add(1)) % uint64(n))
	useAff := ro.cfg.Affinity && hasKey
	for i := 0; i < n; i++ {
		r := ro.replicas[(offset+i)%n]
		if contains(tried, r) {
			continue
		}
		r.mu.Lock()
		ok := r.up && r.brCanAllowLocked(now)
		r.mu.Unlock()
		if !ok {
			continue
		}
		if isRetry && !r.affordable(remaining, ro.cfg.RetryMargin) {
			continue
		}
		c := candidate{r: r, score: r.backlogScore()}
		if useAff {
			c.weight = hrwWeight(key, r.id)
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return nil
	}
	var hrwFirst *replica
	demoted := false
	if useAff {
		hrwFirst, demoted = orderByAffinity(cands, ro.cfg.AffinitySpillFactor)
	} else {
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].score < cands[j].score })
	}
	for _, c := range cands {
		if c.r.brAcquire(now) {
			if useAff && !isRetry {
				// Affinity accounting covers first attempts only —
				// retries and hedges merely PREFER warm replicas and
				// would dilute the hit/spill signal.
				switch {
				case c.r == hrwFirst:
					c.r.affinityHits.Add(1)
					ro.affinityRouted.Add(1)
				case demoted:
					hrwFirst.affinitySpills.Add(1)
					ro.affinitySpilled.Add(1)
					// The spill is the warming signal: this key's
					// traffic just overflowed its warm replica onto a
					// cold one.
					ro.noteSpill(key, hrwFirst, c.r)
				}
			}
			return c.r
		}
	}
	return nil
}

func contains(s []*replica, r *replica) bool {
	for _, x := range s {
		if x == r {
			return true
		}
	}
	return false
}

// attemptResult carries one dispatch outcome between the attempt
// goroutine and Submit.
type attemptResult struct {
	res serve.Result
	err error
	r   *replica
}

// dispatch runs one attempt against a replica, updating its breaker
// and counters. The context deadline is the request deadline plus
// AttemptGrace (see RouterConfig.AttemptGrace).
func (ro *Router) dispatch(r *replica, req serve.Request, absDeadline time.Time, isRetry, isHedge bool) attemptResult {
	r.dispatches.Add(1)
	if isRetry {
		r.retried.Add(1)
		ro.retries.Add(1)
	}
	if isHedge {
		r.hedged.Add(1)
		ro.hedges.Add(1)
	}
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	ctx, cancel := context.WithDeadline(context.Background(), absDeadline.Add(ro.cfg.AttemptGrace))
	defer cancel()
	res, err := r.b.Submit(ctx, req)
	now := time.Now()
	switch {
	case err == nil:
		r.success.Add(1)
		r.brReport(true, now, ro.cfg.BreakerThreshold, ro.cfg.BreakerCooldown)
	case errors.Is(err, serve.ErrOverloaded):
		// A typed refusal: the replica is alive and defending itself.
		// Not breaker evidence — an overloaded-but-healthy replica
		// must not be ejected, that would dogpile its peers.
		r.rejected.Add(1)
		r.brReport(true, now, ro.cfg.BreakerThreshold, ro.cfg.BreakerCooldown)
	case errors.Is(err, serve.ErrBadInput):
		// The request's own fault; says nothing about the replica —
		// but it still consumed a dispatch, so it gets its own counter
		// (per-replica outcomes must sum to dispatches).
		r.badInput.Add(1)
		r.brReport(true, now, ro.cfg.BreakerThreshold, ro.cfg.BreakerCooldown)
	default:
		// Transport failure, timeout, or a draining replica
		// (ErrClosed): all evidence this replica should stop
		// receiving work.
		r.transport.Add(1)
		r.brReport(false, now, ro.cfg.BreakerThreshold, ro.cfg.BreakerCooldown)
	}
	return attemptResult{res: res, err: err, r: r}
}

// hedgeDelay returns how long a class's first attempt may run before
// a hedge fires: the class's observed p99, or 0 (no hedging) while
// the sample base is thin.
func (ro *Router) hedgeDelay(class int) time.Duration {
	if class < 0 {
		class = 0
	}
	if class >= hedgeClassMax {
		class = hedgeClassMax - 1
	}
	return ro.classLats[class].p99(ro.cfg.HedgeMinSamples)
}

// observeLatency feeds a served request's latency into its class's
// hedge-trigger ring.
func (ro *Router) observeLatency(class int, d time.Duration) {
	if class < 0 {
		class = 0
	}
	if class >= hedgeClassMax {
		class = hedgeClassMax - 1
	}
	ro.classLats[class].push(d)
}

// Submit routes one request through the cluster and blocks until an
// answer or a typed error: it picks a replica (rendezvous-hashed on
// the input's cache key under Affinity, least-backlogged otherwise),
// optionally hedges a tail-slow first attempt, and retries failed
// attempts on different replicas while the remaining deadline still
// affords their calibrated minimum walk. Every call resolves to
// exactly one outcome; errors pass through typed
// (serve.ErrOverloaded, serve.ErrBadInput, ErrTransport-wrapped
// failures) or ErrNoReplicas when nothing could take the request.
func (ro *Router) Submit(req serve.Request) (serve.Result, error) {
	ro.submitted.Add(1)
	d := req.Deadline
	if d <= 0 {
		d = ro.cfg.DefaultDeadline
		req.Deadline = d
	}
	start := time.Now()
	absDeadline := start.Add(d)

	// The affinity key is computed once per request, not per attempt:
	// retries and hedges keep preferring the same HRW order, so a
	// resumed rung is still likely warm wherever the request ends up.
	var key uint64
	hasKey := false
	if ro.cfg.Affinity && len(req.Input) > 0 {
		key = uint64(cache.KeyOf(req.Input))
		hasKey = true
	}

	var (
		tried   []*replica
		lastErr error
	)
	attempts := 0
	for attempts < ro.cfg.MaxAttempts {
		r := ro.pick(tried, attempts > 0, absDeadline, key, hasKey)
		if r == nil {
			break
		}
		tried = append(tried, r)
		first := attempts == 0
		attempts++

		var out attemptResult
		if first && ro.cfg.Hedge {
			var hedgedAttempt bool
			out, hedgedAttempt = ro.dispatchHedged(r, req, absDeadline, &tried, key, hasKey)
			if hedgedAttempt {
				attempts++
			}
		} else {
			out = ro.dispatch(r, req, absDeadline, !first, false)
		}

		switch {
		case out.err == nil:
			ro.served.Add(1)
			ro.observeLatency(req.Priority, time.Since(start))
			return out.res, nil
		case errors.Is(out.err, serve.ErrBadInput):
			ro.failed.Add(1)
			return serve.Result{}, out.err
		default:
			lastErr = out.err
		}
	}
	ro.failed.Add(1)
	if lastErr != nil {
		return serve.Result{}, lastErr
	}
	return serve.Result{}, fmt.Errorf("%w: %d replicas configured, deadline %v",
		ErrNoReplicas, len(ro.replicas), d)
}

// dispatchHedged races a first attempt against a tail hedge: the
// primary runs immediately; if it is still in flight when the class's
// p99 elapses, a second attempt starts on another (affordable,
// untried) replica and the first answer to arrive wins — a slow
// primary's eventual answer is discarded, not duplicated. Reports
// whether a hedge was actually launched (the hedged replica is
// appended to tried either way it resolves).
func (ro *Router) dispatchHedged(r *replica, req serve.Request, absDeadline time.Time, tried *[]*replica, key uint64, hasKey bool) (attemptResult, bool) {
	delay := ro.hedgeDelay(req.Priority)
	primary := make(chan attemptResult, 1)
	go func() { primary <- ro.dispatch(r, req, absDeadline, false, false) }()
	if delay <= 0 {
		return <-primary, false
	}
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case out := <-primary:
		return out, false
	case <-timer.C:
	}
	h := ro.pick(*tried, true, absDeadline, key, hasKey)
	if h == nil {
		return <-primary, false
	}
	*tried = append(*tried, h)
	secondary := make(chan attemptResult, 1)
	go func() { secondary <- ro.dispatch(h, req, absDeadline, false, true) }()

	// First success wins; a failure waits for the other leg. Both
	// channels are buffered, so the losing goroutine never blocks and
	// its breaker/counter bookkeeping always completes. When both legs
	// fail, the FIRST failure is the one surfaced: it is the cause —
	// the leg that failed later typically failed because the request's
	// budget was already gone.
	select {
	case out := <-primary:
		if out.err == nil {
			return out, true
		}
		if second := <-secondary; second.err == nil {
			return second, true
		}
		return out, true
	case out := <-secondary:
		if out.err == nil {
			return out, true
		}
		if first := <-primary; first.err == nil {
			return first, true
		}
		return out, true
	}
}

// ReplicaStats is one replica's slice of RouterStats.
type ReplicaStats struct {
	// Target names the replica.
	Target string `json:"target"`
	// Up reports the health prober's current admission verdict.
	Up bool `json:"up"`
	// Breaker is the circuit state: "closed", "open" or "half-open".
	Breaker string `json:"breaker"`
	// Dispatches counts attempts dispatched to this replica (first
	// tries, retries and hedges). Success + Rejected +
	// TransportErrors + BadInputs always sums to it.
	Dispatches int64 `json:"dispatches"`
	// Success counts answered dispatches to this replica.
	Success int64 `json:"success"`
	// Rejected counts typed overload refusals from this replica.
	Rejected int64 `json:"rejected"`
	// TransportErrors counts failed exchanges (timeouts, refused or
	// torn connections, draining replies).
	TransportErrors int64 `json:"transport_errors"`
	// BadInputs counts typed ErrBadInput refusals — the request's own
	// fault, not the replica's, but still a consumed dispatch.
	BadInputs int64 `json:"bad_input"`
	// Retried counts dispatches to this replica that were retries of
	// an attempt failed elsewhere.
	Retried int64 `json:"retried"`
	// Hedged counts hedge attempts landed on this replica.
	Hedged int64 `json:"hedged"`
	// AffinityHits counts first attempts routed to this replica
	// because it was the request key's rendezvous-hash choice (0 when
	// affinity routing is off).
	AffinityHits int64 `json:"affinity_hits"`
	// AffinitySpills counts first attempts whose rendezvous choice was
	// this replica but that the bounded-load spill diverted elsewhere.
	AffinitySpills int64 `json:"affinity_spills"`
	// ProbeFails counts health-probe failures since startup.
	ProbeFails int64 `json:"probe_fails"`
	// InFlight gauges this router's dispatches currently running on
	// the replica.
	InFlight int64 `json:"in_flight"`
	// QueueLen is the replica's admission-queue occupancy at its last
	// successful probe.
	QueueLen int `json:"queue_len"`
	// ServiceEwmaMs is the replica's smoothed per-request service
	// time at its last successful probe.
	ServiceEwmaMs float64 `json:"service_ewma_ms"`
	// WalkFloorMs is the replica's calibrated MinSubnet walk cost —
	// the retry-affordability floor — in milliseconds.
	WalkFloorMs float64 `json:"walk_floor_ms"`
	// SLOViolations is the replica's cumulative SLO-violation tick
	// count at its last successful probe (0 when the replica runs no
	// overload governor).
	SLOViolations int64 `json:"slo_violations"`
	// BrownoutTransitions is the replica's cumulative brownout ladder
	// move count at its last successful probe.
	BrownoutTransitions int64 `json:"brownout_transitions"`
	// BrownoutLevel is the replica's deepest per-class brownout depth
	// at its last successful probe — the at-a-glance "this replica is
	// browning out" signal for router operators (0 = neutral).
	BrownoutLevel int `json:"brownout_level"`
	// CacheHits is the replica's cumulative semantic-cache full hits
	// at its last successful probe (0 when the cache is off).
	CacheHits int64 `json:"cache_hits"`
	// CacheResumes is the replica's cumulative cache-seeded resumed
	// walks at its last successful probe.
	CacheResumes int64 `json:"cache_resumes"`
	// CacheWarmed is the replica's cumulative count of cache entries
	// installed by cross-replica warming transfers, at its last
	// successful probe.
	CacheWarmed int64 `json:"cache_warmed"`
	// EarlyExits is the replica's cumulative confidence early exits
	// at its last successful probe.
	EarlyExits int64 `json:"early_exits"`
	// LastProbeError is the most recent probe failure ("" when the
	// last probe succeeded).
	LastProbeError string `json:"last_probe_error,omitempty"`
}

// RouterStats is a point-in-time snapshot of the router's outcome
// counters and per-replica states (the /stats payload in router
// mode).
type RouterStats struct {
	// Submitted counts Submit calls.
	Submitted int64 `json:"submitted"`
	// Served counts Submits answered successfully.
	Served int64 `json:"served"`
	// Failed counts Submits that returned an error.
	Failed int64 `json:"failed"`
	// Retries counts re-dispatches after a failed attempt.
	Retries int64 `json:"retries"`
	// Hedges counts tail-hedge attempts launched.
	Hedges int64 `json:"hedges"`
	// AffinityRouted counts first attempts that landed on their key's
	// rendezvous-hash choice (0 unless Affinity is on).
	AffinityRouted int64 `json:"affinity_routed"`
	// AffinitySpilled counts first attempts the bounded-load spill
	// diverted away from their rendezvous choice.
	AffinitySpilled int64 `json:"affinity_spilled"`
	// WarmTransfers counts cache entries the warming loop installed
	// into spill targets (0 unless Warm is on).
	WarmTransfers int64 `json:"warm_transfers"`
	// WarmBytes counts payload bytes moved by warming transfers.
	WarmBytes int64 `json:"warm_bytes"`
	// WarmFailures counts warming fetches or installs that errored
	// (a missing source entry is a drop, not a failure).
	WarmFailures int64 `json:"warm_failures"`
	// Available counts replicas currently admitted.
	Available int `json:"available"`
	// Replicas breaks the counters down per replica.
	Replicas []ReplicaStats `json:"replicas"`
}

// Stats snapshots the router's counters and per-replica states.
func (ro *Router) Stats() RouterStats {
	st := RouterStats{
		Submitted:       ro.submitted.Load(),
		Served:          ro.served.Load(),
		Failed:          ro.failed.Load(),
		Retries:         ro.retries.Load(),
		Hedges:          ro.hedges.Load(),
		AffinityRouted:  ro.affinityRouted.Load(),
		AffinitySpilled: ro.affinitySpilled.Load(),
		WarmTransfers:   ro.warmTransfers.Load(),
		WarmBytes:       ro.warmBytes.Load(),
		WarmFailures:    ro.warmFailures.Load(),
	}
	now := time.Now()
	for _, r := range ro.replicas {
		r.mu.Lock()
		rs := ReplicaStats{
			Target: r.b.Target(),
			Up:     r.up,
			Breaker: map[int]string{
				brClosed: "closed", brOpen: "open", brHalfOpen: "half-open",
			}[r.brState],
			ProbeFails: r.probeFailTotal.Load(),
		}
		if r.up && r.brCanAllowLocked(now) {
			st.Available++
		}
		if r.lastProbeErr != nil {
			rs.LastProbeError = r.lastProbeErr.Error()
		}
		r.mu.Unlock()
		rs.Dispatches = r.dispatches.Load()
		rs.Success = r.success.Load()
		rs.Rejected = r.rejected.Load()
		rs.TransportErrors = r.transport.Load()
		rs.BadInputs = r.badInput.Load()
		rs.Retried = r.retried.Load()
		rs.Hedged = r.hedged.Load()
		rs.AffinityHits = r.affinityHits.Load()
		rs.AffinitySpills = r.affinitySpills.Load()
		rs.InFlight = r.inflight.Load()
		rs.WalkFloorMs = float64(r.floorNs.Load()) / float64(time.Millisecond)
		if snap := r.snap.Load(); snap != nil {
			rs.QueueLen = snap.QueueLen
			rs.ServiceEwmaMs = snap.ServiceEwmaMs
			rs.SLOViolations = snap.SLOViolations
			rs.BrownoutTransitions = snap.BrownoutTransitions
			rs.CacheHits = snap.CacheHits
			rs.CacheResumes = snap.CacheResumes
			rs.CacheWarmed = snap.CacheWarmed
			rs.EarlyExits = snap.EarlyExits
			if snap.Policy != nil {
				rs.BrownoutLevel = snap.Policy.MaxLevel
			}
		}
		st.Replicas = append(st.Replicas, rs)
	}
	return st
}
