package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"steppingnet/internal/cluster"
	"steppingnet/internal/serve"
)

// fakeReplica is an httptest stand-in for a stepserve replica: it
// speaks the same three endpoints with the shared wire types, and the
// test flips its mode to exercise every status the Remote client must
// map back to a typed error.
type fakeReplica struct {
	mode string // "ok", "overloaded", "draining", "badinput", "boom", "garbage", "slow"
}

func (f *fakeReplica) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /infer", func(w http.ResponseWriter, r *http.Request) {
		var req cluster.InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch f.mode {
		case "overloaded":
			http.Error(w, serve.ErrOverloaded.Error(), http.StatusServiceUnavailable)
		case "draining":
			http.Error(w, "draining: "+serve.ErrClosed.Error(), http.StatusServiceUnavailable)
		case "badinput":
			http.Error(w, serve.ErrBadInput.Error(), http.StatusBadRequest)
		case "boom":
			http.Error(w, "internal", http.StatusInternalServerError)
		case "garbage":
			w.Write([]byte("{not json")) //nolint:errcheck — test fixture
		case "slow":
			time.Sleep(200 * time.Millisecond)
			w.WriteHeader(http.StatusOK)
			json.NewEncoder(w).Encode(cluster.InferResponse{}) //nolint:errcheck — test fixture
		default:
			json.NewEncoder(w).Encode(cluster.WireResponse(serve.Result{ //nolint:errcheck — test fixture
				Subnet: 2, Pred: 1, Logits: []float64{0, 1}, MACs: 42,
				Priority: req.Priority, DeadlineMet: true,
				QueueWait: time.Millisecond, Latency: 2 * time.Millisecond,
			}))
		}
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serve.Snapshot{ //nolint:errcheck — test fixture
			Served: 7, MinSubnet: 2, StepTimeMs: []float64{1, 2, 3},
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.mode == "draining" {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok")) //nolint:errcheck — test fixture
	})
	return mux
}

// TestRemoteBackend pins the HTTP client's error taxonomy: every
// replica status maps to the same typed error the in-process backend
// would return, so the router's retry/breaker logic is
// transport-blind.
func TestRemoteBackend(t *testing.T) {
	f := &fakeReplica{mode: "ok"}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()
	b := cluster.NewRemote(ts.URL + "/") // trailing slash tolerated
	defer b.Close()
	ctx := t.Context()

	req := serve.Request{Input: []float64{1, 2}, Deadline: 50 * time.Millisecond, Priority: 1}
	res, err := b.Submit(ctx, req)
	if err != nil {
		t.Fatalf("ok submit: %v", err)
	}
	if res.Subnet != 2 || res.Pred != 1 || res.MACs != 42 || !res.DeadlineMet ||
		res.Priority != 1 || res.QueueWait != time.Millisecond || res.Latency != 2*time.Millisecond {
		t.Fatalf("round-tripped result mangled: %+v", res)
	}

	snap, err := b.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if snap.Served != 7 || snap.MinSubnet != 2 || len(snap.StepTimeMs) != 3 {
		t.Fatalf("round-tripped snapshot mangled: %+v", snap)
	}
	if err := b.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	cases := []struct {
		mode string
		want error
	}{
		{"overloaded", serve.ErrOverloaded},
		{"draining", serve.ErrClosed},
		{"badinput", serve.ErrBadInput},
		{"boom", cluster.ErrTransport},
		{"garbage", cluster.ErrTransport},
	}
	for _, tc := range cases {
		f.mode = tc.mode
		if _, err := b.Submit(ctx, req); !errors.Is(err, tc.want) {
			t.Fatalf("mode %q: got %v, want %v", tc.mode, err, tc.want)
		}
	}

	f.mode = "draining"
	if err := b.Health(ctx); err == nil {
		t.Fatal("draining replica's /healthz 503 must probe unhealthy")
	}

	// A slow replica against a short context deadline is a transport
	// failure — the seam the router's AttemptGrace budget leans on.
	f.mode = "slow"
	sctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := b.Submit(sctx, req); !errors.Is(err, cluster.ErrTransport) {
		t.Fatalf("timed-out submit: got %v, want ErrTransport", err)
	}

	// A dead target: connection refused is a transport failure too.
	ts.Close()
	if _, err := b.Submit(ctx, req); !errors.Is(err, cluster.ErrTransport) {
		t.Fatalf("dead target: got %v, want ErrTransport", err)
	}
	if err := b.Health(ctx); !errors.Is(err, cluster.ErrTransport) {
		t.Fatalf("dead target health: got %v, want ErrTransport", err)
	}
}
