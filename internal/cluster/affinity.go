package cluster

import "sort"

// Cache-affinity routing: rendezvous (highest-random-weight) hashing
// over the admitted replicas, keyed on cache.KeyOf of the request
// input. Each (key, replica) pair hashes to a weight and the request
// prefers replicas in descending weight order, which gives the two
// properties the per-replica semantic cache needs:
//
//   - stability: a key's order depends only on the key and the
//     replica identities, so repeats of an input keep landing on the
//     same replica — the one whose cache already holds the walk —
//     across routers and across restarts;
//   - minimal disruption: ejecting a replica reshuffles only the keys
//     that ranked it first (they fall to their second choice); every
//     other key's winner is untouched, and re-admission restores the
//     original mapping exactly.
//
// Pure HRW would let one hot key drown its winner while peers idle,
// so the ordering is load-bounded: candidates whose backlog score
// exceeds AffinitySpillFactor × the candidate mean are demoted behind
// the rest, preserving HRW order within both groups. The factor is ≥1
// and the least-loaded candidate never exceeds the mean, so a
// qualifying replica always remains in front.

// candidate is one admitted replica under consideration by pick, with
// its backlog score and (under affinity) its rendezvous weight.
type candidate struct {
	r      *replica
	score  float64
	weight uint64
}

// replicaID hashes a backend's target name to its stable rendezvous
// identity (FNV-1a 64). Depending only on the target string, every
// router instance over the same replica set derives the same HRW
// order for a key.
func replicaID(target string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(target); i++ {
		h ^= uint64(target[i])
		h *= fnvPrime64
	}
	return h
}

// fnvOffset64 and fnvPrime64 are the standard FNV-1a 64-bit
// parameters (mirroring internal/serve/cache, which pins KeyOf to the
// same construction).
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// hrwWeight is the rendezvous weight of (key, replica id): a
// splitmix64 finalizer over their XOR. The finalizer's avalanche
// makes the per-replica weights of one key effectively independent,
// which is what gives HRW its even key spread and minimal-disruption
// property.
func hrwWeight(key, id uint64) uint64 {
	x := key ^ id
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// orderByAffinity reorders cands in place into rendezvous order with
// the bounded-load spill applied: descending HRW weight, with
// candidates whose backlog score exceeds spillFactor × the candidate
// mean demoted behind the rest (HRW order preserved within both
// groups). Returns the HRW-first replica — the key's affinity choice
// before any load consideration — and whether the spill demoted it.
// cands must be non-empty; spillFactor is ≥ 1 by config validation.
func orderByAffinity(cands []candidate, spillFactor float64) (hrwFirst *replica, demoted bool) {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].weight > cands[j].weight })
	hrwFirst = cands[0].r
	if len(cands) < 2 {
		return hrwFirst, false
	}
	var sum float64
	for _, c := range cands {
		sum += c.score
	}
	limit := spillFactor * sum / float64(len(cands))
	over := make([]candidate, 0, len(cands))
	keep := cands[:0]
	for _, c := range cands {
		if c.score > limit {
			over = append(over, c)
		} else {
			keep = append(keep, c)
		}
	}
	if len(over) == 0 {
		return hrwFirst, false
	}
	demoted = over[0].r == hrwFirst
	copy(cands[len(keep):], over)
	return hrwFirst, demoted
}
