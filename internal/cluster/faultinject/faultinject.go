// Package faultinject wraps any cluster.Backend in a deterministic
// fault schedule so the chaos tests can kill, wedge, slow, corrupt
// and partition replicas on purpose — and on a seed, so a failing
// run replays exactly. Faults are either scheduled (time windows
// measured from Wrap, generated reproducibly by Random) or armed
// explicitly mid-test with Inject; the wrapped backend's behavior
// outside active windows is untouched, so an Injector with no faults
// is a transparent pass-through.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"steppingnet/internal/cluster"
	"steppingnet/internal/serve"
)

// ErrInjected marks a failure manufactured by this package; every
// injected error wraps both it and cluster.ErrTransport, so the
// router classifies injected faults exactly like real transport
// failures while tests can still tell them apart.
var ErrInjected = errors.New("faultinject: injected fault")

// Kind enumerates the failure modes an Injector can impose.
type Kind int

const (
	// Crash makes the replica permanently dead from the moment its
	// window opens: every Submit, Stats and Health fails, forever
	// (For is ignored). Models a process that died and will not come
	// back.
	Crash Kind = iota
	// Hang blocks every call until its context expires — the
	// wedged-process case that distinguishes a health prober with
	// timeouts from one without.
	Hang
	// Slow delays every call by Delay before passing it through
	// (bounded by the call's context). Models an overloaded host or
	// degraded link; the call still succeeds if the caller's deadline
	// survives the delay.
	Slow
	// ErrorBurst fails Submit and Stats while leaving Health passing —
	// the nastiest mode for a router, because the probe loop sees a
	// healthy replica while every real request thrown at it dies.
	// Only the circuit breaker catches this one.
	ErrorBurst
	// Partition fails everything (Submit, Stats, Health) for the
	// window's duration, then heals — a network partition with
	// recovery, unlike Crash.
	Partition
)

// String names the kind for logs and test failure messages.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	case Slow:
		return "slow"
	case ErrorBurst:
		return "error-burst"
	case Partition:
		return "partition"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scheduled failure window.
type Fault struct {
	// Kind is the failure mode.
	Kind Kind
	// After is when the window opens, measured from the Injector's
	// creation (or from Inject time for faults armed mid-test).
	After time.Duration
	// For is the window length; 0 means open-ended. Crash ignores it
	// (a crash is permanent by definition).
	For time.Duration
	// Delay is the per-call added latency for Slow faults.
	Delay time.Duration
}

// activeAt reports whether the fault applies at elapsed time e.
func (f Fault) activeAt(e time.Duration) bool {
	if e < f.After {
		return false
	}
	if f.Kind == Crash {
		return true
	}
	return f.For <= 0 || e < f.After+f.For
}

// Injector wraps a Backend and imposes the armed faults on every
// call. Create with Wrap; it implements cluster.Backend and is safe
// for concurrent use.
type Injector struct {
	b     cluster.Backend
	start time.Time

	mu     sync.Mutex
	faults []Fault

	injected atomic.Int64
}

// Wrap builds an Injector over b with an initial schedule (possibly
// empty). Window offsets are measured from this call.
func Wrap(b cluster.Backend, faults ...Fault) *Injector {
	return &Injector{b: b, start: time.Now(), faults: append([]Fault(nil), faults...)}
}

// Inject arms one more fault mid-test. The fault's After is
// re-anchored to now, so Inject(Fault{Kind: Crash}) kills the replica
// immediately.
func (in *Injector) Inject(f Fault) {
	in.mu.Lock()
	f.After += time.Since(in.start)
	in.faults = append(in.faults, f)
	in.mu.Unlock()
}

// Clear drops every armed fault, healing the replica (except that a
// past Crash stays cleared too — Clear models operator intervention,
// it is the one way to resurrect).
func (in *Injector) Clear() {
	in.mu.Lock()
	in.faults = nil
	in.mu.Unlock()
}

// Injected counts the calls this injector has failed or delayed —
// how tests assert a schedule actually fired.
func (in *Injector) Injected() int64 { return in.injected.Load() }

// active returns the fault governing this instant, preferring the
// harshest (Crash > Partition > Hang > ErrorBurst > Slow) when
// windows overlap.
func (in *Injector) active() (Fault, bool) {
	e := time.Since(in.start)
	in.mu.Lock()
	defer in.mu.Unlock()
	best, found := Fault{}, false
	for _, f := range in.faults {
		if !f.activeAt(e) {
			continue
		}
		if !found || severity(f.Kind) > severity(best.Kind) {
			best, found = f, true
		}
	}
	return best, found
}

func severity(k Kind) int {
	switch k {
	case Crash:
		return 5
	case Partition:
		return 4
	case Hang:
		return 3
	case ErrorBurst:
		return 2
	default:
		return 1
	}
}

// fail manufactures the typed error for an injected fault.
func (in *Injector) fail(f Fault, op string) error {
	in.injected.Add(1)
	return fmt.Errorf("%w: %w: %s during %s on %s",
		cluster.ErrTransport, ErrInjected, f.Kind, op, in.b.Target())
}

// hang blocks until the context gives up, then reports the usual
// transport-shaped failure.
func (in *Injector) hang(ctx context.Context, f Fault, op string) error {
	in.injected.Add(1)
	<-ctx.Done()
	return fmt.Errorf("%w: %w: %s during %s on %s: %v",
		cluster.ErrTransport, ErrInjected, f.Kind, op, in.b.Target(), ctx.Err())
}

// slow sleeps the fault's delay (bounded by ctx); it reports whether
// the context survived.
func (in *Injector) slow(ctx context.Context, f Fault) error {
	in.injected.Add(1)
	t := time.NewTimer(f.Delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: %w: slow call abandoned on %s: %v",
			cluster.ErrTransport, ErrInjected, in.b.Target(), ctx.Err())
	}
}

// gate applies the active fault to one call; a nil return means the
// call should pass through to the wrapped backend. healthOp marks
// Health probes, which ErrorBurst deliberately lets through.
func (in *Injector) gate(ctx context.Context, op string, healthOp bool) error {
	f, ok := in.active()
	if !ok {
		return nil
	}
	switch f.Kind {
	case Crash, Partition:
		return in.fail(f, op)
	case Hang:
		return in.hang(ctx, f, op)
	case ErrorBurst:
		if healthOp {
			return nil
		}
		return in.fail(f, op)
	case Slow:
		return in.slow(ctx, f)
	default:
		return nil
	}
}

// Submit implements cluster.Backend.
func (in *Injector) Submit(ctx context.Context, req serve.Request) (serve.Result, error) {
	if err := in.gate(ctx, "submit", false); err != nil {
		return serve.Result{}, err
	}
	return in.b.Submit(ctx, req)
}

// Stats implements cluster.Backend.
func (in *Injector) Stats(ctx context.Context) (serve.Snapshot, error) {
	if err := in.gate(ctx, "stats", false); err != nil {
		return serve.Snapshot{}, err
	}
	return in.b.Stats(ctx)
}

// Health implements cluster.Backend.
func (in *Injector) Health(ctx context.Context) error {
	if err := in.gate(ctx, "health", true); err != nil {
		return err
	}
	return in.b.Health(ctx)
}

// Target implements cluster.Backend.
func (in *Injector) Target() string { return in.b.Target() }

// Close implements cluster.Backend, always passing through — tests
// must be able to tear down even a crashed replica.
func (in *Injector) Close() { in.b.Close() }

// Random generates a reproducible schedule of n faults within the
// horizon from the given seed — same seed, same schedule, so a chaos
// run that trips an invariant replays exactly. Crash is excluded
// (permanent death would trivially end a schedule's interest);
// explicit tests arm crashes on purpose.
func Random(seed int64, horizon time.Duration, n int) []Fault {
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{Hang, Slow, ErrorBurst, Partition}
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		f := Fault{
			Kind:  kinds[rng.Intn(len(kinds))],
			After: time.Duration(rng.Int63n(int64(horizon))),
			For:   time.Duration(rng.Int63n(int64(horizon / 4))),
		}
		if f.Kind == Slow {
			f.Delay = time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
		}
		faults = append(faults, f)
	}
	return faults
}
