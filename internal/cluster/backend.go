// Package cluster takes the anytime serving layer multi-process: it
// is the robustness tier between callers and N stepserve replicas.
// The dispatch seam is the transport-agnostic Backend interface —
// implemented by Local (an in-process serve.Server) and Remote (an
// HTTP replica) — so one code path serves both, and everything above
// it composes: a Router spreads requests least-backlog-first over the
// replicas' exported Snapshot EWMAs, actively health-checks each one
// (/healthz probe loop with exponential backoff, re-admission only
// after consecutive successes), wraps each in a circuit breaker
// (closed → open on consecutive failures → half-open probes), and
// retries or hedges a failed attempt on a different replica only when
// the remaining deadline still affords that replica's calibrated
// MinSubnet walk — a guaranteed-late retry would only steal capacity,
// exactly the reasoning serve's admission controller applies inside
// one process. The sibling faultinject package wraps any Backend in a
// deterministic, seeded fault schedule (crash, hang, slow,
// error-burst, partition) so the chaos tests can prove the tier's
// invariants: every submitted request resolves to exactly one answer
// or one typed error, replica death leaks nothing, and killing one of
// three replicas under overload keeps the high-priority class inside
// its deadline budget.
package cluster

import (
	"context"
	"errors"
	"time"

	"steppingnet/internal/governor"
	"steppingnet/internal/serve"
)

// ErrTransport wraps every failure to reach or finish an exchange
// with a replica — connection refused, request timeout, torn
// connection, malformed response. It is the retriable class of error:
// the request may never have been executed, and a different replica
// may well succeed. (Contrast serve.ErrOverloaded, which is a healthy
// replica's typed refusal, retriable elsewhere but not a health
// signal, and serve.ErrBadInput, which no retry can fix.)
var ErrTransport = errors.New("cluster: transport error")

// ErrNoReplicas is returned by Router.Submit when no replica can take
// (or re-take) the request: none configured, all down or
// circuit-open, or — on a retry — none whose calibrated MinSubnet
// walk still fits in the remaining deadline.
var ErrNoReplicas = errors.New("cluster: no replica available")

// Backend is one anytime-serving replica as the router sees it: the
// transport-agnostic seam that makes an in-process serve.Server and a
// remote HTTP replica the same code path. Implementations must be
// safe for concurrent use; Submit may be called from many goroutines
// at once.
type Backend interface {
	// Submit runs one request to completion on this replica. The
	// context bounds the exchange (remote transports honor its
	// deadline; in-process backends rely on the server's own deadline
	// scheduling, which answers within the request deadline by
	// construction). Errors are typed: serve.ErrOverloaded and
	// serve.ErrClosed pass through wrapped, transport-level failures
	// wrap ErrTransport.
	Submit(ctx context.Context, req serve.Request) (serve.Result, error)
	// Stats returns the replica's serving snapshot — the queue
	// gauges, service-time EWMA and calibration constants the router
	// routes and retries on.
	Stats(ctx context.Context) (serve.Snapshot, error)
	// Health is the liveness/readiness probe: nil means the replica
	// is accepting work (a draining or still-calibrating replica
	// reports an error even though its process is alive).
	Health(ctx context.Context) error
	// Target names the replica for stats, logs and error messages
	// (an address for remote replicas, a label for local ones).
	Target() string
	// Close releases client-side resources (idle connections, local
	// server goroutines). The Router closes its backends on Close.
	Close()
}

// Local adapts an in-process serve.Server to the Backend seam — the
// degenerate one-replica cluster, and the building block the chaos
// tests compose with faultinject to simulate whole processes dying.
type Local struct {
	// Srv is the wrapped server. The Local owns it: Close closes it.
	Srv *serve.Server
	// Name labels this replica in router stats and errors.
	Name string
}

// Submit implements Backend by calling straight into the server. The
// context is consulted only on entry (the in-process server bounds
// its own work by the request deadline; there is no transport to
// cancel mid-flight).
func (l *Local) Submit(ctx context.Context, req serve.Request) (serve.Result, error) {
	if err := ctx.Err(); err != nil {
		return serve.Result{}, ctxTransportErr(err)
	}
	return l.Srv.Submit(req)
}

// Stats implements Backend.
func (l *Local) Stats(ctx context.Context) (serve.Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return serve.Snapshot{}, ctxTransportErr(err)
	}
	return l.Srv.Stats(), nil
}

// Health implements Backend: an open in-process server is healthy, a
// closing or closed one reports serve.ErrClosed — mirroring the 503 a
// draining HTTP replica returns from /healthz.
func (l *Local) Health(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return ctxTransportErr(err)
	}
	if !l.Srv.Healthy() {
		return serve.ErrClosed
	}
	return nil
}

// Target implements Backend.
func (l *Local) Target() string {
	if l.Name != "" {
		return l.Name
	}
	return "local"
}

// Close implements Backend by closing the wrapped server (draining
// admitted work and releasing its engines).
func (l *Local) Close() { l.Srv.Close() }

// ctxTransportErr wraps a context cancellation/timeout as the
// retriable transport class.
func ctxTransportErr(err error) error {
	return errors.Join(ErrTransport, err)
}

// walkFloor computes the cheapest answer a replica can produce — the
// calibrated wall-clock cost of walking to its configured MinSubnet —
// from its exported snapshot, reusing governor.LatencyModel.WalkTime
// so router-side affordability math and server-side scheduling math
// cannot drift apart. Returns 0 (always affordable) when the snapshot
// carries no calibration yet.
func walkFloor(snap serve.Snapshot) time.Duration {
	if len(snap.StepTimeMs) == 0 {
		return 0
	}
	lm := governor.LatencyModel{StepTime: make([]time.Duration, len(snap.StepTimeMs))}
	for i, msv := range snap.StepTimeMs {
		lm.StepTime[i] = time.Duration(msv * float64(time.Millisecond))
	}
	min := snap.MinSubnet
	if min < 1 {
		min = 1
	}
	if min > len(lm.StepTime) {
		min = len(lm.StepTime)
	}
	return lm.WalkTime(min)
}
