package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"steppingnet/internal/serve/cache"
)

// ErrNoEntry is returned by FetchCacheEntry when the replica's cache
// holds nothing for the key — the entry was evicted, expired, or
// invalidated between the spill and the warming pass. Not a fault:
// the warmer just drops the task.
var ErrNoEntry = errors.New("cluster: no cache entry for key")

// CacheTransfer is the optional Backend capability behind
// affinity-aware cache warming: reading one semantic-cache entry off a
// replica and installing one into it. Local and Remote both implement
// it; the router type-asserts at warming time, so a Backend without
// the capability (a test fake, an older replica) simply never warms.
type CacheTransfer interface {
	// FetchCacheEntry reads the replica's cache entry for key, or
	// ErrNoEntry if it holds none.
	FetchCacheEntry(ctx context.Context, key cache.Key) (CacheEntryWire, error)
	// InstallCacheEntry offers a transferred entry to the replica's
	// cache; the replica applies its normal admission rules
	// (widest-rung-wins, LRU bounds), so an install is best-effort.
	InstallCacheEntry(ctx context.Context, w CacheEntryWire) error
}

// FetchCacheEntry implements CacheTransfer for an in-process replica.
// The entry round-trips through the wire form even locally, so local
// and remote warming exercise identical validation and the installed
// entry never aliases the source replica's tensors.
func (l *Local) FetchCacheEntry(_ context.Context, key cache.Key) (CacheEntryWire, error) {
	ent, ok := l.Srv.CachePeek(key)
	if !ok {
		return CacheEntryWire{}, ErrNoEntry
	}
	return WireCacheEntry(key, ent)
}

// InstallCacheEntry implements CacheTransfer for an in-process
// replica, decoding through the same validation path a remote install
// takes.
func (l *Local) InstallCacheEntry(_ context.Context, w CacheEntryWire) error {
	k, ent, err := w.Entry()
	if err != nil {
		return err
	}
	l.Srv.WarmInstall(k, ent)
	return nil
}

// FetchCacheEntry implements CacheTransfer over HTTP: GET
// /cache/entry?key=<hex>, mapping the replica's documented 404 to
// ErrNoEntry and everything transport-shaped to ErrTransport.
func (r *Remote) FetchCacheEntry(ctx context.Context, key cache.Key) (CacheEntryWire, error) {
	var w CacheEntryWire
	u := r.target + "/cache/entry?key=" + url.QueryEscape(FormatKey(key))
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return w, fmt.Errorf("%w: %v", ErrTransport, err)
	}
	resp, err := r.client.Do(hreq)
	if err != nil {
		return w, fmt.Errorf("%w: %s: %v", ErrTransport, r.target, err)
	}
	defer drain(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.NewDecoder(io.LimitReader(resp.Body, remoteMaxResp)).Decode(&w); err != nil {
			return CacheEntryWire{}, fmt.Errorf("%w: %s: bad entry body: %v", ErrTransport, r.target, err)
		}
		return w, nil
	case http.StatusNotFound:
		return w, fmt.Errorf("%w: %s", ErrNoEntry, r.target)
	default:
		return w, fmt.Errorf("%w: %s: /cache/entry status %d: %s",
			ErrTransport, r.target, resp.StatusCode, readErr(resp.Body))
	}
}

// InstallCacheEntry implements CacheTransfer over HTTP: POST
// /cache/entry with the wire entry as the body. A 400 means the
// replica rejected the payload (malformed key or state) — returned
// verbatim so the warmer counts it as a failure, not a retry.
func (r *Remote) InstallCacheEntry(ctx context.Context, w CacheEntryWire) error {
	body, err := json.Marshal(w)
	if err != nil {
		return fmt.Errorf("cluster: marshal cache entry: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.target+"/cache/entry", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrTransport, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(hreq)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrTransport, r.target, err)
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: %s: /cache/entry install status %d: %s",
			ErrTransport, r.target, resp.StatusCode, readErr(resp.Body))
	}
	return nil
}

// warmQueueMax bounds the spill-fed warming queue: a handful of
// genuinely hot spilled keys is all one warming pass can usefully
// transfer, and the queue dedups by key, so a deep backlog would only
// hold stale routing history.
const warmQueueMax = 64

// warmTask is one pending cache transfer: move key's entry from the
// replica that holds it warm (its HRW winner) to the replica the
// bounded-load spill diverted its traffic onto.
type warmTask struct {
	key  cache.Key
	from *replica
	to   *replica
}

// noteSpill records a bounded-load spill as a warming task. Called
// from pick's demoted branch, so it must stay cheap: one small
// mutex-guarded dedup-and-append, no I/O. A key already queued is left
// as is (its first spill already scheduled the transfer); a full queue
// drops the newest signal rather than evicting older ones mid-drain.
func (ro *Router) noteSpill(key uint64, from, to *replica) {
	if !ro.cfg.Warm {
		return
	}
	ro.warmMu.Lock()
	defer ro.warmMu.Unlock()
	for _, t := range ro.warmQueue {
		if t.key == cache.Key(key) {
			return
		}
	}
	if len(ro.warmQueue) >= warmQueueMax {
		return
	}
	ro.warmQueue = append(ro.warmQueue, warmTask{key: cache.Key(key), from: from, to: to})
}

// warmLoop drives warming passes at the configured cadence until
// Close.
func (ro *Router) warmLoop() {
	defer ro.wg.Done()
	t := time.NewTicker(ro.cfg.WarmInterval)
	defer t.Stop()
	for {
		select {
		case <-ro.stop:
			return
		case <-t.C:
			ro.warmOnce()
		}
	}
}

// warmOnce drains the spill queue, transferring each task's cache
// entry from its HRW winner to its spill target under a per-replica
// byte budget (RouterConfig.WarmBudgetBytes per pass). A missing
// entry (evicted, expired or invalidated since the spill) just drops
// the task; fetch or install errors count under WarmFailures; a
// replica whose budget is exhausted has its remaining tasks dropped —
// the next spill of a still-hot key re-queues it. Returns how many
// entries were installed.
func (ro *Router) warmOnce() int {
	ro.warmMu.Lock()
	tasks := ro.warmQueue
	ro.warmQueue = nil
	ro.warmMu.Unlock()
	if len(tasks) == 0 {
		return 0
	}
	installed := 0
	spent := make(map[*replica]int64)
	for _, task := range tasks {
		src, ok := task.from.b.(CacheTransfer)
		if !ok {
			continue
		}
		dst, ok := task.to.b.(CacheTransfer)
		if !ok {
			continue
		}
		if spent[task.to] >= ro.cfg.WarmBudgetBytes {
			continue
		}
		task.to.mu.Lock()
		up := task.to.up
		task.to.mu.Unlock()
		if !up {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), ro.cfg.ProbeTimeout)
		w, err := src.FetchCacheEntry(ctx, task.key)
		if err != nil {
			cancel()
			if !errors.Is(err, ErrNoEntry) {
				ro.warmFailures.Add(1)
			}
			continue
		}
		n := w.Bytes()
		if spent[task.to]+n > ro.cfg.WarmBudgetBytes {
			cancel()
			continue
		}
		err = dst.InstallCacheEntry(ctx, w)
		cancel()
		if err != nil {
			ro.warmFailures.Add(1)
			continue
		}
		spent[task.to] += n
		ro.warmTransfers.Add(1)
		ro.warmBytes.Add(n)
		installed++
	}
	return installed
}
