package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"steppingnet/internal/governor"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/serve"
	"steppingnet/internal/serve/cache"
	"steppingnet/internal/tensor"
)

// warmModel builds the small LeNet-3C1L the warming tests serve —
// a twin of the chaos-test helper, duplicated here because this file
// lives in the internal test package (it drives warmOnce and the
// spill queue by hand).
func warmModel(seed uint64) *models.Model {
	m := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: seed,
	})
	r := tensor.NewRNG(seed ^ 0x5E12E)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for u := 1; u < a.Units(); u++ {
			a.SetID(u, 1+r.Intn(3))
		}
	}
	return m
}

func warmInput(seed uint64) []float64 {
	x := tensor.New(1 * 8 * 8)
	x.FillNormal(tensor.NewRNG(seed), 0, 1)
	return x.Data()
}

func warmSteps(m *models.Model, n int) governor.LatencyModel {
	lm := governor.LatencyModel{StepMACs: governor.StepCosts(m, n), StepTime: make([]time.Duration, n)}
	for i := range lm.StepTime {
		lm.StepTime[i] = time.Nanosecond
	}
	return lm
}

// newWarmServer builds one cache-armed in-process replica for the
// warming tests.
func newWarmServer(t *testing.T, m *models.Model) *serve.Server {
	t.Helper()
	srv, err := serve.New(serve.Config{
		Model: m, Subnets: 3, Workers: 1, QueueDepth: 16, MaxBatch: 4,
		Calibration: warmSteps(m, 3), DefaultDeadline: time.Hour,
		CacheEntries: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestCacheEntryWireKey pins the key's wire encoding: cache keys are
// full-range 64-bit hashes, and values above 2^53 do not survive a
// trip through a JSON number — the hex-string form must round-trip
// every key bit-exactly.
func TestCacheEntryWireKey(t *testing.T) {
	keys := []cache.Key{0, 1, cache.Key(1) << 53, math.MaxUint64, 0xfedc_ba98_7654_3210}
	for _, k := range keys {
		got, err := ParseKey(FormatKey(k))
		if err != nil {
			t.Fatalf("ParseKey(FormatKey(%#x)): %v", uint64(k), err)
		}
		if got != k {
			t.Fatalf("key round trip: %#x → %#x", uint64(k), uint64(got))
		}
	}
	w := CacheEntryWire{Key: FormatKey(math.MaxUint64), Subnet: 2, Logits: []float64{1, 2}}
	blob, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back CacheEntryWire
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	k, _, err := back.Entry()
	if err != nil {
		t.Fatal(err)
	}
	if k != math.MaxUint64 {
		t.Fatalf("max key corrupted by JSON trip: %#x", uint64(k))
	}
	if _, err := ParseKey("not-hex"); err == nil {
		t.Fatal("ParseKey accepted garbage")
	}
}

// TestSpillFeedsWarmQueue pins the warming signal path: a bounded-load
// spill on a Warm router queues exactly one (deduplicated) transfer
// task, attributed from the HRW winner to the replica that caught the
// request. The fakes implement no CacheTransfer, so the drain pass
// must skip them without counting failures.
func TestSpillFeedsWarmQueue(t *testing.T) {
	fakes := []*fakeBackend{{name: "a"}, {name: "b"}, {name: "c"}}
	ro := newTestRouter(t, RouterConfig{Affinity: true, Warm: true, WarmInterval: -1}, fakes...)
	in := affinityInputs(1)[0]
	key := cache.KeyOf(in)

	first := servedBy(t, ro, fakes, in)
	ro.warmMu.Lock()
	n := len(ro.warmQueue)
	ro.warmMu.Unlock()
	if n != 0 {
		t.Fatalf("unloaded affinity dispatch queued a warm task")
	}

	// Load the winner past the spill bound (scores 30, 0, 0 → mean 10,
	// bound 20) and spill the key twice: one task, not two.
	ro.replicas[first].storeSnap(snap(30))
	spilledTo := servedBy(t, ro, fakes, in)
	servedBy(t, ro, fakes, in)
	ro.warmMu.Lock()
	tasks := append([]warmTask(nil), ro.warmQueue...)
	ro.warmMu.Unlock()
	if len(tasks) != 1 {
		t.Fatalf("two spills of one key queued %d warm tasks, want 1", len(tasks))
	}
	if tasks[0].key != key || tasks[0].from != ro.replicas[first] || tasks[0].to != ro.replicas[spilledTo] {
		t.Fatalf("warm task misattributed: key %#x from %s to %s",
			uint64(tasks[0].key), tasks[0].from.b.Target(), tasks[0].to.b.Target())
	}

	if got := ro.warmOnce(); got != 0 {
		t.Fatalf("warmOnce transferred %d entries across CacheTransfer-less fakes", got)
	}
	if ro.warmFailures.Load() != 0 {
		t.Fatalf("skipping a transfer-less backend counted as a failure")
	}
	ro.warmMu.Lock()
	drained := len(ro.warmQueue)
	ro.warmMu.Unlock()
	if drained != 0 {
		t.Fatalf("warmOnce left %d tasks queued", drained)
	}
}

// TestWarmingTransfersEntryEndToEnd is the warming acceptance test
// over real in-process replicas: a key's full walk cached on its HRW
// winner is transferred (through the JSON wire form) to its spill
// target, and the next spilled request is a zero-MAC cache hit whose
// logits are bitwise identical to the winner's cold walk.
func TestWarmingTransfersEntryEndToEnd(t *testing.T) {
	m := warmModel(41)
	var backs []Backend
	var servers []*serve.Server
	for _, name := range []string{"a", "b", "c"} {
		srv := newWarmServer(t, m)
		servers = append(servers, srv)
		backs = append(backs, &Local{Srv: srv, Name: name})
	}
	ro, err := NewRouter(RouterConfig{
		Backends: backs, Affinity: true, Warm: true,
		ProbeInterval: -1, WarmInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ro.Close)

	in := warmInput(7)
	key := cache.KeyOf(in)
	res1, err := ro.Submit(serve.Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Subnet != 3 || res1.CacheHit {
		t.Fatalf("cold walk answered subnet %d (hit=%v), want a full cold walk", res1.Subnet, res1.CacheHit)
	}

	// The HRW order is a pure function of the key and replica IDs:
	// weights descending give the winner and its deterministic spill
	// target (the replica a bounded-load overflow lands on).
	order := make([]int, len(ro.replicas))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && hrwWeight(uint64(key), ro.replicas[order[j]].id) > hrwWeight(uint64(key), ro.replicas[order[j-1]].id); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	winner, target := order[0], order[1]
	if got := servers[winner].Stats().Served; got != 1 {
		t.Fatalf("cold walk did not land on the key's HRW winner (winner served %d)", got)
	}

	ro.noteSpill(uint64(key), ro.replicas[winner], ro.replicas[target])
	if got := ro.warmOnce(); got != 1 {
		t.Fatalf("warmOnce installed %d entries, want 1", got)
	}
	if snap := servers[target].Stats(); snap.CacheWarmed != 1 {
		t.Fatalf("spill target CacheWarmed = %d, want 1", snap.CacheWarmed)
	}
	st := ro.Stats()
	if st.WarmTransfers != 1 || st.WarmBytes <= 0 || st.WarmFailures != 0 {
		t.Fatalf("warm counters after one transfer: %+v", st)
	}

	// Overload the winner past the spill bound and resubmit: the
	// request lands on the warmed target and must answer from the
	// transferred entry — zero MACs, bitwise-identical logits.
	ro.replicas[winner].storeSnap(snap(30))
	res2, err := ro.Submit(serve.Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit || res2.MACs != 0 {
		t.Fatalf("spilled repeat after warming: hit=%v macs=%d, want a zero-MAC hit", res2.CacheHit, res2.MACs)
	}
	if len(res2.Logits) != len(res1.Logits) {
		t.Fatalf("logit width changed across the transfer: %d vs %d", len(res2.Logits), len(res1.Logits))
	}
	for i := range res1.Logits {
		if res1.Logits[i] != res2.Logits[i] {
			t.Fatalf("warmed hit logit[%d] = %v, cold walk = %v (wire transfer not bitwise)", i, res2.Logits[i], res1.Logits[i])
		}
	}
	if snap := servers[target].Stats(); snap.CacheHits != 1 {
		t.Fatalf("spill target CacheHits = %d, want 1 (the warmed entry must have served the hit)", snap.CacheHits)
	}
}

// TestWarmBudgetBoundsPass pins the per-replica byte budget: with a
// budget sized to exactly one entry, a pass holding two tasks for the
// same target installs one and drops the other (no failure counted —
// the next spill re-queues a still-hot key).
func TestWarmBudgetBoundsPass(t *testing.T) {
	m := warmModel(43)
	src := newWarmServer(t, m)
	dst := newWarmServer(t, m)
	srcB, dstB := &Local{Srv: src, Name: "src"}, &Local{Srv: dst, Name: "dst"}
	ro, err := NewRouter(RouterConfig{
		Backends: []Backend{srcB, dstB}, Affinity: true, Warm: true,
		ProbeInterval: -1, WarmInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ro.Close)

	in1, in2 := warmInput(11), warmInput(12)
	for _, in := range [][]float64{in1, in2} {
		if _, err := srcB.Submit(context.Background(), serve.Request{Input: in, Deadline: time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	w, err := srcB.FetchCacheEntry(context.Background(), cache.KeyOf(in1))
	if err != nil {
		t.Fatal(err)
	}
	ro.cfg.WarmBudgetBytes = w.Bytes() // exactly one full-ladder entry

	ro.noteSpill(uint64(cache.KeyOf(in1)), ro.replicas[0], ro.replicas[1])
	ro.noteSpill(uint64(cache.KeyOf(in2)), ro.replicas[0], ro.replicas[1])
	if got := ro.warmOnce(); got != 1 {
		t.Fatalf("warmOnce under a one-entry budget installed %d, want 1", got)
	}
	if ro.warmFailures.Load() != 0 {
		t.Fatalf("budget drop counted as a failure")
	}
	if snap := dst.Stats(); snap.CacheWarmed != 1 {
		t.Fatalf("target CacheWarmed = %d, want 1", snap.CacheWarmed)
	}
}

// TestRemoteCacheTransfer pins the HTTP legs of CacheTransfer against
// a scripted replica: install POSTs the wire entry, fetch GETs it back
// byte-identically, a missing key maps to ErrNoEntry, and a broken
// replica maps to ErrTransport.
func TestRemoteCacheTransfer(t *testing.T) {
	var mu sync.Mutex
	store := map[string]CacheEntryWire{}
	fail := false
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/cache/entry" {
			http.NotFound(rw, req)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if fail {
			http.Error(rw, "boom", http.StatusInternalServerError)
			return
		}
		switch req.Method {
		case http.MethodGet:
			w, ok := store[req.URL.Query().Get("key")]
			if !ok {
				http.Error(rw, "no entry", http.StatusNotFound)
				return
			}
			json.NewEncoder(rw).Encode(w)
		case http.MethodPost:
			var w CacheEntryWire
			if err := json.NewDecoder(req.Body).Decode(&w); err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
			store[w.Key] = w
		}
	}))
	t.Cleanup(ts.Close)
	r := NewRemote(ts.URL)
	t.Cleanup(r.Close)
	ctx := context.Background()

	key := cache.Key(0xfedc_ba98_7654_3210)
	if _, err := r.FetchCacheEntry(ctx, key); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("missing key fetch: %v, want ErrNoEntry", err)
	}
	sent := CacheEntryWire{Key: FormatKey(key), Subnet: 2, Logits: []float64{0.25, -1.5, 3}}
	if err := r.InstallCacheEntry(ctx, sent); err != nil {
		t.Fatal(err)
	}
	got, err := r.FetchCacheEntry(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := json.Marshal(sent)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(sb, gb) {
		t.Fatalf("entry changed across the HTTP round trip:\nsent %s\ngot  %s", sb, gb)
	}

	mu.Lock()
	fail = true
	mu.Unlock()
	if _, err := r.FetchCacheEntry(ctx, key); !errors.Is(err, ErrTransport) {
		t.Fatalf("500 fetch: %v, want ErrTransport", err)
	}
	if err := r.InstallCacheEntry(ctx, sent); !errors.Is(err, ErrTransport) {
		t.Fatalf("500 install: %v, want ErrTransport", err)
	}
}
