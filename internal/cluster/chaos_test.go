package cluster_test

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"steppingnet/internal/cluster"
	"steppingnet/internal/cluster/faultinject"
	"steppingnet/internal/governor"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/serve"
	"steppingnet/internal/tensor"
)

// buildModel mirrors the serve test helper: a LeNet-3C1L with a
// random legal assignment across 3 subnets.
func buildModel(seed uint64) *models.Model {
	m := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: seed,
	})
	r := tensor.NewRNG(seed ^ 0x5E12E)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for u := 1; u < a.Units(); u++ {
			a.SetID(u, 1+r.Intn(3))
		}
	}
	return m
}

func inputVec(seed uint64, n int) []float64 {
	x := tensor.New(n)
	x.FillNormal(tensor.NewRNG(seed), 0, 1)
	return x.Data()
}

// instantSteps fabricates a latency model whose steps cost ~nothing.
func instantSteps(m *models.Model, n int) governor.LatencyModel {
	lm := governor.LatencyModel{StepMACs: governor.StepCosts(m, n), StepTime: make([]time.Duration, n)}
	for i := range lm.StepTime {
		lm.StepTime[i] = time.Nanosecond
	}
	return lm
}

// newReplica builds one in-process replica shaped like the serve
// overload tests: a single deliberately slowed worker (ServeDelay
// caps its throughput at a known rate) with two priority classes, so
// a 40-submitter low-priority storm is a reproducible 12×+ overload
// regardless of host speed. When slos is non-empty the replica also
// runs the adaptive overload governor on a fast tick, so the chaos
// storms exercise the whole closed loop. cacheEntries > 0 arms the
// replica's semantic result cache; exitMargin > 0 arms its confidence
// early exit — the chaos tests mix armed and unarmed replicas so the
// cluster invariants hold across heterogeneous fleets.
func newReplica(t *testing.T, m *models.Model, name string, serveDelay time.Duration, slos []governor.SLO, cacheEntries int, exitMargin float64) (*serve.Server, *faultinject.Injector) {
	t.Helper()
	srv, err := serve.New(serve.Config{
		Model: m, Subnets: 3, Workers: 1, QueueDepth: 16, MaxBatch: 4,
		PriorityClasses: 2,
		Calibration:     instantSteps(m, 3), DefaultDeadline: time.Hour,
		ServeDelay: serveDelay,
		SLOs:       slos, ControlInterval: 25 * time.Millisecond,
		CacheEntries: cacheEntries, ExitMargin: exitMargin,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, faultinject.Wrap(&cluster.Local{Srv: srv, Name: name})
}

// waitGoroutines polls until the goroutine count settles at or below
// the watermark (grace for runtime helpers), failing the test if it
// never does — the leak detector for replica death.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines never settled: %d > %d\n%s",
				runtime.NumGoroutine(), want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterChaosKillOneReplica is the distributed tier's acceptance
// gate, run under -race by ci.sh on both GEMM backends: three
// replicas behind the router, a sustained low-priority storm at 12×+
// the (deliberately capped) cluster capacity, and one replica killed
// abruptly mid-storm — crash injection plus its server closed, so
// in-flight work dies with it. The tier must hold three invariants:
//
//   - the high-priority class keeps a ≥99% deadline hit rate across
//     the kill (failed attempts on the dying replica retry onto the
//     survivors, which its deadline budget affords) and attains its
//     configured p99 SLO;
//   - every submitted request resolves to exactly one answer or one
//     typed error — nothing hangs, nothing is double-answered;
//   - the overload governor fires and fires in order: the sustained
//     storm drives SLO violations and brownout transitions on the
//     LOW class, and no replica ever touches the high class before
//     fully shedding class 0 (the brownout ladder's ordering
//     contract, observed end to end through the router's snapshots);
//   - replica death leaks nothing: after Close, the goroutine count
//     settles back to the pre-test watermark.
func TestClusterChaosKillOneReplica(t *testing.T) {
	before := runtime.NumGoroutine()
	m := buildModel(70)

	// Per-class SLOs: the low class's 5ms p99 target is unmeetable
	// under a sustained storm against 4ms batches (brownout must
	// fire); the high class's target matches its 2s request deadline
	// (attainment below is implied by the ≥99% hit-rate gate).
	const highP99Target = 2 * time.Second
	slos := []governor.SLO{
		{P99Target: 5 * time.Millisecond},
		{P99Target: highP99Target, MinHitRate: 0.99},
	}
	var (
		servers   []*serve.Server
		injectors []*faultinject.Injector
		backends  []cluster.Backend
	)
	// Randomly arm the semantic cache and early exit per replica
	// (seeded — the mix is reproducible), forcing at least one storm
	// SURVIVOR to run the cache so hit propagation through the router
	// snapshots is observable. Heterogeneous arming is the point: the
	// tier's invariants cannot depend on which replicas cache.
	arm := rand.New(rand.NewSource(0xCAC4E))
	for i := 0; i < 3; i++ {
		cacheEntries, exitMargin := 0, 0.0
		if i == 1 || arm.Intn(2) == 1 {
			cacheEntries = 8
		}
		if arm.Intn(2) == 1 {
			exitMargin = 0.25 + arm.Float64()
		}
		srv, inj := newReplica(t, m, fmt.Sprintf("replica%d", i), 4*time.Millisecond, slos, cacheEntries, exitMargin)
		servers = append(servers, srv)
		injectors = append(injectors, inj)
		backends = append(backends, inj)
	}
	// Affinity armed (the -affinity configuration): the storm repeats
	// ONE input, so rendezvous hashing concentrates it on a single
	// replica until the bounded-load spill redistributes — the
	// invariants below must survive that concentration AND the kill of
	// whichever replica the key pins.
	ro, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:      backends,
		ProbeInterval: 20 * time.Millisecond, ProbeTimeout: 250 * time.Millisecond,
		DownAfter: 2, ReadmitAfter: 3,
		BreakerThreshold: 3, BreakerCooldown: 200 * time.Millisecond,
		Affinity: true, AffinitySpillFactor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	in := inputVec(71, 64)

	// Sustained low-priority pressure: closed-loop submitters that
	// resubmit until told to stop, counting every outcome. 4ms batches
	// cap each replica at ~1k req/s (3k cluster-wide); 40 submitters
	// cycling at ≥1k attempts/s each offer ~40k/s — a sustained 12×+
	// overload. The 1ms shed backoff keeps the storm from starving the
	// serving goroutines on small hosts without relieving the
	// pressure.
	const lowWorkers = 40
	var (
		wg        sync.WaitGroup
		lowSent   atomic.Int64
		lowOK     atomic.Int64
		lowShed   atomic.Int64
		lowFailed atomic.Int64
	)
	stop := make(chan struct{})
	for i := 0; i < lowWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lowSent.Add(1)
				_, err := ro.Submit(serve.Request{Input: in, Priority: 0, Deadline: 50 * time.Millisecond})
				switch {
				case err == nil:
					lowOK.Add(1)
				case errors.Is(err, serve.ErrOverloaded), errors.Is(err, cluster.ErrNoReplicas):
					lowShed.Add(1)
					time.Sleep(time.Millisecond)
				case errors.Is(err, cluster.ErrTransport), errors.Is(err, serve.ErrClosed):
					// Expected while replica0 is dying with requests in
					// flight (or when the remaining 50ms cannot afford a
					// retry elsewhere).
					lowFailed.Add(1)
				default:
					t.Errorf("low-priority submit: unexpected error %v", err)
					lowFailed.Add(1)
				}
			}
		}()
	}

	// Wait until the storm is really pressing on the cluster's queues.
	waitUntil := time.Now().Add(5 * time.Second)
	for {
		st := ro.Stats()
		backlog := 0
		for _, r := range st.Replicas {
			backlog += r.QueueLen
		}
		if backlog >= 8 {
			break
		}
		if time.Now().After(waitUntil) {
			close(stop)
			wg.Wait()
			t.Fatal("low-priority backlog never built up")
		}
		time.Sleep(time.Millisecond)
	}

	// The protected class: 100 sequential requests; replica0 is killed
	// abruptly after the 30th — crash injection first (every in-flight
	// and future exchange fails), then its server closed (its worker
	// and former goroutines die with requests queued).
	const highReqs = 100
	const killAt = 30
	highMet := 0
	highLats := make([]time.Duration, 0, highReqs)
	for i := 0; i < highReqs; i++ {
		if i == killAt {
			injectors[0].Inject(faultinject.Fault{Kind: faultinject.Crash})
			servers[0].Close()
		}
		res, err := ro.Submit(serve.Request{Input: in, Priority: 1, Deadline: highP99Target})
		if err != nil {
			t.Fatalf("high-priority request %d failed across the kill: %v", i, err)
		}
		if res.Priority != 1 {
			t.Fatalf("high-priority request %d served as class %d", i, res.Priority)
		}
		if res.DeadlineMet {
			highMet++
		}
		highLats = append(highLats, res.Latency)
	}
	if rate := float64(highMet) / highReqs; rate < 0.99 {
		t.Fatalf("high-priority deadline hit rate %.3f across replica kill, want ≥0.99", rate)
	}

	// A handful of malformed requests (wrong input geometry): each
	// must come back as a typed ErrBadInput after exactly one
	// dispatch, and land on the per-replica bad_input counter so the
	// exact-accounting check below can include them.
	const badReqs = 5
	for i := 0; i < badReqs; i++ {
		_, err := ro.Submit(serve.Request{Input: []float64{1, 2, 3}, Priority: 1, Deadline: time.Second})
		if !errors.Is(err, serve.ErrBadInput) {
			t.Fatalf("malformed request %d: got %v, want ErrBadInput", i, err)
		}
	}
	// SLO attainment, client-measured: with ≥99/100 answers inside the
	// deadline, the nearest-rank p99 must sit at or under the target.
	sort.Slice(highLats, func(i, j int) bool { return highLats[i] < highLats[j] })
	if p99 := highLats[98]; p99 > highP99Target {
		t.Fatalf("high-priority p99 %v blew its %v SLO across the kill", p99, highP99Target)
	}

	// The storm is still running: sustained 5ms-target violations on
	// the low class must drive the governor into brownout on some
	// replica. Poll the router's replica snapshots (the operator's
	// view) until violations and transitions surface.
	brownoutSettle := time.Now().Add(5 * time.Second)
	for {
		// Router view (the wire-propagated ReplicaStats fields) and
		// the replicas' own class-0 counters must both surface it.
		st := ro.Stats()
		var viol, trans int64
		for _, r := range st.Replicas {
			viol += r.SLOViolations
			trans += r.BrownoutTransitions
		}
		var viol0, trans0 int64
		for _, srv := range servers {
			snap := srv.Stats()
			viol0 += snap.Classes[0].SLOViolations
			trans0 += snap.Classes[0].BrownoutTransitions
		}
		if viol > 0 && trans > 0 && viol0 > 0 && trans0 > 0 {
			break
		}
		if time.Now().After(brownoutSettle) {
			t.Fatalf("governor never fired under a sustained SLO-violating storm: router view %d/%d, class 0 %d/%d",
				viol, trans, viol0, trans0)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The prober must have ejected the dead replica by now.
	probeSettle := time.Now().Add(2 * time.Second)
	for ro.Stats().Replicas[0].Up {
		if time.Now().After(probeSettle) {
			t.Fatal("killed replica still marked up after the storm")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := ro.Available(); got < 1 || got > 2 {
		t.Fatalf("Available = %d after killing 1 of 3, want 1..2", got)
	}

	close(stop)
	wg.Wait()

	// Exactly-one-outcome accounting, client side and router side.
	if got := lowOK.Load() + lowShed.Load() + lowFailed.Load(); got != lowSent.Load() {
		t.Fatalf("low-class outcomes %d != submits %d (hang or double answer)", got, lowSent.Load())
	}
	st := ro.Stats()
	if st.Submitted != lowSent.Load()+highReqs+badReqs {
		t.Fatalf("router saw %d submits, clients sent %d", st.Submitted, lowSent.Load()+highReqs+badReqs)
	}
	if st.Served != lowOK.Load()+highReqs {
		t.Fatalf("router served %d, clients got %d answers", st.Served, lowOK.Load()+highReqs)
	}
	if st.Served+st.Failed != st.Submitted {
		t.Fatalf("router accounting: served %d + failed %d != submitted %d", st.Served, st.Failed, st.Submitted)
	}
	if lowShed.Load() == 0 {
		t.Fatal("a 40-submitter storm over a capped cluster must shed low-priority traffic")
	}
	// Per-replica exact accounting: every dispatch resolved to exactly
	// one of the four outcome counters — including the bad_input arm,
	// which used to fall through uncounted.
	var badTotal, affinityHits int64
	for _, r := range st.Replicas {
		if got := r.Success + r.Rejected + r.TransportErrors + r.BadInputs; got != r.Dispatches {
			t.Fatalf("replica %s outcomes %d != dispatches %d: %+v", r.Target, got, r.Dispatches, r)
		}
		badTotal += r.BadInputs
		affinityHits += r.AffinityHits
	}
	if badTotal != badReqs {
		t.Fatalf("bad_input dispatches %d across replicas, want %d", badTotal, badReqs)
	}
	if st.AffinityRouted != affinityHits {
		t.Fatalf("router AffinityRouted %d != summed per-replica hits %d", st.AffinityRouted, affinityHits)
	}
	if st.AffinityRouted == 0 {
		t.Fatal("a keyed storm through an affinity router never hit an HRW choice")
	}
	if st.AffinitySpilled == 0 {
		t.Fatal("a 12× single-key storm never tripped the bounded-load spill")
	}

	// Brownout ordering, per replica: class 0's ladder (3 subnets,
	// floor 1) is 6 levels deep — 2 narrow halvings + 3 admission
	// doublings + 1 shed — and the controller only ever touches class
	// 1 after walking class 0 all the way down. So any high-class
	// transition implies at least 6 low-class escalations first, and
	// the violations themselves must concentrate in the low class.
	var viol0, trans0 int64
	for i, srv := range servers {
		snap := srv.Stats()
		c0, c1 := snap.Classes[0], snap.Classes[1]
		if c1.BrownoutTransitions > 0 && c0.BrownoutTransitions < 6 {
			t.Fatalf("replica%d browned the high class after only %d low-class transitions (want ≥6 first)",
				i, c0.BrownoutTransitions)
		}
		viol0 += c0.SLOViolations
		trans0 += c0.BrownoutTransitions
		if snap.Policy == nil {
			t.Fatalf("replica%d: governed server snapshot has no policy block", i)
		}
	}
	if viol0 == 0 || trans0 == 0 {
		t.Fatalf("low class never tripped its SLO under the storm: violations=%d transitions=%d", viol0, trans0)
	}

	// The storm repeats one input, so the cache-armed survivor must
	// have served hits or resumes — and they must propagate through
	// the probe snapshots into the router's operator view.
	if snap := servers[1].Stats(); !snap.CacheEnabled || snap.CacheHits+snap.CacheResumes == 0 {
		t.Fatalf("cache-armed survivor saw no hits or resumes under a single-key storm: %+v", snap)
	}
	var routerHits int64
	for _, r := range st.Replicas {
		routerHits += r.CacheHits + r.CacheResumes
	}
	if routerHits == 0 {
		t.Fatal("replica cache activity never surfaced in the router's ReplicaStats")
	}

	// Replica death leaks nothing: close everything (replica0 again —
	// Close is idempotent) and require the goroutine count to settle.
	ro.Close()
	waitGoroutines(t, before+4)
}

// TestExactlyOneAnswerUnderRandomFaults drives the seeded
// fault-injection harness end to end: every replica runs a different
// reproducible schedule of hangs, slowdowns, error bursts and
// partitions (faultinject.Random — same seed, same storm), while
// concurrent submitters with randomized priorities and deadlines
// hammer the router. Whatever the schedule does, the contract holds:
// every Submit returns exactly once with an answer or a typed error,
// and teardown releases every goroutine.
func TestExactlyOneAnswerUnderRandomFaults(t *testing.T) {
	before := runtime.NumGoroutine()
	m := buildModel(80)

	const seed = 0xFA017
	var backends []cluster.Backend
	var servers []*serve.Server
	// Governed replicas: the random fault schedules must not be able
	// to wedge or corrupt the control loop either.
	slos := []governor.SLO{{P99Target: 5 * time.Millisecond}, {MinHitRate: 0.9}}
	arm := rand.New(rand.NewSource(seed))
	for i := 0; i < 3; i++ {
		cacheEntries, exitMargin := 0, 0.0
		if arm.Intn(2) == 1 {
			cacheEntries = 4
		}
		if arm.Intn(2) == 1 {
			exitMargin = 0.25 + arm.Float64()
		}
		srv, inj := newReplica(t, m, fmt.Sprintf("replica%d", i), 200*time.Microsecond, slos, cacheEntries, exitMargin)
		servers = append(servers, srv)
		for _, f := range faultinject.Random(seed+int64(i), time.Second, 5) {
			inj.Inject(f)
		}
		backends = append(backends, inj)
	}
	ro, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:      backends,
		ProbeInterval: 10 * time.Millisecond, ProbeTimeout: 100 * time.Millisecond,
		DownAfter: 2, ReadmitAfter: 2,
		BreakerThreshold: 3, BreakerCooldown: 100 * time.Millisecond,
		Hedge: true, HedgeMinSamples: 16,
		Affinity: true, AffinitySpillFactor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	in := inputVec(81, 64)

	const submitters = 24
	const perSubmitter = 8
	var (
		wg      sync.WaitGroup
		done    atomic.Int64
		answers atomic.Int64
	)
	deadlines := []time.Duration{5 * time.Millisecond, 50 * time.Millisecond, time.Second}
	for i := 0; i < submitters; i++ {
		sub := rand.New(rand.NewSource(seed + 100 + int64(i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perSubmitter; k++ {
				res, err := ro.Submit(serve.Request{
					Input:    in,
					Deadline: deadlines[sub.Intn(len(deadlines))],
					Priority: sub.Intn(2),
				})
				switch {
				case err == nil:
					if res.Subnet < 1 || res.Subnet > 3 {
						t.Errorf("answered from subnet %d", res.Subnet)
					}
					answers.Add(1)
				case errors.Is(err, serve.ErrOverloaded),
					errors.Is(err, cluster.ErrTransport),
					errors.Is(err, cluster.ErrNoReplicas),
					errors.Is(err, serve.ErrClosed):
					// Typed, expected under injected chaos.
				default:
					t.Errorf("untyped error escaped the router: %v", err)
				}
				done.Add(1)
			}
		}()
	}

	// Watchdog: the storm must drain — a hang is exactly the bug the
	// harness exists to catch.
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(60 * time.Second):
		t.Fatalf("storm wedged: %d/%d submits resolved", done.Load(), submitters*perSubmitter)
	}
	if got := done.Load(); got != submitters*perSubmitter {
		t.Fatalf("outcomes %d != submits %d", got, submitters*perSubmitter)
	}
	if answers.Load() == 0 {
		t.Fatal("no request ever succeeded — the schedule should leave healthy windows")
	}

	ro.Close()
	waitGoroutines(t, before+4)
}

// TestLocalBackendLifecycle pins the Local adapter's health contract:
// healthy while the wrapped server admits work, serve.ErrClosed from
// Health and Submit once it drains.
func TestLocalBackendLifecycle(t *testing.T) {
	m := buildModel(90)
	srv, err := serve.New(serve.Config{
		Model: m, Subnets: 3, Workers: 1,
		Calibration: instantSteps(m, 3), DefaultDeadline: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := &cluster.Local{Srv: srv, Name: "solo"}
	ctx := t.Context()
	if err := b.Health(ctx); err != nil {
		t.Fatalf("open server reported unhealthy: %v", err)
	}
	res, err := b.Submit(ctx, serve.Request{Input: inputVec(91, 64)})
	if err != nil || res.Subnet != 3 {
		t.Fatalf("submit = %+v, %v", res, err)
	}
	snap, err := b.Stats(ctx)
	if err != nil || snap.Served != 1 {
		t.Fatalf("stats = %+v, %v", snap, err)
	}
	if snap.MinSubnet != 1 || len(snap.StepTimeMs) != 3 {
		t.Fatalf("snapshot missing routing fields: %+v", snap)
	}
	b.Close()
	if err := b.Health(ctx); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("closed server Health = %v, want ErrClosed", err)
	}
	if _, err := b.Submit(ctx, serve.Request{Input: inputVec(91, 64)}); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("closed server Submit = %v, want ErrClosed", err)
	}
}
