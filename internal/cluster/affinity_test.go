package cluster

import (
	"fmt"
	"testing"
	"time"

	"steppingnet/internal/serve"
	"steppingnet/internal/serve/cache"
	"steppingnet/internal/tensor"
)

// affinityInputs fabricates n distinct input vectors; the router keys
// them with cache.KeyOf exactly as production traffic is keyed.
func affinityInputs(n int) [][]float64 {
	rng := tensor.NewRNG(0xAFF1)
	inputs := make([][]float64, n)
	for i := range inputs {
		x := tensor.New(16)
		x.FillNormal(rng, 0, 1)
		inputs[i] = x.Data()
	}
	return inputs
}

// servedBy submits the input and reports which fake served it, by
// submit-counter delta.
func servedBy(t *testing.T, ro *Router, fakes []*fakeBackend, in []float64) int {
	t.Helper()
	before := make([]int64, len(fakes))
	for i, f := range fakes {
		before[i] = f.submits.Load()
	}
	if _, err := ro.Submit(serve.Request{Input: in, Deadline: 50 * time.Millisecond}); err != nil {
		t.Fatalf("affinity submit failed: %v", err)
	}
	who := -1
	for i, f := range fakes {
		if d := f.submits.Load() - before[i]; d > 0 {
			if d != 1 || who >= 0 {
				t.Fatalf("submit dispatched more than once: deltas across fakes")
			}
			who = i
		}
	}
	if who < 0 {
		t.Fatal("no fake saw the submit")
	}
	return who
}

// TestAffinityStableUnderEjection pins rendezvous hashing's two load-
// bearing properties end to end through Submit: every key maps to one
// stable replica while the set is healthy; ejecting a replica remaps
// ONLY the keys that ranked it first (each falls to its HRW second
// choice, also stably) while every other key's winner is untouched;
// and re-admission restores the original mapping exactly.
func TestAffinityStableUnderEjection(t *testing.T) {
	fakes := []*fakeBackend{{name: "a"}, {name: "b"}, {name: "c"}}
	ro := newTestRouter(t, RouterConfig{Affinity: true}, fakes...)

	inputs := affinityInputs(24)
	winner := make([]int, len(inputs))
	for i, in := range inputs {
		winner[i] = servedBy(t, ro, fakes, in)
		for rep := 0; rep < 3; rep++ {
			if got := servedBy(t, ro, fakes, in); got != winner[i] {
				t.Fatalf("key %d flapped: replica %d then %d with a healthy set", i, winner[i], got)
			}
		}
	}
	// A healthy HRW spread over 24 keys and 3 replicas should not
	// degenerate to one replica (the weights avalanche per key).
	seen := map[int]bool{}
	for _, w := range winner {
		seen[w] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all %d keys mapped to one replica — HRW weights are not spreading", len(inputs))
	}

	// Eject one winner; its keys fall over (stably), others hold.
	ejected := winner[0]
	ro.replicas[ejected].mu.Lock()
	ro.replicas[ejected].up = false
	ro.replicas[ejected].mu.Unlock()
	fallback := make([]int, len(inputs))
	for i, in := range inputs {
		fallback[i] = servedBy(t, ro, fakes, in)
		if fallback[i] == ejected {
			t.Fatalf("key %d still routed to the ejected replica", i)
		}
		if winner[i] != ejected && fallback[i] != winner[i] {
			t.Fatalf("key %d moved from %d to %d although its winner was not ejected (HRW minimal disruption violated)",
				i, winner[i], fallback[i])
		}
		if got := servedBy(t, ro, fakes, in); got != fallback[i] {
			t.Fatalf("key %d flapped between fallbacks %d and %d", i, fallback[i], got)
		}
	}

	// Re-admission restores the original mapping bit for bit.
	ro.replicas[ejected].mu.Lock()
	ro.replicas[ejected].up = true
	ro.replicas[ejected].mu.Unlock()
	for i, in := range inputs {
		if got := servedBy(t, ro, fakes, in); got != winner[i] {
			t.Fatalf("key %d did not return to replica %d after re-admission (got %d)", i, winner[i], got)
		}
	}
}

// TestAffinitySpillEngagesAtBound pins the bounded-load spill: a key
// sticks to its HRW choice until that replica's backlog score exceeds
// AffinitySpillFactor × the candidate mean, then falls to the next
// replica in HRW order, with the hit and spill counters attributing
// both behaviors to the HRW-first replica.
func TestAffinitySpillEngagesAtBound(t *testing.T) {
	fakes := []*fakeBackend{{name: "a"}, {name: "b"}, {name: "c"}}
	ro := newTestRouter(t, RouterConfig{Affinity: true, AffinitySpillFactor: 2}, fakes...)
	in := affinityInputs(1)[0]

	first := servedBy(t, ro, fakes, in)
	st := ro.Stats()
	if st.Replicas[first].AffinityHits != 1 || st.AffinityRouted != 1 {
		t.Fatalf("unloaded affinity dispatch not counted as a hit: %+v", st.Replicas[first])
	}

	// Load the winner to 3× the cluster mean (scores 30, 0, 0 → mean
	// 10, bound 20): the key must spill, and the spill must be charged
	// to the overloaded HRW choice, not to the replica that caught it.
	ro.replicas[first].storeSnap(snap(30))
	spilledTo := servedBy(t, ro, fakes, in)
	if spilledTo == first {
		t.Fatalf("request stayed on a replica at 3× the mean backlog (spill bound 2×)")
	}
	st = ro.Stats()
	if got := st.Replicas[first].AffinitySpills; got != 1 {
		t.Fatalf("AffinitySpills on the HRW choice = %d, want 1", got)
	}
	if got := st.AffinitySpilled; got != 1 {
		t.Fatalf("router AffinitySpilled = %d, want 1", got)
	}
	// The spill target is deterministic too: same key, same fallback.
	if got := servedBy(t, ro, fakes, in); got != spilledTo {
		t.Fatalf("spill target flapped: %d then %d", spilledTo, got)
	}

	// Below the bound (score 30 vs mean 30 with peers at 30 → bound
	// 60) the key snaps back to its winner.
	for i := range fakes {
		ro.replicas[i].storeSnap(snap(30))
	}
	if got := servedBy(t, ro, fakes, in); got != first {
		t.Fatalf("evenly-loaded cluster routed key to %d, want its HRW choice %d", got, first)
	}
}

// TestAffinityKeylessFallsBackToLeastBacklog pins the keyless path:
// with affinity armed, a request without an input still routes least
// backlog first and moves no affinity counter.
func TestAffinityKeylessFallsBackToLeastBacklog(t *testing.T) {
	a := &fakeBackend{name: "a"}
	b := &fakeBackend{name: "b"}
	ro := newTestRouter(t, RouterConfig{Affinity: true}, a, b)
	ro.replicas[0].storeSnap(snap(12))
	ro.replicas[1].storeSnap(snap(1))

	for i := 0; i < 5; i++ {
		if _, err := ro.Submit(serve.Request{Deadline: 20 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.submits.Load(); got != 5 {
		t.Fatalf("least-backlogged replica served %d of 5 keyless requests", got)
	}
	st := ro.Stats()
	if st.AffinityRouted != 0 || st.AffinitySpilled != 0 {
		t.Fatalf("keyless requests moved affinity counters: routed=%d spilled=%d", st.AffinityRouted, st.AffinitySpilled)
	}
}

// TestAffinityRetryPrefersHRWOrder pins the retry interplay: when the
// HRW choice fails with a transport error, the retry lands on the
// key's HRW SECOND choice (not the least-backlogged survivor), so a
// rung cached during a previous spill is still the likely target.
func TestAffinityRetryPrefersHRWOrder(t *testing.T) {
	fakes := []*fakeBackend{{name: "a"}, {name: "b"}, {name: "c"}}
	ro := newTestRouter(t, RouterConfig{Affinity: true}, fakes...)
	in := affinityInputs(1)[0]

	// Discover the key's full HRW order by ejecting winners in turn.
	first := servedBy(t, ro, fakes, in)
	ro.replicas[first].mu.Lock()
	ro.replicas[first].up = false
	ro.replicas[first].mu.Unlock()
	second := servedBy(t, ro, fakes, in)
	ro.replicas[first].mu.Lock()
	ro.replicas[first].up = true
	ro.replicas[first].mu.Unlock()

	// Give the second choice a worse backlog than the third, so plain
	// least-backlog retry ordering would pick the third instead.
	for i := range fakes {
		if i != first && i != second {
			ro.replicas[i].storeSnap(snap(0, 0.001))
		}
	}
	ro.replicas[second].storeSnap(snap(5, 0.001))
	ro.replicas[first].storeSnap(snap(0, 0.001))

	fakes[first].setSubmitErr(fmt.Errorf("%w: synthetic", ErrTransport))
	pre := fakes[second].submits.Load()
	if _, err := ro.Submit(serve.Request{Input: in, Deadline: 200 * time.Millisecond}); err != nil {
		t.Fatalf("retryable failure did not recover: %v", err)
	}
	if got := fakes[second].submits.Load() - pre; got != 1 {
		t.Fatalf("retry skipped the key's HRW second choice (delta %d, want 1)", got)
	}
}

// TestHRWWeightMatchesKeyOf pins that the router keys requests with
// the exact cache.KeyOf the replicas' semantic caches use — the whole
// point of affinity routing — and that replica identities derive from
// the target string alone (stable across router instances).
func TestHRWWeightMatchesKeyOf(t *testing.T) {
	in := affinityInputs(1)[0]
	k := uint64(cache.KeyOf(in))
	idA, idB := replicaID("http://a:1"), replicaID("http://b:1")
	if idA == idB {
		t.Fatal("distinct targets hashed to the same replica identity")
	}
	if replicaID("http://a:1") != idA {
		t.Fatal("replica identity is not a pure function of the target")
	}
	if hrwWeight(k, idA) == hrwWeight(k, idB) {
		t.Fatal("one key weighted two replicas identically — no rendezvous order")
	}
	// A different key must not preserve the order of every pair with
	// probability 1; spot-check that orders differ across a few keys
	// (avalanche sanity, not a distribution test).
	ids := []uint64{replicaID("r0"), replicaID("r1"), replicaID("r2"), replicaID("r3")}
	orders := map[string]bool{}
	for _, in := range affinityInputs(16) {
		k := uint64(cache.KeyOf(in))
		best, bestW := 0, uint64(0)
		for i, id := range ids {
			if w := hrwWeight(k, id); w > bestW {
				best, bestW = i, w
			}
		}
		orders[fmt.Sprint(best)] = true
	}
	if len(orders) < 2 {
		t.Fatal("16 random keys all ranked the same replica first")
	}
}
