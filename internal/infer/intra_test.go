package infer

import (
	"runtime"
	"testing"

	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

// forceLayerSharding raises GOMAXPROCS (so the cooperative helper
// budget grants workers even on a single-CPU box) and zeroes
// nn.ShardMinOps (so the tiny test models shard), restoring both.
func forceLayerSharding(t *testing.T, procs int) {
	t.Helper()
	oldProcs := runtime.GOMAXPROCS(procs)
	oldMin := nn.ShardMinOps
	nn.ShardMinOps = 0
	t.Cleanup(func() {
		runtime.GOMAXPROCS(oldProcs)
		nn.ShardMinOps = oldMin
	})
}

// intraGridModel builds one model of the odd-shape property grid:
// input sizes that do and do not survive the pooling stages, channel
// counts and expansions that produce odd filter counts (unroll
// remainders in every kernel), and per-seed random assignments.
func intraGridModel(seed uint64, inC, inH int, expansion float64) *models.Model {
	m := models.LeNet3C1L(models.Options{
		Classes: 5, InC: inC, InH: inH, InW: inH, Expansion: expansion,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: seed,
	})
	r := tensor.NewRNG(seed ^ 0x17A7)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for i := 0; i < a.Units(); i++ {
			a.SetID(i, 1+r.Intn(3))
		}
		a.SetID(0, 1)
	}
	return m
}

// TestIntraLayerParallelMatchesSerial is the cross-worker-count
// equivalence gate for the batch-1 intra-layer sharding path: over a
// property grid of odd model shapes, a single-image random ladder
// walk (ups, downs, re-steps) must produce outputs BITWISE identical
// to the serial walk — and identical MAC accounting — at every worker
// count in {1, 2, 4, GOMAXPROCS}. It extends TestSIMDWidthInvariance
// to the new split axes: conv spatial rows, dense unit tiles and
// pooling planes, on whichever GEMM backend is active (ci.sh runs it
// under both). Run under -race this also exercises the span workers'
// disjoint-write discipline.
func TestIntraLayerParallelMatchesSerial(t *testing.T) {
	forceLayerSharding(t, 4)
	grid := []struct {
		inC, inH  int
		expansion float64
	}{
		{1, 8, 1.0},
		{3, 9, 1.3},  // odd input: pooling stages skip, odd conv rows
		{2, 12, 1.7}, // odd filter counts from the expansion
	}
	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for gi, gcase := range grid {
		m := intraGridModel(uint64(31+gi), gcase.inC, gcase.inH, gcase.expansion)
		x := tensor.New(1, gcase.inC, gcase.inH, gcase.inH)
		x.FillNormal(tensor.NewRNG(uint64(97+gi)), 0, 1)

		// The serial reference walk.
		serial := NewEngine(m.Net)
		serial.Workers = 1
		serial.Reset(x)

		engines := make([]*Engine, len(workerCounts))
		for i, w := range workerCounts {
			engines[i] = NewEngine(m.Net)
			engines[i].Workers = w
			defer engines[i].Close()
			engines[i].Reset(x)
		}

		// A fixed walk covering first-step, step-up, step-down and
		// re-step transitions (the nNew==0 copy-only paths included).
		walk := []int{1, 2, 3, 1, 3, 2, 2, 3}
		for step, s := range walk {
			wantOut, wantMACs, err := serial.Step(s)
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range workerCounts {
				gotOut, gotMACs, err := engines[i].Step(s)
				if err != nil {
					t.Fatal(err)
				}
				if gotMACs != wantMACs {
					t.Fatalf("grid %d step %d→%d workers=%d: %d MACs, serial %d",
						gi, step, s, w, gotMACs, wantMACs)
				}
				gd, wd := gotOut.Data(), wantOut.Data()
				for e := range gd {
					if gd[e] != wd[e] {
						t.Fatalf("grid %d step %d→%d workers=%d: output[%d] rounds differently: %v vs serial %v",
							gi, step, s, w, e, gd[e], wd[e])
					}
				}
			}
		}
		for i := range engines {
			if engines[i].TotalMACs() != serial.TotalMACs() {
				t.Fatalf("grid %d workers=%d: total MACs %d, serial %d",
					gi, workerCounts[i], engines[i].TotalMACs(), serial.TotalMACs())
			}
		}
	}
}

// TestIntraLayerShardingMatchesAudit re-runs a batch-1 sharded walk
// with the audit cross-check on: every sharded step is compared
// against a from-scratch forward, so a span that silently skipped or
// doubled work would panic here.
func TestIntraLayerShardingMatchesAudit(t *testing.T) {
	forceLayerSharding(t, 4)
	m := intraGridModel(71, 2, 8, 1.5)
	x := tensor.New(1, 2, 8, 8)
	x.FillNormal(tensor.NewRNG(72), 0, 1)
	e := NewEngine(m.Net)
	e.Workers = 4
	e.Audit = true
	defer e.Close()
	e.Reset(x)
	for _, s := range []int{1, 3, 2, 3, 1, 2} {
		if _, _, err := e.Step(s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLayerShardWorkersReleased pins the lifecycle of the intra-layer
// shard workers: Close returns only after every persistent worker has
// exited, so repeated create/shard/Close cycles hold the process
// goroutine count steady — no leak per served batch-1 request.
func TestLayerShardWorkersReleased(t *testing.T) {
	forceLayerSharding(t, 4)
	m := intraGridModel(81, 1, 8, 1.2)
	x := tensor.New(1, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(82), 0, 1)

	cycle := func() {
		e := NewEngine(m.Net)
		e.Workers = 4
		e.Reset(x)
		for s := 1; s <= 3; s++ {
			e.MustStep(s)
		}
		e.Close()
	}
	cycle() // first cycle settles one-time goroutines (tensor arena workers)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		cycle()
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("shard workers leaked across Close cycles: %d goroutines before, %d after", before, after)
	}
}
