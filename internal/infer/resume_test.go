package infer

import (
	"encoding/json"
	"math"
	"runtime"
	"testing"

	"steppingnet/internal/tensor"
)

// TestResumeMatchesColdWalk is the cross-request resume-equivalence
// gate, the companion of TestIntraLayerParallelMatchesSerial: over the
// same property grid of odd model shapes, exporting the ladder state
// at rung k, importing it into a FRESH engine and climbing k+1..n must
// produce logits BITWISE identical to a cold walk to each rung — at
// every worker count in {1, 2, 4, GOMAXPROCS}, on whichever GEMM
// backend is active (ci.sh runs it under both). It also pins the exact
// MAC accounting of resumed walks: the resumed rungs themselves cost 0
// new MACs (TotalMACs restarts at the import), and each climbed step
// executes exactly the MACs the cold walk's same step executed.
func TestResumeMatchesColdWalk(t *testing.T) {
	forceLayerSharding(t, 4)
	grid := []struct {
		inC, inH  int
		expansion float64
	}{
		{1, 8, 1.0},
		{3, 9, 1.3},  // odd input: pooling stages skip, odd conv rows
		{2, 12, 1.7}, // odd filter counts from the expansion
	}
	const n = 3 // subnets in the grid models
	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for gi, gcase := range grid {
		m := intraGridModel(uint64(131+gi), gcase.inC, gcase.inH, gcase.expansion)
		x := tensor.New(1, gcase.inC, gcase.inH, gcase.inH)
		x.FillNormal(tensor.NewRNG(uint64(197+gi)), 0, 1)

		// Cold reference: serial walk 1..n, recording each rung's
		// logits and per-step MACs.
		cold := NewEngine(m.Net)
		cold.Workers = 1
		cold.Reset(x)
		coldOut := make([][]float64, n+1)
		coldMACs := make([]int64, n+1)
		states := make([]*LadderState, n+1)
		for s := 1; s <= n; s++ {
			out, macs, err := cold.Step(s)
			if err != nil {
				t.Fatal(err)
			}
			coldOut[s] = append([]float64(nil), out.Data()...)
			coldMACs[s] = macs

			// Export at every rung along the way: states snapshot the
			// walk without perturbing it (the cold walk keeps producing
			// the same logits after each export).
			states[s], err = cold.ExportState(0)
			if err != nil {
				t.Fatal(err)
			}
			if states[s].Subnet != s {
				t.Fatalf("grid %d: exported subnet %d at rung %d", gi, states[s].Subnet, s)
			}
		}
		cold.Close()

		// checkResume imports st at every worker count and climbs to
		// the top: bitwise logits and exact MACs per climbed step,
		// regardless of how st was produced.
		checkResume := func(label string, st *LadderState) {
			t.Helper()
			s := st.Subnet
			for _, w := range workerCounts {
				r := NewEngine(m.Net)
				r.Workers = w
				if err := r.ImportState(x, st); err != nil {
					t.Fatal(err)
				}
				if r.Current() != s {
					t.Fatalf("grid %d %s rung %d workers=%d: Current()=%d after import", gi, label, s, w, r.Current())
				}
				if got := r.Output().Data(); len(got) != len(coldOut[s]) {
					t.Fatalf("grid %d %s rung %d: imported output length %d, cold %d", gi, label, s, len(got), len(coldOut[s]))
				}
				for e, v := range r.Output().Data() {
					if v != coldOut[s][e] {
						t.Fatalf("grid %d %s rung %d workers=%d: imported logit[%d]=%v, cold %v", gi, label, s, w, e, v, coldOut[s][e])
					}
				}
				var climbed int64
				for up := s + 1; up <= n; up++ {
					out, macs, err := r.Step(up)
					if err != nil {
						t.Fatal(err)
					}
					if macs != coldMACs[up] {
						t.Fatalf("grid %d %s resume@%d→%d workers=%d: %d MACs, cold step %d",
							gi, label, s, up, w, macs, coldMACs[up])
					}
					climbed += macs
					for e, v := range out.Data() {
						if v != coldOut[up][e] {
							t.Fatalf("grid %d %s resume@%d→%d workers=%d: logit[%d] rounds differently: %v vs cold %v",
								gi, label, s, up, w, e, v, coldOut[up][e])
						}
					}
				}
				// Resumed rungs cost 0 new MACs: the engine's meter
				// holds exactly the climbed steps' work.
				if r.TotalMACs() != climbed {
					t.Fatalf("grid %d %s resume@%d workers=%d: TotalMACs %d, climbed steps sum %d",
						gi, label, s, w, r.TotalMACs(), climbed)
				}
				r.Close()
			}
		}

		// Resume from every rung: the directly exported state, the
		// same state round-tripped through its JSON wire form (the
		// cluster warming path), and — below the top rung — a
		// SPECULATED state: imported, climbed one rung by a scratch
		// engine (the idle-window pre-climb op), and re-exported. All
		// three must be indistinguishable to the resumer.
		for s := 1; s <= n; s++ {
			checkResume("direct", states[s])
			checkResume("wire", wireRoundTrip(t, states[s]))
			if s < n {
				spec := NewEngine(m.Net)
				spec.Workers = 1
				if err := spec.ImportState(x, states[s]); err != nil {
					t.Fatal(err)
				}
				spec.MustStep(s + 1)
				specSt, err := spec.ExportState(0)
				if err != nil {
					t.Fatal(err)
				}
				spec.Close()
				checkResume("speculated", specSt)
				checkResume("speculated-wire", wireRoundTrip(t, specSt))
			}
		}
	}
}

// wireRoundTrip pushes a state through its portable wire form and a
// real JSON encode/decode — the exact path a warmed cache entry
// travels between replicas — and returns the rebuilt state. Bitwise
// fidelity is asserted by the caller's resume check.
func wireRoundTrip(t *testing.T, st *LadderState) *LadderState {
	t.Helper()
	w, err := st.Wire()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back WireState
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := back.State()
	if err != nil {
		t.Fatal(err)
	}
	return rebuilt
}

// TestWireStateRejectsMalformed pins the wire-form validation: a
// payload whose shape disagrees with its data, claims a multi-image
// batch, or carries a non-positive subnet must be rejected by State
// before it can reach an engine; Wire refuses non-finite values
// (JSON cannot carry them).
func TestWireStateRejectsMalformed(t *testing.T) {
	m := intraGridModel(171, 1, 8, 1.0)
	x := tensor.New(1, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(271), 0, 1)
	e := NewEngine(m.Net)
	e.Workers = 1
	defer e.Close()
	e.Reset(x)
	e.MustStep(2)
	st, err := e.ExportState(0)
	if err != nil {
		t.Fatal(err)
	}
	good, err := st.Wire()
	if err != nil {
		t.Fatal(err)
	}

	bad := *good
	bad.Subnet = 0
	if _, err := bad.State(); err == nil {
		t.Fatal("subnet 0 wire state should be rejected")
	}
	bad = *good
	bad.In = []int{2, 1, 8, 8}
	if _, err := bad.State(); err == nil {
		t.Fatal("multi-image wire state should be rejected")
	}
	bad = *good
	bad.Layers = append([]WireTensor(nil), good.Layers...)
	bad.Layers[0] = WireTensor{Shape: []int{1, 4}, Data: []float64{1, 2, 3}}
	if _, err := bad.State(); err == nil {
		t.Fatal("shape/data mismatch should be rejected")
	}
	bad = *good
	bad.Layers = append([]WireTensor(nil), good.Layers...)
	bad.Layers[0] = WireTensor{Shape: []int{2, 2}, Data: []float64{1, 2, 3, 4}}
	if _, err := bad.State(); err == nil {
		t.Fatal("non-batch-1 wire layer should be rejected")
	}
	bad = *good
	bad.Layers = nil
	if _, err := bad.State(); err == nil {
		t.Fatal("layerless wire state should be rejected")
	}

	// Wire refuses non-finite values.
	poisoned := *st
	poisoned.Layers = append([]*tensor.Tensor(nil), st.Layers...)
	pt := tensor.New(poisoned.Layers[0].Shape()...)
	copy(pt.Data(), poisoned.Layers[0].Data())
	pt.Data()[0] = math.NaN()
	poisoned.Layers[0] = pt
	if _, err := poisoned.Wire(); err == nil {
		t.Fatal("Wire should reject NaN state")
	}
}

// TestExportRowFromBatchedWalk pins the serving-tier export path: a
// multi-image batch walks to rung k together, each row's state is
// exported individually, and resuming any row in a fresh batch-1
// engine matches that row's own cold batch-1 walk bitwise — so a
// batched server can cache every request of a batch after one walk.
func TestExportRowFromBatchedWalk(t *testing.T) {
	const batch, n = 3, 3
	m := intraGridModel(151, 2, 8, 1.4)
	xb := tensor.New(batch, 2, 8, 8)
	xb.FillNormal(tensor.NewRNG(251), 0, 1)

	be := NewEngine(m.Net)
	be.Workers = 2
	defer be.Close()
	be.Reset(xb)
	const k = 2
	for s := 1; s <= k; s++ {
		be.MustStep(s)
	}

	rowLen := xb.Len() / batch
	for row := 0; row < batch; row++ {
		st, err := be.ExportState(row)
		if err != nil {
			t.Fatal(err)
		}
		x1 := tensor.New(1, 2, 8, 8)
		copy(x1.Data(), xb.Data()[row*rowLen:(row+1)*rowLen])

		coldE := NewEngine(m.Net)
		coldE.Workers = 1
		coldE.Reset(x1)
		var coldTop []float64
		for s := 1; s <= n; s++ {
			out, _, err := coldE.Step(s)
			if err != nil {
				t.Fatal(err)
			}
			if s == k {
				for e, v := range st.Layers[len(st.Layers)-1].Data() {
					if v != out.Data()[e] {
						t.Fatalf("row %d: exported rung-%d logit[%d]=%v, cold %v", row, k, e, st.Layers[len(st.Layers)-1].Data()[e], out.Data()[e])
					}
				}
			}
			if s == n {
				coldTop = append([]float64(nil), out.Data()...)
			}
		}

		r := NewEngine(m.Net)
		r.Workers = 1
		if err := r.ImportState(x1, st); err != nil {
			t.Fatal(err)
		}
		out, _, err := r.Step(n)
		if err != nil {
			t.Fatal(err)
		}
		for e, v := range out.Data() {
			if v != coldTop[e] {
				t.Fatalf("row %d resumed logit[%d]=%v, cold %v", row, e, v, coldTop[e])
			}
		}
	}
}

// TestImportStateRejectsMismatch pins the structural validation of
// ImportState: nil states, subnet 0, wrong layer counts, multi-image
// inputs, input-shape mismatches and non-batch-1 layer tensors are all
// rejected with an error before the engine is touched, and ExportState
// refuses to snapshot an unwalked engine or an out-of-range row.
func TestImportStateRejectsMismatch(t *testing.T) {
	m := intraGridModel(161, 1, 8, 1.0)
	x := tensor.New(1, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(261), 0, 1)
	e := NewEngine(m.Net)
	e.Workers = 1
	e.Reset(x)

	if _, err := e.ExportState(0); err == nil {
		t.Fatal("ExportState before any Step should fail")
	}
	e.MustStep(2)
	if _, err := e.ExportState(1); err == nil {
		t.Fatal("ExportState row out of range should fail")
	}
	st, err := e.ExportState(0)
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() *Engine {
		r := NewEngine(m.Net)
		r.Workers = 1
		return r
	}
	if err := fresh().ImportState(x, nil); err == nil {
		t.Fatal("nil state should be rejected")
	}
	bad := *st
	bad.Subnet = 0
	if err := fresh().ImportState(x, &bad); err == nil {
		t.Fatal("subnet 0 should be rejected")
	}
	bad = *st
	bad.Layers = st.Layers[:len(st.Layers)-1]
	if err := fresh().ImportState(x, &bad); err == nil {
		t.Fatal("wrong layer count should be rejected")
	}
	bad = *st
	bad.Layers = append([]*tensor.Tensor(nil), st.Layers...)
	bad.Layers[0] = nil
	if err := fresh().ImportState(x, &bad); err == nil {
		t.Fatal("nil layer tensor should be rejected")
	}
	bad = *st
	bad.Layers = append([]*tensor.Tensor(nil), st.Layers...)
	bad.Layers[1] = tensor.New(2, bad.Layers[1].Len())
	if err := fresh().ImportState(x, &bad); err == nil {
		t.Fatal("non-batch-1 layer tensor should be rejected")
	}
	x2 := tensor.New(2, 1, 8, 8)
	if err := fresh().ImportState(x2, st); err == nil {
		t.Fatal("multi-image input should be rejected")
	}
	xw := tensor.New(1, 1, 8, 9)
	if err := fresh().ImportState(xw, st); err == nil {
		t.Fatal("input shape mismatch should be rejected")
	}
	if err := fresh().ImportState(nil, st); err == nil {
		t.Fatal("nil input should be rejected")
	}

	// The state itself is still importable after all the rejections
	// (they must not have mutated it), and a valid import still works.
	r := fresh()
	if err := r.ImportState(x, st); err != nil {
		t.Fatal(err)
	}
	if r.Current() != 2 {
		t.Fatalf("Current()=%d after valid import", r.Current())
	}
}

// TestResumedClimbZeroAlloc pins that the semantic cache does not
// cost the hot walk its zero-allocation budget: at steady state (pool
// warm), a full import-and-climb cycle — ImportState seeding every
// layer from the recycle pool, then stepping to the top — allocates
// nothing, exactly like the cold walk the engine benchmarks gate.
func TestResumedClimbZeroAlloc(t *testing.T) {
	m := buildModel(61)
	x := tensor.New(1, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(62), 0, 1)
	e := NewEngine(m.Net)
	e.Workers = 1
	defer e.Close()
	e.Reset(x)
	e.MustStep(1)
	e.MustStep(2)
	st, err := e.ExportState(0)
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		if err := e.ImportState(x, st); err != nil {
			t.Fatal(err)
		}
		e.MustStep(3)
	}
	for i := 0; i < 3; i++ {
		cycle() // warm the recycle pool to steady state
	}
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Fatalf("resumed climb allocates %v times per run, want 0", allocs)
	}
}
