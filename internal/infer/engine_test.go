package infer

import (
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

// buildModel returns a LeNet-3C1L with a random legal assignment
// across 3 subnets.
func buildModel(seed uint64) *models.Model {
	m := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: seed,
	})
	r := tensor.NewRNG(seed ^ 0xFACE)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for i := 0; i < a.Units(); i++ {
			a.SetID(i, 1+r.Intn(3))
		}
		// Guard: keep unit 0 in subnet 1 so every subnet has signal.
		a.SetID(0, 1)
	}
	return m
}

func input(seed uint64) *tensor.Tensor {
	x := tensor.New(2, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(seed), 0, 1)
	return x
}

func TestStepEqualsFullForwardAscending(t *testing.T) {
	m := buildModel(1)
	e := NewEngine(m.Net)
	e.Audit = true
	e.Reset(input(2))
	for s := 1; s <= 3; s++ {
		out, _, err := e.Step(s)
		if err != nil {
			t.Fatal(err)
		}
		want := m.Net.Forward(input(2), nn.Eval(s))
		if !tensor.Equal(out, want, 1e-9) {
			t.Fatalf("subnet %d mismatch", s)
		}
	}
}

func TestStepDownIsFreeOnBackbone(t *testing.T) {
	m := buildModel(3)
	e := NewEngine(m.Net)
	e.Reset(input(4))
	e.MustStep(3)
	headMACs := m.Head.MACs(1)
	_, macs := e.MustStep(1)
	if macs != headMACs {
		t.Fatalf("step down cost %d MACs, want head-only %d", macs, headMACs)
	}
}

func TestStepUpCostsExactlyTheDelta(t *testing.T) {
	m := buildModel(5)
	e := NewEngine(m.Net)
	e.Reset(input(6))
	backbone := func(s int) int64 {
		var total int64
		for _, mv := range m.Movable {
			total += mv.MACs(s)
		}
		return total
	}
	_, m1 := e.MustStep(1)
	if want := backbone(1) + m.Head.MACs(1); m1 != want {
		t.Fatalf("first step %d want %d", m1, want)
	}
	_, m2 := e.MustStep(2)
	if want := backbone(2) - backbone(1) + m.Head.MACs(2); m2 != want {
		t.Fatalf("step 1→2 cost %d want %d", m2, want)
	}
	_, m3 := e.MustStep(3)
	if want := backbone(3) - backbone(2) + m.Head.MACs(3); m3 != want {
		t.Fatalf("step 2→3 cost %d want %d", m3, want)
	}
}

// Property: any random walk over subnets produces outputs identical
// to from-scratch forwards (the audit invariant).
func TestRandomSubnetWalkMatchesFullForward(t *testing.T) {
	f := func(seed uint64) bool {
		m := buildModel(seed)
		x := input(seed ^ 0xBEEF)
		e := NewEngine(m.Net)
		e.Reset(x)
		r := tensor.NewRNG(seed ^ 0x1234)
		for step := 0; step < 8; step++ {
			s := 1 + r.Intn(3)
			out, _, err := e.Step(s)
			if err != nil {
				return false
			}
			want := m.Net.Forward(x, nn.Eval(s))
			if !tensor.Equal(out, want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalMACsNeverExceedsFullRecompute(t *testing.T) {
	// Stepping 1→2→3 must not cost more than running subnet 3 from
	// scratch plus the two extra head recomputes.
	m := buildModel(7)
	e := NewEngine(m.Net)
	e.Reset(input(8))
	e.MustStep(1)
	e.MustStep(2)
	e.MustStep(3)
	full := m.Net.MACs(3)
	extraHeads := m.Head.MACs(1) + m.Head.MACs(2)
	if e.TotalMACs() > full+extraHeads {
		t.Fatalf("incremental total %d exceeds full %d + heads %d", e.TotalMACs(), full, extraHeads)
	}
}

func TestStepBeforeResetFails(t *testing.T) {
	e := NewEngine(buildModel(9).Net)
	if _, _, err := e.Step(1); err == nil {
		t.Fatal("want error before Reset")
	}
	e.Reset(input(10))
	if _, _, err := e.Step(0); err == nil {
		t.Fatal("want error for subnet 0")
	}
}

func TestResetClearsState(t *testing.T) {
	m := buildModel(11)
	e := NewEngine(m.Net)
	e.Reset(input(12))
	e.MustStep(2)
	if e.Current() != 2 || e.TotalMACs() == 0 {
		t.Fatal("state not tracked")
	}
	e.Reset(input(13))
	if e.Current() != 0 || e.TotalMACs() != 0 {
		t.Fatal("Reset must clear state")
	}
	out, _ := e.MustStep(1)
	want := m.Net.Forward(input(13), nn.Eval(1))
	if !tensor.Equal(out, want, 1e-9) {
		t.Fatal("post-reset output wrong")
	}
}

func TestRepeatedStepSameSubnetChargesHeadOnly(t *testing.T) {
	m := buildModel(14)
	e := NewEngine(m.Net)
	e.Reset(input(15))
	e.MustStep(2)
	_, macs := e.MustStep(2)
	if macs != m.Head.MACs(2) {
		t.Fatalf("re-step cost %d, want head-only %d", macs, m.Head.MACs(2))
	}
}

func TestCalibrateSteps(t *testing.T) {
	m := buildModel(51)
	e := NewEngine(m.Net)
	defer e.Close()
	times, err := e.CalibrateSteps(input(52), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("want 3 step times, got %d", len(times))
	}
	for s, d := range times {
		if d <= 0 {
			t.Fatalf("step %d calibrated to non-positive %v", s+1, d)
		}
	}
	// Calibration leaves the engine usable and at the top of the ladder.
	if e.Current() != 3 {
		t.Fatalf("engine at subnet %d after calibration, want 3", e.Current())
	}
	if _, _, err := e.Step(1); err != nil {
		t.Fatalf("engine unusable after calibration: %v", err)
	}
	if _, err := e.CalibrateSteps(input(53), 0, 1); err == nil {
		t.Fatal("want error for n < 1")
	}
}

// TestBatchParallelMatchesSerial walks serial and sharded engines in
// lockstep over random subnet sequences: outputs and MAC accounting
// must be identical, and with Audit every step is also cross-checked
// against a from-scratch forward. Run under -race this exercises the
// worker fan-out for data races even on a single-CPU machine.
func TestBatchParallelMatchesSerial(t *testing.T) {
	m := buildModel(21)
	x := tensor.New(8, 1, 8, 8) // batch large enough to shard 4 ways
	x.FillNormal(tensor.NewRNG(22), 0, 1)

	serial := NewEngine(m.Net)
	serial.Workers = 1
	serial.Audit = true
	parallel := NewEngine(m.Net)
	parallel.Workers = 4
	parallel.Audit = true
	defer parallel.Close()

	serial.Reset(x)
	parallel.Reset(x)
	r := tensor.NewRNG(23)
	for step := 0; step < 10; step++ {
		s := 1 + r.Intn(3)
		wantOut, wantMACs, err := serial.Step(s)
		if err != nil {
			t.Fatal(err)
		}
		gotOut, gotMACs, err := parallel.Step(s)
		if err != nil {
			t.Fatal(err)
		}
		if gotMACs != wantMACs {
			t.Fatalf("step %d to subnet %d: parallel %d MACs, serial %d", step, s, gotMACs, wantMACs)
		}
		if !tensor.Equal(gotOut, wantOut, 1e-12) {
			t.Fatalf("step %d to subnet %d: parallel output diverges", step, s)
		}
	}
	if serial.TotalMACs() != parallel.TotalMACs() {
		t.Fatalf("total MACs diverge: %d vs %d", serial.TotalMACs(), parallel.TotalMACs())
	}
}

// TestBatchParallelOddShards covers shard boundaries that do not
// divide the batch evenly.
func TestBatchParallelOddShards(t *testing.T) {
	m := buildModel(31)
	x := tensor.New(7, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(32), 0, 1)
	e := NewEngine(m.Net)
	e.Workers = 3
	e.Audit = true // every step checked against the full forward
	defer e.Close()
	e.Reset(x)
	for _, s := range []int{2, 3, 1, 3} {
		if _, _, err := e.Step(s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStepSteadyStateAllocs pins the zero-allocation claim for the
// anytime walk: once the pools and the engine-owned shard state are
// warm, stepping allocates nothing at all — no activation buffers,
// no contexts, no shard bookkeeping — on the serial, the
// batch-parallel (image-sharding) AND the batch-1 intra-layer
// (layer-sharding) paths. Any allocation here is a regression (a
// dropped Put, an escaping context, per-step shard slices, a
// zero-width pool Get).
func TestStepSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		batch   int
	}{
		{"serial", 1, 8},
		{"parallel", 4, 8},
		{"intra", 4, 1}, // batch-1: cooperative layer sharding
	} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.batch == 1 {
				// Force the layer-sharded path even on a single-CPU box:
				// helpers come from the GOMAXPROCS-1 budget, and the tiny
				// test model sits below the default shard-worthiness bar.
				oldProcs := runtime.GOMAXPROCS(4)
				oldMin := nn.ShardMinOps
				nn.ShardMinOps = 0
				defer func() {
					runtime.GOMAXPROCS(oldProcs)
					nn.ShardMinOps = oldMin
				}()
			}
			m := buildModel(41)
			x := tensor.New(tc.batch, 1, 8, 8)
			x.FillNormal(tensor.NewRNG(42), 0, 1)
			e := NewEngine(m.Net)
			e.Workers = tc.workers
			defer e.Close()
			walk := func() {
				e.Reset(x)
				for s := 1; s <= 3; s++ {
					e.MustStep(s)
				}
				e.MustStep(1) // step down: the nNew==0 fast paths
			}
			for i := 0; i < 3; i++ {
				walk() // warm pools, shard state and workers
			}
			if allocs := testing.AllocsPerRun(20, walk); allocs != 0 {
				t.Fatalf("steady-state %s walk allocates %v times per run, want 0", tc.name, allocs)
			}
		})
	}
}

// TestStepTimerObserves pins the live-timing hook the serving layer's
// calibration refresh feeds on: an installed StepTimer sees every
// successful Step with the right subnet and row count and a positive
// duration — and, critically, keeps the walk zero-alloc (the hook
// runs inside the steady-state serving path).
func TestStepTimerObserves(t *testing.T) {
	m := buildModel(77)
	x := tensor.New(4, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(78), 0, 1)
	e := NewEngine(m.Net)
	e.Workers = 1
	defer e.Close()

	type obs struct {
		subnet, rows int
		d            time.Duration
	}
	seen := make([]obs, 0, 16)
	e.StepTimer = func(subnet, rows int, d time.Duration) {
		seen = append(seen, obs{subnet, rows, d})
	}
	e.Reset(x)
	for s := 1; s <= 3; s++ {
		e.MustStep(s)
	}
	if len(seen) != 3 {
		t.Fatalf("timer saw %d steps, want 3", len(seen))
	}
	for i, o := range seen {
		if o.subnet != i+1 || o.rows != 4 {
			t.Fatalf("observation %d = %+v, want subnet %d rows 4", i, o, i+1)
		}
		if o.d <= 0 {
			t.Fatalf("observation %d has non-positive duration %v", i, o.d)
		}
	}
	// A failed Step must not be observed (nothing ran).
	if _, _, err := e.Step(0); err == nil {
		t.Fatal("Step(0) must fail")
	}
	if len(seen) != 3 {
		t.Fatalf("timer saw a failed step: %d observations", len(seen))
	}

	// The hook must not cost the walk its zero-alloc property.
	e.StepTimer = func(subnet, rows int, d time.Duration) {}
	walk := func() {
		e.Reset(x)
		for s := 1; s <= 3; s++ {
			e.MustStep(s)
		}
	}
	for i := 0; i < 3; i++ {
		walk()
	}
	if allocs := testing.AllocsPerRun(20, walk); allocs != 0 {
		t.Fatalf("walk with StepTimer installed allocates %v times per run, want 0", allocs)
	}
}
