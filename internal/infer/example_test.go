package infer_test

import (
	"fmt"

	"steppingnet/internal/infer"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

// ExampleEngine_Step walks one input up the subnet ladder, paying only
// the incremental MACs each step adds — the paper's anytime property.
// MAC counts are integers derived from the (seeded, deterministic)
// unit→subnet assignment, so the output is stable.
func ExampleEngine_Step() {
	m := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: 1,
	})
	// Spread the units over 3 subnets (normally the construction
	// algorithm in internal/core does this under MAC budgets).
	r := tensor.NewRNG(7)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for u := 1; u < a.Units(); u++ {
			a.SetID(u, 1+r.Intn(3))
		}
	}

	x := tensor.New(1, 1, 8, 8)
	x.FillNormal(tensor.NewRNG(2), 0, 1)

	e := infer.NewEngine(m.Net)
	defer e.Close()
	e.Reset(x)
	for s := 1; s <= 3; s++ {
		_, macs, err := e.Step(s)
		if err != nil {
			fmt.Println("step failed:", err)
			return
		}
		fmt.Printf("subnet %d: +%d MACs\n", s, macs)
	}
	full := m.Net.MACs(3)
	fmt.Printf("walk total %d MACs vs %d from scratch at subnet 3\n", e.TotalMACs(), full)
	fmt.Printf("incremental walk cheaper than 3 full forwards: %v\n",
		e.TotalMACs() < m.Net.MACs(1)+m.Net.MACs(2)+full)
	// Output:
	// subnet 1: +10864 MACs
	// subnet 2: +15380 MACs
	// subnet 3: +28704 MACs
	// walk total 54948 MACs vs 54768 from scratch at subnet 3
	// incremental walk cheaper than 3 full forwards: true
}
