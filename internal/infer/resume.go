package infer

import (
	"fmt"

	"steppingnet/internal/tensor"
)

// LadderState is a portable, immutable snapshot of one image's ladder
// walk: the per-layer activations the engine had cached when the
// snapshot was taken, plus the subnet they represent. It is the
// cross-request extension of the within-request incremental property —
// a fresh engine seeded with a LadderState via ImportState continues
// the walk exactly where the exporting engine stood, producing logits
// BITWISE identical to a cold walk to the same rung (pinned by
// TestResumeMatchesColdWalk on both GEMM backends at every worker
// count). The serving tier's semantic result cache (internal/serve/
// cache) stores one per cached input.
//
// All tensors in a LadderState are private batch-1 copies: they alias
// neither the exporting engine's pool-owned cache nor any importing
// engine's buffers, so a state may be shared by concurrent readers and
// must never be mutated after ExportState returns.
type LadderState struct {
	// Subnet is the rung the snapshot represents (≥ 1).
	Subnet int
	// In is the shape of the input batch row the state was exported
	// from, with the batch dimension normalized to 1. ImportState
	// rejects inputs of any other shape — resuming a walk under a
	// different input geometry would silently corrupt the cache reuse.
	In []int
	// Layers holds one batch-1 copy of each layer's cached output, in
	// network layer order.
	Layers []*tensor.Tensor
}

// Bytes reports the approximate heap footprint of the state's tensor
// data in bytes (8 per float64 element, input shape and headers
// ignored). The serving cache uses it to enforce its memory bound.
func (st *LadderState) Bytes() int64 {
	if st == nil {
		return 0
	}
	n := int64(0)
	for _, t := range st.Layers {
		if t != nil {
			n += int64(t.Len()) * 8
		}
	}
	return n
}

// ExportState snapshots row `row` of the engine's current walk into a
// self-contained LadderState. The engine must have stepped at least
// once since Reset (there is nothing to snapshot at subnet 0). The
// returned state holds freshly allocated copies — it stays valid and
// immutable across subsequent Steps, Resets, and engine lifetimes,
// which is what lets a cache hand one state to many readers.
//
// Exporting a single row of a multi-image batch is the serving-tier
// use: every row of a batch walks to the same rung together, so each
// request's state can be cached individually after a batched walk.
func (e *Engine) ExportState(row int) (*LadderState, error) {
	if e.cur < 1 {
		return nil, fmt.Errorf("infer: ExportState before any Step (subnet 0)")
	}
	batch := e.input.Dim(0)
	if row < 0 || row >= batch {
		return nil, fmt.Errorf("infer: ExportState row %d out of range [0,%d)", row, batch)
	}
	in := append([]int(nil), e.input.Shape()...)
	in[0] = 1
	st := &LadderState{
		Subnet: e.cur,
		In:     in,
		Layers: make([]*tensor.Tensor, len(e.cache)),
	}
	for i, c := range e.cache {
		if c == nil {
			return nil, fmt.Errorf("infer: ExportState found nil cache for layer %d", i)
		}
		shape := append([]int(nil), c.Shape()...)
		shape[0] = 1
		t := tensor.New(shape...)
		rowLen := c.Len() / batch
		copy(t.Data(), c.Data()[row*rowLen:(row+1)*rowLen])
		st.Layers[i] = t
	}
	return st, nil
}

// ImportState seeds the engine from a previously exported LadderState:
// after it returns, the engine behaves exactly as if it had been Reset
// to x and walked to st.Subnet — Current() reports st.Subnet, the next
// Step(s) with s > st.Subnet computes only the newly activated units,
// and the resulting logits are bitwise identical to a cold walk (the
// resume-equivalence contract). TotalMACs restarts at 0: resumed rungs
// cost zero new MACs by construction, and the counter meters only work
// this engine actually executes.
//
// x must be the same single-image input the state was exported from
// (batch 1, shape equal to st.In); the state must structurally match
// the engine's network (one batch-1 tensor per layer, subnet ≥ 1).
// Violations are rejected with an error before any engine mutation.
// The state itself is copied into pool-owned buffers, never adopted,
// so the caller's state remains shareable and immutable.
func (e *Engine) ImportState(x *tensor.Tensor, st *LadderState) error {
	if st == nil {
		return fmt.Errorf("infer: ImportState with nil state")
	}
	if st.Subnet < 1 {
		return fmt.Errorf("infer: ImportState subnet %d out of range", st.Subnet)
	}
	if len(st.Layers) != len(e.cache) {
		return fmt.Errorf("infer: ImportState layer count %d, network has %d", len(st.Layers), len(e.cache))
	}
	if x == nil || x.Rank() == 0 || x.Dim(0) != 1 {
		return fmt.Errorf("infer: ImportState input must be a single-image batch")
	}
	if len(st.In) != x.Rank() {
		return fmt.Errorf("infer: ImportState input rank %d, state expects %d", x.Rank(), len(st.In))
	}
	for i, d := range st.In {
		if x.Dim(i) != d {
			return fmt.Errorf("infer: ImportState input shape %v, state expects %v", x.Shape(), st.In)
		}
	}
	for i, t := range st.Layers {
		if t == nil || t.Rank() == 0 || t.Dim(0) != 1 {
			return fmt.Errorf("infer: ImportState layer %d state is not a batch-1 tensor", i)
		}
	}
	e.Reset(x)
	for i, t := range st.Layers {
		c := e.pool.GetUninit(t.Shape()...)
		copy(c.Data(), t.Data())
		e.cache[i] = c
	}
	e.cur = st.Subnet
	return nil
}

// Output returns the engine's current network output (the last
// layer's cached activation) without stepping: after Step(s) it is the
// subnet-s logits, after ImportState it is the resumed rung's logits.
// Nil before any Step or import. The tensor is engine-owned and valid
// until the next Step or Reset, like Step's return value.
func (e *Engine) Output() *tensor.Tensor {
	return e.cache[len(e.cache)-1]
}
