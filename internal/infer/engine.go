// Package infer provides the anytime-inference engine that realizes
// the paper's deployment story: run a small subnet for a fast
// preliminary decision, then — whenever resources become available —
// "enhance the inference accuracy by executing further MAC
// operations" without recomputing what smaller subnets already
// produced (§I, §II). Conversely, when resources shrink, switching
// down to a smaller subnet costs (almost) nothing because the small
// subnet's activations are a subset of the cached ones.
package infer

import (
	"fmt"
	"runtime"
	"sync"

	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

// Engine executes one input batch through a masked network
// incrementally, caching per-layer activations between subnet
// switches. Activations and temporaries are drawn from internal
// buffer pools, so steady-state stepping allocates (almost) nothing;
// batches large enough to shard are fanned out across GOMAXPROCS
// worker goroutines, each with its own pool (every layer treats the
// batch dimension independently, so sharding preserves the
// incremental-reuse semantics exactly).
type Engine struct {
	net   *nn.Network
	input *tensor.Tensor
	cache []*tensor.Tensor // output of each layer at the current subnet
	cur   int              // current subnet (0 = nothing computed yet)

	// Audit, when true, cross-checks every Step against a
	// from-scratch forward pass and panics on divergence — the
	// runtime enforcement of the incremental property. Intended for
	// tests and demos, not hot paths.
	Audit bool

	// Workers caps the batch-parallel fan-out; 0 means GOMAXPROCS.
	// Set 1 to force the serial path.
	Workers int

	pool   *tensor.Pool   // owner-goroutine scratch; backs the cache tensors
	wpools []*tensor.Pool // per-worker scratch for the sharded path

	totalMACs int64
}

// NewEngine wraps a network. The network's layers must implement
// nn.Incremental or be masked RuleShared layers (which are recomputed
// per step) or parameter-free layers.
func NewEngine(net *nn.Network) *Engine {
	return &Engine{
		net:   net,
		cache: make([]*tensor.Tensor, len(net.Layers())),
		pool:  tensor.NewPool(),
	}
}

// Reset installs a new input batch and clears all cached activations
// (recycling their buffers for the next walk).
func (e *Engine) Reset(x *tensor.Tensor) {
	e.input = x
	for i := range e.cache {
		e.pool.Put(e.cache[i])
		e.cache[i] = nil
	}
	e.cur = 0
	e.totalMACs = 0
}

// Current returns the subnet the cache currently represents (0
// before the first Step).
func (e *Engine) Current() int { return e.cur }

// TotalMACs returns the MACs executed since the last Reset.
func (e *Engine) TotalMACs() int64 { return e.totalMACs }

// Step moves the engine to subnet s and returns the network output
// for subnet s plus the MACs this transition actually executed (per
// image, as everywhere in this reproduction). Stepping up computes
// only newly activated units; stepping down executes zero backbone
// MACs (the head, being recomputed per subnet, is charged on every
// step). The returned tensor is owned by the engine and valid until
// the next Step or Reset.
func (e *Engine) Step(s int) (*tensor.Tensor, int64, error) {
	if e.input == nil {
		return nil, 0, fmt.Errorf("infer: Step before Reset")
	}
	if s < 1 {
		return nil, 0, fmt.Errorf("infer: subnet %d out of range", s)
	}
	sPrev := e.cur
	if s < sPrev {
		sPrev = s // stepping down: reuse only units active in s
	}

	var stepMACs int64
	batch := e.input.Dim(0)
	if w := e.workers(batch); w > 1 {
		stepMACs = e.stepParallel(s, sPrev, w)
	} else {
		stepMACs = e.stepSerial(s, sPrev)
	}
	e.cur = s
	e.totalMACs += stepMACs
	out := e.cache[len(e.cache)-1]

	if e.Audit {
		ctx := &nn.Context{Subnet: s, Scratch: e.pool}
		want := e.net.Forward(e.input, ctx)
		ok := tensor.Equal(out, want, 1e-9)
		e.pool.Put(want)
		if !ok {
			panic(fmt.Sprintf("infer: incremental output diverged from full forward at subnet %d", s))
		}
	}
	return out, stepMACs, nil
}

// workers decides the fan-out for this batch.
func (e *Engine) workers(batch int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > batch {
		w = batch
	}
	return w
}

// stepLayer advances one layer of one (sub-)batch, mirroring the
// paper's per-layer dispatch: RuleShared layers recompute from
// scratch, Incremental layers reuse the cache, parameter-free layers
// just run.
func stepLayer(l nn.Layer, x, cached *tensor.Tensor, sPrev, s int, pool *tensor.Pool) (*tensor.Tensor, int64) {
	if m, ok := l.(nn.Masked); ok && m.Rule() == nn.RuleShared {
		// Recompute-per-subnet layer (classifier head or slimmable
		// backbone): no reuse is possible.
		return l.Forward(x, &nn.Context{Subnet: s, Scratch: pool}), m.MACs(s)
	}
	if inc, ok := l.(nn.Incremental); ok {
		return inc.ForwardIncremental(x, cached, sPrev, s, pool)
	}
	return l.Forward(x, &nn.Context{Subnet: s, Scratch: pool}), 0
}

// stepSerial walks the whole batch through the layer stack on the
// calling goroutine, recycling each superseded cache tensor.
func (e *Engine) stepSerial(s, sPrev int) int64 {
	var stepMACs int64
	x := e.input
	for i, l := range e.net.Layers() {
		out, macs := stepLayer(l, x, e.cache[i], sPrev, s, e.pool)
		e.pool.Put(e.cache[i]) // superseded by out; safe to recycle now
		e.cache[i] = out
		x = out
		stepMACs += macs
	}
	return stepMACs
}

// stepParallel shards the batch into w contiguous row ranges, walks
// each shard through the full layer stack on its own goroutine (with
// its own pool — layers' incremental paths touch no shared state),
// then assembles full-batch cache tensors from the shard outputs.
// MAC accounting is per image and identical across shards, so the
// first shard's counts are authoritative.
func (e *Engine) stepParallel(s, sPrev, w int) int64 {
	layers := e.net.Layers()
	batch := e.input.Dim(0)
	for len(e.wpools) < w {
		e.wpools = append(e.wpools, tensor.NewPool())
	}

	type shardResult struct {
		outs []*tensor.Tensor
		macs []int64
	}
	results := make([]shardResult, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for wi := 0; wi < w; wi++ {
		b0 := wi * batch / w
		b1 := (wi + 1) * batch / w
		go func(wi, b0, b1 int) {
			defer wg.Done()
			pool := e.wpools[wi]
			outs := make([]*tensor.Tensor, len(layers))
			macs := make([]int64, len(layers))
			x := viewRows(e.input, b0, b1)
			for i, l := range layers {
				var cached *tensor.Tensor
				if e.cache[i] != nil {
					cached = viewRows(e.cache[i], b0, b1)
				}
				outs[i], macs[i] = stepLayer(l, x, cached, sPrev, s, pool)
				x = outs[i]
			}
			results[wi] = shardResult{outs, macs}
		}(wi, b0, b1)
	}
	wg.Wait()

	var stepMACs int64
	for i := range layers {
		shape := append([]int{batch}, results[0].outs[i].Shape()[1:]...)
		full := e.pool.GetUninit(shape...) // shard copies cover every row
		fd := full.Data()
		rowLen := full.Len() / batch
		for wi := 0; wi < w; wi++ {
			b0 := wi * batch / w
			shard := results[wi].outs[i]
			copy(fd[b0*rowLen:b0*rowLen+shard.Len()], shard.Data())
			e.wpools[wi].Put(shard)
		}
		e.pool.Put(e.cache[i])
		e.cache[i] = full
		stepMACs += results[0].macs[i]
	}
	return stepMACs
}

// viewRows returns a no-copy view of rows [b0,b1) of a batch-major
// tensor.
func viewRows(t *tensor.Tensor, b0, b1 int) *tensor.Tensor {
	rowLen := t.Len() / t.Dim(0)
	shape := append([]int{b1 - b0}, t.Shape()[1:]...)
	return tensor.FromSlice(t.Data()[b0*rowLen:b1*rowLen], shape...)
}

// MustStep is Step for code paths where the engine is known to be
// initialized (examples, benchmarks).
func (e *Engine) MustStep(s int) (*tensor.Tensor, int64) {
	out, macs, err := e.Step(s)
	if err != nil {
		panic(err)
	}
	return out, macs
}
