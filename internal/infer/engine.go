// Package infer provides the anytime-inference engine that realizes
// the paper's deployment story: run a small subnet for a fast
// preliminary decision, then — whenever resources become available —
// "enhance the inference accuracy by executing further MAC
// operations" without recomputing what smaller subnets already
// produced (§I, §II). Conversely, when resources shrink, switching
// down to a smaller subnet costs (almost) nothing because the small
// subnet's activations are a subset of the cached ones.
package infer

import (
	"fmt"

	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

// Engine executes one input batch through a masked network
// incrementally, caching per-layer activations between subnet
// switches.
type Engine struct {
	net   *nn.Network
	input *tensor.Tensor
	cache []*tensor.Tensor // output of each layer at the current subnet
	cur   int              // current subnet (0 = nothing computed yet)

	// Audit, when true, cross-checks every Step against a
	// from-scratch forward pass and panics on divergence — the
	// runtime enforcement of the incremental property. Intended for
	// tests and demos, not hot paths.
	Audit bool

	totalMACs int64
}

// NewEngine wraps a network. The network's layers must implement
// nn.Incremental or be masked RuleShared layers (which are recomputed
// per step) or parameter-free layers.
func NewEngine(net *nn.Network) *Engine {
	return &Engine{net: net, cache: make([]*tensor.Tensor, len(net.Layers()))}
}

// Reset installs a new input batch and clears all cached activations.
func (e *Engine) Reset(x *tensor.Tensor) {
	e.input = x
	for i := range e.cache {
		e.cache[i] = nil
	}
	e.cur = 0
	e.totalMACs = 0
}

// Current returns the subnet the cache currently represents (0
// before the first Step).
func (e *Engine) Current() int { return e.cur }

// TotalMACs returns the MACs executed since the last Reset.
func (e *Engine) TotalMACs() int64 { return e.totalMACs }

// Step moves the engine to subnet s and returns the network output
// for subnet s plus the MACs this transition actually executed.
// Stepping up computes only newly activated units; stepping down
// executes zero backbone MACs (the head, being recomputed per
// subnet, is charged on every step).
func (e *Engine) Step(s int) (*tensor.Tensor, int64, error) {
	if e.input == nil {
		return nil, 0, fmt.Errorf("infer: Step before Reset")
	}
	if s < 1 {
		return nil, 0, fmt.Errorf("infer: subnet %d out of range", s)
	}
	sPrev := e.cur
	if s < sPrev {
		sPrev = s // stepping down: reuse only units active in s
	}
	var stepMACs int64
	x := e.input
	for i, l := range e.net.Layers() {
		var out *tensor.Tensor
		var macs int64
		if m, ok := l.(nn.Masked); ok && m.Rule() == nn.RuleShared {
			// Recompute-per-subnet layer (classifier head or
			// slimmable backbone): no reuse is possible.
			out = l.Forward(x, nn.Eval(s))
			macs = m.MACs(s)
		} else if inc, ok := l.(nn.Incremental); ok {
			out, macs = inc.ForwardIncremental(x, e.cache[i], sPrev, s)
		} else {
			out = l.Forward(x, nn.Eval(s))
		}
		e.cache[i] = out
		x = out
		stepMACs += macs
	}
	e.cur = s
	e.totalMACs += stepMACs

	if e.Audit {
		want := e.net.Forward(e.input, nn.Eval(s))
		if !tensor.Equal(x, want, 1e-9) {
			panic(fmt.Sprintf("infer: incremental output diverged from full forward at subnet %d", s))
		}
	}
	return x, stepMACs, nil
}

// MustStep is Step for code paths where the engine is known to be
// initialized (examples, benchmarks).
func (e *Engine) MustStep(s int) (*tensor.Tensor, int64) {
	out, macs, err := e.Step(s)
	if err != nil {
		panic(err)
	}
	return out, macs
}
