// Package infer provides the anytime-inference engine that realizes
// the paper's deployment story: run a small subnet for a fast
// preliminary decision, then — whenever resources become available —
// "enhance the inference accuracy by executing further MAC
// operations" without recomputing what smaller subnets already
// produced (§I, §II). Conversely, when resources shrink, switching
// down to a smaller subnet costs (almost) nothing because the small
// subnet's activations are a subset of the cached ones.
package infer

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

// Engine executes one input batch through a masked network
// incrementally, caching per-layer activations between subnet
// switches. Activations and temporaries are drawn from internal
// buffer pools and every piece of per-step bookkeeping (shard slices,
// view headers, eval contexts) is hoisted into Engine-owned buffers
// sized once per (batch, workers) pair, so steady-state stepping
// allocates nothing at all — serial or sharded (enforced by
// TestStepSteadyStateAllocs).
//
// The same persistent worker set serves two sharding modes, selected
// per step: batches of two or more images shard by IMAGE (each worker
// walks its contiguous row range through the whole layer stack —
// every layer treats the batch dimension independently, so this
// preserves the incremental-reuse semantics exactly), while a
// single-image batch shards by LAYER (workers cooperate inside each
// layer over its nn.IncrementalSharded span — conv spatial rows,
// dense units, pooling planes — with a barrier per layer). Layer
// sharding claims its helpers from the global
// tensor.ClaimParallelHelpers budget, so engines, kernel fan-outs and
// the serving layer's worker pool share one GOMAXPROCS-1 allowance
// instead of oversubscribing the cores; with no spare cores the step
// degrades to the serial walk. Both modes produce outputs BITWISE
// identical to the serial walk at every worker count
// (TestIntraLayerParallelMatchesSerial).
type Engine struct {
	net   *nn.Network
	input *tensor.Tensor
	cache []*tensor.Tensor // output of each layer at the current subnet
	cur   int              // current subnet (0 = nothing computed yet)

	// Audit, when true, cross-checks every Step against a
	// from-scratch forward pass and panics on divergence — the
	// runtime enforcement of the incremental property. Intended for
	// tests and demos, not hot paths.
	Audit bool

	// Workers caps the batch-parallel fan-out; 0 means GOMAXPROCS.
	// Set 1 to force the serial path.
	Workers int

	// StepTimer, when non-nil, observes every successful Step with
	// the subnet stepped to, the batch rows walked, and the step's
	// wall-clock duration. It is the live-timing hook a calibration
	// refresh loop (internal/serve) feeds on: unlike the one-shot
	// CalibrateSteps, it sees real steps under real contention, so
	// thermal or load drift shows up in the observations. The callback
	// runs synchronously on the stepping goroutine and must be cheap
	// and allocation-free to preserve the walk's zero-alloc property;
	// when nil (the default) Step takes no timestamps at all.
	StepTimer func(subnet, rows int, d time.Duration)

	pool   *tensor.Pool   // owner-goroutine scratch; backs the cache tensors
	wpools []*tensor.Pool // per-worker scratch for the sharded path

	// Reusable per-step state for the sharded path, indexed by worker.
	// Grown on demand by ensureShardState, never shrunk; the shard
	// workers themselves are persistent goroutines fed over jobs (a
	// `go` statement per Step would allocate its closure).
	shardOuts  [][]*tensor.Tensor // per-layer shard outputs
	shardMACs  [][]int64          // per-layer shard MAC counts
	inViews    []*tensor.Tensor   // reusable view headers onto input
	cacheViews [][]*tensor.Tensor // reusable view headers onto cache
	ctxs       []*nn.Context      // reusable eval contexts
	sctx       nn.Context         // serial-path eval context
	shapeBuf   []int              // scratch for assembling output shapes

	jobs     chan shardJob
	wg       sync.WaitGroup // per-step fan-in barrier
	workerWG sync.WaitGroup // tracks worker goroutine lifetimes for Close
	started  int            // persistent shard workers spawned so far

	totalMACs int64
}

// shardJob tells a shard worker what to compute. Jobs travel by
// value, so dispatch is allocation-free. In image mode (layer == -1)
// the worker walks batch rows [b0,b1) through the whole stack to
// subnet s. In layer mode it computes span indices [b0,b1) of one
// layer's IncrementalSharded transition into the shared out tensor.
type shardJob struct {
	wi, b0, b1 int
	sPrev, s   int

	// Layer mode only.
	layer     int // -1 selects image mode
	lyr       nn.IncrementalSharded
	x, cached *tensor.Tensor
	out       *tensor.Tensor
}

// NewEngine wraps a network. The network's layers must implement
// nn.Incremental or be masked RuleShared layers (which are recomputed
// per step) or parameter-free layers.
func NewEngine(net *nn.Network) *Engine {
	return &Engine{
		net:   net,
		cache: make([]*tensor.Tensor, len(net.Layers())),
		pool:  tensor.NewPool(),
	}
}

// Reset installs a new input batch and clears all cached activations
// (recycling their buffers for the next walk).
func (e *Engine) Reset(x *tensor.Tensor) {
	e.input = x
	for i := range e.cache {
		e.pool.Put(e.cache[i])
		e.cache[i] = nil
	}
	e.cur = 0
	e.totalMACs = 0
}

// Current returns the subnet the cache currently represents (0
// before the first Step).
func (e *Engine) Current() int { return e.cur }

// Network returns the network the engine walks, for callers that
// hold only the engine and need model-level facts (layer geometry,
// MAC ladders) about what it serves.
func (e *Engine) Network() *nn.Network { return e.net }

// TotalMACs returns the MACs executed since the last Reset.
func (e *Engine) TotalMACs() int64 { return e.totalMACs }

// Step moves the engine to subnet s and returns the network output
// for subnet s plus the MACs this transition actually executed (per
// image, as everywhere in this reproduction). Stepping up computes
// only newly activated units; stepping down executes zero backbone
// MACs (the head, being recomputed per subnet, is charged on every
// step). The returned tensor is owned by the engine and valid until
// the next Step or Reset.
func (e *Engine) Step(s int) (*tensor.Tensor, int64, error) {
	if e.input == nil {
		return nil, 0, fmt.Errorf("infer: Step before Reset")
	}
	if s < 1 {
		return nil, 0, fmt.Errorf("infer: subnet %d out of range", s)
	}
	sPrev := e.cur
	if s < sPrev {
		sPrev = s // stepping down: reuse only units active in s
	}

	var start time.Time
	if e.StepTimer != nil {
		start = time.Now()
	}
	var stepMACs int64
	batch := e.input.Dim(0)
	switch w := e.workers(batch); {
	case batch == 1 && w > 1:
		stepMACs = e.stepLayerSharded(s, sPrev, w)
	case w > 1:
		stepMACs = e.stepParallel(s, sPrev, w)
	default:
		stepMACs = e.stepSerial(s, sPrev)
	}
	if e.StepTimer != nil {
		e.StepTimer(s, batch, time.Since(start))
	}
	e.cur = s
	e.totalMACs += stepMACs
	out := e.cache[len(e.cache)-1]

	if e.Audit {
		ctx := &nn.Context{Subnet: s, Scratch: e.pool}
		want := e.net.Forward(e.input, ctx)
		ok := tensor.Equal(out, want, 1e-9)
		e.pool.Put(want)
		if !ok {
			panic(fmt.Sprintf("infer: incremental output diverged from full forward at subnet %d", s))
		}
	}
	return out, stepMACs, nil
}

// workers decides the fan-out for this batch: image sharding is
// capped at one worker per image, while a batch of one keeps the full
// worker set — it shards inside layers instead of across images.
func (e *Engine) workers(batch int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if batch > 1 && w > batch {
		w = batch
	}
	return w
}

// stepLayer advances one layer of one (sub-)batch, mirroring the
// paper's per-layer dispatch: RuleShared layers recompute from
// scratch, Incremental layers reuse the cache, parameter-free layers
// just run. ctx is a caller-owned reusable context (allocating one
// per layer step would defeat the walk's zero-alloc property); only
// its Subnet and Scratch fields are meaningful here.
func stepLayer(l nn.Layer, x, cached *tensor.Tensor, sPrev, s int, pool *tensor.Pool, ctx *nn.Context) (*tensor.Tensor, int64) {
	if m, ok := l.(nn.Masked); ok && m.Rule() == nn.RuleShared {
		// Recompute-per-subnet layer (classifier head or slimmable
		// backbone): no reuse is possible.
		ctx.Subnet, ctx.Scratch = s, pool
		return l.Forward(x, ctx), m.MACs(s)
	}
	if inc, ok := l.(nn.Incremental); ok {
		return inc.ForwardIncremental(x, cached, sPrev, s, pool)
	}
	ctx.Subnet, ctx.Scratch = s, pool
	return l.Forward(x, ctx), 0
}

// stepSerial walks the whole batch through the layer stack on the
// calling goroutine, recycling each superseded cache tensor.
func (e *Engine) stepSerial(s, sPrev int) int64 {
	var stepMACs int64
	x := e.input
	for i, l := range e.net.Layers() {
		out, macs := stepLayer(l, x, e.cache[i], sPrev, s, e.pool, &e.sctx)
		e.pool.Put(e.cache[i]) // superseded by out; safe to recycle now
		e.cache[i] = out
		x = out
		stepMACs += macs
	}
	return stepMACs
}

// stepParallel shards the batch into w contiguous row ranges, walks
// each shard through the full layer stack on its own worker (with its
// own pool — layers' incremental paths touch no shared state), then
// assembles full-batch cache tensors from the shard outputs. Workers
// 1..w-1 are persistent goroutines fed jobs over a channel; the
// calling goroutine always walks shard 0 itself. MAC accounting is
// per image and identical across shards, so the first shard's counts
// are authoritative.
func (e *Engine) stepParallel(s, sPrev, w int) int64 {
	layers := e.net.Layers()
	batch := e.input.Dim(0)
	e.ensureShardState(w, len(layers))

	// Mark the shard workers' cores busy in the global parallelism
	// budget (best-effort — w itself is never reduced, so explicit
	// Workers settings keep their meaning): kernel calls inside the
	// shards then find the allowance spent and stay serial instead of
	// fanning the arena out on top of an already-saturated worker set.
	claimed := tensor.ClaimParallelHelpers(w - 1)
	defer tensor.ReleaseParallelHelpers(claimed)

	e.wg.Add(w - 1)
	for wi := 1; wi < w; wi++ {
		e.jobs <- shardJob{wi: wi, b0: wi * batch / w, b1: (wi + 1) * batch / w, sPrev: sPrev, s: s, layer: -1}
	}
	e.runShard(shardJob{wi: 0, b0: 0, b1: batch / w, sPrev: sPrev, s: s, layer: -1})
	e.wg.Wait()

	var stepMACs int64
	for i := range layers {
		// Output shape = shard shape with the full batch dimension.
		e.shapeBuf = append(e.shapeBuf[:0], e.shardOuts[0][i].Shape()...)
		e.shapeBuf[0] = batch
		full := e.pool.GetUninit(e.shapeBuf...) // shard copies cover every row
		fd := full.Data()
		rowLen := full.Len() / batch
		for wi := 0; wi < w; wi++ {
			b0 := wi * batch / w
			shard := e.shardOuts[wi][i]
			copy(fd[b0*rowLen:b0*rowLen+shard.Len()], shard.Data())
			e.wpools[wi].Put(shard)
			e.shardOuts[wi][i] = nil
		}
		e.pool.Put(e.cache[i])
		e.cache[i] = full
		stepMACs += e.shardMACs[0][i]
	}
	return stepMACs
}

// runShard walks one shard of the batch through the layer stack,
// writing outputs and MAC counts into the worker's reusable slices.
func (e *Engine) runShard(j shardJob) {
	pool := e.wpools[j.wi]
	ctx := e.ctxs[j.wi]
	outs := e.shardOuts[j.wi]
	macs := e.shardMACs[j.wi]
	views := e.cacheViews[j.wi]
	x := e.inViews[j.wi].ViewRows(e.input, j.b0, j.b1)
	for i, l := range e.net.Layers() {
		var cached *tensor.Tensor
		if e.cache[i] != nil {
			cached = views[i].ViewRows(e.cache[i], j.b0, j.b1)
		}
		outs[i], macs[i] = stepLayer(l, x, cached, j.sPrev, j.s, pool, ctx)
		x = outs[i]
	}
}

// stepLayerSharded walks a single-image batch with the persistent
// workers cooperating INSIDE each layer: layers implementing
// nn.IncrementalSharded have their span split into grain-aligned
// contiguous ranges (one per worker, a barrier per layer), everything
// else runs serially on the calling goroutine. Helpers are claimed
// from the global tensor parallelism budget for the duration of the
// step; an empty budget degrades to the plain serial walk. Outputs
// are bitwise identical to the serial walk — the grain alignment
// guarantees every element is computed by exactly one worker through
// exactly the code path a serial run would take.
func (e *Engine) stepLayerSharded(s, sPrev, w int) int64 {
	// The claim is held for the whole step, including layers that take
	// the serial path below: releasing between layers would let a
	// concurrent claimant steal the workers mid-step, and the layers
	// that stay serial (activations, copy-only transitions, the tiny
	// head) sit below the kernel fan-out thresholds anyway, so no
	// arena parallelism is forfeited by the idle claim.
	claimed := tensor.ClaimParallelHelpers(w - 1)
	if claimed == 0 {
		return e.stepSerial(s, sPrev)
	}
	defer tensor.ReleaseParallelHelpers(claimed)
	w = 1 + claimed
	layers := e.net.Layers()
	e.ensureShardState(w, len(layers))

	var stepMACs int64
	x := e.input
	for i, l := range layers {
		sl, ok := l.(nn.IncrementalSharded)
		if ok {
			// RuleShared layers recompute from scratch per subnet; the
			// span contract is incremental-only, so they stay serial
			// (in practice the tiny classifier head).
			if m, isMasked := l.(nn.Masked); isMasked && m.Rule() == nn.RuleShared {
				ok = false
			}
		}
		var span, grain int
		if ok {
			span, grain = sl.IncrementalSpan(x, sPrev, s)
		}
		wEff := w
		if span > 0 {
			if blocks := (span + grain - 1) / grain; wEff > blocks {
				wEff = blocks
			}
		}
		if span == 0 || wEff < 2 {
			out, macs := stepLayer(l, x, e.cache[i], sPrev, s, e.pool, &e.sctx)
			e.pool.Put(e.cache[i])
			e.cache[i] = out
			x = out
			stepMACs += macs
			continue
		}
		out := sl.NewIncrementalOut(x, e.pool)
		e.wg.Add(wEff - 1)
		for wi := 1; wi < wEff; wi++ {
			i0, i1 := spanRange(span, grain, wi, wEff)
			e.jobs <- shardJob{
				wi: wi, b0: i0, b1: i1, sPrev: sPrev, s: s,
				layer: i, lyr: sl, x: x, cached: e.cache[i], out: out,
			}
		}
		i0, i1 := spanRange(span, grain, 0, wEff)
		e.shardMACs[0][i] = sl.ForwardIncrementalSpan(x, e.cache[i], out, sPrev, s, i0, i1, e.wpools[0])
		e.wg.Wait()
		for wi := 0; wi < wEff; wi++ {
			stepMACs += e.shardMACs[wi][i]
		}
		e.pool.Put(e.cache[i])
		e.cache[i] = out
		x = out
	}
	return stepMACs
}

// spanRange splits [0,span) into w contiguous grain-aligned ranges
// and returns the wi-th. Alignment — not the partition itself — is
// what the bitwise contract rides on, so near-equal block counts per
// worker are merely a load-balancing choice.
func spanRange(span, grain, wi, w int) (int, int) {
	blocks := (span + grain - 1) / grain
	i0 := wi * blocks / w * grain
	i1 := (wi + 1) * blocks / w * grain
	if wi == w-1 || i1 > span {
		i1 = span
	}
	return i0, i1
}

// shardWorker is the body of one persistent worker goroutine: drain
// jobs until Close, dispatching on the job's sharding mode. The
// channel travels as a parameter, not via e.jobs: Close nils the
// field, and a worker that had not yet been scheduled when Close ran
// (possible whenever a step dispatches to fewer workers than were
// spawned) would otherwise block forever on a nil channel — with a
// synchronous Close, a deadlock.
func (e *Engine) shardWorker(jobs chan shardJob) {
	defer e.workerWG.Done()
	for job := range jobs {
		if job.layer >= 0 {
			e.shardMACs[job.wi][job.layer] = job.lyr.ForwardIncrementalSpan(
				job.x, job.cached, job.out, job.sPrev, job.s, job.b0, job.b1, e.wpools[job.wi])
		} else {
			e.runShard(job)
		}
		e.wg.Done()
	}
}

// ensureShardState grows the per-worker reusable state (pools,
// contexts, output/MAC slices, view headers) to w workers and nLayers
// layers, and spawns any missing persistent workers. Steady-state
// calls find everything sized and do nothing.
func (e *Engine) ensureShardState(w, nLayers int) {
	for len(e.wpools) < w {
		e.wpools = append(e.wpools, tensor.NewPool())
	}
	for len(e.ctxs) < w {
		e.ctxs = append(e.ctxs, &nn.Context{})
	}
	for len(e.shardOuts) < w {
		e.shardOuts = append(e.shardOuts, make([]*tensor.Tensor, nLayers))
		e.shardMACs = append(e.shardMACs, make([]int64, nLayers))
		e.inViews = append(e.inViews, &tensor.Tensor{})
		views := make([]*tensor.Tensor, nLayers)
		for i := range views {
			views[i] = &tensor.Tensor{}
		}
		e.cacheViews = append(e.cacheViews, views)
	}
	if e.jobs == nil {
		e.jobs = make(chan shardJob)
	}
	for e.started < w-1 { // worker 0 is the calling goroutine
		e.started++
		e.workerWG.Add(1)
		go e.shardWorker(e.jobs)
	}
}

// Close releases the engine's persistent shard workers and returns
// once they have all exited (so goroutine-leak checks observe a clean
// count deterministically). It is only needed for engines that used a
// sharded path (serial-only engines spawn none) and the engine
// remains usable afterwards — the next sharded Step simply respawns
// workers.
func (e *Engine) Close() {
	if e.jobs != nil {
		close(e.jobs)
		e.jobs = nil
		e.started = 0
		e.workerWG.Wait()
	}
}

// CalibrateSteps measures the wall-clock cost of each ladder step
// 1..n on input x: the engine is Reset and walked 1→2→…→n reps times,
// and the fastest observed duration of each step is returned (index
// s-1). Min-of-reps is the noise-robust statistic on a shared box —
// scheduling hiccups only ever add time. The measured numbers are the
// calibration a deadline-aware serving layer plans against
// (governor.LatencyModel, internal/serve); callers should calibrate
// with the batch shape they will serve, since step cost scales with
// rows. The engine is left Reset to x at subnet n; reps < 1 is
// treated as 1.
func (e *Engine) CalibrateSteps(x *tensor.Tensor, n, reps int) ([]time.Duration, error) {
	if n < 1 {
		return nil, fmt.Errorf("infer: calibrate needs ≥1 subnets, got %d", n)
	}
	if reps < 1 {
		reps = 1
	}
	best := make([]time.Duration, n)
	for rep := 0; rep < reps; rep++ {
		e.Reset(x)
		for s := 1; s <= n; s++ {
			start := time.Now()
			if _, _, err := e.Step(s); err != nil {
				return nil, err
			}
			if d := time.Since(start); rep == 0 || d < best[s-1] {
				best[s-1] = d
			}
		}
	}
	// A sub-resolution measurement would break feasibility planning
	// (a zero-cost step always "fits"); clamp to the clock's floor.
	for i, d := range best {
		if d <= 0 {
			best[i] = time.Nanosecond
		}
	}
	return best, nil
}

// MustStep is Step for code paths where the engine is known to be
// initialized (examples, benchmarks).
func (e *Engine) MustStep(s int) (*tensor.Tensor, int64) {
	out, macs, err := e.Step(s)
	if err != nil {
		panic(err)
	}
	return out, macs
}
