package infer

import (
	"fmt"
	"math"

	"steppingnet/internal/tensor"
)

// WireTensor is the portable form of one batch-1 state tensor: its
// shape and raw float64 data, ready for JSON. Go's encoder emits
// every finite float64 in shortest-round-trip form, so a decoded
// tensor is bitwise identical to the encoded one — which is what
// lets a warmed (wire-transferred) state keep the resume-equivalence
// contract (TestResumeMatchesColdWalk's wire leg pins it).
type WireTensor struct {
	// Shape is the tensor's dimensions (batch dimension first, 1 for
	// ladder-state tensors).
	Shape []int `json:"shape"`
	// Data is the tensor's elements in row-major order.
	Data []float64 `json:"data"`
}

// WireState is the portable form of a LadderState, shaped for the
// cluster's cache-warming wire endpoint: a spilled key's HRW winner
// serializes its cached state with Wire, the router carries it over
// HTTP, and the second-choice replica rebuilds it with State. JSON
// cannot carry NaN or Inf, so Wire rejects states containing them —
// a healthy walk never produces either.
type WireState struct {
	// Subnet is the rung the state resumes at (≥ 1).
	Subnet int `json:"subnet"`
	// In is the batch-1 input shape the state was exported under.
	In []int `json:"in"`
	// Layers holds one WireTensor per network layer, in order.
	Layers []WireTensor `json:"layers"`
}

// Wire converts the state to its portable form. The wire form copies
// nothing — it aliases the state's (immutable) tensor data — so
// serializing an entry does not double its footprint; callers must
// treat the result as read-only. An error is returned if any element
// is NaN or ±Inf (unrepresentable in JSON) or a layer is missing.
func (st *LadderState) Wire() (*WireState, error) {
	if st == nil {
		return nil, fmt.Errorf("infer: Wire of nil state")
	}
	w := &WireState{Subnet: st.Subnet, In: st.In, Layers: make([]WireTensor, len(st.Layers))}
	for i, t := range st.Layers {
		if t == nil {
			return nil, fmt.Errorf("infer: Wire found nil layer %d", i)
		}
		for _, v := range t.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("infer: Wire layer %d holds a non-finite value", i)
			}
		}
		w.Layers[i] = WireTensor{Shape: t.Shape(), Data: t.Data()}
	}
	return w, nil
}

// State rebuilds a LadderState from its wire form, validating the
// same structural properties ImportState demands (subnet ≥ 1,
// batch-1 layer tensors, shape/data agreement) so a malformed or
// hostile wire payload is rejected here with an error instead of
// corrupting an engine later. The rebuilt state holds fresh private
// copies — it shares nothing with the wire form, satisfying the
// LadderState immutability contract.
func (w *WireState) State() (*LadderState, error) {
	if w == nil {
		return nil, fmt.Errorf("infer: State of nil wire form")
	}
	if w.Subnet < 1 {
		return nil, fmt.Errorf("infer: wire state subnet %d out of range", w.Subnet)
	}
	if len(w.In) == 0 || w.In[0] != 1 {
		return nil, fmt.Errorf("infer: wire state input shape %v is not batch-1", w.In)
	}
	if len(w.Layers) == 0 {
		return nil, fmt.Errorf("infer: wire state has no layers")
	}
	st := &LadderState{
		Subnet: w.Subnet,
		In:     append([]int(nil), w.In...),
		Layers: make([]*tensor.Tensor, len(w.Layers)),
	}
	for i, lw := range w.Layers {
		if len(lw.Shape) == 0 || lw.Shape[0] != 1 {
			return nil, fmt.Errorf("infer: wire layer %d shape %v is not batch-1", i, lw.Shape)
		}
		n := 1
		for _, d := range lw.Shape {
			if d < 1 {
				return nil, fmt.Errorf("infer: wire layer %d has non-positive dim in %v", i, lw.Shape)
			}
			if n > (1<<31)/d {
				return nil, fmt.Errorf("infer: wire layer %d shape %v overflows", i, lw.Shape)
			}
			n *= d
		}
		if n != len(lw.Data) {
			return nil, fmt.Errorf("infer: wire layer %d shape %v wants %d elements, has %d",
				i, lw.Shape, n, len(lw.Data))
		}
		t := tensor.New(lw.Shape...)
		copy(t.Data(), lw.Data)
		st.Layers[i] = t
	}
	return st, nil
}
