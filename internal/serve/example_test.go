package serve_test

import (
	"errors"
	"fmt"
	"time"

	"steppingnet/internal/governor"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/serve"
	"steppingnet/internal/tensor"
)

// ExampleServer stands up a one-worker anytime-inference service,
// submits a request with a generous deadline (so the answer comes
// from the widest subnet) and shuts down gracefully. A pre-measured
// calibration is injected to keep the example deterministic; real
// servers omit it and calibrate at startup.
func ExampleServer() {
	m := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: 1,
	})
	r := tensor.NewRNG(3)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for u := 1; u < a.Units(); u++ {
			a.SetID(u, 1+r.Intn(3))
		}
	}

	cal := governor.LatencyModel{
		StepMACs: governor.StepCosts(m, 3),
		StepTime: []time.Duration{time.Nanosecond, time.Nanosecond, time.Nanosecond},
	}
	srv, err := serve.New(serve.Config{
		Model: m, Subnets: 3, Workers: 1,
		Calibration: cal, DefaultDeadline: time.Hour,
	})
	if err != nil {
		fmt.Println("server failed:", err)
		return
	}

	input := tensor.New(1 * 8 * 8)
	input.FillNormal(tensor.NewRNG(4), 0, 1)
	res, err := srv.Submit(serve.Request{Input: input.Data()})
	if err != nil {
		fmt.Println("submit failed:", err)
		return
	}
	fmt.Println("answered from subnet:", res.Subnet)
	fmt.Println("deadline met:", res.DeadlineMet)
	fmt.Println("paid incremental MACs:", res.MACs > 0)

	srv.Close()
	_, err = srv.Submit(serve.Request{Input: input.Data()})
	fmt.Println("after Close:", errors.Is(err, serve.ErrClosed))
	// Output:
	// answered from subnet: 3
	// deadline met: true
	// paid incremental MACs: true
	// after Close: true
}
