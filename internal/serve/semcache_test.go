package serve

import (
	"testing"
	"time"

	"steppingnet/internal/governor"
	"steppingnet/internal/infer"
	"steppingnet/internal/models"
	"steppingnet/internal/tensor"
)

// slowTopStep fabricates a latency model whose final rung is
// unaffordable within ordinary test deadlines (1h) while every lower
// rung costs ~nothing — so a tight-deadline submit deterministically
// stops one rung short and a generous one climbs to the top.
func slowTopStep(m *models.Model, n int) governor.LatencyModel {
	lm := instantSteps(m, n)
	lm.StepTime[n-1] = time.Hour
	return lm
}

// coldLadder walks one input up the full ladder on a fresh serial
// engine, returning each rung's logits and per-step MACs (index s).
func coldLadder(t *testing.T, m *models.Model, in []float64, n int) ([][]float64, []int64) {
	t.Helper()
	e := infer.NewEngine(m.Net)
	e.Workers = 1
	defer e.Close()
	x := tensor.New(1, m.InC, m.InH, m.InW)
	copy(x.Data(), in)
	e.Reset(x)
	outs := make([][]float64, n+1)
	macs := make([]int64, n+1)
	for s := 1; s <= n; s++ {
		o, mc, err := e.Step(s)
		if err != nil {
			t.Fatal(err)
		}
		outs[s] = append([]float64(nil), o.Data()...)
		macs[s] = mc
	}
	return outs, macs
}

// TestCacheHitServesStoredLogits pins the full-hit path: a repeat
// request whose cached rung covers its ladder cap is answered from
// the cache bitwise-identically at zero MACs, flagged CacheHit, and
// counted in the per-class counters and cache gauges.
func TestCacheHitServesStoredLogits(t *testing.T) {
	m := buildModel(401)
	sv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1, CacheEntries: 16,
		Calibration: instantSteps(m, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	in := inputVec(402, m.InC*m.InH*m.InW)
	first, err := sv.Submit(Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if first.Subnet != 3 || first.CacheHit || first.Resumed {
		t.Fatalf("cold submit: %+v, want cold full-ladder answer", first)
	}
	second, err := sv.Submit(Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatalf("repeat submit not served from cache: %+v", second)
	}
	if second.Subnet != first.Subnet || second.MACs != 0 {
		t.Fatalf("cache hit subnet %d MACs %d, want subnet %d MACs 0", second.Subnet, second.MACs, first.Subnet)
	}
	for i, v := range second.Logits {
		if v != first.Logits[i] {
			t.Fatalf("cached logit[%d]=%v, cold %v", i, v, first.Logits[i])
		}
	}
	snap := sv.Stats()
	if !snap.CacheEnabled || snap.CacheHits != 1 || snap.CacheEntries != 1 || snap.CacheBytes <= 0 {
		t.Fatalf("snapshot cache fields %+v, want enabled with 1 hit 1 entry", snap)
	}
	if snap.Classes[0].CacheHits != 1 {
		t.Fatalf("class 0 cache hits %d, want 1", snap.Classes[0].CacheHits)
	}
}

// TestCachedResumeBitwiseEqualsCold is the serve-level half of the
// resume-equivalence contract (the engine-level grid is
// TestResumeMatchesColdWalk): a tight-deadline submit walks an input
// partway, a later generous submit of the SAME input resumes from the
// cached rung — and its logits must be bitwise identical to a cold
// full walk of that input, with MACs metering exactly the climbed
// rungs. Run by the ci.sh equivalence stage on both GEMM backends.
func TestCachedResumeBitwiseEqualsCold(t *testing.T) {
	m := buildModel(411)
	coldOuts, coldMACs := coldLadder(t, m, inputVec(412, m.InC*m.InH*m.InW), 3)
	for _, ew := range []int{1, 2, 4} {
		sv, err := New(Config{
			Model: m, Subnets: 3, Workers: 1, EngineWorkers: ew,
			CacheEntries: 16, Calibration: slowTopStep(m, 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		in := inputVec(412, m.InC*m.InH*m.InW)

		tight, err := sv.Submit(Request{Input: in, Deadline: 50 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if tight.Subnet != 2 || tight.Resumed {
			t.Fatalf("ew=%d tight submit reached subnet %d (resumed=%v), want cold stop at 2", ew, tight.Subnet, tight.Resumed)
		}
		generous, err := sv.Submit(Request{Input: in, Deadline: 1000 * time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		if !generous.Resumed || generous.CacheHit {
			t.Fatalf("ew=%d generous submit not resumed: %+v", ew, generous)
		}
		if generous.Subnet != 3 {
			t.Fatalf("ew=%d resumed walk stopped at %d, want 3", ew, generous.Subnet)
		}
		for i, v := range generous.Logits {
			if v != coldOuts[3][i] {
				t.Fatalf("ew=%d resumed logit[%d]=%v, cold walk %v", ew, i, v, coldOuts[3][i])
			}
		}
		// Exact MAC accounting: the resumed rungs cost 0 new MACs, so
		// the answer meters only the climbed step(s).
		if generous.MACs != coldMACs[3] {
			t.Fatalf("ew=%d resumed MACs %d, want climbed step only %d", ew, generous.MACs, coldMACs[3])
		}
		if snap := sv.Stats(); snap.CacheResumes != 1 || snap.Classes[0].CacheResumes != 1 {
			t.Fatalf("ew=%d cache resume counters %d/%d, want 1/1", ew, snap.CacheResumes, snap.Classes[0].CacheResumes)
		}
		sv.Close()
	}
}

// TestEarlyExitNeverChangesArgmax pins the early-exit safety
// contract: with thresholds from CalibrateExitMargins, every
// early-exited answer predicts the same class the full-ladder walk
// would have predicted — and the exit does fire (the headroom is
// actually reclaimed, visible in the counters and MAC meter).
func TestEarlyExitNeverChangesArgmax(t *testing.T) {
	m := buildModel(421)
	imgLen := m.InC * m.InH * m.InW
	const nInputs = 48
	inputs := make([][]float64, nInputs)
	for i := range inputs {
		inputs[i] = inputVec(uint64(500+i), imgLen)
	}
	margins, err := CalibrateExitMargins(m, 3, 1, inputs, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := New(Config{Model: m, Subnets: 3, Workers: 1, Calibration: instantSteps(m, 3)})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	exit, err := New(Config{
		Model: m, Subnets: 3, Workers: 1,
		ExitMargins: margins, Calibration: instantSteps(m, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exit.Close()

	exited := 0
	for i, in := range inputs {
		full, err := cold.Submit(Request{Input: in, Deadline: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		got, err := exit.Submit(Request{Input: in, Deadline: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		if got.Pred != full.Pred {
			t.Fatalf("input %d: early-exit server predicted %d, full ladder %d (exit=%v subnet=%d)",
				i, got.Pred, full.Pred, got.EarlyExit, got.Subnet)
		}
		if got.EarlyExit {
			exited++
			if got.Subnet >= full.Subnet {
				t.Fatalf("input %d: flagged EarlyExit but served subnet %d ≥ full %d", i, got.Subnet, full.Subnet)
			}
			if got.MACs >= full.MACs {
				t.Fatalf("input %d: early exit spent %d MACs, full walk %d", i, got.MACs, full.MACs)
			}
		}
	}
	if exited == 0 {
		t.Fatal("early exit never fired on the calibration set")
	}
	if snap := exit.Stats(); snap.EarlyExits != int64(exited) || snap.Classes[0].EarlyExits != int64(exited) {
		t.Fatalf("EarlyExits counters %d/%d, want %d", snap.EarlyExits, snap.Classes[0].EarlyExits, exited)
	}
}

// TestCacheEvictionBoundsLiveSet pins the serving-side eviction
// wiring: a cache bounded to a handful of entries under many distinct
// inputs stays within its bounds and reports evictions, while the
// Submitted = Served + Rejected invariant holds throughout.
func TestCacheEvictionBoundsLiveSet(t *testing.T) {
	m := buildModel(431)
	sv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1, CacheEntries: 4,
		Calibration: instantSteps(m, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	imgLen := m.InC * m.InH * m.InW
	for i := 0; i < 12; i++ {
		if _, err := sv.Submit(Request{Input: inputVec(uint64(600+i), imgLen), Deadline: time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	// The most recent key must have survived the churn.
	res, err := sv.Submit(Request{Input: inputVec(611, imgLen), Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatalf("most recently inserted key missed the cache: %+v", res)
	}
	snap := sv.Stats()
	if snap.CacheEntries > 4 {
		t.Fatalf("cache holds %d entries, bound 4", snap.CacheEntries)
	}
	if snap.CacheEvictions == 0 {
		t.Fatal("12 distinct keys through a 4-entry cache produced no evictions")
	}
	if snap.CacheHits != 1 {
		t.Fatalf("cache hits %d, want 1", snap.CacheHits)
	}
	sv.Close()
	snap = sv.Stats()
	if snap.Submitted != snap.Served+snap.Rejected {
		t.Fatalf("invariant broken: submitted %d != served %d + rejected %d", snap.Submitted, snap.Served, snap.Rejected)
	}
}

// TestExitArmsGovernorRelaxStage pins the governor wiring: a server
// with SLOs AND the early exit armed builds its brownout controller
// with the relax-exit stage prepended (ladder deeper by
// exitRelaxSteps), while a server without the exit keeps the original
// ladder depth.
func TestExitArmsGovernorRelaxStage(t *testing.T) {
	m := buildModel(441)
	base := Config{
		Model: m, Subnets: 3, Workers: 1,
		PriorityClasses: 2,
		SLOs:            []governor.SLO{1: {P99Target: time.Millisecond}},
		ControlInterval: -1, // build the controller, no background loop
		Calibration:     instantSteps(m, 3),
	}
	plain, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	armed := base
	armed.ExitMargin = 0.5
	withExit, err := New(armed)
	if err != nil {
		t.Fatal(err)
	}
	defer withExit.Close()
	for c := 0; c < 2; c++ {
		want := plain.ctl.MaxLevel(c) + exitRelaxSteps
		if got := withExit.ctl.MaxLevel(c); got != want {
			t.Fatalf("class %d ladder depth %d with exit armed, want %d", c, got, want)
		}
	}
}
