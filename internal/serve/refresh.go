package serve

import (
	"sync/atomic"
	"time"

	"steppingnet/internal/governor"
)

// refreshMinObs is how many live observations a step needs before a
// refresh will trust its EWMA over the previous calibration — a lone
// cold-cache outlier must not repoint the whole deadline model.
const refreshMinObs = 3

// refresher accumulates live per-step latency observations from the
// worker engines (infer.Engine.StepTimer, normalized to per-row cost)
// into lock-free per-step EWMAs. It is the measurement half of the
// calibration refresh loop; Server.refreshCalibration is the
// publication half.
type refresher struct {
	ewmaNs []atomic.Int64 // per-step EWMA of observed batch-1 step cost, ns
	count  []atomic.Int64 // observations folded in so far
}

// newRefresher sizes a refresher for an n-step ladder.
func newRefresher(n int) *refresher {
	return &refresher{ewmaNs: make([]atomic.Int64, n), count: make([]atomic.Int64, n)}
}

// observe folds one per-row step timing into step s's EWMA (α = 0.2;
// the first observation seeds it). Safe for concurrent use from every
// worker; allocation-free, so it may run inside the zero-alloc walk.
func (r *refresher) observe(s int, perRow time.Duration) {
	if s < 1 || s > len(r.ewmaNs) {
		return
	}
	obs := int64(perRow)
	if obs <= 0 {
		obs = 1 // sub-resolution steps must stay positive for Validate
	}
	e := &r.ewmaNs[s-1]
	for {
		old := e.Load()
		next := obs
		if old > 0 {
			next = old + (obs-old)/5
		}
		if e.CompareAndSwap(old, next) {
			break
		}
	}
	r.count[s-1].Add(1)
}

// observed returns step s's current EWMA and observation count.
func (r *refresher) observed(s int) (time.Duration, int64) {
	return time.Duration(r.ewmaNs[s-1].Load()), r.count[s-1].Load()
}

// refreshCalibration rebuilds the latency model from the live
// step-timing EWMAs and atomically publishes it when anything moved:
// steps with enough observations adopt their measured cost, the rest
// keep the current model's value (a step the shed cap has kept the
// ladder away from has no fresher truth than its last calibration).
// Returns whether a new model was published. Called by the background
// refresh loop; exercised directly (with injected observations) by
// the drift tests.
func (s *Server) refreshCalibration() bool {
	cur := s.lat.Load()
	times := make([]time.Duration, len(cur.StepTime))
	changed := false
	for i := range times {
		times[i] = cur.StepTime[i]
		if obs, n := s.ref.observed(i + 1); n >= refreshMinObs && obs != times[i] {
			times[i] = obs
			changed = true
		}
	}
	if !changed {
		return false
	}
	next := governor.LatencyModel{StepMACs: cur.StepMACs, StepTime: times}
	if next.Validate() != nil {
		return false
	}
	s.lat.Store(next)
	// A recalibration means the execution environment moved underneath
	// the cache's stored walks; bump the generation so no resume seeds
	// from state observed under the old calibration (entries are
	// evicted lazily at their next lookup, counted under Invalidated).
	if s.cache != nil {
		s.cache.BumpGeneration()
	}
	s.stats.recordRefresh()
	return true
}
