package serve

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented is the doc-health gate ci.sh runs
// on this package: every exported top-level identifier — functions,
// methods, types, consts, vars, struct fields and interface methods —
// must carry a doc comment, in this package and in the cache
// subpackage. The serving layer is the repo's public face;
// undocumented API here is a regression.
func TestExportedIdentifiersDocumented(t *testing.T) {
	fset := token.NewFileSet()
	var missing []string
	report := func(pos token.Pos, what, name string) {
		missing = append(missing, fset.Position(pos).String()+": "+what+" "+name)
	}
	for _, dir := range []string{".", "cache"} {
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		checkPkgs(report, pkgs)
	}
	if len(missing) > 0 {
		t.Fatalf("%d exported identifier(s) without doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// checkPkgs walks every top-level declaration of the parsed packages
// and reports exported identifiers lacking doc comments.
func checkPkgs(report func(token.Pos, string, string), pkgs map[string]*ast.Package) {
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "func", d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
								report(sp.Pos(), "type", sp.Name.Name)
							}
							checkFields(report, sp)
						case *ast.ValueSpec:
							for _, name := range sp.Names {
								if name.IsExported() && d.Doc == nil && sp.Doc == nil {
									report(name.Pos(), "value", name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
}

// checkFields descends into struct fields and interface methods of an
// exported type spec.
func checkFields(report func(token.Pos, string, string), sp *ast.TypeSpec) {
	if !sp.Name.IsExported() {
		return
	}
	var fields *ast.FieldList
	switch tt := sp.Type.(type) {
	case *ast.StructType:
		fields = tt.Fields
	case *ast.InterfaceType:
		fields = tt.Methods
	default:
		return
	}
	// A doc comment may cover a whole group of fields declared on
	// adjacent lines; require docs per Field node, which is exactly
	// "per group".
	for _, f := range fields.List {
		for _, name := range f.Names {
			if name.IsExported() && f.Doc == nil && f.Comment == nil {
				report(name.Pos(), sp.Name.Name+" field", name.Name)
			}
		}
	}
}
