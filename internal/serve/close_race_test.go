package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitCloseRace is the focused single-process half of the
// cluster chaos invariant: Submit racing Close must resolve every
// caller to exactly one outcome — a real answer (the request was
// admitted before Close won the race) or one typed error (ErrClosed /
// ErrOverloaded) — and never hang. It hammers the exact interleaving
// window: a storm of submitters starts, Close fires mid-storm after a
// tiny stagger, and every outcome is collected behind a watchdog so a
// hung Submit fails the test instead of stalling the suite. Repeated
// across rounds with different worker/batch shapes so the race hits
// both the queue-admission path and the batch-former handoff.
func TestSubmitCloseRace(t *testing.T) {
	m := buildModel(77)
	rounds := []struct{ workers, maxBatch, queue int }{
		{1, 1, 4},
		{2, 4, 16},
		{3, 2, 8},
	}
	for ri, shape := range rounds {
		shape := shape
		t.Run(fmt.Sprintf("w%db%d", shape.workers, shape.maxBatch), func(t *testing.T) {
			srv, err := New(Config{
				Model: m, Subnets: 3,
				Workers: shape.workers, MaxBatch: shape.maxBatch, QueueDepth: shape.queue,
				Calibration:     instantSteps(m, 3),
				DefaultDeadline: time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			in := inputVec(uint64(78+ri), srv.imgLen)

			const submitters = 32
			var (
				wg       sync.WaitGroup
				answered atomic.Int64
				closed   atomic.Int64
				shed     atomic.Int64
			)
			outcomes := make(chan error, submitters)
			for i := 0; i < submitters; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, err := srv.Submit(Request{Input: in})
					switch {
					case err == nil:
						answered.Add(1)
						if res.Subnet < 1 || res.Subnet > 3 {
							outcomes <- fmt.Errorf("answered from subnet %d", res.Subnet)
							return
						}
					case errors.Is(err, ErrClosed):
						closed.Add(1)
					case errors.Is(err, ErrOverloaded):
						shed.Add(1)
					default:
						outcomes <- fmt.Errorf("unexpected error: %w", err)
						return
					}
					outcomes <- nil
				}()
			}
			// Close mid-storm: the stagger lands inside the submit wave,
			// so some callers race the closed-flag check, some race the
			// queue drain, and some arrive after.
			time.Sleep(200 * time.Microsecond)
			srv.Close()

			// Watchdog: every submitter must resolve. A missing outcome
			// is the hang this test exists to catch.
			deadline := time.After(30 * time.Second)
			for got := 0; got < submitters; got++ {
				select {
				case err := <-outcomes:
					if err != nil {
						t.Fatal(err)
					}
				case <-deadline:
					t.Fatalf("only %d/%d submitters resolved: Submit hung racing Close "+
						"(%d answered, %d closed, %d shed)",
						got, submitters, answered.Load(), closed.Load(), shed.Load())
				}
			}
			wg.Wait()

			if got := answered.Load() + closed.Load() + shed.Load(); got != submitters {
				t.Fatalf("outcomes %d != submitters %d (double answer)", got, submitters)
			}
			// The counter invariant must hold at quiescence: post-Close
			// submits count as neither served nor rejected.
			snap := srv.Stats()
			if snap.Submitted != snap.Served+snap.Rejected {
				t.Fatalf("submitted %d != served %d + rejected %d",
					snap.Submitted, snap.Served, snap.Rejected)
			}
			if snap.Served != answered.Load() {
				t.Fatalf("stats served %d, callers saw %d answers", snap.Served, answered.Load())
			}
		})
	}
}
