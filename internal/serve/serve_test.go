package serve

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"steppingnet/internal/governor"
	"steppingnet/internal/infer"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

// buildModel returns a LeNet-3C1L with a random legal assignment
// across 3 subnets, the same shape the infer and governor tests use.
func buildModel(seed uint64) *models.Model {
	m := models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.5,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: seed,
	})
	r := tensor.NewRNG(seed ^ 0x5E12E)
	for _, mv := range m.Movable {
		a := mv.OutAssignment()
		for u := 1; u < a.Units(); u++ {
			a.SetID(u, 1+r.Intn(3))
		}
	}
	return m
}

func inputVec(seed uint64, n int) []float64 {
	x := tensor.New(n)
	x.FillNormal(tensor.NewRNG(seed), 0, 1)
	return x.Data()
}

// instantSteps fabricates a latency model whose steps cost ~nothing,
// so generous-deadline tests deterministically reach the full ladder.
func instantSteps(m *models.Model, n int) governor.LatencyModel {
	lm := governor.LatencyModel{StepMACs: governor.StepCosts(m, n), StepTime: make([]time.Duration, n)}
	for i := range lm.StepTime {
		lm.StepTime[i] = time.Nanosecond
	}
	return lm
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for missing model")
	}
	m := buildModel(1)
	if _, err := New(Config{Model: m}); err == nil {
		t.Fatal("want error for zero subnets")
	}
	if _, err := New(Config{Model: m, Subnets: 3, MinSubnet: 4}); err == nil {
		t.Fatal("want error for MinSubnet > Subnets")
	}
	if _, err := New(Config{Model: m, Subnets: 2, Calibration: instantSteps(m, 3)}); err == nil {
		t.Fatal("want error for calibration depth mismatch")
	}
}

// TestExitMarginsValidation pins the per-class margin-vector checks:
// the early-exit path indexes ExitMargins by predicted class, so a
// vector whose length disagrees with the model's class count (or that
// carries a negative threshold) must be rejected at construction —
// not discovered as an out-of-range panic on the first inference.
func TestExitMarginsValidation(t *testing.T) {
	m := buildModel(3) // 4 classes
	base := Config{Model: m, Subnets: 3, Workers: 1, Calibration: instantSteps(m, 3)}

	short := base
	short.ExitMargins = []float64{1, 1, 1}
	if _, err := New(short); err == nil {
		t.Fatal("want error for a 3-entry ExitMargins on a 4-class model")
	}
	long := base
	long.ExitMargins = []float64{1, 1, 1, 1, 1}
	if _, err := New(long); err == nil {
		t.Fatal("want error for a 5-entry ExitMargins on a 4-class model")
	}
	neg := base
	neg.ExitMargins = []float64{1, -0.5, 1, 1}
	if _, err := New(neg); err == nil {
		t.Fatal("want error for a negative per-class margin")
	}

	ok := base
	ok.ExitMargins = []float64{0.5, 1.5, 0, 2}
	srv, err := New(ok)
	if err != nil {
		t.Fatalf("valid per-class margins rejected: %v", err)
	}
	defer srv.Close()
	// The margin vector must actually drive serving, not just pass
	// validation: a request through the full path may exit early on
	// any class without indexing out of range.
	if _, err := srv.Submit(Request{Input: inputVec(9, srv.imgLen), Deadline: time.Second}); err != nil {
		t.Fatalf("submit with per-class margins: %v", err)
	}
}

func TestSubmitBadInput(t *testing.T) {
	m := buildModel(2)
	srv, err := New(Config{Model: m, Subnets: 3, Workers: 1, Calibration: instantSteps(m, 3)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Submit(Request{Input: make([]float64, 7)}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
}

// TestAnswersMatchEngine pins serving correctness: with a generous
// deadline the answer comes from the full ladder and its logits are
// exactly what a hand-driven engine walk produces, with the walk's
// incremental MAC accounting.
func TestAnswersMatchEngine(t *testing.T) {
	m := buildModel(3)
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1,
		Calibration: instantSteps(m, 3), DefaultDeadline: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	in := inputVec(4, srv.imgLen)
	res, err := srv.Submit(Request{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subnet != 3 {
		t.Fatalf("generous deadline answered from subnet %d, want 3", res.Subnet)
	}
	if !res.DeadlineMet {
		t.Fatal("hour-long deadline reported missed")
	}

	// Reference: drive an engine through the same ladder walk.
	e := infer.NewEngine(m.Net)
	e.Workers = 1
	defer e.Close()
	x := tensor.New(1, m.InC, m.InH, m.InW)
	copy(x.Data(), in)
	e.Reset(x)
	var want *tensor.Tensor
	for s := 1; s <= 3; s++ {
		want, _ = e.MustStep(s)
	}
	if len(res.Logits) != m.Classes {
		t.Fatalf("logits length %d, want %d", len(res.Logits), m.Classes)
	}
	for j, v := range res.Logits {
		if v != want.Data()[j] {
			t.Fatalf("logit %d = %g, engine walk says %g", j, v, want.Data()[j])
		}
	}
	if res.Pred != want.ArgMax() {
		t.Fatalf("pred %d, want %d", res.Pred, want.ArgMax())
	}
	if res.MACs != e.TotalMACs() {
		t.Fatalf("request charged %d MACs, engine walk spent %d", res.MACs, e.TotalMACs())
	}
}

// TestBatch1WorkerSetMatchesSerial pins the EngineWorkers plumbing:
// a batch-1 pop handed the whole worker set (the engine's cooperative
// intra-layer sharding, forced on via GOMAXPROCS and a zeroed
// shard-worthiness bar) must answer with logits BITWISE identical to
// the single-worker serial walk — the serving layer must not be able
// to tell how many workers computed an answer.
func TestBatch1WorkerSetMatchesSerial(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(4)
	oldMin := nn.ShardMinOps
	nn.ShardMinOps = 0
	defer func() {
		runtime.GOMAXPROCS(oldProcs)
		nn.ShardMinOps = oldMin
	}()

	m := buildModel(3)
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1, EngineWorkers: 4,
		Calibration: instantSteps(m, 3), DefaultDeadline: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.cfg.EngineWorkers != 4 {
		t.Fatalf("EngineWorkers = %d after defaults, want 4", srv.cfg.EngineWorkers)
	}

	in := inputVec(4, srv.imgLen)
	res, err := srv.Submit(Request{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subnet != 3 {
		t.Fatalf("generous deadline answered from subnet %d, want 3", res.Subnet)
	}

	e := infer.NewEngine(m.Net)
	e.Workers = 1
	defer e.Close()
	x := tensor.New(1, m.InC, m.InH, m.InW)
	copy(x.Data(), in)
	e.Reset(x)
	var want *tensor.Tensor
	for s := 1; s <= 3; s++ {
		want, _ = e.MustStep(s)
	}
	for j, v := range res.Logits {
		if v != want.Data()[j] {
			t.Fatalf("logit %d = %g from the worker-set walk, serial walk says %g", j, v, want.Data()[j])
		}
	}
	if res.MACs != e.TotalMACs() {
		t.Fatalf("request charged %d MACs, serial walk spent %d", res.MACs, e.TotalMACs())
	}
}

// TestDeadlineNarrowing pins the scheduler's deadline awareness with a
// fabricated calibration: when the model says steps beyond the first
// cost an hour, any realistic deadline must be answered from subnet 1
// — and the answer still arrives (anytime property: narrow beats
// never).
func TestDeadlineNarrowing(t *testing.T) {
	m := buildModel(5)
	cal := governor.LatencyModel{
		StepMACs: governor.StepCosts(m, 3),
		StepTime: []time.Duration{time.Nanosecond, time.Hour, time.Hour},
	}
	srv, err := New(Config{Model: m, Subnets: 3, Workers: 1, Calibration: cal})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := srv.Submit(Request{Input: inputVec(6, srv.imgLen), Deadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subnet != 1 {
		t.Fatalf("tight deadline answered from subnet %d, want 1", res.Subnet)
	}
	if res.MACs != governor.StepCosts(m, 3)[0] {
		t.Fatalf("subnet-1 answer cost %d MACs, want %d", res.MACs, governor.StepCosts(m, 3)[0])
	}

	// An already-blown deadline still gets the minimum answer, marked
	// as missed.
	res, err = srv.Submit(Request{Input: inputVec(7, srv.imgLen), Deadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subnet != 1 {
		t.Fatalf("blown deadline answered from subnet %d, want 1", res.Subnet)
	}
	if res.DeadlineMet {
		t.Fatal("nanosecond deadline cannot have been met")
	}
}

// TestMinSubnetFloor: a request whose deadline is already blown must
// still be walked to the configured MinSubnet — never answered from
// below the floor (regression: the early-finalize path used to cut
// blown-deadline requests off at subnet 1 regardless of MinSubnet).
func TestMinSubnetFloor(t *testing.T) {
	m := buildModel(22)
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1, MinSubnet: 2,
		Calibration: instantSteps(m, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := srv.Submit(Request{Input: inputVec(23, srv.imgLen), Deadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subnet < 2 {
		t.Fatalf("blown deadline answered from subnet %d, below MinSubnet 2", res.Subnet)
	}
}

// TestMicroBatchingCorrectness floods a MaxBatch-4 server and checks
// every answer against a from-scratch forward at the subnet that
// answered it: batching must never mix rows up or change numerics
// beyond the engine's own guarantees.
func TestMicroBatchingCorrectness(t *testing.T) {
	m := buildModel(8)
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1, MaxBatch: 4, QueueDepth: 16,
		Calibration: instantSteps(m, 3), DefaultDeadline: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const reqs = 12
	ins := make([][]float64, reqs)
	for i := range ins {
		ins[i] = inputVec(100+uint64(i), srv.imgLen)
	}
	results := make([]Result, reqs)
	errs := make([]error, reqs)
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = srv.Submit(Request{Input: ins[i]})
		}(i)
	}
	wg.Wait()

	for i := 0; i < reqs; i++ {
		if errs[i] != nil {
			if errors.Is(errs[i], ErrOverloaded) {
				continue // legal under a 16-deep queue; the rest must be right
			}
			t.Fatalf("request %d: %v", i, errs[i])
		}
		res := results[i]
		if res.Subnet < 1 || res.Subnet > 3 {
			t.Fatalf("request %d answered from subnet %d", i, res.Subnet)
		}
		x := tensor.New(1, m.InC, m.InH, m.InW)
		copy(x.Data(), ins[i])
		want := m.Net.Forward(x, nn.Eval(res.Subnet))
		for j, v := range res.Logits {
			if diff := v - want.Data()[j]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("request %d logit %d: got %g want %g (subnet %d)", i, j, v, want.Data()[j], res.Subnet)
			}
		}
	}
}

// TestShedCap pins the pressure→ladder-cap mapping as a pure function
// of the queue occupancy a class sees (requests at or above it).
func TestShedCap(t *testing.T) {
	s := &Server{
		cfg:        Config{MinSubnet: 1, QueueDepth: 8},
		n:          4,
		priorities: 1,
		lanes:      make([][]*pending, 1),
	}
	fill := func(k int) {
		s.lanes[0] = s.lanes[0][:0]
		for i := 0; i < k; i++ {
			s.lanes[0] = append(s.lanes[0], &pending{})
		}
	}
	cases := []struct{ queued, want int }{
		{0, 4}, // empty queue: full ladder
		{1, 3},
		{4, 2},
		{7, 1},
		{8, 1}, // full queue: minimum answer only
	}
	for _, tc := range cases {
		fill(tc.queued)
		if got := s.shedCapLocked(0); got != tc.want {
			t.Fatalf("shedCap with %d/8 queued = %d, want %d", tc.queued, got, tc.want)
		}
	}
}

// TestShedCapClassAware pins the priority dimension of the shed cap:
// with the same total queue contents, a high-priority class — which
// only feels the backlog at or above itself — keeps a wider ladder
// than the low class drowning under it.
func TestShedCapClassAware(t *testing.T) {
	s := &Server{
		cfg:        Config{MinSubnet: 1, QueueDepth: 8},
		n:          4,
		priorities: 2,
		lanes:      make([][]*pending, 2),
	}
	// 7 low-priority queued, 1 high.
	for i := 0; i < 7; i++ {
		s.lanes[0] = append(s.lanes[0], &pending{})
	}
	s.lanes[1] = append(s.lanes[1], &pending{})
	if got := s.shedCapLocked(0); got != 1 {
		t.Fatalf("low class sees 8/8 backlog, shed cap = %d, want 1", got)
	}
	if got := s.shedCapLocked(1); got != 3 {
		t.Fatalf("high class sees 1/8 backlog, shed cap = %d, want 3", got)
	}
}

// TestAdmitCap pins the nested queue shares of weighted admission:
// the top class always owns the whole queue, lower classes fill
// proportionally smaller prefixes, and no share rounds down to zero.
func TestAdmitCap(t *testing.T) {
	s := &Server{cfg: Config{QueueDepth: 64}, priorities: 4}
	for c, want := range map[int]int{0: 16, 1: 32, 2: 48, 3: 64} {
		if got := s.admitCap(c); got != want {
			t.Fatalf("admitCap(%d) = %d, want %d", c, got, want)
		}
	}
	// Single class: the plain bounded queue.
	s = &Server{cfg: Config{QueueDepth: 8}, priorities: 1}
	if got := s.admitCap(0); got != 8 {
		t.Fatalf("single-class admitCap = %d, want 8", got)
	}
	// Tiny queue: every class keeps at least one slot.
	s = &Server{cfg: Config{QueueDepth: 3}, priorities: 3}
	if got := s.admitCap(0); got != 1 {
		t.Fatalf("floor admitCap = %d, want 1", got)
	}
}

// TestPriorityProtectsHighClassUnderOverload is the serving-hardening
// acceptance test: a sustained low-priority overload (dozens of
// closed-loop submitters against one deliberately slowed worker —
// well past 12× capacity) must not touch the high-priority class.
// Every high-priority request is admitted (never shed), served from
// the full ladder (never narrowed), and meets its deadline, while the
// rejections and narrowed answers concentrate entirely in the low
// class.
func TestPriorityProtectsHighClassUnderOverload(t *testing.T) {
	m := buildModel(30)
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1, QueueDepth: 32, MaxBatch: 4,
		PriorityClasses: 2,
		Calibration:     instantSteps(m, 3), DefaultDeadline: time.Hour,
		// 2ms per batch makes one worker's capacity ~2k req/s at full
		// batching; 40 closed-loop low submitters offer far beyond it.
		ServeDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	in := inputVec(31, srv.imgLen)

	// Sustained low-priority pressure: closed-loop submitters that
	// immediately resubmit on any outcome until told to stop.
	const lowWorkers = 40
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < lowWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				srv.Submit(Request{Input: in, Priority: 0, Deadline: 50 * time.Millisecond}) //nolint:errcheck — outcomes read from stats
			}
		}()
	}
	// Wait until the low tide is actually pressing on the queue.
	waitUntil := time.Now().Add(5 * time.Second)
	for srv.Stats().QueueLen < 8 {
		if time.Now().After(waitUntil) {
			t.Fatal("low-priority backlog never built up")
		}
		time.Sleep(time.Millisecond)
	}

	// The protected class: sequential submits (≈10% of the mix) with
	// a deadline that only requires jumping the low-priority queue.
	const highReqs = 15
	for i := 0; i < highReqs; i++ {
		res, err := srv.Submit(Request{Input: in, Priority: 1, Deadline: 2 * time.Second})
		if err != nil {
			t.Fatalf("high-priority request %d rejected under low-priority overload: %v", i, err)
		}
		if res.Priority != 1 {
			t.Fatalf("high-priority request %d served as class %d", i, res.Priority)
		}
		if res.Subnet != 3 {
			t.Fatalf("high-priority request %d narrowed to subnet %d, want full ladder 3", i, res.Subnet)
		}
		if !res.DeadlineMet {
			t.Fatalf("high-priority request %d missed its deadline (latency %v)", i, res.Latency)
		}
	}
	close(stop)
	wg.Wait()

	snap := srv.Stats()
	high, low := snap.Classes[1], snap.Classes[0]
	if high.Served != highReqs || high.Rejected != 0 {
		t.Fatalf("high class: served %d rejected %d, want %d served, 0 rejected", high.Served, high.Rejected, highReqs)
	}
	if high.DeadlineHitRate < 0.99 {
		t.Fatalf("high-priority deadline hit rate %.3f, want ≥0.99", high.DeadlineHitRate)
	}
	if high.BySubnet[2] != highReqs {
		t.Fatalf("high-priority subnet distribution %v, want all %d at subnet 3", high.BySubnet, highReqs)
	}
	if low.Rejected == 0 {
		t.Fatal("a 40-submitter overload must shed low-priority traffic")
	}
	narrowedLow := low.BySubnet[0] + low.BySubnet[1]
	if narrowedLow == 0 {
		t.Fatal("overload must narrow low-priority answers below the full ladder")
	}
	// Global counters must still reconcile with the class breakdown.
	if low.Served+high.Served != snap.Served || low.Rejected+high.Rejected != snap.Rejected {
		t.Fatalf("class counters don't sum to globals: %+v", snap)
	}
}

// TestOverloadDegradesGracefully offers a burst far beyond capacity:
// the server must answer or reject every request (no hangs, no
// unbounded queue) and the overload must visibly shift answers below
// the full ladder or reject at the brim — never both full-width AND
// unbounded.
func TestOverloadDegradesGracefully(t *testing.T) {
	m := buildModel(10)
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1, QueueDepth: 4,
		Calibration: instantSteps(m, 3), DefaultDeadline: time.Hour,
		// Stall each batch so the burst genuinely outruns capacity
		// even on a machine that would otherwise drain it instantly.
		ServeDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const burst = 48
	subnets := make(chan int, burst)
	rejected := make(chan struct{}, burst)
	var wg sync.WaitGroup
	in := inputVec(11, srv.imgLen)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := srv.Submit(Request{Input: in})
			switch {
			case err == nil:
				subnets <- res.Subnet
			case errors.Is(err, ErrOverloaded):
				rejected <- struct{}{}
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	close(subnets)
	close(rejected)

	served, narrowed := 0, 0
	for s := range subnets {
		served++
		if s < 3 {
			narrowed++
		}
	}
	nRejected := len(rejected)
	if served+nRejected != burst {
		t.Fatalf("served %d + rejected %d != burst %d", served, nRejected, burst)
	}
	if nRejected == 0 {
		t.Fatal("a 12× overload burst against a 4-deep queue must reject at the brim")
	}
	if narrowed == 0 {
		t.Fatal("overload must shift answers below the full ladder (load shedding)")
	}
	snap := srv.Stats()
	if snap.Served != int64(served) || snap.Rejected != int64(nRejected) {
		t.Fatalf("stats (%d served, %d rejected) disagree with observed (%d, %d)",
			snap.Served, snap.Rejected, served, nRejected)
	}
}

// TestAdmissionControlRejectsUnmeetableDeadlines: once the service-
// time EWMA is warm and a backlog exists, a request whose deadline
// the predicted queue wait alone already blows must fail fast with
// ErrOverloaded instead of being served late.
func TestAdmissionControlRejectsUnmeetableDeadlines(t *testing.T) {
	m := buildModel(16)
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1, QueueDepth: 32,
		Calibration: instantSteps(m, 3), DefaultDeadline: time.Hour,
		ServeDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	in := inputVec(17, srv.imgLen)

	// Warm the EWMA with one served request (~5ms service time).
	if _, err := srv.Submit(Request{Input: in}); err != nil {
		t.Fatal(err)
	}
	// Build a backlog of patient requests.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Submit(Request{Input: in}) //nolint:errcheck — outcome irrelevant
		}()
	}
	// Let the backlog reach the queue (worker sleeps 5ms per batch, so
	// it stays non-empty for tens of ms).
	deadline := time.Now().Add(time.Second)
	for srv.Stats().QueueLen == 0 {
		if time.Now().After(deadline) {
			t.Fatal("backlog never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	// A 1ms deadline cannot survive a ≥5ms predicted wait.
	if _, err := srv.Submit(Request{Input: in, Deadline: time.Millisecond}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("unmeetable deadline admitted: err = %v", err)
	}
	wg.Wait()
}

// TestCloseDrainsAndRejects is the graceful-shutdown contract: Close
// drains every admitted request to a real answer, subsequent Submits
// fail with the typed ErrClosed, Close is idempotent, and no worker
// goroutines (or their engines' shard workers) are left behind.
func TestCloseDrainsAndRejects(t *testing.T) {
	before := runtime.NumGoroutine()

	m := buildModel(12)
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 2, QueueDepth: 32, MaxBatch: 2,
		Calibration: instantSteps(m, 3), DefaultDeadline: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	const reqs = 24
	in := inputVec(13, srv.imgLen)
	outcomes := make(chan error, reqs)
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := srv.Submit(Request{Input: in})
			if err == nil && (res.Subnet < 1 || res.Subnet > 3) {
				err = errors.New("answered from invalid subnet")
			}
			outcomes <- err
		}()
	}
	// Close while the burst is in flight: admitted requests must still
	// be answered, late ones must see ErrClosed or ErrOverloaded.
	srv.Close()
	wg.Wait()
	close(outcomes)
	for err := range outcomes {
		if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrOverloaded) {
			t.Fatalf("in-flight request during Close: %v", err)
		}
	}

	if _, err := srv.Submit(Request{Input: in}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	srv.Close() // idempotent

	// At quiescence every admission attempt was either served or
	// rejected; post-Close submits count as neither.
	snap := srv.Stats()
	if snap.Submitted != snap.Served+snap.Rejected {
		t.Fatalf("counter invariant broken: submitted %d != served %d + rejected %d",
			snap.Submitted, snap.Served, snap.Rejected)
	}

	// Every worker (and its engine) must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStatsSnapshot sanity-checks the counters a /stats consumer sees.
func TestStatsSnapshot(t *testing.T) {
	m := buildModel(14)
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1,
		Calibration: instantSteps(m, 3), DefaultDeadline: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const reqs = 5
	for i := 0; i < reqs; i++ {
		if _, err := srv.Submit(Request{Input: inputVec(20+uint64(i), srv.imgLen)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := srv.Stats()
	if snap.Submitted != reqs || snap.Served != reqs || snap.Rejected != 0 {
		t.Fatalf("counters: %+v", snap)
	}
	var bySubnet int64
	for _, c := range snap.BySubnet {
		bySubnet += c
	}
	if bySubnet != reqs {
		t.Fatalf("per-subnet histogram sums to %d, want %d", bySubnet, reqs)
	}
	if snap.DeadlineHitRate != 1 {
		t.Fatalf("hit rate %g with hour-long deadlines", snap.DeadlineHitRate)
	}
	if snap.P50Ms <= 0 || snap.P99Ms < snap.P50Ms {
		t.Fatalf("latency percentiles p50=%g p99=%g", snap.P50Ms, snap.P99Ms)
	}
	if snap.TotalMACs <= 0 || snap.QueueCap != 64 || snap.Workers != 1 {
		t.Fatalf("snapshot gauges: %+v", snap)
	}
	if len(snap.StepTimeMs) != 3 || snap.MACRate <= 0 {
		t.Fatalf("calibration fields: %+v", snap)
	}
}

// TestCalibratedServerServes exercises the real startup-calibration
// path (no injected latency model) end to end.
func TestCalibratedServerServes(t *testing.T) {
	m := buildModel(15)
	srv, err := New(Config{Model: m, Subnets: 3, Workers: 1, CalibrationReps: 1, DefaultDeadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	lm := srv.Latency()
	if err := lm.Validate(); err != nil {
		t.Fatalf("calibrated model invalid: %v", err)
	}
	if lm.MACRate() <= 0 {
		t.Fatal("calibration produced a zero MAC rate")
	}
	res, err := srv.Submit(Request{Input: inputVec(16, srv.imgLen)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subnet != 3 {
		t.Fatalf("hour deadline on a warm box answered from subnet %d, want 3", res.Subnet)
	}
}
