package serve

import (
	"fmt"
	"math"
	"time"

	"steppingnet/internal/governor"
	"steppingnet/internal/infer"
	"steppingnet/internal/models"
	"steppingnet/internal/serve/cache"
	"steppingnet/internal/tensor"
)

// exitRelaxSteps is the relax-exit ladder depth handed to the
// overload governor when the confidence early exit is armed: two
// stage-0 levels (margin thresholds ÷2, then ÷4) before any class's
// answers are narrowed.
const exitRelaxSteps = 2

// serveCacheHits runs the semantic-cache lookup for a popped batch:
// every request gets its input hash; requests whose cached rung
// already covers their ladder cap are answered immediately from the
// cache (zero MACs — a cached rung is free even when it is WIDER than
// the shed cap, since shed caps exist to save compute) and removed.
// The survivors, returned in order, carry their lookup result in
// p.ent for the batch-1 resume path and the post-walk insert. Callers
// own the batch slice; the filter compacts it in place.
//
// Recency discipline: the lookup uses Lookup, which never reorders
// the LRU list — only requests that commit to an answer here are
// Touched. Survivors are Touched later, after their walk actually
// runs (runBatch's post-walk publish), so a batch that dies in
// failBatch cannot push live keys toward eviction just by having been
// looked up.
func (s *Server) serveCacheHits(batch []*pending, started time.Time) []*pending {
	keep := batch[:0]
	for _, p := range batch {
		p.started = started
		p.key = cache.KeyOf(p.input)
		p.hasKey = true
		if ent, ok := s.cache.Lookup(p.key); ok {
			p.ent = ent
			// A hot key still below the top rung is speculation fuel:
			// the idle-window pre-climber can finish the climb before
			// the next repeat arrives.
			if ent.Subnet < s.n && ent.State != nil {
				s.noteSpecCandidate(p.key, p.input)
			}
			if ent.Subnet >= p.ladderCap {
				p.cacheHit = true
				s.cache.Touch(p.key)
				logits := append([]float64(nil), ent.Logits...)
				s.answer(p, logits, ent.Subnet)
				continue
			}
		}
		keep = append(keep, p)
	}
	return keep
}

// rowMargin returns the top-2 logit margin and the argmax of row i of
// a batched output tensor — the confidence statistic the early exit
// thresholds. Allocation-free (it indexes the engine-owned output in
// place). A single-class model reports an infinite-like margin via
// the raw logit; callers with one class should not arm the exit.
func rowMargin(out *tensor.Tensor, i, classes int) (margin float64, pred int) {
	row := out.Data()[i*classes : (i+1)*classes]
	best, second := 0, -1
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			second = best
			best = j
		} else if second < 0 || row[j] > row[second] {
			second = j
		}
	}
	if second < 0 {
		return row[best], best
	}
	return row[best] - row[second], best
}

// exitThreshold is the margin a rung predicting class pred must clear
// for a priority-class request to exit early: the configured base
// (per-predicted-class when ExitMargins is set, the scalar ExitMargin
// otherwise) divided by the governor's relax-exit scale for the
// priority class — brownout stage 0 halves the evidence required
// rather than narrowing anyone's answer.
func (s *Server) exitThreshold(pred, class int, pol governor.Policy) float64 {
	base := s.cfg.ExitMargin
	if len(s.cfg.ExitMargins) > 0 {
		base = s.cfg.ExitMargins[pred]
	}
	return base / pol.ClassExitScale(class)
}

// CalibrateExitMargins derives per-predicted-class early-exit margin
// thresholds for a model by walking calibration inputs up the full
// ladder: whenever an intermediate rung's argmax DISAGREES with the
// full-ladder answer, that rung's margin is dangerous evidence for
// the class it predicted, and the class's threshold must exceed it.
// The returned slice (length = the model's output classes) is
// max(dangerous margin)·(1+slack) per class, floored at floor — by
// construction, an early exit thresholded on it never changes the
// predicted class on the calibration set (only rungs ≥ minSubnet
// matter; narrower rungs are never exit candidates). Feed the result
// to Config.ExitMargins. Deterministic for a fixed model and input
// set; inputs must match the model's input geometry.
func CalibrateExitMargins(m *models.Model, subnets, minSubnet int, inputs [][]float64, slack, floor float64) ([]float64, error) {
	if subnets < 1 {
		return nil, fmt.Errorf("serve: calibrate-exit needs ≥1 subnets, got %d", subnets)
	}
	if minSubnet < 1 {
		minSubnet = 1
	}
	if slack < 0 || floor < 0 {
		return nil, fmt.Errorf("serve: negative slack %v or floor %v", slack, floor)
	}
	imgLen := m.InC * m.InH * m.InW
	margins := make([]float64, m.Classes)
	e := infer.NewEngine(m.Net)
	e.Workers = 1
	defer e.Close()
	x := tensor.New(1, m.InC, m.InH, m.InW)
	rungPred := make([]int, subnets+1)
	rungMargin := make([]float64, subnets+1)
	for ii, in := range inputs {
		if len(in) != imgLen {
			return nil, fmt.Errorf("serve: calibrate-exit input %d length %d, model wants %d", ii, len(in), imgLen)
		}
		copy(x.Data(), in)
		e.Reset(x)
		for rung := 1; rung <= subnets; rung++ {
			out, _, err := e.Step(rung)
			if err != nil {
				return nil, err
			}
			rungMargin[rung], rungPred[rung] = rowMargin(out, 0, m.Classes)
		}
		final := rungPred[subnets]
		for rung := minSubnet; rung < subnets; rung++ {
			if rungPred[rung] != final && rungMargin[rung] >= margins[rungPred[rung]] {
				margins[rungPred[rung]] = rungMargin[rung]
			}
		}
	}
	for j := range margins {
		if margins[j] > 0 {
			// Strictly above the worst dangerous margin even at slack
			// 0: the exit triggers on margin ≥ threshold.
			margins[j] = math.Nextafter(margins[j]*(1+slack), math.Inf(1))
		}
		if margins[j] < floor {
			margins[j] = floor
		}
	}
	return margins, nil
}
