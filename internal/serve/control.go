package serve

import (
	"sort"
	"time"

	"steppingnet/internal/governor"
)

// classTick is the cumulative per-class counter totals one control
// tick diffs against the next, so the controller sees per-interval
// served/hit-rate figures rather than lifetime averages.
type classTick struct {
	served      int64
	deadlineMet int64
}

// controlObs distills the per-class serving stats into one control
// tick's observations: the percentile ring's p99 (the recent served
// window — smooth, at the cost of a little post-recovery stickiness)
// plus served count and deadline hit rate over exactly the interval
// since prev. Returns the observations and the new totals to diff the
// next tick against. Allocation is bounded by the ring sizes and it
// takes the stats lock only to copy, so a tick never stalls the
// serving path.
func (st *Stats) controlObs(prev []classTick) ([]governor.ClassObs, []classTick) {
	st.mu.Lock()
	next := make([]classTick, len(st.byClass))
	rings := make([][]time.Duration, len(st.byClass))
	for c := range st.byClass {
		cc := &st.byClass[c]
		next[c] = classTick{served: cc.served, deadlineMet: cc.deadlineMet}
		rings[c] = cc.lats.samples()
	}
	st.mu.Unlock()

	obs := make([]governor.ClassObs, len(next))
	for c := range next {
		served, met := next[c].served, next[c].deadlineMet
		if c < len(prev) {
			served -= prev[c].served
			met -= prev[c].deadlineMet
		}
		sort.Slice(rings[c], func(i, j int) bool { return rings[c][i] < rings[c][j] })
		o := governor.ClassObs{Served: served, HitRate: 1}
		if n := len(rings[c]); n > 0 {
			o.P99 = rings[c][pctIdx(n, 0.99)]
		}
		if served > 0 {
			o.HitRate = float64(met) / float64(served)
		}
		obs[c] = o
	}
	return obs, next
}

// controlLoop ticks the overload governor every ControlInterval until
// Close. It shares the refresh loop's stop channel: both are
// background recalibration loops that must die before Close returns.
func (s *Server) controlLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ControlInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopRefresh:
			return
		case <-t.C:
			s.controlTick()
		}
	}
}

// controlTick runs one governor cycle: sense (per-class rings and
// hit-rate deltas), decide (Controller.Tick), actuate (atomic policy
// swap) and count (SLO violations and brownout transitions into the
// stats). It is the whole closed loop; the background controlLoop just
// calls it on a timer, and the drift tests call it directly for
// step-clocked determinism. No-op on servers without SLOs.
func (s *Server) controlTick() {
	if s.ctl == nil {
		return
	}
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	obs, next := s.stats.controlObs(s.ctlPrev)
	s.ctlPrev = next
	res := s.ctl.Tick(obs)
	s.policy.Store(res.Policy)
	for _, c := range res.Violations {
		s.stats.recordSLOViolation(c)
	}
	for _, tr := range res.Transitions {
		s.stats.recordBrownout(tr.Class)
	}
}

// Policy returns the overload governor's currently published actuator
// set (the neutral zero policy on servers without SLOs, or before the
// first tick). The returned slices are shared snapshots and must not
// be mutated.
func (s *Server) Policy() governor.Policy { return s.policy.Load() }
