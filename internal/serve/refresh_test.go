package serve

import (
	"testing"
	"time"

	"steppingnet/internal/governor"
	"steppingnet/internal/models"
)

// driftModel is a fabricated calibration with a cheap first step and
// two expensive ones — deadlines between WalkTime(1) and WalkTime(3)
// make the scheduler's narrowing decisions observable.
func driftModel(m *models.Model, base time.Duration) governor.LatencyModel {
	return governor.LatencyModel{
		StepMACs: governor.StepCosts(m, 3),
		StepTime: []time.Duration{time.Nanosecond, base, base},
	}
}

// TestCalibrationRefreshTracksDrift is the deterministic
// serving-hardening acceptance test for the refresh loop: after a 3×
// artificial step-latency inflation is fed into the live sampler, one
// refresh re-converges the latency model onto the inflated costs and
// the scheduler's admission/narrowing decisions track the new
// numbers — a deadline that afforded the full ladder under the stale
// model is now answered from subnet 1.
func TestCalibrationRefreshTracksDrift(t *testing.T) {
	m := buildModel(40)
	base := 40 * time.Millisecond
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1,
		Calibration: driftModel(m, base),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	in := inputVec(41, srv.imgLen)

	// Under the startup calibration a 100ms deadline affords both
	// 40ms steps (walk time ~80ms ≪ real walk ~µs, so the answer is
	// deterministic).
	res, err := srv.Submit(Request{Input: in, Deadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subnet != 3 {
		t.Fatalf("pre-drift answer from subnet %d, want 3", res.Subnet)
	}

	// Inject the drift: the machine now takes 3× longer per step.
	// Feeding the EWMA identical samples converges it exactly onto
	// the inflated value (the first observation seeds the average).
	inflated := 3 * base
	for i := 0; i < 64; i++ {
		for s := 1; s <= 3; s++ {
			srv.ref.observe(s, inflated)
		}
	}
	if !srv.refreshCalibration() {
		t.Fatal("refresh saw 64 drifted observations per step but published nothing")
	}
	lm := srv.Latency()
	for s := 2; s <= 3; s++ {
		got := lm.StepTime[s-1]
		if got < inflated*9/10 || got > inflated*11/10 {
			t.Fatalf("step %d re-converged to %v, want ~%v", s, got, inflated)
		}
	}
	if srv.Stats().Refreshes != 1 {
		t.Fatalf("refresh counter = %d, want 1", srv.Stats().Refreshes)
	}

	// Admission decisions now track the inflated model: the same
	// 100ms deadline cannot afford a 120ms step, so the answer
	// narrows to subnet 1.
	res, err = srv.Submit(Request{Input: in, Deadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subnet != 1 {
		t.Fatalf("post-drift answer from subnet %d, want 1 (deadline cannot afford inflated steps)", res.Subnet)
	}

	// A second refresh with no new drift publishes nothing.
	if srv.refreshCalibration() {
		t.Fatal("refresh republished an unchanged model")
	}
}

// TestRefreshRequiresMinObservations: a lone outlier must not repoint
// the deadline model — steps below the observation floor keep their
// calibrated cost.
func TestRefreshRequiresMinObservations(t *testing.T) {
	m := buildModel(42)
	base := 10 * time.Millisecond
	srv, err := New(Config{Model: m, Subnets: 3, Workers: 1, Calibration: driftModel(m, base)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	srv.ref.observe(2, time.Hour) // one cold-cache outlier
	if srv.refreshCalibration() {
		t.Fatal("a single observation must not trigger a refresh")
	}
	if got := srv.Latency().StepTime[1]; got != base {
		t.Fatalf("step 2 moved to %v on one observation, want %v", got, base)
	}
}

// TestRefreshLoopRunsLive exercises the background path end to end:
// with a (deliberately wrong) nanosecond injected calibration and the
// refresh loop enabled, real served traffic feeds StepTimer
// observations and the loop swaps in measured step costs without any
// test intervention.
func TestRefreshLoopRunsLive(t *testing.T) {
	m := buildModel(43)
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1,
		Calibration:     instantSteps(m, 3),
		DefaultDeadline: time.Hour,
		RefreshInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	in := inputVec(44, srv.imgLen)

	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Refreshes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("refresh loop never published a live-measured model")
		}
		if _, err := srv.Submit(Request{Input: in}); err != nil {
			t.Fatal(err)
		}
	}
	// The nanosecond fiction must have been replaced by real timings.
	if got := srv.Latency().StepTime[0]; got <= time.Nanosecond {
		t.Fatalf("live refresh kept the injected %v step time", got)
	}
}
