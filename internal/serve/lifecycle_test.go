package serve

import (
	"encoding/json"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"steppingnet/internal/infer"
	"steppingnet/internal/serve/cache"
)

// fakeClock is the injectable cache clock the TTL tests advance by
// hand (safe for concurrent use — the chaos test advances it while
// workers stamp entries).
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// TestCacheTTLExpiresAtServeLevel pins the TTL lifecycle end to end:
// a repeat inside the TTL is a free cache hit, a repeat past it walks
// cold (the expired entry is evicted with Expired attribution, seen
// through the Snapshot), and the cold walk repopulates the key so the
// next repeat hits again.
func TestCacheTTLExpiresAtServeLevel(t *testing.T) {
	m := buildModel(451)
	clk := &fakeClock{}
	sv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1, CacheEntries: 16,
		CacheTTL: time.Second, CacheNow: clk.now,
		Calibration: instantSteps(m, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	in := inputVec(452, m.InC*m.InH*m.InW)

	first, err := sv.Submit(Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(500 * time.Millisecond)
	inTTL, err := sv.Submit(Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !inTTL.CacheHit {
		t.Fatalf("repeat inside the TTL not served from cache: %+v", inTTL)
	}
	clk.advance(2 * time.Second)
	past, err := sv.Submit(Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if past.CacheHit || past.Resumed {
		t.Fatalf("repeat past the TTL used the stale entry: %+v", past)
	}
	if past.Subnet != first.Subnet || past.MACs == 0 {
		t.Fatalf("post-expiry walk %+v, want a full cold walk to %d", past, first.Subnet)
	}
	snap := sv.Stats()
	if snap.CacheExpired != 1 || snap.CacheInvalidated != 0 {
		t.Fatalf("expiry attribution Expired=%d Invalidated=%d, want 1/0", snap.CacheExpired, snap.CacheInvalidated)
	}
	if snap.CacheEvictions < 1 {
		t.Fatalf("expiry did not count as an eviction: %+v", snap)
	}
	// The cold walk restamped the key: live again.
	again, err := sv.Submit(Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatalf("repeat after repopulation not served from cache: %+v", again)
	}
}

// TestCalibrationSwapInvalidatesCache pins the generation half of the
// lifecycle: when the refresh loop publishes a new latency model, the
// cache generation bumps, so a repeat of a previously cached input
// must walk cold (Invalidated attribution) instead of resuming from
// state observed under the old calibration — and the cold walk
// repopulates the key under the new generation.
func TestCalibrationSwapInvalidatesCache(t *testing.T) {
	m := buildModel(461)
	sv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1, CacheEntries: 16,
		Calibration: instantSteps(m, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	in := inputVec(462, m.InC*m.InH*m.InW)

	if _, err := sv.Submit(Request{Input: in, Deadline: time.Hour}); err != nil {
		t.Fatal(err)
	}
	warm, err := sv.Submit(Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatalf("pre-swap repeat not served from cache: %+v", warm)
	}
	// Drive a calibration refresh exactly as the background loop
	// would: enough live observations that differ from the current
	// model, then one refreshCalibration call.
	for i := 0; i < refreshMinObs; i++ {
		sv.ref.observe(1, 123*time.Microsecond)
	}
	if !sv.refreshCalibration() {
		t.Fatal("refresh with fresh observations did not publish")
	}
	post, err := sv.Submit(Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if post.CacheHit || post.Resumed {
		t.Fatalf("post-swap repeat used pre-swap cache state: %+v", post)
	}
	snap := sv.Stats()
	if snap.CacheInvalidated != 1 || snap.CacheGeneration != 1 || snap.Refreshes != 1 {
		t.Fatalf("swap accounting Invalidated=%d Generation=%d Refreshes=%d, want 1/1/1",
			snap.CacheInvalidated, snap.CacheGeneration, snap.Refreshes)
	}
	// Repopulated under the new generation: hits again.
	again, err := sv.Submit(Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatalf("repeat after repopulation not served from cache: %+v", again)
	}
}

// TestSpeculativePreClimbWidensEntry pins the idle-window speculator:
// a hot key stuck below the top rung (its submits can never afford
// the deliberately unaffordable final step) is pre-climbed during
// idle, so a later identical tight-deadline submit is answered from
// the cache at the FULL ladder — bitwise equal to a cold top walk,
// with the pre-climb's MACs metered separately from request traffic.
func TestSpeculativePreClimbWidensEntry(t *testing.T) {
	m := buildModel(471)
	imgLen := m.InC * m.InH * m.InW
	coldOuts, coldMACs := coldLadder(t, m, inputVec(472, imgLen), 3)
	sv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1, CacheEntries: 16,
		Speculate:   true,
		Calibration: slowTopStep(m, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	in := inputVec(472, imgLen)

	tight1, err := sv.Submit(Request{Input: in, Deadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if tight1.Subnet != 2 || tight1.CacheHit || tight1.Resumed {
		t.Fatalf("first tight submit %+v, want cold stop at 2", tight1)
	}
	// The repeat hits the rung-2 entry (still below its cap), resumes,
	// still cannot afford rung 3 — and seeds the candidate ring.
	tight2, err := sv.Submit(Request{Input: in, Deadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if tight2.Subnet != 2 || !tight2.Resumed {
		t.Fatalf("second tight submit %+v, want resumed answer at 2", tight2)
	}
	// Idle window: the speculator must finish the climb on its own.
	k := cache.KeyOf(in)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ent, ok := sv.CachePeek(k); ok && ent.Subnet == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("speculator never pre-climbed the hot key to the top (stats %+v)", sv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	tight3, err := sv.Submit(Request{Input: in, Deadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !tight3.CacheHit || tight3.Subnet != 3 || tight3.MACs != 0 {
		t.Fatalf("post-speculation repeat %+v, want a zero-MAC full-ladder cache hit", tight3)
	}
	for i, v := range tight3.Logits {
		if v != coldOuts[3][i] {
			t.Fatalf("speculated logit[%d]=%v, cold walk %v", i, v, coldOuts[3][i])
		}
	}
	snap := sv.Stats()
	if snap.Speculated != 1 || snap.SpeculativeMACs != coldMACs[3] {
		t.Fatalf("speculation meters Speculated=%d MACs=%d, want 1 step costing exactly %d",
			snap.Speculated, snap.SpeculativeMACs, coldMACs[3])
	}
	if want := tight1.MACs + tight2.MACs + tight3.MACs; snap.TotalMACs != want {
		t.Fatalf("TotalMACs %d includes speculative work, want request-only %d", snap.TotalMACs, want)
	}
}

// TestWarmInstallServesTransferredEntry pins the serve-side halves of
// affinity-aware warming: CachePeek exports an entry without touching
// hit/miss counters or recency, the state survives the wire round
// trip bitwise, and WarmInstall on a second server makes the repeat a
// zero-MAC full-rung cache hit there, counted in CacheWarmed.
func TestWarmInstallServesTransferredEntry(t *testing.T) {
	m := buildModel(481)
	mk := func() *Server {
		sv, err := New(Config{
			Model: m, Subnets: 3, Workers: 1, CacheEntries: 16,
			Calibration: instantSteps(m, 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		return sv
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	in := inputVec(482, m.InC*m.InH*m.InW)

	first, err := a.Submit(Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	k := cache.KeyOf(in)
	ent, ok := a.CachePeek(k)
	if !ok || ent.Subnet != first.Subnet || ent.State == nil {
		t.Fatalf("CachePeek after a full walk: ok=%v ent=%+v", ok, ent)
	}
	// Simulate the router's transfer: serialize the state to JSON and
	// rebuild it, exactly as the /cache/entry wire endpoint does.
	w, err := ent.State.Wire()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var ws infer.WireState
	if err := json.Unmarshal(blob, &ws); err != nil {
		t.Fatal(err)
	}
	st, err := ws.State()
	if err != nil {
		t.Fatal(err)
	}
	installed := &cache.Entry{
		Subnet: ent.Subnet,
		Logits: append([]float64(nil), ent.Logits...),
		State:  st,
	}
	if !b.WarmInstall(k, installed) {
		t.Fatal("WarmInstall rejected a fresh transferred entry")
	}
	repeat, err := b.Submit(Request{Input: in, Deadline: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !repeat.CacheHit || repeat.MACs != 0 || repeat.Subnet != first.Subnet {
		t.Fatalf("warmed repeat %+v, want zero-MAC hit at %d", repeat, first.Subnet)
	}
	for i, v := range repeat.Logits {
		if v != first.Logits[i] {
			t.Fatalf("warmed logit[%d]=%v, origin %v", i, v, first.Logits[i])
		}
	}
	if snapB := b.Stats(); snapB.CacheWarmed != 1 || snapB.CacheHits != 1 {
		t.Fatalf("warm target counters %+v, want CacheWarmed=1 CacheHits=1", snapB)
	}
	// Peeking for export must not have counted traffic on the origin.
	if snapA := a.Stats(); snapA.CacheHits != 0 {
		t.Fatalf("CachePeek counted a hit on the origin: %+v", snapA)
	}
}

// TestChaosCacheStaleness hammers the full cache lifecycle under
// -race: concurrent submitters replay a small hot set with mixed
// deadlines while a churn goroutine advances the TTL clock and bumps
// the generation — TTL expiry, invalidation, speculation, resume and
// repopulation all interleave. Every answer must stay bitwise equal
// to the cold walk at its answered rung, and the cache's counter
// identity must hold at quiescence. Wired into the ci.sh chaos stage.
func TestChaosCacheStaleness(t *testing.T) {
	m := buildModel(491)
	imgLen := m.InC * m.InH * m.InW
	const nInputs = 4
	inputs := make([][]float64, nInputs)
	refs := make([][][]float64, nInputs)
	for i := range inputs {
		inputs[i] = inputVec(uint64(900+i), imgLen)
		refs[i], _ = coldLadder(t, m, inputs[i], 3)
	}
	clk := &fakeClock{}
	sv, err := New(Config{
		Model: m, Subnets: 3, Workers: 2, CacheEntries: 8,
		CacheTTL: 50 * time.Millisecond, CacheNow: clk.now,
		Speculate: true, QueueDepth: 256,
		Calibration: slowTopStep(m, 3),
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		rng := rand.New(rand.NewSource(77))
		for {
			select {
			case <-stop:
				return
			default:
			}
			clk.advance(time.Duration(rng.Intn(int(20 * time.Millisecond))))
			if rng.Intn(4) == 0 {
				sv.cache.BumpGeneration()
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				idx := rng.Intn(nInputs)
				d := 50 * time.Millisecond
				if rng.Intn(2) == 0 {
					d = 1000 * time.Hour
				}
				res, err := sv.Submit(Request{Input: inputs[idx], Deadline: d})
				if err != nil {
					if errors.Is(err, ErrOverloaded) {
						continue
					}
					t.Errorf("submit: %v", err)
					return
				}
				if res.Subnet < 1 || res.Subnet > 3 {
					t.Errorf("answer at impossible rung %d", res.Subnet)
					return
				}
				want := refs[idx][res.Subnet]
				for j, v := range res.Logits {
					if v != want[j] {
						t.Errorf("input %d rung %d logit[%d]=%v, cold %v (hit=%v resumed=%v)",
							idx, res.Subnet, j, v, want[j], res.CacheHit, res.Resumed)
						return
					}
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	sv.Close()

	cs := sv.cache.Stats()
	if int64(cs.Len) != cs.Counters.Inserts-cs.Counters.Evictions {
		t.Fatalf("counter identity broken at quiescence: %+v", cs)
	}
	if cs.Counters.Expired+cs.Counters.Invalidated > cs.Counters.Evictions {
		t.Fatalf("attribution exceeds evictions: %+v", cs.Counters)
	}
	snap := sv.Stats()
	if snap.Submitted != snap.Served+snap.Rejected {
		t.Fatalf("invariant broken: submitted %d != served %d + rejected %d",
			snap.Submitted, snap.Served, snap.Rejected)
	}
}
