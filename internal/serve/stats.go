package serve

import (
	"math"
	"sort"
	"sync"
	"time"
)

// latRingSize bounds the global latency reservoir the percentile
// estimates are computed from: large enough that p99 over recent
// traffic is meaningful, small enough that a Snapshot sort stays off
// any hot path's critical section.
const latRingSize = 4096

// classRingSize bounds the per-priority-class latency reservoirs
// (smaller than the global ring — per-class percentiles cover a
// narrower slice of traffic).
const classRingSize = 1024

// latRing is a fixed-size reservoir of recent latency samples.
type latRing struct {
	buf   []time.Duration
	idx   int
	count int
}

func newLatRing(size int) latRing {
	return latRing{buf: make([]time.Duration, size)}
}

// push records one sample, overwriting the oldest once full.
func (r *latRing) push(d time.Duration) {
	r.buf[r.idx] = d
	r.idx = (r.idx + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

// samples copies out the valid window (unordered; callers sort).
func (r *latRing) samples() []time.Duration {
	return append([]time.Duration(nil), r.buf[:r.count]...)
}

// classCounters accumulates the per-priority-class serving counters.
type classCounters struct {
	submitted     int64
	rejected      int64
	served        int64
	deadlineMet   int64
	sloViolations int64
	brownouts     int64
	cacheHits     int64
	cacheResumes  int64
	earlyExits    int64
	bySubnet      []int64
	lats          latRing
}

// Stats accumulates serving counters. One instance per Server; all
// methods are safe for concurrent use.
type Stats struct {
	mu            sync.Mutex
	submitted     int64
	rejected      int64
	served        int64
	deadlineMet   int64
	refreshes     int64
	sloViolations int64
	brownouts     int64
	cacheHits     int64
	cacheResumes  int64
	earlyExits    int64
	totalMACs     int64
	bySubnet      []int64 // answers per subnet, index s-1
	byClass       []classCounters
	lats          latRing // recent end-to-end latencies, all classes
}

func newStats(n, priorities int) *Stats {
	st := &Stats{
		bySubnet: make([]int64, n),
		byClass:  make([]classCounters, priorities),
		lats:     newLatRing(latRingSize),
	}
	for c := range st.byClass {
		st.byClass[c].bySubnet = make([]int64, n)
		st.byClass[c].lats = newLatRing(classRingSize)
	}
	return st
}

// class clamps a priority into the tracked range (Submit clamps too;
// this keeps the stats layer safe standalone).
func (st *Stats) class(c int) *classCounters {
	if c < 0 {
		c = 0
	}
	if c >= len(st.byClass) {
		c = len(st.byClass) - 1
	}
	return &st.byClass[c]
}

func (st *Stats) recordSubmitted(class int) {
	st.mu.Lock()
	st.submitted++
	st.class(class).submitted++
	st.mu.Unlock()
}

func (st *Stats) recordRejected(class int) {
	st.mu.Lock()
	st.rejected++
	st.class(class).rejected++
	st.mu.Unlock()
}

func (st *Stats) recordRefresh() {
	st.mu.Lock()
	st.refreshes++
	st.mu.Unlock()
}

// recordSLOViolation counts one control tick that observed class c
// violating its SLO (monotonic; one per violating class per tick).
func (st *Stats) recordSLOViolation(class int) {
	st.mu.Lock()
	st.sloViolations++
	st.class(class).sloViolations++
	st.mu.Unlock()
}

// recordBrownout counts one brownout ladder move (escalation or
// recovery) applied to class c (monotonic).
func (st *Stats) recordBrownout(class int) {
	st.mu.Lock()
	st.brownouts++
	st.class(class).brownouts++
	st.mu.Unlock()
}

func (st *Stats) recordServed(res Result) {
	st.mu.Lock()
	st.served++
	cc := st.class(res.Priority)
	cc.served++
	if res.DeadlineMet {
		st.deadlineMet++
		cc.deadlineMet++
	}
	if res.CacheHit {
		st.cacheHits++
		cc.cacheHits++
	}
	if res.Resumed {
		st.cacheResumes++
		cc.cacheResumes++
	}
	if res.EarlyExit {
		st.earlyExits++
		cc.earlyExits++
	}
	st.totalMACs += res.MACs
	if res.Subnet >= 1 && res.Subnet <= len(st.bySubnet) {
		st.bySubnet[res.Subnet-1]++
		cc.bySubnet[res.Subnet-1]++
	}
	st.lats.push(res.Latency)
	cc.lats.push(res.Latency)
	st.mu.Unlock()
}

// ClassSnapshot is the per-priority-class slice of a Snapshot: the
// counters that show whether overload is being absorbed by the right
// traffic (low classes shed and narrow first, high classes keep their
// deadline hit rate and subnet distribution).
type ClassSnapshot struct {
	// Priority is the class index (0 = lowest).
	Priority int `json:"priority"`
	// Submitted counts this class's admission attempts.
	Submitted int64 `json:"submitted"`
	// Rejected counts this class's error answers (ErrOverloaded
	// fast-fails, plus worker-surfaced engine failures).
	Rejected int64 `json:"rejected"`
	// Served counts this class's answered requests.
	Served int64 `json:"served"`
	// DeadlineMet counts this class's answers delivered in time.
	DeadlineMet int64 `json:"deadline_met"`
	// DeadlineHitRate is DeadlineMet/Served (0 when nothing served).
	DeadlineHitRate float64 `json:"deadline_hit_rate"`
	// BySubnet histograms this class's answers over the ladder,
	// index s-1.
	BySubnet []int64 `json:"by_subnet"`
	// P50Ms is this class's median end-to-end latency over its
	// recent window, in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	// P99Ms is the 99th-percentile latency of the same window.
	P99Ms float64 `json:"p99_ms"`
	// SLOViolations counts control ticks that observed this class
	// violating its SLO (monotonic; 0 without a governor).
	SLOViolations int64 `json:"slo_violations"`
	// BrownoutTransitions counts brownout ladder moves — escalations
	// and recoveries — applied to this class (monotonic).
	BrownoutTransitions int64 `json:"brownout_transitions"`
	// CacheHits counts this class's answers served entirely from the
	// semantic result cache (zero MACs; 0 with the cache off).
	CacheHits int64 `json:"cache_hits"`
	// CacheResumes counts this class's walks seeded from a cached rung
	// instead of rung 0.
	CacheResumes int64 `json:"cache_resumes"`
	// EarlyExits counts this class's answers returned by the
	// confidence early exit below their affordable ladder cap.
	EarlyExits int64 `json:"early_exits"`
}

// Snapshot is a point-in-time copy of the serving counters, shaped
// for JSON (the /stats endpoint of cmd/stepserve).
type Snapshot struct {
	// Submitted counts admission attempts (accepted + rejected).
	Submitted int64 `json:"submitted"`
	// Rejected counts requests answered with an error: ErrOverloaded
	// fast-fails (class queue share exhausted or deadline unmeetable
	// at the measured backlog) and, in the pathological case, engine
	// failures surfaced by a worker.
	Rejected int64 `json:"rejected"`
	// Served counts answered requests.
	Served int64 `json:"served"`
	// DeadlineMet counts answers delivered before their deadline.
	DeadlineMet int64 `json:"deadline_met"`
	// DeadlineHitRate is DeadlineMet/Served (0 when nothing served).
	DeadlineHitRate float64 `json:"deadline_hit_rate"`
	// BySubnet histograms answers over the ladder, index s-1 — the
	// distribution that shifts toward narrow subnets under overload.
	BySubnet []int64 `json:"by_subnet"`
	// Classes breaks the counters down per priority class, index =
	// priority (one entry, mirroring the globals, when priorities are
	// not configured).
	Classes []ClassSnapshot `json:"classes"`
	// TotalMACs sums the per-request MACs actually executed.
	TotalMACs int64 `json:"total_macs"`
	// Refreshes counts calibration-refresh swaps of the latency
	// model since startup (0 with the refresh loop disabled).
	Refreshes int64 `json:"refreshes"`
	// P50Ms is the median end-to-end latency (queue wait + walk)
	// over the most recent window of served requests, in
	// milliseconds.
	P50Ms float64 `json:"p50_ms"`
	// P90Ms is the 90th-percentile latency of the same window.
	P90Ms float64 `json:"p90_ms"`
	// P99Ms is the 99th-percentile latency of the same window.
	P99Ms float64 `json:"p99_ms"`
	// QueueLen gauges admission-queue occupancy at snapshot time.
	QueueLen int `json:"queue_len"`
	// QueueCap is the admission queue's configured bound.
	QueueCap int `json:"queue_cap"`
	// Workers is the engine-pool size serving requests.
	Workers int `json:"workers"`
	// MinSubnet is the narrowest answer this server is configured to
	// return (Config.MinSubnet) — together with StepTimeMs it lets a
	// remote router compute the cheapest walk this replica can
	// possibly serve, the floor its deadline-aware retry policy
	// checks before re-dispatching a request here.
	MinSubnet int `json:"min_subnet"`
	// ServiceEwmaMs is the smoothed per-request service time the
	// admission controller predicts queue waits with, in
	// milliseconds (0 until the first batch completes).
	ServiceEwmaMs float64 `json:"service_ewma_ms"`
	// MACRate is the calibrated throughput (MACs/second) the
	// deadline scheduler plans with.
	MACRate float64 `json:"mac_rate"`
	// StepTimeMs lists the per-step latencies of the latency model
	// currently planned with (startup calibration or the latest
	// refresh), index s-1.
	StepTimeMs []float64 `json:"step_time_ms"`
	// SLOViolations totals the per-class SLO-violation ticks (0
	// without a governor).
	SLOViolations int64 `json:"slo_violations"`
	// BrownoutTransitions totals the per-class brownout ladder moves.
	BrownoutTransitions int64 `json:"brownout_transitions"`
	// Policy is the overload governor's currently published actuator
	// set; nil on servers without SLOs configured.
	Policy *PolicySnapshot `json:"policy,omitempty"`
	// CacheEnabled reports whether the semantic result cache is armed
	// (Config.CacheEntries > 0).
	CacheEnabled bool `json:"cache_enabled"`
	// CacheHits totals the answers served entirely from the semantic
	// result cache.
	CacheHits int64 `json:"cache_hits"`
	// CacheResumes totals the walks seeded from a cached rung.
	CacheResumes int64 `json:"cache_resumes"`
	// EarlyExits totals the confidence early-exit answers.
	EarlyExits int64 `json:"early_exits"`
	// CacheEntries gauges the cache's live entry count at snapshot
	// time (0 with the cache off).
	CacheEntries int `json:"cache_entries"`
	// CacheBytes gauges the cache's accounted memory footprint.
	CacheBytes int64 `json:"cache_bytes"`
	// CacheEvictions counts entries the cache removed for any reason:
	// the LRU bounds, TTL expiry, or generation invalidation.
	CacheEvictions int64 `json:"cache_evictions"`
	// CacheExpired attributes evictions caused by the TTL bound
	// (Config.CacheTTL): the entry was found past its lifetime at
	// lookup and removed. Each also counts in CacheEvictions.
	CacheExpired int64 `json:"cache_expired"`
	// CacheInvalidated attributes evictions caused by a generation
	// bump (a model or calibration swap underneath the cache). Each
	// also counts in CacheEvictions.
	CacheInvalidated int64 `json:"cache_invalidated"`
	// CacheGeneration is the cache's current generation stamp —
	// incremented on every calibration-refresh swap.
	CacheGeneration uint64 `json:"cache_generation"`
	// Speculated counts idle-window speculative pre-climb steps
	// executed (Config.Speculate; 0 with speculation off).
	Speculated int64 `json:"speculated"`
	// SpeculativeMACs sums the MACs spent by speculative pre-climbs —
	// metered separately so TotalMACs keeps meaning "MACs spent on
	// request traffic".
	SpeculativeMACs int64 `json:"speculative_macs"`
	// CacheWarmed counts cache entries installed by peer transfer
	// (Server.WarmInstall — the router's affinity-aware warming).
	CacheWarmed int64 `json:"cache_warmed"`
}

// PolicySnapshot is the JSON shape of the overload governor's current
// policy in a Snapshot — what a `stepserve -route` operator reads to
// see which replica is browning out, and how deep.
type PolicySnapshot struct {
	// ShedCap[c] is class c's policy ladder cap (0 = unconstrained).
	ShedCap []int `json:"shed_cap"`
	// AdmitScale[c] is class c's admission-strictness multiplier
	// (≤ 1 = neutral).
	AdmitScale []float64 `json:"admit_scale"`
	// QueueShare[c] is class c's overridden queue share (0 = the
	// configured nested share).
	QueueShare []int `json:"queue_share"`
	// Lookahead is the batch former's deadline-headroom compatibility
	// ratio (0 = grouping off).
	Lookahead float64 `json:"lookahead"`
	// Level[c] is class c's brownout ladder depth (0 = untouched).
	Level []int `json:"level"`
	// MaxLevel is the deepest current per-class level — the one-glance
	// "how browned out is this replica" gauge.
	MaxLevel int `json:"max_level"`
}

// snapshot copies the counters and computes the latency percentiles.
func (st *Stats) snapshot() Snapshot {
	st.mu.Lock()
	snap := Snapshot{
		Submitted:           st.submitted,
		Rejected:            st.rejected,
		Served:              st.served,
		DeadlineMet:         st.deadlineMet,
		Refreshes:           st.refreshes,
		SLOViolations:       st.sloViolations,
		BrownoutTransitions: st.brownouts,
		CacheHits:           st.cacheHits,
		CacheResumes:        st.cacheResumes,
		EarlyExits:          st.earlyExits,
		TotalMACs:           st.totalMACs,
		BySubnet:            append([]int64(nil), st.bySubnet...),
		Classes:             make([]ClassSnapshot, len(st.byClass)),
	}
	lats := st.lats.samples()
	classLats := make([][]time.Duration, len(st.byClass))
	for c := range st.byClass {
		cc := &st.byClass[c]
		snap.Classes[c] = ClassSnapshot{
			Priority:            c,
			Submitted:           cc.submitted,
			Rejected:            cc.rejected,
			Served:              cc.served,
			DeadlineMet:         cc.deadlineMet,
			SLOViolations:       cc.sloViolations,
			BrownoutTransitions: cc.brownouts,
			CacheHits:           cc.cacheHits,
			CacheResumes:        cc.cacheResumes,
			EarlyExits:          cc.earlyExits,
			BySubnet:            append([]int64(nil), cc.bySubnet...),
		}
		classLats[c] = cc.lats.samples()
	}
	st.mu.Unlock()

	if snap.Served > 0 {
		snap.DeadlineHitRate = float64(snap.DeadlineMet) / float64(snap.Served)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	snap.P50Ms = PercentileMs(lats, 0.50)
	snap.P90Ms = PercentileMs(lats, 0.90)
	snap.P99Ms = PercentileMs(lats, 0.99)
	for c := range snap.Classes {
		cs := &snap.Classes[c]
		if cs.Served > 0 {
			cs.DeadlineHitRate = float64(cs.DeadlineMet) / float64(cs.Served)
		}
		cl := classLats[c]
		sort.Slice(cl, func(i, j int) bool { return cl[i] < cl[j] })
		cs.P50Ms = PercentileMs(cl, 0.50)
		cs.P99Ms = PercentileMs(cl, 0.99)
	}
	return snap
}

// PercentileMs returns the p-quantile of an ascending latency slice
// in milliseconds, using the nearest-rank method (the ⌈p·n⌉-th
// smallest sample), or 0 for an empty slice. Exported for load
// generators and monitoring code that aggregate their own latency
// samples alongside the server's Snapshot.
func PercentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return float64(sorted[pctIdx(len(sorted), p)]) / float64(time.Millisecond)
}

// pctIdx is the nearest-rank index of the p-quantile in an n-sample
// ascending slice, clamped to a valid index (n ≥ 1).
func pctIdx(n int, p float64) int {
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
