package serve

import (
	"sort"
	"sync"
	"time"
)

// latRingSize bounds the latency reservoir the percentile estimates
// are computed from: large enough that p99 over recent traffic is
// meaningful, small enough that a Snapshot sort stays off any hot
// path's critical section.
const latRingSize = 4096

// Stats accumulates serving counters. One instance per Server; all
// methods are safe for concurrent use.
type Stats struct {
	mu          sync.Mutex
	submitted   int64
	rejected    int64
	served      int64
	deadlineMet int64
	totalMACs   int64
	bySubnet    []int64 // answers per subnet, index s-1

	latRing  []time.Duration // ring buffer of recent end-to-end latencies
	latIdx   int
	latCount int
}

func newStats(n int) *Stats {
	return &Stats{bySubnet: make([]int64, n), latRing: make([]time.Duration, latRingSize)}
}

func (st *Stats) recordSubmitted() {
	st.mu.Lock()
	st.submitted++
	st.mu.Unlock()
}

func (st *Stats) recordRejected() {
	st.mu.Lock()
	st.rejected++
	st.mu.Unlock()
}

func (st *Stats) recordServed(res Result) {
	st.mu.Lock()
	st.served++
	if res.DeadlineMet {
		st.deadlineMet++
	}
	st.totalMACs += res.MACs
	if res.Subnet >= 1 && res.Subnet <= len(st.bySubnet) {
		st.bySubnet[res.Subnet-1]++
	}
	st.latRing[st.latIdx] = res.Latency
	st.latIdx = (st.latIdx + 1) % len(st.latRing)
	if st.latCount < len(st.latRing) {
		st.latCount++
	}
	st.mu.Unlock()
}

// Snapshot is a point-in-time copy of the serving counters, shaped
// for JSON (the /stats endpoint of cmd/stepserve).
type Snapshot struct {
	// Submitted counts admission attempts (accepted + rejected).
	Submitted int64 `json:"submitted"`
	// Rejected counts the ErrOverloaded fast-fails at a full queue.
	Rejected int64 `json:"rejected"`
	// Served counts answered requests.
	Served int64 `json:"served"`
	// DeadlineMet counts answers delivered before their deadline.
	DeadlineMet int64 `json:"deadline_met"`
	// DeadlineHitRate is DeadlineMet/Served (0 when nothing served).
	DeadlineHitRate float64 `json:"deadline_hit_rate"`
	// BySubnet histograms answers over the ladder, index s-1 — the
	// distribution that shifts toward narrow subnets under overload.
	BySubnet []int64 `json:"by_subnet"`
	// TotalMACs sums the per-request MACs actually executed.
	TotalMACs int64 `json:"total_macs"`
	// P50Ms is the median end-to-end latency (queue wait + walk)
	// over the most recent window of served requests, in
	// milliseconds.
	P50Ms float64 `json:"p50_ms"`
	// P90Ms is the 90th-percentile latency of the same window.
	P90Ms float64 `json:"p90_ms"`
	// P99Ms is the 99th-percentile latency of the same window.
	P99Ms float64 `json:"p99_ms"`
	// QueueLen gauges admission-queue occupancy at snapshot time.
	QueueLen int `json:"queue_len"`
	// QueueCap is the admission queue's configured bound.
	QueueCap int `json:"queue_cap"`
	// Workers is the engine-pool size serving requests.
	Workers int `json:"workers"`
	// ServiceEwmaMs is the smoothed per-request service time the
	// admission controller predicts queue waits with, in
	// milliseconds (0 until the first batch completes).
	ServiceEwmaMs float64 `json:"service_ewma_ms"`
	// MACRate is the calibrated throughput (MACs/second) the
	// deadline scheduler plans with.
	MACRate float64 `json:"mac_rate"`
	// StepTimeMs lists the calibrated per-step latencies, index s-1.
	StepTimeMs []float64 `json:"step_time_ms"`
}

// snapshot copies the counters and computes the latency percentiles.
func (st *Stats) snapshot() Snapshot {
	st.mu.Lock()
	snap := Snapshot{
		Submitted:   st.submitted,
		Rejected:    st.rejected,
		Served:      st.served,
		DeadlineMet: st.deadlineMet,
		TotalMACs:   st.totalMACs,
		BySubnet:    append([]int64(nil), st.bySubnet...),
	}
	lats := append([]time.Duration(nil), st.latRing[:st.latCount]...)
	st.mu.Unlock()

	if snap.Served > 0 {
		snap.DeadlineHitRate = float64(snap.DeadlineMet) / float64(snap.Served)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	snap.P50Ms = PercentileMs(lats, 0.50)
	snap.P90Ms = PercentileMs(lats, 0.90)
	snap.P99Ms = PercentileMs(lats, 0.99)
	return snap
}

// PercentileMs returns the p-quantile of an ascending latency slice
// in milliseconds (nearest-rank), or 0 for an empty slice. Exported
// for load generators and monitoring code that aggregate their own
// latency samples alongside the server's Snapshot.
func PercentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
