package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"steppingnet/internal/governor"
)

// TestChaosRandomizedLifecycles is the serving layer's chaos gate,
// run under -race by ci.sh on both GEMM backends. Each iteration
// draws a random server shape (workers, queue depth, batch size,
// per-engine intra-layer worker count, priority classes, batch
// window, refresh loop on/off), slams it with a storm of concurrent
// submitters using randomized priorities and deadlines — the random
// MaxBatch and arrival jitter make every storm a mid-flight mix of
// batch-1 pops (which flip the engines into cooperative layer
// sharding when EngineWorkers > 1) and batch-N pops (image sharding /
// serial) — closes the server at a random point *during* the storm,
// possibly from several goroutines at once, and then asserts the
// lifecycle contract:
//
//   - every Submit returned exactly once, with a well-formed answer
//     or a typed error (ErrClosed / ErrOverloaded) — nothing hangs,
//     nothing is answered twice;
//   - at quiescence Submitted = Served + Rejected, globally and per
//     class (post-Close submits count as neither);
//   - the per-subnet histograms reconcile with the served counts;
//   - no goroutine survives Close (workers, former, refresh loop and
//     every engine's shard workers — image-mode AND the layer-mode
//     workers the batch-1 pops spin up — are all released, exactly
//     once; a double engine release would panic or leak);
//   - Close is idempotent, including concurrently with itself.
func TestChaosRandomizedLifecycles(t *testing.T) {
	before := runtime.NumGoroutine()
	m := buildModel(50)

	iters := 6
	if testing.Short() {
		iters = 2
	}
	for iter := 0; iter < iters; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter%d", iter), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(0xC4A05 + iter)))
			cfg := Config{
				Model:           m,
				Subnets:         3,
				Workers:         1 + rng.Intn(3),
				EngineWorkers:   1 + rng.Intn(3),
				QueueDepth:      4 + rng.Intn(29),
				MaxBatch:        1 + rng.Intn(4),
				PriorityClasses: 1 + rng.Intn(3),
				Calibration:     instantSteps(m, 3),
				DefaultDeadline: time.Hour,
			}
			if rng.Intn(2) == 1 {
				cfg.BatchWindow = time.Duration(rng.Intn(300)) * time.Microsecond
			}
			if rng.Intn(2) == 1 {
				cfg.RefreshInterval = time.Millisecond
			}
			if rng.Intn(2) == 1 {
				cfg.ServeDelay = time.Duration(rng.Intn(2000)) * time.Microsecond
			}
			if rng.Intn(2) == 1 {
				// Arm the semantic cache, sometimes with a byte bound
				// tight enough to force mid-storm eviction churn. The
				// shared input means hits/resumes genuinely happen
				// concurrently with cold walks.
				cfg.CacheEntries = 1 + rng.Intn(8)
				if rng.Intn(2) == 1 {
					cfg.CacheBytes = int64(4096 + rng.Intn(1<<16))
				}
			}
			if rng.Intn(2) == 1 {
				// Arm the confidence early exit with a random threshold;
				// argmax safety is pinned elsewhere, here it must simply
				// never break a lifecycle invariant.
				cfg.ExitMargin = 0.1 + rng.Float64()
			}
			if rng.Intn(2) == 1 {
				// Arm the overload governor on a random prefix of the
				// classes with a deliberately twitchy clock: the storm
				// should drive real brownout transitions, and every
				// invariant below must hold regardless.
				cfg.SLOs = make([]governor.SLO, 1+rng.Intn(cfg.PriorityClasses))
				for c := range cfg.SLOs {
					cfg.SLOs[c] = governor.SLO{
						P99Target:  time.Duration(1+rng.Intn(5)) * time.Millisecond,
						MinHitRate: 0.9,
					}
				}
				cfg.ControlInterval = time.Duration(1+rng.Intn(3)) * time.Millisecond
			}
			srv, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			in := inputVec(uint64(60+iter), srv.imgLen)
			const submitters = 24
			var (
				wg       sync.WaitGroup
				answered atomic.Int64
				rejected atomic.Int64
				closedN  atomic.Int64
			)
			deadlines := []time.Duration{0, time.Nanosecond, time.Millisecond, time.Hour}
			for i := 0; i < submitters; i++ {
				wg.Add(1)
				// Each submitter derives its own RNG: the shared one is
				// not safe across goroutines.
				sub := rand.New(rand.NewSource(int64(iter*1000 + i)))
				go func() {
					defer wg.Done()
					for k := 0; k < 8; k++ {
						res, err := srv.Submit(Request{
							Input:    in,
							Deadline: deadlines[sub.Intn(len(deadlines))],
							Priority: sub.Intn(5) - 1, // includes out-of-range values
						})
						switch {
						case err == nil:
							if res.Subnet < 1 || res.Subnet > 3 {
								t.Errorf("answered from subnet %d", res.Subnet)
							}
							if len(res.Logits) != m.Classes {
								t.Errorf("answer carries %d logits, want %d", len(res.Logits), m.Classes)
							}
							answered.Add(1)
						case errors.Is(err, ErrOverloaded):
							rejected.Add(1)
						case errors.Is(err, ErrClosed):
							closedN.Add(1)
						default:
							t.Errorf("unexpected Submit error: %v", err)
						}
					}
				}()
			}

			// Close mid-storm, sometimes from several goroutines at once.
			time.Sleep(time.Duration(rng.Intn(3000)) * time.Microsecond)
			closers := 1 + rng.Intn(3)
			var cwg sync.WaitGroup
			for c := 0; c < closers; c++ {
				cwg.Add(1)
				go func() {
					defer cwg.Done()
					srv.Close()
				}()
			}
			wg.Wait()
			cwg.Wait()
			srv.Close() // idempotent after the fact

			if _, err := srv.Submit(Request{Input: in}); !errors.Is(err, ErrClosed) {
				t.Fatalf("Submit after Close = %v, want ErrClosed", err)
			}
			if got := answered.Load() + rejected.Load() + closedN.Load(); got != submitters*8 {
				t.Fatalf("outcomes %d != submits %d (hang or double answer)", got, submitters*8)
			}

			snap := srv.Stats()
			if snap.Submitted != snap.Served+snap.Rejected {
				t.Fatalf("global invariant: submitted %d != served %d + rejected %d",
					snap.Submitted, snap.Served, snap.Rejected)
			}
			if snap.Served != answered.Load() || snap.Rejected != rejected.Load() {
				t.Fatalf("stats (%d served, %d rejected) disagree with observed (%d, %d)",
					snap.Served, snap.Rejected, answered.Load(), rejected.Load())
			}
			if snap.CacheEnabled != (cfg.CacheEntries > 0) {
				t.Fatalf("CacheEnabled=%v with CacheEntries=%d", snap.CacheEnabled, cfg.CacheEntries)
			}
			if !snap.CacheEnabled && (snap.CacheHits != 0 || snap.CacheResumes != 0 || snap.CacheEntries != 0) {
				t.Fatalf("cache-off server reported cache activity: %+v", snap)
			}
			if snap.CacheEnabled && snap.CacheEntries > cfg.CacheEntries {
				t.Fatalf("cache holds %d entries, bound %d", snap.CacheEntries, cfg.CacheEntries)
			}
			if cfg.ExitMargin == 0 && snap.EarlyExits != 0 {
				t.Fatalf("exit-off server reported %d early exits", snap.EarlyExits)
			}
			var classServed, classRejected, histo int64
			for _, cs := range snap.Classes {
				if cs.Submitted != cs.Served+cs.Rejected {
					t.Fatalf("class %d invariant: %+v", cs.Priority, cs)
				}
				if cs.CacheHits+cs.CacheResumes > cs.Served || cs.EarlyExits > cs.Served {
					t.Fatalf("class %d cache/exit counters exceed served: %+v", cs.Priority, cs)
				}
				classServed += cs.Served
				classRejected += cs.Rejected
				for _, c := range cs.BySubnet {
					histo += c
				}
			}
			if classServed != snap.Served || classRejected != snap.Rejected {
				t.Fatalf("class breakdown (%d served, %d rejected) disagrees with globals (%d, %d)",
					classServed, classRejected, snap.Served, snap.Rejected)
			}
			if histo != snap.Served {
				t.Fatalf("per-class subnet histograms sum to %d, want %d", histo, snap.Served)
			}
		})
	}

	// Every goroutine the storms spawned — workers, formers, refresh
	// loops, engine shard workers — must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
