package serve

import "steppingnet/internal/serve/cache"

// CachePeek returns the live cache entry for k without counting a hit
// or miss and without refreshing recency — the export half of
// affinity-aware cache warming: the cluster router reads a spilled
// key's entry off its HRW winner here to transfer it to the replica
// the spill landed on. The returned entry is shared and immutable.
// Always a miss on a cache-less server.
func (s *Server) CachePeek(k cache.Key) (*cache.Entry, bool) {
	if s.cache == nil {
		return nil, false
	}
	return s.cache.Peek(k)
}

// WarmInstall offers an entry transferred from a peer replica to the
// local cache and reports whether it was stored — the import half of
// affinity-aware warming. The entry enters under the LOCAL current
// generation (peer generations are meaningless here: the transfer is
// fresh evidence under this server's model) and competes under the
// normal widest-rung-wins and LRU rules, so warming can never evict
// hotter local work with narrower remote walks. Installed entries are
// counted in Snapshot.CacheWarmed. A no-op on a cache-less server.
func (s *Server) WarmInstall(k cache.Key, e *cache.Entry) bool {
	if s.cache == nil {
		return false
	}
	if !s.cache.Put(k, e) {
		return false
	}
	s.warmed.Add(1)
	return true
}
