// Package serve turns the anytime engine into a concurrent inference
// service: the paper's MAC-budgeted subnet ladder becomes a
// load-management mechanism. A pool of workers — each owning one
// infer.Engine with its persistent shard state and buffer pools —
// executes micro-batches that a central batch former assembles from a
// bounded, priority-ordered admission queue. A deadline-aware
// scheduler walks every request up the ladder only as far as its
// deadline allows, using per-subnet step latencies calibrated at
// startup (infer.Engine.CalibrateSteps threaded through
// governor.LatencyModel) and kept honest by an optional background
// calibration-refresh loop fed with live step timings. Queue-pressure
// signals cap the ladder under overload so the service degrades to
// narrower answers instead of queuing unboundedly — and with priority
// classes configured, low-priority traffic narrows and sheds first,
// protecting high-priority deadlines. Every answer reports which
// subnet produced it, the MACs actually spent, and whether the
// deadline was met.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"steppingnet/internal/governor"
	"steppingnet/internal/infer"
	"steppingnet/internal/models"
	"steppingnet/internal/serve/cache"
	"steppingnet/internal/tensor"
)

// ErrClosed is returned by Submit after Close has begun: the server
// no longer admits work (in-flight and already-queued requests still
// drain to completion).
var ErrClosed = errors.New("serve: server closed")

// ErrOverloaded is returned by Submit when the request's priority
// class has exhausted its share of the bounded admission queue, or
// when the request's deadline is already unmeetable given the
// measured backlog ahead of its class (the predicted queue wait alone
// exceeds it). It is the service's fast-fail signal: callers should
// back off (or retry with a longer deadline) rather than pile on —
// serving a guaranteed-late answer would only steal capacity from
// requests that can still make their deadlines.
var ErrOverloaded = errors.New("serve: overloaded")

// ErrBadInput is returned (wrapped) by Submit when the request input
// does not match the model's input geometry.
var ErrBadInput = errors.New("serve: bad input")

// Config parameterizes a Server.
type Config struct {
	// Model is the constructed stepping model to serve. Required.
	Model *models.Model
	// Subnets is the ladder depth n the model was constructed with.
	// Required, ≥ 1.
	Subnets int
	// Workers sets the engine-pool size (one infer.Engine per
	// worker). 0 means GOMAXPROCS.
	Workers int
	// EngineWorkers is the per-engine worker count a batch-1 pop may
	// fan out over: when the batch former hands a worker a single
	// request, that worker's engine shards INSIDE each layer
	// (infer.Engine's cooperative layer sharding) instead of leaving
	// every other core idle — the intra-layer fan-out claims helpers
	// from the global parallelism budget, so it engages exactly when
	// cores are spare and degrades to the serial walk under full
	// load. Batches of two or more requests always run single-worker
	// engines (pool-level concurrency already covers them). 0 means
	// Workers — the batch former hands a lone request the whole
	// worker set.
	EngineWorkers int
	// QueueDepth bounds the admission queue; a class that has filled
	// its share of the queue rejects with ErrOverloaded. 0 means 64.
	QueueDepth int
	// MaxBatch enables micro-batching: the central batch former
	// assembles up to this many queued requests (highest priority
	// first) into one engine batch, amortizing per-step overhead;
	// each request still finalizes at the widest subnet its own
	// deadline and shed cap afford. 0 or 1 disables.
	MaxBatch int
	// BatchWindow, when positive, lets the batch former wait this
	// long for more arrivals after popping an under-filled batch —
	// trading a bounded latency hit for fuller batches under moderate
	// load. 0 hands batches to workers greedily.
	BatchWindow time.Duration
	// PriorityClasses is the number of request priority classes
	// (Request.Priority is clamped to 0..PriorityClasses-1, higher is
	// more important). Class c may occupy at most the nested share
	// QueueDepth·(c+1)/PriorityClasses of the queue, the batch former
	// serves higher classes first, and both the shed cap and the
	// admission controller measure only the backlog at or above a
	// request's own class — so under overload, low-priority traffic
	// narrows and sheds first while high-priority deadlines stay
	// protected. 0 or 1 means a single class (every request equal).
	PriorityClasses int
	// DefaultDeadline applies to requests that carry none. 0 means
	// 50ms.
	DefaultDeadline time.Duration
	// MinSubnet is the narrowest answer the scheduler will return.
	// Every admitted request is walked at least this far, even when
	// its deadline is already blown — an anytime service answers
	// narrow rather than not at all. 0 means 1.
	MinSubnet int
	// Margin is the scheduling safety margin added to every
	// estimated step cost before the feasibility check, absorbing
	// calibration jitter. 0 means 100µs.
	Margin time.Duration
	// CalibrationReps is the number of calibration walks at startup
	// (fastest rep wins, see infer.Engine.CalibrateSteps). 0 means 3.
	CalibrationReps int
	// Calibration, when non-zero, supplies a pre-measured latency
	// model and skips startup calibration (tests, warm restarts).
	Calibration governor.LatencyModel
	// RefreshInterval, when positive, runs the calibration refresh
	// loop: worker engines time every live ladder step
	// (infer.Engine.StepTimer), a per-step EWMA absorbs the
	// observations, and every interval the server swaps in a latency
	// model rebuilt from them — so thermal or contention drift cannot
	// silently invalidate the deadline→MAC-budget mapping the
	// scheduler and admission controller plan with. 0 disables (the
	// startup calibration is trusted forever).
	RefreshInterval time.Duration
	// ServeDelay, when positive, stalls each batch walk before it
	// executes — a fault-injection/test hook that caps one worker's
	// throughput at a known rate, so overload and replica-slowdown
	// scenarios are deterministic on fast machines (the in-package
	// overload tests and the cluster chaos tests both lean on it).
	// Always 0 in production configurations.
	ServeDelay time.Duration
	// SLOs, when non-empty, arms the adaptive overload governor:
	// SLOs[c] is priority class c's objective (missing or zero entries
	// exempt a class). Each ControlInterval the governor compares the
	// per-class percentile rings and hit-rate counters against these
	// targets and walks the brownout ladder (narrow low classes, then
	// fast-fail them, then shed) documented on governor.Controller,
	// publishing its knob settings through an atomic policy swap the
	// admission check, shed cap and batch former read. Empty disables
	// the controller entirely (the static defenses still apply).
	SLOs []governor.SLO
	// ControlInterval is the governor's tick period. 0 with SLOs set
	// means 100ms; ignored when SLOs is empty. Tests may set SLOs with
	// a negative ControlInterval to build the controller but drive
	// ticks manually (no background goroutine, no wall-clock).
	ControlInterval time.Duration
	// CacheEntries, when positive, arms the semantic result cache:
	// every served request is keyed by a deterministic hash of its
	// input and its widest reached rung (logits + resumable engine
	// state) is stored, bounded by CacheEntries live entries. A repeat
	// request whose cached rung already covers its ladder cap is
	// answered from the cache at zero MACs; one whose budget reaches
	// further seeds a worker engine from the cached rung and climbs
	// from there, bitwise-equivalent to the cold walk it replaced. 0
	// (the default) disables caching entirely.
	CacheEntries int
	// CacheBytes bounds the cache's accounted memory footprint (the
	// dominant weight is the cached per-layer engine states). 0 with
	// CacheEntries set means 64 MiB; ignored when the cache is off.
	CacheBytes int64
	// ExitMargin, when positive, arms the confidence early exit: after
	// each ladder step, a request whose top-2 logit margin is at least
	// this threshold answers immediately at the current rung instead
	// of climbing further — the answer is already decided, so the
	// remaining headroom goes back to the queue. Early exit never
	// changes which class is predicted AT THE EXITED RUNG; pair it
	// with CalibrateExitMargins-derived per-class thresholds
	// (ExitMargins) to also bound disagreement with the full-ladder
	// answer. 0 disables.
	ExitMargin float64
	// ExitMargins, when non-empty, supplies a per-PREDICTED-class
	// margin threshold (length = the model's output classes, as
	// produced by CalibrateExitMargins) and overrides ExitMargin for
	// rungs whose argmax falls on that class. Arms the early exit just
	// like ExitMargin.
	ExitMargins []float64
	// CacheTTL, when positive, bounds every cache entry's lifetime
	// from its insertion: a repeat arriving past the TTL sees a miss
	// (the stale entry is evicted, counted under CacheExpired) and
	// walks cold. 0 means entries live until the LRU bounds or a
	// generation bump remove them. Ignored when the cache is off.
	CacheTTL time.Duration
	// CacheNow overrides the cache's TTL clock — the injection point
	// that makes expiry deterministic in tests. Nil means time.Now.
	CacheNow func() time.Time
	// Speculate, when true, arms the idle-window speculative
	// pre-climber: whenever the batch former finds the queue empty and
	// a worker idle, it pops the hottest cache key whose stored walk
	// sits below the top rung off a small candidate ring (fed by cache
	// hits), seeds an engine from the cached state, and climbs exactly
	// one rung — so the next repeat of a hot input finds a wider (often
	// full-ladder, zero-MAC) entry. Strictly preemptible: a speculative
	// step aborts before touching the engine if any real request has
	// been admitted, and never spans more than one rung. Its MACs are
	// accounted separately (Snapshot.SpeculativeMACs), never against
	// request traffic. Requires the cache (CacheEntries > 0); off by
	// default.
	Speculate bool
}

// withDefaults fills zero fields and validates the rest.
func (c Config) withDefaults() (Config, error) {
	if c.Model == nil {
		return c, fmt.Errorf("serve: Config.Model is required")
	}
	if c.Subnets < 1 {
		return c, fmt.Errorf("serve: need ≥1 subnets, got %d", c.Subnets)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.EngineWorkers < 0 {
		return c, fmt.Errorf("serve: negative EngineWorkers %d", c.EngineWorkers)
	}
	if c.EngineWorkers == 0 {
		c.EngineWorkers = c.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1
	}
	if c.BatchWindow < 0 {
		return c, fmt.Errorf("serve: negative BatchWindow %v", c.BatchWindow)
	}
	if c.PriorityClasses < 0 {
		return c, fmt.Errorf("serve: negative PriorityClasses %d", c.PriorityClasses)
	}
	if c.PriorityClasses == 0 {
		c.PriorityClasses = 1
	}
	if c.PriorityClasses > c.QueueDepth {
		return c, fmt.Errorf("serve: %d priority classes cannot share a %d-deep queue",
			c.PriorityClasses, c.QueueDepth)
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 50 * time.Millisecond
	}
	if c.MinSubnet <= 0 {
		c.MinSubnet = 1
	}
	if c.MinSubnet > c.Subnets {
		return c, fmt.Errorf("serve: MinSubnet %d exceeds Subnets %d", c.MinSubnet, c.Subnets)
	}
	if c.Margin <= 0 {
		c.Margin = 100 * time.Microsecond
	}
	if c.CalibrationReps <= 0 {
		c.CalibrationReps = 3
	}
	if c.RefreshInterval < 0 {
		return c, fmt.Errorf("serve: negative RefreshInterval %v", c.RefreshInterval)
	}
	if c.ServeDelay < 0 {
		return c, fmt.Errorf("serve: negative ServeDelay %v", c.ServeDelay)
	}
	if len(c.SLOs) > c.PriorityClasses {
		return c, fmt.Errorf("serve: %d SLOs for %d priority classes", len(c.SLOs), c.PriorityClasses)
	}
	if len(c.SLOs) > 0 && c.ControlInterval == 0 {
		c.ControlInterval = 100 * time.Millisecond
	}
	if c.CacheEntries < 0 {
		return c, fmt.Errorf("serve: negative CacheEntries %d", c.CacheEntries)
	}
	if c.CacheBytes < 0 {
		return c, fmt.Errorf("serve: negative CacheBytes %d", c.CacheBytes)
	}
	if c.CacheEntries > 0 && c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheTTL < 0 {
		return c, fmt.Errorf("serve: negative CacheTTL %v", c.CacheTTL)
	}
	if c.Speculate && c.CacheEntries == 0 {
		return c, fmt.Errorf("serve: Speculate requires the cache (CacheEntries > 0)")
	}
	if c.ExitMargin < 0 {
		return c, fmt.Errorf("serve: negative ExitMargin %v", c.ExitMargin)
	}
	if len(c.ExitMargins) > 0 {
		if len(c.ExitMargins) != c.Model.Classes {
			return c, fmt.Errorf("serve: %d ExitMargins for a %d-class model", len(c.ExitMargins), c.Model.Classes)
		}
		for j, m := range c.ExitMargins {
			if m < 0 {
				return c, fmt.Errorf("serve: negative ExitMargins[%d] %v", j, m)
			}
		}
	}
	return c, nil
}

// Request is one inference submission.
type Request struct {
	// Input is the flattened image, length InC*InH*InW of the served
	// model. The slice must not be mutated until Submit returns.
	Input []float64
	// Deadline is the wall-clock budget measured from submission
	// (queue wait counts against it). 0 selects
	// Config.DefaultDeadline.
	Deadline time.Duration
	// Priority is the request's class, 0 (lowest) to
	// Config.PriorityClasses-1 (highest); out-of-range values are
	// clamped. Under overload, higher classes keep wider answers and
	// shed last.
	Priority int
}

// Result is the anytime answer: the widest completed subnet's output
// plus the metadata a caller needs to reason about answer quality.
type Result struct {
	// Subnet is the ladder rung that produced Logits (1..n; narrower
	// under deadline pressure or load shedding).
	Subnet int
	// Pred is the argmax class of Logits.
	Pred int
	// Logits is the served subnet's output row (a copy owned by the
	// caller).
	Logits []float64
	// MACs is the per-image MAC count actually executed for this
	// request — the incremental walk cost, not the from-scratch cost.
	MACs int64
	// Priority is the (clamped) priority class the request was
	// admitted and scheduled under.
	Priority int
	// DeadlineMet reports whether the answer was produced within the
	// request's deadline.
	DeadlineMet bool
	// QueueWait is the time spent in the admission queue before a
	// worker picked the request up.
	QueueWait time.Duration
	// Latency is end-to-end wall clock from submission to answer
	// (queue wait + walk).
	Latency time.Duration
	// CacheHit reports that the answer was served entirely from the
	// semantic result cache (a previous walk had already reached this
	// request's ladder cap): no engine walk ran and MACs is 0.
	CacheHit bool
	// Resumed reports that the walk was seeded from a cached rung and
	// climbed from there: MACs meters only the climbed steps (resumed
	// rungs cost 0 new MACs).
	Resumed bool
	// EarlyExit reports that the confidence early exit answered this
	// request below its affordable ladder cap because the top-2 logit
	// margin cleared its threshold.
	EarlyExit bool
}

// response pairs a Result with a worker-side error for the channel
// back to Submit.
type response struct {
	res Result
	err error
}

// pending is a request in flight through the queue and scheduler.
type pending struct {
	input     []float64
	class     int
	submitted time.Time
	deadline  time.Time
	done      chan response

	// ladderCap is the widest subnet this request may be walked to,
	// assigned from its class's shed cap when the batch former pops
	// it.
	ladderCap int

	// Worker-owned while being served.
	started  time.Time // when a worker picked it up (queue wait ends)
	macs     int64
	answered bool

	// Semantic-cache bookkeeping (cache-armed servers only): the
	// request's input hash, the cache entry found at lookup (nil on a
	// miss), and the answer provenance flags copied into the Result.
	key       cache.Key
	hasKey    bool
	ent       *cache.Entry
	cacheHit  bool
	resumed   bool
	earlyExit bool

	// speculative marks an idle-window pre-climb job manufactured by
	// the batch former (Config.Speculate) rather than a submitted
	// request: it has no waiter (done is nil), no deadline, and is
	// served by runSpeculative instead of the batch walk.
	speculative bool
}

// Server is a concurrent anytime-inference service over one model.
// Create with New, submit with Submit, stop with Close.
type Server struct {
	cfg Config
	n   int

	inC, inH, inW int
	imgLen        int
	classes       int // model output classes
	priorities    int // priority-class count (Config.PriorityClasses)

	// lat is the latency model the scheduler and admission
	// controller plan with — atomically swappable so the calibration
	// refresh loop can republish it mid-flight without a lock on the
	// serving path.
	lat   governor.ModelRef
	ref   *refresher
	stats *Stats

	// policy is the overload governor's current actuator set,
	// published per control tick and read (one atomic load, no lock,
	// no allocation) by the admission check, the shed cap and the
	// batch former. The zero policy is neutral, so servers without
	// SLOs behave exactly as before the governor existed.
	policy governor.PolicyRef
	// ctl is the closed-loop brownout controller (nil when
	// Config.SLOs is empty). Its Tick is serialized by ctlMu:
	// normally only the control loop calls it, but drift tests drive
	// controlTick directly.
	ctl     *governor.Controller
	ctlMu   sync.Mutex
	ctlPrev []classTick

	// cache is the semantic result cache (nil when Config.CacheEntries
	// is 0); exitArmed records whether the confidence early exit is
	// configured (ExitMargin or ExitMargins).
	cache     *cache.Cache
	exitArmed bool

	// specRing is the speculative pre-climber's candidate ring
	// (Config.Speculate): the hottest cache keys whose stored walks
	// sit below the top rung, each carrying a private copy of its
	// input. Guarded by qmu — the former pops candidates under the
	// same lock it checks the queue under, and adding one signals
	// qcond so an idle former wakes. speculated/specMACs meter the
	// pre-climbed steps separately from request traffic; warmed counts
	// cache entries installed by a peer-transfer (WarmInstall).
	specRing   []specCand
	speculated atomic.Int64
	specMACs   atomic.Int64
	warmed     atomic.Int64

	// The priority admission queue: one FIFO lane per class, guarded
	// by qmu. qcond signals the batch former on arrivals and close.
	qmu    sync.Mutex
	qcond  *sync.Cond
	lanes  [][]*pending
	qtotal int
	closed bool

	// batches hands formed micro-batches from the central former to
	// the worker pool (unbuffered: a send is a worker handoff).
	batches chan []*pending

	// svcNs is an EWMA of per-request service time in nanoseconds,
	// updated by workers after every batch. It feeds the admission
	// controller's queue-wait prediction; zero until the first batch
	// completes (admission control off while cold).
	svcNs atomic.Int64

	stopRefresh chan struct{}
	wg          sync.WaitGroup
}

// New builds a Server: it calibrates per-subnet step latencies on one
// throwaway engine (unless Config.Calibration is supplied), then
// starts the batch former, the worker pool and (when configured) the
// calibration refresh loop. The returned server is ready for Submit.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := cfg.Model
	s := &Server{
		cfg: cfg, n: cfg.Subnets,
		inC: m.InC, inH: m.InH, inW: m.InW,
		imgLen:     m.InC * m.InH * m.InW,
		classes:    m.Classes,
		priorities: cfg.PriorityClasses,
		lanes:      make([][]*pending, cfg.PriorityClasses),
		batches:    make(chan []*pending),
		ref:        newRefresher(cfg.Subnets),
		stats:      newStats(cfg.Subnets, cfg.PriorityClasses),

		stopRefresh: make(chan struct{}),
	}
	s.qcond = sync.NewCond(&s.qmu)

	lat := cfg.Calibration
	if lat.Subnets() == 0 {
		times, err := calibrate(m, cfg.Subnets, cfg.CalibrationReps)
		if err != nil {
			return nil, err
		}
		lat = governor.LatencyModel{StepMACs: governor.StepCosts(m, cfg.Subnets), StepTime: times}
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if lat.Subnets() != cfg.Subnets {
		return nil, fmt.Errorf("serve: latency model covers %d subnets, want %d", lat.Subnets(), cfg.Subnets)
	}
	s.lat.Store(lat)

	s.exitArmed = cfg.ExitMargin > 0 || len(cfg.ExitMargins) > 0
	if cfg.CacheEntries > 0 {
		s.cache = cache.New(cache.Config{
			MaxEntries: cfg.CacheEntries,
			MaxBytes:   cfg.CacheBytes,
			TTL:        cfg.CacheTTL,
			Now:        cfg.CacheNow,
		})
	}

	if len(cfg.SLOs) > 0 {
		// With the early exit armed, the brownout ladder gains its
		// stage 0: relaxing the exit margin is the cheapest relief
		// valve (no one's answer narrows), so the controller tries it
		// before any shed cap moves.
		relax := 0
		if s.exitArmed {
			relax = exitRelaxSteps
		}
		ctl, err := governor.NewController(governor.ControllerConfig{
			Classes:        cfg.PriorityClasses,
			Subnets:        cfg.Subnets,
			MinSubnet:      cfg.MinSubnet,
			SLOs:           cfg.SLOs,
			ExitRelaxSteps: relax,
		})
		if err != nil {
			return nil, err
		}
		s.ctl = ctl
		s.ctlPrev = make([]classTick, cfg.PriorityClasses)
	}

	s.wg.Add(1)
	go s.former()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if cfg.RefreshInterval > 0 {
		s.wg.Add(1)
		go s.refreshLoop()
	}
	if s.ctl != nil && cfg.ControlInterval > 0 {
		s.wg.Add(1)
		go s.controlLoop()
	}
	return s, nil
}

// calibrate measures the batch-1 step ladder on a throwaway engine.
func calibrate(m *models.Model, n, reps int) ([]time.Duration, error) {
	e := infer.NewEngine(m.Net)
	e.Workers = 1
	defer e.Close()
	x := tensor.New(1, m.InC, m.InH, m.InW)
	x.FillNormal(tensor.NewRNG(0xCA11B8A7E), 0, 1)
	return e.CalibrateSteps(x, n, reps)
}

// Latency exposes the latency model the scheduler currently plans
// with — the startup calibration, or the latest refresh-loop swap
// (for logging and load generators).
func (s *Server) Latency() governor.LatencyModel { return s.lat.Load() }

// Healthy reports whether the server is still admitting work: true
// until Close begins, false from then on (queued and in-flight
// requests may still be draining). It is the in-process readiness
// signal health probes and /healthz endpoints should surface — a
// draining server must stop attracting new traffic before its last
// answer leaves.
func (s *Server) Healthy() bool {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return !s.closed
}

// Stats returns a point-in-time snapshot of the serving counters,
// including queue gauges and the calibration constants.
func (s *Server) Stats() Snapshot {
	snap := s.stats.snapshot()
	s.qmu.Lock()
	snap.QueueLen = s.qtotal
	s.qmu.Unlock()
	snap.QueueCap = s.cfg.QueueDepth
	snap.Workers = s.cfg.Workers
	snap.MinSubnet = s.cfg.MinSubnet
	snap.ServiceEwmaMs = float64(s.svcNs.Load()) / float64(time.Millisecond)
	if s.cache != nil {
		// One coherent cache snapshot: separate Len/Bytes/Counters
		// calls acquire the cache lock three times and can tear against
		// concurrent Put/evict traffic (the gauges would disagree with
		// the counters they are reported alongside).
		cs := s.cache.Stats()
		snap.CacheEnabled = true
		snap.CacheEntries = cs.Len
		snap.CacheBytes = cs.Bytes
		snap.CacheEvictions = cs.Counters.Evictions
		snap.CacheExpired = cs.Counters.Expired
		snap.CacheInvalidated = cs.Counters.Invalidated
		snap.CacheGeneration = cs.Generation
	}
	snap.Speculated = s.speculated.Load()
	snap.SpeculativeMACs = s.specMACs.Load()
	snap.CacheWarmed = s.warmed.Load()
	lat := s.lat.Load()
	snap.MACRate = lat.MACRate()
	snap.StepTimeMs = make([]float64, s.n)
	for i, d := range lat.StepTime {
		snap.StepTimeMs[i] = float64(d) / float64(time.Millisecond)
	}
	if s.ctl != nil {
		pol := s.policy.Load()
		ps := &PolicySnapshot{
			ShedCap:    make([]int, s.priorities),
			AdmitScale: make([]float64, s.priorities),
			QueueShare: make([]int, s.priorities),
			Level:      make([]int, s.priorities),
			Lookahead:  pol.Lookahead,
		}
		for c := 0; c < s.priorities; c++ {
			ps.ShedCap[c] = pol.ClassShedCap(c)
			ps.AdmitScale[c] = pol.ClassAdmitScale(c)
			ps.QueueShare[c] = pol.ClassQueueShare(c)
			ps.Level[c] = pol.ClassLevel(c)
			if ps.Level[c] > ps.MaxLevel {
				ps.MaxLevel = ps.Level[c]
			}
		}
		snap.Policy = ps
	}
	return snap
}

// Submit runs one request through the service and blocks until its
// answer is ready (bounded by deadline handling: under pressure the
// answer comes back early from a narrower subnet). It returns
// ErrClosed after Close, ErrOverloaded (wrapped) when the request's
// class has filled its queue share or the deadline is unmeetable at
// the measured backlog, and a wrapped ErrBadInput for geometry
// mismatches.
func (s *Server) Submit(req Request) (Result, error) {
	if len(req.Input) != s.imgLen {
		return Result{}, fmt.Errorf("%w: input length %d, model wants %d (%d×%d×%d)",
			ErrBadInput, len(req.Input), s.imgLen, s.inC, s.inH, s.inW)
	}
	d := req.Deadline
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	class := req.Priority
	if class < 0 {
		class = 0
	}
	if class >= s.priorities {
		class = s.priorities - 1
	}
	now := time.Now()
	p := &pending{
		input:     req.Input,
		class:     class,
		submitted: now,
		deadline:  now.Add(d),
		done:      make(chan response, 1),
	}
	minWalk := s.lat.Load().WalkTime(s.cfg.MinSubnet)
	pol := s.policy.Load()

	s.qmu.Lock()
	if s.closed {
		// Before any counter moves, so Submitted = Served + Rejected
		// stays an invariant at quiescence.
		s.qmu.Unlock()
		return Result{}, ErrClosed
	}
	s.stats.recordSubmitted(class)
	// Deadline-aware admission: when the backlog at or above this
	// class alone makes the deadline unmeetable, fail fast instead of
	// serving late. Lower-class queue contents don't count — the
	// former serves this request first. The governor's fast-fail
	// brownout stage scales the predicted wait up, rejecting
	// borderline deadlines earlier for browned-out classes.
	if wait := s.predictedWaitLocked(class); wait > 0 {
		wait = time.Duration(float64(wait) * pol.ClassAdmitScale(class))
		if d < wait+minWalk {
			s.stats.recordRejected(class)
			s.qmu.Unlock()
			return Result{}, fmt.Errorf("%w: predicted queue wait %v exceeds deadline %v", ErrOverloaded, wait, d)
		}
	}
	// Weighted admission: class c owns the nested queue share
	// depth·(c+1)/classes, so when the queue fills, low classes
	// reject first while the top class can always use the whole
	// queue. The governor's shed brownout stage can cut a class's
	// share further, down to a single slot.
	admit := s.admitCap(class)
	if qs := pol.ClassQueueShare(class); qs > 0 && qs < admit {
		admit = qs
	}
	if s.qtotal >= admit {
		s.stats.recordRejected(class)
		s.qmu.Unlock()
		return Result{}, fmt.Errorf("%w: admission queue full for priority class %d", ErrOverloaded, class)
	}
	s.lanes[class] = append(s.lanes[class], p)
	s.qtotal++
	s.qcond.Signal()
	s.qmu.Unlock()

	r := <-p.done
	return r.res, r.err
}

// Close stops admission (Submit returns ErrClosed), drains every
// already-queued and in-flight request to a real answer, stops the
// refresh loop, waits for the batch former and workers to exit and
// releases their engines. It is idempotent and safe to call
// concurrently with Submit and with itself.
func (s *Server) Close() {
	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.qcond.Broadcast()
	s.qmu.Unlock()
	close(s.stopRefresh)
	s.wg.Wait()
}

// admitCap returns how full the queue may be for class c to still be
// admitted: the nested share depth·(c+1)/classes, floored at 1 so no
// class is configured out of existence. With one class this is the
// full queue depth — the plain bounded queue.
func (s *Server) admitCap(c int) int {
	capc := s.cfg.QueueDepth * (c + 1) / s.priorities
	if capc < 1 {
		capc = 1
	}
	return capc
}

// occAtOrAboveLocked counts queued requests of class ≥ c — the
// backlog actually ahead of a class-c request under priority-ordered
// batch formation. Callers hold qmu.
func (s *Server) occAtOrAboveLocked(c int) int {
	occ := 0
	for k := c; k < s.priorities; k++ {
		occ += len(s.lanes[k])
	}
	return occ
}

// predictedWaitLocked estimates how long a class-c request admitted
// now would sit in the queue: the occupancy at or above its class ×
// the EWMA per-request service time, spread over the worker pool.
// Zero while the EWMA is cold. Callers hold qmu.
func (s *Server) predictedWaitLocked(c int) time.Duration {
	svc := time.Duration(s.svcNs.Load())
	if svc <= 0 {
		return 0
	}
	return time.Duration(s.occAtOrAboveLocked(c)) * svc / time.Duration(s.cfg.Workers)
}

// observeService folds one batch's per-request service time into the
// EWMA (α = 0.2; the first observation seeds it).
func (s *Server) observeService(perReq time.Duration) {
	for {
		old := s.svcNs.Load()
		next := int64(perReq)
		if old > 0 {
			next = old + (int64(perReq)-old)/5
		}
		if s.svcNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// shedCapLocked maps the queue pressure a class actually feels — the
// occupancy at or above it — to the widest subnet its requests may be
// walked to: no backlog allows the full ladder, a backlog at the full
// queue depth caps at MinSubnet, linear (ceiling) in between. This is
// the load-shedding signal: under overload answers get narrower, each
// request costs fewer MACs, and the queue drains faster instead of
// growing — and because a high class only sees the (small) backlog of
// its peers and above, narrowing concentrates in the low classes.
// Callers hold qmu.
func (s *Server) shedCapLocked(class int) int {
	depth := s.cfg.QueueDepth
	span := s.n - s.cfg.MinSubnet
	c := s.n - (s.occAtOrAboveLocked(class)*span+depth-1)/depth
	// The governor's narrow brownout stage can pin a browned-out class
	// tighter than queue pressure alone would (its cap never drops
	// below the class's SLO floor — the controller enforces that).
	if pc := s.policy.Load().ClassShedCap(class); pc > 0 && pc < c {
		c = pc
	}
	if c < s.cfg.MinSubnet {
		c = s.cfg.MinSubnet
	}
	return c
}

// popLocked moves up to max requests from the lanes into batch,
// highest class first, FIFO within a class, and stamps each with its
// class's shed cap at pop time. When the governor's policy carries a
// lookahead ratio, the pop additionally groups by compatible deadline
// headroom: the first request popped (or, on a top-up, the batch's
// existing head) seeds the batch, and the pop stops at the first
// candidate whose remaining headroom is incompatible with the seed's
// (min/max < ratio) — a batch step costs b·StepTime, so mixing one
// tight-deadline request into a generous batch would make every rung
// dearer for all of them. The incompatible request stays queued, in
// order, and seeds the next batch. Callers hold qmu.
func (s *Server) popLocked(batch []*pending, max int) []*pending {
	la := s.policy.Load().Lookahead
	var now time.Time
	var seedHead time.Duration
	seeded := false
	if la > 0 {
		now = time.Now()
		if len(batch) > 0 {
			seedHead, seeded = headroom(batch[0], now), true
		}
	}
pop:
	for c := s.priorities - 1; c >= 0 && len(batch) < max; c-- {
		lane := s.lanes[c]
		for len(lane) > 0 && len(batch) < max {
			p := lane[0]
			if la > 0 {
				h := headroom(p, now)
				if !seeded {
					seedHead, seeded = h, true
				} else if !compatibleHeadroom(seedHead, h, la) {
					s.lanes[c] = lane
					break pop
				}
			}
			lane[0] = nil // free the slot for GC; the lane slice is reused
			lane = lane[1:]
			s.qtotal--
			batch = append(batch, p)
		}
		s.lanes[c] = lane
	}
	for _, p := range batch {
		if p.ladderCap == 0 {
			p.ladderCap = s.shedCapLocked(p.class)
		}
	}
	return batch
}

// headroom is the time a queued request still has until its deadline,
// floored at zero (blown deadlines all look equally urgent).
func headroom(p *pending, now time.Time) time.Duration {
	if h := p.deadline.Sub(now); h > 0 {
		return h
	}
	return 0
}

// compatibleHeadroom reports whether two headrooms may share a batch
// under lookahead ratio la: the smaller must be at least la of the
// larger. Two already-blown deadlines are always compatible (there is
// nothing left to protect).
func compatibleHeadroom(a, b time.Duration, la float64) bool {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi <= 0 {
		return true
	}
	return float64(lo) >= la*float64(hi)
}

// popBatch blocks until at least one request is queued (or the server
// is closed and drained, returning nil), then pops up to max requests
// in priority order. With speculation armed, an empty queue with a
// candidate waiting yields a speculative batch instead of blocking —
// idle workers pre-climb hot cache entries; real arrivals always win
// the next pop.
func (s *Server) popBatch(max int) []*pending {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for s.qtotal == 0 && !s.closed {
		// The ring is fed whenever the cache is armed (it doubles as
		// the restart-warming hot set), so the pop must gate on the
		// flag, not on ring occupancy.
		if s.cfg.Speculate && len(s.specRing) > 0 {
			return []*pending{s.popSpeculativeLocked()}
		}
		s.qcond.Wait()
	}
	if s.qtotal == 0 {
		return nil // closed and drained
	}
	return s.popLocked(make([]*pending, 0, max), max)
}

// topUp non-blockingly extends an under-filled batch with whatever
// has arrived since it was popped.
func (s *Server) topUp(batch []*pending, max int) []*pending {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.popLocked(batch, max)
}

// former is the central batch-formation goroutine: it assembles
// micro-batches from the shared priority queue — seeing arrivals from
// every submitter, not just whatever one worker's pop happened to
// catch — and hands them to idle workers. Under backlog it forms full
// MaxBatch batches in strict priority order; with BatchWindow set it
// briefly holds an under-filled batch open for late arrivals. It
// exits (closing the worker feed) once the server is closed and the
// queue drained.
func (s *Server) former() {
	defer s.wg.Done()
	defer close(s.batches)
	for {
		batch := s.popBatch(s.cfg.MaxBatch)
		if batch == nil {
			return
		}
		if w := s.cfg.BatchWindow; w > 0 && len(batch) < s.cfg.MaxBatch {
			// Hold an under-filled batch open only when no worker is
			// idle: stalling a ready worker would trade real capacity
			// for batch fullness (and cap throughput at MaxBatch per
			// window). An immediate handoff wins if one is waiting.
			select {
			case s.batches <- batch:
				continue
			default:
			}
			time.Sleep(w)
			batch = s.topUp(batch, s.cfg.MaxBatch)
		}
		s.batches <- batch
	}
}

// worker owns one engine and serves formed batches until the former
// closes the feed.
func (s *Server) worker() {
	defer s.wg.Done()
	e := infer.NewEngine(s.cfg.Model.Net)
	// Multi-request batches rely on pool-level concurrency — a nested
	// batch-parallel fan-out per engine would oversubscribe the CPUs —
	// so engines run single-worker by default; runBatch hands a
	// batch-1 pop the EngineWorkers set for budget-gated intra-layer
	// sharding instead.
	e.Workers = 1
	if s.cfg.RefreshInterval > 0 {
		e.StepTimer = s.observeStep
	}
	defer e.Close()

	bufs := make(map[int]*tensor.Tensor) // batch size → reused input tensor
	for batch := range s.batches {
		s.runBatch(e, bufs, batch)
	}
}

// observeStep feeds one live step timing into the refresh sampler,
// normalized to the calibration's batch-1 scale (step cost is linear
// in rows on a CPU-bound walk). Installed as infer.Engine.StepTimer
// on every worker engine when the refresh loop is enabled.
func (s *Server) observeStep(subnet, rows int, d time.Duration) {
	if rows > 0 {
		s.ref.observe(subnet, d/time.Duration(rows))
	}
}

// refreshLoop periodically folds the live step-timing EWMAs into a
// fresh latency model and publishes it, until Close.
func (s *Server) refreshLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.RefreshInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopRefresh:
			return
		case <-t.C:
			s.refreshCalibration()
		}
	}
}

// stepEstimate predicts the wall-clock cost of stepping a b-row batch
// to subnet next: the calibrated batch-1 step time scales linearly in
// rows on a CPU-bound walk, plus the configured safety margin.
func (s *Server) stepEstimate(lat governor.LatencyModel, next, b int) time.Duration {
	return time.Duration(b)*lat.StepTime[next-1] + s.cfg.Margin
}

// runBatch walks one micro-batch up the subnet ladder. Every request
// is stepped to at least MinSubnet; beyond that, a step is taken only
// while (a) some request's per-class shed cap allows it and (b) at
// least one still-pending request's deadline affords the step's
// estimated cost. After each step, requests that have reached their
// own shed cap or cannot afford the next step finalize immediately at
// the current subnet — so within one batch, tight deadlines and
// low-priority requests answer narrow while generous, high-priority
// ones keep climbing.
func (s *Server) runBatch(e *infer.Engine, bufs map[int]*tensor.Tensor, batch []*pending) {
	if len(batch) == 1 && batch[0].speculative {
		s.runSpeculative(e, bufs, batch[0])
		return
	}
	started := time.Now()
	if s.cfg.ServeDelay > 0 {
		time.Sleep(s.cfg.ServeDelay)
	}
	// Semantic-cache lookup: requests whose cached rung already covers
	// their ladder cap are answered right here at zero MACs and leave
	// the batch; the rest carry their lookup result along (a hit below
	// the cap can still seed a batch-1 resume).
	if s.cache != nil {
		batch = s.serveCacheHits(batch, started)
		if len(batch) == 0 {
			s.observeService(time.Since(started))
			return
		}
	}
	lat := s.lat.Load() // one consistent model per batch, swap-safe
	b := len(batch)
	x := bufs[b]
	if x == nil {
		x = tensor.New(b, s.inC, s.inH, s.inW)
		bufs[b] = x
	}
	batchCap := s.cfg.MinSubnet
	for i, p := range batch {
		p.started = started
		if p.ladderCap > batchCap {
			batchCap = p.ladderCap
		}
		copy(x.Data()[i*s.imgLen:(i+1)*s.imgLen], p.input)
	}
	// A lone request gets the whole worker set: the engine shards
	// inside each layer (claiming spare cores from the global budget)
	// instead of walking single-threaded while the pool sits idle.
	if b == 1 {
		e.Workers = s.cfg.EngineWorkers
	} else {
		e.Workers = 1
	}
	var out *tensor.Tensor
	cur := 0
	// A lone request with a cached rung below its cap resumes instead
	// of walking cold: the engine is seeded from the cached state and
	// the loop below climbs from there — bitwise the same logits as
	// the cold walk (TestResumeMatchesColdWalk), minus the resumed
	// rungs' MACs. Multi-request batches always walk cold (one engine
	// cache cannot hold rows at different rungs).
	if b == 1 && batch[0].ent != nil && batch[0].ent.State != nil {
		if err := e.ImportState(x, batch[0].ent.State); err == nil {
			// The engine resumes at the STATE's rung, which can sit
			// below the entry's logits rung after a widen retained an
			// older state — the climb accounting must follow the
			// engine, not the entry.
			cur = batch[0].ent.State.Subnet
			out = e.Output()
			batch[0].resumed = true
		} else {
			e.Reset(x) // structurally stale entry: fall back to a cold walk
		}
	} else {
		e.Reset(x)
	}
	var pol governor.Policy
	if s.exitArmed {
		pol = s.policy.Load()
	}
	for next := cur + 1; next <= s.n; next++ {
		if next > s.cfg.MinSubnet {
			if next > batchCap {
				break // load shedding: answer from what we have
			}
			if !s.anyAffords(lat, batch, next, b) {
				break // no pending deadline can pay for this step
			}
		}
		o, macs, err := e.Step(next)
		if err != nil {
			s.failBatch(batch, err)
			return
		}
		out, cur = o, next
		for _, p := range batch {
			if !p.answered {
				p.macs += macs
			}
		}
		// Confidence early exit: a request whose top-2 logit margin at
		// this rung clears its threshold answers now — the prediction
		// is already decided, so climbing further would spend MACs on
		// an answer that cannot change. Never below the MinSubnet
		// floor, and never flagged at a rung the request would
		// finalize at anyway. The governor's relax-exit brownout stage
		// divides the threshold per priority class.
		if s.exitArmed && next >= s.cfg.MinSubnet && next < s.n {
			for i, p := range batch {
				if p.answered || next >= p.ladderCap {
					continue
				}
				if margin, pred := rowMargin(out, i, s.classes); margin >= s.exitThreshold(pred, p.class, pol) {
					p.earlyExit = true
					s.finish(p, out, i, cur)
				}
			}
		}
		// Requests that have hit their own shed cap or cannot afford
		// the next rung answer now; the rest of the batch keeps
		// climbing. Never finalize below the MinSubnet floor — those
		// rungs are walked unconditionally.
		if next >= s.cfg.MinSubnet && next < s.n && next < batchCap {
			now := time.Now()
			est := s.stepEstimate(lat, next+1, b)
			for i, p := range batch {
				if p.answered {
					continue
				}
				if next >= p.ladderCap || p.deadline.Sub(now) < est {
					s.finish(p, out, i, cur)
				}
			}
		}
	}
	for i, p := range batch {
		if !p.answered {
			s.finish(p, out, i, cur)
		}
	}
	// Publish every request's reached rung to the semantic cache (the
	// whole batch walked to cur together, so each row's state is valid
	// there — including rows that answered earlier at a narrower rung).
	// The cache keeps the widest walk per key, so offers at or below a
	// live entry's rung are dropped inside Put.
	if s.cache != nil && cur >= 1 {
		for i, p := range batch {
			if !p.hasKey {
				continue
			}
			if p.ent != nil && p.ent.Subnet >= cur {
				// Nothing wider to publish, but the request did reach a
				// walk: this is the point the deferred recency refresh
				// (Lookup at batch formation, Touch on commitment)
				// lands — doomed requests released by failBatch never
				// get here.
				s.cache.Touch(p.key)
				continue
			}
			st, err := e.ExportState(i)
			if err != nil {
				break // nothing exportable (cannot happen after a stepped walk)
			}
			logits := make([]float64, s.classes)
			copy(logits, out.Data()[i*s.classes:(i+1)*s.classes])
			s.cache.Put(p.key, &cache.Entry{Subnet: cur, Logits: logits, State: st})
		}
	}
	s.observeService(time.Since(started) / time.Duration(b))
}

// anyAffords reports whether any still-pending request whose shed cap
// reaches next has a remaining deadline covering the estimated cost
// of stepping the batch there.
func (s *Server) anyAffords(lat governor.LatencyModel, batch []*pending, next, b int) bool {
	est := s.stepEstimate(lat, next, b)
	now := time.Now()
	for _, p := range batch {
		if !p.answered && next <= p.ladderCap && p.deadline.Sub(now) >= est {
			return true
		}
	}
	return false
}

// finish answers one request from batch row i at the given subnet.
func (s *Server) finish(p *pending, out *tensor.Tensor, i, subnet int) {
	logits := make([]float64, s.classes)
	copy(logits, out.Data()[i*s.classes:(i+1)*s.classes])
	s.answer(p, logits, subnet)
}

// answer delivers logits (ownership transfers to the caller of
// Submit) as p's result at the given subnet, stamping the timing and
// provenance metadata.
func (s *Server) answer(p *pending, logits []float64, subnet int) {
	pred := 0
	for j, v := range logits {
		if v > logits[pred] {
			pred = j
		}
	}
	now := time.Now()
	res := Result{
		Subnet:      subnet,
		Pred:        pred,
		Logits:      logits,
		MACs:        p.macs,
		Priority:    p.class,
		DeadlineMet: !now.After(p.deadline),
		QueueWait:   p.started.Sub(p.submitted),
		Latency:     now.Sub(p.submitted),
		CacheHit:    p.cacheHit,
		Resumed:     p.resumed,
		EarlyExit:   p.earlyExit,
	}
	p.answered = true
	s.stats.recordServed(res)
	p.done <- response{res: res}
}

// failBatch answers every still-pending request with err (engine
// failures are programming errors — a bad subnet index — but the
// callers blocked in Submit must still be released). Each failed
// request is recorded as rejected so the Submitted = Served +
// Rejected invariant survives even this path.
func (s *Server) failBatch(batch []*pending, err error) {
	for _, p := range batch {
		if !p.answered {
			p.answered = true
			s.stats.recordRejected(p.class)
			p.done <- response{err: err}
		}
	}
}
