// Package serve turns the anytime engine into a concurrent inference
// service: the paper's MAC-budgeted subnet ladder becomes a
// load-management mechanism. A pool of workers — each owning one
// infer.Engine with its persistent shard state and buffer pools —
// drains a bounded admission queue, optionally micro-batching
// compatible requests. A deadline-aware scheduler walks every request
// up the ladder only as far as its deadline allows, using per-subnet
// step latencies calibrated at startup (infer.Engine.CalibrateSteps
// threaded through governor.LatencyModel), and a queue-pressure signal
// caps the ladder under overload so the service degrades to narrower
// answers instead of queuing unboundedly: the anytime property as
// backpressure. Every answer reports which subnet produced it, the
// MACs actually spent, and whether the deadline was met.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"steppingnet/internal/governor"
	"steppingnet/internal/infer"
	"steppingnet/internal/models"
	"steppingnet/internal/tensor"
)

// ErrClosed is returned by Submit after Close has begun: the server
// no longer admits work (in-flight and already-queued requests still
// drain to completion).
var ErrClosed = errors.New("serve: server closed")

// ErrOverloaded is returned by Submit when the bounded admission
// queue is full, or when the request's deadline is already unmeetable
// given the measured backlog (the predicted queue wait alone exceeds
// it). It is the service's fast-fail signal: callers should back off
// (or retry with a longer deadline) rather than pile on — serving a
// guaranteed-late answer would only steal capacity from requests that
// can still make their deadlines.
var ErrOverloaded = errors.New("serve: overloaded")

// ErrBadInput is returned (wrapped) by Submit when the request input
// does not match the model's input geometry.
var ErrBadInput = errors.New("serve: bad input")

// Config parameterizes a Server.
type Config struct {
	// Model is the constructed stepping model to serve. Required.
	Model *models.Model
	// Subnets is the ladder depth n the model was constructed with.
	// Required, ≥ 1.
	Subnets int
	// Workers sets the engine-pool size (one infer.Engine per
	// worker). 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; a full queue rejects
	// with ErrOverloaded. 0 means 64.
	QueueDepth int
	// MaxBatch enables micro-batching: a worker drains up to this
	// many queued requests and walks them as one engine batch,
	// amortizing per-step overhead; each request still finalizes at
	// the widest subnet its own deadline affords. 0 or 1 disables.
	MaxBatch int
	// DefaultDeadline applies to requests that carry none. 0 means
	// 50ms.
	DefaultDeadline time.Duration
	// MinSubnet is the narrowest answer the scheduler will return.
	// Every admitted request is walked at least this far, even when
	// its deadline is already blown — an anytime service answers
	// narrow rather than not at all. 0 means 1.
	MinSubnet int
	// Margin is the scheduling safety margin added to every
	// estimated step cost before the feasibility check, absorbing
	// calibration jitter. 0 means 100µs.
	Margin time.Duration
	// CalibrationReps is the number of calibration walks at startup
	// (fastest rep wins, see infer.Engine.CalibrateSteps). 0 means 3.
	CalibrationReps int
	// Calibration, when non-zero, supplies a pre-measured latency
	// model and skips startup calibration (tests, warm restarts).
	Calibration governor.LatencyModel

	// serveDelay, when positive, stalls each batch walk — an
	// in-package test hook that makes overload scenarios
	// deterministic on fast machines.
	serveDelay time.Duration
}

// withDefaults fills zero fields and validates the rest.
func (c Config) withDefaults() (Config, error) {
	if c.Model == nil {
		return c, fmt.Errorf("serve: Config.Model is required")
	}
	if c.Subnets < 1 {
		return c, fmt.Errorf("serve: need ≥1 subnets, got %d", c.Subnets)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 50 * time.Millisecond
	}
	if c.MinSubnet <= 0 {
		c.MinSubnet = 1
	}
	if c.MinSubnet > c.Subnets {
		return c, fmt.Errorf("serve: MinSubnet %d exceeds Subnets %d", c.MinSubnet, c.Subnets)
	}
	if c.Margin <= 0 {
		c.Margin = 100 * time.Microsecond
	}
	if c.CalibrationReps <= 0 {
		c.CalibrationReps = 3
	}
	return c, nil
}

// Request is one inference submission.
type Request struct {
	// Input is the flattened image, length InC*InH*InW of the served
	// model. The slice must not be mutated until Submit returns.
	Input []float64
	// Deadline is the wall-clock budget measured from submission
	// (queue wait counts against it). 0 selects
	// Config.DefaultDeadline.
	Deadline time.Duration
}

// Result is the anytime answer: the widest completed subnet's output
// plus the metadata a caller needs to reason about answer quality.
type Result struct {
	// Subnet is the ladder rung that produced Logits (1..n; narrower
	// under deadline pressure or load shedding).
	Subnet int
	// Pred is the argmax class of Logits.
	Pred int
	// Logits is the served subnet's output row (a copy owned by the
	// caller).
	Logits []float64
	// MACs is the per-image MAC count actually executed for this
	// request — the incremental walk cost, not the from-scratch cost.
	MACs int64
	// DeadlineMet reports whether the answer was produced within the
	// request's deadline.
	DeadlineMet bool
	// QueueWait is the time spent in the admission queue before a
	// worker picked the request up.
	QueueWait time.Duration
	// Latency is end-to-end wall clock from submission to answer
	// (queue wait + walk).
	Latency time.Duration
}

// response pairs a Result with a worker-side error for the channel
// back to Submit.
type response struct {
	res Result
	err error
}

// pending is a request in flight through the queue and scheduler.
type pending struct {
	input     []float64
	submitted time.Time
	deadline  time.Time
	done      chan response

	// Worker-owned while being served.
	started  time.Time // when a worker popped it (queue wait ends)
	macs     int64
	answered bool
}

// Server is a concurrent anytime-inference service over one model.
// Create with New, submit with Submit, stop with Close.
type Server struct {
	cfg Config
	n   int

	inC, inH, inW int
	imgLen        int
	classes       int

	lat   governor.LatencyModel
	queue chan *pending
	stats *Stats

	// svcNs is an EWMA of per-request service time in nanoseconds,
	// updated by workers after every batch. It feeds the admission
	// controller's queue-wait prediction; zero until the first batch
	// completes (admission control off while cold).
	svcNs atomic.Int64

	mu     sync.RWMutex // guards closed against concurrent Submit/Close
	closed bool
	wg     sync.WaitGroup
}

// New builds a Server: it calibrates per-subnet step latencies on one
// throwaway engine (unless Config.Calibration is supplied), then
// starts the worker pool. The returned server is ready for Submit.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := cfg.Model
	s := &Server{
		cfg: cfg, n: cfg.Subnets,
		inC: m.InC, inH: m.InH, inW: m.InW,
		imgLen:  m.InC * m.InH * m.InW,
		classes: m.Classes,
		queue:   make(chan *pending, cfg.QueueDepth),
		stats:   newStats(cfg.Subnets),
	}

	s.lat = cfg.Calibration
	if s.lat.Subnets() == 0 {
		times, err := calibrate(m, cfg.Subnets, cfg.CalibrationReps)
		if err != nil {
			return nil, err
		}
		s.lat = governor.LatencyModel{StepMACs: governor.StepCosts(m, cfg.Subnets), StepTime: times}
	}
	if err := s.lat.Validate(); err != nil {
		return nil, err
	}
	if s.lat.Subnets() != cfg.Subnets {
		return nil, fmt.Errorf("serve: latency model covers %d subnets, want %d", s.lat.Subnets(), cfg.Subnets)
	}

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// calibrate measures the batch-1 step ladder on a throwaway engine.
func calibrate(m *models.Model, n, reps int) ([]time.Duration, error) {
	e := infer.NewEngine(m.Net)
	e.Workers = 1
	defer e.Close()
	x := tensor.New(1, m.InC, m.InH, m.InW)
	x.FillNormal(tensor.NewRNG(0xCA11B8A7E), 0, 1)
	return e.CalibrateSteps(x, n, reps)
}

// Latency exposes the calibrated latency model the scheduler plans
// with (for logging and load generators).
func (s *Server) Latency() governor.LatencyModel { return s.lat }

// Stats returns a point-in-time snapshot of the serving counters,
// including queue gauges and the calibration constants.
func (s *Server) Stats() Snapshot {
	snap := s.stats.snapshot()
	snap.QueueLen = len(s.queue)
	snap.QueueCap = cap(s.queue)
	snap.Workers = s.cfg.Workers
	snap.ServiceEwmaMs = float64(s.svcNs.Load()) / float64(time.Millisecond)
	snap.MACRate = s.lat.MACRate()
	snap.StepTimeMs = make([]float64, s.n)
	for i, d := range s.lat.StepTime {
		snap.StepTimeMs[i] = float64(d) / float64(time.Millisecond)
	}
	return snap
}

// Submit runs one request through the service and blocks until its
// answer is ready (bounded by deadline handling: under pressure the
// answer comes back early from a narrower subnet). It returns
// ErrClosed after Close, ErrOverloaded (wrapped) when the admission
// queue is full or the deadline is unmeetable at the measured
// backlog, and a wrapped ErrBadInput for geometry mismatches.
func (s *Server) Submit(req Request) (Result, error) {
	if len(req.Input) != s.imgLen {
		return Result{}, fmt.Errorf("%w: input length %d, model wants %d (%d×%d×%d)",
			ErrBadInput, len(req.Input), s.imgLen, s.inC, s.inH, s.inW)
	}
	d := req.Deadline
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	now := time.Now()
	p := &pending{
		input:     req.Input,
		submitted: now,
		deadline:  now.Add(d),
		done:      make(chan response, 1),
	}

	s.mu.RLock()
	if s.closed {
		// Before any counter moves, so Submitted = Served + Rejected
		// stays an invariant at quiescence.
		s.mu.RUnlock()
		return Result{}, ErrClosed
	}
	s.stats.recordSubmitted()
	// Deadline-aware admission: when the measured backlog alone makes
	// this deadline unmeetable, fail fast instead of serving late.
	if wait := s.predictedWait(); wait > 0 && d < wait+s.lat.WalkTime(s.cfg.MinSubnet) {
		s.mu.RUnlock()
		s.stats.recordRejected()
		return Result{}, fmt.Errorf("%w: predicted queue wait %v exceeds deadline %v", ErrOverloaded, wait, d)
	}
	select {
	case s.queue <- p:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.stats.recordRejected()
		return Result{}, fmt.Errorf("%w: admission queue full", ErrOverloaded)
	}

	r := <-p.done
	return r.res, r.err
}

// Close stops admission (Submit returns ErrClosed), drains every
// already-queued and in-flight request to a real answer, waits for
// the workers to exit and releases their engines. It is idempotent
// and safe to call concurrently with Submit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// worker owns one engine and serves queue batches until the queue
// closes and drains.
func (s *Server) worker() {
	defer s.wg.Done()
	e := infer.NewEngine(s.cfg.Model.Net)
	// Concurrency comes from the worker pool; a nested batch-parallel
	// fan-out per engine would oversubscribe the CPUs.
	e.Workers = 1
	defer e.Close()

	bufs := make(map[int]*tensor.Tensor) // batch size → reused input tensor
	batch := make([]*pending, 0, s.cfg.MaxBatch)
	for p := range s.queue {
		batch = append(batch[:0], p)
		batch = s.drainInto(batch)
		s.runBatch(e, bufs, batch)
	}
}

// drainInto micro-batches: it non-blockingly pulls up to MaxBatch-1
// additional queued requests to ride along with the one just popped.
func (s *Server) drainInto(batch []*pending) []*pending {
	for len(batch) < s.cfg.MaxBatch {
		select {
		case p, ok := <-s.queue:
			if !ok {
				return batch // closed and drained
			}
			batch = append(batch, p)
		default:
			return batch
		}
	}
	return batch
}

// predictedWait estimates how long a request admitted now would sit
// in the queue: occupancy × the EWMA per-request service time, spread
// over the worker pool. Zero while the EWMA is cold.
func (s *Server) predictedWait() time.Duration {
	svc := time.Duration(s.svcNs.Load())
	if svc <= 0 {
		return 0
	}
	return time.Duration(len(s.queue)) * svc / time.Duration(s.cfg.Workers)
}

// observeService folds one batch's per-request service time into the
// EWMA (α = 0.2; the first observation seeds it).
func (s *Server) observeService(perReq time.Duration) {
	for {
		old := s.svcNs.Load()
		next := int64(perReq)
		if old > 0 {
			next = old + (int64(perReq)-old)/5
		}
		if s.svcNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// shedCap maps current queue pressure to the widest subnet the
// scheduler may walk to: an empty queue allows the full ladder, a
// full queue caps at MinSubnet, linear (ceiling) in between. This is
// the global load-shedding signal — under overload every answer gets
// narrower, each request costs fewer MACs, and the queue drains
// faster instead of growing.
func (s *Server) shedCap() int {
	depth := cap(s.queue)
	if depth == 0 {
		return s.n
	}
	span := s.n - s.cfg.MinSubnet
	c := s.n - (len(s.queue)*span+depth-1)/depth
	if c < s.cfg.MinSubnet {
		c = s.cfg.MinSubnet
	}
	return c
}

// stepEstimate predicts the wall-clock cost of stepping a b-row batch
// to subnet next: the calibrated batch-1 step time scales linearly in
// rows on a CPU-bound walk, plus the configured safety margin.
func (s *Server) stepEstimate(next, b int) time.Duration {
	return time.Duration(b)*s.lat.StepTime[next-1] + s.cfg.Margin
}

// runBatch walks one micro-batch up the subnet ladder. Every request
// is stepped to at least MinSubnet; beyond that, a step is taken only
// while (a) the load-shedding cap allows it and (b) at least one
// still-pending request's deadline affords the step's estimated cost.
// After each step, requests that cannot afford the next one finalize
// immediately at the current subnet — so within one batch, tight
// deadlines answer narrow while generous ones keep climbing.
func (s *Server) runBatch(e *infer.Engine, bufs map[int]*tensor.Tensor, batch []*pending) {
	started := time.Now()
	if s.cfg.serveDelay > 0 {
		time.Sleep(s.cfg.serveDelay)
	}
	b := len(batch)
	x := bufs[b]
	if x == nil {
		x = tensor.New(b, s.inC, s.inH, s.inW)
		bufs[b] = x
	}
	for i, p := range batch {
		p.started = started
		copy(x.Data()[i*s.imgLen:(i+1)*s.imgLen], p.input)
	}
	e.Reset(x)

	ladderCap := s.shedCap()
	var out *tensor.Tensor
	cur := 0
	for next := 1; next <= s.n; next++ {
		if next > s.cfg.MinSubnet {
			if next > ladderCap {
				break // load shedding: answer from what we have
			}
			if !s.anyAffords(batch, next, b) {
				break // no pending deadline can pay for this step
			}
		}
		o, macs, err := e.Step(next)
		if err != nil {
			s.failBatch(batch, err)
			return
		}
		out, cur = o, next
		for _, p := range batch {
			if !p.answered {
				p.macs += macs
			}
		}
		// Requests that cannot afford the next rung answer now; the
		// rest of the batch keeps climbing. Never finalize below the
		// MinSubnet floor — those rungs are walked unconditionally.
		if next >= s.cfg.MinSubnet && next < s.n && next < ladderCap {
			now := time.Now()
			est := s.stepEstimate(next+1, b)
			for i, p := range batch {
				if !p.answered && p.deadline.Sub(now) < est {
					s.finish(p, out, i, cur)
				}
			}
		}
	}
	for i, p := range batch {
		if !p.answered {
			s.finish(p, out, i, cur)
		}
	}
	s.observeService(time.Since(started) / time.Duration(b))
}

// anyAffords reports whether any still-pending request's remaining
// deadline covers the estimated cost of stepping the batch to next.
func (s *Server) anyAffords(batch []*pending, next, b int) bool {
	est := s.stepEstimate(next, b)
	now := time.Now()
	for _, p := range batch {
		if !p.answered && p.deadline.Sub(now) >= est {
			return true
		}
	}
	return false
}

// finish answers one request from batch row i at the given subnet.
func (s *Server) finish(p *pending, out *tensor.Tensor, i, subnet int) {
	logits := make([]float64, s.classes)
	copy(logits, out.Data()[i*s.classes:(i+1)*s.classes])
	pred := 0
	for j, v := range logits {
		if v > logits[pred] {
			pred = j
		}
	}
	now := time.Now()
	res := Result{
		Subnet:      subnet,
		Pred:        pred,
		Logits:      logits,
		MACs:        p.macs,
		DeadlineMet: !now.After(p.deadline),
		QueueWait:   p.started.Sub(p.submitted),
		Latency:     now.Sub(p.submitted),
	}
	p.answered = true
	s.stats.recordServed(res)
	p.done <- response{res: res}
}

// failBatch answers every still-pending request with err (engine
// failures are programming errors — a bad subnet index — but the
// callers blocked in Submit must still be released).
func (s *Server) failBatch(batch []*pending, err error) {
	for _, p := range batch {
		if !p.answered {
			p.answered = true
			p.done <- response{err: err}
		}
	}
}
