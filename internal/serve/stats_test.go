package serve

import (
	"sync"
	"testing"
	"time"
)

// TestPercentileMsTable pins the nearest-rank definition — the
// ⌈p·n⌉-th smallest sample — across the edge cases that bit the old
// implementation (it *rounded* the rank, so quantiles whose exact
// rank had a fractional part below .5 reported one sample too low,
// e.g. p99 over a full 4096-ring).
func TestPercentileMsTable(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	ascending := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = ms(i + 1) // 1ms, 2ms, ... n ms
		}
		return s
	}
	cases := []struct {
		name   string
		sorted []time.Duration
		p      float64
		want   float64 // milliseconds
	}{
		{"empty", nil, 0.50, 0},
		{"single_p50", ascending(1), 0.50, 1},
		{"single_p99", ascending(1), 0.99, 1},
		{"two_p50_lower_median", ascending(2), 0.50, 1},
		{"two_p99", ascending(2), 0.99, 2},
		{"ten_p50", ascending(10), 0.50, 5},
		{"ten_p90", ascending(10), 0.90, 9},
		{"ten_p99_ceils_to_max", ascending(10), 0.99, 10},
		{"hundred_p99", ascending(100), 0.99, 99},
		{"p0_clamps_to_min", ascending(10), 0, 1},
		{"p1_is_max", ascending(10), 1, 10},
		// The regression: 0.99·4096 = 4055.04, nearest rank is the
		// 4056th sample, not the rounded-down 4055th.
		{"full_ring_p99", ascending(latRingSize), 0.99, 4056},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := PercentileMs(tc.sorted, tc.p); got != tc.want {
				t.Fatalf("PercentileMs(n=%d, p=%g) = %g, want %g", len(tc.sorted), tc.p, got, tc.want)
			}
		})
	}
}

// TestStatsSnapshotEmptyRing: a snapshot before any traffic reports
// zero percentiles and empty histograms rather than garbage.
func TestStatsSnapshotEmptyRing(t *testing.T) {
	st := newStats(3, 2)
	snap := st.snapshot()
	if snap.P50Ms != 0 || snap.P90Ms != 0 || snap.P99Ms != 0 {
		t.Fatalf("empty ring percentiles: %+v", snap)
	}
	if snap.Served != 0 || snap.DeadlineHitRate != 0 {
		t.Fatalf("empty counters: %+v", snap)
	}
	if len(snap.Classes) != 2 {
		t.Fatalf("want 2 class snapshots, got %d", len(snap.Classes))
	}
	for _, cs := range snap.Classes {
		if cs.P50Ms != 0 || cs.P99Ms != 0 || cs.Served != 0 {
			t.Fatalf("empty class snapshot: %+v", cs)
		}
	}
}

// TestStatsSnapshotSingleSample: one served request defines every
// percentile.
func TestStatsSnapshotSingleSample(t *testing.T) {
	st := newStats(3, 1)
	st.recordServed(Result{Subnet: 2, Latency: 7 * time.Millisecond, DeadlineMet: true})
	snap := st.snapshot()
	if snap.P50Ms != 7 || snap.P90Ms != 7 || snap.P99Ms != 7 {
		t.Fatalf("single-sample percentiles: p50=%g p90=%g p99=%g", snap.P50Ms, snap.P90Ms, snap.P99Ms)
	}
	if snap.BySubnet[1] != 1 || snap.Classes[0].BySubnet[1] != 1 {
		t.Fatalf("histograms: %+v", snap)
	}
	if snap.DeadlineHitRate != 1 || snap.Classes[0].DeadlineHitRate != 1 {
		t.Fatalf("hit rates: %+v", snap)
	}
}

// TestStatsRingWrap: after far more samples than the ring holds, the
// percentiles reflect only the most recent window — old samples age
// out completely.
func TestStatsRingWrap(t *testing.T) {
	st := newStats(1, 1)
	// Fill the ring twice over with 1ms, then exactly once with 5ms:
	// the window must contain only 5ms samples.
	for i := 0; i < 2*latRingSize; i++ {
		st.recordServed(Result{Subnet: 1, Latency: time.Millisecond})
	}
	for i := 0; i < latRingSize; i++ {
		st.recordServed(Result{Subnet: 1, Latency: 5 * time.Millisecond})
	}
	snap := st.snapshot()
	if snap.P50Ms != 5 || snap.P99Ms != 5 {
		t.Fatalf("post-wrap percentiles p50=%g p99=%g, want 5/5", snap.P50Ms, snap.P99Ms)
	}
	if snap.Served != 3*latRingSize {
		t.Fatalf("served %d, want %d (counters never age out)", snap.Served, 3*latRingSize)
	}
	// Partial wrap: ring count must clamp at capacity, not grow.
	st2 := newStats(1, 1)
	for i := 0; i < latRingSize+7; i++ {
		st2.recordServed(Result{Subnet: 1, Latency: time.Millisecond})
	}
	if st2.lats.count != latRingSize {
		t.Fatalf("ring count %d, want %d", st2.lats.count, latRingSize)
	}
}

// TestStatsConcurrentSnapshot hammers recordServed/recordRejected
// from many goroutines while snapshots are taken concurrently: every
// snapshot must be internally consistent (no torn counters), and the
// final counts exact. Run under -race in CI.
func TestStatsConcurrentSnapshot(t *testing.T) {
	st := newStats(3, 2)
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				st.recordSubmitted(w % 2)
				if i%10 == 0 {
					st.recordRejected(w % 2)
				} else {
					st.recordServed(Result{
						Subnet: 1 + i%3, Priority: w % 2,
						Latency: time.Duration(1+i%9) * time.Millisecond, DeadlineMet: true,
					})
				}
			}
		}()
	}
	snapsDone := make(chan struct{})
	go func() {
		defer close(snapsDone)
		for i := 0; i < 50; i++ {
			snap := st.snapshot()
			var histo int64
			for _, c := range snap.BySubnet {
				histo += c
			}
			if histo != snap.Served {
				t.Errorf("torn snapshot: histogram %d != served %d", histo, snap.Served)
				return
			}
			if snap.Submitted < snap.Served+snap.Rejected {
				t.Errorf("torn snapshot: submitted %d < served+rejected %d",
					snap.Submitted, snap.Served+snap.Rejected)
				return
			}
		}
	}()
	wg.Wait()
	<-snapsDone

	snap := st.snapshot()
	if snap.Submitted != writers*perWriter {
		t.Fatalf("submitted %d, want %d", snap.Submitted, writers*perWriter)
	}
	if snap.Submitted != snap.Served+snap.Rejected {
		t.Fatalf("final invariant: %+v", snap)
	}
	if snap.P50Ms <= 0 || snap.P99Ms < snap.P50Ms {
		t.Fatalf("percentiles p50=%g p99=%g", snap.P50Ms, snap.P99Ms)
	}
}
