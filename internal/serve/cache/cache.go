// Package cache implements the serving tier's semantic result cache:
// a bounded, concurrency-safe map from deterministic input hashes to
// the widest ladder rung previously reached for that input, its
// logits, and the engine-visible per-layer state (infer.LadderState)
// needed to RESUME the walk from that rung. The anytime property is
// what makes the cache semantic rather than exact-match-only in value:
// a hit whose cached rung already satisfies the request's budget is a
// free answer, and a hit below the budget still converts the cached
// rungs into a head start — the worker imports the state and climbs
// from rung k instead of rung 0, bitwise-equivalent to the cold walk
// it replaced (TestResumeMatchesColdWalk).
//
// Entries are immutable after Put: readers share the returned pointer
// without copying, and writers publish strictly wider walks by
// inserting replacement entries. Eviction is LRU under two
// simultaneous bounds (entry count and total bytes), so cached engine
// states — the heavy part — cannot grow without limit.
package cache

import (
	"math"
	"sync"

	"steppingnet/internal/infer"
)

// Key is a deterministic 64-bit hash of an input vector. Equal inputs
// hash equal across processes and runs (FNV-1a over the IEEE-754 bit
// patterns — no per-process seed), so keys are stable enough to route
// on in a cluster, not just to look up locally.
type Key uint64

// fnvOffset and fnvPrime are the standard FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// KeyOf hashes an input vector to its cache key: FNV-1a 64 over the
// little-endian IEEE-754 bit pattern of each element in order. The
// element count is folded in first, so a prefix and its extension
// cannot collide trivially. Bitwise-equal inputs — and only the bit
// pattern matters, so -0 and +0 differ and equal NaN payloads match —
// always produce equal keys.
//
// The cluster router keys its rendezvous hashing on this same value,
// so repeats of an input land on the replica whose cache holds the
// walk. The construction is therefore part of the wire contract: it
// must stay deterministic across processes and releases (the golden
// values in cache_test.go pin it).
func KeyOf(x []float64) Key {
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	mix(uint64(len(x)))
	for _, f := range x {
		mix(math.Float64bits(f))
	}
	return Key(h)
}

// Entry is one cached result: the widest rung a previous walk reached
// for this input, the logits that rung produced, and the ladder state
// to resume from. Entries are immutable once handed to Put — the
// cache shares them by pointer with concurrent readers.
type Entry struct {
	// Subnet is the rung the entry represents (≥ 1).
	Subnet int
	// Logits is the network output at Subnet, one value per class.
	Logits []float64
	// State resumes the walk: importing it into an engine and
	// stepping to s > Subnet computes only the missing units. Nil is
	// allowed (logits-only entry); such an entry can short-circuit a
	// request whose budget the rung already covers but cannot seed a
	// climb.
	State *infer.LadderState
}

// entryOverhead approximates the fixed per-entry bookkeeping cost
// (map slot, list element, headers) charged against MaxBytes on top
// of the tensor data, so a flood of tiny entries still hits the byte
// bound honestly.
const entryOverhead = 256

// bytes reports the entry's accounted footprint.
func (e *Entry) bytes() int64 {
	return int64(len(e.Logits))*8 + e.State.Bytes() + entryOverhead
}

// Config bounds a Cache. Zero values disable the respective bound,
// but the serving layer always sets both: cached ladder states are
// the dominant per-entry weight and must not grow without limit.
type Config struct {
	// MaxEntries caps the number of live entries (LRU evicts beyond
	// it). ≤ 0 means unbounded.
	MaxEntries int
	// MaxBytes caps the summed accounted footprint of live entries.
	// ≤ 0 means unbounded. A single entry larger than MaxBytes is
	// rejected by Put (storing it would immediately evict everything
	// including itself).
	MaxBytes int64
}

// Counters is a snapshot of the cache's monotonic event counters.
type Counters struct {
	// Hits counts Get calls that found a live entry.
	Hits int64
	// Misses counts Get calls that found nothing.
	Misses int64
	// Inserts counts Puts that stored a new key.
	Inserts int64
	// Widens counts Puts that replaced a live entry with a wider rung.
	Widens int64
	// Evictions counts live entries removed by the LRU bounds. An
	// oversized Put rejected outright is not an eviction (nothing
	// live was removed), so Len() == Inserts − Evictions always holds
	// — an invariant the fuzz target leans on.
	Evictions int64
}

// Cache is the bounded semantic result cache. All methods are safe
// for concurrent use; the zero value is not usable — construct with
// New.
type Cache struct {
	mu    sync.Mutex
	cfg   Config
	items map[Key]*node
	// Intrusive LRU list: head.next is most recently used, head.prev
	// least. A sentinel head keeps link/unlink branch-free.
	head  node
	bytes int64
	ctr   Counters
}

// node is one LRU slot. Entries travel by pointer and are immutable;
// only the links and the slot's identity mutate under the lock.
type node struct {
	key        Key
	entry      *Entry
	size       int64
	prev, next *node
}

// New builds an empty cache bounded by cfg.
func New(cfg Config) *Cache {
	c := &Cache{cfg: cfg, items: make(map[Key]*node)}
	c.head.prev = &c.head
	c.head.next = &c.head
	return c
}

// Get returns the live entry for k, marking it most recently used.
// The returned entry is shared and immutable — callers must not
// mutate it.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.items[k]
	if !ok {
		c.ctr.Misses++
		return nil, false
	}
	c.ctr.Hits++
	c.unlink(n)
	c.pushFront(n)
	return n.entry, true
}

// Put offers an entry for k and reports whether it was stored. An
// existing entry at an equal or wider rung wins (the offer is dropped
// — the cache keeps only the widest walk per key, and a narrower
// result adds nothing). Storing may evict least-recently-used entries
// to restore the bounds; an entry that alone exceeds MaxBytes is
// rejected without disturbing the rest.
func (c *Cache) Put(k Key, e *Entry) bool {
	if e == nil || e.Subnet < 1 {
		return false
	}
	size := e.bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.MaxBytes > 0 && size > c.cfg.MaxBytes {
		return false
	}
	if n, ok := c.items[k]; ok {
		if n.entry.Subnet >= e.Subnet {
			// Keep the wider (or equal) walk; refresh recency — the
			// key is demonstrably hot.
			c.unlink(n)
			c.pushFront(n)
			return false
		}
		c.bytes -= n.size
		n.entry, n.size = e, size
		c.bytes += size
		c.unlink(n)
		c.pushFront(n)
		c.ctr.Widens++
		c.evictOver()
		return true
	}
	n := &node{key: k, entry: e, size: size}
	c.items[k] = n
	c.bytes += size
	c.pushFront(n)
	c.ctr.Inserts++
	c.evictOver()
	return true
}

// evictOver drops least-recently-used entries until both bounds hold.
// Caller holds the lock.
func (c *Cache) evictOver() {
	for (c.cfg.MaxEntries > 0 && len(c.items) > c.cfg.MaxEntries) ||
		(c.cfg.MaxBytes > 0 && c.bytes > c.cfg.MaxBytes) {
		lru := c.head.prev
		if lru == &c.head {
			return
		}
		c.unlink(lru)
		delete(c.items, lru.key)
		c.bytes -= lru.size
		c.ctr.Evictions++
	}
}

// unlink removes n from the LRU list. Caller holds the lock.
func (c *Cache) unlink(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

// pushFront marks n most recently used. Caller holds the lock.
func (c *Cache) pushFront(n *node) {
	n.next = c.head.next
	n.prev = &c.head
	c.head.next.prev = n
	c.head.next = n
}

// Len reports the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes reports the summed accounted footprint of live entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Counters returns a snapshot of the event counters.
func (c *Cache) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctr
}
