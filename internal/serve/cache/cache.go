// Package cache implements the serving tier's semantic result cache:
// a bounded, concurrency-safe map from deterministic input hashes to
// the widest ladder rung previously reached for that input, its
// logits, and the engine-visible per-layer state (infer.LadderState)
// needed to RESUME the walk from that rung. The anytime property is
// what makes the cache semantic rather than exact-match-only in value:
// a hit whose cached rung already satisfies the request's budget is a
// free answer, and a hit below the budget still converts the cached
// rungs into a head start — the worker imports the state and climbs
// from rung k instead of rung 0, bitwise-equivalent to the cold walk
// it replaced (TestResumeMatchesColdWalk).
//
// Entries are immutable after Put: readers share the returned pointer
// without copying, and writers publish strictly wider walks by
// inserting replacement entries. Eviction is LRU under two
// simultaneous bounds (entry count and total bytes), so cached engine
// states — the heavy part — cannot grow without limit.
//
// Entries additionally carry lifecycle stamps: a monotonic GENERATION
// (bumped by the owner whenever the model or calibration is swapped
// underneath the cache — see BumpGeneration) and an insertion time
// checked against an optional TTL. A lookup that finds an entry from
// an older generation or past its TTL treats it as a miss-and-evict:
// the stale entry is removed (counted as an eviction, with Expired or
// Invalidated recording the cause) and the caller sees a plain miss,
// so stale state can never seed a resume.
package cache

import (
	"math"
	"sync"
	"time"

	"steppingnet/internal/infer"
)

// Key is a deterministic 64-bit hash of an input vector. Equal inputs
// hash equal across processes and runs (FNV-1a over the IEEE-754 bit
// patterns — no per-process seed), so keys are stable enough to route
// on in a cluster, not just to look up locally.
type Key uint64

// fnvOffset and fnvPrime are the standard FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// KeyOf hashes an input vector to its cache key: FNV-1a 64 over the
// little-endian IEEE-754 bit pattern of each element in order. The
// element count is folded in first, so a prefix and its extension
// cannot collide trivially. Bitwise-equal inputs — and only the bit
// pattern matters, so -0 and +0 differ and equal NaN payloads match —
// always produce equal keys.
//
// The cluster router keys its rendezvous hashing on this same value,
// so repeats of an input land on the replica whose cache holds the
// walk. The construction is therefore part of the wire contract: it
// must stay deterministic across processes and releases (the golden
// values in cache_test.go pin it).
func KeyOf(x []float64) Key {
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	mix(uint64(len(x)))
	for _, f := range x {
		mix(math.Float64bits(f))
	}
	return Key(h)
}

// Entry is one cached result: the widest rung a previous walk reached
// for this input, the logits that rung produced, and the ladder state
// to resume from. Entries are immutable once handed to Put — the
// cache shares them by pointer with concurrent readers.
type Entry struct {
	// Subnet is the rung the entry represents (≥ 1).
	Subnet int
	// Logits is the network output at Subnet, one value per class.
	Logits []float64
	// State resumes the walk: importing it into an engine and
	// stepping to s > Subnet computes only the missing units. Nil is
	// allowed (logits-only entry); such an entry can short-circuit a
	// request whose budget the rung already covers but cannot seed a
	// climb. State.Subnet may be NARROWER than Subnet: a wider
	// logits-only offer widening a resumable entry retains the old
	// state (see Put), so the logits answer at Subnet while a resume
	// seeds at State.Subnet.
	State *infer.LadderState
}

// entryOverhead approximates the fixed per-entry bookkeeping cost
// (map slot, list element, headers) charged against MaxBytes on top
// of the tensor data, so a flood of tiny entries still hits the byte
// bound honestly.
const entryOverhead = 256

// bytes reports the entry's accounted footprint.
func (e *Entry) bytes() int64 {
	return int64(len(e.Logits))*8 + e.State.Bytes() + entryOverhead
}

// Config bounds a Cache. Zero values disable the respective bound,
// but the serving layer always sets both: cached ladder states are
// the dominant per-entry weight and must not grow without limit.
type Config struct {
	// MaxEntries caps the number of live entries (LRU evicts beyond
	// it). ≤ 0 means unbounded.
	MaxEntries int
	// MaxBytes caps the summed accounted footprint of live entries.
	// ≤ 0 means unbounded. A single entry larger than MaxBytes is
	// rejected by Put (storing it would immediately evict everything
	// including itself).
	MaxBytes int64
	// TTL bounds an entry's lifetime from its insertion (a widen
	// restamps): a lookup past the TTL evicts the entry and reports a
	// miss, counted under Counters.Expired. ≤ 0 disables expiry.
	TTL time.Duration
	// Now overrides the clock used for TTL stamps and checks — the
	// injection point that makes expiry deterministic in tests. Nil
	// means time.Now. Only consulted when TTL > 0, so a TTL-free
	// cache takes no timestamps at all.
	Now func() time.Time
}

// Counters is a snapshot of the cache's monotonic event counters.
type Counters struct {
	// Hits counts lookups that found a live entry.
	Hits int64
	// Misses counts lookups that found nothing live (including
	// lookups that found only a stale entry and evicted it).
	Misses int64
	// Inserts counts Puts that stored a new key.
	Inserts int64
	// Widens counts Puts that replaced a live entry with a wider rung.
	Widens int64
	// Evictions counts live entries removed for any reason: the LRU
	// bounds, TTL expiry, or a generation bump observed at lookup. An
	// oversized Put rejected outright is not an eviction (nothing
	// live was removed), so Len() == Inserts − Evictions always holds
	// — an invariant the fuzz target leans on.
	Evictions int64
	// Expired attributes evictions caused by the TTL: the entry was
	// found past its lifetime and removed. Each expiry also counts in
	// Evictions (attribution, not a separate pool).
	Expired int64
	// Invalidated attributes evictions caused by a generation bump:
	// the entry was stamped under an older generation and removed at
	// lookup. Each invalidation also counts in Evictions.
	Invalidated int64
}

// Stats is a coherent snapshot of the cache's gauges and counters,
// taken under one lock acquisition — Len, Bytes and the counters are
// mutually consistent (e.g. Len == Counters.Inserts −
// Counters.Evictions holds exactly), which three separate accessor
// calls cannot guarantee under concurrent churn.
type Stats struct {
	// Len is the number of live entries.
	Len int
	// Bytes is the summed accounted footprint of live entries.
	Bytes int64
	// Generation is the cache's current generation stamp.
	Generation uint64
	// Counters is the monotonic event-counter snapshot.
	Counters Counters
}

// Cache is the bounded semantic result cache. All methods are safe
// for concurrent use; the zero value is not usable — construct with
// New.
type Cache struct {
	mu  sync.Mutex
	cfg Config
	now func() time.Time
	// gen is the current generation; entries stamped under an older
	// one are evicted at lookup (BumpGeneration).
	gen   uint64
	items map[Key]*node
	// Intrusive LRU list: head.next is most recently used, head.prev
	// least. A sentinel head keeps link/unlink branch-free.
	head  node
	bytes int64
	ctr   Counters
}

// node is one LRU slot. Entries travel by pointer and are immutable;
// only the links and the slot's identity mutate under the lock.
type node struct {
	key        Key
	entry      *Entry
	size       int64
	gen        uint64
	stamp      time.Time
	prev, next *node
}

// New builds an empty cache bounded by cfg.
func New(cfg Config) *Cache {
	c := &Cache{cfg: cfg, items: make(map[Key]*node)}
	c.now = cfg.Now
	if c.now == nil {
		c.now = time.Now
	}
	c.head.prev = &c.head
	c.head.next = &c.head
	return c
}

// Get returns the live entry for k, marking it most recently used.
// The returned entry is shared and immutable — callers must not
// mutate it. A stale entry (older generation or past TTL) is evicted
// and reported as a miss. Callers that may still abandon the request
// (admission, deadline checks) should use Lookup + Touch instead, so
// doomed work cannot churn the LRU order.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.liveLocked(k)
	if !ok {
		c.ctr.Misses++
		return nil, false
	}
	c.ctr.Hits++
	c.unlink(n)
	c.pushFront(n)
	return n.entry, true
}

// Lookup is Get without the recency refresh: it counts the hit or
// miss and enforces staleness, but leaves the LRU order untouched.
// The serving layer looks entries up at batch formation and calls
// Touch only for requests that actually reach an answer or a walk —
// a flood of requests that are then rejected downstream must not
// push live keys toward eviction.
func (c *Cache) Lookup(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.liveLocked(k)
	if !ok {
		c.ctr.Misses++
		return nil, false
	}
	c.ctr.Hits++
	return n.entry, true
}

// Peek returns the live entry for k without counting a hit or miss
// and without refreshing recency. Staleness is still enforced (a
// stale entry is evicted and not returned). It serves observers that
// are not request traffic: the speculative pre-climber choosing work
// and the warming endpoint exporting entries to peers.
func (c *Cache) Peek(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.liveLocked(k)
	if !ok {
		return nil, false
	}
	return n.entry, true
}

// Touch marks k most recently used if it is live, and is otherwise a
// no-op. Pairs with Lookup: recency moves only when the looked-up
// request commits to using the entry.
func (c *Cache) Touch(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.liveLocked(k); ok {
		c.unlink(n)
		c.pushFront(n)
	}
}

// liveLocked returns the node for k if it is live under the current
// generation and TTL. A stale node is evicted here — counted as an
// eviction with its cause attributed — and reported as absent.
// Caller holds the lock.
func (c *Cache) liveLocked(k Key) (*node, bool) {
	n, ok := c.items[k]
	if !ok {
		return nil, false
	}
	if n.gen != c.gen {
		c.removeLocked(n)
		c.ctr.Invalidated++
		return nil, false
	}
	if c.cfg.TTL > 0 && c.now().Sub(n.stamp) > c.cfg.TTL {
		c.removeLocked(n)
		c.ctr.Expired++
		return nil, false
	}
	return n, true
}

// removeLocked evicts n from the map and list and counts the
// eviction. Caller holds the lock and attributes the cause.
func (c *Cache) removeLocked(n *node) {
	c.unlink(n)
	delete(c.items, n.key)
	c.bytes -= n.size
	c.ctr.Evictions++
}

// BumpGeneration advances the cache's generation stamp and returns
// the new value. Every live entry becomes stale at once — each is
// evicted lazily at its next lookup (counted under Invalidated) —
// without walking the live set. The serving layer bumps whenever the
// model or calibration is swapped underneath the cache, so no walk
// resumes from state a swapped model did not produce.
func (c *Cache) BumpGeneration() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	return c.gen
}

// Generation returns the current generation stamp. Pair with
// PutIfGeneration to make a read-compute-write cycle (e.g. a
// speculative pre-climb) discard its result if the world changed
// while it computed.
func (c *Cache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Put offers an entry for k and reports whether it was stored. An
// existing live entry at an equal or wider rung wins (the offer is
// dropped — the cache keeps only the widest walk per key, and a
// narrower result adds nothing). A wider offer that carries no
// resume state retains the replaced entry's state (re-accounted),
// so widening never destroys resumability. Storing may evict
// least-recently-used entries to restore the bounds; an entry that
// alone exceeds MaxBytes is rejected without disturbing the rest.
func (c *Cache) Put(k Key, e *Entry) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.putLocked(k, e)
}

// PutIfGeneration is Put gated on the generation observed when the
// offer's inputs were read: if the cache's generation has moved past
// gen, the offer is dropped. It closes the read-compute-write race a
// lazy invalidation scheme otherwise has — state peeked under
// generation g, climbed, and offered back after a bump would
// resurrect pre-bump data under the new generation.
func (c *Cache) PutIfGeneration(k Key, e *Entry, gen uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return false
	}
	return c.putLocked(k, e)
}

// putLocked is the Put body. Caller holds the lock.
func (c *Cache) putLocked(k Key, e *Entry) bool {
	if e == nil || e.Subnet < 1 {
		return false
	}
	size := e.bytes()
	if c.cfg.MaxBytes > 0 && size > c.cfg.MaxBytes {
		return false
	}
	var stamp time.Time
	if c.cfg.TTL > 0 {
		stamp = c.now()
	}
	if n, ok := c.items[k]; ok && c.nodeLive(n, stamp) {
		if n.entry.Subnet >= e.Subnet {
			// Keep the wider (or equal) walk; refresh recency — the
			// key is demonstrably hot.
			c.unlink(n)
			c.pushFront(n)
			return false
		}
		if e.State == nil && n.entry.State != nil {
			// Widen-retains-state: a wider logits-only offer must not
			// destroy the narrower entry's resumability. Merge: the
			// new rung's logits answer, the old state still seeds a
			// climb (from State.Subnet). Skipped only if the merged
			// footprint alone would bust the byte bound.
			merged := &Entry{Subnet: e.Subnet, Logits: e.Logits, State: n.entry.State}
			if ms := merged.bytes(); c.cfg.MaxBytes <= 0 || ms <= c.cfg.MaxBytes {
				e, size = merged, ms
			}
		}
		c.bytes -= n.size
		n.entry, n.size = e, size
		n.stamp = stamp
		c.bytes += size
		c.unlink(n)
		c.pushFront(n)
		c.ctr.Widens++
		c.evictOver()
		return true
	} else if ok {
		// The slot exists but is stale (old generation or expired):
		// evict it with attribution and fall through to a fresh
		// insert — comparing rungs against stale data would let a
		// pre-bump walk outrank a post-bump one.
		if n.gen != c.gen {
			c.removeLocked(n)
			c.ctr.Invalidated++
		} else {
			c.removeLocked(n)
			c.ctr.Expired++
		}
	}
	n := &node{key: k, entry: e, size: size, gen: c.gen, stamp: stamp}
	c.items[k] = n
	c.bytes += size
	c.pushFront(n)
	c.ctr.Inserts++
	c.evictOver()
	return true
}

// nodeLive reports whether n is live under the current generation
// and TTL, without evicting. stamp carries the already-taken clock
// reading when TTL is armed (zero otherwise). Caller holds the lock.
func (c *Cache) nodeLive(n *node, stamp time.Time) bool {
	if n.gen != c.gen {
		return false
	}
	if c.cfg.TTL > 0 && stamp.Sub(n.stamp) > c.cfg.TTL {
		return false
	}
	return true
}

// evictOver drops least-recently-used entries until both bounds hold.
// Caller holds the lock.
func (c *Cache) evictOver() {
	for (c.cfg.MaxEntries > 0 && len(c.items) > c.cfg.MaxEntries) ||
		(c.cfg.MaxBytes > 0 && c.bytes > c.cfg.MaxBytes) {
		lru := c.head.prev
		if lru == &c.head {
			return
		}
		c.removeLocked(lru)
	}
}

// unlink removes n from the LRU list. Caller holds the lock.
func (c *Cache) unlink(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

// pushFront marks n most recently used. Caller holds the lock.
func (c *Cache) pushFront(n *node) {
	n.next = c.head.next
	n.prev = &c.head
	c.head.next.prev = n
	c.head.next = n
}

// Len reports the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes reports the summed accounted footprint of live entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Counters returns a snapshot of the event counters.
func (c *Cache) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctr
}

// Stats returns the gauges and counters as one coherent snapshot
// taken under a single lock acquisition. Prefer it over separate
// Len/Bytes/Counters calls wherever the values are reported together
// — a composite read across three acquisitions can tear against
// concurrent Put/evict traffic.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Len: len(c.items), Bytes: c.bytes, Generation: c.gen, Counters: c.ctr}
}
