package cache

import (
	"math"
	"testing"

	"steppingnet/internal/infer"
	"steppingnet/internal/tensor"
)

// entry builds a logits-only entry at the given rung with a synthetic
// state of stateFloats float64s, so byte accounting is exercised
// without a real engine.
func entry(subnet, stateFloats int) *Entry {
	e := &Entry{Subnet: subnet, Logits: make([]float64, 5)}
	if stateFloats > 0 {
		e.State = &infer.LadderState{
			Subnet: subnet,
			In:     []int{1, 1, 1, 1},
			Layers: []*tensor.Tensor{tensor.New(1, stateFloats)},
		}
	}
	return e
}

// TestKeyDeterminism pins the hash contract: equal inputs hash equal,
// the hash covers every element and the length, and the bit pattern —
// not the numeric value — is what is hashed (-0 vs +0 differ, equal
// NaN payloads match). The exact values are also pinned so the key
// stays stable across processes and releases: a silent hash change
// would orphan every routed cache in a cluster.
func TestKeyDeterminism(t *testing.T) {
	x := []float64{1.5, -2.25, 0, 3e-9}
	if KeyOf(x) != KeyOf(append([]float64(nil), x...)) {
		t.Fatal("equal inputs hash differently")
	}
	y := append([]float64(nil), x...)
	y[3] = math.Nextafter(y[3], 1)
	if KeyOf(x) == KeyOf(y) {
		t.Fatal("one-ulp change did not change the key")
	}
	if KeyOf(x) == KeyOf(x[:3]) {
		t.Fatal("prefix hashes equal to full input")
	}
	if KeyOf([]float64{0}) == KeyOf([]float64{math.Copysign(0, -1)}) {
		t.Fatal("+0 and -0 should hash differently (bit-pattern hash)")
	}
	nan1 := math.Float64frombits(0x7ff8000000000001)
	if KeyOf([]float64{nan1}) != KeyOf([]float64{math.Float64frombits(0x7ff8000000000001)}) {
		t.Fatal("equal NaN payloads should hash equal")
	}
	// Pinned values: recomputing these on any platform must agree.
	if got, want := KeyOf(nil), Key(0xa8c7f832281a39c5); got != want {
		t.Fatalf("KeyOf(nil) = %#x, want %#x", got, want)
	}
	if got, want := KeyOf([]float64{1}), Key(0x38ebb0f14dbc2579); got != want {
		t.Fatalf("KeyOf([1]) = %#x, want %#x", got, want)
	}
}

// TestWidestRungWins pins the replacement policy: a Put at a narrower
// or equal rung is dropped, a wider one replaces, and byte accounting
// follows the live entry.
func TestWidestRungWins(t *testing.T) {
	c := New(Config{MaxEntries: 8, MaxBytes: 1 << 20})
	k := KeyOf([]float64{42})
	if !c.Put(k, entry(2, 64)) {
		t.Fatal("first Put should store")
	}
	if c.Put(k, entry(1, 64)) {
		t.Fatal("narrower rung should be dropped")
	}
	if c.Put(k, entry(2, 64)) {
		t.Fatal("equal rung should be dropped")
	}
	if !c.Put(k, entry(3, 128)) {
		t.Fatal("wider rung should replace")
	}
	e, ok := c.Get(k)
	if !ok || e.Subnet != 3 {
		t.Fatalf("Get returned %+v, want subnet 3", e)
	}
	ctr := c.Counters()
	if ctr.Inserts != 1 || ctr.Widens != 1 {
		t.Fatalf("counters %+v, want 1 insert 1 widen", ctr)
	}
	if c.Len() != 1 {
		t.Fatalf("Len %d, want 1", c.Len())
	}
	if want := entry(3, 128).bytes(); c.Bytes() != want {
		t.Fatalf("Bytes %d, want %d (the live entry only)", c.Bytes(), want)
	}
}

// TestLRUEviction pins the eviction order (least recently USED, where
// Get refreshes recency) and both bounds.
func TestLRUEviction(t *testing.T) {
	c := New(Config{MaxEntries: 3, MaxBytes: 1 << 20})
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = KeyOf([]float64{float64(i)})
	}
	c.Put(keys[0], entry(1, 16))
	c.Put(keys[1], entry(1, 16))
	c.Put(keys[2], entry(1, 16))
	c.Get(keys[0]) // refresh key 0: key 1 is now LRU
	c.Put(keys[3], entry(1, 16))
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("key 1 should have been evicted (LRU)")
	}
	for _, k := range []Key{keys[0], keys[2], keys[3]} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("key %#x should be live", k)
		}
	}
	if c.Counters().Evictions != 1 {
		t.Fatalf("evictions %d, want 1", c.Counters().Evictions)
	}

	// Byte bound: one big entry evicts several small ones.
	small := entry(1, 16).bytes()
	cb := New(Config{MaxEntries: 100, MaxBytes: 4*small + entry(1, 16).bytes()})
	for i := 0; i < 4; i++ {
		cb.Put(KeyOf([]float64{10, float64(i)}), entry(1, 16))
	}
	big := entry(1, int(3*small/8))
	if !cb.Put(KeyOf([]float64{99}), big) {
		t.Fatal("big entry should store after evictions")
	}
	if cb.Bytes() > cb.cfg.MaxBytes {
		t.Fatalf("byte bound violated: %d > %d", cb.Bytes(), cb.cfg.MaxBytes)
	}
	if _, ok := cb.Get(KeyOf([]float64{99})); !ok {
		t.Fatal("big entry should be live")
	}

	// An entry alone exceeding MaxBytes is rejected without
	// disturbing the live set.
	before := cb.Len()
	if cb.Put(KeyOf([]float64{7}), entry(1, 1<<20)) {
		t.Fatal("oversized entry should be rejected")
	}
	if cb.Len() != before {
		t.Fatal("oversized Put disturbed the live set")
	}
}

// TestUnboundedConfig pins that zero bounds mean unbounded (the
// library default; the serving layer always sets both).
func TestUnboundedConfig(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 100; i++ {
		c.Put(KeyOf([]float64{float64(i)}), entry(1, 8))
	}
	if c.Len() != 100 || c.Counters().Evictions != 0 {
		t.Fatalf("unbounded cache evicted: len %d, evictions %d", c.Len(), c.Counters().Evictions)
	}
}
