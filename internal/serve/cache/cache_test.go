package cache

import (
	"math"
	"testing"
	"time"

	"steppingnet/internal/infer"
	"steppingnet/internal/tensor"
)

// entry builds a logits-only entry at the given rung with a synthetic
// state of stateFloats float64s, so byte accounting is exercised
// without a real engine.
func entry(subnet, stateFloats int) *Entry {
	e := &Entry{Subnet: subnet, Logits: make([]float64, 5)}
	if stateFloats > 0 {
		e.State = &infer.LadderState{
			Subnet: subnet,
			In:     []int{1, 1, 1, 1},
			Layers: []*tensor.Tensor{tensor.New(1, stateFloats)},
		}
	}
	return e
}

// TestKeyDeterminism pins the hash contract: equal inputs hash equal,
// the hash covers every element and the length, and the bit pattern —
// not the numeric value — is what is hashed (-0 vs +0 differ, equal
// NaN payloads match). The exact values are also pinned so the key
// stays stable across processes and releases: a silent hash change
// would orphan every routed cache in a cluster.
func TestKeyDeterminism(t *testing.T) {
	x := []float64{1.5, -2.25, 0, 3e-9}
	if KeyOf(x) != KeyOf(append([]float64(nil), x...)) {
		t.Fatal("equal inputs hash differently")
	}
	y := append([]float64(nil), x...)
	y[3] = math.Nextafter(y[3], 1)
	if KeyOf(x) == KeyOf(y) {
		t.Fatal("one-ulp change did not change the key")
	}
	if KeyOf(x) == KeyOf(x[:3]) {
		t.Fatal("prefix hashes equal to full input")
	}
	if KeyOf([]float64{0}) == KeyOf([]float64{math.Copysign(0, -1)}) {
		t.Fatal("+0 and -0 should hash differently (bit-pattern hash)")
	}
	nan1 := math.Float64frombits(0x7ff8000000000001)
	if KeyOf([]float64{nan1}) != KeyOf([]float64{math.Float64frombits(0x7ff8000000000001)}) {
		t.Fatal("equal NaN payloads should hash equal")
	}
	// Pinned values: recomputing these on any platform must agree.
	if got, want := KeyOf(nil), Key(0xa8c7f832281a39c5); got != want {
		t.Fatalf("KeyOf(nil) = %#x, want %#x", got, want)
	}
	if got, want := KeyOf([]float64{1}), Key(0x38ebb0f14dbc2579); got != want {
		t.Fatalf("KeyOf([1]) = %#x, want %#x", got, want)
	}
}

// TestWidestRungWins pins the replacement policy: a Put at a narrower
// or equal rung is dropped, a wider one replaces, and byte accounting
// follows the live entry.
func TestWidestRungWins(t *testing.T) {
	c := New(Config{MaxEntries: 8, MaxBytes: 1 << 20})
	k := KeyOf([]float64{42})
	if !c.Put(k, entry(2, 64)) {
		t.Fatal("first Put should store")
	}
	if c.Put(k, entry(1, 64)) {
		t.Fatal("narrower rung should be dropped")
	}
	if c.Put(k, entry(2, 64)) {
		t.Fatal("equal rung should be dropped")
	}
	if !c.Put(k, entry(3, 128)) {
		t.Fatal("wider rung should replace")
	}
	e, ok := c.Get(k)
	if !ok || e.Subnet != 3 {
		t.Fatalf("Get returned %+v, want subnet 3", e)
	}
	ctr := c.Counters()
	if ctr.Inserts != 1 || ctr.Widens != 1 {
		t.Fatalf("counters %+v, want 1 insert 1 widen", ctr)
	}
	if c.Len() != 1 {
		t.Fatalf("Len %d, want 1", c.Len())
	}
	if want := entry(3, 128).bytes(); c.Bytes() != want {
		t.Fatalf("Bytes %d, want %d (the live entry only)", c.Bytes(), want)
	}
}

// TestLRUEviction pins the eviction order (least recently USED, where
// Get refreshes recency) and both bounds.
func TestLRUEviction(t *testing.T) {
	c := New(Config{MaxEntries: 3, MaxBytes: 1 << 20})
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = KeyOf([]float64{float64(i)})
	}
	c.Put(keys[0], entry(1, 16))
	c.Put(keys[1], entry(1, 16))
	c.Put(keys[2], entry(1, 16))
	c.Get(keys[0]) // refresh key 0: key 1 is now LRU
	c.Put(keys[3], entry(1, 16))
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("key 1 should have been evicted (LRU)")
	}
	for _, k := range []Key{keys[0], keys[2], keys[3]} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("key %#x should be live", k)
		}
	}
	if c.Counters().Evictions != 1 {
		t.Fatalf("evictions %d, want 1", c.Counters().Evictions)
	}

	// Byte bound: one big entry evicts several small ones.
	small := entry(1, 16).bytes()
	cb := New(Config{MaxEntries: 100, MaxBytes: 4*small + entry(1, 16).bytes()})
	for i := 0; i < 4; i++ {
		cb.Put(KeyOf([]float64{10, float64(i)}), entry(1, 16))
	}
	big := entry(1, int(3*small/8))
	if !cb.Put(KeyOf([]float64{99}), big) {
		t.Fatal("big entry should store after evictions")
	}
	if cb.Bytes() > cb.cfg.MaxBytes {
		t.Fatalf("byte bound violated: %d > %d", cb.Bytes(), cb.cfg.MaxBytes)
	}
	if _, ok := cb.Get(KeyOf([]float64{99})); !ok {
		t.Fatal("big entry should be live")
	}

	// An entry alone exceeding MaxBytes is rejected without
	// disturbing the live set.
	before := cb.Len()
	if cb.Put(KeyOf([]float64{7}), entry(1, 1<<20)) {
		t.Fatal("oversized entry should be rejected")
	}
	if cb.Len() != before {
		t.Fatal("oversized Put disturbed the live set")
	}
}

// TestWidenRetainsState pins the widen-retains-state fix: a wider
// logits-only offer (State == nil — legal per the Entry doc, and
// exactly what the warming wire path can produce) replacing a
// narrower RESUMABLE entry must keep the old state, so later repeats
// can still full-hit at the new rung AND seed a climb from the
// retained rung. Byte accounting must follow the merged entry.
func TestWidenRetainsState(t *testing.T) {
	c := New(Config{MaxEntries: 8, MaxBytes: 1 << 20})
	k := KeyOf([]float64{7})
	narrow := entry(2, 64) // resumable at rung 2
	if !c.Put(k, narrow) {
		t.Fatal("first Put should store")
	}
	wide := entry(3, 0) // logits-only at rung 3
	if wide.State != nil {
		t.Fatal("test setup: wide offer should be logits-only")
	}
	if !c.Put(k, wide) {
		t.Fatal("wider offer should replace")
	}
	e, ok := c.Get(k)
	if !ok || e.Subnet != 3 {
		t.Fatalf("Get returned %+v, want rung-3 entry", e)
	}
	if e.State == nil {
		t.Fatal("widen dropped the narrower entry's resume state")
	}
	if e.State.Subnet != 2 {
		t.Fatalf("retained state at rung %d, want 2", e.State.Subnet)
	}
	// Accounting: the live entry is the merged one — rung-3 logits
	// plus the rung-2 state.
	want := (&Entry{Subnet: 3, Logits: wide.Logits, State: narrow.State}).bytes()
	if c.Bytes() != want {
		t.Fatalf("Bytes %d, want merged footprint %d", c.Bytes(), want)
	}
	// A wider offer that carries its OWN state replaces outright.
	wider := entry(4, 32)
	if !c.Put(k, wider) {
		t.Fatal("wider resumable offer should replace")
	}
	if e, _ := c.Get(k); e.State != wider.State {
		t.Fatal("resumable widen should install the new state")
	}
}

// TestTTLExpiryGolden pins the expiry accounting contract exactly: a
// lookup that finds an entry past its TTL evicts it and reports a
// miss — one miss, one eviction, one expired, nothing else — and the
// Len == Inserts − Evictions identity holds across the transition.
func TestTTLExpiryGolden(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	c := New(Config{MaxEntries: 8, MaxBytes: 1 << 20, TTL: 10 * time.Second, Now: clock})
	k := KeyOf([]float64{1})
	if !c.Put(k, entry(2, 16)) {
		t.Fatal("Put should store")
	}
	now = now.Add(10 * time.Second) // exactly at TTL: still live
	if _, ok := c.Get(k); !ok {
		t.Fatal("entry at exactly TTL should still be live")
	}
	now = now.Add(time.Nanosecond) // past TTL
	if _, ok := c.Get(k); ok {
		t.Fatal("entry past TTL should miss")
	}
	st := c.Stats()
	if st.Counters.Misses != 1 || st.Counters.Evictions != 1 || st.Counters.Expired != 1 {
		t.Fatalf("expiry counted misses=%d evictions=%d expired=%d, want exactly 1/1/1",
			st.Counters.Misses, st.Counters.Evictions, st.Counters.Expired)
	}
	if st.Counters.Invalidated != 0 {
		t.Fatalf("expiry misattributed as invalidation: %d", st.Counters.Invalidated)
	}
	if st.Len != 0 || int64(st.Len) != st.Counters.Inserts-st.Counters.Evictions {
		t.Fatalf("identity broken after expiry: len=%d inserts=%d evictions=%d",
			st.Len, st.Counters.Inserts, st.Counters.Evictions)
	}
	if st.Bytes != 0 {
		t.Fatalf("expired entry's bytes not released: %d", st.Bytes)
	}
	// A fresh Put after the expiry restamps and serves again.
	if !c.Put(k, entry(2, 16)) {
		t.Fatal("re-Put after expiry should store")
	}
	if _, ok := c.Get(k); !ok {
		t.Fatal("restamped entry should be live")
	}
}

// TestGenerationInvalidation pins the generation contract: after
// BumpGeneration every pre-bump entry is evicted at its next lookup
// (miss + eviction + invalidated), Put across the bump compares
// against nothing stale, and PutIfGeneration discards an offer whose
// inputs were read before the bump.
func TestGenerationInvalidation(t *testing.T) {
	c := New(Config{MaxEntries: 8, MaxBytes: 1 << 20})
	k := KeyOf([]float64{3})
	c.Put(k, entry(3, 64))
	gen := c.Generation()
	if got := c.BumpGeneration(); got != gen+1 {
		t.Fatalf("BumpGeneration returned %d, want %d", got, gen+1)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("pre-bump entry should miss after the bump")
	}
	st := c.Stats()
	if st.Counters.Invalidated != 1 || st.Counters.Evictions != 1 || st.Counters.Misses != 1 {
		t.Fatalf("invalidation counted invalidated=%d evictions=%d misses=%d, want 1/1/1",
			st.Counters.Invalidated, st.Counters.Evictions, st.Counters.Misses)
	}
	if int64(st.Len) != st.Counters.Inserts-st.Counters.Evictions {
		t.Fatalf("identity broken after invalidation: %+v", st)
	}
	// A stale slot found by Put (no intervening lookup) is evicted
	// with attribution, and the new offer stores fresh — even at a
	// NARROWER rung than the stale data.
	c.Put(k, entry(3, 64))
	c.BumpGeneration()
	if !c.Put(k, entry(1, 16)) {
		t.Fatal("post-bump Put at a narrower rung should store (stale slot must not outrank it)")
	}
	if e, ok := c.Get(k); !ok || e.Subnet != 1 {
		t.Fatalf("post-bump entry %+v, want fresh rung-1 entry", e)
	}
	// PutIfGeneration: an offer computed under the old generation is
	// dropped.
	old := c.Generation()
	c.BumpGeneration()
	if c.PutIfGeneration(KeyOf([]float64{4}), entry(2, 16), old) {
		t.Fatal("PutIfGeneration should drop a cross-generation offer")
	}
	if c.PutIfGeneration(KeyOf([]float64{4}), entry(2, 16), c.Generation()) != true {
		t.Fatal("PutIfGeneration at the current generation should store")
	}
}

// TestLookupTouchRecency pins the recency split the serving layer
// depends on: Lookup counts but does not move the LRU order (doomed
// requests cannot churn live keys), Touch moves without counting,
// and Get remains lookup+touch.
func TestLookupTouchRecency(t *testing.T) {
	c := New(Config{MaxEntries: 3, MaxBytes: 1 << 20})
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = KeyOf([]float64{float64(i)})
		if i < 3 {
			c.Put(keys[i], entry(1, 16))
		}
	}
	// Lookup key 0 (oldest) — recency must NOT refresh, so the next
	// insert still evicts key 0.
	if _, ok := c.Lookup(keys[0]); !ok {
		t.Fatal("Lookup should find key 0")
	}
	c.Put(keys[3], entry(1, 16))
	if _, ok := c.Peek(keys[0]); ok {
		t.Fatal("Lookup refreshed recency: key 0 survived, key 1 evicted")
	}
	// Rebuild; Touch key 0 — now it must survive.
	c = New(Config{MaxEntries: 3, MaxBytes: 1 << 20})
	for i := 0; i < 3; i++ {
		c.Put(keys[i], entry(1, 16))
	}
	c.Touch(keys[0])
	c.Put(keys[3], entry(1, 16))
	if _, ok := c.Peek(keys[0]); !ok {
		t.Fatal("Touch did not refresh recency: key 0 evicted")
	}
	if _, ok := c.Peek(keys[1]); ok {
		t.Fatal("key 1 should be the LRU victim after Touch(key 0)")
	}
	// Peek counts nothing.
	before := c.Counters()
	c.Peek(keys[0])
	c.Peek(keys[1])
	if after := c.Counters(); after != before {
		t.Fatalf("Peek moved counters: %+v -> %+v", before, after)
	}
}

// TestUnboundedConfig pins that zero bounds mean unbounded (the
// library default; the serving layer always sets both).
func TestUnboundedConfig(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 100; i++ {
		c.Put(KeyOf([]float64{float64(i)}), entry(1, 8))
	}
	if c.Len() != 100 || c.Counters().Evictions != 0 {
		t.Fatalf("unbounded cache evicted: len %d, evictions %d", c.Len(), c.Counters().Evictions)
	}
}
