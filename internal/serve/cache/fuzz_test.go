package cache

import (
	"encoding/binary"
	"math"
	"sync"
	"testing"
	"time"

	"steppingnet/internal/infer"
	"steppingnet/internal/models"
	"steppingnet/internal/nn"
	"steppingnet/internal/tensor"
)

// fuzzModel lazily builds the one tiny model every fuzz iteration
// shares: a 3-subnet LeNet3C1L plus a cold reference walk (logits at
// the top rung) and a pristine exported state at rung 2, from which
// iterations derive corrupted variants.
var fuzzModel struct {
	once  sync.Once
	m     *models.Model
	x     *tensor.Tensor
	top   []float64
	state *infer.LadderState
}

// fuzzSetup performs the one-time model build behind fuzzModel.once.
func fuzzSetup() {
	fuzzModel.m = models.LeNet3C1L(models.Options{
		Classes: 4, InC: 1, InH: 8, InW: 8, Expansion: 1.0,
		Subnets: 3, Rule: nn.RuleIncremental, Seed: 11,
	})
	fuzzModel.x = tensor.New(1, 1, 8, 8)
	fuzzModel.x.FillNormal(tensor.NewRNG(12), 0, 1)
	e := infer.NewEngine(fuzzModel.m.Net)
	e.Workers = 1
	e.Reset(fuzzModel.x)
	e.MustStep(1)
	e.MustStep(2)
	st, err := e.ExportState(0)
	if err != nil {
		panic(err)
	}
	fuzzModel.state = st
	out, _ := e.MustStep(3)
	fuzzModel.top = append([]float64(nil), out.Data()...)
}

// FuzzCacheResume fuzzes the three hardened surfaces of the semantic
// cache as one target: (1) hash stability — equal inputs must hash
// equal, and the key must be a pure function of the bit pattern; (2)
// eviction under churn — a small bounded cache driven by an arbitrary
// Put/Get op stream must hold both bounds and its counter identity
// after every op; (3) the resume path — ImportState must reject every
// structurally corrupted ladder state with an error (never a panic),
// and an intact import must still climb to logits bitwise equal to
// the cold walk. Wired into the ci.sh fuzz-smoke stage.
func FuzzCacheResume(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x10, 0x20, 0x40, 0x80, 0xff})
	f.Add([]byte("\x05\x00\x00\x00\x00\x00\x00\xf0\x3f steppingnet"))
	f.Add([]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x01, 0x02, 0x03, 0x04,
		0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e})
	f.Fuzz(func(t *testing.T, data []byte) {
		// (1) Hash stability over the fuzzed float vector.
		floats := make([]float64, 0, len(data)/8)
		for i := 0; i+8 <= len(data); i += 8 {
			floats = append(floats, math.Float64frombits(binary.LittleEndian.Uint64(data[i:])))
		}
		if KeyOf(floats) != KeyOf(append([]float64(nil), floats...)) {
			t.Fatal("equal inputs hash differently")
		}

		// (2) Eviction under churn: drive a tightly bounded cache —
		// with the full lifecycle armed (TTL on a deterministic fake
		// clock, generation bumps) — with the byte stream as ops;
		// every op must preserve the bounds and, on ONE coherent
		// Stats snapshot, the Len == Inserts − Evictions identity
		// (every expiry and invalidation must count as an eviction).
		const maxEntries, maxBytes = 4, 8192
		var tick int64
		clock := func() time.Time { return time.Unix(0, tick) }
		c := New(Config{MaxEntries: maxEntries, MaxBytes: maxBytes, TTL: 40, Now: clock})
		ops := data
		if len(ops) > 256 {
			ops = ops[:256]
		}
		for _, b := range ops {
			tick += int64(b % 8) // advance the clock 0–7ns per op
			k := KeyOf([]float64{float64(b % 16)})
			switch b % 5 {
			case 0, 1:
				stored := c.Put(k, entry(1+int(b>>4)%3, 8*(1+int(b%29))))
				if stored {
					if e, ok := c.Get(k); !ok || e.Subnet < 1+int(b>>4)%3 {
						t.Fatalf("op %#x: stored entry not retrievable at its rung", b)
					}
				}
			case 2:
				c.Get(k)
			case 3:
				c.Lookup(k)
				c.Peek(k)
				c.Touch(k)
			case 4:
				if b%32 == 4 { // occasional generation bump
					c.BumpGeneration()
				} else {
					c.Get(k)
				}
			}
			st := c.Stats()
			if st.Len > maxEntries || st.Bytes > maxBytes {
				t.Fatalf("bounds violated: len %d bytes %d", st.Len, st.Bytes)
			}
			if int64(st.Len) != st.Counters.Inserts-st.Counters.Evictions {
				t.Fatalf("counter identity broken: len %d, inserts %d, evictions %d",
					st.Len, st.Counters.Inserts, st.Counters.Evictions)
			}
			if st.Counters.Expired+st.Counters.Invalidated > st.Counters.Evictions {
				t.Fatalf("attribution exceeds evictions: %+v", st.Counters)
			}
		}

		// (3) Resume-path rejection: corrupt the pristine state per
		// the first op byte; only the intact variant may import, and
		// it must still reproduce the cold walk bitwise.
		fuzzModel.once.Do(fuzzSetup)
		st := *fuzzModel.state
		st.Layers = append([]*tensor.Tensor(nil), fuzzModel.state.Layers...)
		x := fuzzModel.x
		mode := byte(0)
		if len(data) > 0 {
			mode = data[0] % 6
		}
		switch mode {
		case 1:
			st.Subnet = -int(mode)
		case 2:
			st.Layers = st.Layers[:len(st.Layers)-1]
		case 3:
			st.Layers[int(mode)%len(st.Layers)] = nil
		case 4:
			orig := st.Layers[0]
			st.Layers[0] = tensor.New(2, orig.Len())
		case 5:
			x = tensor.New(1, 1, 8, 9)
		}
		eng := infer.NewEngine(fuzzModel.m.Net)
		eng.Workers = 1
		err := eng.ImportState(x, &st)
		if mode == 0 {
			if err != nil {
				t.Fatalf("intact state rejected: %v", err)
			}
			out, _ := eng.MustStep(3)
			for i, v := range out.Data() {
				if v != fuzzModel.top[i] {
					t.Fatalf("resumed logit[%d]=%v, cold %v", i, v, fuzzModel.top[i])
				}
			}
		} else if err == nil {
			t.Fatalf("corrupted state (mode %d) imported without error", mode)
		}
	})
}
