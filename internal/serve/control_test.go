package serve

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"steppingnet/internal/governor"
)

// newGovernedServer builds a server with the overload governor armed
// on class 0 (p99 ≤ target, hit rate ≥ 0.99) and a manual control
// clock: ControlInterval < 0 builds the controller but starts no
// background loop, so tests tick it deterministically.
func newGovernedServer(t *testing.T, target time.Duration, cal governor.LatencyModel) *Server {
	t.Helper()
	m := buildModel(71)
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 1, QueueDepth: 16,
		PriorityClasses: 2, Calibration: cal,
		DefaultDeadline: time.Hour,
		SLOs:            []governor.SLO{{P99Target: target, MinHitRate: 0.99}},
		ControlInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// injectServed feeds n synthetic class-c answers straight into the
// stats layer — the step-clocked substitute for wall-time load, so
// controller scenarios replay identically on any machine.
func injectServed(srv *Server, c, n int, lat time.Duration, met bool) {
	for i := 0; i < n; i++ {
		srv.stats.recordServed(Result{Priority: c, Subnet: 1, Latency: lat, DeadlineMet: met})
	}
}

// TestControlTickBrownoutAndRecovery walks the whole closed loop
// deterministically: sustained class-0 SLO violations escalate the
// brownout ladder one level per tick (and the shed cap the batch
// former stamps actually tightens), then a healthy window recovers it
// additively back to a neutral policy, with every violation and
// transition counted in the snapshot.
func TestControlTickBrownoutAndRecovery(t *testing.T) {
	m := buildModel(71)
	srv := newGovernedServer(t, time.Millisecond, instantSteps(m, 3))
	defer srv.Close()

	// Healthy ticks against an empty history must not move anything.
	srv.controlTick()
	srv.controlTick()
	if pol := srv.Policy(); pol.Active() {
		t.Fatalf("policy active with no traffic: %+v", pol)
	}

	// Sustained violation: class 0's ring fills with 10ms latencies
	// against a 1ms target.
	injectServed(srv, 0, 50, 10*time.Millisecond, false)
	srv.controlTick()
	pol := srv.Policy()
	if pol.ClassLevel(0) != 1 || pol.ClassShedCap(0) != 2 {
		t.Fatalf("after 1 violating tick: level=%d cap=%d, want 1/2", pol.ClassLevel(0), pol.ClassShedCap(0))
	}
	// The stamped shed cap must feel the policy: empty queue would
	// allow the full ladder (3), the policy pins class 0 at 2.
	srv.qmu.Lock()
	gotCap := srv.shedCapLocked(0)
	srv.qmu.Unlock()
	if gotCap != 2 {
		t.Fatalf("shedCapLocked(0) = %d under policy cap 2", gotCap)
	}

	// Keep violating: the ladder deepens one level per tick until
	// class 0 is fully shed, then starts on class 1.
	max0 := srv.ctl.MaxLevel(0)
	for i := 1; i < max0; i++ {
		injectServed(srv, 0, 10, 10*time.Millisecond, false)
		srv.controlTick()
	}
	pol = srv.Policy()
	if pol.ClassLevel(0) != max0 || pol.ClassQueueShare(0) != 1 || pol.ClassAdmitScale(0) < 8 {
		t.Fatalf("class 0 not fully shed after %d ticks: %+v", max0, pol)
	}
	if pol.ClassLevel(1) != 0 {
		t.Fatalf("class 1 browned before class 0 exhausted: %+v", pol)
	}

	snap := srv.Stats()
	if snap.SLOViolations == 0 || snap.Classes[0].SLOViolations == 0 {
		t.Fatalf("violations not counted: %+v", snap)
	}
	if snap.Classes[0].BrownoutTransitions != int64(max0) {
		t.Fatalf("class 0 transitions = %d, want %d", snap.Classes[0].BrownoutTransitions, max0)
	}
	if snap.Policy == nil || snap.Policy.MaxLevel != max0 || snap.Policy.Lookahead <= 0 {
		t.Fatalf("snapshot policy missing brownout state: %+v", snap.Policy)
	}

	// Recovery: flush the ring with healthy latencies, then tick until
	// neutral. Additive recovery releases at most one level per
	// RecoverAfter ticks, so bound the loop generously.
	injectServed(srv, 0, classRingSize+100, 100*time.Microsecond, true)
	for i := 0; i < 8*max0 && srv.Policy().Active(); i++ {
		srv.controlTick()
	}
	if pol := srv.Policy(); pol.Active() {
		t.Fatalf("policy still active after healthy window: %+v", pol)
	}
	snap = srv.Stats()
	if got, want := snap.Classes[0].BrownoutTransitions, int64(2*max0); got != want {
		t.Fatalf("class 0 transitions after full recovery = %d, want %d (up == down)", got, want)
	}
	if snap.Policy.MaxLevel != 0 {
		t.Fatalf("snapshot policy not neutral after recovery: %+v", snap.Policy)
	}
}

// TestControllerDriftReconverges is the governor half of the drift
// acceptance scenario: step costs silently inflate 3×, the stale
// calibration lets deadlines blow, the governor browns out the low
// class — and once the calibration refresh adopts the real costs and
// latencies come back under target, the governor walks all the way
// back to a neutral policy. Fully step-clocked: drift is injected into
// the refresh sampler and latencies into the stats, so the scenario
// replays identically under -race on any machine.
func TestControllerDriftReconverges(t *testing.T) {
	m := buildModel(72)
	base := 200 * time.Microsecond
	srv := newGovernedServer(t, 2*time.Millisecond, driftModel(m, base))
	defer srv.Close()

	// Phase 1 — drift bites: the 3×-inflated walk blows the 2ms
	// target; three violating ticks walk class 0 three levels deep
	// (each tick needs fresh served evidence — a quiet interval reads
	// as healthy).
	for i := 0; i < 3; i++ {
		injectServed(srv, 0, 50, 8*time.Millisecond, false)
		srv.controlTick()
	}
	if pol := srv.Policy(); pol.ClassLevel(0) != 3 {
		t.Fatalf("class 0 level = %d after 3 violating ticks, want 3", pol.ClassLevel(0))
	}

	// Phase 2 — the refresh loop catches up with reality: live step
	// timings at 3× the calibrated cost are adopted into the model.
	for s := 2; s <= 3; s++ {
		for i := 0; i < refreshMinObs; i++ {
			srv.ref.observe(s, 3*base)
		}
	}
	if !srv.refreshCalibration() {
		t.Fatal("refreshCalibration adopted nothing")
	}
	if got := srv.Latency().StepTime[1]; got != 3*base {
		t.Fatalf("refreshed step 2 cost = %v, want %v", got, 3*base)
	}

	// Phase 3 — with honest costs the scheduler answers narrower and
	// hits deadlines again; the governor must re-converge to neutral.
	injectServed(srv, 0, classRingSize+100, 500*time.Microsecond, true)
	ticks := 0
	for ; ticks < 40 && srv.Policy().Active(); ticks++ {
		srv.controlTick()
	}
	if pol := srv.Policy(); pol.Active() {
		t.Fatalf("governor did not re-converge after drift correction: %+v", pol)
	}
	snap := srv.Stats()
	if snap.Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", snap.Refreshes)
	}
	if got, want := snap.Classes[0].BrownoutTransitions, int64(6); got != want {
		t.Fatalf("class 0 transitions = %d, want %d (3 up + 3 down)", got, want)
	}
}

// TestControlLoopStopsOnClose pins that the background control loop
// (and everything else Close reaps) exits even when Close lands
// mid-tick: no goroutine may outlive Close.
func TestControlLoopStopsOnClose(t *testing.T) {
	before := runtime.NumGoroutine()

	m := buildModel(73)
	srv, err := New(Config{
		Model: m, Subnets: 3, Workers: 2, QueueDepth: 16,
		PriorityClasses: 2, Calibration: instantSteps(m, 3),
		DefaultDeadline: time.Hour,
		SLOs:            []governor.SLO{{P99Target: time.Millisecond}},
		ControlInterval: time.Millisecond,
		RefreshInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := inputVec(74, srv.imgLen)
	for i := 0; i < 8; i++ {
		if _, err := srv.Submit(Request{Input: in}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Let several control ticks fire, then close mid-cadence.
	time.Sleep(5 * time.Millisecond)
	if snap := srv.Stats(); snap.Policy == nil {
		t.Fatal("governed server snapshot has no policy block")
	}
	srv.Close()

	if _, err := srv.Submit(Request{Input: in}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPolicySwapConcurrentWithStats is the serve-side swap property
// test: percentile-ring reads (Stats), live submissions, PolicyRef
// swaps (both raw Stores and real controlTicks) and ModelRef swaps all
// race, and the accounting invariant Submitted = Served + Rejected
// must hold at quiescence. Run under -race, this is the data-race
// gate for the whole sensor → controller → actuator loop.
func TestPolicySwapConcurrentWithStats(t *testing.T) {
	m := buildModel(75)
	srv := newGovernedServer(t, time.Millisecond, instantSteps(m, 3))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var submitted, served, rejected int64
	var mu sync.Mutex

	for g := 0; g < 3; g++ { // submitters
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := inputVec(uint64(80+g), srv.imgLen)
			var sub, ok, rej int64
			for i := 0; ; i++ {
				select {
				case <-stop:
					mu.Lock()
					submitted += sub
					served += ok
					rejected += rej
					mu.Unlock()
					return
				default:
				}
				sub++
				_, err := srv.Submit(Request{Input: in, Priority: i % 2})
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrOverloaded):
					rej++
				default:
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // policy swapper: raw stores racing real control ticks
		defer wg.Done()
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			srv.policy.Store(governor.Policy{
				ShedCap:    []int{1 + k%3, 0},
				AdmitScale: []float64{float64(int(1) << (k % 4)), 1},
				QueueShare: []int{1 + k%8, 0},
				Lookahead:  float64(k%2) * 0.25,
				Level:      []int{k % 7, 0},
			})
			srv.controlTick()
		}
	}()
	wg.Add(1)
	go func() { // model swapper
		defer wg.Done()
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			lm := instantSteps(m, 3)
			for i := range lm.StepTime {
				lm.StepTime[i] = time.Duration(1 + k%100)
			}
			srv.lat.Store(lm)
		}
	}()
	wg.Add(1)
	go func() { // stats reader: percentile rings + policy snapshot
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := srv.Stats()
			if snap.Served > snap.Submitted || snap.Policy == nil {
				t.Errorf("inconsistent snapshot: %+v", snap)
				return
			}
		}
	}()

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	srv.Close()

	snap := srv.Stats()
	if snap.Submitted != submitted || snap.Submitted != snap.Served+snap.Rejected {
		t.Fatalf("accounting: client submitted %d (served %d, rejected %d); server %d = %d + %d",
			submitted, served, rejected, snap.Submitted, snap.Served, snap.Rejected)
	}
}
